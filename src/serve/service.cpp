#include "serve/service.h"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "bitstream/bitseq.h"
#include "core/chain_encoder.h"
#include "isa/assembler.h"
#include "sim/bus.h"
#include "sim/cpu.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace asimt::serve {

namespace {

// Thrown by request handlers; turned into the structured error reply by
// handle_line. `kind` is one of the protocol's error kinds.
struct RequestError {
  const char* kind;
  std::string message;
};

[[noreturn]] void bad_request(std::string message) {
  throw RequestError{"bad_request", std::move(message)};
}

// ---------------------------------------------------------------------------
// Request decoding

struct EncodeParams {
  std::string text;
  int k = 5;
  core::ChainStrategy strategy = core::ChainStrategy::kOptimalDp;
  std::uint8_t strategy_id = 0;       // 0 = dp, 1 = greedy
  std::uint8_t transform_set_id = 0;  // 0 = paper, 1 = all, 2 = invertible
  std::span<const core::Transform> allowed = core::kPaperSubset;
  const char* strategy_name = "dp";
  const char* transforms_name = "paper";
};

const json::Value* find_member(const json::Value& request, std::string_view key) {
  return request.find(key);
}

std::string require_text(const json::Value& request, const ServiceOptions& options) {
  const json::Value* text = find_member(request, "text");
  if (!text) bad_request("missing required field 'text'");
  if (!text->is_string()) bad_request("field 'text' must be a string");
  if (text->as_string().size() > options.max_text_bytes) {
    bad_request("field 'text' exceeds " +
                std::to_string(options.max_text_bytes) + " bytes");
  }
  return text->as_string();
}

EncodeParams decode_encode_params(const json::Value& request,
                                  const ServiceOptions& options) {
  EncodeParams params;
  params.text = require_text(request, options);
  if (const json::Value* k = find_member(request, "k")) {
    if (!k->is_int()) bad_request("field 'k' must be an integer");
    const long long value = k->as_int();
    if (value < options.min_k || value > options.max_k) {
      bad_request("field 'k' must be in [" + std::to_string(options.min_k) +
                  ", " + std::to_string(options.max_k) + "], got " +
                  std::to_string(value));
    }
    params.k = static_cast<int>(value);
  }
  if (const json::Value* strategy = find_member(request, "strategy")) {
    if (!strategy->is_string()) bad_request("field 'strategy' must be a string");
    const std::string& name = strategy->as_string();
    if (name == "dp") {
      params.strategy = core::ChainStrategy::kOptimalDp;
      params.strategy_id = 0;
      params.strategy_name = "dp";
    } else if (name == "greedy") {
      params.strategy = core::ChainStrategy::kGreedy;
      params.strategy_id = 1;
      params.strategy_name = "greedy";
    } else {
      bad_request("field 'strategy' must be 'dp' or 'greedy', got '" + name +
                  "'");
    }
  }
  if (const json::Value* transforms = find_member(request, "transforms")) {
    if (!transforms->is_string()) {
      bad_request("field 'transforms' must be a string");
    }
    const std::string& name = transforms->as_string();
    if (name == "paper") {
      params.allowed = core::kPaperSubset;
      params.transform_set_id = 0;
      params.transforms_name = "paper";
    } else if (name == "all") {
      params.allowed = core::kAllTransforms;
      params.transform_set_id = 1;
      params.transforms_name = "all";
    } else if (name == "invertible") {
      params.allowed = core::kInvertibleSubset;
      params.transform_set_id = 2;
      params.transforms_name = "invertible";
    } else {
      bad_request("field 'transforms' must be 'paper', 'all' or 'invertible', "
                  "got '" + name + "'");
    }
  }
  return params;
}

isa::Program assemble_request(const std::string& text) {
  try {
    return isa::assemble(text);
  } catch (const isa::AssemblyError& e) {
    throw RequestError{"assembly", e.what()};
  }
}

// ---------------------------------------------------------------------------
// Content addressing

// FNV-1a 64-bit over the packed bit-line words — the program's *content* in
// exactly the representation the encoder consumes, so textual differences
// that assemble to the same image (comments, label names, spacing) share one
// cache entry.
class Fnv1a {
 public:
  void mix_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xFFu;
      hash_ *= 0x100000001B3ull;
    }
  }
  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ull;
};

std::uint64_t hash_bit_lines(const std::vector<bits::BitSeq>& lines) {
  Fnv1a fnv;
  fnv.mix_u64(lines.size());
  for (const bits::BitSeq& line : lines) {
    fnv.mix_u64(line.size());
    for (const std::uint64_t word : line.words()) fnv.mix_u64(word);
  }
  return fnv.digest();
}

constexpr std::uint8_t kOpEncode = 1;
constexpr std::uint8_t kOpVerify = 2;

CacheKey make_key(const std::vector<bits::BitSeq>& lines,
                  const EncodeParams& params, std::uint8_t op) {
  CacheKey key;
  key.content_hash = hash_bit_lines(lines);
  key.k = params.k;
  key.transform_set = params.transform_set_id;
  key.strategy = params.strategy_id;
  key.op = op;
  return key;
}

// ---------------------------------------------------------------------------
// Result payloads (the cached, byte-identity-critical part of a reply)

json::Value encode_summary(const isa::Program& program,
                           const EncodeParams& params, long long original,
                           long long encoded) {
  json::Value result = json::Value::object();
  result.set("instructions", static_cast<long long>(program.text.size()));
  result.set("k", params.k);
  result.set("strategy", params.strategy_name);
  result.set("transforms", params.transforms_name);
  result.set("original_transitions", original);
  result.set("encoded_transitions", encoded);
  result.set("saved_transitions", original - encoded);
  result.set("reduction_percent",
             original == 0 ? 0.0
                           : 100.0 * static_cast<double>(original - encoded) /
                                 static_cast<double>(original));
  return result;
}

std::string compute_encode_payload(const isa::Program& program,
                                   const std::vector<bits::BitSeq>& lines,
                                   const EncodeParams& params) {
  core::ChainOptions options;
  options.block_size = params.k;
  options.allowed = params.allowed;
  options.strategy = params.strategy;
  const core::ChainEncoder encoder(options);
  long long original = 0;
  long long encoded = 0;
  for (const bits::BitSeq& line : lines) original += line.transitions();
  for (const core::EncodedChain& chain : encoder.encode_many(lines)) {
    encoded += chain.stored.transitions();
  }
  return encode_summary(program, params, original, encoded).dump();
}

std::string compute_verify_payload(const isa::Program& program,
                                   const std::vector<bits::BitSeq>& lines,
                                   const EncodeParams& params) {
  core::ChainOptions options;
  options.block_size = params.k;
  options.allowed = params.allowed;
  options.strategy = params.strategy;
  const core::ChainEncoder encoder(options);
  const std::vector<core::EncodedChain> chains = encoder.encode_many(lines);
  long long original = 0;
  long long encoded = 0;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    original += lines[i].transitions();
    encoded += chains[i].stored.transitions();
    if (!(core::decode_chain(chains[i]) == lines[i])) ++mismatches;
  }
  json::Value result = encode_summary(program, params, original, encoded);
  result.set("lines_checked", static_cast<long long>(lines.size()));
  result.set("roundtrip_ok", mismatches == 0);
  result.set("roundtrip_mismatches", static_cast<long long>(mismatches));
  return result.dump();
}

std::string compute_profile_payload(const json::Value& request,
                                    const ServiceOptions& options) {
  const std::string text = require_text(request, options);
  std::uint64_t max_steps = 1'000'000;
  if (const json::Value* steps = find_member(request, "max_steps")) {
    if (!steps->is_int() || steps->as_int() <= 0) {
      bad_request("field 'max_steps' must be a positive integer");
    }
    max_steps = static_cast<std::uint64_t>(steps->as_int());
    if (max_steps > options.max_profile_steps) {
      bad_request("field 'max_steps' exceeds the server cap of " +
                  std::to_string(options.max_profile_steps));
    }
  }
  const isa::Program program = assemble_request(text);
  sim::Memory memory;
  memory.load_program(program);
  sim::Cpu cpu(memory);
  cpu.state().pc = program.entry();
  sim::BusMonitor bus(/*per_line=*/false);
  try {
    cpu.run(max_steps,
            [&](std::uint32_t, std::uint32_t word) { bus.observe(word); });
  } catch (const std::exception& e) {
    throw RequestError{"exec", e.what()};
  }
  json::Value result = json::Value::object();
  result.set("instructions",
             static_cast<long long>(cpu.state().instructions));
  result.set("halted", cpu.state().halted);
  result.set("bus_transitions", bus.total_transitions());
  result.set("transitions_per_fetch",
             static_cast<double>(bus.total_transitions()) /
                 static_cast<double>(
                     std::max<std::uint64_t>(1, bus.words_observed())));
  return result.dump();
}

}  // namespace

Service::Service(ServiceOptions options)
    : options_(options),
      cache_(options.cache_capacity, options.cache_shards) {}

std::string Service::error_reply(const char* kind, const std::string& message) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  errors_.fetch_add(1, std::memory_order_relaxed);
  telemetry::count("serve.requests");
  telemetry::count("serve.errors");
  json::Value error = json::Value::object();
  error.set("kind", kind);
  error.set("message", message);
  return "{\"id\":null,\"ok\":false,\"error\":" + error.dump() + "}";
}

std::string Service::handle_line(const std::string& line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  telemetry::count("serve.requests");

  // The id is echoed into every reply, including error replies, so clients
  // multiplexing one connection can match responses. Until it is decoded the
  // reply carries "id":null.
  std::string id_dump = "null";
  const char* error_kind = nullptr;
  std::string error_message;
  std::string payload;

  try {
    if (line.size() > options_.max_text_bytes + 4096) {
      throw RequestError{"bad_request", "request line too large"};
    }
    json::Value request;
    try {
      request = json::parse(line);
    } catch (const json::ParseError& e) {
      throw RequestError{"parse", e.what()};
    }
    if (!request.is_object()) {
      throw RequestError{"parse", "request must be a JSON object"};
    }
    if (const json::Value* id = request.find("id")) {
      if (!id->is_int() && !id->is_string() && !id->is_null()) {
        bad_request("field 'id' must be an integer or a string");
      }
      id_dump = id->dump();
    }
    const json::Value* op = request.find("op");
    if (!op) bad_request("missing required field 'op'");
    if (!op->is_string()) bad_request("field 'op' must be a string");
    const std::string& name = op->as_string();

    if (name == "ping") {
      payload = "{\"pong\":true}";
    } else if (name == "encode" || name == "verify") {
      const std::uint8_t op_id = name == "encode" ? kOpEncode : kOpVerify;
      const EncodeParams params = decode_encode_params(request, options_);
      const isa::Program program = assemble_request(params.text);
      const std::vector<bits::BitSeq> lines =
          bits::vertical_lines(program.text);
      const CacheKey key = make_key(lines, params, op_id);
      if (const std::shared_ptr<const std::string> hit = cache_.lookup(key)) {
        payload = *hit;
      } else {
        std::string cold = op_id == kOpEncode
                               ? compute_encode_payload(program, lines, params)
                               : compute_verify_payload(program, lines, params);
        // insert() returns the resident payload: if another worker computed
        // the same key first, its bytes win for every caller.
        payload = *cache_.insert(key, std::move(cold));
      }
    } else if (name == "profile") {
      payload = compute_profile_payload(request, options_);
    } else if (name == "stats") {
      const CacheStats stats = cache_.stats();
      json::Value result = json::Value::object();
      result.set("requests", requests());
      result.set("errors", errors());
      json::Value cache = json::Value::object();
      cache.set("hits", stats.hits);
      cache.set("misses", stats.misses);
      cache.set("evictions", stats.evictions);
      cache.set("insertions", stats.insertions);
      cache.set("entries", stats.entries);
      cache.set("capacity", static_cast<long long>(cache_.capacity()));
      cache.set("shards", cache_.shard_count());
      result.set("cache", std::move(cache));
      payload = result.dump();
    } else {
      bad_request("unknown op '" + name + "'");
    }
  } catch (const RequestError& e) {
    error_kind = e.kind;
    error_message = e.message;
  } catch (const std::exception& e) {
    error_kind = "internal";
    error_message = e.what();
  } catch (...) {
    error_kind = "internal";
    error_message = "unknown error";
  }

  if (error_kind) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    telemetry::count("serve.errors");
    // Build the error object through the JSON layer so arbitrary exception
    // text is always escaped correctly.
    json::Value error = json::Value::object();
    error.set("kind", error_kind);
    error.set("message", error_message);
    return "{\"id\":" + id_dump + ",\"ok\":false,\"error\":" + error.dump() +
           "}";
  }
  // Replies are spliced as strings around the cached payload, so a cache hit
  // returns exactly the bytes the cold encode produced.
  return "{\"id\":" + id_dump + ",\"ok\":true,\"result\":" + payload + "}";
}

}  // namespace asimt::serve
