// Exporters: turn a MetricsRegistry snapshot into JSON, CSV, or
// Prometheus-style text exposition.
//
// All three render the same Snapshot, so numbers agree across formats by
// construction. The JSON form is the canonical machine-readable one (used by
// `asimt --metrics`, the BENCH_*.json trajectory, and the round-trip tests);
// CSV is for spreadsheets; the Prometheus form is for scrape endpoints and
// uses `asimt_` as the namespace prefix with dots mapped to underscores.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace asimt::telemetry {

// ---------------------------------------------------------------------------
// Prometheus text exposition, structured form.
//
// A family is one metric name with one # HELP and one # TYPE line followed
// by its samples; render_prometheus() enforces the format contracts the
// ad-hoc string building used to miss: label values are escaped, HELP/TYPE
// appear exactly once per family (duplicate family names merge), and
// families render in sorted-by-name order so scrapes diff cleanly across
// runs.

// Escapes a label value per the exposition format: backslash, double quote
// and newline become \\, \" and \n.
std::string prometheus_escape_label(std::string_view value);

// Sanitizes a dotted metric name into the asimt_ namespace:
// [a-zA-Z0-9_] survive, everything else becomes '_'.
std::string prometheus_name(const std::string& name);

struct PromSample {
  std::string suffix;  // appended to the family name: "", "_bucket", ...
  std::vector<std::pair<std::string, std::string>> labels;  // (name, raw value)
  std::string value;   // pre-rendered number
};

struct PromFamily {
  std::string name;  // full exposition name (already sanitized)
  std::string type;  // "counter" | "gauge" | "histogram" | "untyped"
  std::string help;  // omitted when empty
  std::vector<PromSample> samples;
};

std::string render_prometheus(std::vector<PromFamily> families);

// Structured snapshot:
//   {"counters":{name:int,...},
//    "gauges":{name:double,...},
//    "histograms":{name:{"count":n,"sum":s,"min":m,"max":M,"mean":a,
//                        "buckets":{"<pow2-index>":n,...}},...}}
json::Value metrics_to_json(const MetricsRegistry& registry);

// metrics_to_json dumped as pretty-printed text.
std::string metrics_json(const MetricsRegistry& registry);

// One row per scalar: kind,name,value for counters/gauges; histograms expand
// to count/sum/min/max/mean rows.
std::string metrics_csv(const MetricsRegistry& registry);

// Prometheus text exposition of a registry snapshot, via render_prometheus:
// counters and gauges one family each, histograms as cumulative-`le` bucket
// families plus _min/_max/_mean gauge families (kept so the three exporters
// stay field-compatible).
std::string metrics_prometheus(const MetricsRegistry& registry);

// Writes `content` to `path`, returning false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace asimt::telemetry
