// Encode/decode/disassemble tests for the ASIMT ISA.
#include "isa/isa.h"

#include <gtest/gtest.h>

#include <random>

namespace asimt::isa {
namespace {

Instruction r_type(Op op, unsigned rd, unsigned rs, unsigned rt) {
  Instruction i;
  i.op = op;
  i.rd = static_cast<std::uint8_t>(rd);
  i.rs = static_cast<std::uint8_t>(rs);
  i.rt = static_cast<std::uint8_t>(rt);
  return i;
}

Instruction i_type(Op op, unsigned rt, unsigned rs, std::int32_t imm) {
  Instruction i;
  i.op = op;
  i.rt = static_cast<std::uint8_t>(rt);
  i.rs = static_cast<std::uint8_t>(rs);
  i.imm = imm;
  return i;
}

TEST(Encode, MatchesMipsReferencePatterns) {
  // Golden encodings computed against the MIPS-I manual field layout.
  EXPECT_EQ(encode(r_type(Op::kAddu, kT0, kT1, kT2)), 0x012A4021u);
  EXPECT_EQ(encode(i_type(Op::kAddiu, kT0, kZero, -1)), 0x2408FFFFu);
  EXPECT_EQ(encode(i_type(Op::kLw, kT1, kSp, 16)), 0x8FA90010u);
  EXPECT_EQ(encode(i_type(Op::kSw, kRa, kSp, -4)), 0xAFBFFFFCu);
  Instruction nop;
  nop.op = Op::kSll;
  EXPECT_EQ(encode(nop), 0u);
  Instruction jr;
  jr.op = Op::kJr;
  jr.rs = kRa;
  EXPECT_EQ(encode(jr), 0x03E00008u);
}

TEST(Encode, JumpTargetField) {
  Instruction j;
  j.op = Op::kJ;
  j.target = 0x00100000u >> 2;
  EXPECT_EQ(encode(j), 0x08000000u | (0x00100000u >> 2));
}

TEST(Encode, RejectsInvalid) {
  Instruction invalid;
  invalid.op = Op::kInvalid;
  EXPECT_THROW(encode(invalid), std::invalid_argument);
}

TEST(Decode, UnknownWordsAreInvalid) {
  EXPECT_EQ(decode(0xFFFFFFFFu).op, Op::kInvalid);
  EXPECT_EQ(decode(0x0000003Fu).op, Op::kInvalid);  // SPECIAL funct 0x3f
}

TEST(Decode, SignExtendsImmediates) {
  const Instruction i = decode(encode(i_type(Op::kAddiu, kT0, kT1, -300)));
  EXPECT_EQ(i.imm, -300);
  const Instruction j = decode(encode(i_type(Op::kAddiu, kT0, kT1, 300)));
  EXPECT_EQ(j.imm, 300);
}

// Round-trip every opcode with randomized fields.
class RoundTripTest : public ::testing::TestWithParam<Op> {};

TEST_P(RoundTripTest, EncodeDecode) {
  const Op op = GetParam();
  std::mt19937 rng(static_cast<unsigned>(op));
  for (int trial = 0; trial < 30; ++trial) {
    Instruction in;
    in.op = op;
    in.rs = static_cast<std::uint8_t>(rng() & 31);
    in.rt = static_cast<std::uint8_t>(rng() & 31);
    in.rd = static_cast<std::uint8_t>(rng() & 31);
    in.shamt = static_cast<std::uint8_t>(rng() & 31);
    in.fs = static_cast<std::uint8_t>(rng() & 31);
    in.ft = static_cast<std::uint8_t>(rng() & 31);
    in.fd = static_cast<std::uint8_t>(rng() & 31);
    in.imm = static_cast<std::int16_t>(rng());
    in.target = rng() & 0x03FFFFFFu;
    const Instruction out = decode(encode(in));
    ASSERT_EQ(out.op, op);
    // Check the fields that are architecturally meaningful for this op.
    switch (op) {
      case Op::kAdd: case Op::kAddu: case Op::kSub: case Op::kSubu:
      case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kNor:
      case Op::kSlt: case Op::kSltu: case Op::kSllv: case Op::kSrlv:
      case Op::kSrav:
        EXPECT_EQ(out.rd, in.rd);
        EXPECT_EQ(out.rs, in.rs);
        EXPECT_EQ(out.rt, in.rt);
        break;
      case Op::kSll: case Op::kSrl: case Op::kSra:
        EXPECT_EQ(out.rd, in.rd);
        EXPECT_EQ(out.rt, in.rt);
        EXPECT_EQ(out.shamt, in.shamt);
        break;
      case Op::kAddi: case Op::kAddiu: case Op::kSlti: case Op::kSltiu:
      case Op::kAndi: case Op::kOri: case Op::kXori:
      case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
      case Op::kSb: case Op::kSh: case Op::kSw:
        EXPECT_EQ(out.rt, in.rt);
        EXPECT_EQ(out.rs, in.rs);
        EXPECT_EQ(out.imm, in.imm);
        break;
      case Op::kBeq: case Op::kBne:
        EXPECT_EQ(out.rs, in.rs);
        EXPECT_EQ(out.rt, in.rt);
        EXPECT_EQ(out.imm, in.imm);
        break;
      case Op::kBlez: case Op::kBgtz: case Op::kBltz: case Op::kBgez:
        EXPECT_EQ(out.rs, in.rs);
        EXPECT_EQ(out.imm, in.imm);
        break;
      case Op::kJ: case Op::kJal:
        EXPECT_EQ(out.target, in.target);
        break;
      case Op::kJr:
        EXPECT_EQ(out.rs, in.rs);
        break;
      case Op::kJalr:
        EXPECT_EQ(out.rs, in.rs);
        EXPECT_EQ(out.rd, in.rd);
        break;
      case Op::kLui:
        EXPECT_EQ(out.rt, in.rt);
        break;
      case Op::kLwc1: case Op::kSwc1:
        EXPECT_EQ(out.ft, in.ft);
        EXPECT_EQ(out.rs, in.rs);
        EXPECT_EQ(out.imm, in.imm);
        break;
      case Op::kAddS: case Op::kSubS: case Op::kMulS: case Op::kDivS:
        EXPECT_EQ(out.fd, in.fd);
        EXPECT_EQ(out.fs, in.fs);
        EXPECT_EQ(out.ft, in.ft);
        break;
      case Op::kSqrtS: case Op::kAbsS: case Op::kMovS: case Op::kNegS:
      case Op::kCvtSW: case Op::kTruncWS:
        EXPECT_EQ(out.fd, in.fd);
        EXPECT_EQ(out.fs, in.fs);
        break;
      case Op::kCEqS: case Op::kCLtS: case Op::kCLeS:
        EXPECT_EQ(out.fs, in.fs);
        EXPECT_EQ(out.ft, in.ft);
        break;
      case Op::kBc1f: case Op::kBc1t:
        EXPECT_EQ(out.imm, in.imm);
        break;
      case Op::kMfc1: case Op::kMtc1:
        EXPECT_EQ(out.rt, in.rt);
        EXPECT_EQ(out.fs, in.fs);
        break;
      case Op::kMfhi: case Op::kMflo:
        EXPECT_EQ(out.rd, in.rd);
        break;
      case Op::kMthi: case Op::kMtlo:
        EXPECT_EQ(out.rs, in.rs);
        break;
      case Op::kMult: case Op::kMultu: case Op::kDiv: case Op::kDivu:
        EXPECT_EQ(out.rs, in.rs);
        EXPECT_EQ(out.rt, in.rt);
        break;
      case Op::kSyscall: case Op::kBreak:
        break;
      case Op::kInvalid:
        FAIL();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, RoundTripTest,
    ::testing::Values(
        Op::kSll, Op::kSrl, Op::kSra, Op::kSllv, Op::kSrlv, Op::kSrav,
        Op::kJr, Op::kJalr, Op::kSyscall, Op::kBreak, Op::kMfhi, Op::kMthi,
        Op::kMflo, Op::kMtlo, Op::kMult, Op::kMultu, Op::kDiv, Op::kDivu,
        Op::kAdd, Op::kAddu, Op::kSub, Op::kSubu, Op::kAnd, Op::kOr, Op::kXor,
        Op::kNor, Op::kSlt, Op::kSltu, Op::kBltz, Op::kBgez, Op::kJ, Op::kJal,
        Op::kBeq, Op::kBne, Op::kBlez, Op::kBgtz, Op::kAddi, Op::kAddiu,
        Op::kSlti, Op::kSltiu, Op::kAndi, Op::kOri, Op::kXori, Op::kLui,
        Op::kLb, Op::kLh, Op::kLw, Op::kLbu, Op::kLhu, Op::kSb, Op::kSh,
        Op::kSw, Op::kLwc1, Op::kSwc1, Op::kAddS, Op::kSubS, Op::kMulS,
        Op::kDivS, Op::kSqrtS, Op::kAbsS, Op::kMovS, Op::kNegS, Op::kCvtSW,
        Op::kTruncWS, Op::kCEqS, Op::kCLtS, Op::kCLeS, Op::kBc1f, Op::kBc1t,
        Op::kMfc1, Op::kMtc1));

TEST(ControlFlow, Classification) {
  EXPECT_TRUE(is_branch(Op::kBeq));
  EXPECT_TRUE(is_branch(Op::kBc1t));
  EXPECT_FALSE(is_branch(Op::kJ));
  EXPECT_TRUE(is_jump(Op::kJal));
  EXPECT_TRUE(is_indirect_jump(Op::kJr));
  EXPECT_TRUE(is_halt(Op::kBreak));
  EXPECT_TRUE(ends_basic_block(Op::kBne));
  EXPECT_TRUE(ends_basic_block(Op::kJalr));
  EXPECT_FALSE(ends_basic_block(Op::kAddu));
  EXPECT_FALSE(ends_basic_block(Op::kLw));
}

TEST(ControlFlow, BranchTarget) {
  Instruction b;
  b.op = Op::kBeq;
  b.imm = 3;
  EXPECT_EQ(branch_target(0x1000, b), 0x1000u + 4 + 12);
  b.imm = -2;
  EXPECT_EQ(branch_target(0x1000, b), 0x1000u + 4 - 8);
}

TEST(ControlFlow, JumpTarget) {
  Instruction j;
  j.op = Op::kJ;
  j.target = 0x2000 >> 2;
  EXPECT_EQ(jump_target(0x1000, j), 0x2000u);
}

TEST(RegisterNames, RoundTrip) {
  for (unsigned r = 0; r < 32; ++r) {
    EXPECT_EQ(parse_reg(reg_name(r)), r);
    EXPECT_EQ(parse_freg(freg_name(r)), r);
  }
  EXPECT_EQ(parse_reg("$5"), 5u);
  EXPECT_EQ(parse_reg("$f5"), std::nullopt);
  EXPECT_EQ(parse_reg("$32"), std::nullopt);
  EXPECT_EQ(parse_freg("$f31"), 31u);
  EXPECT_EQ(parse_freg("$f32"), std::nullopt);
  EXPECT_EQ(parse_freg("$fp"), std::nullopt);
}

TEST(Disassemble, RepresentativeInstructions) {
  EXPECT_EQ(disassemble(0x012A4021u, 0), "addu $t0, $t1, $t2");
  EXPECT_EQ(disassemble(0x2408FFFFu, 0), "addiu $t0, $zero, -1");
  EXPECT_EQ(disassemble(0u, 0), "nop");
  EXPECT_EQ(disassemble(0x03E00008u, 0), "jr $ra");
  EXPECT_EQ(disassemble(0x8FA90010u, 0), "lw $t1, 16($sp)");
  Instruction i;
  i.op = Op::kBne;
  i.rs = kT0;
  i.rt = kZero;
  i.imm = -5;
  EXPECT_EQ(disassemble(encode(i), 0x1000), "bne $t0, $zero, 0xff0");
}

TEST(Disassemble, FpInstructions) {
  Instruction i;
  i.op = Op::kMulS;
  i.fd = 3;
  i.fs = 1;
  i.ft = 2;
  EXPECT_EQ(disassemble(encode(i), 0), "mul.s $f3, $f1, $f2");
  i = Instruction{};
  i.op = Op::kLwc1;
  i.ft = 4;
  i.rs = kA0;
  i.imm = 8;
  EXPECT_EQ(disassemble(encode(i), 0), "lwc1 $f4, 8($a0)");
}

TEST(Disassemble, InvalidFallsBackToWordDirective) {
  EXPECT_EQ(disassemble(0xFFFFFFFFu, 0), ".word 0xffffffff");
}

}  // namespace
}  // namespace asimt::isa
