// Fixed-size thread pool and deterministic data-parallel front ends.
//
// The experiment pipeline fans out at three levels — per-bit-line chain
// encoding, the per-block-size sweep, and the per-workload loop — and every
// level must stay bit-exact regardless of thread count (docs/PARALLELISM.md,
// "the determinism contract"). The engine therefore never reduces across
// tasks: `parallel_for(n, fn)` runs fn(i) exactly once per index and callers
// write into pre-sized slots, so the only thing concurrency changes is
// wall-clock time.
//
// Scheduling rules:
//   - jobs == 1 (or n <= 1) runs inline on the caller with no pool, no
//     threads, and no locking — the serial path is literally a for loop.
//   - a parallel_for issued from inside a pool task runs inline on that
//     worker (nested fan-out would deadlock a fixed pool), which is what
//     makes the three levels composable: whichever level reaches the pool
//     first wins, inner levels degrade to serial.
//   - ThreadPool::submit from a worker thread is rejected with
//     std::logic_error for the same reason; only parallel_for/parallel_map
//     have the inline fallback.
//
// Exceptions thrown by tasks are captured and rethrown on the calling
// thread; when several chunks throw, the lowest-index chunk's exception wins
// so failures are as deterministic as results.
//
// Telemetry: each batch counts `parallel.batches` and per-chunk
// `parallel.tasks` on the global registry (atomic adds, so totals are exact
// under concurrency); spans opened inside tasks nest per worker thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

namespace asimt::parallel {

class ThreadPool {
 public:
  // Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);
  // Drains nothing: pending tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueues `task` and returns a future that yields its result or rethrows
  // its exception. Throws std::logic_error when called from any pool's
  // worker thread: a fixed pool that waits on its own queue can deadlock, so
  // nested submission is rejected outright (parallel_for falls back to
  // inline execution instead).
  std::future<void> submit(std::function<void()> task);

  // True when the calling thread is a worker of any ThreadPool.
  static bool on_worker_thread();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

// --- process-wide default engine ------------------------------------------

// The effective job count: the last set_default_jobs(n > 0) value, else the
// ASIMT_JOBS environment variable, else std::thread::hardware_concurrency()
// (never less than 1). A malformed ASIMT_JOBS value is ignored with a stderr
// diagnostic, never silently truncated or clamped.
unsigned default_jobs();

// Strict ASIMT_JOBS parse (util::parse_number<unsigned>, whole string,
// > 0). nullopt for junk, trailing garbage ("8x"), zero, or overflow —
// exposed so tests can pin the contract without touching the environment.
std::optional<unsigned> parse_jobs_env(std::string_view text);

// Overrides the job count (CLI --jobs, tests). 0 restores the automatic
// default. Takes effect on the next parallel_for; must not race an active
// batch.
void set_default_jobs(unsigned n);

// Lazily built pool with default_jobs() workers; rebuilt when the job count
// changes between batches.
ThreadPool& default_pool();

// --- data-parallel front ends ---------------------------------------------

struct ForOptions {
  // Pool to run on; nullptr uses default_pool() (or the serial path when
  // default_jobs() == 1).
  ThreadPool* pool = nullptr;
  // Minimum indices per chunk. Raise for fine-grained bodies so task
  // overhead stays amortized; chunk boundaries never affect results.
  std::size_t grain = 1;
};

// Runs body(i) exactly once for every i in [0, n), in parallel chunks of
// contiguous indices. Returns after every index completed. Rethrows the
// lowest-chunk exception, if any.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  ForOptions options = {});

// Maps [0, n) through `fn` into an index-ordered vector. The result type
// must be default-constructible; slot i is written only by the task that
// owns index i.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, ForOptions options = {})
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  std::vector<std::invoke_result_t<Fn&, std::size_t>> out(n);
  parallel_for(
      n, [&out, &fn](std::size_t i) { out[i] = fn(i); }, options);
  return out;
}

}  // namespace asimt::parallel
