// Optimal power codes for fixed-size blocks (paper §5).
//
// For a block size k, every k-bit "block word" X is assigned a "code word" X̃
// and a transformation τ such that decoding X̃ with τ restores X and the
// number of bit transitions inside X̃ is minimal. This module implements the
// exhaustive solver the paper uses to derive Figures 2, 3 and 4, plus the
// minimal-subset analysis of §5.2.
//
// Word representation: the low k bits of a uint32_t, bit 0 = earliest bit in
// time (the figure's rightmost character).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/transform.h"

namespace asimt::core {

// Decodes a chain-initial block: x_0 = x̃_0, x_i = τ(x̃_i, x_{i-1}).
// Returns the original word reconstructed from `code`.
std::uint32_t decode_block(Transform tau, std::uint32_t code, int k);

// Decodes an overlapped block (§6): bit 0 of `code` is the stored value of
// the overlap bit, `overlap_original` its already-decoded original value.
// The first recurrence instance uses the ENCODED overlap bit as history
// ("τ2 uses x̃_n instead of x_n"); later instances use original history.
// Bit 0 of the result is `overlap_original`.
std::uint32_t decode_block_overlapped(Transform tau, std::uint32_t code,
                                      int overlap_original, int k);

// One row of a code table (one line of Fig. 2 / Fig. 4).
struct CodeAssignment {
  std::uint32_t word = 0;       // original block word
  std::uint32_t code = 0;       // power-efficient stored word
  Transform tau;                // restoring transformation
  int word_transitions = 0;     // T_x
  int code_transitions = 0;     // T_x̃
};

// The complete optimal code for one block size under a given transform set.
struct BlockCode {
  int k = 0;
  std::vector<CodeAssignment> entries;  // indexed by block word, size 2^k

  // Total Transition Number: Σ T_x over all 2^k block words (Fig. 3 row 2).
  long long ttn() const;
  // Reduced Transition Number: Σ T_x̃ (Fig. 3 row 3).
  long long rtn() const;
  // 100 * (TTN - RTN) / TTN (Fig. 3 row 4).
  double improvement_percent() const;
};

// Exhaustively finds, for every k-bit block word, the code word with the
// fewest transitions that some transform in `allowed` maps back to the
// original (chain-initial semantics). Ties are broken toward the earliest
// transform in `allowed`, then the numerically smallest code word, making the
// output deterministic. k must be in [1, 20].
BlockCode solve_block_code(int k, std::span<const Transform> allowed);

// Convenience: the unrestricted optimum over all 16 transforms.
BlockCode solve_block_code(int k);

// Minimal number of transitions achievable for a single block word under
// `allowed` (chain-initial). Always succeeds: identity maps word to itself.
int min_code_transitions(std::uint32_t word, int k,
                         std::span<const Transform> allowed);

// §5.2 verification support: true iff `subset` achieves, for EVERY k-bit
// word, the same minimal code transitions as the full 16-transform set.
bool subset_is_optimal(int k, std::span<const Transform> subset);

// Searches all transform subsets of size `size` that are optimal for every
// block size in [2, max_k]. The paper claims size 8 yields a UNIQUE such
// subset for max_k = 7. Subsets are returned as truth-table bitmasks
// (bit t set ⇔ Transform{t} in subset).
std::vector<std::uint32_t> optimal_subsets_of_size(int size, int max_k);

}  // namespace asimt::core
