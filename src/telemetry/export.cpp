#include "telemetry/export.h"

#include <cstdio>
#include <fstream>

namespace asimt::telemetry {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*
std::string prometheus_name(const std::string& name) {
  std::string out = "asimt_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

json::Value metrics_to_json(const MetricsRegistry& registry) {
  const MetricsRegistry::Snapshot snap = registry.snapshot();
  json::Value root = json::Value::object();

  json::Value counters = json::Value::object();
  for (const auto& [name, value] : snap.counters) counters.set(name, value);
  root.set("counters", std::move(counters));

  json::Value gauges = json::Value::object();
  for (const auto& [name, value] : snap.gauges) gauges.set(name, value);
  root.set("gauges", std::move(gauges));

  json::Value histograms = json::Value::object();
  for (const auto& row : snap.histograms) {
    json::Value h = json::Value::object();
    h.set("count", static_cast<long long>(row.count));
    h.set("sum", row.sum);
    h.set("min", row.min);
    h.set("max", row.max);
    h.set("mean", row.mean);
    json::Value buckets = json::Value::object();
    for (const auto& [index, n] : row.buckets) {
      buckets.set(std::to_string(index), static_cast<long long>(n));
    }
    h.set("buckets", std::move(buckets));
    histograms.set(row.name, std::move(h));
  }
  root.set("histograms", std::move(histograms));
  return root;
}

std::string metrics_json(const MetricsRegistry& registry) {
  return metrics_to_json(registry).dump(2) + "\n";
}

std::string metrics_csv(const MetricsRegistry& registry) {
  const MetricsRegistry::Snapshot snap = registry.snapshot();
  std::string out = "kind,name,field,value\n";
  for (const auto& [name, value] : snap.counters) {
    out += "counter," + name + ",value," + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out += "gauge," + name + ",value," + format_double(value) + "\n";
  }
  for (const auto& row : snap.histograms) {
    out += "histogram," + row.name + ",count," + std::to_string(row.count) + "\n";
    out += "histogram," + row.name + ",sum," + format_double(row.sum) + "\n";
    out += "histogram," + row.name + ",min," + format_double(row.min) + "\n";
    out += "histogram," + row.name + ",max," + format_double(row.max) + "\n";
    out += "histogram," + row.name + ",mean," + format_double(row.mean) + "\n";
  }
  return out;
}

std::string metrics_prometheus(const MetricsRegistry& registry) {
  const MetricsRegistry::Snapshot snap = registry.snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + format_double(value) + "\n";
  }
  for (const auto& row : snap.histograms) {
    const std::string pname = prometheus_name(row.name);
    out += "# TYPE " + pname + " histogram\n";
    // Standard cumulative bucket series. Histogram bucket i holds samples in
    // [2^(i-1), 2^i) (bucket 0: < 1), so its upper bound — the `le` label —
    // is 2^i. Snapshot buckets come sorted ascending and sparse; cumulation
    // over them is exact because skipped buckets are empty.
    std::uint64_t cumulative = 0;
    for (const auto& [index, n] : row.buckets) {
      cumulative += n;
      out += pname + "_bucket{le=\"" + std::to_string(1ULL << index) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(row.count) + "\n";
    out += pname + "_count " + std::to_string(row.count) + "\n";
    out += pname + "_sum " + format_double(row.sum) + "\n";
    // Not part of the Prometheus histogram convention, but kept so the three
    // exporters stay field-compatible.
    out += pname + "_min " + format_double(row.min) + "\n";
    out += pname + "_max " + format_double(row.max) + "\n";
    out += pname + "_mean " + format_double(row.mean) + "\n";
  }
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace asimt::telemetry
