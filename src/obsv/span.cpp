#include "obsv/span.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace asimt::obsv {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kRead: return "read";
    case Stage::kParse: return "parse";
    case Stage::kCacheLookup: return "cache";
    case Stage::kExecute: return "execute";
    case Stage::kSerialize: return "serialize";
    case Stage::kWrite: return "write";
  }
  return "unknown";
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kEncode: return "encode";
    case Op::kVerify: return "verify";
    case Op::kProfile: return "profile";
    case Op::kStats: return "stats";
    case Op::kMetrics: return "metrics";
    case Op::kDump: return "dump";
    case Op::kOther: return "other";
  }
  return "other";
}

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kNone: return "none";
    case Outcome::kHit: return "hit";
    case Outcome::kMiss: return "miss";
  }
  return "none";
}

namespace {
const char* const kErrorKindNames[kErrorKindCount] = {
    "ok",      "parse",   "bad_request", "assembly",
    "exec",    "timeout", "overloaded",  "internal"};
}  // namespace

const char* error_kind_name(std::uint8_t kind) {
  return kind < kErrorKindCount ? kErrorKindNames[kind] : "internal";
}

std::uint8_t error_kind_id(const char* kind) {
  for (unsigned i = 0; i < kErrorKindCount; ++i) {
    if (std::strcmp(kind, kErrorKindNames[i]) == 0) {
      return static_cast<std::uint8_t>(i);
    }
  }
  return kErrorKindCount - 1;  // unknown kinds degrade to "internal"
}

void span_to_words(const Span& span, std::uint64_t out[kSpanWords]) {
  out[0] = span.seq;
  out[1] = span.conn_id;
  out[2] = span.start_ns;
  for (unsigned s = 0; s < kStageCount; ++s) out[3 + s] = span.stage_ns[s];
  out[9] = static_cast<std::uint64_t>(span.op) |
           (static_cast<std::uint64_t>(span.outcome) << 8) |
           (static_cast<std::uint64_t>(span.error_kind) << 16) |
           (static_cast<std::uint64_t>(span.shard) << 24);
  out[10] = static_cast<std::uint64_t>(span.request_bytes) |
            (static_cast<std::uint64_t>(span.payload_bytes) << 32);
}

Span span_from_words(const std::uint64_t in[kSpanWords]) {
  Span span;
  span.seq = in[0];
  span.conn_id = in[1];
  span.start_ns = in[2];
  for (unsigned s = 0; s < kStageCount; ++s) span.stage_ns[s] = in[3 + s];
  span.op = static_cast<std::uint8_t>(in[9] & 0xFF);
  span.outcome = static_cast<std::uint8_t>((in[9] >> 8) & 0xFF);
  span.error_kind = static_cast<std::uint8_t>((in[9] >> 16) & 0xFF);
  span.shard = static_cast<std::uint8_t>((in[9] >> 24) & 0xFF);
  span.request_bytes = static_cast<std::uint32_t>(in[10] & 0xFFFFFFFFu);
  span.payload_bytes = static_cast<std::uint32_t>(in[10] >> 32);
  return span;
}

SpanRing::SpanRing(std::size_t capacity) {
  const std::size_t n = std::bit_ceil(capacity < 8 ? 8 : capacity);
  slots_ = std::make_unique<Slot[]>(n);
  mask_ = n - 1;
}

void SpanRing::push(const Span& span) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[head & mask_];
  std::uint64_t words[kSpanWords];
  span_to_words(span, words);
  // Seqlock write: mark odd, publish words, mark even. The release fence
  // orders the odd marker before the word stores; the final release store
  // orders the word stores before the even marker — readers that see
  // matching even markers around their copy got untorn data.
  const std::uint64_t version =
      slot.marker.load(std::memory_order_relaxed) | 1u;
  slot.marker.store(version, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (std::size_t w = 0; w < kSpanWords; ++w) {
    slot.words[w].store(words[w], std::memory_order_relaxed);
  }
  slot.marker.store(version + 1, std::memory_order_release);
  head_.store(head + 1, std::memory_order_release);
}

bool SpanRing::read_slot(std::size_t i, Span& out) const {
  const Slot& slot = slots_[i & mask_];
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint64_t before = slot.marker.load(std::memory_order_acquire);
    if (before == 0 || (before & 1u) != 0) return false;  // empty / mid-write
    std::uint64_t words[kSpanWords];
    for (std::size_t w = 0; w < kSpanWords; ++w) {
      words[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.marker.load(std::memory_order_relaxed) == before) {
      out = span_from_words(words);
      return out.seq != 0;
    }
  }
  return false;  // writer kept lapping us; treat as torn
}

std::vector<Span> SpanRing::snapshot() const {
  std::vector<Span> out;
  const std::size_t n = capacity();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Span span;
    if (read_slot(i, span)) out.push_back(span);
  }
  std::sort(out.begin(), out.end(),
            [](const Span& a, const Span& b) { return a.seq < b.seq; });
  return out;
}

void SpanRing::reset() {
  const std::size_t n = capacity();
  for (std::size_t i = 0; i < n; ++i) {
    slots_[i].marker.store(0, std::memory_order_release);
  }
  head_.store(0, std::memory_order_release);
}

std::uint64_t now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point anchor = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           anchor)
          .count());
}

}  // namespace asimt::obsv
