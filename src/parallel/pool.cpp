#include "parallel/pool.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>

#include "telemetry/metrics.h"
#include "util/args.h"

namespace asimt::parallel {

namespace {

thread_local bool t_on_worker = false;

unsigned env_or_hardware_jobs() {
  const unsigned automatic = std::max(1u, std::thread::hardware_concurrency());
  if (const char* env = std::getenv("ASIMT_JOBS")) {
    if (const std::optional<unsigned> parsed = parse_jobs_env(env)) {
      return *parsed;
    }
    // Never fall back silently: a CI lane that exports ASIMT_JOBS=8x (or a
    // value that overflowed strtol) would otherwise run at the wrong worker
    // count with nothing in the logs — and `asimt serve` inherits its pool
    // size from exactly this path.
    std::fprintf(stderr,
                 "asimt: ignoring ASIMT_JOBS='%s' (need a positive integer); "
                 "using %u worker thread(s)\n",
                 env, automatic);
  }
  return automatic;
}

std::atomic<unsigned> g_jobs_override{0};

struct DefaultPoolHolder {
  std::mutex mu;
  std::unique_ptr<ThreadPool> pool;
  unsigned built_for = 0;
};

DefaultPoolHolder& default_pool_holder() {
  static DefaultPoolHolder* holder = new DefaultPoolHolder();  // never destroyed
  return *holder;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = std::max(1u, threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

std::future<void> ThreadPool::submit(std::function<void()> task) {
  if (t_on_worker) {
    throw std::logic_error(
        "ThreadPool::submit called from a pool worker; nested submission can "
        "deadlock a fixed pool (use parallel_for, which runs inline here)");
  }
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw std::logic_error("ThreadPool::submit on a stopping pool");
    }
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception into its future
  }
}

std::optional<unsigned> parse_jobs_env(std::string_view text) {
  const std::optional<unsigned> parsed = util::parse_number<unsigned>(text);
  if (!parsed || *parsed == 0) return std::nullopt;
  return parsed;
}

unsigned default_jobs() {
  const unsigned override = g_jobs_override.load(std::memory_order_relaxed);
  if (override > 0) return override;
  static const unsigned automatic = env_or_hardware_jobs();
  return automatic;
}

void set_default_jobs(unsigned n) {
  g_jobs_override.store(n, std::memory_order_relaxed);
}

ThreadPool& default_pool() {
  DefaultPoolHolder& holder = default_pool_holder();
  const unsigned jobs = default_jobs();
  std::lock_guard<std::mutex> lock(holder.mu);
  if (!holder.pool || holder.built_for != jobs) {
    holder.pool.reset();  // join the old workers before spawning new ones
    holder.pool = std::make_unique<ThreadPool>(jobs);
    holder.built_for = jobs;
  }
  return *holder.pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  ForOptions options) {
  if (n == 0) return;
  const unsigned jobs =
      options.pool != nullptr ? options.pool->size() : default_jobs();
  // Serial path: nothing to fan out, caller asked for one job, or we are
  // already on a pool worker (nested fan-out degrades to inline execution).
  if (n == 1 || jobs <= 1 || ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool& pool = options.pool != nullptr ? *options.pool : default_pool();

  // Contiguous chunks: at least `grain` indices each, and no more than
  // 8 chunks per worker so queue overhead stays bounded. Chunk boundaries
  // are irrelevant to results — every index writes only its own slots.
  const std::size_t grain = std::max<std::size_t>(1, options.grain);
  const std::size_t min_chunk = (n + static_cast<std::size_t>(jobs) * 8 - 1) /
                                (static_cast<std::size_t>(jobs) * 8);
  const std::size_t chunk = std::max(grain, min_chunk);
  const std::size_t chunks = (n + chunk - 1) / chunk;
  if (chunks <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  if (telemetry::enabled()) {
    telemetry::count("parallel.batches");
    telemetry::count("parallel.tasks", static_cast<long long>(chunks));
  }

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    futures.push_back(pool.submit([&body, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  // Wait for every chunk before rethrowing so no task can outlive `body`;
  // the lowest-index chunk's exception wins deterministically.
  std::exception_ptr first;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace asimt::parallel
