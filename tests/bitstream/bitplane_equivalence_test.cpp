// The differential proof behind the bit-plane rewrite: every word-parallel
// kernel in src/bitstream and the table-driven chain encoder must agree,
// bit for bit, with the scalar oracle (bitstream/reference.h and
// core/reference_encoder.h — the historical byte-per-bit implementations,
// kept deliberately naive). Exhaustive over every sequence of every length
// up to kExhaustiveMax, then seed-deterministic random sequences up to 4096
// bits; equality is exact — stored bits, chosen transforms, costs, and
// decode round-trips.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "bitstream/bitseq.h"
#include "bitstream/reference.h"
#include "core/chain_encoder.h"
#include "core/reference_encoder.h"

// Sanitizer builds run the same sweeps with a smaller exhaustive ceiling:
// coverage of every word-boundary case survives, the ~500k-sequence encode
// sweep does not pay the 10-70x instrumentation tax.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ASIMT_SANITIZED_BUILD 1
#endif
#if !defined(ASIMT_SANITIZED_BUILD) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define ASIMT_SANITIZED_BUILD 1
#endif
#endif

namespace asimt {
namespace {

namespace ref = bits::reference;
namespace coreref = core::reference;

#ifdef ASIMT_SANITIZED_BUILD
constexpr int kExhaustiveMax = 13;
constexpr int kRandomCases = 8;
#else
constexpr int kExhaustiveMax = 18;
constexpr int kRandomCases = 40;
#endif

bits::BitSeq random_seq(std::mt19937_64& rng, std::size_t len) {
  std::vector<std::uint64_t> words((len + 63) / 64, 0);
  for (auto& w : words) w = rng();
  if (!words.empty() && len % 64 != 0) {
    words.back() &= (std::uint64_t{1} << (len % 64)) - 1;
  }
  return bits::BitSeq::from_packed_words(std::move(words), len);
}

void expect_chains_equal(const core::EncodedChain& fast,
                         const core::EncodedChain& oracle,
                         const std::string& context) {
  ASSERT_EQ(fast.blocks.size(), oracle.blocks.size()) << context;
  EXPECT_EQ(fast.stored.to_stream_string(), oracle.stored.to_stream_string())
      << context;
  for (std::size_t bi = 0; bi < fast.blocks.size(); ++bi) {
    EXPECT_EQ(fast.blocks[bi].start, oracle.blocks[bi].start)
        << context << " block " << bi;
    EXPECT_EQ(fast.blocks[bi].length, oracle.blocks[bi].length)
        << context << " block " << bi;
    EXPECT_EQ(fast.blocks[bi].tau.truth_table(),
              oracle.blocks[bi].tau.truth_table())
        << context << " block " << bi;
  }
}

void check_encode_matches(const bits::BitSeq& original,
                          const core::ChainOptions& options,
                          const std::string& context) {
  const core::ChainEncoder encoder(options);
  const core::EncodedChain fast = encoder.encode(original);
  const core::EncodedChain oracle = coreref::encode_chain(original, options);
  expect_chains_equal(fast, oracle, context);
  // Round trip through the hardware-faithful decoder.
  EXPECT_EQ(core::decode_chain(fast).to_stream_string(),
            original.to_stream_string())
      << context;
}

TEST(BitplaneEquivalence, ExhaustiveTransitions) {
  for (int len = 0; len <= kExhaustiveMax; ++len) {
    const std::uint64_t count = std::uint64_t{1} << len;
    for (std::uint64_t word = 0; word < count; ++word) {
      const bits::BitSeq packed =
          bits::BitSeq::from_word(word, static_cast<std::size_t>(len));
      const ref::BitSeq scalar = ref::from_packed(packed);
      ASSERT_EQ(packed.transitions(), scalar.transitions())
          << "len=" << len << " word=" << word;
      if (len >= 1) {
        ASSERT_EQ(bits::word_transitions(word, len),
                  ref::word_transitions(word, len))
            << "len=" << len << " word=" << word;
      }
    }
  }
}

TEST(BitplaneEquivalence, ExhaustiveWindowedTransitions) {
  // Every (first, last) window of every sequence up to 10 bits: the masked
  // popcount's boundary handling against the scalar pair loop.
  for (int len = 1; len <= 10; ++len) {
    const std::uint64_t count = std::uint64_t{1} << len;
    for (std::uint64_t word = 0; word < count; ++word) {
      const bits::BitSeq packed =
          bits::BitSeq::from_word(word, static_cast<std::size_t>(len));
      const ref::BitSeq scalar = ref::from_packed(packed);
      for (std::size_t first = 0; first < packed.size(); ++first) {
        for (std::size_t last = first; last < packed.size(); ++last) {
          ASSERT_EQ(packed.transitions_in(first, last),
                    scalar.transitions_in(first, last))
              << "len=" << len << " word=" << word << " [" << first << ","
              << last << "]";
        }
      }
    }
  }
}

TEST(BitplaneEquivalence, ApplyWordMatchesScalarApplyExhaustively) {
  // All 16 transforms over all four (x, y) lane values via patterned words,
  // then random words checked lane by lane.
  for (core::Transform tau : core::kAllTransforms) {
    for (int x = 0; x < 2; ++x) {
      for (int y = 0; y < 2; ++y) {
        const std::uint64_t xw = x ? ~std::uint64_t{0} : 0;
        const std::uint64_t yw = y ? ~std::uint64_t{0} : 0;
        const std::uint64_t expect = tau.apply(x, y) ? ~std::uint64_t{0} : 0;
        EXPECT_EQ(tau.apply_word(xw, yw), expect)
            << tau.name() << " x=" << x << " y=" << y;
      }
    }
  }
  std::mt19937_64 rng(20260807);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t x = rng();
    const std::uint64_t y = rng();
    for (core::Transform tau : core::kAllTransforms) {
      const std::uint64_t got = tau.apply_word(x, y);
      for (int lane = 0; lane < 64; ++lane) {
        ASSERT_EQ(static_cast<int>((got >> lane) & 1u),
                  tau.apply(static_cast<int>((x >> lane) & 1u),
                            static_cast<int>((y >> lane) & 1u)))
            << tau.name() << " lane=" << lane;
      }
    }
  }
}

TEST(BitplaneEquivalence, ExhaustiveChainEncode) {
  // Every sequence of every length up to kExhaustiveMax, both strategies,
  // paper-default block size: the table-driven encoder against the original
  // exhaustive per-block scan. Identical stored bits and τ choices imply
  // identical costs; the round trip closes the loop.
  for (const core::ChainStrategy strategy :
       {core::ChainStrategy::kGreedy, core::ChainStrategy::kOptimalDp}) {
    core::ChainOptions options;
    options.strategy = strategy;
    for (int len = 0; len <= kExhaustiveMax; ++len) {
      const std::uint64_t count = std::uint64_t{1} << len;
      for (std::uint64_t word = 0; word < count; ++word) {
        const bits::BitSeq original =
            bits::BitSeq::from_word(word, static_cast<std::size_t>(len));
        check_encode_matches(
            original, options,
            "strategy=" + std::to_string(static_cast<int>(strategy)) +
                " len=" + std::to_string(len) + " word=" + std::to_string(word));
        if (HasFatalFailure() || HasNonfatalFailure()) return;
      }
    }
  }
}

TEST(BitplaneEquivalence, ExhaustiveChainEncodeOtherBlockSizes) {
  // Shorter exhaustive sweep across the block-size range, including k > 8
  // (wide windows) and the unrestricted 16-transform universe.
  for (const int k : {2, 3, 7, 12, 16}) {
    for (const core::ChainStrategy strategy :
         {core::ChainStrategy::kGreedy, core::ChainStrategy::kOptimalDp}) {
      core::ChainOptions options;
      options.block_size = k;
      options.strategy = strategy;
      options.allowed = (k % 2 == 0)
                            ? std::span<const core::Transform>{core::kPaperSubset}
                            : std::span<const core::Transform>{core::kAllTransforms};
      for (int len = 0; len <= 10; ++len) {
        const std::uint64_t count = std::uint64_t{1} << len;
        for (std::uint64_t word = 0; word < count; ++word) {
          const bits::BitSeq original =
              bits::BitSeq::from_word(word, static_cast<std::size_t>(len));
          check_encode_matches(original, options,
                               "k=" + std::to_string(k) +
                                   " len=" + std::to_string(len) +
                                   " word=" + std::to_string(word));
          if (HasFatalFailure() || HasNonfatalFailure()) return;
        }
      }
    }
  }
}

TEST(BitplaneEquivalence, RandomLongSequences) {
  std::mt19937_64 rng(0x5eed5eedULL);
  // Lengths biased toward word seams plus uniform draws up to 4096.
  const std::size_t seams[] = {63, 64, 65, 127, 128, 129, 1023, 1024, 1025};
  for (int trial = 0; trial < kRandomCases; ++trial) {
    const std::size_t len = trial < static_cast<int>(std::size(seams))
                                ? seams[trial]
                                : 2 + rng() % 4095;
    const bits::BitSeq original = random_seq(rng, len);
    const ref::BitSeq scalar = ref::from_packed(original);
    ASSERT_EQ(original.transitions(), scalar.transitions()) << "len=" << len;
    const int k = 2 + static_cast<int>(rng() % 7);
    core::ChainOptions options;
    options.block_size = k;
    options.strategy = (trial % 2 == 0) ? core::ChainStrategy::kGreedy
                                        : core::ChainStrategy::kOptimalDp;
    check_encode_matches(original, options,
                         "trial=" + std::to_string(trial) +
                             " len=" + std::to_string(len) +
                             " k=" + std::to_string(k));
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
}

TEST(BitplaneEquivalence, EncodeManyMatchesSerialOracle) {
  // 32 lines big enough to cross encode_many's parallel threshold: slot i of
  // the pooled fan-out must equal the serial oracle's encode of line i.
  std::mt19937_64 rng(42);
  std::vector<bits::BitSeq> lines;
  for (int i = 0; i < 32; ++i) lines.push_back(random_seq(rng, 257));
  core::ChainOptions options;
  const core::ChainEncoder encoder(options);
  const std::vector<core::EncodedChain> fast = encoder.encode_many(lines);
  const std::vector<core::EncodedChain> oracle =
      coreref::encode_many(lines, options);
  ASSERT_EQ(fast.size(), oracle.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    expect_chains_equal(fast[i], oracle[i], "line " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Word-boundary properties: the packed kernels' seams, straddles and partial
// words, each against the oracle.

TEST(BitplaneBoundary, SeamLengths) {
  std::mt19937_64 rng(7);
  for (const std::size_t len : {63u, 64u, 65u, 127u, 128u, 129u}) {
    const bits::BitSeq packed = random_seq(rng, len);
    const ref::BitSeq scalar = ref::from_packed(packed);
    EXPECT_EQ(packed.size(), len);
    EXPECT_EQ(packed.transitions(), scalar.transitions()) << "len=" << len;
    EXPECT_EQ(packed.to_stream_string(), scalar.to_stream_string());
    // Round trip through the oracle representation is lossless.
    EXPECT_EQ(ref::to_packed(scalar), packed) << "len=" << len;
  }
}

TEST(BitplaneBoundary, TransitionWindowsStraddlingSeams) {
  std::mt19937_64 rng(11);
  const bits::BitSeq packed = random_seq(rng, 300);
  const ref::BitSeq scalar = ref::from_packed(packed);
  const std::size_t edges[] = {0,   1,   62,  63,  64,  65,  126, 127,
                               128, 129, 191, 192, 193, 255, 256, 299};
  for (const std::size_t first : edges) {
    for (const std::size_t last : edges) {
      if (last < first) continue;
      ASSERT_EQ(packed.transitions_in(first, last),
                scalar.transitions_in(first, last))
          << "[" << first << "," << last << "]";
    }
  }
}

TEST(BitplaneBoundary, TransitionsInRejectsWindowPastEnd) {
  const bits::BitSeq seq(100);
  EXPECT_THROW(seq.transitions_in(0, 100), std::out_of_range);
  EXPECT_THROW(seq.transitions_in(50, 512), std::out_of_range);
  EXPECT_EQ(seq.transitions_in(0, 99), 0);
}

TEST(BitplaneBoundary, SliceAcrossWords) {
  std::mt19937_64 rng(13);
  const bits::BitSeq packed = random_seq(rng, 200);
  const ref::BitSeq scalar = ref::from_packed(packed);
  for (const std::size_t first : {0u, 1u, 31u, 63u, 64u, 65u, 100u, 127u}) {
    for (const std::size_t len : {0u, 1u, 63u, 64u, 65u, 72u}) {
      if (first + len > packed.size()) continue;
      ASSERT_EQ(packed.slice(first, len).to_stream_string(),
                scalar.slice(first, len).to_stream_string())
          << "first=" << first << " len=" << len;
    }
  }
}

TEST(BitplaneBoundary, WindowReadsStraddlingWords) {
  std::mt19937_64 rng(17);
  const bits::BitSeq packed = random_seq(rng, 200);
  for (const std::size_t first : {0u, 7u, 50u, 63u, 64u, 120u, 127u, 128u}) {
    for (const std::size_t len : {1u, 2u, 16u, 63u, 64u}) {
      if (first + len > packed.size()) continue;
      std::uint64_t expect = 0;
      for (std::size_t i = 0; i < len; ++i) {
        expect |= static_cast<std::uint64_t>(packed[first + i]) << i;
      }
      ASSERT_EQ(packed.window(first, len), expect)
          << "first=" << first << " len=" << len;
    }
  }
}

TEST(BitplaneBoundary, SetWindowRoundTripsAtSeams) {
  std::mt19937_64 rng(19);
  for (const std::size_t first : {0u, 50u, 60u, 63u, 64u, 100u, 126u}) {
    for (const std::size_t len : {1u, 5u, 63u, 64u}) {
      bits::BitSeq packed = random_seq(rng, 192);
      ref::BitSeq scalar = ref::from_packed(packed);
      const std::uint64_t value = rng();
      packed.set_window(first, len, value);
      for (std::size_t i = 0; i < len; ++i) {
        scalar.set(first + i, static_cast<int>((value >> i) & 1u));
      }
      ASSERT_EQ(packed.to_stream_string(), scalar.to_stream_string())
          << "first=" << first << " len=" << len;
      ASSERT_EQ(packed.window(first, len),
                value & (len == 64 ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << len) - 1));
    }
  }
}

TEST(BitplaneBoundary, PushBackGrowsAcrossWordSeam) {
  bits::BitSeq packed;
  ref::BitSeq scalar;
  std::mt19937_64 rng(23);
  for (int i = 0; i < 200; ++i) {
    const int bit = static_cast<int>(rng() & 1);
    packed.push_back(bit);
    scalar.push_back(bit);
    if (i == 62 || i == 63 || i == 64 || i == 127 || i == 128 || i == 199) {
      ASSERT_EQ(packed.to_stream_string(), scalar.to_stream_string())
          << "i=" << i;
      ASSERT_EQ(packed.transitions(), scalar.transitions()) << "i=" << i;
    }
  }
}

TEST(BitplaneBoundary, FromPackedWordsMasksTailGarbage) {
  // The zeroed-tail invariant: garbage bits past size() must be scrubbed so
  // default equality and maskless kernels stay valid.
  std::vector<std::uint64_t> dirty = {~std::uint64_t{0}, ~std::uint64_t{0}};
  const bits::BitSeq seq = bits::BitSeq::from_packed_words(dirty, 70);
  EXPECT_EQ(seq.size(), 70u);
  EXPECT_EQ(seq.words()[1], (std::uint64_t{1} << 6) - 1);
  EXPECT_EQ(seq, bits::BitSeq(70, 1));
  EXPECT_EQ(seq.transitions(), 0);
  EXPECT_THROW(bits::BitSeq::from_packed_words({0}, 70), std::invalid_argument);
}

TEST(BitplaneBoundary, VerticalLinesMatchPerLineExtraction) {
  // The 32x32 transpose path against the scalar column gather, at sizes on
  // every side of the 32-cycle chunk and 64-bit plane-word boundaries.
  std::mt19937_64 rng(29);
  for (const std::size_t nwords : {1u, 31u, 32u, 33u, 63u, 64u, 65u, 100u}) {
    std::vector<std::uint32_t> words(nwords);
    for (auto& w : words) w = static_cast<std::uint32_t>(rng());
    const std::vector<bits::BitSeq> lines = bits::vertical_lines(words);
    ASSERT_EQ(lines.size(), 32u);
    for (unsigned b = 0; b < 32; ++b) {
      ASSERT_EQ(lines[b], bits::vertical_line(words, b))
          << "nwords=" << nwords << " line=" << b;
    }
    EXPECT_EQ(bits::from_vertical_lines(lines, nwords), words)
        << "nwords=" << nwords;
  }
}

}  // namespace
}  // namespace asimt
