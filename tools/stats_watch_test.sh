#!/bin/sh
# Pins the `asimt stats --watch` restart contract (docs/SERVING.md): a
# watcher sampling a daemon must *outlive* that daemon — when the socket
# goes away mid-watch it prints a "reconnecting" note and keeps sampling,
# and when a new daemon binds the same path the samples resume. Only the
# non-watch (one-shot) form fails hard on a dead socket.
# usage: stats_watch_test.sh <asimt-binary>
set -u

asimt="$1"
tmp="${TMPDIR:-/tmp}/stats_watch_$$"
mkdir -p "$tmp" || exit 1
sock="$tmp/daemon.sock"
server_pid=
watch_pid=
trap 'test -n "$watch_pid" && kill "$watch_pid" 2>/dev/null;
      test -n "$server_pid" && kill "$server_pid" 2>/dev/null;
      rm -rf "$tmp"' EXIT

fail() {
  echo "FAIL: $*"
  sed 's/^/  watch: /' "$tmp/watch_out" 2>/dev/null
  exit 1
}

boot_daemon() {
  "$asimt" serve --socket "$sock" >"$tmp/serve_out" 2>"$tmp/serve_err" &
  server_pid=$!
  tries=0
  until grep -q "listening on" "$tmp/serve_out" 2>/dev/null; do
    kill -0 "$server_pid" 2>/dev/null || fail "daemon died before readiness"
    tries=$((tries + 1))
    [ "$tries" -gt 100 ] && fail "daemon never became ready"
    sleep 0.1
  done
}

count_samples() {
  grep -c "^requests " "$tmp/watch_out" 2>/dev/null || echo 0
}

wait_for() {
  # wait_for <predicate-command...> — bounded poll, then fail.
  tries=0
  until "$@"; do
    tries=$((tries + 1))
    [ "$tries" -gt 150 ] && fail "timed out waiting for: $*"
    sleep 0.1
  done
}

boot_daemon

"$asimt" stats --socket "$sock" --watch 1 >"$tmp/watch_out" 2>"$tmp/watch_err" &
watch_pid=$!

# First sample lands against the live daemon.
wait_for sh -c "[ \"\$(grep -c '^requests ' '$tmp/watch_out')\" -ge 1 ]"

# Kill the daemon under the watcher. The watcher must report the outage and
# stay alive — not exit, not crash.
kill -TERM "$server_pid"
wait "$server_pid" || fail "daemon exited nonzero on SIGTERM"
server_pid=
wait_for grep -q "reconnecting" "$tmp/watch_out"
kill -0 "$watch_pid" 2>/dev/null || fail "watcher died with the daemon"

# A new daemon takes over the same path; the watcher's samples resume
# without a restart of the watcher.
before=$(count_samples)
boot_daemon
wait_for sh -c "[ \"\$(grep -c '^requests ' '$tmp/watch_out')\" -gt $before ]"

kill "$watch_pid" 2>/dev/null
wait "$watch_pid" 2>/dev/null
watch_pid=

# The one-shot form keeps its hard-failure contract: no daemon, exit 1,
# diagnostic on stderr.
kill -TERM "$server_pid"
wait "$server_pid"
server_pid=
if "$asimt" stats --socket "$sock" >"$tmp/oneshot_out" 2>"$tmp/oneshot_err"; then
  fail "one-shot stats against a dead socket exited 0"
fi
[ -s "$tmp/oneshot_err" ] || fail "one-shot failure left no stderr diagnostic"

echo "stats --watch restart contract OK"
