// Tests for the report layer: the JSON report's partitions reconcile, the
// annotated listing's columns sum to the profiler total, and the stdout
// summary names the hot blocks.
#include "profile/report.h"

#include <gtest/gtest.h>

#include <memory>

#include "cfg/cfg.h"
#include "isa/assembler.h"
#include "sim/cpu.h"
#include "telemetry/json.h"

namespace asimt::profile {
namespace {

// Heap-allocated and never moved: the profiler keeps a pointer to `cfg`.
struct Fixture {
  isa::Program program = isa::assemble(R"(
        li      $t0, 0
        li      $t1, 29
loop:   addiu   $t0, $t0, 1
        xori    $t2, $t0, 0x155
        bne     $t0, $t1, loop
        halt
)");
  cfg::Cfg cfg = cfg::build_cfg(program);
  TransitionProfiler prof{cfg};

  Fixture() {
    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    cpu.run(100'000, [&](std::uint32_t pc, std::uint32_t word) {
      prof.on_fetch(pc, word);
    });
    EXPECT_TRUE(cpu.state().halted);
  }
};

std::unique_ptr<Fixture> make_fixture() { return std::make_unique<Fixture>(); }

TEST(ReportTest, JsonReportPartitionsReconcile) {
  const auto fxp = make_fixture();
  const Fixture& fx = *fxp;
  const json::Value doc = profile_report(fx.prof, 10);

  const long long total = doc.at("transitions").at("total").as_int();
  EXPECT_EQ(total, fx.prof.total_transitions());
  EXPECT_EQ(doc.at("transitions").at("encoded").as_int() +
                doc.at("transitions").at("unencoded").as_int() +
                doc.at("transitions").at("out_of_image").as_int(),
            total);
  EXPECT_EQ(doc.at("fetches").as_int(),
            static_cast<long long>(fx.prof.fetches()));

  // per_line sums to the total (every transition flips some set of lines,
  // each counted once per line).
  long long line_sum = 0;
  for (const json::Value& v : doc.at("per_line").as_array()) {
    line_sum += v.as_int();
  }
  EXPECT_EQ(line_sum, total);

  // Blocks are sorted by descending transitions, and each block's own lines
  // array refines its transition count.
  const auto& blocks = doc.at("blocks").as_array();
  ASSERT_FALSE(blocks.empty());
  long long prev = blocks[0].at("transitions").as_int();
  for (const json::Value& b : blocks) {
    const long long t = b.at("transitions").as_int();
    EXPECT_LE(t, prev);
    prev = t;
    if (const json::Value* lines = b.find("lines")) {
      long long bl = 0;
      for (const json::Value& v : lines->as_array()) bl += v.as_int();
      EXPECT_EQ(bl, t);
    }
  }
  // Round-trips through the serializer like every other export.
  EXPECT_EQ(json::parse(doc.dump(2)), doc);
}

TEST(ReportTest, AnnotatedListingReconcilesAndMarksEncoding) {
  auto fxp = make_fixture();
  Fixture& fx = *fxp;
  // Mark the loop block encoded so both flags appear in the listing.
  const cfg::BasicBlock& loop = fx.cfg.blocks[1];
  fx.prof.mark_encoded(loop.start, loop.instruction_count());
  const std::string listing = annotate_listing(fx.program, fx.cfg, fx.prof);

  // Per-instruction lines carry pc, exec count, transitions, and disasm;
  // summed per-word costs equal the total printed in the header.
  long long word_sum = 0;
  for (std::size_t i = 0; i < fx.prof.word_count(); ++i) {
    word_sum += fx.prof.word_transitions(i);
  }
  EXPECT_EQ(word_sum, fx.prof.total_transitions());
  EXPECT_NE(listing.find(std::to_string(fx.prof.total_transitions()) +
                         " transitions"),
            std::string::npos);
  EXPECT_NE(listing.find("# block 0"), std::string::npos);
  EXPECT_NE(listing.find("# per-block summary"), std::string::npos);
  EXPECT_NE(listing.find(" E "), std::string::npos);   // encoded marker column
  EXPECT_NE(listing.find("addiu"), std::string::npos); // disassembly present
  EXPECT_NE(listing.find("100.0%"), std::string::npos);  // total share line
}

TEST(ReportTest, SummaryTextNamesHotBlocksAndLines) {
  const auto fxp = make_fixture();
  const Fixture& fx = *fxp;
  const std::string summary = summary_text(fx.prof, 3);
  EXPECT_NE(summary.find("transitions:"), std::string::npos);
  EXPECT_NE(summary.find("hot blocks:"), std::string::npos);
  EXPECT_NE(summary.find("hot bus lines:"), std::string::npos);
  // The loop block dominates this program; it must lead the hot list.
  EXPECT_NE(summary.find("block    1"), std::string::npos);
}

}  // namespace
}  // namespace asimt::profile
