// Open-loop load generator for the serve daemon (`asimt loadgen`).
//
// Models the arrival process of independent clients the way mutated-style
// load generators do: each connection draws exponential inter-arrival gaps
// from a seeded PRNG and sends at those *scheduled* instants, never waiting
// for the previous reply. Latency is measured from the scheduled send time,
// so a server that stalls accumulates the queueing delay of every request
// that should have been sent meanwhile — the open-loop property that makes
// tail percentiles honest (no coordinated omission).
//
// Replies are matched to requests by id (the daemon echoes "id" as the first
// reply field), not arrival order, so an injected junk reply or a daemon
// restart cannot silently shift every subsequent latency sample onto the
// wrong request. A connection dropped mid-run (daemon restart, chaos
// disconnect) reconnects with bounded full-jitter backoff; every scheduled
// send that falls inside the outage is *missed*, not deferred — the gap
// shows up in the loss accounting instead of as a thundering-herd burst,
// and the run fails only when every connection is gone for good.
//
// The request mix is deterministic in (seed, conns, rate, seconds): a fixed
// pool of generated workloads, each request choosing op/program/k from the
// per-connection PRNG stream. Reconnect backoff draws from a separate
// stream, so outages do not perturb the workload sequence. Identical
// invocations replay identical request sequences, which is what lets CI
// assert on the artifact.
//
// Results are reported as a schema-v2 artifact ("bench": "serve_loadgen")
// whose rows carry stats.median like every other bench artifact, so
// `tools/benchdiff --trajectory` gates serve latency exactly like compute
// benches: latency/p50|p90|p99|p999 in milliseconds, plus req_time_ns
// (1e9 / throughput — lower-better, the gate-friendly form of throughput)
// and goodput_time_ns (the same form for *successful* replies only — the
// attempted-vs-goodput gap is the overload + fault toll).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/json.h"

namespace asimt::serve {

struct LoadgenOptions {
  std::string socket_path;
  unsigned conns = 4;
  double rate = 2000.0;   // total target requests/second across connections
  double seconds = 2.0;   // send window; receive drains past it
  std::uint64_t seed = 42;
  // When nonzero, every request carries "deadline_ms": the daemon sheds
  // work it cannot finish in time instead of the client timing out blind.
  std::uint64_t deadline_ms = 0;
  // Mid-run reconnect policy (the *initial* connect stays single-attempt, so
  // a wrong socket path fails fast instead of retrying into the void).
  unsigned reconnect_attempts = 5;      // per outage; then the conn gives up
  std::uint64_t reconnect_base_ms = 10; // full-jitter backoff ceiling start
  std::uint64_t reconnect_max_ms = 200; // backoff ceiling cap
  double drain_seconds = 5.0;           // post-window wait for stragglers
};

struct LoadgenReport {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;      // replies matched to a sent request
  std::uint64_t errors = 0;        // "ok":false, other than shed/timeout
  std::uint64_t shed = 0;          // "kind":"overloaded" replies
  std::uint64_t timeouts = 0;      // "kind":"timeout" replies
  std::uint64_t connect_failures = 0;
  // Overload/fault loss accounting: scheduled sends skipped while the
  // connection was down, requests in flight when it dropped, replies that
  // matched no outstanding id (chaos garbage answered by the daemon).
  std::uint64_t missed_sends = 0;
  std::uint64_t lost = 0;
  std::uint64_t unmatched = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t conns_gave_up = 0;  // outages that exhausted reconnects
  double elapsed_seconds = 0.0;    // first scheduled send to last reply
  double throughput_rps = 0.0;     // received / elapsed
  double goodput_rps = 0.0;        // successful ("ok":true) replies / elapsed
  double attempted_rps = 0.0;      // (sent + missed) / elapsed: offered load
  // Client-observed latency percentiles over all received replies,
  // milliseconds, measured from the *scheduled* send instant (open loop).
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
  double mean_ms = 0.0;
  // Server-observed latency (the "server_ns" field the daemon echoes into
  // replies when the request carries "echo_span":true — server work only,
  // no queueing/transfer). Reported side by side with the client view: the
  // gap between the two is the queueing + transport share of the tail.
  std::uint64_t server_samples = 0;  // replies that carried the echo
  double server_p50_ms = 0.0;
  double server_p90_ms = 0.0;
  double server_p99_ms = 0.0;
  double server_p999_ms = 0.0;
  double server_max_ms = 0.0;
  double server_mean_ms = 0.0;

  // The run is useful when *any* reply came back: errors, sheds, and
  // outages are degradation the report quantifies, not failure. Only a run
  // where every connection failed (or nothing was ever answered) is void.
  bool ok() const { return received > 0; }
};

// Type-7 quantile (linear interpolation at rank h = (n-1)·q) over an
// ascending-sorted sample — the estimator every reported percentile uses.
// Unlike ceil-rank selection it does not collapse p99.9 onto the max for
// n < 1000 samples. Exposed for tests.
double interpolated_quantile(const std::vector<double>& sorted, double q);

// Runs the load and blocks until every in-flight reply is drained.
LoadgenReport run_loadgen(const LoadgenOptions& options);

// The schema-v2 artifact for `report` (manifest embedded, kFull fields).
json::Value loadgen_artifact(const LoadgenOptions& options,
                             const LoadgenReport& report);

// Console summary table.
std::string format_report(const LoadgenReport& report);

}  // namespace asimt::serve
