#include "core/transform.h"

namespace asimt::core {

std::string Transform::name() const {
  switch (tt_) {
    case 0b1010: return "x";
    case 0b0101: return "~x";
    case 0b1100: return "y";
    case 0b0011: return "~y";
    case 0b0110: return "xor";
    case 0b1001: return "xnor";
    case 0b0001: return "nor";
    case 0b0111: return "nand";
    case 0b0000: return "0";
    case 0b1111: return "1";
    case 0b1000: return "and";
    case 0b1110: return "or";
    case 0b0010: return "x&~y";
    case 0b0100: return "~x&y";
    case 0b1011: return "x|~y";
    case 0b1101: return "~x|y";
    default: return "?";
  }
}

}  // namespace asimt::core
