#include "core/reference_encoder.h"

#include <limits>
#include <optional>
#include <stdexcept>

#include "bitstream/reference.h"

namespace asimt::core::reference {

namespace {

namespace refbits = asimt::bits::reference;

// Local scalar decode recurrences — deliberately NOT the ones in
// core/block_code.cpp, so the oracle stays independent of fast-path code.
std::uint32_t ref_decode_block(Transform tau, std::uint32_t code, int k) {
  std::uint32_t word = code & 1u;  // x_0 = x̃_0
  int prev = static_cast<int>(code & 1u);
  for (int i = 1; i < k; ++i) {
    const int enc = static_cast<int>((code >> i) & 1u);
    const int orig = tau.apply(enc, prev);
    word |= static_cast<std::uint32_t>(orig) << i;
    prev = orig;
  }
  return word;
}

std::uint32_t ref_decode_block_overlapped(Transform tau, std::uint32_t code,
                                          int overlap_original, int k) {
  std::uint32_t word = static_cast<std::uint32_t>(overlap_original & 1);
  // History for the first recurrence instance is the ENCODED overlap bit.
  int prev = static_cast<int>(code & 1u);
  for (int i = 1; i < k; ++i) {
    const int enc = static_cast<int>((code >> i) & 1u);
    const int orig = tau.apply(enc, prev);
    word |= static_cast<std::uint32_t>(orig) << i;
    prev = orig;
  }
  return word;
}

struct BlockChoice {
  std::uint32_t code = 0;
  Transform tau;
  int cost = 0;
};

// The original exhaustive per-block scan: every (code, first-matching-τ)
// candidate, cheapest cost wins, ties to earliest τ then smallest code.
std::optional<BlockChoice> best_choice(std::uint32_t word, int len, int s_in,
                                       bool chain_initial,
                                       std::span<const Transform> allowed) {
  if (chain_initial && s_in != static_cast<int>(word & 1u)) {
    return std::nullopt;  // chain-initial blocks store their first bit plain
  }
  std::optional<BlockChoice> best;
  int best_tau_rank = 0;
  const std::uint32_t rest_count = std::uint32_t{1} << (len - 1);
  for (std::uint32_t rest = 0; rest < rest_count; ++rest) {
    const std::uint32_t code =
        static_cast<std::uint32_t>(s_in & 1) | (rest << 1);
    const int cost = refbits::word_transitions(code, len);
    for (std::size_t ti = 0; ti < allowed.size(); ++ti) {
      const Transform tau = allowed[ti];
      const std::uint32_t decoded =
          chain_initial ? ref_decode_block(tau, code, len)
                        : ref_decode_block_overlapped(
                              tau, code, static_cast<int>(word & 1u), len);
      if (decoded != word) continue;
      const bool better =
          !best || cost < best->cost ||
          (cost == best->cost &&
           (static_cast<int>(ti) < best_tau_rank ||
            (static_cast<int>(ti) == best_tau_rank && code < best->code)));
      if (better) {
        best = BlockChoice{code, tau, cost};
        best_tau_rank = static_cast<int>(ti);
      }
      break;  // earlier transforms in `allowed` were already tried for this code
    }
  }
  return best;
}

std::uint32_t window_word(const refbits::BitSeq& seq, std::size_t start,
                          int len) {
  std::uint32_t w = 0;
  for (int i = 0; i < len; ++i) {
    w |= static_cast<std::uint32_t>(seq[start + static_cast<std::size_t>(i)])
         << i;
  }
  return w;
}

void write_code(refbits::BitSeq& stored, std::size_t start, int len,
                std::uint32_t code) {
  for (int i = 0; i < len; ++i) {
    stored.set(start + static_cast<std::size_t>(i),
               static_cast<int>((code >> i) & 1u));
  }
}

EncodedChain encode_greedy(const refbits::BitSeq& original,
                           const ChainOptions& options) {
  refbits::BitSeq stored(original.size());
  EncodedChain out;
  out.blocks = ChainEncoder::partition(original.size(), options.block_size);
  if (out.blocks.empty()) {
    out.stored = refbits::to_packed(stored);
    return out;
  }
  if (original.size() == 1) {
    stored.set(0, original[0]);
    out.stored = refbits::to_packed(stored);
    return out;
  }
  int s_in = original[0];
  for (std::size_t bi = 0; bi < out.blocks.size(); ++bi) {
    ChainBlock& block = out.blocks[bi];
    const std::uint32_t word = window_word(original, block.start, block.length);
    const auto choice =
        best_choice(word, block.length, s_in, bi == 0, options.allowed);
    if (!choice) {
      throw std::logic_error("chain encoder: infeasible block (no identity?)");
    }
    block.tau = choice->tau;
    write_code(stored, block.start, block.length, choice->code);
    s_in = static_cast<int>((choice->code >> (block.length - 1)) & 1u);
  }
  out.stored = refbits::to_packed(stored);
  return out;
}

EncodedChain encode_dp(const refbits::BitSeq& original,
                       const ChainOptions& options) {
  refbits::BitSeq stored(original.size());
  EncodedChain out;
  out.blocks = ChainEncoder::partition(original.size(), options.block_size);
  if (out.blocks.empty()) {
    out.stored = refbits::to_packed(stored);
    return out;
  }
  if (original.size() == 1) {
    stored.set(0, original[0]);
    out.stored = refbits::to_packed(stored);
    return out;
  }

  constexpr int kInf = std::numeric_limits<int>::max() / 2;
  const std::size_t nblocks = out.blocks.size();

  struct Decision {
    std::uint32_t code = 0;
    Transform tau;
    int prev_state = 0;
  };
  std::vector<std::array<Decision, 2>> decisions(nblocks);
  std::array<int, 2> cost = {kInf, kInf};
  cost[original[0]] = 0;  // chain-initial block stores its first bit plain

  for (std::size_t bi = 0; bi < nblocks; ++bi) {
    const ChainBlock& block = out.blocks[bi];
    const std::uint32_t word = window_word(original, block.start, block.length);
    std::array<int, 2> next_cost = {kInf, kInf};
    for (int s_in = 0; s_in < 2; ++s_in) {
      if (cost[s_in] >= kInf) continue;
      const std::uint32_t rest_count = std::uint32_t{1} << (block.length - 1);
      for (std::uint32_t rest = 0; rest < rest_count; ++rest) {
        const std::uint32_t code =
            static_cast<std::uint32_t>(s_in) | (rest << 1);
        const int block_cost = refbits::word_transitions(code, block.length);
        for (Transform tau : options.allowed) {
          const std::uint32_t decoded =
              bi == 0 ? ref_decode_block(tau, code, block.length)
                      : ref_decode_block_overlapped(
                            tau, code, static_cast<int>(word & 1u),
                            block.length);
          if (decoded != word) continue;
          const int s_out =
              static_cast<int>((code >> (block.length - 1)) & 1u);
          const int total = cost[s_in] + block_cost;
          if (total < next_cost[s_out]) {
            next_cost[s_out] = total;
            decisions[bi][s_out] = Decision{code, tau, s_in};
          }
          break;  // cheaper tau ranks first; cost identical for same code
        }
      }
    }
    cost = next_cost;
  }

  int state = cost[0] <= cost[1] ? 0 : 1;
  if (cost[state] >= kInf) {
    throw std::logic_error("chain encoder DP: no feasible encoding");
  }
  for (std::size_t bi = nblocks; bi-- > 0;) {
    const Decision& d = decisions[bi][state];
    out.blocks[bi].tau = d.tau;
    write_code(stored, out.blocks[bi].start, out.blocks[bi].length, d.code);
    state = d.prev_state;
  }
  out.stored = refbits::to_packed(stored);
  return out;
}

}  // namespace

EncodedChain encode_chain(const bits::BitSeq& original,
                          const ChainOptions& options) {
  if (options.block_size < 2 || options.block_size > 16) {
    throw std::invalid_argument("chain block size must be in [2, 16]");
  }
  if (options.allowed.empty()) {
    throw std::invalid_argument("chain encoder needs a non-empty transform set");
  }
  const refbits::BitSeq scalar = refbits::from_packed(original);
  switch (options.strategy) {
    case ChainStrategy::kGreedy: return encode_greedy(scalar, options);
    case ChainStrategy::kOptimalDp: return encode_dp(scalar, options);
    default: throw std::logic_error("unknown chain strategy");
  }
}

std::vector<EncodedChain> encode_many(std::span<const bits::BitSeq> originals,
                                      const ChainOptions& options) {
  std::vector<EncodedChain> out;
  out.reserve(originals.size());
  for (const bits::BitSeq& line : originals) {
    out.push_back(encode_chain(line, options));
  }
  return out;
}

}  // namespace asimt::core::reference
