// Cycle-by-cycle model of the fetch-side decode hardware (paper §7, Fig. 5).
//
// The decoder watches the PC and bus-word stream the fetch engine produces.
// A BBIT hit at a fetched PC enters "encoded mode" and selects the first TT
// entry of that basic block; per-line single-gate transformations then
// restore the original bits of each subsequent fetch. The E/CT fields of the
// tail TT entry tell the hardware when the encoded region ends; everything
// else passes through untouched (identity).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/hw_tables.h"

namespace asimt::core {

class FetchDecoder {
 public:
  struct Stats {
    std::uint64_t fetches = 0;
    std::uint64_t decoded = 0;    // fetches that went through transformations
    std::uint64_t raw = 0;        // identity / not-encoded fetches
    std::uint64_t bbit_hits = 0;  // encoded-mode entries
  };

  FetchDecoder(TtConfig tt, std::vector<BbitEntry> bbit);

  // Processes one fetch: `bus_word` is what the instruction memory drove on
  // the bus for `pc`; the return value is the restored instruction word.
  std::uint32_t feed(std::uint32_t pc, std::uint32_t bus_word);

  bool in_encoded_mode() const { return active_; }
  const Stats& stats() const { return stats_; }

  // Hardware budget introspection.
  std::size_t tt_entries() const { return tt_.entries.size(); }
  std::size_t bbit_entries() const { return bbit_.size(); }

 private:
  std::uint32_t decode_word(std::uint32_t bus_word);
  void enter_entry(std::size_t index, bool at_block_entry);

  TtConfig tt_;
  std::unordered_map<std::uint32_t, std::uint16_t> bbit_;
  Stats stats_;

  bool active_ = false;
  std::size_t entry_index_ = 0;  // current TT entry
  int pos_in_block_ = 0;         // instructions decoded under this entry
  int entry_quota_ = 0;          // instructions this entry covers (k or k-1)
  int countdown_ = -1;           // remaining instructions when E entry active
  std::uint32_t history_ = 0;    // 32 per-line history flip-flops
};

}  // namespace asimt::core
