#!/bin/sh
# Pins the serve readiness contract (cmd_serve in tools/asimt_main.cpp):
# the "listening on" line must reach a *non-tty* stdout before the accept
# loop starts. The daemon sets stdout line-buffered and prints readiness
# only after listen() and the signal handlers are installed, so:
#   1. the line appears promptly even when stdout is a file/pipe (a
#      regression to default block-buffering makes this test time out), and
#   2. a client scrape issued the instant the line is visible must succeed
#      with no retry loop.
# usage: serve_ready_test.sh <asimt-binary>
set -u

asimt="$1"
tmp="${TMPDIR:-/tmp}/serve_ready_$$"
mkdir -p "$tmp" || exit 1
sock="$tmp/daemon.sock"
server_pid=
trap 'test -n "$server_pid" && kill "$server_pid" 2>/dev/null; rm -rf "$tmp"' EXIT

fail() {
  echo "FAIL: $*"
  sed 's/^/  serve stderr: /' "$tmp/serve_err" 2>/dev/null
  exit 1
}

"$asimt" serve --socket "$sock" >"$tmp/serve_out" 2>"$tmp/serve_err" &
server_pid=$!

# The readiness line must show up within a few seconds of boot even though
# stdout is a regular file here, because cmd_serve line-buffers it
# explicitly before printing.
tries=0
until grep -q "listening on" "$tmp/serve_out" 2>/dev/null; do
  kill -0 "$server_pid" 2>/dev/null || fail "daemon died before readiness"
  tries=$((tries + 1))
  [ "$tries" -gt 50 ] && fail "readiness line not flushed within 5s (buffering regression?)"
  sleep 0.1
done

# Readiness means ready: the very first connect must be accepted.
"$asimt" stats --socket "$sock" >"$tmp/stats_out" 2>&1 \
  || fail "metrics scrape right after readiness failed: $(cat "$tmp/stats_out")"
grep -q "requests" "$tmp/stats_out" || fail "scrape produced no metrics"

# And the stop handlers were installed before readiness too: an immediate
# SIGTERM drains cleanly instead of killing the process.
kill -TERM "$server_pid"
wait "$server_pid"
server_rc=$?
server_pid=
[ "$server_rc" -eq 0 ] || fail "daemon exited $server_rc after SIGTERM"
grep -q "drained:" "$tmp/serve_out" || fail "no drain summary after SIGTERM"

echo "serve ready OK"
