#include "core/program_encoder.h"

#include <array>
#include <stdexcept>

#include "bitstream/bitseq.h"
#include "telemetry/metrics.h"

namespace asimt::core {

BlockEncoding encode_basic_block(std::span<const std::uint32_t> words,
                                 std::uint32_t start_pc,
                                 const ChainOptions& options) {
  for (Transform t : options.allowed) {
    if (paper_subset_index(t) < 0) {
      throw std::invalid_argument(
          "encode_basic_block: transform set must fit 3-bit TT indices");
    }
  }
  BlockEncoding enc;
  enc.start_pc = start_pc;
  enc.block_size = options.block_size;
  enc.original_words.assign(words.begin(), words.end());
  enc.original_transitions = bits::total_bus_transitions(words);
  if (words.empty()) return enc;

  const std::size_t m = words.size();
  const auto layout = ChainEncoder::partition(m, options.block_size);
  enc.tt_entries.resize(layout.size());

  // The per-line τ searches are independent; encode_many fans them out
  // across the parallel engine for large blocks (and stays serial for the
  // common small ones). Results are written per line index, so the TT bytes
  // and stored lines are identical at any thread count.
  std::vector<bits::BitSeq> original_lines = bits::vertical_lines(words);
  const ChainEncoder encoder(options);
  std::vector<EncodedChain> chains = encoder.encode_many(original_lines);
  std::vector<bits::BitSeq> stored_lines(kBusLines);
  for (unsigned line = 0; line < kBusLines; ++line) {
    EncodedChain& chain = chains[line];
    if (chain.blocks.size() != layout.size()) {
      throw std::logic_error("encode_basic_block: partition mismatch");
    }
    for (std::size_t bi = 0; bi < chain.blocks.size(); ++bi) {
      enc.tt_entries[bi].tau[line] =
          static_cast<std::uint8_t>(paper_subset_index(chain.blocks[bi].tau));
    }
    stored_lines[line] = std::move(chain.stored);
  }
  enc.encoded_words = bits::from_vertical_lines(stored_lines, m);
  enc.encoded_transitions = bits::total_bus_transitions(enc.encoded_words);

  // E/CT mark the tail block (paper §7.2). CT counts the instructions the
  // tail sequence covers, overlap bit included.
  TtEntry& tail = enc.tt_entries.back();
  tail.end = true;
  tail.ct = static_cast<std::uint8_t>(layout.back().length);

  if (telemetry::enabled()) {
    telemetry::count("encoder.blocks_encoded");
    telemetry::count("encoder.words_encoded", static_cast<long long>(m));
    telemetry::count("encoder.transitions_saved", enc.saved_transitions());
    for (const TtEntry& entry : enc.tt_entries) {
      for (unsigned line = 0; line < kBusLines; ++line) {
        telemetry::count("encoder.tau." + entry.transform(line).name());
      }
    }
  }
  return enc;
}

std::vector<std::uint32_t> decode_basic_block(
    std::span<const std::uint32_t> encoded_words,
    std::span<const TtEntry> tt_entries, int block_size) {
  const std::size_t m = encoded_words.size();
  std::vector<std::uint32_t> decoded(m, 0);
  if (m == 0) return decoded;

  const auto layout = ChainEncoder::partition(m, block_size);
  if (layout.size() != tt_entries.size()) {
    throw std::invalid_argument("decode_basic_block: TT entry count mismatch");
  }
  decoded[0] = encoded_words[0];  // chain-initial words stored plain
  for (std::size_t bi = 0; bi < layout.size(); ++bi) {
    const ChainBlock& block = layout[bi];
    // Lane masks: mask[t] has bit `line` set iff this TT entry decodes that
    // line with kPaperSubset[t]. One τ-parallel apply_word per populated
    // transform then restores all 32 lines of a cycle together, instead of 32
    // scalar recurrence steps.
    std::array<std::uint32_t, kPaperSubset.size()> mask{};
    for (unsigned line = 0; line < kBusLines; ++line) {
      mask[tt_entries[bi].tau[line] & 7u] |= 1u << line;
    }
    // History registers reload from the raw bus word at each block start.
    std::uint32_t history = encoded_words[block.start];
    for (int j = 1; j < block.length; ++j) {
      const std::size_t pos = block.start + static_cast<std::size_t>(j);
      std::uint32_t word = 0;
      for (std::size_t t = 0; t < mask.size(); ++t) {
        if (!mask[t]) continue;
        word |= static_cast<std::uint32_t>(
                    kPaperSubset[t].apply_word(encoded_words[pos], history)) &
                mask[t];
      }
      decoded[pos] = word;
      history = word;
    }
  }
  return decoded;
}

}  // namespace asimt::core
