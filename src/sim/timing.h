// Pipeline timing model.
//
// The paper claims the decode transformations add "no impact to the
// critical fetch stage" (§5/§9): one two-input gate after the bus settles,
// no added cycles. This model quantifies the baseline it would perturb — a
// classic 5-stage in-order pipeline (IF ID EX MEM WB) with forwarding,
// load-use interlocks, taken-branch flushes and optional I-cache miss
// stalls — so the ext_timing bench can show CPI with and without the
// decoder in the fetch path.
#pragma once

#include <cstdint>
#include <optional>

#include "isa/effects.h"
#include "sim/icache.h"

namespace asimt::sim {

struct TimingConfig {
  int branch_taken_penalty = 2;  // IF/ID flush on a taken branch or jump
  int load_use_stall = 1;        // lw result consumed by the next instruction
  int icache_miss_penalty = 8;   // cycles per line refill, when a cache is attached
  // Extra fetch-stage latency of the ASIMT decode gates, in cycles. The
  // paper's argument (and our gate-depth analysis in docs/HARDWARE.md) puts
  // this at 0; the bench sweeps it to show what a slower implementation
  // would cost.
  int decode_latency = 0;
};

// Consumes the dynamic fetch stream (pc, word) and accumulates cycles.
class TimingModel {
 public:
  explicit TimingModel(TimingConfig config) : config_(config) {}

  void on_fetch(std::uint32_t pc, std::uint32_t word) {
    cycles_ += 1 + config_.decode_latency;
    ++instructions_;
    const isa::Instruction inst = isa::decode(word);
    const isa::Effects fx = isa::effects(inst);

    if (expecting_sequential_ && pc != expected_next_pc_) {
      // The previous control instruction was taken: the pipeline fetched
      // down the fall-through path and flushes.
      cycles_ += config_.branch_taken_penalty;
      ++taken_control_;
    }

    if ((pending_load_writes_ & fx.int_reads) != 0 ||
        (pending_load_fp_writes_ & fx.fp_reads) != 0) {
      cycles_ += config_.load_use_stall;
      ++load_use_stalls_;
    }

    pending_load_writes_ = fx.mem_read ? fx.int_writes : 0;
    pending_load_fp_writes_ = fx.mem_read ? fx.fp_writes : 0;
    expecting_sequential_ = fx.control;
    expected_next_pc_ = pc + 4;
  }

  // Call when the fetch missed in an attached instruction cache.
  void on_icache_miss() {
    cycles_ += config_.icache_miss_penalty;
    ++icache_misses_;
  }

  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t instructions() const { return instructions_; }
  std::uint64_t load_use_stalls() const { return load_use_stalls_; }
  std::uint64_t taken_control_flushes() const { return taken_control_; }
  std::uint64_t icache_misses() const { return icache_misses_; }

  double cpi() const {
    return instructions_ == 0
               ? 0.0
               : static_cast<double>(cycles_) / static_cast<double>(instructions_);
  }

 private:
  TimingConfig config_;
  std::uint64_t cycles_ = 0;
  std::uint64_t instructions_ = 0;
  std::uint64_t load_use_stalls_ = 0;
  std::uint64_t taken_control_ = 0;
  std::uint64_t icache_misses_ = 0;
  std::uint32_t pending_load_writes_ = 0;
  std::uint32_t pending_load_fp_writes_ = 0;
  bool expecting_sequential_ = false;
  std::uint32_t expected_next_pc_ = 0;
};

}  // namespace asimt::sim
