// Recorder: the single observability handle the serving layer talks to.
//
// One object owns the three sinks a request's span can land in —
//   - the op × cache-outcome LatencyMatrix behind the `metrics` op,
//   - the crash-safe FlightRecorder behind the `dump` op and the signal
//     handlers,
//   - the slow-request JSONL log (--slow-ms),
// so Service and Server thread a single pointer instead of three, and
// "observability off" is one flag that turns the whole thing into a few
// predictable branches (the <2% warm-path overhead budget is enforced by
// bench/micro_serve.cpp and the trajectory gate).
//
// Split of duties along the request path:
//   Service calls observe(span) at the end of handle_line — *before* the
//   reply bytes go to the socket — so once a client has a reply, the metrics
//   op already counts it (the smoke test's count-equality assertion depends
//   on this ordering). Server calls record(span, ring) after the write
//   completes, which pushes the full span (now including the write stage)
//   into the connection's flight ring and the slow log.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>

#include "obsv/flight.h"
#include "obsv/latency.h"
#include "obsv/span.h"

namespace asimt::obsv {

struct RecorderOptions {
  bool enabled = true;
  std::size_t ring_capacity = 256;  // spans retained per connection
  std::uint64_t slow_ms = 0;        // 0 disables the slow-request log
  std::string slow_log_path;        // JSONL sink for slow spans
  std::string flight_path;          // empty disables the flight recorder
};

class Recorder {
 public:
  explicit Recorder(const RecorderOptions& options);

  bool enabled() const { return options_.enabled; }
  const RecorderOptions& options() const { return options_; }

  LatencyMatrix& latency() { return latency_; }
  const LatencyMatrix& latency() const { return latency_; }

  // nullptr when no flight path was configured (or disabled).
  FlightRecorder* flight() { return flight_.get(); }
  const FlightRecorder* flight() const { return flight_.get(); }

  // Ring plumbing for Server; nullptr when flight recording is off, and all
  // downstream calls accept that quietly.
  SpanRing* acquire_ring(std::uint64_t conn_id);
  void release_ring(SpanRing* ring);

  // Latency-matrix attribution; called before the reply is written.
  void observe(const Span& span);

  // Terminal record after the write stage: flight ring + slow log.
  void record(const Span& span, SpanRing* ring);

  // True when the span would qualify for the slow log (exposed for tests).
  bool is_slow(const Span& span) const;

 private:
  RecorderOptions options_;
  LatencyMatrix latency_;
  std::unique_ptr<FlightRecorder> flight_;
  std::mutex slow_mu_;
  std::ofstream slow_log_;
  bool slow_log_open_ = false;
};

}  // namespace asimt::obsv
