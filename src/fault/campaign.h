// Seed-driven soft-error campaigns over the TT/decode datapath.
//
// Every iteration is a pure function of (seed, iteration index): generate a
// random basic block (the check subsystem's SplitMix64 generators), encode
// it, inject bit flips into one of the four fault targets, replay through
// the FetchDecoder hardware model, and diff the architectural outputs
// against the golden originals. Iterations fan out across the parallel
// engine into pre-sized slots, so the report — every count, every JSON byte
// — is identical at any --jobs value (docs/PARALLELISM.md contract).
//
// Protection modes (docs/RESILIENCE.md):
//   kParity    one parity flip-flop per TT entry, checked as the entry is
//              selected; a mismatch vetoes the entry and the fetch path
//              degrades to the unencoded backing copy for the rest of the
//              basic block — correctness preserved, power win sacrificed.
//   kReencode  decode-time consistency check: an independent shadow decode
//              recomputes every restored word from the observed bus stream
//              (for invertible τ this is algebraically the re-encode of the
//              output against the bus bit); a divergence exposes corrupted
//              history flip-flops, and recovery re-fetches from the backing
//              copy from the detection point on.
//   kBoth      both checkers.
//
// A DecodeFault raised mid-replay (E/CT corruption driving the sequencer
// past the TT) counts as detected: the structured trap is itself the
// containment mechanism, and the model degrades to the backing copy.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault.h"
#include "telemetry/json.h"

namespace asimt::fault {

enum class Protection { kNone, kParity, kReencode, kBoth };
std::string_view protection_name(Protection protection);
std::optional<Protection> protection_from_name(std::string_view name);

struct CampaignOptions {
  std::uint64_t seed = 1;
  std::uint64_t iters = 1000;
  // Iteration i injects into targets[i % targets.size()] — exact per-target
  // splits, independent of thread count.
  std::vector<Target> targets{kAllTargets, kAllTargets + kTargetCount};
  // Per-site Bernoulli flip probability; 0 injects exactly one uniformly
  // chosen site per iteration (the classic single-event-upset model).
  double rate = 0.0;
  Protection protection = Protection::kNone;
  // Wall-clock budget in seconds; 0 = unlimited. A campaign that hits the
  // budget stops at a chunk boundary and reports timed_out plus the exact
  // iteration count it completed, instead of hanging a CI lane.
  double max_seconds = 0.0;
};

// Outcome of one iteration (slot-indexed; all fields deterministic).
struct IterationResult {
  Target target = Target::kTt;
  SiteKind kind = SiteKind::kTauBit;  // of the first flip
  std::uint32_t flips = 0;
  std::uint16_t words = 0;       // basic-block length m
  std::uint16_t block_size = 0;  // k
  // The k-block (chain position) a single-flip τ/history fault belongs to;
  // -1 for multi-flip runs and for E/CT/image/bus kinds.
  std::int32_t expected_block = -1;
  std::uint32_t corrupted_words = 0;  // architectural outputs != golden
  std::uint64_t hamming = 0;          // total bit distance to golden decode
  std::uint32_t lines_affected = 0;
  // Sum over lines of (distinct k-blocks containing corrupted bits - 1):
  // 0 means every line's corruption stayed inside one k-bit block.
  std::uint32_t blocks_escaped = 0;
  bool contained_in_expected = true;  // all corruption inside expected_block
  bool decode_fault = false;          // DecodeFault trapped mid-replay
  bool detected = false;              // any checker (or the trap) flagged it
  bool degraded = false;              // fell back to the unencoded copy
  bool restored = false;              // outputs == golden after recovery
  // Bus transitions actually driven minus the fault-free encoded stream's
  // transitions: the power price of degradation (and of the flipped bits).
  long long extra_transitions = 0;
  std::array<std::uint32_t, core::kBusLines> line_corrupted{};  // bits per line
};

// Per-target rollup (the vulnerability attribution view).
struct TargetStats {
  Target target = Target::kTt;
  std::uint64_t runs = 0;
  std::uint64_t flips = 0;
  std::uint64_t tau_flips = 0, e_flips = 0, ct_flips = 0;  // kTt breakdown
  std::uint64_t corrupted_runs = 0;
  std::uint64_t corrupted_words = 0;
  std::uint64_t hamming = 0;
  std::uint64_t lines_affected = 0;
  std::uint64_t blocks_escaped = 0;
  std::uint64_t contained_runs = 0;  // blocks_escaped == 0
  // Single-flip τ/history runs whose corruption left the k-block the fault
  // was injected into — the paper-structure containment theorem says this
  // must be 0; the CLI exits non-zero if it ever is not.
  std::uint64_t containment_violations = 0;
  std::uint64_t decode_faults = 0;
  std::uint64_t detected = 0;
  std::uint64_t degraded_runs = 0;
  std::uint64_t restored_runs = 0;
  long long extra_transitions = 0;
  std::array<std::uint64_t, core::kBusLines> line_corrupted{};
};

struct CampaignReport {
  std::uint64_t seed = 0;
  std::uint64_t iters_requested = 0;
  std::uint64_t iters_completed = 0;
  bool timed_out = false;
  double rate = 0.0;
  double max_seconds = 0.0;
  Protection protection = Protection::kNone;
  std::vector<TargetStats> per_target;  // options.targets order

  std::uint64_t containment_violations() const {
    std::uint64_t n = 0;
    for (const TargetStats& t : per_target) n += t.containment_violations;
    return n;
  }
};

// One iteration, exposed for tests: index selects the target (round-robin)
// and the RNG stream exactly as the campaign driver would.
IterationResult run_iteration(const CampaignOptions& options,
                              std::uint64_t iteration);

// Runs the campaign (parallel, chunked for the wall-clock budget).
CampaignReport run_campaign(const CampaignOptions& options);

// Deterministic machine report — byte-identical at any --jobs value.
json::Value to_json(const CampaignReport& report);

// Human-readable table for the CLI.
std::string format_report(const CampaignReport& report);

}  // namespace asimt::fault
