#include "baselines/cold_scheduler.h"

#include <bit>

#include "bitstream/bitseq.h"
#include "isa/effects.h"

namespace asimt::baselines {

ColdScheduleResult cold_schedule_block(std::span<const std::uint32_t> words) {
  ColdScheduleResult result;
  result.original_transitions = bits::total_bus_transitions(words);
  const std::size_t n = words.size();
  if (n <= 2) {
    result.words.assign(words.begin(), words.end());
    result.scheduled_transitions = result.original_transitions;
    return result;
  }

  std::vector<isa::Effects> fx(n);
  for (std::size_t i = 0; i < n; ++i) fx[i] = isa::effects(isa::decode(words[i]));

  // Dependence edges i -> j (i before j) as per-node predecessor counts and
  // successor lists; O(n^2) is fine for basic-block sizes.
  std::vector<int> preds(n, 0);
  std::vector<std::vector<std::size_t>> succs(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (fx[i].conflicts_with(fx[j])) {
        succs[i].push_back(j);
        ++preds[j];
      }
    }
  }

  // Greedy list schedule: among ready instructions pick the one closest (in
  // Hamming distance) to the previously emitted word; tie-break by original
  // position for determinism and stability.
  std::vector<bool> done(n, false);
  result.words.reserve(n);
  std::uint32_t prev = 0;
  bool have_prev = false;
  for (std::size_t slot = 0; slot < n; ++slot) {
    std::size_t best = n;
    int best_cost = 33;
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i] || preds[i] != 0) continue;
      const int cost = have_prev ? std::popcount(prev ^ words[i]) : 0;
      if (best == n || cost < best_cost) {
        best = i;
        best_cost = cost;
      }
      if (!have_prev) break;  // first slot: keep the original first ready op
    }
    done[best] = true;
    for (std::size_t j : succs[best]) --preds[j];
    result.words.push_back(words[best]);
    prev = words[best];
    have_prev = true;
  }
  result.scheduled_transitions = bits::total_bus_transitions(result.words);
  return result;
}

std::vector<std::uint32_t> cold_schedule_program(const cfg::Cfg& cfg) {
  std::vector<std::uint32_t> image = cfg.text;
  for (const cfg::BasicBlock& block : cfg.blocks) {
    const auto words = cfg.block_words(block);
    const ColdScheduleResult scheduled = cold_schedule_block(words);
    const std::size_t first = (block.start - cfg.text_base) / 4;
    for (std::size_t i = 0; i < scheduled.words.size(); ++i) {
      image[first + i] = scheduled.words[i];
    }
  }
  return image;
}

}  // namespace asimt::baselines
