// Bit sequences and transition counting.
//
// The unit of analysis in ASIMT is the "vertical" bit sequence: the stream of
// values a single instruction-bus line takes as consecutive instruction words
// are fetched (paper Fig. 1b). This header provides the value type for such
// sequences plus the transition metric that the whole technique minimizes.
//
// Bit-order convention (normative, see DESIGN.md §6): index 0 is the bit that
// appears EARLIEST in time. The paper's figures print the earliest bit as the
// RIGHTMOST character; conversion helpers for that notation are provided.
//
// Storage contract (normative, DESIGN.md §6 rule 8): bits are PACKED, 64 per
// std::uint64_t word, bit i of the sequence living in bit (i % 64) of word
// (i / 64) — one word holds 64 consecutive cycles of one bus line. Unused
// bits past size() in the last word are always zero, which makes word-wise
// equality, hashing, and the word-parallel kernels below valid without
// masking. Transition counting is popcount(x ^ (x >> 1)) with the seam bit
// carried in from the next word; this is exactly the XOR+flip-flop network a
// hardware bit-transition counter implements, done 64 cycles per operation.
// The historical byte-per-bit implementation survives unchanged in
// bitstream/reference.h (namespace bits::reference) as the scalar oracle the
// differential test layer checks this file against.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace asimt::bits {

// Transposes a 32x32 bit matrix in place. Row i, bit j (LSB-first) holds
// M[i][j] on entry and M[j][i] on return. The butterfly network from
// Hacker's Delight §7-3, oriented for the LSB-first convention above; shared
// by the bit-plane extraction below and sim::BusMonitor's per-line counts.
inline void transpose32(std::uint32_t a[32]) {
  std::uint32_t m = 0x0000FFFFu;
  for (unsigned j = 16; j != 0; j >>= 1, m ^= m << j) {
    for (unsigned k = 0; k < 32; k = (k + j + 1) & ~j) {
      const std::uint32_t t = ((a[k] >> j) ^ a[k + j]) & m;
      a[k] ^= t << j;
      a[k + j] ^= t;
    }
  }
}

// A sequence of bits with index 0 = earliest in time, packed 64 per word.
class BitSeq {
 public:
  static constexpr std::size_t kWordBits = 64;

  BitSeq() = default;

  // `n` bits, all set to `fill` (0 or 1).
  explicit BitSeq(std::size_t n, int fill = 0);

  // Builds from stream order: s[0] is the earliest bit. Characters must be
  // '0' or '1'. Throws std::invalid_argument otherwise.
  static BitSeq from_stream_string(std::string_view s);

  // Builds from the paper's figure notation: the RIGHTMOST character of `s`
  // is the earliest bit (e.g. Fig. 2's block word "010").
  static BitSeq from_figure_string(std::string_view s);

  // Builds from the low `n` bits of `word`, where bit 0 of `word` is the
  // earliest bit.
  static BitSeq from_word(std::uint64_t word, std::size_t n);

  // Adopts packed backing words directly (bit i of the sequence = bit i%64
  // of words[i/64]). `words` must hold exactly ceil(n/64) entries; tail bits
  // past `n` are cleared to restore the invariant.
  static BitSeq from_packed_words(std::vector<std::uint64_t> words,
                                  std::size_t n);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  int operator[](std::size_t i) const {
    return static_cast<int>((words_[i / kWordBits] >> (i % kWordBits)) & 1u);
  }
  void set(std::size_t i, int value) {
    const std::uint64_t bit = std::uint64_t{1} << (i % kWordBits);
    if (value & 1) {
      words_[i / kWordBits] |= bit;
    } else {
      words_[i / kWordBits] &= ~bit;
    }
  }
  void push_back(int value) {
    if (size_ % kWordBits == 0) words_.push_back(0);
    ++size_;
    if (value & 1) set(size_ - 1, 1);
  }

  // Number of adjacent positions i with bit[i] != bit[i+1] — the quantity
  // proportional to bus switching power.
  int transitions() const {
    return size_ <= 1 ? 0 : transitions_in(0, size_ - 1);
  }

  // Transitions restricted to the window [first, last] (inclusive indices).
  int transitions_in(std::size_t first, std::size_t last) const;

  // Sub-sequence [first, first+len).
  BitSeq slice(std::size_t first, std::size_t len) const;

  // Packs bits [first, first+len) into a word, bit 0 of the result = bit
  // `first`. Requires len <= 64 and first+len <= size(). The packed window
  // read the chain encoder's block search runs on.
  std::uint64_t window(std::size_t first, std::size_t len) const;

  // Overwrites bits [first, first+len) with the low `len` bits of `value`.
  // Requires len <= 64 and first+len <= size().
  void set_window(std::size_t first, std::size_t len, std::uint64_t value);

  // Packs bits [0, n) into a word, bit 0 of the result = earliest bit.
  // Requires n <= 64 and n <= size().
  std::uint64_t to_word(std::size_t n) const { return window(0, n); }

  // The packed backing words (64 cycles each); tail bits are zero.
  std::span<const std::uint64_t> words() const { return words_; }
  std::size_t word_count() const { return words_.size(); }

  // Stream order: earliest bit first.
  std::string to_stream_string() const;
  // Figure order: earliest bit rightmost (matches the paper's tables).
  std::string to_figure_string() const;

  // Tail bits past size() are zero by invariant, so word-wise comparison is
  // exact sequence equality.
  bool operator==(const BitSeq&) const = default;

 private:
  void trim_tail() {
    const std::size_t tail = size_ % kWordBits;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << tail) - 1;
    }
  }

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

// Transitions of the low `k` bits of `word` viewed as a bit sequence
// (bit 0 earliest). Cheap path used by the exhaustive block-code solver.
int word_transitions(std::uint64_t word, int k);

// Extracts the vertical bit sequence of bus line `line` (0 = LSB) across the
// instruction `words` in fetch order — Fig. 1b's column view.
BitSeq vertical_line(std::span<const std::uint32_t> words, unsigned line);

// Extracts all 32 vertical lines at once as packed bit-planes, using
// word-parallel 32x32 bit-matrix transposes (two per 64 fetch cycles). This
// is the fast path the program encoder uses; element `line` equals
// vertical_line(words, line).
std::vector<BitSeq> vertical_lines(std::span<const std::uint32_t> words);

// Rebuilds 32-bit words from 32 per-line sequences (inverse of taking
// vertical_line for each line), via the same transpose network run in the
// opposite direction. All sequences must have length `count`.
std::vector<std::uint32_t> from_vertical_lines(std::span<const BitSeq> lines,
                                               std::size_t count);

// Total transitions across all 32 bus lines between consecutive words —
// i.e. sum over adjacent pairs of popcount(w[i] ^ w[i+1]).
long long total_bus_transitions(std::span<const std::uint32_t> words);

}  // namespace asimt::bits
