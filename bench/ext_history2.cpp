// A5 — the h=2 extension §5.1 leaves open: two history bits give 256
// candidate functions per block. This bench quantifies the headroom over
// the paper's h=1 codes and the control-bit cost of harvesting it.
#include <cstdio>

#include "core/block_code.h"
#include "core/history2.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt::core;
  std::printf("h=1 (16 fns, 3-bit index) vs h=2 (256 fns, 8-bit index)\n\n");
  std::printf("%-4s %8s %10s %10s %12s %12s\n", "k", "TTN", "RTN(h=1)",
              "RTN(h=2)", "impr(h=1)%", "impr(h=2)%");
  for (int k = 3; k <= 9; ++k) {
    const BlockCode h1 = solve_block_code(k);
    const H2CodeStats h2 = solve_h2_stats(k);
    std::printf("%-4d %8lld %10lld %10lld %12.1f %12.1f\n", k, h1.ttn(),
                h1.rtn(), h2.rtn, h1.improvement_percent(),
                h2.improvement_percent());
  }
  std::printf(
      "\nnote: h=2 stores the first TWO bits of each block plain, so short\n"
      "blocks (k=3) lose ground; the extra history pays off from k=5 up and\n"
      "keeps >50%% improvement where h=1 has decayed to ~32%%.\n");
  const int subset = greedy_h2_subset_size(7);
  std::printf(
      "\ngreedy cover: ~%d h=2 transforms suffice for the h=2 optimum up to "
      "k=7\n(vs the unique 6 at h=1); control cost per block rises from 3 to "
      "%d bits.\n",
      subset, subset <= 16 ? 4 : (subset <= 32 ? 5 : 8));
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("ext_history2")
