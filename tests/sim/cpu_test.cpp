// CPU execution semantics, tested by assembling small programs and checking
// architectural state after halt.
#include "sim/cpu.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>

#include "isa/assembler.h"

namespace asimt::sim {
namespace {

struct Machine {
  Memory memory;
  Cpu cpu{memory};
};

// Assembles `body`, runs until halt (or 100k steps), returns the machine.
std::unique_ptr<Machine> run(const std::string& body,
                             std::uint64_t max_steps = 100'000) {
  const isa::Program program = isa::assemble(body);
  auto m = std::make_unique<Machine>();
  m->memory.load_program(program);
  m->cpu.state().pc = program.entry();
  m->cpu.run(max_steps);
  EXPECT_TRUE(m->cpu.state().halted) << "program did not halt";
  return m;
}

std::uint32_t reg(const Machine& m, unsigned r) { return m.cpu.state().r[r]; }
float freg(const Machine& m, unsigned f) { return m.cpu.state().f[f]; }

TEST(Cpu, ArithmeticImmediates) {
  auto m = run(R"(
        li      $t0, 10
        addiu   $t1, $t0, -3
        slti    $t2, $t1, 8
        sltiu   $t3, $t1, 5
        andi    $t4, $t0, 3
        ori     $t5, $t0, 5
        xori    $t6, $t0, 0xFF
        lui     $t7, 0x1234
        halt
)");
  EXPECT_EQ(reg(*m, isa::kT1), 7u);
  EXPECT_EQ(reg(*m, isa::kT2), 1u);
  EXPECT_EQ(reg(*m, isa::kT3), 0u);
  EXPECT_EQ(reg(*m, isa::kT4), 2u);
  EXPECT_EQ(reg(*m, isa::kT5), 15u);
  EXPECT_EQ(reg(*m, isa::kT6), 0xF5u);
  EXPECT_EQ(reg(*m, isa::kT7), 0x12340000u);
}

TEST(Cpu, RTypeAluOps) {
  auto m = run(R"(
        li      $t0, 12
        li      $t1, -5
        addu    $t2, $t0, $t1
        subu    $t3, $t0, $t1
        and     $t4, $t0, $t1
        or      $t5, $t0, $t1
        xor     $t6, $t0, $t1
        nor     $t7, $t0, $t1
        slt     $s0, $t1, $t0
        sltu    $s1, $t1, $t0
        halt
)");
  EXPECT_EQ(reg(*m, isa::kT2), 7u);
  EXPECT_EQ(reg(*m, isa::kT3), 17u);
  EXPECT_EQ(reg(*m, isa::kT4), 12u & 0xFFFFFFFBu);
  EXPECT_EQ(reg(*m, isa::kT5), 12u | 0xFFFFFFFBu);
  EXPECT_EQ(reg(*m, isa::kT6), 12u ^ 0xFFFFFFFBu);
  EXPECT_EQ(reg(*m, isa::kT7), ~(12u | 0xFFFFFFFBu));
  EXPECT_EQ(reg(*m, isa::kS0), 1u);  // -5 < 12 signed
  EXPECT_EQ(reg(*m, isa::kS1), 0u);  // 0xFFFFFFFB > 12 unsigned
}

TEST(Cpu, Shifts) {
  auto m = run(R"(
        li      $t0, -16
        sll     $t1, $t0, 2
        srl     $t2, $t0, 2
        sra     $t3, $t0, 2
        li      $t4, 3
        sllv    $t5, $t0, $t4
        srlv    $t6, $t0, $t4
        srav    $t7, $t0, $t4
        halt
)");
  EXPECT_EQ(reg(*m, isa::kT1), static_cast<std::uint32_t>(-64));
  EXPECT_EQ(reg(*m, isa::kT2), 0xFFFFFFF0u >> 2);
  EXPECT_EQ(reg(*m, isa::kT3), static_cast<std::uint32_t>(-4));
  EXPECT_EQ(reg(*m, isa::kT5), static_cast<std::uint32_t>(-128));
  EXPECT_EQ(reg(*m, isa::kT6), 0xFFFFFFF0u >> 3);
  EXPECT_EQ(reg(*m, isa::kT7), static_cast<std::uint32_t>(-2));
}

TEST(Cpu, MultiplyDivide) {
  auto m = run(R"(
        li      $t0, -7
        li      $t1, 6
        mult    $t0, $t1
        mflo    $t2
        mfhi    $t3
        li      $t4, 100
        li      $t5, 9
        div     $t4, $t5
        mflo    $t6
        mfhi    $t7
        halt
)");
  EXPECT_EQ(reg(*m, isa::kT2), static_cast<std::uint32_t>(-42));
  EXPECT_EQ(reg(*m, isa::kT3), 0xFFFFFFFFu);  // sign extension of -42
  EXPECT_EQ(reg(*m, isa::kT6), 11u);
  EXPECT_EQ(reg(*m, isa::kT7), 1u);
}

TEST(Cpu, MultuAndDivu) {
  auto m = run(R"(
        li      $t0, 0x10000
        li      $t1, 0x10000
        multu   $t0, $t1
        mfhi    $t2
        mflo    $t3
        li      $t4, 7
        li      $t5, 2
        divu    $t4, $t5
        mflo    $t6
        mfhi    $t7
        halt
)");
  EXPECT_EQ(reg(*m, isa::kT2), 1u);
  EXPECT_EQ(reg(*m, isa::kT3), 0u);
  EXPECT_EQ(reg(*m, isa::kT6), 3u);
  EXPECT_EQ(reg(*m, isa::kT7), 1u);
}

TEST(Cpu, DivisionByZeroIsDefined) {
  auto m = run(R"(
        li      $t0, 5
        li      $t1, 0
        div     $t0, $t1
        mflo    $t2
        mfhi    $t3
        halt
)");
  EXPECT_EQ(reg(*m, isa::kT2), 0u);
  EXPECT_EQ(reg(*m, isa::kT3), 5u);
}

TEST(Cpu, HiLoMoves) {
  auto m = run(R"(
        li      $t0, 77
        mthi    $t0
        li      $t1, 88
        mtlo    $t1
        mfhi    $t2
        mflo    $t3
        halt
)");
  EXPECT_EQ(reg(*m, isa::kT2), 77u);
  EXPECT_EQ(reg(*m, isa::kT3), 88u);
}

TEST(Cpu, ZeroRegisterIsImmutable) {
  auto m = run(R"(
        li      $t0, 5
        addu    $zero, $t0, $t0
        move    $t1, $zero
        halt
)");
  EXPECT_EQ(reg(*m, 0), 0u);
  EXPECT_EQ(reg(*m, isa::kT1), 0u);
}

TEST(Cpu, LoadsAndStores) {
  auto m = run(R"(
        li      $t0, 0x1000
        li      $t1, -2
        sw      $t1, 0($t0)
        lw      $t2, 0($t0)
        lb      $t3, 0($t0)
        lbu     $t4, 0($t0)
        lh      $t5, 0($t0)
        lhu     $t6, 0($t0)
        li      $t7, 0xAB
        sb      $t7, 8($t0)
        lbu     $s0, 8($t0)
        li      $t7, 0xCDEF
        sh      $t7, 12($t0)
        lhu     $s1, 12($t0)
        halt
)");
  EXPECT_EQ(reg(*m, isa::kT2), 0xFFFFFFFEu);
  EXPECT_EQ(reg(*m, isa::kT3), 0xFFFFFFFEu);  // sign-extended byte
  EXPECT_EQ(reg(*m, isa::kT4), 0xFEu);
  EXPECT_EQ(reg(*m, isa::kT5), 0xFFFFFFFEu);
  EXPECT_EQ(reg(*m, isa::kT6), 0xFFFEu);
  EXPECT_EQ(reg(*m, isa::kS0), 0xABu);
  EXPECT_EQ(reg(*m, isa::kS1), 0xCDEFu);
}

TEST(Cpu, BranchesTakenAndNotTaken) {
  auto m = run(R"(
        li      $t0, 1
        li      $t1, 2
        beq     $t0, $t1, bad
        bne     $t0, $t1, good1
        j       bad
good1:  blez    $t0, bad
        bgtz    $t0, good2
        j       bad
good2:  li      $t2, -1
        bltz    $t2, good3
        j       bad
good3:  bgez    $t0, good4
        j       bad
bad:    li      $s7, 99
        halt
good4:  li      $s7, 42
        halt
)");
  EXPECT_EQ(reg(*m, isa::kS7), 42u);
}

TEST(Cpu, LoopExecutesExactCount) {
  auto m = run(R"(
        li      $t0, 0
        li      $t1, 37
loop:   addiu   $t0, $t0, 1
        bne     $t0, $t1, loop
        halt
)");
  EXPECT_EQ(reg(*m, isa::kT0), 37u);
  // 2 setup + 37*2 loop + halt
  EXPECT_EQ(m->cpu.state().instructions, 2u + 74u + 1u);
}

TEST(Cpu, JalAndJrImplementCalls) {
  auto m = run(R"(
        jal     func
        li      $t1, 5
        halt
func:   li      $t0, 7
        jr      $ra
)");
  EXPECT_EQ(reg(*m, isa::kT0), 7u);
  EXPECT_EQ(reg(*m, isa::kT1), 5u);
}

TEST(Cpu, JalrSavesReturnAddress) {
  auto m = run(R"(
        la      $t0, func
        jalr    $s0, $t0
        halt
func:   move    $t1, $s0
        jr      $s0
)");
  // $s0 holds the address of the halt (instruction after jalr).
  EXPECT_NE(reg(*m, isa::kS0), 0u);
  EXPECT_EQ(reg(*m, isa::kT1), reg(*m, isa::kS0));
}

TEST(Cpu, FloatArithmetic) {
  auto m = run(R"(
        li.s    $f1, 3.5
        li.s    $f2, 2.0
        add.s   $f3, $f1, $f2
        sub.s   $f4, $f1, $f2
        mul.s   $f5, $f1, $f2
        div.s   $f6, $f1, $f2
        neg.s   $f7, $f1
        abs.s   $f8, $f7
        mov.s   $f9, $f8
        sqrt.s  $f10, $f2
        halt
)");
  EXPECT_EQ(freg(*m, 3), 5.5f);
  EXPECT_EQ(freg(*m, 4), 1.5f);
  EXPECT_EQ(freg(*m, 5), 7.0f);
  EXPECT_EQ(freg(*m, 6), 1.75f);
  EXPECT_EQ(freg(*m, 7), -3.5f);
  EXPECT_EQ(freg(*m, 8), 3.5f);
  EXPECT_EQ(freg(*m, 9), 3.5f);
  EXPECT_FLOAT_EQ(freg(*m, 10), std::sqrt(2.0f));
}

TEST(Cpu, FloatCompareAndBranch) {
  auto m = run(R"(
        li.s    $f1, 1.0
        li.s    $f2, 2.0
        c.lt.s  $f1, $f2
        bc1t    less
        li      $t0, 0
        halt
less:   c.eq.s  $f1, $f1
        bc1f    bad
        c.le.s  $f2, $f1
        bc1f    good
bad:    li      $t0, 99
        halt
good:   li      $t0, 1
        halt
)");
  EXPECT_EQ(reg(*m, isa::kT0), 1u);
}

TEST(Cpu, FloatConversions) {
  auto m = run(R"(
        li      $t0, -9
        mtc1    $t0, $f1
        cvt.s.w $f2, $f1
        li.s    $f3, 7.75
        trunc.w.s $f4, $f3
        mfc1    $t1, $f4
        mfc1    $t2, $f2
        halt
)");
  EXPECT_EQ(freg(*m, 2), -9.0f);
  EXPECT_EQ(reg(*m, isa::kT1), 7u);
  EXPECT_EQ(reg(*m, isa::kT2), std::bit_cast<std::uint32_t>(-9.0f));
}

TEST(Cpu, FloatMemory) {
  auto m = run(R"(
        li      $t0, 0x2000
        li.s    $f1, 1.25
        swc1    $f1, 4($t0)
        lwc1    $f2, 4($t0)
        halt
)");
  EXPECT_EQ(freg(*m, 2), 1.25f);
  EXPECT_EQ(m->memory.load_float(0x2004), 1.25f);
}

TEST(Cpu, SyscallIsNoOp) {
  auto m = run(R"(
        li      $t0, 3
        syscall
        addiu   $t0, $t0, 1
        halt
)");
  EXPECT_EQ(reg(*m, isa::kT0), 4u);
}

TEST(Cpu, InvalidInstructionThrows) {
  Memory memory;
  memory.store32(0, 0xFFFFFFFFu);
  Cpu cpu(memory);
  EXPECT_THROW(cpu.run(1), CpuError);
}

TEST(Cpu, RunStopsAtMaxSteps) {
  Memory memory;
  // An infinite loop: j 0.
  isa::Instruction j;
  j.op = isa::Op::kJ;
  j.target = 0;
  memory.store32(0, isa::encode(j));
  Cpu cpu(memory);
  EXPECT_EQ(cpu.run(1000), 1000u);
  EXPECT_FALSE(cpu.state().halted);
}

TEST(Cpu, FetchObserverSeesEveryInstruction) {
  const isa::Program program = isa::assemble(R"(
        li      $t0, 0
        li      $t1, 3
loop:   addiu   $t0, $t0, 1
        bne     $t0, $t1, loop
        halt
)");
  Memory memory;
  memory.load_program(program);
  Cpu cpu(memory);
  cpu.state().pc = program.entry();
  std::vector<std::uint32_t> pcs;
  cpu.run(1000, [&](std::uint32_t pc, std::uint32_t word) {
    pcs.push_back(pc);
    EXPECT_EQ(word, memory.load32(pc));
  });
  EXPECT_EQ(pcs.size(), cpu.state().instructions);
  EXPECT_EQ(pcs.front(), program.entry());
  // The loop body PC appears exactly 3 times.
  const std::uint32_t loop_pc = program.symbol("loop");
  EXPECT_EQ(std::count(pcs.begin(), pcs.end(), loop_pc), 3);
}

}  // namespace
}  // namespace asimt::sim
