// Phased Transformation Table management.
//
// §7.1's software path reloads the TT "just prior to entering the loop
// under consideration" — which means the 16-entry budget is per LOOP, not
// per program: before each hot loop, software swaps in that loop's tables.
// Encoded images of different loops coexist in instruction memory (they
// cover disjoint basic blocks); only the decode-side tables are switched.
//
// This module partitions the program into phases (one per natural loop,
// blocks assigned to their innermost loop), runs hot-block selection with
// the full TT budget inside each phase, and accounts for the reprogramming
// cost: the configuration stores executed every time control enters the
// phase from outside.
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/cfg.h"
#include "core/selection.h"

namespace asimt::core {

struct Phase {
  int loop_header = -1;          // block index of the phase's loop header
  std::vector<int> blocks;       // blocks owned by this phase (sorted)
  SelectionResult selection;     // TT/BBIT for this phase, full budget
  std::uint64_t entries_from_outside = 0;  // dynamic phase activations
  // Instructions the §7.1 configuration stub executes per activation:
  // li+sw per register write (reset, block size, TT index, 4 words per TT
  // entry, 2 per BBIT pair, enable).
  std::uint64_t reprogram_instructions_per_entry() const;
};

struct PhasedSelection {
  std::vector<Phase> phases;

  // Dynamic bus transitions with every phase's blocks encoded (the combined
  // image) — excludes reprogramming overhead.
  long long encoded_transitions = 0;
  // Total dynamic instructions spent reprogramming across the run.
  std::uint64_t reprogram_instructions = 0;

  // The union image: every phase's encoded blocks patched into the text.
  std::vector<std::uint32_t> apply_to_text(
      std::span<const std::uint32_t> original_text,
      std::uint32_t text_base) const;
};

// Phase granularity: one phase per maximal loop nest (reprogram once per
// nest entry — cheap, but the nest shares one TT budget) or one per
// innermost loop (every loop gets the full budget, paid for by
// reprogramming on each inner-loop entry).
enum class PhaseGranularity { kOutermostLoops, kInnermostLoops };

// Builds phases from the CFG's natural loops, selects per phase under
// `options` (the TT budget applies to each phase independently), and
// evaluates the result against `profile`.
PhasedSelection select_phased(
    const cfg::Cfg& cfg, const cfg::Profile& profile,
    const SelectionOptions& options,
    PhaseGranularity granularity = PhaseGranularity::kOutermostLoops);

}  // namespace asimt::core
