#include "sim/cpu.h"

#include <bit>
#include <cmath>

namespace asimt::sim {

namespace {

std::int32_t s(std::uint32_t v) { return static_cast<std::int32_t>(v); }
std::uint32_t u(std::int32_t v) { return static_cast<std::uint32_t>(v); }

}  // namespace

void Cpu::execute(std::uint32_t word) {
  using isa::Op;
  const isa::Instruction i = isa::decode(word);
  CpuState& st = state_;
  auto& r = st.r;
  auto& f = st.f;
  std::uint32_t next_pc = st.pc + 4;
  const std::uint32_t btarget = isa::branch_target(st.pc, i);

  switch (i.op) {
    case Op::kSll: r[i.rd] = r[i.rt] << i.shamt; break;
    case Op::kSrl: r[i.rd] = r[i.rt] >> i.shamt; break;
    case Op::kSra: r[i.rd] = u(s(r[i.rt]) >> i.shamt); break;
    case Op::kSllv: r[i.rd] = r[i.rt] << (r[i.rs] & 31); break;
    case Op::kSrlv: r[i.rd] = r[i.rt] >> (r[i.rs] & 31); break;
    case Op::kSrav: r[i.rd] = u(s(r[i.rt]) >> (r[i.rs] & 31)); break;
    case Op::kJr: next_pc = r[i.rs]; break;
    case Op::kJalr: {
      const std::uint32_t target = r[i.rs];
      r[i.rd] = st.pc + 4;
      next_pc = target;
      break;
    }
    case Op::kSyscall: break;  // reserved; executes as a no-op
    case Op::kBreak: st.halted = true; break;
    case Op::kMfhi: r[i.rd] = st.hi; break;
    case Op::kMthi: st.hi = r[i.rs]; break;
    case Op::kMflo: r[i.rd] = st.lo; break;
    case Op::kMtlo: st.lo = r[i.rs]; break;
    case Op::kMult: {
      const std::int64_t p = static_cast<std::int64_t>(s(r[i.rs])) * s(r[i.rt]);
      st.lo = static_cast<std::uint32_t>(p);
      st.hi = static_cast<std::uint32_t>(static_cast<std::uint64_t>(p) >> 32);
      break;
    }
    case Op::kMultu: {
      const std::uint64_t p = static_cast<std::uint64_t>(r[i.rs]) * r[i.rt];
      st.lo = static_cast<std::uint32_t>(p);
      st.hi = static_cast<std::uint32_t>(p >> 32);
      break;
    }
    case Op::kDiv:
      // Division by zero is architecturally undefined on MIPS; we define it
      // (lo = 0, hi = numerator) so simulations stay deterministic.
      if (r[i.rt] == 0) {
        st.lo = 0;
        st.hi = r[i.rs];
      } else if (r[i.rs] == 0x80000000u && r[i.rt] == 0xFFFFFFFFu) {
        st.lo = 0x80000000u;  // INT_MIN / -1 overflow, also defined
        st.hi = 0;
      } else {
        st.lo = u(s(r[i.rs]) / s(r[i.rt]));
        st.hi = u(s(r[i.rs]) % s(r[i.rt]));
      }
      break;
    case Op::kDivu:
      if (r[i.rt] == 0) {
        st.lo = 0;
        st.hi = r[i.rs];
      } else {
        st.lo = r[i.rs] / r[i.rt];
        st.hi = r[i.rs] % r[i.rt];
      }
      break;
    // add/addi/sub keep distinct encodings for bit-pattern realism but wrap
    // like their unsigned twins (no overflow traps in this model).
    case Op::kAdd:
    case Op::kAddu: r[i.rd] = r[i.rs] + r[i.rt]; break;
    case Op::kSub:
    case Op::kSubu: r[i.rd] = r[i.rs] - r[i.rt]; break;
    case Op::kAnd: r[i.rd] = r[i.rs] & r[i.rt]; break;
    case Op::kOr: r[i.rd] = r[i.rs] | r[i.rt]; break;
    case Op::kXor: r[i.rd] = r[i.rs] ^ r[i.rt]; break;
    case Op::kNor: r[i.rd] = ~(r[i.rs] | r[i.rt]); break;
    case Op::kSlt: r[i.rd] = s(r[i.rs]) < s(r[i.rt]) ? 1 : 0; break;
    case Op::kSltu: r[i.rd] = r[i.rs] < r[i.rt] ? 1 : 0; break;
    case Op::kBltz: if (s(r[i.rs]) < 0) next_pc = btarget; break;
    case Op::kBgez: if (s(r[i.rs]) >= 0) next_pc = btarget; break;
    case Op::kJ: next_pc = isa::jump_target(st.pc, i); break;
    case Op::kJal:
      r[isa::kRa] = st.pc + 4;
      next_pc = isa::jump_target(st.pc, i);
      break;
    case Op::kBeq: if (r[i.rs] == r[i.rt]) next_pc = btarget; break;
    case Op::kBne: if (r[i.rs] != r[i.rt]) next_pc = btarget; break;
    case Op::kBlez: if (s(r[i.rs]) <= 0) next_pc = btarget; break;
    case Op::kBgtz: if (s(r[i.rs]) > 0) next_pc = btarget; break;
    case Op::kAddi:
    case Op::kAddiu: r[i.rt] = r[i.rs] + u(i.imm); break;
    case Op::kSlti: r[i.rt] = s(r[i.rs]) < i.imm ? 1 : 0; break;
    case Op::kSltiu: r[i.rt] = r[i.rs] < u(i.imm) ? 1 : 0; break;
    case Op::kAndi: r[i.rt] = r[i.rs] & (u(i.imm) & 0xFFFFu); break;
    case Op::kOri: r[i.rt] = r[i.rs] | (u(i.imm) & 0xFFFFu); break;
    case Op::kXori: r[i.rt] = r[i.rs] ^ (u(i.imm) & 0xFFFFu); break;
    case Op::kLui: r[i.rt] = (u(i.imm) & 0xFFFFu) << 16; break;
    case Op::kLb:
      r[i.rt] = u(static_cast<std::int8_t>(memory_.load8(r[i.rs] + u(i.imm))));
      break;
    case Op::kLh:
      r[i.rt] = u(static_cast<std::int16_t>(memory_.load16(r[i.rs] + u(i.imm))));
      break;
    case Op::kLw: r[i.rt] = memory_.load32(r[i.rs] + u(i.imm)); break;
    case Op::kLbu: r[i.rt] = memory_.load8(r[i.rs] + u(i.imm)); break;
    case Op::kLhu: r[i.rt] = memory_.load16(r[i.rs] + u(i.imm)); break;
    case Op::kSb: memory_.store8(r[i.rs] + u(i.imm), static_cast<std::uint8_t>(r[i.rt])); break;
    case Op::kSh: memory_.store16(r[i.rs] + u(i.imm), static_cast<std::uint16_t>(r[i.rt])); break;
    case Op::kSw: memory_.store32(r[i.rs] + u(i.imm), r[i.rt]); break;
    case Op::kLwc1:
      f[i.ft] = std::bit_cast<float>(memory_.load32(r[i.rs] + u(i.imm)));
      break;
    case Op::kSwc1:
      memory_.store32(r[i.rs] + u(i.imm), std::bit_cast<std::uint32_t>(f[i.ft]));
      break;
    case Op::kAddS: f[i.fd] = f[i.fs] + f[i.ft]; break;
    case Op::kSubS: f[i.fd] = f[i.fs] - f[i.ft]; break;
    case Op::kMulS: f[i.fd] = f[i.fs] * f[i.ft]; break;
    case Op::kDivS: f[i.fd] = f[i.fs] / f[i.ft]; break;
    case Op::kSqrtS: f[i.fd] = std::sqrt(f[i.fs]); break;
    case Op::kAbsS: f[i.fd] = std::fabs(f[i.fs]); break;
    case Op::kMovS: f[i.fd] = f[i.fs]; break;
    case Op::kNegS: f[i.fd] = -f[i.fs]; break;
    case Op::kCvtSW:
      f[i.fd] = static_cast<float>(s(std::bit_cast<std::uint32_t>(f[i.fs])));
      break;
    case Op::kTruncWS:
      f[i.fd] = std::bit_cast<float>(u(static_cast<std::int32_t>(f[i.fs])));
      break;
    case Op::kCEqS: st.fcc = f[i.fs] == f[i.ft]; break;
    case Op::kCLtS: st.fcc = f[i.fs] < f[i.ft]; break;
    case Op::kCLeS: st.fcc = f[i.fs] <= f[i.ft]; break;
    case Op::kBc1f: if (!st.fcc) next_pc = btarget; break;
    case Op::kBc1t: if (st.fcc) next_pc = btarget; break;
    case Op::kMfc1: r[i.rt] = std::bit_cast<std::uint32_t>(f[i.fs]); break;
    case Op::kMtc1: f[i.fs] = std::bit_cast<float>(r[i.rt]); break;
    case Op::kInvalid:
      throw CpuError("invalid instruction at pc=" + std::to_string(st.pc));
  }

  r[0] = 0;  // $zero stays zero regardless of what executed
  st.pc = next_pc;
  ++st.instructions;
}

}  // namespace asimt::sim
