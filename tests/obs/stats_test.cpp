// Tests for the statistics kernel: median/MAD against known vectors, the
// seeded bootstrap's determinism contract (same samples + same seed =
// byte-identical CIs), and the degenerate inputs the harness must survive
// (n == 1, all-equal samples, a gross outlier).
#include "obs/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "telemetry/json.h"

namespace asimt::obs {
namespace {

TEST(StatsTest, MedianKnownVectors) {
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);          // odd n
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);     // even n: midpoint
  EXPECT_DOUBLE_EQ(median({5.0, 5.0, 5.0, 5.0, 5.0}), 5.0);
}

TEST(StatsTest, MadKnownVectors) {
  // |x - 2| over {1,2,3} = {1,0,1} -> median 1.
  EXPECT_DOUBLE_EQ(mad({1.0, 2.0, 3.0}, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(mad({5.0, 5.0, 5.0}, 5.0), 0.0);
  // |x - 10| over {2, 10, 12, 14} = {8, 0, 2, 4} -> median 3.
  EXPECT_DOUBLE_EQ(mad({2.0, 10.0, 12.0, 14.0}, 10.0), 3.0);
}

TEST(StatsTest, SummarizeBasicShape) {
  const std::vector<double> samples = {10.0, 11.0, 12.0, 13.0, 14.0};
  const SampleStats s = summarize(samples);
  EXPECT_EQ(s.n, 5u);
  EXPECT_EQ(s.outliers_rejected, 0u);
  EXPECT_DOUBLE_EQ(s.min, 10.0);
  EXPECT_DOUBLE_EQ(s.max, 14.0);
  EXPECT_DOUBLE_EQ(s.mean, 12.0);
  EXPECT_DOUBLE_EQ(s.median, 12.0);
  EXPECT_DOUBLE_EQ(s.mad, 1.0);
  // The bootstrap CI brackets the median and stays within the sample range.
  EXPECT_LE(s.ci_lo, s.median);
  EXPECT_GE(s.ci_hi, s.median);
  EXPECT_GE(s.ci_lo, s.min);
  EXPECT_LE(s.ci_hi, s.max);
}

TEST(StatsTest, BootstrapIsDeterministicForSeed) {
  // Enough distinct values that the CI quantiles are seed-sensitive.
  std::vector<double> samples;
  for (int i = 0; i < 24; ++i) {
    samples.push_back(100.0 + static_cast<double>((i * 37) % 24) * 0.7);
  }
  StatsOptions options;
  options.seed = 1234;
  const SampleStats a = summarize(samples, options);
  const SampleStats b = summarize(samples, options);
  // Byte-identical, not approximately equal: serialize and compare.
  // summarize() is pure, so this pins the contract that lets two artifacts
  // from the same data diff clean.
  EXPECT_EQ(to_json(a).dump(), to_json(b).dump());

  options.seed = 5678;
  const SampleStats c = summarize(samples, options);
  // The median is seed-independent; the bootstrap CI is not (deterministic
  // regression pin, verified for these inputs).
  EXPECT_DOUBLE_EQ(c.median, a.median);
  EXPECT_NE(to_json(a).dump(), to_json(c).dump());
}

TEST(StatsTest, SingleSampleDegeneratesCleanly) {
  const SampleStats s = summarize({42.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_EQ(s.outliers_rejected, 0u);
  EXPECT_DOUBLE_EQ(s.median, 42.0);
  EXPECT_DOUBLE_EQ(s.mad, 0.0);
  EXPECT_DOUBLE_EQ(s.ci_lo, 42.0);
  EXPECT_DOUBLE_EQ(s.ci_hi, 42.0);
}

TEST(StatsTest, AllEqualSamplesRejectNothing) {
  // MAD == 0 must disable the fence, not reject everything but the median.
  const SampleStats s = summarize({9.0, 9.0, 9.0, 9.0});
  EXPECT_EQ(s.n, 4u);
  EXPECT_EQ(s.outliers_rejected, 0u);
  EXPECT_DOUBLE_EQ(s.median, 9.0);
  EXPECT_DOUBLE_EQ(s.mad, 0.0);
  EXPECT_DOUBLE_EQ(s.ci_lo, 9.0);
  EXPECT_DOUBLE_EQ(s.ci_hi, 9.0);
}

TEST(StatsTest, GrossOutlierIsRejected) {
  // Nine jittery samples (MAD 1) and one page-fault-storm spike far beyond
  // the 8-MAD fence.
  const std::vector<double> samples = {98.0,  99.0,  99.0,  100.0, 100.0,
                                       100.0, 101.0, 101.0, 102.0, 100000.0};
  const SampleStats s = summarize(samples);
  EXPECT_EQ(s.outliers_rejected, 1u);
  EXPECT_EQ(s.n, 9u);
  EXPECT_DOUBLE_EQ(s.median, 100.0);
  EXPECT_DOUBLE_EQ(s.max, 102.0);
}

TEST(StatsTest, OutlierRejectionCanBeDisabled) {
  const std::vector<double> samples = {98.0,  99.0,  99.0,  100.0, 100.0,
                                       100.0, 101.0, 101.0, 102.0, 100000.0};
  StatsOptions options;
  options.outlier_mad_k = 0.0;
  const SampleStats s = summarize(samples, options);
  EXPECT_EQ(s.outliers_rejected, 0u);
  EXPECT_EQ(s.n, 10u);
  EXPECT_DOUBLE_EQ(s.max, 100000.0);
}

TEST(StatsTest, JsonRoundTrip) {
  const SampleStats s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  const SampleStats back = stats_from_json(json::parse(to_json(s).dump()));
  EXPECT_EQ(to_json(back).dump(), to_json(s).dump());
}

}  // namespace
}  // namespace asimt::obs
