#include "core/chain_encoder.h"

#include <algorithm>
#include <array>
#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>

#include "parallel/pool.h"
#include "telemetry/metrics.h"

namespace asimt::core {

namespace detail {

// The per-block search, hoisted out of the encode loop. For every block
// length len and every possible original window the table stores the winning
// (code word, τ) outright, so encoding a block is a single packed-window
// extraction plus one table load instead of a 2^(len-1)·|allowed| scan.
//
// Keying works because chain-initial and overlapped decode produce IDENTICAL
// bits 1..len-1 for a given (τ, code) — history starts at the encoded bit 0
// either way — and bit 0 of the decoded word is forced (code bit 0 for
// chain-initial, the already-decoded overlap value otherwise). So the
// original's bits 1..len-1 ("rest") plus the stored overlap value s_in fully
// determine the candidate set, and one table serves both block kinds.
//
// Tie-break parity with the reference scan (core/reference_encoder.cpp) is
// load-bearing for byte-identical artifacts: candidates fold in code-ascending
// order, only the FIRST τ in `allowed` that produces a given decode is
// credited per code (the scan breaks there), greedy prefers lower cost, then
// earlier τ, then smaller code; the DP fold keeps the first strict cost
// minimum per (s_in, s_out).

inline constexpr std::uint8_t kInfeasible = 0xFF;

struct Choice {
  std::uint16_t code = 0;
  std::uint8_t tau_rank = 0;
  std::uint8_t cost = kInfeasible;
};

struct LenTable {
  // best[s_in][rest]: greedy winner for a block whose original bits 1.. equal
  // `rest`, given the stored overlap bit s_in.
  std::array<std::vector<Choice>, 2> best;
  // dp[s_in][s_out][rest]: cheapest candidate whose code's top bit is s_out.
  std::array<std::array<std::vector<Choice>, 2>, 2> dp;
};

struct ChoiceTable {
  int block_size = 0;
  std::vector<Transform> allowed;  // stable copy; tau_rank indexes into it
  std::vector<LenTable> tables;    // index len - 2, len in [2, block_size]

  const LenTable& len(int l) const {
    return tables[static_cast<std::size_t>(l - 2)];
  }
};

namespace {

LenTable build_len_table(int len, std::span<const Transform> allowed) {
  LenTable t;
  const std::uint32_t rest_count = std::uint32_t{1} << (len - 1);
  for (int s = 0; s < 2; ++s) {
    t.best[s].assign(rest_count, Choice{});
    for (int so = 0; so < 2; ++so) t.dp[s][so].assign(rest_count, Choice{});
  }
  std::vector<std::uint32_t> seen(allowed.size());
  for (int s_in = 0; s_in < 2; ++s_in) {
    for (std::uint32_t rest = 0; rest < rest_count; ++rest) {
      const std::uint32_t code =
          static_cast<std::uint32_t>(s_in) | (rest << 1);
      const int cost = bits::word_transitions(code, len);
      const int s_out = static_cast<int>((code >> (len - 1)) & 1u);
      std::size_t nseen = 0;
      for (std::size_t ti = 0; ti < allowed.size(); ++ti) {
        // Decoded bits 1..len-1; history starts at the encoded bit 0.
        std::uint32_t drest = 0;
        int prev = s_in;
        for (int i = 1; i < len; ++i) {
          const int enc = static_cast<int>((code >> i) & 1u);
          const int orig = allowed[ti].apply(enc, prev);
          drest |= static_cast<std::uint32_t>(orig) << (i - 1);
          prev = orig;
        }
        bool duplicate = false;
        for (std::size_t j = 0; j < nseen; ++j) {
          if (seen[j] == drest) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;  // an earlier τ owns this decode for `code`
        seen[nseen++] = drest;

        Choice& g = t.best[s_in][drest];
        const bool better =
            g.cost == kInfeasible || cost < g.cost ||
            (cost == g.cost &&
             (ti < g.tau_rank || (ti == g.tau_rank && code < g.code)));
        if (better) {
          g = Choice{static_cast<std::uint16_t>(code),
                     static_cast<std::uint8_t>(ti),
                     static_cast<std::uint8_t>(cost)};
        }
        Choice& d = t.dp[s_in][s_out][drest];
        if (d.cost == kInfeasible || cost < d.cost) {
          d = Choice{static_cast<std::uint16_t>(code),
                     static_cast<std::uint8_t>(ti),
                     static_cast<std::uint8_t>(cost)};
        }
      }
    }
  }
  return t;
}

std::shared_ptr<const ChoiceTable> build_table(
    int block_size, std::span<const Transform> allowed) {
  auto table = std::make_shared<ChoiceTable>();
  table->block_size = block_size;
  table->allowed.assign(allowed.begin(), allowed.end());
  table->tables.reserve(static_cast<std::size_t>(block_size - 1));
  for (int len = 2; len <= block_size; ++len) {
    table->tables.push_back(build_len_table(len, allowed));
  }
  return table;
}

// Process-wide memo: ChainEncoders are cheap to construct (the fuzz and
// bench harnesses build one per case) but tables are not, so share them by
// (block_size, allowed) value.
std::shared_ptr<const ChoiceTable> acquire_table(
    int block_size, std::span<const Transform> allowed) {
  std::string key;
  key.reserve(allowed.size() + 1);
  key.push_back(static_cast<char>(block_size));
  for (Transform t : allowed) {
    key.push_back(static_cast<char>('a' + t.truth_table()));
  }
  static std::mutex mu;
  static auto* cache =
      new std::map<std::string, std::shared_ptr<const ChoiceTable>>;
  const std::lock_guard<std::mutex> lock(mu);
  auto& slot = (*cache)[key];
  if (!slot) slot = build_table(block_size, allowed);
  return slot;
}

}  // namespace

}  // namespace detail

ChainEncoder::ChainEncoder(ChainOptions options) : options_(options) {
  if (options_.block_size < 2 || options_.block_size > 16) {
    throw std::invalid_argument("chain block size must be in [2, 16]");
  }
  if (options_.allowed.empty()) {
    throw std::invalid_argument("chain encoder needs a non-empty transform set");
  }
  table_ = detail::acquire_table(options_.block_size, options_.allowed);
}

std::vector<ChainBlock> ChainEncoder::partition(std::size_t m, int block_size) {
  std::vector<ChainBlock> blocks;
  if (m == 0) return blocks;
  if (m == 1) {
    blocks.push_back(ChainBlock{0, 1, kIdentity});
    return blocks;
  }
  std::size_t start = 0;
  while (true) {
    const int len = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(block_size), m - start));
    blocks.push_back(ChainBlock{start, len, kIdentity});
    const std::size_t next = start + static_cast<std::size_t>(len) - 1;
    if (m - next <= 1) break;  // nothing but the overlap bit remains
    start = next;
  }
  return blocks;
}

EncodedChain ChainEncoder::encode(const bits::BitSeq& original) const {
  EncodedChain chain;
  switch (options_.strategy) {
    case ChainStrategy::kGreedy: chain = encode_greedy(original); break;
    case ChainStrategy::kOptimalDp: chain = encode_dp(original); break;
    default: throw std::logic_error("unknown chain strategy");
  }
  if (telemetry::enabled()) {
    telemetry::count("encoder.chains_encoded");
    telemetry::count("encoder.chains_split",
                     static_cast<long long>(chain.blocks.size()));
    telemetry::count("encoder.bits_encoded",
                     static_cast<long long>(original.size()));
  }
  return chain;
}

std::vector<EncodedChain> ChainEncoder::encode_many(
    std::span<const bits::BitSeq> originals) const {
  std::vector<EncodedChain> out(originals.size());
  // Below ~1k total bits the per-line searches finish faster than pool
  // dispatch; parallel_for additionally degrades to the same serial loop
  // when jobs == 1 or we are already inside a pool task.
  constexpr std::size_t kMinParallelBits = 1024;
  std::size_t total_bits = 0;
  for (const bits::BitSeq& line : originals) total_bits += line.size();
  if (total_bits < kMinParallelBits) {
    for (std::size_t i = 0; i < originals.size(); ++i) {
      out[i] = encode(originals[i]);
    }
    return out;
  }
  parallel::parallel_for(originals.size(),
                         [&](std::size_t i) { out[i] = encode(originals[i]); });
  return out;
}

EncodedChain ChainEncoder::encode_greedy(const bits::BitSeq& original) const {
  EncodedChain out;
  out.stored = bits::BitSeq(original.size());
  out.blocks = partition(original.size(), options_.block_size);
  if (out.blocks.empty()) return out;
  if (original.size() == 1) {
    out.stored.set(0, original[0]);
    return out;
  }
  const detail::ChoiceTable& table = *table_;
  int s_in = original[0];  // chain-initial block stores its first bit plain
  for (std::size_t bi = 0; bi < out.blocks.size(); ++bi) {
    ChainBlock& block = out.blocks[bi];
    const std::uint64_t word = original.window(block.start,
                                               static_cast<std::size_t>(block.length));
    const detail::Choice& c =
        table.len(block.length).best[s_in][static_cast<std::size_t>(word >> 1)];
    if (c.cost == detail::kInfeasible) {
      throw std::logic_error("chain encoder: infeasible block (no identity?)");
    }
    block.tau = table.allowed[c.tau_rank];
    out.stored.set_window(block.start, static_cast<std::size_t>(block.length),
                          c.code);
    s_in = static_cast<int>((c.code >> (block.length - 1)) & 1u);
  }
  return out;
}

EncodedChain ChainEncoder::encode_dp(const bits::BitSeq& original) const {
  EncodedChain out;
  out.stored = bits::BitSeq(original.size());
  out.blocks = partition(original.size(), options_.block_size);
  if (out.blocks.empty()) return out;
  if (original.size() == 1) {
    out.stored.set(0, original[0]);
    return out;
  }

  constexpr int kInf = std::numeric_limits<int>::max() / 2;
  const std::size_t nblocks = out.blocks.size();
  const detail::ChoiceTable& table = *table_;

  // cost[s]: cheapest total transitions with the current boundary bit stored
  // as s. Backpointers record each block's decision per outgoing state.
  struct Decision {
    std::uint32_t code = 0;
    Transform tau;
    int prev_state = 0;
  };
  std::vector<std::array<Decision, 2>> decisions(nblocks);
  std::array<int, 2> cost = {kInf, kInf};
  cost[original[0]] = 0;  // chain-initial block stores its first bit plain

  for (std::size_t bi = 0; bi < nblocks; ++bi) {
    const ChainBlock& block = out.blocks[bi];
    const std::uint64_t word = original.window(block.start,
                                               static_cast<std::size_t>(block.length));
    const std::size_t rest = static_cast<std::size_t>(word >> 1);
    const detail::LenTable& lt = table.len(block.length);
    std::array<int, 2> next_cost = {kInf, kInf};
    for (int s_in = 0; s_in < 2; ++s_in) {
      if (cost[s_in] >= kInf) continue;
      for (int s_out = 0; s_out < 2; ++s_out) {
        const detail::Choice& c = lt.dp[s_in][s_out][rest];
        if (c.cost == detail::kInfeasible) continue;
        const int total = cost[s_in] + c.cost;
        if (total < next_cost[s_out]) {
          next_cost[s_out] = total;
          decisions[bi][s_out] =
              Decision{c.code, table.allowed[c.tau_rank], s_in};
        }
      }
    }
    cost = next_cost;
  }

  int state = cost[0] <= cost[1] ? 0 : 1;
  if (cost[state] >= kInf) {
    throw std::logic_error("chain encoder DP: no feasible encoding");
  }
  for (std::size_t bi = nblocks; bi-- > 0;) {
    const Decision& d = decisions[bi][state];
    out.blocks[bi].tau = d.tau;
    out.stored.set_window(out.blocks[bi].start,
                          static_cast<std::size_t>(out.blocks[bi].length),
                          d.code);
    state = d.prev_state;
  }
  return out;
}

bits::BitSeq decode_chain(const EncodedChain& chain) {
  const bits::BitSeq& stored = chain.stored;
  bits::BitSeq original(stored.size());
  if (stored.empty()) return original;
  original.set(0, stored[0]);
  int history = stored[0];
  for (const ChainBlock& block : chain.blocks) {
    // History register reloads from the raw stored overlap bit at each block
    // switch (paper §6: "τ uses the encoded bit value ... in the initial
    // instance").
    history = stored[block.start];
    for (int j = 1; j < block.length; ++j) {
      const std::size_t pos = block.start + static_cast<std::size_t>(j);
      const int decoded = block.tau.apply(stored[pos], history);
      original.set(pos, decoded);
      history = decoded;
    }
  }
  return original;
}

}  // namespace asimt::core
