#include "cfg/cfg.h"

#include <algorithm>
#include <bit>
#include <set>

#include "isa/isa.h"

namespace asimt::cfg {

int Cfg::block_containing(std::uint32_t pc) const {
  // blocks are sorted by start; binary search for the covering range
  auto it = std::upper_bound(blocks.begin(), blocks.end(), pc,
                             [](std::uint32_t addr, const BasicBlock& b) {
                               return addr < b.start;
                             });
  if (it == blocks.begin()) return -1;
  --it;
  return (pc >= it->start && pc < it->end) ? it->index : -1;
}

int Cfg::block_starting_at(std::uint32_t pc) const {
  auto it = block_by_start.find(pc);
  return it == block_by_start.end() ? -1 : it->second;
}

std::vector<std::uint32_t> Cfg::block_words(const BasicBlock& block) const {
  const std::size_t first = (block.start - text_base) / 4;
  const std::size_t count = block.instruction_count();
  return {text.begin() + static_cast<std::ptrdiff_t>(first),
          text.begin() + static_cast<std::ptrdiff_t>(first + count)};
}

Cfg build_cfg(const isa::Program& program) {
  Cfg cfg;
  cfg.text_base = program.text_base;
  cfg.text = program.text;
  const std::uint32_t end = program.text_end();

  std::set<std::uint32_t> leaders;
  if (!program.text.empty()) leaders.insert(program.text_base);
  for (std::size_t idx = 0; idx < program.text.size(); ++idx) {
    const std::uint32_t pc = program.text_base + 4 * static_cast<std::uint32_t>(idx);
    const isa::Instruction inst = isa::decode(program.text[idx]);
    if (!isa::ends_basic_block(inst.op)) continue;
    const std::uint32_t next = pc + 4;
    if (next < end) leaders.insert(next);
    if (isa::is_branch(inst.op)) {
      const std::uint32_t target = isa::branch_target(pc, inst);
      if (target >= program.text_base && target < end) leaders.insert(target);
    } else if (isa::is_jump(inst.op)) {
      const std::uint32_t target = isa::jump_target(pc, inst);
      if (target >= program.text_base && target < end) leaders.insert(target);
    }
  }

  for (auto it = leaders.begin(); it != leaders.end(); ++it) {
    BasicBlock block;
    block.index = static_cast<int>(cfg.blocks.size());
    block.start = *it;
    const auto next = std::next(it);
    std::uint32_t stop = next == leaders.end() ? end : *next;
    // A block also ends at its first control-flow instruction.
    for (std::uint32_t pc = block.start; pc < stop; pc += 4) {
      const isa::Instruction inst =
          isa::decode(program.text[(pc - program.text_base) / 4]);
      if (isa::ends_basic_block(inst.op)) {
        stop = pc + 4;
        break;
      }
    }
    block.end = stop;
    cfg.block_by_start[block.start] = block.index;
    cfg.blocks.push_back(block);
  }

  // Successor edges.
  for (BasicBlock& block : cfg.blocks) {
    const std::uint32_t last = block.last_pc();
    const isa::Instruction inst =
        isa::decode(program.text[(last - program.text_base) / 4]);
    auto add_edge = [&](std::uint32_t target) {
      const int succ = cfg.block_starting_at(target);
      if (succ >= 0) block.successors.push_back(succ);
    };
    if (isa::is_halt(inst.op)) {
      // no successors
    } else if (isa::is_branch(inst.op)) {
      add_edge(isa::branch_target(last, inst));
      add_edge(last + 4);  // fallthrough
    } else if (isa::is_jump(inst.op)) {
      add_edge(isa::jump_target(last, inst));
      if (inst.op == isa::Op::kJal) add_edge(last + 4);  // eventual return
    } else if (isa::is_indirect_jump(inst.op)) {
      block.has_indirect_exit = true;
      if (inst.op == isa::Op::kJalr) add_edge(last + 4);
    } else {
      add_edge(last + 4);  // plain fallthrough (block ended at next leader)
    }
    std::sort(block.successors.begin(), block.successors.end());
    block.successors.erase(
        std::unique(block.successors.begin(), block.successors.end()),
        block.successors.end());
  }
  return cfg;
}

namespace {

// Iterative dominator computation (simple dataflow; graphs here are tiny).
std::vector<std::vector<bool>> dominators(const Cfg& cfg) {
  const std::size_t n = cfg.blocks.size();
  std::vector<std::vector<int>> preds(n);
  for (const BasicBlock& b : cfg.blocks) {
    for (int succ : b.successors) {
      preds[static_cast<std::size_t>(succ)].push_back(b.index);
    }
  }
  std::vector<std::vector<bool>> dom(n, std::vector<bool>(n, true));
  if (n == 0) return dom;
  // Entry dominates only itself.
  dom[0].assign(n, false);
  dom[0][0] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t v = 1; v < n; ++v) {
      std::vector<bool> next(n, !preds[v].empty());
      if (preds[v].empty()) next.assign(n, false);  // unreachable
      for (int p : preds[v]) {
        for (std::size_t d = 0; d < n; ++d) {
          next[d] = next[d] && dom[static_cast<std::size_t>(p)][d];
        }
      }
      next[v] = true;
      if (next != dom[v]) {
        dom[v] = std::move(next);
        changed = true;
      }
    }
  }
  return dom;
}

}  // namespace

std::vector<Loop> find_natural_loops(const Cfg& cfg) {
  const auto dom = dominators(cfg);
  const std::size_t n = cfg.blocks.size();
  std::vector<std::vector<int>> preds(n);
  for (const BasicBlock& b : cfg.blocks) {
    for (int succ : b.successors) {
      preds[static_cast<std::size_t>(succ)].push_back(b.index);
    }
  }

  // header -> union of body blocks over all back edges into it
  std::unordered_map<int, std::set<int>> loops;
  for (const BasicBlock& b : cfg.blocks) {
    for (int succ : b.successors) {
      const auto h = static_cast<std::size_t>(succ);
      if (!dom[static_cast<std::size_t>(b.index)][h]) continue;
      // back edge b -> succ: body = succ + all blocks reaching b without
      // passing through succ
      std::set<int>& body = loops[succ];
      body.insert(succ);
      std::vector<int> stack;
      if (body.insert(b.index).second) stack.push_back(b.index);
      while (!stack.empty()) {
        const int v = stack.back();
        stack.pop_back();
        for (int p : preds[static_cast<std::size_t>(v)]) {
          if (p != succ && body.insert(p).second) stack.push_back(p);
        }
      }
    }
  }

  std::vector<Loop> result;
  for (auto& [header, body] : loops) {
    Loop loop;
    loop.header = header;
    loop.body.assign(body.begin(), body.end());
    result.push_back(std::move(loop));
  }
  std::sort(result.begin(), result.end(),
            [](const Loop& a, const Loop& b) { return a.header < b.header; });
  return result;
}

long long dynamic_transitions(const Cfg& cfg, const Profile& profile,
                              std::span<const std::uint32_t> image) {
  long long total = 0;
  for (const BasicBlock& block : cfg.blocks) {
    const std::uint64_t count =
        profile.block_counts[static_cast<std::size_t>(block.index)];
    if (count == 0) continue;
    const std::size_t first = (block.start - cfg.text_base) / 4;
    long long intra = 0;
    for (std::size_t i = 1; i < block.instruction_count(); ++i) {
      intra += std::popcount(image[first + i - 1] ^ image[first + i]);
    }
    total += intra * static_cast<long long>(count);
  }
  for (const auto& [key, count] : profile.edge_counts) {
    const int from = static_cast<int>(key >> 32);
    const int to = static_cast<int>(key & 0xFFFFFFFFu);
    const BasicBlock& a = cfg.blocks[static_cast<std::size_t>(from)];
    const BasicBlock& b = cfg.blocks[static_cast<std::size_t>(to)];
    const std::uint32_t last = image[(a.last_pc() - cfg.text_base) / 4];
    const std::uint32_t head = image[(b.start - cfg.text_base) / 4];
    total += static_cast<long long>(count) * std::popcount(last ^ head);
  }
  return total;
}

Profiler::Profiler(const Cfg& cfg) : cfg_(&cfg) {
  profile_.block_counts.assign(cfg.blocks.size(), 0);
}

}  // namespace asimt::cfg
