// Firmware-image scenario — §7.1's first reprogramming alternative.
//
// A firmware build flow: profile the tridiagonal-solver firmware, encode its
// hot loops, bundle the encoded text + TT + BBIT into a checksummed image
// (what a production flow would flash), then play the boot side: parse the
// image, verify it, and prove the decode hardware restores the original
// program from it.
#include <cstdio>

#include "cfg/cfg.h"
#include "core/fetch_decoder.h"
#include "core/image.h"
#include "core/selection.h"
#include "experiments/experiment.h"
#include "isa/assembler.h"
#include "sim/cpu.h"
#include "workloads/workload.h"

int main() {
  using namespace asimt;

  // --- build side -----------------------------------------------------
  workloads::SizeConfig sizes = workloads::SizeConfig::small();
  const workloads::Workload tri = workloads::make_tri(sizes);
  const isa::Program program = isa::assemble(tri.source);
  const cfg::Cfg cfg = cfg::build_cfg(program);

  sim::Memory memory;
  memory.load_program(program);
  sim::Cpu cpu(memory);
  cpu.state().pc = program.entry();
  tri.init(memory, cpu.state());
  cfg::Profiler profiler(cfg);
  cpu.run(10'000'000, [&](std::uint32_t pc, std::uint32_t) { profiler.on_fetch(pc); });
  const cfg::Profile profile = profiler.take();

  core::SelectionOptions sel;
  sel.chain.block_size = 5;
  const core::SelectionResult selection = core::select_and_encode(cfg, profile, sel);

  core::FirmwareImage image;
  image.text_base = cfg.text_base;
  image.text = selection.apply_to_text(cfg.text, cfg.text_base);
  image.tt = selection.tt;
  image.bbit = selection.bbit;
  const std::vector<std::uint8_t> blob = core::serialize(image);
  std::printf("firmware image: %zu bytes (%zu text words, %zu TT entries, "
              "%zu BBIT entries)\n",
              blob.size(), image.text.size(), image.tt.entries.size(),
              image.bbit.size());

  // --- boot side --------------------------------------------------------
  core::FirmwareImage loaded;
  try {
    loaded = core::deserialize(blob);
  } catch (const core::ImageError& e) {
    std::printf("image rejected: %s\n", e.what());
    return 1;
  }
  std::printf("image verified: checksum + structure OK\n");

  // Boot check: walk every encoded block through the fetch decoder and
  // compare against the original program words.
  core::FetchDecoder decoder(loaded.tt, loaded.bbit);
  std::size_t restored = 0, total = 0;
  for (const core::BbitEntry& entry : loaded.bbit) {
    const int block_index = cfg.block_starting_at(entry.pc);
    const cfg::BasicBlock& block = cfg.blocks[static_cast<std::size_t>(block_index)];
    for (std::uint32_t pc = block.start; pc < block.end; pc += 4) {
      const std::size_t word_index = (pc - loaded.text_base) / 4;
      ++total;
      restored += decoder.feed(pc, loaded.text[word_index]) ==
                  cfg.text[word_index];
    }
  }
  std::printf("decode check: %zu/%zu encoded words restored\n", restored, total);

  // What corruption looks like to the loader:
  std::vector<std::uint8_t> corrupted = blob;
  corrupted[blob.size() / 2] ^= 0x40;
  try {
    core::deserialize(corrupted);
    std::printf("corrupted image accepted — BUG\n");
    return 1;
  } catch (const core::ImageError& e) {
    std::printf("corrupted image rejected as expected: %s\n", e.what());
  }
  return restored == total ? 0 : 1;
}
