#include "serve/client.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace asimt::serve {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)),
      error_(std::move(other.error_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
    error_ = std::move(other.error_);
  }
  return *this;
}

bool Client::connect(const std::string& socket_path) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    error_ = "socket path too long: " + socket_path;
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    error_ = "connect " + socket_path + ": " + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool Client::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed.push_back('\n');
  const char* data = framed.data();
  std::size_t len = framed.size();
  while (len > 0) {
    // MSG_NOSIGNAL: a daemon that went away mid-send is an error return,
    // not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("send: ") + std::strerror(errno);
      return false;
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> Client::recv_line() {
  if (fd_ < 0) return std::nullopt;
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("recv: ") + std::strerror(errno);
      return std::nullopt;
    }
    if (n == 0) {
      error_ = "connection closed by server";
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace asimt::serve
