#include "bitstream/reference.h"

#include <stdexcept>

#include "bitstream/bitseq.h"

namespace asimt::bits::reference {

BitSeq::BitSeq(std::size_t n, int fill)
    : bits_(n, static_cast<std::uint8_t>(fill & 1)) {}

BitSeq BitSeq::from_stream_string(std::string_view s) {
  BitSeq seq;
  seq.bits_.reserve(s.size());
  for (char c : s) {
    if (c != '0' && c != '1') {
      throw std::invalid_argument("BitSeq: expected only '0'/'1' characters");
    }
    seq.bits_.push_back(static_cast<std::uint8_t>(c - '0'));
  }
  return seq;
}

int BitSeq::transitions() const {
  if (bits_.empty()) return 0;
  return transitions_in(0, bits_.size() - 1);
}

int BitSeq::transitions_in(std::size_t first, std::size_t last) const {
  int count = 0;
  for (std::size_t i = first; i < last; ++i) {
    count += bits_[i] != bits_[i + 1];
  }
  return count;
}

BitSeq BitSeq::slice(std::size_t first, std::size_t len) const {
  BitSeq out;
  out.bits_.assign(bits_.begin() + static_cast<std::ptrdiff_t>(first),
                   bits_.begin() + static_cast<std::ptrdiff_t>(first + len));
  return out;
}

std::uint64_t BitSeq::to_word(std::size_t n) const {
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < n; ++i) {
    word |= static_cast<std::uint64_t>(bits_[i]) << i;
  }
  return word;
}

std::string BitSeq::to_stream_string() const {
  std::string s;
  s.reserve(bits_.size());
  for (std::uint8_t b : bits_) s.push_back(static_cast<char>('0' + b));
  return s;
}

int word_transitions(std::uint64_t word, int k) {
  int count = 0;
  for (int i = 0; i + 1 < k; ++i) {
    count += static_cast<int>((word >> i) & 1u) !=
             static_cast<int>((word >> (i + 1)) & 1u);
  }
  return count;
}

BitSeq from_packed(const bits::BitSeq& seq) {
  BitSeq out(seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) out.set(i, seq[i]);
  return out;
}

bits::BitSeq to_packed(const BitSeq& seq) {
  bits::BitSeq out(seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) out.set(i, seq[i]);
  return out;
}

}  // namespace asimt::bits::reference
