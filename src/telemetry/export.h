// Exporters: turn a MetricsRegistry snapshot into JSON, CSV, or
// Prometheus-style text exposition.
//
// All three render the same Snapshot, so numbers agree across formats by
// construction. The JSON form is the canonical machine-readable one (used by
// `asimt --metrics`, the BENCH_*.json trajectory, and the round-trip tests);
// CSV is for spreadsheets; the Prometheus form is for scrape endpoints and
// uses `asimt_` as the namespace prefix with dots mapped to underscores.
#pragma once

#include <string>

#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace asimt::telemetry {

// Structured snapshot:
//   {"counters":{name:int,...},
//    "gauges":{name:double,...},
//    "histograms":{name:{"count":n,"sum":s,"min":m,"max":M,"mean":a,
//                        "buckets":{"<pow2-index>":n,...}},...}}
json::Value metrics_to_json(const MetricsRegistry& registry);

// metrics_to_json dumped as pretty-printed text.
std::string metrics_json(const MetricsRegistry& registry);

// One row per scalar: kind,name,value for counters/gauges; histograms expand
// to count/sum/min/max/mean rows.
std::string metrics_csv(const MetricsRegistry& registry);

// Prometheus text exposition format (untyped buckets; histograms export
// _count/_sum/_min/_max series).
std::string metrics_prometheus(const MetricsRegistry& registry);

// Writes `content` to `path`, returning false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace asimt::telemetry
