#include "serve/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obsv/span.h"

namespace asimt::serve {

namespace {

// SplitMix64 step — the repo-standard seed expansion (check/rng.h).
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Remaining-time helper: milliseconds until `deadline_ns`, or -1 for "no
// deadline". Clamped at >= 1 while time remains so poll never spins.
int wait_budget_ms(std::uint64_t deadline_ns) {
  if (deadline_ns == 0) return -1;
  const std::uint64_t now = obsv::now_ns();
  if (now >= deadline_ns) return 0;
  return static_cast<int>((deadline_ns - now) / 1'000'000ull) + 1;
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      io_timeout_ms_(other.io_timeout_ms_),
      buffer_(std::move(other.buffer_)),
      error_(std::move(other.error_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    io_timeout_ms_ = other.io_timeout_ms_;
    buffer_ = std::move(other.buffer_);
    error_ = std::move(other.error_);
  }
  return *this;
}

bool Client::connect(const std::string& socket_path) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    error_ = "socket path too long: " + socket_path;
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    error_ = "connect " + socket_path + ": " + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  // Local connect() completes synchronously; only the established fd goes
  // nonblocking, so every subsequent send/recv is poll-paced and can honor
  // the io timeout.
  ::fcntl(fd_, F_SETFL, ::fcntl(fd_, F_GETFL, 0) | O_NONBLOCK);
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool Client::shutdown_write() {
  if (fd_ < 0) return false;
  return ::shutdown(fd_, SHUT_WR) == 0;
}

bool Client::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed.push_back('\n');
  const char* data = framed.data();
  std::size_t len = framed.size();
  const std::uint64_t deadline_ns =
      io_timeout_ms_ == 0 ? 0
                          : obsv::now_ns() + io_timeout_ms_ * 1'000'000ull;
  while (len > 0) {
    // MSG_NOSIGNAL: a daemon that went away mid-send is an error return,
    // not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        const int wait_ms = wait_budget_ms(deadline_ns);
        if (wait_ms == 0) {
          error_ = "send: timed out";
          return false;
        }
        pollfd pfd{fd_, POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, wait_ms);
        if (ready < 0 && errno != EINTR) {
          error_ = std::string("poll: ") + std::strerror(errno);
          return false;
        }
        if (ready == 0) {
          error_ = "send: timed out";
          return false;
        }
        continue;
      }
      error_ = std::string("send: ") + std::strerror(errno);
      return false;
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

Client::LineResult Client::recv_line_wait(std::string& line, int timeout_ms) {
  if (fd_ < 0) {
    error_ = "not connected";
    return LineResult::kClosed;
  }
  const std::uint64_t deadline_ns =
      timeout_ms < 0
          ? 0
          : obsv::now_ns() + static_cast<std::uint64_t>(timeout_ms) * 1'000'000ull;
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return LineResult::kLine;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        int wait_ms = -1;
        if (deadline_ns != 0) {
          wait_ms = wait_budget_ms(deadline_ns);
          if (wait_ms == 0) {
            error_ = "recv: timed out";
            return LineResult::kTimeout;
          }
        }
        pollfd pfd{fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, wait_ms);
        if (ready < 0 && errno != EINTR) {
          error_ = std::string("poll: ") + std::strerror(errno);
          return LineResult::kClosed;
        }
        if (ready == 0 && deadline_ns != 0) {
          error_ = "recv: timed out";
          return LineResult::kTimeout;
        }
        continue;
      }
      error_ = std::string("recv: ") + std::strerror(errno);
      return LineResult::kClosed;
    }
    if (n == 0) {
      error_ = "connection closed by server";
      return LineResult::kClosed;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::optional<std::string> Client::recv_line() {
  std::string line;
  const int timeout_ms =
      io_timeout_ms_ == 0 ? -1 : static_cast<int>(io_timeout_ms_);
  if (recv_line_wait(line, timeout_ms) != LineResult::kLine) {
    return std::nullopt;
  }
  return line;
}

// ---------------------------------------------------------------------------
// RetryingClient

std::uint64_t jittered_backoff_ms(std::uint64_t& rng_state, unsigned attempt,
                                  const RetryPolicy& policy) {
  // Ceiling doubles per attempt, capped; the draw is uniform in [0, ceiling]
  // (full jitter — decorrelates clients that failed together).
  std::uint64_t ceiling = policy.base_backoff_ms;
  for (unsigned i = 0; i < attempt && ceiling < policy.max_backoff_ms; ++i) {
    ceiling *= 2;
  }
  ceiling = std::min(ceiling, policy.max_backoff_ms);
  if (ceiling == 0) return 0;
  return splitmix64(rng_state) % (ceiling + 1);
}

namespace {

// Error replies are spliced deterministically, so the kind is exactly the
// substring `"kind":"overloaded"` when the server shed this request.
bool is_overloaded_reply(const std::string& reply) {
  return reply.find("\"ok\":false") != std::string::npos &&
         reply.find("\"kind\":\"overloaded\"") != std::string::npos;
}

std::uint64_t parse_retry_after_ms(const std::string& reply) {
  static const std::string kField = "\"retry_after_ms\":";
  const std::size_t pos = reply.find(kField);
  if (pos == std::string::npos) return 0;
  std::uint64_t value = 0;
  for (std::size_t i = pos + kField.size();
       i < reply.size() && reply[i] >= '0' && reply[i] <= '9'; ++i) {
    value = value * 10 + static_cast<std::uint64_t>(reply[i] - '0');
  }
  return value;
}

}  // namespace

RetryingClient::RetryingClient(std::string socket_path, RetryPolicy policy)
    : socket_path_(std::move(socket_path)),
      policy_(policy),
      rng_state_(policy.seed),
      budget_(policy.initial_budget) {}

bool RetryingClient::ensure_connected() {
  if (client_.connected()) return true;
  if (!client_.connect(socket_path_)) return false;
  client_.set_io_timeout_ms(policy_.io_timeout_ms);
  if (stats_.attempts > 1) ++stats_.reconnects;
  return true;
}

std::optional<std::string> RetryingClient::roundtrip(const std::string& line) {
  std::uint64_t sleep_floor_ms = 0;  // the server's retry_after_ms hint
  for (unsigned attempt = 0; attempt < std::max(1u, policy_.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      if (budget_ < 1.0) {
        ++stats_.budget_exhausted;
        error_ = "retry budget exhausted";
        return std::nullopt;
      }
      budget_ -= 1.0;
      ++stats_.retries;
      const std::uint64_t backoff =
          jittered_backoff_ms(rng_state_, attempt - 1, policy_);
      const std::uint64_t sleep_ms = std::max(backoff, sleep_floor_ms);
      if (sleep_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
      sleep_floor_ms = 0;
    }
    ++stats_.attempts;
    if (!ensure_connected()) {
      error_ = client_.error();
      continue;
    }
    if (!client_.send_line(line)) {
      error_ = client_.error();
      client_.close();
      continue;
    }
    std::string reply;
    const Client::LineResult result = client_.recv_line_wait(
        reply, policy_.io_timeout_ms == 0
                   ? -1
                   : static_cast<int>(policy_.io_timeout_ms));
    if (result != Client::LineResult::kLine) {
      // Timeout included: a reply may still be in flight, so the stream can
      // no longer be trusted to pair requests with replies — reconnect.
      error_ = client_.error();
      client_.close();
      continue;
    }
    if (is_overloaded_reply(reply)) {
      ++stats_.overloaded_replies;
      sleep_floor_ms = parse_retry_after_ms(reply);
      error_ = "server overloaded";
      continue;
    }
    budget_ = std::min(policy_.budget_cap,
                       budget_ + policy_.budget_per_success);
    return reply;
  }
  if (error_.empty()) error_ = "all attempts failed";
  return std::nullopt;
}

}  // namespace asimt::serve
