// Request dispatch for the encoding daemon: newline-delimited JSON in,
// newline-delimited JSON out, no sockets.
//
// This layer is everything `asimt serve` does between reading a line and
// writing one, factored away from file descriptors so tests (and the
// determinism contract) can drive it directly. One request is one JSON
// object on one line:
//
//   {"id": 1, "op": "encode", "text": ".text\n...", "k": 5,
//    "strategy": "dp", "transforms": "paper"}
//
// Operations: "ping", "encode", "verify", "profile", "stats", "metrics"
// (docs/SERVING.md has the full schema). Every reply echoes the request id:
//
//   {"id": 1, "ok": true, "result": {...}}
//   {"id": null, "ok": false, "error": {"kind": "parse", "message": "..."}}
//
// Contracts (enforced by tests/serve/service_test.cpp):
//   - A malformed line NEVER crashes or closes the stream: it produces a
//     structured error reply with a kind from {parse, bad_request,
//     assembly, exec, internal} — the PR 5 structured-error contract across
//     a process boundary.
//   - Replies are byte-identical for byte-identical requests, at any
//     --jobs count and any cache state. Cache hits return the exact bytes
//     the cold encode produced (replies carry no timestamps, no manifest
//     volatile fields, no cache flags).
//
// encode/verify results are cached content-addressed: the key hashes the
// packed vertical bit-line words of the assembled program together with
// (k, transform set, strategy, op) — see serve/cache.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "serve/cache.h"

namespace asimt::serve {

struct ServiceOptions {
  std::size_t cache_capacity = 4096;
  unsigned cache_shards = 16;
  // Request guards: a line (and the program text inside it) larger than
  // this is a bad_request, not an allocation storm.
  std::size_t max_text_bytes = 1 << 20;
  std::uint64_t max_profile_steps = 100'000'000;
  int min_k = 2;
  int max_k = 12;  // choice tables are 2^k; keep the solver bounded
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});

  // Handles one request line (no trailing newline) and returns the reply
  // line (no trailing newline). Never throws.
  std::string handle_line(const std::string& line);

  // A structured error reply (id null) minted outside handle_line — the
  // server uses this for transport-level rejections (e.g. an unterminated
  // line that outgrew the buffer budget). Counted as a request + error so
  // `stats` sees every reply the daemon ever sent.
  std::string error_reply(const char* kind, const std::string& message);

  // Counters for the `stats` op and the graceful-shutdown summary.
  std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  std::uint64_t errors() const {
    return errors_.load(std::memory_order_relaxed);
  }

  const ShardedCache& cache() const { return cache_; }
  const ServiceOptions& options() const { return options_; }

 private:
  ServiceOptions options_;
  ShardedCache cache_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
};

}  // namespace asimt::serve
