// Quickstart: encode one hot loop and decode it through the hardware model.
//
// Walks the whole ASIMT flow on a hand-written loop:
//   1. assemble a small program,
//   2. encode its hot basic block with 5-bit power codes,
//   3. inspect the Transformation Table entries the encoder emits,
//   4. replay the encoded bus stream through the fetch-side decoder,
//   5. compare bus transitions before and after.
#include <cstdio>

#include "core/fetch_decoder.h"
#include "core/program_encoder.h"
#include "isa/assembler.h"
#include "isa/isa.h"
#include "power/power.h"

int main() {
  using namespace asimt;

  // 1. A dot-product inner loop, the paper's canonical "application hot spot".
  const isa::Program program = isa::assemble(R"(
loop:   lwc1    $f1, 0($a0)          # load a[i]
        lwc1    $f2, 0($a1)          # load b[i]
        mul.s   $f3, $f1, $f2
        add.s   $f0, $f0, $f3        # sum += a[i]*b[i]
        addiu   $a0, $a0, 4
        addiu   $a1, $a1, 4
        addiu   $t0, $t0, 1
        bne     $t0, $t1, loop
)");
  std::printf("hot loop (%zu instructions):\n", program.text.size());
  for (std::size_t i = 0; i < program.text.size(); ++i) {
    const std::uint32_t pc = program.text_base + 4 * static_cast<std::uint32_t>(i);
    std::printf("  %08x  %08x  %s\n", pc, program.text[i],
                isa::disassemble(program.text[i], pc).c_str());
  }

  // 2. Encode it: every bus line becomes a chain of 5-bit overlapped blocks.
  core::ChainOptions options;
  options.block_size = 5;
  const core::BlockEncoding encoding =
      core::encode_basic_block(program.text, program.text_base, options);

  std::printf("\nencoded image (what instruction memory actually stores):\n");
  for (std::size_t i = 0; i < encoding.encoded_words.size(); ++i) {
    std::printf("  %08x%s\n", encoding.encoded_words[i],
                encoding.encoded_words[i] == program.text[i] ? "" : "   <- transformed");
  }

  // 3. The reprogrammable decode state: TT entries with per-line transforms.
  std::printf("\nTransformation Table (%zu entries, %u bits each):\n",
              encoding.tt_entries.size(), core::TtConfig::entry_bits());
  for (std::size_t e = 0; e < encoding.tt_entries.size(); ++e) {
    const core::TtEntry& entry = encoding.tt_entries[e];
    std::printf("  entry %zu: E=%d CT=%u, line transforms:", e, entry.end, entry.ct);
    for (unsigned line = 0; line < 8; ++line) {  // first 8 lines for brevity
      std::printf(" %s", entry.transform(line).name().c_str());
    }
    std::printf(" ...\n");
  }

  // 4. Replay through the cycle-level decoder model.
  core::TtConfig tt;
  tt.block_size = options.block_size;
  tt.entries = encoding.tt_entries;
  core::FetchDecoder decoder(tt, {core::BbitEntry{program.text_base, 0}});
  bool all_restored = true;
  for (std::size_t i = 0; i < encoding.encoded_words.size(); ++i) {
    const std::uint32_t pc = program.text_base + 4 * static_cast<std::uint32_t>(i);
    all_restored &= decoder.feed(pc, encoding.encoded_words[i]) == program.text[i];
  }
  std::printf("\nfetch decoder restored every word: %s\n", all_restored ? "yes" : "NO");

  // 5. The payoff: per-iteration bus transitions.
  const power::BusParams bus = power::BusParams::off_chip();
  const power::EnergyReport before = power::make_report(
      "original", encoding.original_transitions, program.text.size(), bus);
  const power::EnergyReport after = power::make_report(
      "encoded", encoding.encoded_transitions, program.text.size(), bus);
  std::printf("\nper loop iteration, off-chip bus:\n%s\n",
              power::format_comparison(before, after).c_str());
  return all_restored ? 0 : 1;
}
