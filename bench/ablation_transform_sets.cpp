// A3 — how much each transform-set tier buys on real instruction streams:
// identity only (no encoding), the 4 invertible-in-x transforms, the unique
// minimal 6-set, the paper's 8-set, and all 16 functions.
#include <cstdio>

#include "core/chain_encoder.h"
#include "isa/assembler.h"
#include "workloads/workload.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt;
  using core::Transform;

  static constexpr std::array<Transform, 1> kIdentityOnly = {core::kIdentity};
  static constexpr std::array<Transform, 6> kCoreSix = {
      core::kIdentity, core::kInvert, core::kXor,
      core::kXnor,     core::kNor,    core::kNand};

  struct Tier {
    const char* label;
    std::span<const Transform> set;
  };
  const Tier tiers[] = {
      {"identity(1)", std::span<const Transform>{kIdentityOnly}},
      {"invertible(4)", std::span<const Transform>{core::kInvertibleSubset}},
      {"minimal(6)", std::span<const Transform>{kCoreSix}},
      {"paper(8)", std::span<const Transform>{core::kPaperSubset}},
      {"all(16)", std::span<const Transform>{core::kAllTransforms}},
  };

  std::printf("static transition reduction of whole text segments by "
              "transform set (k=5, chain encoder per bus line)\n");
  std::printf("%-6s", "bench");
  for (const Tier& t : tiers) std::printf("%16s", t.label);
  std::printf("\n");

  for (const workloads::Workload& w :
       workloads::make_all(workloads::SizeConfig::small())) {
    const isa::Program program = isa::assemble(w.source);
    long long base = 0;
    for (unsigned line = 0; line < 32; ++line) {
      base += bits::vertical_line(program.text, line).transitions();
    }
    std::printf("%-6s", w.name.c_str());
    for (const Tier& tier : tiers) {
      core::ChainOptions opt;
      opt.block_size = 5;
      opt.allowed = tier.set;
      opt.strategy = core::ChainStrategy::kOptimalDp;
      const core::ChainEncoder encoder(opt);
      long long encoded = 0;
      for (unsigned line = 0; line < 32; ++line) {
        encoded += encoder.encode(bits::vertical_line(program.text, line))
                       .stored.transitions();
      }
      std::printf("%15.1f%%",
                  100.0 * static_cast<double>(base - encoded) / static_cast<double>(base));
    }
    std::printf("\n");
  }
  std::printf(
      "\nexpected: minimal(6) == paper(8) == all(16) (the §5.2 result);\n"
      "invertible(4) trails slightly; identity saves nothing.\n");
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("ablation_transform_sets")
