#include "core/history2.h"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>
#include <vector>

#include "bitstream/bitseq.h"

namespace asimt::core {

std::uint32_t decode_block_h2(Transform2 tau, std::uint32_t code, int k) {
  if (k == 1) return code & 1u;
  std::uint32_t word = code & 3u;  // first two bits stored plain
  int prev1 = static_cast<int>((code >> 1) & 1u);
  int prev2 = static_cast<int>(code & 1u);
  for (int i = 2; i < k; ++i) {
    const int enc = static_cast<int>((code >> i) & 1u);
    const int orig = tau.apply(enc, prev1, prev2);
    word |= static_cast<std::uint32_t>(orig) << i;
    prev2 = prev1;
    prev1 = orig;
  }
  return word;
}

namespace {

void check_k(int k) {
  if (k < 2 || k > 12) {
    throw std::invalid_argument("h2 block size must be in [2, 12]");
  }
}

// minima[word][t] = fewest code transitions for `word` via Transform2{t}.
std::vector<std::vector<int>> h2_minima(int k) {
  const std::uint32_t nwords = std::uint32_t{1} << k;
  std::vector<std::vector<int>> best(
      nwords, std::vector<int>(256, std::numeric_limits<int>::max()));
  for (std::uint32_t code = 0; code < nwords; ++code) {
    const int t = bits::word_transitions(code, k);
    for (unsigned tt = 0; tt < 256; ++tt) {
      const std::uint32_t word = decode_block_h2(Transform2{tt}, code, k);
      best[word][tt] = std::min(best[word][tt], t);
    }
  }
  return best;
}

}  // namespace

H2CodeStats solve_h2_stats(int k) {
  check_k(k);
  const auto minima = h2_minima(k);
  H2CodeStats stats;
  stats.k = k;
  for (std::uint32_t word = 0; word < minima.size(); ++word) {
    stats.ttn += bits::word_transitions(word, k);
    int best = std::numeric_limits<int>::max();
    for (int v : minima[word]) best = std::min(best, v);
    stats.rtn += best;
  }
  return stats;
}

int greedy_h2_subset_size(int max_k) {
  check_k(max_k);
  // Requirement set: for every k and word, at least one selected transform
  // must reach the per-word unrestricted optimum.
  struct Requirement {
    std::array<std::uint64_t, 4> satisfied_by{};  // 256-bit mask of transforms
  };
  std::vector<Requirement> requirements;
  for (int k = 2; k <= max_k; ++k) {
    const auto minima = h2_minima(k);
    for (const auto& row : minima) {
      int best = std::numeric_limits<int>::max();
      for (int v : row) best = std::min(best, v);
      Requirement req;
      for (unsigned tt = 0; tt < 256; ++tt) {
        if (row[tt] == best) req.satisfied_by[tt / 64] |= 1ULL << (tt % 64);
      }
      requirements.push_back(req);
    }
  }
  // Greedy cover: repeatedly pick the transform satisfying the most
  // outstanding requirements.
  int selected = 0;
  std::vector<bool> done(requirements.size(), false);
  std::size_t remaining = requirements.size();
  while (remaining > 0) {
    int best_tt = -1;
    std::size_t best_cover = 0;
    for (unsigned tt = 0; tt < 256; ++tt) {
      std::size_t cover = 0;
      for (std::size_t r = 0; r < requirements.size(); ++r) {
        if (!done[r] &&
            (requirements[r].satisfied_by[tt / 64] >> (tt % 64)) & 1ULL) {
          ++cover;
        }
      }
      if (cover > best_cover) {
        best_cover = cover;
        best_tt = static_cast<int>(tt);
      }
    }
    if (best_tt < 0) break;  // unsatisfiable (cannot happen: identity covers)
    ++selected;
    for (std::size_t r = 0; r < requirements.size(); ++r) {
      if (!done[r] &&
          (requirements[r].satisfied_by[static_cast<unsigned>(best_tt) / 64] >>
           (static_cast<unsigned>(best_tt) % 64)) & 1ULL) {
        done[r] = true;
        --remaining;
      }
    }
  }
  return selected;
}

}  // namespace asimt::core
