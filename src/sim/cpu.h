// In-order, one-instruction-per-cycle functional CPU model.
//
// Mirrors the paper's baseline: "a typical embedded processor front-end,
// which fetches and executes instructions in order and one at a time" (§8).
// Every instruction fetch is exposed to observers via the run() hook — this
// is the instruction-memory data bus the whole study measures.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>

#include "isa/isa.h"
#include "sim/memory.h"
#include "telemetry/metrics.h"

namespace asimt::sim {

class CpuError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct CpuState {
  std::uint32_t pc = 0;
  std::array<std::uint32_t, 32> r{};  // r[0] hard-wired to zero
  std::array<float, 32> f{};
  std::uint32_t hi = 0, lo = 0;
  bool fcc = false;  // FP condition flag set by c.{eq,lt,le}.s
  bool halted = false;
  std::uint64_t instructions = 0;
};

class Cpu {
 public:
  explicit Cpu(Memory& memory) : memory_(memory) {}

  CpuState& state() { return state_; }
  const CpuState& state() const { return state_; }

  // Executes the instruction in `word` at the current PC (which must already
  // have been used to fetch `word`). Advances PC. Exposed separately from
  // fetching so harnesses can interpose encoded-bus models.
  void execute(std::uint32_t word);

  // Fetch-execute until halt or `max_steps`; calls on_fetch(pc, word) for
  // every instruction fetch, modeling the instruction-memory data bus.
  // Returns the number of instructions executed.
  template <typename F>
  std::uint64_t run(std::uint64_t max_steps, F&& on_fetch) {
    std::uint64_t steps = 0;
    while (!state_.halted && steps < max_steps) {
      const std::uint32_t pc = state_.pc;
      const std::uint32_t word = memory_.load32(pc);
      on_fetch(pc, word);
      execute(word);
      ++steps;
    }
    // Aggregate telemetry once per run() call, never per fetch, so the
    // disabled cost of the hot loop is a single branch here.
    if (telemetry::enabled()) {
      telemetry::count("sim.fetches", static_cast<long long>(steps));
      telemetry::count("sim.runs");
      if (state_.halted) telemetry::count("sim.halts");
    }
    return steps;
  }

  // Convenience without an observer.
  std::uint64_t run(std::uint64_t max_steps) {
    return run(max_steps, [](std::uint32_t, std::uint32_t) {});
  }

 private:
  Memory& memory_;
  CpuState state_;
};

}  // namespace asimt::sim
