// Tests for process self-metrics: getrusage sampling sanity, the telemetry
// enable gate, and the Prometheus exposition of the process.* gauges (the
// exporter-format regression test for the scrape surface).
#include "obs/selfmetrics.h"

#include <gtest/gtest.h>

#include <string>

#include "telemetry/export.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace asimt::obs {
namespace {

class SelfMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::set_enabled(false);
    telemetry::MetricsRegistry::global().reset();
  }
  void TearDown() override {
    telemetry::set_enabled(false);
    telemetry::MetricsRegistry::global().reset();
  }
};

TEST_F(SelfMetricsTest, SampleReportsLiveProcess) {
  const ProcessMetrics m = sample_process_metrics();
  // A running gtest binary has mapped megabytes and burned CPU.
  EXPECT_GT(m.max_rss_bytes, 1 << 20);
  EXPECT_GE(m.cpu_user_seconds + m.cpu_sys_seconds, 0.0);
}

TEST_F(SelfMetricsTest, ToJsonShape) {
  ProcessMetrics m;
  m.max_rss_bytes = 123456;
  m.cpu_user_seconds = 1.5;
  m.cpu_sys_seconds = 0.25;
  const json::Value v = to_json(m);
  EXPECT_EQ(v.at("max_rss_bytes").as_int(), 123456);
  EXPECT_DOUBLE_EQ(v.at("cpu_user_seconds").as_double(), 1.5);
  EXPECT_DOUBLE_EQ(v.at("cpu_sys_seconds").as_double(), 0.25);
}

TEST_F(SelfMetricsTest, PublishIsGatedOnTelemetryEnable) {
  publish_process_metrics();
  EXPECT_TRUE(telemetry::MetricsRegistry::global().snapshot().empty());

  telemetry::set_enabled(true);
  publish_process_metrics();
  const auto snapshot = telemetry::MetricsRegistry::global().snapshot();
  double rss = -1.0;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name == "process.max_rss_bytes") rss = value;
  }
  EXPECT_GT(rss, 0.0);
}

TEST_F(SelfMetricsTest, PrometheusExposesProcessGauges) {
  telemetry::set_enabled(true);
  publish_process_metrics();
  const std::string text =
      telemetry::metrics_prometheus(telemetry::MetricsRegistry::global());
  // The exporter prefixes asimt_ and maps dots to underscores; these series
  // names are the scrape contract (docs/OBSERVABILITY.md).
  EXPECT_NE(text.find("asimt_process_max_rss_bytes"), std::string::npos);
  EXPECT_NE(text.find("asimt_process_cpu_user_seconds"), std::string::npos);
  EXPECT_NE(text.find("asimt_process_cpu_sys_seconds"), std::string::npos);
}

}  // namespace
}  // namespace asimt::obs
