// Two-pass assembler tests: syntax, labels, pseudo-instruction expansion,
// data directives, and diagnostics.
#include "isa/assembler.h"

#include <gtest/gtest.h>

#include "isa/isa.h"

namespace asimt::isa {
namespace {

Instruction first_instruction(const Program& program, std::size_t index = 0) {
  return decode(program.text.at(index));
}

TEST(Assembler, EmptyProgram) {
  const Program p = assemble("");
  EXPECT_TRUE(p.text.empty());
  EXPECT_TRUE(p.data.empty());
}

TEST(Assembler, CommentsAndBlankLines) {
  const Program p = assemble(R"(
  # full-line comment
        nop       # trailing comment
        ; alt comment style
        nop
)");
  EXPECT_EQ(p.text.size(), 2u);
}

TEST(Assembler, BasicInstructions) {
  const Program p = assemble(R"(
        addu    $t0, $t1, $t2
        addiu   $t0, $t0, -5
        lw      $s0, 12($sp)
        sw      $s0, -8($gp)
        sll     $t3, $t4, 7
        mult    $t0, $t1
        mflo    $t2
)");
  ASSERT_EQ(p.text.size(), 7u);
  EXPECT_EQ(p.text[0], 0x012A4021u);
  const Instruction addiu = first_instruction(p, 1);
  EXPECT_EQ(addiu.op, Op::kAddiu);
  EXPECT_EQ(addiu.imm, -5);
  const Instruction lw = first_instruction(p, 2);
  EXPECT_EQ(lw.op, Op::kLw);
  EXPECT_EQ(lw.rs, kSp);
  EXPECT_EQ(lw.imm, 12);
  const Instruction sll = first_instruction(p, 4);
  EXPECT_EQ(sll.shamt, 7);
}

TEST(Assembler, BranchesResolveLabels) {
  const Program p = assemble(R"(
start:  addiu   $t0, $t0, 1
        bne     $t0, $t1, start
        beq     $t0, $t1, done
        nop
done:   halt
)");
  const Instruction bne = first_instruction(p, 1);
  EXPECT_EQ(bne.op, Op::kBne);
  // target = start = base; pc of bne = base+4; imm = (base - (base+8))/4 = -2
  EXPECT_EQ(bne.imm, -2);
  const Instruction beq = first_instruction(p, 2);
  EXPECT_EQ(beq.imm, 1);  // skips the nop
}

TEST(Assembler, ForwardAndBackwardJumps) {
  const Program p = assemble(R"(
main:   j       end
middle: jal     main
end:    jr      $ra
)");
  const Instruction j = first_instruction(p, 0);
  EXPECT_EQ(jump_target(p.text_base, j), p.symbol("end"));
  const Instruction jal = first_instruction(p, 1);
  EXPECT_EQ(jump_target(p.text_base + 4, jal), p.symbol("main"));
}

TEST(Assembler, LiExpansion) {
  const Program p = assemble(R"(
        li      $t0, 42
        li      $t1, -42
        li      $t2, 0xFFFF
        li      $t3, 0x12345678
)");
  // 42 and -42: one instruction; 0xFFFF: ori; 0x12345678: lui+ori.
  ASSERT_EQ(p.text.size(), 5u);
  EXPECT_EQ(first_instruction(p, 0).op, Op::kAddiu);
  EXPECT_EQ(first_instruction(p, 1).op, Op::kAddiu);
  EXPECT_EQ(first_instruction(p, 2).op, Op::kOri);
  EXPECT_EQ(first_instruction(p, 3).op, Op::kLui);
  EXPECT_EQ(first_instruction(p, 3).imm, 0x1234);
  EXPECT_EQ(first_instruction(p, 4).op, Op::kOri);
  EXPECT_EQ(first_instruction(p, 4).imm, 0x5678);
}

TEST(Assembler, LaLoadsDataAddress) {
  const Program p = assemble(R"(
        .data
value:  .word 7
        .text
        la      $t0, value
        lw      $t1, 0($t0)
        halt
)");
  EXPECT_EQ(p.symbol("value"), p.data_base);
  EXPECT_EQ(first_instruction(p, 0).op, Op::kLui);
  EXPECT_EQ(first_instruction(p, 1).op, Op::kOri);
}

TEST(Assembler, PseudoInstructions) {
  const Program p = assemble(R"(
        move    $t0, $t1
        nop
        beqz    $t0, out
        bnez    $t0, out
        b       out
        neg     $t2, $t3
        not     $t4, $t5
        subi    $t6, $t6, 3
out:    halt
)");
  EXPECT_EQ(first_instruction(p, 0).op, Op::kAddu);
  EXPECT_EQ(p.text[1], 0u);
  EXPECT_EQ(first_instruction(p, 2).op, Op::kBeq);
  EXPECT_EQ(first_instruction(p, 3).op, Op::kBne);
  EXPECT_EQ(first_instruction(p, 4).op, Op::kBeq);  // b = beq $0,$0
  EXPECT_EQ(first_instruction(p, 5).op, Op::kSubu);
  EXPECT_EQ(first_instruction(p, 6).op, Op::kNor);
  const Instruction subi = first_instruction(p, 7);
  EXPECT_EQ(subi.op, Op::kAddiu);
  EXPECT_EQ(subi.imm, -3);
}

TEST(Assembler, ComparePseudosExpandToSltPlusBranch) {
  const Program p = assemble(R"(
loop:   blt     $t0, $t1, loop
        bge     $t0, $t1, loop
        bgt     $t0, $t1, loop
        ble     $t0, $t1, loop
)");
  ASSERT_EQ(p.text.size(), 8u);
  for (std::size_t i = 0; i < 8; i += 2) {
    EXPECT_EQ(first_instruction(p, i).op, Op::kSlt);
    EXPECT_EQ(first_instruction(p, i).rd, kAt);
  }
  EXPECT_EQ(first_instruction(p, 1).op, Op::kBne);  // blt
  EXPECT_EQ(first_instruction(p, 3).op, Op::kBeq);  // bge
  // bgt/ble swap the slt operands.
  EXPECT_EQ(first_instruction(p, 4).rs, kT1);
  EXPECT_EQ(first_instruction(p, 4).rt, kT0);
}

TEST(Assembler, MulPseudo) {
  const Program p = assemble("mul $t0, $t1, $t2\n");
  ASSERT_EQ(p.text.size(), 2u);
  EXPECT_EQ(first_instruction(p, 0).op, Op::kMult);
  EXPECT_EQ(first_instruction(p, 1).op, Op::kMflo);
  EXPECT_EQ(first_instruction(p, 1).rd, kT0);
}

TEST(Assembler, FloatInstructions) {
  const Program p = assemble(R"(
        lwc1    $f1, 0($a0)
        add.s   $f2, $f1, $f1
        mul.s   $f3, $f2, $f1
        c.lt.s  $f1, $f2
        bc1t    skip
        swc1    $f3, 4($a0)
skip:   halt
)");
  EXPECT_EQ(first_instruction(p, 0).op, Op::kLwc1);
  EXPECT_EQ(first_instruction(p, 1).op, Op::kAddS);
  EXPECT_EQ(first_instruction(p, 3).op, Op::kCLtS);
  EXPECT_EQ(first_instruction(p, 4).op, Op::kBc1t);
}

TEST(Assembler, LiSLoadsFloatConstant) {
  const Program p = assemble("li.s $f5, 0.375\n");
  ASSERT_EQ(p.text.size(), 2u);
  const Instruction lui = first_instruction(p, 0);
  EXPECT_EQ(lui.op, Op::kLui);
  EXPECT_EQ(lui.rt, kAt);
  EXPECT_EQ(lui.imm, 0x3EC0);  // high half of 0.375f
  const Instruction mtc1 = first_instruction(p, 1);
  EXPECT_EQ(mtc1.op, Op::kMtc1);
  EXPECT_EQ(mtc1.fs, 5);
}

TEST(Assembler, LiSRejectsConstantsWithLowBits) {
  EXPECT_THROW(assemble("li.s $f0, 0.9\n"), AssemblyError);
}

TEST(Assembler, DataDirectives) {
  const Program p = assemble(R"(
        .data
ints:   .word 1, 2, -1
floats: .float 0.5, 1.5
gap:    .space 8
after:  .word 0xDEAD
)");
  EXPECT_EQ(p.symbol("ints"), p.data_base);
  EXPECT_EQ(p.symbol("floats"), p.data_base + 12);
  EXPECT_EQ(p.symbol("gap"), p.data_base + 20);
  EXPECT_EQ(p.symbol("after"), p.data_base + 28);
  ASSERT_EQ(p.data.size(), 32u);
  EXPECT_EQ(p.data[0], 1u);
  EXPECT_EQ(p.data[8], 0xFFu);  // -1 little-endian
  // 0.5f = 0x3F000000
  EXPECT_EQ(p.data[15], 0x3Fu);
}

TEST(Assembler, AlignDirective) {
  const Program p = assemble(R"(
        .data
        .space 3
        .align 2
v:      .word 5
)");
  EXPECT_EQ(p.symbol("v"), p.data_base + 4);
}

TEST(Assembler, WordDirectiveAcceptsLabels) {
  const Program p = assemble(R"(
        .text
entry:  halt
        .data
ptr:    .word entry
)");
  const std::uint32_t stored = static_cast<std::uint32_t>(p.data[0]) |
                               (p.data[1] << 8) | (p.data[2] << 16) |
                               (static_cast<std::uint32_t>(p.data[3]) << 24);
  EXPECT_EQ(stored, p.symbol("entry"));
}

TEST(Assembler, HiLoOperators) {
  const Program p = assemble(R"(
        .data
buf:    .word 0
        .text
        lui     $t0, %hi(buf)
        ori     $t0, $t0, %lo(buf)
)");
  const std::uint32_t addr = p.symbol("buf");
  EXPECT_EQ(static_cast<std::uint32_t>(first_instruction(p, 0).imm), addr >> 16);
  EXPECT_EQ(static_cast<std::uint32_t>(first_instruction(p, 1).imm), addr & 0xFFFFu);
}

TEST(Assembler, MultipleLabelsPerLine) {
  const Program p = assemble("a: b: c: nop\n");
  EXPECT_EQ(p.symbol("a"), p.symbol("b"));
  EXPECT_EQ(p.symbol("b"), p.symbol("c"));
}

TEST(AssemblerErrors, ReportLineNumbers) {
  try {
    assemble("nop\nnop\nbogus $t0\n");
    FAIL() << "expected AssemblyError";
  } catch (const AssemblyError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(AssemblerErrors, UndefinedLabel) {
  EXPECT_THROW(assemble("j nowhere\n"), AssemblyError);
}

TEST(AssemblerErrors, DuplicateLabel) {
  EXPECT_THROW(assemble("x: nop\nx: nop\n"), AssemblyError);
}

TEST(AssemblerErrors, BadRegister) {
  EXPECT_THROW(assemble("addu $t0, $t9x, $t2\n"), AssemblyError);
  EXPECT_THROW(assemble("add.s $f1, $t0, $f2\n"), AssemblyError);
}

TEST(AssemblerErrors, ImmediateRange) {
  EXPECT_THROW(assemble("addiu $t0, $t0, 70000\n"), AssemblyError);
  EXPECT_THROW(assemble("lw $t0, 40000($t1)\n"), AssemblyError);
}

TEST(AssemblerErrors, WrongOperandCount) {
  EXPECT_THROW(assemble("addu $t0, $t1\n"), AssemblyError);
  EXPECT_THROW(assemble("nop $t0\n"), AssemblyError);
}

TEST(AssemblerErrors, InstructionInDataSection) {
  EXPECT_THROW(assemble(".data\nnop\n"), AssemblyError);
  EXPECT_THROW(assemble(".word 1\n"), AssemblyError);  // .word outside .data
}

// Strict literal parsing. The pre-fix strtoll/strtof silently saturated:
// an out-of-range integer literal became LLONG_MAX (then truncated to a
// plausible-looking word) and an overflowing float became +inf — both
// assembled "successfully" into a wrong image. Each rejection here fails
// against that implementation.
TEST(AssemblerErrors, IntegerLiteralOverflowIsDiagnosedNotSaturated) {
  EXPECT_THROW(assemble("li $t0, 99999999999999999999\n"), AssemblyError);
  EXPECT_THROW(assemble(".data\n.word 99999999999999999999\n"), AssemblyError);
  EXPECT_THROW(assemble("li $t0, 0x1FFFFFFFFFFFFFFFF\n"), AssemblyError);
  // INT64_MIN itself is fine (magnitude parse + explicit sign).
  const Program p = assemble("li $t0, -9223372036854775808\n");
  EXPECT_FALSE(p.text.empty());
}

TEST(AssemblerErrors, IntegerLiteralJunkIsDiagnosed) {
  // strtoll would have parsed the prefix and ignored the tail.
  EXPECT_THROW(assemble("li $t0, 12abc\n"), AssemblyError);
  EXPECT_THROW(assemble("li $t0, 0x\n"), AssemblyError);
  EXPECT_THROW(assemble(".data\n.word 1,2,3x\n"), AssemblyError);
  try {
    assemble("li $t0, 12abc\n");
    FAIL() << "expected AssemblyError";
  } catch (const AssemblyError& e) {
    EXPECT_EQ(e.line(), 1);  // the diagnostic names the offending line
  }
}

TEST(AssemblerErrors, FloatLiteralOverflowAndJunkAreDiagnosed) {
  // strtof turned 1e99 into +inf and stored a garbage IEEE pattern.
  EXPECT_THROW(assemble(".data\n.float 1e99\n"), AssemblyError);
  EXPECT_THROW(assemble(".data\n.float -1e99\n"), AssemblyError);
  EXPECT_THROW(assemble(".data\n.float 0.5x\n"), AssemblyError);
  EXPECT_THROW(assemble("li.s $f0, nope\n"), AssemblyError);
}

TEST(Assembler, StrictLiteralsStillAcceptTheFullDialect) {
  // Hex, octal, explicit signs, and float forms that must keep working.
  const Program p = assemble(
      ".data\n"
      "vals: .word 0x7FFFFFFF, -0x80000000, 017, +42\n"
      "fs:   .float 0.375, -1.5e2, +0.25\n"
      ".text\n"
      "  li $t0, 0xFF\n"
      "  li.s $f1, 2.5\n"
      "  halt\n");
  EXPECT_EQ(p.data.size(), 4u * 7u);
}

TEST(Assembler, SymbolLookupThrowsForUnknown) {
  const Program p = assemble("nop\n");
  EXPECT_THROW(p.symbol("missing"), std::out_of_range);
}

TEST(Assembler, TextLayoutIsSequential) {
  const Program p = assemble("a: nop\nb: nop\nc: nop\n");
  EXPECT_EQ(p.symbol("b"), p.symbol("a") + 4);
  EXPECT_EQ(p.symbol("c"), p.symbol("a") + 8);
  EXPECT_EQ(p.text_end(), p.text_base + 12);
  EXPECT_EQ(p.entry(), p.text_base);
}

}  // namespace
}  // namespace asimt::isa
