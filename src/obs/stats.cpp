#include "obs/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace asimt::obs {

namespace {

// SplitMix64 (Steele/Lea/Flood) — same fully specified stream the fuzzer
// uses (src/check/rng.h), duplicated here so obs does not pull in the
// encoder stack just for 64 random bits.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
};

double sorted_median(const std::vector<double>& sorted) {
  const std::size_t n = sorted.size();
  if (n == 0) return 0.0;
  if (n % 2 == 1) return sorted[n / 2];
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

}  // namespace

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return sorted_median(v);
}

double mad(const std::vector<double>& v, double center) {
  if (v.empty()) return 0.0;
  std::vector<double> dev;
  dev.reserve(v.size());
  for (const double x : v) dev.push_back(std::abs(x - center));
  return median(std::move(dev));
}

SampleStats summarize(const std::vector<double>& samples,
                      const StatsOptions& options) {
  SampleStats s;
  if (samples.empty()) return s;

  // Outlier fence around the raw median. MAD == 0 (all-equal or n == 1)
  // keeps everything: a zero-width fence would reject every sample that is
  // not exactly the median.
  const double raw_median = obs::median(samples);
  const double raw_mad = obs::mad(samples, raw_median);
  std::vector<double> kept;
  kept.reserve(samples.size());
  if (options.outlier_mad_k > 0 && raw_mad > 0) {
    const double fence = options.outlier_mad_k * raw_mad;
    for (const double x : samples) {
      if (std::abs(x - raw_median) <= fence) kept.push_back(x);
    }
  } else {
    kept = samples;
  }
  s.outliers_rejected = samples.size() - kept.size();

  std::sort(kept.begin(), kept.end());
  s.n = kept.size();
  s.min = kept.front();
  s.max = kept.back();
  double sum = 0.0;
  for (const double x : kept) sum += x;
  s.mean = sum / static_cast<double>(s.n);
  s.median = sorted_median(kept);
  s.mad = obs::mad(kept, s.median);

  if (s.n == 1) {
    s.ci_lo = s.ci_hi = s.median;
    return s;
  }

  // Percentile bootstrap of the median. Resampled medians are sorted and
  // the (1±confidence)/2 quantiles read off; modulo bias in the index draw
  // is irrelevant at these n and keeps the arithmetic identical everywhere.
  SplitMix64 rng{options.seed};
  const int resamples = std::max(1, options.resamples);
  std::vector<double> medians;
  medians.reserve(static_cast<std::size_t>(resamples));
  std::vector<double> draw(s.n);
  for (int r = 0; r < resamples; ++r) {
    for (std::size_t i = 0; i < s.n; ++i) {
      draw[i] = kept[static_cast<std::size_t>(rng.next() % s.n)];
    }
    medians.push_back(obs::median(draw));
  }
  std::sort(medians.begin(), medians.end());
  const double alpha = (1.0 - options.confidence) / 2.0;
  const auto quantile_index = [&](double q) {
    const double pos = q * static_cast<double>(medians.size() - 1);
    return static_cast<std::size_t>(pos + 0.5);  // nearest-rank, deterministic
  };
  s.ci_lo = medians[quantile_index(alpha)];
  s.ci_hi = medians[quantile_index(1.0 - alpha)];
  return s;
}

json::Value to_json(const SampleStats& s) {
  json::Value v = json::Value::object();
  v.set("n", static_cast<long long>(s.n));
  v.set("outliers_rejected", static_cast<long long>(s.outliers_rejected));
  v.set("min", s.min);
  v.set("max", s.max);
  v.set("mean", s.mean);
  v.set("median", s.median);
  v.set("mad", s.mad);
  v.set("ci95_lo", s.ci_lo);
  v.set("ci95_hi", s.ci_hi);
  return v;
}

SampleStats stats_from_json(const json::Value& v) {
  SampleStats s;
  s.n = static_cast<std::size_t>(v.at("n").as_int());
  s.outliers_rejected =
      static_cast<std::size_t>(v.at("outliers_rejected").as_int());
  s.min = v.at("min").as_double();
  s.max = v.at("max").as_double();
  s.mean = v.at("mean").as_double();
  s.median = v.at("median").as_double();
  s.mad = v.at("mad").as_double();
  s.ci_lo = v.at("ci95_lo").as_double();
  s.ci_hi = v.at("ci95_hi").as_double();
  return s;
}

}  // namespace asimt::obs
