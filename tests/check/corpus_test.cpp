// Regression-corpus replay: every .case file under tests/check/corpus/ is a
// once-failing (or boundary-shaped) input, shrunk and checked in. Each must
// parse and pass its oracle forever; a red run here means a fixed bug came
// back. New reproducers land automatically via
//   asimt fuzz --seed S --iters N --out tests/check/corpus
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzz_case.h"
#include "check/oracles.h"

#ifndef ASIMT_CHECK_CORPUS_DIR
#error "build must define ASIMT_CHECK_CORPUS_DIR (see tests/CMakeLists.txt)"
#endif

namespace asimt::check {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(ASIMT_CHECK_CORPUS_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".case") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Corpus, IsNotEmpty) {
  // The corpus must ship with the boundary-shape seeds; an empty directory
  // means the replay lane is silently testing nothing.
  EXPECT_GE(corpus_files().size(), 8u) << "corpus dir: " << ASIMT_CHECK_CORPUS_DIR;
}

TEST(Corpus, EveryCaseParsesSerializesAndPasses) {
  for (const std::filesystem::path& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    FuzzCase c;
    ASSERT_NO_THROW(c = parse_case(slurp(path)));
    // The stored text must stay canonical modulo comments: re-serializing
    // the parsed case and parsing again is a fixed point.
    EXPECT_EQ(parse_case(serialize_case(c)), c);
    const auto failure = run_case(c);
    EXPECT_FALSE(failure.has_value()) << *failure;
  }
}

TEST(Corpus, CoversEveryOracle) {
  std::array<bool, kOracleCount> seen{};
  for (const std::filesystem::path& path : corpus_files()) {
    seen[static_cast<int>(parse_case(slurp(path)).oracle)] = true;
  }
  for (int i = 0; i < kOracleCount; ++i) {
    EXPECT_TRUE(seen[i]) << "no corpus case exercises oracle "
                         << oracle_name(static_cast<Oracle>(i));
  }
}

}  // namespace
}  // namespace asimt::check
