// Unit tests for the thread pool and the parallel_for/parallel_map front
// ends: startup/shutdown, exception propagation out of tasks, degenerate
// ranges, ranges smaller than the pool, and nested-submit rejection.
#include "parallel/pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace asimt::parallel {
namespace {

TEST(ThreadPool, StartupAndShutdown) {
  // Construction spawns the workers, destruction joins them; both must be
  // clean even when no task was ever submitted.
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
}

TEST(ThreadPool, ZeroThreadsIsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 24);
}

TEST(ThreadPool, ShutdownDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor completes the queue before joining
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, SubmitPropagatesTaskExceptions) {
  ThreadPool pool(2);
  std::future<void> f =
      pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, NestedSubmitIsRejected) {
  ThreadPool pool(2);
  // A task that tries to submit to the pool it runs on must get a
  // logic_error instead of a deadlock; the rejection travels out through
  // the outer future.
  std::future<void> outer = pool.submit([&pool] {
    EXPECT_TRUE(ThreadPool::on_worker_thread());
    EXPECT_THROW(pool.submit([] {}), std::logic_error);
  });
  outer.get();
  EXPECT_FALSE(ThreadPool::on_worker_thread());
}

TEST(ParallelFor, EmptyRangeCallsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  parallel_for(0, [&](std::size_t) { calls.fetch_add(1); }, {.pool = &pool});
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, RangeSmallerThanPoolVisitsEveryIndexOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(3);
  parallel_for(3, [&](std::size_t i) { visits[i].fetch_add(1); },
               {.pool = &pool});
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnceOnLargeRanges) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<int> visits(kN, 0);  // slot-per-index, no sharing
  parallel_for(kN, [&](std::size_t i) { ++visits[i]; }, {.pool = &pool});
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0),
            static_cast<int>(kN));
  EXPECT_EQ(*std::min_element(visits.begin(), visits.end()), 1);
  EXPECT_EQ(*std::max_element(visits.begin(), visits.end()), 1);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(
                   100,
                   [&](std::size_t i) {
                     if (i == 57) throw std::runtime_error("index 57");
                   },
                   {.pool = &pool}),
               std::runtime_error);
}

TEST(ParallelFor, LowestChunkExceptionWinsDeterministically) {
  ThreadPool pool(4);
  // Two throwing indices far apart land in different chunks; the rethrown
  // exception must always be the lower chunk's, independent of timing.
  for (int attempt = 0; attempt < 8; ++attempt) {
    try {
      parallel_for(
          1000,
          [&](std::size_t i) {
            if (i == 10) throw std::runtime_error("low");
            if (i == 990) throw std::runtime_error("high");
          },
          {.pool = &pool});
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "low");
    }
  }
}

TEST(ParallelFor, NestedCallRunsInlineOnWorker) {
  ThreadPool pool(2);
  std::atomic<int> inner_calls{0};
  parallel_for(4,
               [&](std::size_t) {
                 // Nested fan-out degrades to serial on the worker instead
                 // of deadlocking the 2-thread pool.
                 parallel_for(8, [&](std::size_t) { inner_calls.fetch_add(1); },
                              {.pool = &pool});
               },
               {.pool = &pool});
  EXPECT_EQ(inner_calls.load(), 32);
}

TEST(ParallelFor, GrainCoarsensChunksWithoutChangingResults) {
  ThreadPool pool(4);
  std::vector<int> out(100, 0);
  parallel_for(100, [&](std::size_t i) { out[i] = static_cast<int>(i) * 3; },
               {.pool = &pool, .grain = 64});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * 3);
}

TEST(ParallelMap, ProducesIndexOrderedResults) {
  ThreadPool pool(4);
  const std::vector<std::size_t> out = parallel_map(
      257, [](std::size_t i) { return i * i; }, {.pool = &pool});
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(DefaultJobs, OverrideAndReset) {
  const unsigned automatic = default_jobs();
  EXPECT_GE(automatic, 1u);
  set_default_jobs(3);
  EXPECT_EQ(default_jobs(), 3u);
  EXPECT_EQ(default_pool().size(), 3u);
  set_default_jobs(0);  // back to automatic
  EXPECT_EQ(default_jobs(), automatic);
}

TEST(DefaultJobs, JobsOneSkipsThePoolEntirely) {
  set_default_jobs(1);
  std::size_t calls = 0;  // unsynchronized on purpose: must run inline
  parallel_for(64, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 64u);
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  set_default_jobs(0);
}

// ASIMT_JOBS parsing. The pre-fix strtol accepted "8x" as 8 and junk as 0
// (and 0 then meant "spin up zero workers" downstream) — every rejection
// case here is a regression test for that.
TEST(ParseJobsEnv, AcceptsPositiveIntegers) {
  EXPECT_EQ(parse_jobs_env("1"), 1u);
  EXPECT_EQ(parse_jobs_env("8"), 8u);
  EXPECT_EQ(parse_jobs_env("64"), 64u);
}

TEST(ParseJobsEnv, RejectsTrailingGarbage) {
  // strtol would have silently returned 8 for all of these.
  EXPECT_FALSE(parse_jobs_env("8x").has_value());
  EXPECT_FALSE(parse_jobs_env("8 ").has_value());
  EXPECT_FALSE(parse_jobs_env("8.5").has_value());
}

TEST(ParseJobsEnv, RejectsJunkZeroNegativeAndOverflow) {
  EXPECT_FALSE(parse_jobs_env("").has_value());
  EXPECT_FALSE(parse_jobs_env("auto").has_value());   // strtol: silent 0
  EXPECT_FALSE(parse_jobs_env("0").has_value());      // zero workers is junk
  EXPECT_FALSE(parse_jobs_env("-4").has_value());
  EXPECT_FALSE(parse_jobs_env("99999999999999").has_value());  // > unsigned
}

}  // namespace
}  // namespace asimt::parallel
