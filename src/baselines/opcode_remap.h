// Low-power ISA encoding baseline (§2, reference [6], Benini et al.):
// "Statistical data concerning instruction adjacency is collected from
// instruction set simulations ... The opcode space is selected in such a way
// that the Hamming distance between frequently encountered pairs of
// instructions is minimized."
//
// This implements that scheme for the 6-bit primary opcode field: observe a
// dynamic instruction stream, build the opcode adjacency matrix, then
// greedily re-assign opcode values so high-traffic pairs sit at small
// Hamming distances. Unlike ASIMT it is a one-time, application-blind ISA
// design decision (no per-application hardware), and it only touches the
// opcode field — the ablation bench contrasts the two.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace asimt::baselines {

class OpcodeRemapper {
 public:
  static constexpr unsigned kOpcodeBits = 6;
  static constexpr unsigned kOpcodes = 1u << kOpcodeBits;

  // Feed the dynamic instruction word stream (in fetch order).
  void observe(std::uint32_t word);

  // A permutation of the 6-bit opcode space: mapping[old] = new.
  using Mapping = std::array<std::uint8_t, kOpcodes>;

  // Greedy assignment: opcodes in decreasing adjacency mass each take the
  // free code minimizing the weighted Hamming distance to the codes already
  // placed. Deterministic.
  Mapping solve() const;

  // Weighted opcode-field transitions under a mapping (identity mapping
  // gives the baseline).
  long long field_transitions(const Mapping& mapping) const;
  static Mapping identity_mapping();

  // Total adjacency events observed (= words - 1).
  std::uint64_t pairs_observed() const { return pairs_; }

 private:
  std::array<std::array<std::uint64_t, kOpcodes>, kOpcodes> adjacency_{};
  std::uint32_t previous_opcode_ = 0;
  bool first_ = true;
  std::uint64_t pairs_ = 0;
};

}  // namespace asimt::baselines
