#include "obsv/latency.h"

#include <bit>

namespace asimt::obsv {

unsigned LogHistogram::bucket_of(std::uint64_t v) {
  if (v < kSub) return static_cast<unsigned>(v);
  const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
  const unsigned sub =
      static_cast<unsigned>((v >> (msb - kSubBits)) & (kSub - 1));
  return (msb - kSubBits + 1) * kSub + sub;
}

std::uint64_t LogHistogram::bucket_upper_bound(unsigned index) {
  if (index < kSub) return index;
  const unsigned msb = index / kSub + kSubBits - 1;
  const unsigned sub = index & (kSub - 1);
  if (msb == 63 && sub == kSub - 1) return ~0ull;
  return ((static_cast<std::uint64_t>(kSub) + sub + 1) << (msb - kSubBits)) - 1;
}

void LogHistogram::observe(std::uint64_t v) {
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void LogHistogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

LogHistogram::Snapshot LogHistogram::snapshot() const {
  Snapshot snap;
  for (unsigned i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    snap.buckets.emplace_back(i, n);
    snap.count += n;  // derived from what was read: count == Σ buckets
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

double LogHistogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count - 1);
  std::uint64_t cumulative = 0;
  for (const auto& [index, n] : buckets) {
    if (static_cast<double>(cumulative + n) > rank) {
      const std::uint64_t lower =
          index == 0 ? 0 : bucket_upper_bound(index - 1) + 1;
      const std::uint64_t upper = bucket_upper_bound(index);
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(n);
      return static_cast<double>(lower) +
             within * static_cast<double>(upper - lower);
    }
    cumulative += n;
  }
  return static_cast<double>(max);
}

void LatencyMatrix::reset() {
  for (LogHistogram& cell : cells_) cell.reset();
}

}  // namespace asimt::obsv
