#include "telemetry/export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace asimt::telemetry {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

// HELP text shares the label escapes except the double quote (HELP lines are
// not quoted).
std::string escape_help(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string prometheus_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*
std::string prometheus_name(const std::string& name) {
  std::string out = "asimt_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string render_prometheus(std::vector<PromFamily> families) {
  std::stable_sort(families.begin(), families.end(),
                   [](const PromFamily& a, const PromFamily& b) {
                     return a.name < b.name;
                   });
  std::string out;
  const std::string* previous = nullptr;
  for (const PromFamily& family : families) {
    // Duplicate family names merge into the first occurrence so # HELP and
    // # TYPE appear exactly once per family no matter how callers batch.
    if (previous == nullptr || *previous != family.name) {
      if (!family.help.empty()) {
        out += "# HELP " + family.name + " " + escape_help(family.help) + "\n";
      }
      out += "# TYPE " + family.name + " " + family.type + "\n";
      previous = &family.name;
    }
    for (const PromSample& sample : family.samples) {
      out += family.name + sample.suffix;
      if (!sample.labels.empty()) {
        out += "{";
        bool first = true;
        for (const auto& [label, value] : sample.labels) {
          if (!first) out += ",";
          first = false;
          out += label + "=\"" + prometheus_escape_label(value) + "\"";
        }
        out += "}";
      }
      out += " " + sample.value + "\n";
    }
  }
  return out;
}

json::Value metrics_to_json(const MetricsRegistry& registry) {
  const MetricsRegistry::Snapshot snap = registry.snapshot();
  json::Value root = json::Value::object();

  json::Value counters = json::Value::object();
  for (const auto& [name, value] : snap.counters) counters.set(name, value);
  root.set("counters", std::move(counters));

  json::Value gauges = json::Value::object();
  for (const auto& [name, value] : snap.gauges) gauges.set(name, value);
  root.set("gauges", std::move(gauges));

  json::Value histograms = json::Value::object();
  for (const auto& row : snap.histograms) {
    json::Value h = json::Value::object();
    h.set("count", static_cast<long long>(row.count));
    h.set("sum", row.sum);
    h.set("min", row.min);
    h.set("max", row.max);
    h.set("mean", row.mean);
    json::Value buckets = json::Value::object();
    for (const auto& [index, n] : row.buckets) {
      buckets.set(std::to_string(index), static_cast<long long>(n));
    }
    h.set("buckets", std::move(buckets));
    histograms.set(row.name, std::move(h));
  }
  root.set("histograms", std::move(histograms));
  return root;
}

std::string metrics_json(const MetricsRegistry& registry) {
  return metrics_to_json(registry).dump(2) + "\n";
}

std::string metrics_csv(const MetricsRegistry& registry) {
  const MetricsRegistry::Snapshot snap = registry.snapshot();
  std::string out = "kind,name,field,value\n";
  for (const auto& [name, value] : snap.counters) {
    out += "counter," + name + ",value," + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out += "gauge," + name + ",value," + format_double(value) + "\n";
  }
  for (const auto& row : snap.histograms) {
    out += "histogram," + row.name + ",count," + std::to_string(row.count) + "\n";
    out += "histogram," + row.name + ",sum," + format_double(row.sum) + "\n";
    out += "histogram," + row.name + ",min," + format_double(row.min) + "\n";
    out += "histogram," + row.name + ",max," + format_double(row.max) + "\n";
    out += "histogram," + row.name + ",mean," + format_double(row.mean) + "\n";
  }
  return out;
}

std::string metrics_prometheus(const MetricsRegistry& registry) {
  const MetricsRegistry::Snapshot snap = registry.snapshot();
  std::vector<PromFamily> families;
  for (const auto& [name, value] : snap.counters) {
    families.push_back(PromFamily{prometheus_name(name), "counter", name,
                                  {PromSample{"", {}, std::to_string(value)}}});
  }
  for (const auto& [name, value] : snap.gauges) {
    families.push_back(PromFamily{prometheus_name(name), "gauge", name,
                                  {PromSample{"", {}, format_double(value)}}});
  }
  for (const auto& row : snap.histograms) {
    const std::string pname = prometheus_name(row.name);
    PromFamily hist{pname, "histogram", row.name, {}};
    // Standard cumulative bucket series. Histogram bucket i holds samples in
    // [2^(i-1), 2^i) (bucket 0: < 1), so its upper bound — the `le` label —
    // is 2^i. Snapshot buckets come sorted ascending and sparse; cumulation
    // over them is exact because skipped buckets are empty.
    std::uint64_t cumulative = 0;
    for (const auto& [index, n] : row.buckets) {
      cumulative += n;
      hist.samples.push_back(PromSample{"_bucket",
                                        {{"le", std::to_string(1ULL << index)}},
                                        std::to_string(cumulative)});
    }
    hist.samples.push_back(
        PromSample{"_bucket", {{"le", "+Inf"}}, std::to_string(row.count)});
    hist.samples.push_back(
        PromSample{"_count", {}, std::to_string(row.count)});
    hist.samples.push_back(PromSample{"_sum", {}, format_double(row.sum)});
    families.push_back(std::move(hist));
    // Not part of the Prometheus histogram convention, but kept (as gauge
    // families of their own) so the three exporters stay field-compatible.
    families.push_back(PromFamily{pname + "_min", "gauge", row.name + " min",
                                  {PromSample{"", {}, format_double(row.min)}}});
    families.push_back(PromFamily{pname + "_max", "gauge", row.name + " max",
                                  {PromSample{"", {}, format_double(row.max)}}});
    families.push_back(PromFamily{pname + "_mean", "gauge", row.name + " mean",
                                  {PromSample{"", {}, format_double(row.mean)}}});
  }
  return render_prometheus(std::move(families));
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace asimt::telemetry
