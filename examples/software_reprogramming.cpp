// Software reprogramming scenario — §7.1's second alternative:
//
//   "... transferred by software. The tables ... can be easily written to
//    this memory by a set of instructions inserted within the application
//    code and executed just prior to entering the loop under consideration."
//
// The program below jumps to a generated setup stub that programs the
// decoder peripheral through memory-mapped stores, then falls into its hot
// loop whose image in instruction memory is power-encoded. The simulation
// runs with the peripheral attached: every fetch goes through
// DecoderPeripheral::feed, and the run only works because the stub executed
// first.
#include <algorithm>
#include <cstdio>
#include <string>

#include "cfg/cfg.h"
#include "core/program_encoder.h"
#include "experiments/reprogram.h"
#include "isa/assembler.h"
#include "sim/bus.h"
#include "sim/cpu.h"
#include "sim/decoder_port.h"

namespace {

// The application: a checksum loop over 256 words. `setup_body` is spliced
// in by the build flow below. The setup stub lives AFTER the loop so the
// loop's addresses do not depend on the stub's length.
std::string program_source(const std::string& setup_body) {
  return R"(
        j       setup
loop:   lw      $t2, 0($a0)
        addu    $t3, $t3, $t2
        xor     $t4, $t4, $t2
        sll     $t5, $t3, 1
        addu    $t3, $t5, $t4
        addiu   $a0, $a0, 4
        addiu   $t0, $t0, 1
        bne     $t0, $t1, loop
        halt
setup:
        li      $t0, 0
        li      $t1, 256
)" + setup_body + R"(
        j       loop
)";
}

}  // namespace

int main() {
  using namespace asimt;

  // Pass 1: assemble with an empty stub to learn the loop's layout.
  const isa::Program draft = isa::assemble(program_source(""));
  const cfg::Cfg draft_cfg = cfg::build_cfg(draft);
  const int loop_index = draft_cfg.block_starting_at(draft.symbol("loop"));
  const cfg::BasicBlock& loop = draft_cfg.blocks[static_cast<std::size_t>(loop_index)];
  std::printf("hot loop at %08x, %zu instructions\n", loop.start,
              loop.instruction_count());

  // Encode the loop and generate the configuration stub for it.
  core::ChainOptions options;
  options.block_size = 5;
  const core::BlockEncoding enc = core::encode_basic_block(
      draft_cfg.block_words(loop), loop.start, options);
  const core::TtConfig tt{options.block_size, enc.tt_entries};
  const std::vector<core::BbitEntry> bbit = {core::BbitEntry{loop.start, 0}};
  const std::string stub = experiments::decoder_config_assembly(
      tt, bbit, sim::DecoderPeripheral::kDefaultBase);
  std::printf("generated setup stub: %zu assembly lines\n",
              1 + std::count(stub.begin(), stub.end(), '\n'));

  // Pass 2: the real program. The loop words are identical to the draft's,
  // so the encoding stays valid; the stored image gets the encoded words.
  const isa::Program program = isa::assemble(program_source(stub));
  std::vector<std::uint32_t> stored = program.text;
  for (std::size_t i = 0; i < enc.encoded_words.size(); ++i) {
    stored[(loop.start - program.text_base) / 4 + i] = enc.encoded_words[i];
  }
  const sim::TextImage image(program.text_base, stored);

  // Run with the peripheral on the fetch path.
  sim::Memory memory;
  memory.load_program(program);
  sim::DecoderPeripheral port;
  port.attach(memory);
  sim::Cpu cpu(memory);
  cpu.state().pc = program.entry();
  cpu.state().r[isa::kA0] = 0x20000;

  sim::BusMonitor raw_bus, encoded_bus;
  std::uint64_t mismatches = 0;
  cpu.run(1'000'000, [&](std::uint32_t pc, std::uint32_t word) {
    const std::uint32_t bus = image.word_at(pc);
    raw_bus.observe(word);
    encoded_bus.observe(bus);
    if (port.feed(pc, bus) != word) ++mismatches;
  });
  if (!cpu.state().halted) {
    std::printf("program did not halt\n");
    return 1;
  }
  std::printf("peripheral enabled by software: %s\n", port.enabled() ? "yes" : "no");
  std::printf("decode mismatches over %llu fetches: %llu\n",
              static_cast<unsigned long long>(cpu.state().instructions),
              static_cast<unsigned long long>(mismatches));
  std::printf("bus transitions: %lld unencoded vs %lld encoded (%.1f%% less)\n",
              raw_bus.total_transitions(), encoded_bus.total_transitions(),
              100.0 *
                  static_cast<double>(raw_bus.total_transitions() -
                                      encoded_bus.total_transitions()) /
                  static_cast<double>(raw_bus.total_transitions()));
  return mismatches == 0 ? 0 : 1;
}
