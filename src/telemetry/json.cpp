#include "telemetry/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace asimt::json {

void Value::set(std::string_view key, Value v) {
  Object& obj = as_object();
  for (auto& [k, existing] : obj) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj.emplace_back(std::string(key), std::move(v));
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (!v) throw std::runtime_error("json: missing key '" + std::string(key) + "'");
  return *v;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) {
    // ints and doubles compare numerically across types
    if (is_number() && other.is_number()) return as_double() == other.as_double();
    return false;
  }
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kInt: return int_ == other.int_;
    case Type::kDouble: return double_ == other.double_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
  }
  return false;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void dump_to(const Value& v, std::string& out, int indent, int depth) {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(static_cast<std::size_t>(indent) *
                                                   (static_cast<std::size_t>(depth) + 1),
                                               ' ')
                                 : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<std::size_t>(indent) *
                               static_cast<std::size_t>(depth),
                           ' ')
             : std::string();
  switch (v.type()) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += v.as_bool() ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(v.as_int()); break;
    case Type::kDouble: {
      const double d = v.as_double();
      if (!std::isfinite(d)) {
        out += "null";  // JSON has no inf/nan
        break;
      }
      // std::to_chars emits the shortest form that round-trips and, unlike
      // the printf family, never consults the global locale — a process
      // running under de_DE would otherwise write "3,14" and corrupt the
      // document.
      char buf[32];
      const auto res = std::to_chars(buf, buf + sizeof buf, d);
      out.append(buf, res.ptr);
      break;
    }
    case Type::kString:
      out += '"';
      out += escape(v.as_string());
      out += '"';
      break;
    case Type::kArray: {
      const Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        dump_to(a[i], out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      const Object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i) out += ',';
        if (pretty) {
          out += '\n';
          out += pad;
        }
        out += '"';
        out += escape(o[i].first);
        out += pretty ? "\": " : "\":";
        dump_to(o[i].second, out, indent, depth + 1);
      }
      if (pretty) {
        out += '\n';
        out += close_pad;
      }
      out += '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw ParseError("json parse error at offset " + std::to_string(pos_) +
                     ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value out = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.as_object().emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return out;
    }
  }

  Value parse_array() {
    expect('[');
    Value out = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return out;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode (surrogate pairs unsupported; telemetry emits none).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("bad number");
    const bool integral =
        tok.find('.') == std::string_view::npos &&
        tok.find('e') == std::string_view::npos &&
        tok.find('E') == std::string_view::npos;
    if (integral) {
      long long i = 0;
      const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (ec == std::errc() && ptr == tok.data() + tok.size()) {
        // "-0" must stay the double -0.0: folding it to int 0 would make the
        // dumper emit "0" on the next trip and break byte-stability.
        if (i == 0 && tok.front() == '-') return Value(-0.0);
        return Value(i);
      }
    }
    double d = 0.0;
    const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || ptr != tok.data() + tok.size()) fail("bad number");
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(*this, out, indent, 0);
  return out;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::vector<Value> parse_lines(std::string_view text) {
  std::vector<Value> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    bool blank = true;
    for (const char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (!blank) out.push_back(parse(line));
  }
  return out;
}

}  // namespace asimt::json
