// Process-wide metrics registry: named counters, gauges, and histograms.
//
// Telemetry is compiled in but OFF by default. Instrumented code guards every
// record with `enabled()` — a single relaxed atomic load — so the disabled
// cost is one predictable branch per instrumentation site, and hot loops
// (per-fetch, per-bit) are instrumented at aggregation points rather than per
// event. Metric handles returned by the registry are stable for the life of
// the registry, so call sites may cache them.
//
// Naming convention: dotted lowercase paths, `<layer>.<thing>[.<detail>]` —
// e.g. `encoder.blocks_encoded`, `sim.icache.hits`, `bus.line.07`. The full
// inventory lives in docs/OBSERVABILITY.md.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace asimt::telemetry {

// Global on/off switch (also settable via the ASIMT_TELEMETRY environment
// variable at first query). Off by default.
bool enabled();
void set_enabled(bool on);

// Monotonically increasing 64-bit counter.
class Counter {
 public:
  void add(long long n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  long long value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> value_{0};
};

// Last-written double value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Summary histogram over non-negative samples: count/sum/min/max plus
// power-of-two magnitude buckets (bucket i counts samples in [2^(i-1), 2^i),
// bucket 0 counts samples < 1). Good enough for duration and size
// distributions without configuring bucket bounds per metric.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_samples_{false};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  mutable std::mutex minmax_mu_;
};

class MetricsRegistry {
 public:
  // The process-wide registry used by all built-in instrumentation.
  static MetricsRegistry& global();

  // Find-or-create. Returned references stay valid until reset()/destruction.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Immutable, ordered view for the exporters.
  struct Snapshot {
    std::vector<std::pair<std::string, long long>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    struct HistogramRow {
      std::string name;
      std::uint64_t count = 0;
      double sum = 0.0, min = 0.0, max = 0.0, mean = 0.0;
      std::vector<std::pair<int, std::uint64_t>> buckets;  // non-empty only
    };
    std::vector<HistogramRow> histograms;

    bool empty() const {
      return counters.empty() && gauges.empty() && histograms.empty();
    }
  };
  Snapshot snapshot() const;

  // Drops every metric (tests / between experiment repetitions).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Convenience recorders against the global registry; no-ops when telemetry
// is disabled. These are the forms instrumented code should use unless it
// caches handles.
inline void count(std::string_view name, long long n = 1) {
  if (!enabled()) return;
  MetricsRegistry::global().counter(name).add(n);
}

inline void set_gauge(std::string_view name, double v) {
  if (!enabled()) return;
  MetricsRegistry::global().gauge(name).set(v);
}

inline void observe(std::string_view name, double v) {
  if (!enabled()) return;
  MetricsRegistry::global().histogram(name).observe(v);
}

}  // namespace asimt::telemetry
