// Report rendering for TransitionProfiler results.
//
// Three consumers of the same attribution data: a JSON document (machine
// interface, exported with telemetry::to_json_string), an annotated
// disassembly listing (the human hotspot view — per-instruction dynamic
// transition cost with encoding status), and a terse stdout summary. All
// three reconcile: summed per-block costs equal the profiler's total, which
// equals `bus.fetch.transitions` of the run that fed it.
#pragma once

#include <cstddef>
#include <string>

#include "cfg/cfg.h"
#include "isa/assembler.h"
#include "profile/transition_profiler.h"
#include "telemetry/json.h"

namespace asimt::profile {

// Full machine-readable report: totals, encoded/unencoded/out-of-image
// partition, the 32 per-bus-line totals, and the top `top_n` blocks (each
// with its own per-line breakdown). Deterministic field order.
json::Value profile_report(const TransitionProfiler& profiler,
                           std::size_t top_n);

// Annotated disassembly of `program` (which must be the program the profiler
// observed — pass the *encoded* image via program.text to see what the bus
// actually carried). One line per instruction:
//   pc  word  E?  exec  transitions  disasm
// with block headers and a trailing per-block summary table whose transition
// column sums to the profiler total.
std::string annotate_listing(const isa::Program& program, const cfg::Cfg& cfg,
                             const TransitionProfiler& profiler);

// Short human summary (totals, partition percentages, hottest blocks and
// bus lines) for the CLI's stdout.
std::string summary_text(const TransitionProfiler& profiler, std::size_t top_n);

}  // namespace asimt::profile
