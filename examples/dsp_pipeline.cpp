// DSP pipeline scenario: the full deployment flow on a realistic workload.
//
// Models what a firmware engineer would do with ASIMT for an embedded DSP
// product (the paper's motivating context): take the FFT kernel, profile it
// on the target, let the selector spend a 16-entry Transformation Table on
// the hottest basic blocks, and report the resulting instruction-bus energy
// with an off-chip flash instruction memory.
#include <cstdio>

#include "cfg/cfg.h"
#include "core/selection.h"
#include "experiments/experiment.h"
#include "isa/assembler.h"
#include "power/power.h"
#include "sim/cpu.h"
#include "workloads/workload.h"

int main() {
  using namespace asimt;

  workloads::SizeConfig sizes;
  sizes.fft_n = 256;  // the paper's FFT block size
  const workloads::Workload fft = workloads::make_fft(sizes);
  std::printf("workload: %s\n", fft.description.c_str());

  // Profile pass on the target simulator.
  const isa::Program program = isa::assemble(fft.source);
  const cfg::Cfg cfg = cfg::build_cfg(program);
  sim::Memory memory;
  memory.load_program(program);
  sim::Cpu cpu(memory);
  cpu.state().pc = program.entry();
  fft.init(memory, cpu.state());
  cfg::Profiler profiler(cfg);
  cpu.run(100'000'000,
          [&](std::uint32_t pc, std::uint32_t) { profiler.on_fetch(pc); });
  const cfg::Profile profile = profiler.take();
  std::string error;
  if (!fft.check(memory, &error)) {
    std::printf("FATAL: kernel validation failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("profiled %llu dynamic instructions over %zu basic blocks\n",
              static_cast<unsigned long long>(profile.total_instructions),
              cfg.blocks.size());

  // Where does the time go? (the paper's "major application loops")
  const auto loops = cfg::find_natural_loops(cfg);
  std::printf("natural loops: %zu\n", loops.size());
  std::printf("hottest blocks:\n");
  std::vector<int> order(cfg.blocks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return profile.block_counts[static_cast<std::size_t>(a)] * cfg.blocks[static_cast<std::size_t>(a)].instruction_count() >
           profile.block_counts[static_cast<std::size_t>(b)] * cfg.blocks[static_cast<std::size_t>(b)].instruction_count();
  });
  for (int i = 0; i < 5 && i < static_cast<int>(order.size()); ++i) {
    const cfg::BasicBlock& b = cfg.blocks[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
    std::printf("  pc=%08x  %2zu instrs  x%llu executions\n", b.start,
                b.instruction_count(),
                static_cast<unsigned long long>(
                    profile.block_counts[static_cast<std::size_t>(b.index)]));
  }

  // Spend the TT budget.
  core::SelectionOptions sel;
  sel.chain.block_size = 5;
  sel.tt_budget = 16;
  const core::SelectionResult selection = core::select_and_encode(cfg, profile, sel);
  std::printf("\nselected %zu blocks; TT entries used %d/16; BBIT entries %zu\n",
              selection.encodings.size(), selection.tt_entries_used,
              selection.bbit.size());
  const unsigned tt_bits =
      static_cast<unsigned>(selection.tt.entries.size()) * core::TtConfig::entry_bits();
  std::printf("decode-side SRAM: %u bits TT + %zu x 48-bit BBIT\n", tt_bits,
              selection.bbit.size());

  // Measure the dynamic effect.
  const auto image = selection.apply_to_text(cfg.text, cfg.text_base);
  const long long base =
      experiments::dynamic_transitions(cfg, profile, cfg.text);
  const long long encoded =
      experiments::dynamic_transitions(cfg, profile, image);
  const power::BusParams flash = power::BusParams::off_chip();
  std::printf("\noff-chip flash instruction bus, one FFT invocation:\n%s\n",
              power::format_comparison(
                  power::make_report("original", base, profile.total_instructions, flash),
                  power::make_report("asimt k=5", encoded, profile.total_instructions, flash))
                  .c_str());
  return 0;
}
