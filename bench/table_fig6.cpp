// E6 — regenerates the paper's Figure 6: dynamic bus transition counts and
// percentage reductions for the six benchmarks at block sizes 4..7 with a
// 16-entry Transformation Table.
//
// Absolute counts differ from the paper (different ISA and hand-written
// rather than compiled kernels — see DESIGN.md §4); the shape is what
// reproduces: sizable reductions shrinking with block size, fft weakest.
// Set ASIMT_FAST=1 for reduced problem sizes.
#include <cstdio>

#include "experiments/experiment.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt;
  const workloads::SizeConfig sizes = experiments::bench_sizes();
  experiments::ExperimentOptions opt;

  // One parallel task per workload (see docs/PARALLELISM.md); results keep
  // the paper's column order and every number matches a serial run exactly.
  const std::vector<workloads::Workload> suite = workloads::make_all(sizes);
  for (const workloads::Workload& w : suite) {
    std::fprintf(stderr, "[fig6] queueing %s (%s)...\n", w.name.c_str(),
                 w.description.c_str());
  }
  const std::vector<experiments::WorkloadResult> results =
      experiments::run_workloads(suite, opt);
  for (const experiments::WorkloadResult& r : results) {
    if (!r.check_passed) {
      std::fprintf(stderr, "FATAL: %s failed validation: %s\n", r.name.c_str(),
                   r.check_error.c_str());
      return 1;
    }
  }

  std::printf("Figure 6: transition reduction results (transitions in millions)\n");
  std::printf("TT budget: %d entries; strategy: greedy (paper)\n\n", opt.tt_budget);
  std::printf("%s\n", experiments::format_fig6_table(results).c_str());

  std::printf("paper's Figure 6 for comparison:\n");
  std::printf("%-14s%10s%10s%10s%10s%10s%10s\n", "", "mmul", "sor", "ej", "fft", "tri", "lu");
  std::printf("%-14s%10s%10s%10s%10s%10s%10s\n", "#TR", "14.0", "3.3", "113.4", "0.2", "8.1", "63.8");
  std::printf("%-14s%10s%10s%10s%10s%10s%10s\n", "Red. 4-block", "44.0", "44.3", "45.5", "20.6", "51.6", "32.7");
  std::printf("%-14s%10s%10s%10s%10s%10s%10s\n", "Red. 5-block", "39.2", "30.5", "38.8", "17.5", "37.8", "23.6");
  std::printf("%-14s%10s%10s%10s%10s%10s%10s\n", "Red. 6-block", "26.7", "35.3", "38.7", "13.4", "31.1", "19.1");
  std::printf("%-14s%10s%10s%10s%10s%10s%10s\n", "Red. 7-block", "28.5", "20.1", "23.1", "0.0", "24.4", "9.4");

  std::printf("\ninstruction counts and Bus-Invert baseline:\n");
  for (const auto& r : results) {
    std::printf("  %-5s %12llu instructions, bus-invert reduction %.1f%%\n",
                r.name.c_str(), static_cast<unsigned long long>(r.instructions),
                100.0 * static_cast<double>(r.baseline_transitions - r.bus_invert_transitions) /
                    static_cast<double>(r.baseline_transitions));
  }
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("table_fig6")
