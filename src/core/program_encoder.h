// Basic-block-level power encoding ("vertical" instruction transformation,
// paper §4/§6).
//
// Takes the instruction words of one basic block, encodes each of the 32 bus
// lines independently as a chain of overlapped k-blocks, and emits both the
// power-efficient words to store in instruction memory and the TT entries the
// fetch-side decoder needs to restore the originals.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/chain_encoder.h"
#include "core/hw_tables.h"

namespace asimt::core {

// The encoding of one basic block.
struct BlockEncoding {
  std::uint32_t start_pc = 0;
  int block_size = 0;
  std::vector<std::uint32_t> original_words;
  std::vector<std::uint32_t> encoded_words;
  std::vector<TtEntry> tt_entries;  // one per k-block position, E/CT set

  // Static intra-block bus transitions before/after encoding: the savings
  // every execution of this block realizes.
  long long original_transitions = 0;
  long long encoded_transitions = 0;

  long long saved_transitions() const {
    return original_transitions - encoded_transitions;
  }
};

// Encodes one basic block. The transform set in `options.allowed` must be a
// subset of kPaperSubset so every chosen transform has a 3-bit TT index
// (throws std::invalid_argument otherwise).
BlockEncoding encode_basic_block(std::span<const std::uint32_t> words,
                                 std::uint32_t start_pc,
                                 const ChainOptions& options);

// Software re-implementation of the decode path (block-structured, not the
// cycle-level hardware model — see FetchDecoder for that). Used as the
// encoder's self-check.
std::vector<std::uint32_t> decode_basic_block(
    std::span<const std::uint32_t> encoded_words,
    std::span<const TtEntry> tt_entries, int block_size);

}  // namespace asimt::core
