// Tests for the memory-mapped decoder peripheral (§7.1 software
// reprogramming path) and the generated configuration prologue.
#include "sim/decoder_port.h"

#include <gtest/gtest.h>

#include <random>

#include "core/program_encoder.h"
#include "experiments/reprogram.h"
#include "isa/assembler.h"
#include "sim/cpu.h"

namespace asimt::sim {
namespace {

core::BlockEncoding sample_encoding(std::uint32_t pc, std::size_t words_n,
                                    int k, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint32_t> words(words_n);
  for (auto& w : words) w = rng();
  core::ChainOptions options;
  options.block_size = k;
  return core::encode_basic_block(words, pc, options);
}

// Programs the peripheral through raw register stores.
void program_via_stores(DecoderPeripheral& port, const core::TtConfig& tt,
                        std::span<const core::BbitEntry> bbit) {
  port.store(DecoderPeripheral::kCtrl, 2);  // reset
  port.store(DecoderPeripheral::kBlockSize,
             static_cast<std::uint32_t>(tt.block_size));
  port.store(DecoderPeripheral::kTtIndex, 0);
  for (const core::TtEntry& entry : tt.entries) {
    const auto words = core::pack_tt_entry(entry);
    port.store(DecoderPeripheral::kTtData0, words[0]);
    port.store(DecoderPeripheral::kTtData1, words[1]);
    port.store(DecoderPeripheral::kTtData2, words[2]);
    port.store(DecoderPeripheral::kTtData3, words[3]);
  }
  for (const core::BbitEntry& entry : bbit) {
    port.store(DecoderPeripheral::kBbitPc, entry.pc);
    port.store(DecoderPeripheral::kBbitIndex, entry.tt_index);
  }
  port.store(DecoderPeripheral::kCtrl, 1);  // enable
}

TEST(DecoderPeripheral, DisabledPassesThrough) {
  DecoderPeripheral port;
  EXPECT_FALSE(port.enabled());
  EXPECT_EQ(port.feed(0x1000, 0xABCD1234u), 0xABCD1234u);
}

TEST(DecoderPeripheral, ProgrammedViaStoresDecodesLikeDirectConstruction) {
  const core::BlockEncoding enc = sample_encoding(0x2000, 13, 5, 7);
  core::TtConfig tt{5, enc.tt_entries};
  const std::vector<core::BbitEntry> bbit = {core::BbitEntry{0x2000, 0}};

  DecoderPeripheral port;
  program_via_stores(port, tt, bbit);
  ASSERT_TRUE(port.enabled());

  core::FetchDecoder direct(tt, bbit);
  for (std::size_t i = 0; i < enc.encoded_words.size(); ++i) {
    const std::uint32_t pc = 0x2000 + 4 * static_cast<std::uint32_t>(i);
    const std::uint32_t via_port = port.feed(pc, enc.encoded_words[i]);
    EXPECT_EQ(via_port, direct.feed(pc, enc.encoded_words[i])) << i;
    EXPECT_EQ(via_port, enc.original_words[i]) << i;
  }
}

TEST(DecoderPeripheral, ResetClearsState) {
  const core::BlockEncoding enc = sample_encoding(0x3000, 8, 4, 1);
  DecoderPeripheral port;
  program_via_stores(port, core::TtConfig{4, enc.tt_entries},
                     {{core::BbitEntry{0x3000, 0}}});
  EXPECT_TRUE(port.enabled());
  port.store(DecoderPeripheral::kCtrl, 2);
  EXPECT_FALSE(port.enabled());
  EXPECT_TRUE(port.tt().entries.empty());
  EXPECT_TRUE(port.bbit().empty());
}

TEST(DecoderPeripheral, RejectsBadProgramming) {
  DecoderPeripheral port;
  EXPECT_THROW(port.store(DecoderPeripheral::kBlockSize, 1), MemoryError);
  EXPECT_THROW(port.store(DecoderPeripheral::kBbitIndex, 5), MemoryError);
  EXPECT_THROW(port.store(0x50, 0), MemoryError);
}

TEST(DecoderPeripheral, AttachRoutesStoresThroughMemory) {
  Memory memory;
  DecoderPeripheral port;
  port.attach(memory, 0xF0000000u);
  memory.store32(0xF0000000u + DecoderPeripheral::kBlockSize, 7);
  EXPECT_EQ(port.tt().block_size, 7);
  // Stores outside the window still hit RAM.
  memory.store32(0xE0000000u, 123);
  EXPECT_EQ(memory.load32(0xE0000000u), 123u);
}

TEST(MemoryMmio, RegionBoundariesAreExact) {
  Memory memory;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> writes;
  memory.map_mmio(0x1000, 16, [&](std::uint32_t off, std::uint32_t v) {
    writes.emplace_back(off, v);
  });
  memory.store32(0xFFC, 1);   // below
  memory.store32(0x1000, 2);  // first word
  memory.store32(0x100C, 3);  // last word
  memory.store32(0x1010, 4);  // past the end
  ASSERT_EQ(writes.size(), 2u);
  EXPECT_EQ(writes[0], std::make_pair(0u, 2u));
  EXPECT_EQ(writes[1], std::make_pair(12u, 3u));
  EXPECT_EQ(memory.load32(0xFFC), 1u);
  EXPECT_EQ(memory.load32(0x1010), 4u);
  // MMIO stores do not write RAM.
  EXPECT_EQ(memory.load32(0x1000), 0u);
}

TEST(MemoryMmio, UnmapRestoresRamSemantics) {
  Memory memory;
  memory.map_mmio(0x1000, 16, [](std::uint32_t, std::uint32_t) {});
  memory.map_mmio(0, 0, nullptr);
  memory.store32(0x1000, 55);
  EXPECT_EQ(memory.load32(0x1000), 55u);
}

// Full §7.1 flow: the generated assembly prologue, executed by the CPU,
// programs the peripheral; the decode path then restores the encoded loop.
TEST(Reprogram, GeneratedPrologueConfiguresPeripheral) {
  const core::BlockEncoding enc = sample_encoding(0x9000, 11, 5, 3);
  core::TtConfig tt{5, enc.tt_entries};
  const std::vector<core::BbitEntry> bbit = {core::BbitEntry{0x9000, 0}};

  const std::string prologue =
      experiments::decoder_config_assembly(tt, bbit, 0xF0000000u);
  const isa::Program program = isa::assemble(prologue + "        halt\n");

  Memory memory;
  memory.load_program(program);
  DecoderPeripheral port;
  port.attach(memory);
  Cpu cpu(memory);
  cpu.state().pc = program.entry();
  cpu.run(10'000);
  ASSERT_TRUE(cpu.state().halted);

  ASSERT_TRUE(port.enabled());
  ASSERT_EQ(port.tt().entries.size(), tt.entries.size());
  EXPECT_EQ(port.tt().block_size, 5);
  ASSERT_EQ(port.bbit().size(), 1u);
  EXPECT_EQ(port.bbit()[0].pc, 0x9000u);

  for (std::size_t i = 0; i < enc.encoded_words.size(); ++i) {
    const std::uint32_t pc = 0x9000 + 4 * static_cast<std::uint32_t>(i);
    EXPECT_EQ(port.feed(pc, enc.encoded_words[i]), enc.original_words[i]) << i;
  }
}

}  // namespace
}  // namespace asimt::sim
