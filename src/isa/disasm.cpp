#include <cstdio>

#include "isa/isa.h"

namespace asimt::isa {

namespace {

std::string hex(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

std::string r3(const char* m, unsigned rd, unsigned rs, unsigned rt) {
  return std::string(m) + " " + reg_name(rd) + ", " + reg_name(rs) + ", " +
         reg_name(rt);
}

std::string shift(const char* m, unsigned rd, unsigned rt, unsigned sh) {
  return std::string(m) + " " + reg_name(rd) + ", " + reg_name(rt) + ", " +
         std::to_string(sh);
}

std::string imm2(const char* m, unsigned rt, unsigned rs, std::int32_t imm) {
  return std::string(m) + " " + reg_name(rt) + ", " + reg_name(rs) + ", " +
         std::to_string(imm);
}

std::string mem(const char* m, const std::string& rt, unsigned rs,
                std::int32_t imm) {
  return std::string(m) + " " + rt + ", " + std::to_string(imm) + "(" +
         reg_name(rs) + ")";
}

std::string branch2(const char* m, unsigned rs, unsigned rt,
                    std::uint32_t target) {
  return std::string(m) + " " + reg_name(rs) + ", " + reg_name(rt) + ", " +
         hex(target);
}

std::string branch1(const char* m, unsigned rs, std::uint32_t target) {
  return std::string(m) + " " + reg_name(rs) + ", " + hex(target);
}

std::string f3(const char* m, unsigned fd, unsigned fs, unsigned ft) {
  return std::string(m) + " " + freg_name(fd) + ", " + freg_name(fs) + ", " +
         freg_name(ft);
}

std::string f2(const char* m, unsigned fd, unsigned fs) {
  return std::string(m) + " " + freg_name(fd) + ", " + freg_name(fs);
}

}  // namespace

std::string disassemble(std::uint32_t word, std::uint32_t pc) {
  const Instruction i = decode(word);
  switch (i.op) {
    case Op::kSll:
      if (word == 0) return "nop";
      return shift("sll", i.rd, i.rt, i.shamt);
    case Op::kSrl: return shift("srl", i.rd, i.rt, i.shamt);
    case Op::kSra: return shift("sra", i.rd, i.rt, i.shamt);
    case Op::kSllv: return r3("sllv", i.rd, i.rt, i.rs);
    case Op::kSrlv: return r3("srlv", i.rd, i.rt, i.rs);
    case Op::kSrav: return r3("srav", i.rd, i.rt, i.rs);
    case Op::kJr: return "jr " + reg_name(i.rs);
    case Op::kJalr: return "jalr " + reg_name(i.rd) + ", " + reg_name(i.rs);
    case Op::kSyscall: return "syscall";
    case Op::kBreak: return "break";
    case Op::kMfhi: return "mfhi " + reg_name(i.rd);
    case Op::kMthi: return "mthi " + reg_name(i.rs);
    case Op::kMflo: return "mflo " + reg_name(i.rd);
    case Op::kMtlo: return "mtlo " + reg_name(i.rs);
    case Op::kMult: return "mult " + reg_name(i.rs) + ", " + reg_name(i.rt);
    case Op::kMultu: return "multu " + reg_name(i.rs) + ", " + reg_name(i.rt);
    case Op::kDiv: return "div " + reg_name(i.rs) + ", " + reg_name(i.rt);
    case Op::kDivu: return "divu " + reg_name(i.rs) + ", " + reg_name(i.rt);
    case Op::kAdd: return r3("add", i.rd, i.rs, i.rt);
    case Op::kAddu: return r3("addu", i.rd, i.rs, i.rt);
    case Op::kSub: return r3("sub", i.rd, i.rs, i.rt);
    case Op::kSubu: return r3("subu", i.rd, i.rs, i.rt);
    case Op::kAnd: return r3("and", i.rd, i.rs, i.rt);
    case Op::kOr: return r3("or", i.rd, i.rs, i.rt);
    case Op::kXor: return r3("xor", i.rd, i.rs, i.rt);
    case Op::kNor: return r3("nor", i.rd, i.rs, i.rt);
    case Op::kSlt: return r3("slt", i.rd, i.rs, i.rt);
    case Op::kSltu: return r3("sltu", i.rd, i.rs, i.rt);
    case Op::kBltz: return branch1("bltz", i.rs, branch_target(pc, i));
    case Op::kBgez: return branch1("bgez", i.rs, branch_target(pc, i));
    case Op::kJ: return "j " + hex(jump_target(pc, i));
    case Op::kJal: return "jal " + hex(jump_target(pc, i));
    case Op::kBeq: return branch2("beq", i.rs, i.rt, branch_target(pc, i));
    case Op::kBne: return branch2("bne", i.rs, i.rt, branch_target(pc, i));
    case Op::kBlez: return branch1("blez", i.rs, branch_target(pc, i));
    case Op::kBgtz: return branch1("bgtz", i.rs, branch_target(pc, i));
    case Op::kAddi: return imm2("addi", i.rt, i.rs, i.imm);
    case Op::kAddiu: return imm2("addiu", i.rt, i.rs, i.imm);
    case Op::kSlti: return imm2("slti", i.rt, i.rs, i.imm);
    case Op::kSltiu: return imm2("sltiu", i.rt, i.rs, i.imm);
    case Op::kAndi: return imm2("andi", i.rt, i.rs, i.imm);
    case Op::kOri: return imm2("ori", i.rt, i.rs, i.imm);
    case Op::kXori: return imm2("xori", i.rt, i.rs, i.imm);
    case Op::kLui:
      return "lui " + reg_name(i.rt) + ", " + std::to_string(i.imm & 0xFFFF);
    case Op::kLb: return mem("lb", reg_name(i.rt), i.rs, i.imm);
    case Op::kLh: return mem("lh", reg_name(i.rt), i.rs, i.imm);
    case Op::kLw: return mem("lw", reg_name(i.rt), i.rs, i.imm);
    case Op::kLbu: return mem("lbu", reg_name(i.rt), i.rs, i.imm);
    case Op::kLhu: return mem("lhu", reg_name(i.rt), i.rs, i.imm);
    case Op::kSb: return mem("sb", reg_name(i.rt), i.rs, i.imm);
    case Op::kSh: return mem("sh", reg_name(i.rt), i.rs, i.imm);
    case Op::kSw: return mem("sw", reg_name(i.rt), i.rs, i.imm);
    case Op::kLwc1: return mem("lwc1", freg_name(i.ft), i.rs, i.imm);
    case Op::kSwc1: return mem("swc1", freg_name(i.ft), i.rs, i.imm);
    case Op::kAddS: return f3("add.s", i.fd, i.fs, i.ft);
    case Op::kSubS: return f3("sub.s", i.fd, i.fs, i.ft);
    case Op::kMulS: return f3("mul.s", i.fd, i.fs, i.ft);
    case Op::kDivS: return f3("div.s", i.fd, i.fs, i.ft);
    case Op::kSqrtS: return f2("sqrt.s", i.fd, i.fs);
    case Op::kAbsS: return f2("abs.s", i.fd, i.fs);
    case Op::kMovS: return f2("mov.s", i.fd, i.fs);
    case Op::kNegS: return f2("neg.s", i.fd, i.fs);
    case Op::kCvtSW: return f2("cvt.s.w", i.fd, i.fs);
    case Op::kTruncWS: return f2("trunc.w.s", i.fd, i.fs);
    case Op::kCEqS: return "c.eq.s " + freg_name(i.fs) + ", " + freg_name(i.ft);
    case Op::kCLtS: return "c.lt.s " + freg_name(i.fs) + ", " + freg_name(i.ft);
    case Op::kCLeS: return "c.le.s " + freg_name(i.fs) + ", " + freg_name(i.ft);
    case Op::kBc1f: return "bc1f " + hex(branch_target(pc, i));
    case Op::kBc1t: return "bc1t " + hex(branch_target(pc, i));
    case Op::kMfc1: return "mfc1 " + reg_name(i.rt) + ", " + freg_name(i.fs);
    case Op::kMtc1: return "mtc1 " + reg_name(i.rt) + ", " + freg_name(i.fs);
    case Op::kInvalid: break;
  }
  return ".word " + hex(word);
}

}  // namespace asimt::isa
