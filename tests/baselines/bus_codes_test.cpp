#include "baselines/bus_codes.h"

#include <gtest/gtest.h>

#include <bit>
#include <random>

namespace asimt::baselines {
namespace {

TEST(BusInvert, NeverWorseThanHalfTheLinesPerWord) {
  // The defining property: each transfer flips at most ceil(33/2) lines.
  std::mt19937 rng(1);
  BusInvertMonitor monitor;
  long long previous = 0;
  for (int i = 0; i < 1000; ++i) {
    monitor.observe(rng());
    const long long step = monitor.transitions() - previous;
    previous = monitor.transitions();
    EXPECT_LE(step, 17);  // 16 data lines + the invert line
  }
}

TEST(BusInvert, ConstantStreamCostsNothing) {
  BusInvertMonitor monitor;
  for (int i = 0; i < 10; ++i) monitor.observe(0xABCD1234u);
  EXPECT_EQ(monitor.transitions(), 0);
}

TEST(BusInvert, FullInversionIsNearlyFree) {
  // w, ~w, w, ~w: plain binary pays 32 transitions per step; bus-invert
  // pays 1 (the invert line) after the first flip.
  BusInvertMonitor monitor;
  const std::uint32_t w = 0x0F0F0F0Fu;
  monitor.observe(w);
  monitor.observe(~w);
  EXPECT_EQ(monitor.transitions(), 1);  // asserted invert line only
  monitor.observe(w);
  EXPECT_EQ(monitor.transitions(), 2);
}

TEST(BusInvert, BeatsOrMatchesPlainBinaryOnRandomStreams) {
  std::mt19937 rng(2);
  BusInvertMonitor bi;
  BinaryAddressMonitor plain;
  for (int i = 0; i < 5000; ++i) {
    const std::uint32_t w = rng();
    bi.observe(w);
    plain.observe(w);
  }
  EXPECT_LE(bi.transitions(), plain.transitions() + 5000 / 2);
  EXPECT_GT(bi.transitions(), 0);
}

TEST(BusInvert, HalfPlusOneTriggersInversion) {
  BusInvertMonitor monitor;
  monitor.observe(0);
  monitor.observe(0x0003FFFFu);  // 18 ones: inverting flips 14+1 instead of 18
  EXPECT_EQ(monitor.transitions(), 15);
}

TEST(BinaryAddress, SequentialWordAddresses) {
  BinaryAddressMonitor monitor;
  long long expected = 0;
  std::uint32_t prev = 0;
  for (std::uint32_t a = 0; a < 4096; a += 4) {
    monitor.observe(a);
    if (a != 0) expected += std::popcount(prev ^ a);
    prev = a;
  }
  EXPECT_EQ(monitor.transitions(), expected);
}

TEST(GrayAddress, CheaperThanBinaryOnSequentialStreams) {
  BinaryAddressMonitor binary;
  GrayAddressMonitor gray;
  for (std::uint32_t a = 0; a < 1 << 14; ++a) {
    binary.observe(a);
    gray.observe(a);
  }
  // Gray coding of a counter flips exactly one bit per increment.
  EXPECT_EQ(gray.transitions(), (1 << 14) - 1);
  EXPECT_GT(binary.transitions(), gray.transitions());
}

TEST(T0Address, SequentialFetchIsFree) {
  T0AddressMonitor t0(4);
  for (std::uint32_t a = 0x1000; a < 0x1100; a += 4) t0.observe(a);
  // Only the INC line toggles once (0 -> 1 on the first sequential access).
  EXPECT_EQ(t0.transitions(), 1);
}

TEST(T0Address, BranchPaysTheJumpCost) {
  T0AddressMonitor t0(4);
  t0.observe(0x1000);
  t0.observe(0x1004);  // sequential: INC toggles on
  t0.observe(0x2000);  // jump: INC off (+1) plus address lines
  EXPECT_EQ(t0.transitions(),
            1 + 1 + std::popcount(0x1000u ^ 0x2000u));
}

TEST(T0Address, BeatsBinaryOnLoopFetchPatterns) {
  // A 16-instruction loop executed many times.
  BinaryAddressMonitor binary;
  T0AddressMonitor t0(4);
  for (int iter = 0; iter < 200; ++iter) {
    for (std::uint32_t a = 0x4000; a < 0x4040; a += 4) {
      binary.observe(a);
      t0.observe(a);
    }
  }
  EXPECT_LT(t0.transitions(), binary.transitions() / 4);
}

}  // namespace
}  // namespace asimt::baselines
