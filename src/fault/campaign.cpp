#include "fault/campaign.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "bitstream/bitseq.h"
#include "check/gen.h"
#include "check/rng.h"
#include "core/chain_encoder.h"
#include "core/fetch_decoder.h"
#include "core/program_encoder.h"
#include "parallel/pool.h"
#include "sim/bus.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace asimt::fault {
namespace {

constexpr std::uint32_t kBlockPc = 0x1000;

// The k-block (chain position) that decodes stream position p. Position 0 is
// the chain-initial plain word; every overlap bit belongs to the block whose
// τ restored it, so block j owns positions j(k-1)+1 .. (j+1)(k-1) for j >= 1
// downshifted by the initial bit — i.e. (p-1)/(k-1).
int owner_block(std::size_t p, int k) {
  return p == 0 ? 0
               : static_cast<int>((p - 1) / static_cast<std::size_t>(k - 1));
}

// Deterministic per-site Bernoulli draw: compare the top 53 bits of the RNG
// word against rate scaled to 2^53 (exact in double, no UB-prone 2^64 cast).
bool bernoulli(check::Rng& rng, double rate) {
  constexpr double kTwo53 = 9007199254740992.0;  // 2^53
  const auto threshold =
      static_cast<std::uint64_t>(std::min(rate, 1.0) * kTwo53);
  return (rng.next() >> 11) < threshold;
}

// Folds one iteration into the per-target rollup. Called serially in
// iteration order — the aggregation itself is part of the determinism
// contract (integer counters only, no float accumulation races).
void absorb(CampaignReport& report, const CampaignOptions& options,
            const IterationResult& r, std::uint64_t iteration) {
  TargetStats& s = report.per_target[iteration % options.targets.size()];
  ++s.runs;
  s.flips += r.flips;
  if (r.flips == 1 && r.target == Target::kTt) {
    if (r.kind == SiteKind::kTauBit) ++s.tau_flips;
    if (r.kind == SiteKind::kEBit) ++s.e_flips;
    if (r.kind == SiteKind::kCtBit) ++s.ct_flips;
  }
  if (r.corrupted_words > 0) ++s.corrupted_runs;
  s.corrupted_words += r.corrupted_words;
  s.hamming += r.hamming;
  s.lines_affected += r.lines_affected;
  s.blocks_escaped += r.blocks_escaped;
  if (r.blocks_escaped == 0) ++s.contained_runs;
  if (r.expected_block >= 0 && !r.contained_in_expected) {
    ++s.containment_violations;
  }
  if (r.decode_fault) ++s.decode_faults;
  if (r.detected) ++s.detected;
  if (r.degraded) ++s.degraded_runs;
  if (r.restored) ++s.restored_runs;
  s.extra_transitions += r.extra_transitions;
  for (unsigned line = 0; line < core::kBusLines; ++line) {
    s.line_corrupted[line] += r.line_corrupted[line];
  }
}

}  // namespace

std::string_view protection_name(Protection protection) {
  switch (protection) {
    case Protection::kNone: return "none";
    case Protection::kParity: return "parity";
    case Protection::kReencode: return "reencode";
    case Protection::kBoth: return "both";
  }
  return "?";
}

std::optional<Protection> protection_from_name(std::string_view name) {
  for (Protection p : {Protection::kNone, Protection::kParity,
                       Protection::kReencode, Protection::kBoth}) {
    if (name == protection_name(p)) return p;
  }
  return std::nullopt;
}

IterationResult run_iteration(const CampaignOptions& options,
                              std::uint64_t iteration) {
  check::Rng rng = check::Rng(options.seed).fork(iteration);
  const Target target = options.targets[iteration % options.targets.size()];

  // Workload: a random basic block of at least two words (a single-word
  // block has no encoded region and therefore no fault sites beyond itself).
  std::vector<std::uint32_t> words = check::gen_words(rng);
  while (words.size() < 2) words = check::gen_words(rng);
  const std::size_t m = words.size();
  const int k = rng.range(2, 8);

  core::ChainOptions chain;
  chain.block_size = k;
  const core::BlockEncoding enc = core::encode_basic_block(words, kBlockPc, chain);

  // --- site selection (pure function of the iteration's RNG stream) -------
  const std::size_t sites = site_count(target, m, enc.tt_entries.size());
  std::vector<Site> flips;
  if (options.rate <= 0.0) {
    flips.push_back(site_at(target, m, enc.tt_entries.size(),
                            static_cast<std::size_t>(rng.below(sites))));
  } else {
    for (std::size_t s = 0; s < sites; ++s) {
      if (bernoulli(rng, options.rate)) {
        flips.push_back(site_at(target, m, enc.tt_entries.size(), s));
      }
    }
  }

  // --- build the faulted machine state -------------------------------------
  core::TtConfig golden_tt{k, enc.tt_entries};
  core::TtConfig runtime_tt = golden_tt;
  std::vector<std::uint32_t> runtime_image = enc.encoded_words;
  std::vector<std::uint32_t> history_mask(m, 0);
  std::vector<std::uint32_t> bus_mask(m, 0);
  std::uint64_t tau_flips = 0;
  for (const Site& site : flips) {
    switch (site.kind) {
      case SiteKind::kTauBit:
        ++tau_flips;
        [[fallthrough]];
      case SiteKind::kEBit:
      case SiteKind::kCtBit:
        apply_tt_fault(runtime_tt, site);
        break;
      case SiteKind::kImageBit:
        apply_image_fault(runtime_image, site);
        break;
      case SiteKind::kHistoryBit:
        history_mask[site.index] |= 1u << site.line;
        break;
      case SiteKind::kBusBit:
        bus_mask[site.index] |= 1u << site.line;
        break;
    }
  }
  (void)tau_flips;

  IterationResult r;
  r.target = target;
  r.flips = static_cast<std::uint32_t>(flips.size());
  r.words = static_cast<std::uint16_t>(m);
  r.block_size = static_cast<std::uint16_t>(k);
  if (!flips.empty()) r.kind = flips.front().kind;
  if (flips.size() == 1) {
    const Site& site = flips.front();
    if (site.kind == SiteKind::kTauBit) {
      r.expected_block = static_cast<std::int32_t>(site.index);
    } else if (site.kind == SiteKind::kHistoryBit) {
      r.expected_block = owner_block(site.index, k);
    }
  }

  // --- replay through the hardware model -----------------------------------
  const bool use_parity = options.protection == Protection::kParity ||
                          options.protection == Protection::kBoth;
  const bool use_shadow = options.protection == Protection::kReencode ||
                          options.protection == Protection::kBoth;

  std::vector<core::BbitEntry> bbit{{kBlockPc, 0}};
  core::FetchDecoder primary(runtime_tt, bbit);
  std::optional<core::FetchDecoder> shadow;
  if (use_shadow) shadow.emplace(runtime_tt, bbit);

  // Golden parity bits latched at TT-programming time (before the upset).
  std::vector<int> parity(golden_tt.entries.size());
  for (std::size_t i = 0; i < parity.size(); ++i) {
    parity[i] = core::tt_entry_parity(golden_tt.entries[i]);
  }
  bool veto = false;
  if (use_parity) {
    primary.set_entry_guard([&](std::size_t index, const core::TtEntry& entry) {
      const bool ok = core::tt_entry_parity(entry) == parity[index];
      if (!ok) veto = true;
      return ok;
    });
  }

  sim::BusMonitor monitor;
  std::vector<std::uint32_t> outputs(m);
  bool degraded = false;
  bool detected = false;
  bool decode_fault = false;

  for (std::size_t f = 0; f < m; ++f) {
    // A history upset strikes the flip-flops between fetch f-1 and fetch f.
    if (history_mask[f] != 0) primary.corrupt_history(history_mask[f]);

    // Once degraded, the fetch engine serves the unencoded backing copy kept
    // in firmware (paper §7.1) instead of the encoded image.
    std::uint32_t bus_word =
        (degraded ? enc.original_words[f] : runtime_image[f]) ^ bus_mask[f];
    monitor.observe(bus_word);
    const std::uint32_t pc = kBlockPc + 4u * static_cast<std::uint32_t>(f);

    std::uint32_t out;
    try {
      out = primary.feed(pc, bus_word);
    } catch (const core::DecodeFault&) {
      // Sequencing ran past the TT (corrupted E/CT chain): the structured
      // trap IS the detection; recovery re-fetches from the backing copy.
      decode_fault = detected = degraded = true;
      primary.abandon_encoded_mode();
      if (shadow) shadow->abandon_encoded_mode();
      out = enc.original_words[f];
      monitor.observe(out);  // the corrective re-fetch is a real bus drive
      outputs[f] = out;
      continue;
    }

    if (shadow && !degraded) {
      // Decode-time consistency check: an independent decode of the same
      // observed bus stream. Faults injected into the primary's history
      // flip-flops make the two copies diverge.
      std::uint32_t shadow_out = out;
      try {
        shadow_out = shadow->feed(pc, bus_word);
      } catch (const core::DecodeFault&) {
        shadow->abandon_encoded_mode();
      }
      if (shadow_out != out) {
        detected = degraded = true;
        primary.abandon_encoded_mode();
        shadow->abandon_encoded_mode();
        out = enc.original_words[f];
        monitor.observe(out);  // corrective re-fetch
      }
    }

    if (veto && !degraded) {
      // Parity veto fired while this entry was selected; the word returned
      // for this fetch is still correct (chain-initial words are stored
      // plain, boundary words were decoded under the previous, verified
      // entry), but every later fetch comes from the backing copy.
      detected = degraded = true;
      if (shadow) shadow->abandon_encoded_mode();
    }
    outputs[f] = out;
  }

  // --- score the run against the golden decode -----------------------------
  r.decode_fault = decode_fault;
  r.detected = detected;
  r.degraded = degraded;
  for (std::size_t p = 0; p < m; ++p) {
    const std::uint32_t diff = outputs[p] ^ enc.original_words[p];
    if (diff == 0) continue;
    ++r.corrupted_words;
    r.hamming += static_cast<std::uint64_t>(std::popcount(diff));
    for (unsigned line = 0; line < core::kBusLines; ++line) {
      if ((diff >> line) & 1u) ++r.line_corrupted[line];
    }
  }
  r.restored = r.corrupted_words == 0;
  for (unsigned line = 0; line < core::kBusLines; ++line) {
    if (r.line_corrupted[line] == 0) continue;
    ++r.lines_affected;
    // Positions are scanned in ascending order, so owners are nondecreasing:
    // count owner changes to get distinct blocks touched on this line.
    int owners = 0;
    int last = -1;
    for (std::size_t p = 0; p < m; ++p) {
      if (((outputs[p] ^ enc.original_words[p]) >> line & 1u) == 0) continue;
      const int b = owner_block(p, k);
      if (b != last) {
        ++owners;
        last = b;
      }
      if (r.expected_block >= 0 && b != r.expected_block) {
        r.contained_in_expected = false;
      }
    }
    r.blocks_escaped += static_cast<std::uint32_t>(owners - 1);
  }
  r.extra_transitions = monitor.total_transitions() - enc.encoded_transitions;
  return r;
}

CampaignReport run_campaign(const CampaignOptions& options) {
  if (options.targets.empty()) {
    throw std::invalid_argument("fault campaign: no targets selected");
  }
  if (!(options.rate >= 0.0) || options.rate > 1.0) {
    throw std::invalid_argument("fault campaign: rate must be in [0, 1]");
  }
  telemetry::TracePhase phase("faults");

  CampaignReport report;
  report.seed = options.seed;
  report.iters_requested = options.iters;
  report.timed_out = false;
  report.rate = options.rate;
  report.max_seconds = options.max_seconds;
  report.protection = options.protection;
  report.per_target.resize(options.targets.size());
  for (std::size_t t = 0; t < options.targets.size(); ++t) {
    report.per_target[t].target = options.targets[t];
  }

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t completed = 0;
  // Chunked so the wall-clock budget is honored without touching per-
  // iteration determinism: each chunk fans out into pre-sized slots, then is
  // folded into the report serially in iteration order, so every completed
  // iteration contributes the same bytes at any --jobs; only how many
  // complete can depend on the clock.
  constexpr std::uint64_t kChunk = 256;
  parallel::ForOptions fan;
  fan.grain = 8;
  std::vector<IterationResult> slots;
  while (completed < options.iters) {
    if (options.max_seconds > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= options.max_seconds) {
        report.timed_out = true;
        break;
      }
    }
    const std::uint64_t end = std::min(options.iters, completed + kChunk);
    slots.assign(static_cast<std::size_t>(end - completed), IterationResult{});
    parallel::parallel_for(
        slots.size(),
        [&, base = completed](std::size_t i) {
          slots[i] = run_iteration(options, base + i);
        },
        fan);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      absorb(report, options, slots[i], completed + i);
    }
    completed = end;
  }
  report.iters_completed = completed;

  std::uint64_t flips = 0, corrupted = 0, det = 0, deg = 0, traps = 0;
  for (const TargetStats& s : report.per_target) {
    flips += s.flips;
    corrupted += s.corrupted_runs;
    det += s.detected;
    deg += s.degraded_runs;
    traps += s.decode_faults;
  }
  telemetry::count("fault.iterations", static_cast<long long>(completed));
  telemetry::count("fault.flips", static_cast<long long>(flips));
  telemetry::count("fault.corrupted_runs", static_cast<long long>(corrupted));
  telemetry::count("fault.detected", static_cast<long long>(det));
  telemetry::count("fault.degraded_runs", static_cast<long long>(deg));
  telemetry::count("fault.decode_faults", static_cast<long long>(traps));
  telemetry::count("fault.containment_violations",
                   static_cast<long long>(report.containment_violations()));
  return report;
}

json::Value to_json(const CampaignReport& report) {
  json::Value root = json::Value::object();
  root.set("seed", report.seed);
  root.set("iters_requested", report.iters_requested);
  root.set("iters_completed", report.iters_completed);
  root.set("timed_out", report.timed_out);
  root.set("rate", report.rate);
  root.set("max_seconds", report.max_seconds);
  root.set("protection", protection_name(report.protection));
  root.set("containment_violations", report.containment_violations());
  json::Value targets = json::Value::array();
  for (const TargetStats& s : report.per_target) {
    json::Value t = json::Value::object();
    t.set("target", target_name(s.target));
    t.set("runs", s.runs);
    t.set("flips", s.flips);
    if (s.target == Target::kTt) {
      json::Value kinds = json::Value::object();
      kinds.set("tau", s.tau_flips);
      kinds.set("e", s.e_flips);
      kinds.set("ct", s.ct_flips);
      t.set("single_flip_kinds", std::move(kinds));
    }
    t.set("corrupted_runs", s.corrupted_runs);
    t.set("corrupted_words", s.corrupted_words);
    t.set("hamming", s.hamming);
    t.set("lines_affected", s.lines_affected);
    t.set("blocks_escaped", s.blocks_escaped);
    t.set("contained_runs", s.contained_runs);
    t.set("containment_violations", s.containment_violations);
    t.set("decode_faults", s.decode_faults);
    t.set("detected", s.detected);
    t.set("degraded_runs", s.degraded_runs);
    t.set("restored_runs", s.restored_runs);
    t.set("extra_transitions", s.extra_transitions);
    json::Value lines = json::Value::array();
    for (unsigned line = 0; line < core::kBusLines; ++line) {
      lines.push_back(s.line_corrupted[line]);
    }
    t.set("line_corrupted", std::move(lines));
    targets.push_back(std::move(t));
  }
  root.set("targets", std::move(targets));
  return root;
}

std::string format_report(const CampaignReport& report) {
  std::ostringstream out;
  out << "fault campaign: seed " << report.seed << ", "
      << report.iters_completed << "/" << report.iters_requested
      << " iterations, rate ";
  if (report.rate <= 0.0) {
    out << "single-upset";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", report.rate);
    out << buf;
  }
  out << ", protection " << protection_name(report.protection);
  if (report.timed_out) {
    out << "  [TIMED OUT after " << report.max_seconds << "s]";
  }
  out << "\n";
  char line[256];
  std::snprintf(line, sizeof line, "%-8s %8s %8s %8s %10s %8s %6s %8s %8s %10s\n",
                "target", "runs", "flips", "corrupt", "hamming", "escaped",
                "viol", "detect", "restore", "extra_tr");
  out << line;
  for (const TargetStats& s : report.per_target) {
    std::snprintf(line, sizeof line,
                  "%-8s %8llu %8llu %8llu %10llu %8llu %6llu %8llu %8llu %10lld\n",
                  std::string(target_name(s.target)).c_str(),
                  static_cast<unsigned long long>(s.runs),
                  static_cast<unsigned long long>(s.flips),
                  static_cast<unsigned long long>(s.corrupted_runs),
                  static_cast<unsigned long long>(s.hamming),
                  static_cast<unsigned long long>(s.blocks_escaped),
                  static_cast<unsigned long long>(s.containment_violations),
                  static_cast<unsigned long long>(s.detected),
                  static_cast<unsigned long long>(s.restored_runs),
                  s.extra_transitions);
    out << line;
  }
  const std::uint64_t violations = report.containment_violations();
  if (violations > 0) {
    out << "CONTAINMENT VIOLATED: " << violations
        << " single-flip tau/history runs escaped their k-bit block\n";
  }
  return out.str();
}

}  // namespace asimt::fault
