// Extension bench — instruction cache interaction.
//
// §8: "The instructions are fetched from an instruction storage, possibly an
// instruction cache or memory; the type of storage bears no impact on the
// bit transition reductions we attain." This bench demonstrates that claim
// (the cache->CPU word stream is identical either way) and measures the part
// the paper leaves out: the memory->cache refill bus, whose line-fill bursts
// also carry the encoded image.
#include <cstdio>

#include "cfg/cfg.h"
#include "core/selection.h"
#include "experiments/experiment.h"
#include "isa/assembler.h"
#include "sim/cpu.h"
#include "sim/icache.h"
#include "workloads/workload.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt;
  const workloads::SizeConfig sizes = workloads::SizeConfig::small();
  const sim::InstructionCache::Config cache_config{16, 64, 2};  // 8 KiB

  std::printf("instruction cache: 2-way, 64 sets, 16-byte lines\n");
  std::printf("%-6s %8s %10s %14s %14s %10s\n", "bench", "hit%",
              "fetch red%", "refill base", "refill asimt", "refill red%");

  for (const workloads::Workload& w : workloads::make_all(sizes)) {
    const isa::Program program = isa::assemble(w.source);
    const cfg::Cfg cfg = cfg::build_cfg(program);

    // Profile + select + encode at k=5.
    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    w.init(memory, cpu.state());
    cfg::Profiler profiler(cfg);
    cpu.run(50'000'000, [&](std::uint32_t pc, std::uint32_t) { profiler.on_fetch(pc); });
    const cfg::Profile profile = profiler.take();
    core::SelectionOptions sel;
    sel.chain.block_size = 5;
    const core::SelectionResult selection = core::select_and_encode(cfg, profile, sel);

    const sim::TextImage base_image(cfg.text_base, cfg.text);
    const sim::TextImage enc_image(
        cfg.text_base, selection.apply_to_text(cfg.text, cfg.text_base));

    // Replay the dynamic stream against both images through the cache.
    sim::Memory memory2;
    memory2.load_program(program);
    sim::Cpu cpu2(memory2);
    cpu2.state().pc = program.entry();
    w.init(memory2, cpu2.state());
    sim::InstructionCache cache_base(cache_config);
    sim::InstructionCache cache_enc(cache_config);
    sim::BusMonitor fetch_base, fetch_enc;
    cpu2.run(50'000'000, [&](std::uint32_t pc, std::uint32_t) {
      cache_base.access(pc, base_image);
      cache_enc.access(pc, enc_image);
      fetch_base.observe(base_image.word_at(pc));
      fetch_enc.observe(enc_image.word_at(pc));
    });

    const double fetch_red =
        100.0 *
        static_cast<double>(fetch_base.total_transitions() - fetch_enc.total_transitions()) /
        static_cast<double>(fetch_base.total_transitions());
    const long long refill_base = cache_base.refill_bus_transitions();
    const long long refill_enc = cache_enc.refill_bus_transitions();
    std::printf("%-6s %7.1f%% %9.1f%% %14lld %14lld %9.1f%%\n", w.name.c_str(),
                100.0 * cache_base.stats().hit_rate(), fetch_red, refill_base,
                refill_enc,
                refill_base == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(refill_base - refill_enc) /
                          static_cast<double>(refill_base));
  }
  std::printf(
      "\nthe cache->CPU reduction equals the uncached Fig. 6 number (same\n"
      "word stream), confirming §8's storage-independence claim; line-fill\n"
      "bursts over the memory->cache bus gain a smaller but free bonus.\n");
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("ext_icache")
