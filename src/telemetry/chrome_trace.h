// Chrome Trace Event conversion for the JSONL phase stream.
//
// Turns the trace emitted by telemetry/trace.h into the JSON object format
// understood by chrome://tracing, Perfetto, and speedscope:
//
//   {"traceEvents":[
//     {"name":"workload.fft","ph":"B","pid":1,"tid":0,"ts":12},
//     {"name":"sweep.k5","ph":"B","pid":1,"tid":2,"ts":400},
//     ...metadata "M" events naming each thread...
//   ],"displayTimeUnit":"ms"}
//
// begin/end spans map to "B"/"E" phase events and instants to "i" (thread
// scope); the JSONL `tid` field becomes the Chrome tid, so spans emitted by
// pool workers (e.g. the per-block-size `sweep.k*` sweep under --jobs, see
// docs/PARALLELISM.md) land on their own timeline rows. Events written
// before the `tid` field existed default to tid 0. Chrome only requires
// per-thread event ordering, which the stream guarantees because each thread
// writes its own events in program order.
#pragma once

#include <string_view>
#include <vector>

#include "telemetry/json.h"

namespace asimt::telemetry {

// Converts parsed JSONL trace events (one object per element, as returned by
// json::parse_lines) into a Chrome trace document. Unknown event kinds are
// skipped; objects without an "ev" field throw std::runtime_error.
json::Value chrome_trace_from_events(const std::vector<json::Value>& events);

// Parses a JSONL phase stream and converts it. Propagates json::ParseError
// on malformed lines.
json::Value chrome_trace_from_jsonl(std::string_view jsonl);

}  // namespace asimt::telemetry
