#include "telemetry/metrics.h"

#include <cmath>
#include <cstdlib>

namespace asimt::telemetry {

namespace {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("ASIMT_TELEMETRY");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) { enabled_flag().store(on, std::memory_order_relaxed); }

void Histogram::observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> needs a CAS loop pre-C++20-TS; do it by hand.
  double old_sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old_sum, old_sum + v,
                                     std::memory_order_relaxed)) {
  }
  {
    std::lock_guard<std::mutex> lock(minmax_mu_);
    if (!has_samples_.load(std::memory_order_relaxed)) {
      min_.store(v, std::memory_order_relaxed);
      max_.store(v, std::memory_order_relaxed);
      has_samples_.store(true, std::memory_order_relaxed);
    } else {
      if (v < min_.load(std::memory_order_relaxed))
        min_.store(v, std::memory_order_relaxed);
      if (v > max_.load(std::memory_order_relaxed))
        max_.store(v, std::memory_order_relaxed);
    }
  }
  int idx = 0;
  if (v >= 1.0) {
    idx = std::min(kBuckets - 1, 1 + static_cast<int>(std::floor(std::log2(v))));
  }
  buckets_[static_cast<std::size_t>(idx)].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(minmax_mu_);
  return has_samples_.load(std::memory_order_relaxed)
             ? min_.load(std::memory_order_relaxed)
             : 0.0;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(minmax_mu_);
  return has_samples_.load(std::memory_order_relaxed)
             ? max_.load(std::memory_order_relaxed)
             : 0.0;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(minmax_mu_);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  has_samples_.store(false, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    Snapshot::HistogramRow row;
    row.name = name;
    row.count = h->count();
    row.sum = h->sum();
    row.min = h->min();
    row.max = h->max();
    row.mean = h->mean();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (const std::uint64_t n = h->bucket(i); n != 0) {
        row.buckets.emplace_back(i, n);
      }
    }
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace asimt::telemetry
