// RunManifest: the provenance block embedded in every JSON artifact.
//
// The paper's claims are relative numbers; a performance or reduction figure
// without "measured on what, built how, from which commit" cannot be
// reproduced or compared across commits. The manifest answers that once per
// process: build identity (git sha + dirty flag, compiler + flags, build
// type, captured at configure time), machine identity (hostname, CPU model,
// core count), and run identity (worker count, UTC timestamp).
//
// Two serialized views exist because the repo has two kinds of artifact:
//
//   kFull    — BENCH_*.json files, trajectory-store entries, --out files:
//              everything, including the per-invocation volatile fields
//              (timestamp, jobs).
//   kStable  — machine-readable stdout (report --json, profile --json, ...):
//              omits timestamp and jobs so the determinism contract of
//              docs/PARALLELISM.md ("--jobs changes nothing but wall time,
//              byte for byte") keeps holding for those streams.
#pragma once

#include <string>

#include "telemetry/json.h"

namespace asimt::obs {

// Artifact schema generation for BENCH_*.json and history entries. v1 files
// (no schema_version, no manifest) predate this header; tools/benchdiff
// still reads them.
inline constexpr int kBenchSchemaVersion = 2;

struct RunManifest {
  int schema_version = kBenchSchemaVersion;
  std::string git_sha;      // "unknown" when the build tree had no git
  bool git_dirty = false;   // uncommitted changes at configure time
  std::string compiler;     // id + version, e.g. "GNU 13.2.0"
  std::string cxx_flags;    // base + build-type flags
  std::string build_type;   // CMAKE_BUILD_TYPE
  std::string hostname;
  std::string cpu_model;    // /proc/cpuinfo "model name" or "unknown"
  int cores = 0;            // hardware_concurrency
  unsigned jobs = 0;        // parallel::default_jobs() at capture
  std::string timestamp_utc;  // ISO 8601, e.g. "2026-08-07T12:34:56Z"
};

enum class ManifestFields { kFull, kStable };

// Captured once per process on first call (after CLI flag parsing in
// practice, so `jobs` reflects --jobs). The timestamp is the capture time.
const RunManifest& run_manifest();

json::Value to_json(const RunManifest& m,
                    ManifestFields fields = ManifestFields::kFull);

// Inverse of to_json(kFull); missing volatile fields parse as defaults so a
// kStable block round-trips too. Throws json errors on malformed blocks.
RunManifest manifest_from_json(const json::Value& v);

// Convenience: doc.set("manifest", ...) on an artifact under construction.
void embed_manifest(json::Value& doc,
                    ManifestFields fields = ManifestFields::kFull);

}  // namespace asimt::obs
