// Phase tracing: RAII spans emitting a JSONL event trace.
//
// A TraceWriter turns spans into one JSON object per line:
//
//   {"ev":"begin","name":"encode","depth":1,"t_us":1234}
//   {"ev":"end","name":"encode","depth":1,"t_us":5678,"dur_us":4444}
//
// `t_us` is microseconds on the steady clock since process start; `depth` is
// the per-thread nesting level and `tid` a small stable per-thread index
// (0 for the first thread that traces, usually main), so a consumer can
// rebuild one span tree per thread even when pool workers interleave in the
// stream. The pipeline phases (assemble -> cfg -> profile -> select ->
// encode -> verify -> measure) are pre-instrumented; see
// docs/OBSERVABILITY.md for the schema and telemetry/chrome_trace.h for the
// Chrome-trace converter built on it.
//
// TracePhase writes to the *global* writer (installed by open_trace or
// set_trace_stream) and additionally folds the duration into the global
// metrics histogram `phase.<name>.us` when telemetry is enabled. When no
// writer is installed and telemetry is off, constructing a TracePhase costs
// two relaxed atomic loads and no clock read. ScopedTimer is the
// metrics-only variant for callers that want a duration histogram without
// trace events.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace asimt::telemetry {

// Microseconds since the first call in this process (steady clock).
std::int64_t now_us();

// Small dense id of the calling thread, assigned on its first trace event
// (0, 1, 2, ... in first-trace order). Stable for the thread's lifetime.
int trace_tid();

class TraceWriter {
 public:
  // Writes to `out`, which must outlive the writer. The writer does not own
  // the stream (tests pass an ostringstream; open_trace owns a file stream).
  explicit TraceWriter(std::ostream& out) : out_(&out) {}

  void begin(std::string_view name, int depth, std::int64_t t_us);
  void end(std::string_view name, int depth, std::int64_t t_us,
           std::int64_t dur_us);
  // One-off event with optional extra string fields.
  void instant(
      std::string_view name,
      const std::vector<std::pair<std::string, std::string>>& fields = {});
  void flush();

 private:
  void write_line(const std::string& line);

  std::ostream* out_;
  std::mutex mu_;
};

// --- global trace destination ---------------------------------------------

// Opens `path` for writing and installs it as the global trace destination.
// Returns false (and leaves tracing unchanged) when the file cannot be
// opened. Implies nothing about metrics: tracing and the metrics switch are
// independent.
bool open_trace(const std::string& path);

// Installs a caller-owned stream as the global destination (tests). Pass
// nullptr to disable tracing.
void set_trace_stream(std::ostream* out);

// Flushes and tears down the global writer.
void close_trace();

// Currently-installed global writer, or nullptr when tracing is off.
TraceWriter* trace_writer();

// Emits an instant event on the global writer, if any.
void trace_instant(
    std::string_view name,
    const std::vector<std::pair<std::string, std::string>>& fields = {});

// --- RAII spans -----------------------------------------------------------

// Named span: begin/end events on the global trace plus a duration sample in
// the `phase.<name>.us` histogram. Non-copyable, non-movable.
class TracePhase {
 public:
  explicit TracePhase(std::string_view name);
  ~TracePhase();

  TracePhase(const TracePhase&) = delete;
  TracePhase& operator=(const TracePhase&) = delete;

 private:
  std::string name_;
  std::int64_t start_us_ = 0;
  int depth_ = 0;
  bool tracing_ = false;
  bool timing_ = false;
};

// Metrics-only duration sample: records elapsed microseconds into the global
// histogram `name` on destruction. No trace events, no allocation when
// telemetry is disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view histogram_name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string name_;
  std::int64_t start_us_ = 0;
  bool active_ = false;
};

}  // namespace asimt::telemetry
