// Extension bench — generalization beyond the paper's six benchmarks.
//
// Runs the Fig. 6 pipeline over four additional embedded kernels with code
// characters the paper's numerical suite lacks: FIR (regular MAC loop),
// CRC-32 (integer/branch-heavy bit loop), DCT (table-driven matvec), and a
// byte histogram (data-dependent addressing). If the technique depends only
// on vertical code regularity, the reductions should land in the same band.
#include <cstdio>

#include "experiments/experiment.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt;
  const workloads::SizeConfig sizes = experiments::bench_sizes();
  experiments::ExperimentOptions opt;

  std::vector<experiments::WorkloadResult> results;
  for (const workloads::Workload& w : workloads::make_extra(sizes)) {
    std::fprintf(stderr, "[ext] running %s (%s)...\n", w.name.c_str(),
                 w.description.c_str());
    results.push_back(experiments::run_workload(w, opt));
    if (!results.back().check_passed) {
      std::fprintf(stderr, "FATAL: %s failed validation: %s\n",
                   results.back().name.c_str(),
                   results.back().check_error.c_str());
      return 1;
    }
  }

  std::printf("Fig. 6-style results on four non-paper kernels\n\n%s\n",
              experiments::format_fig6_table(results).c_str());
  std::printf("instruction counts:\n");
  for (const auto& r : results) {
    std::printf("  %-6s %12llu instructions\n", r.name.c_str(),
                static_cast<unsigned long long>(r.instructions));
  }
  std::printf(
      "\nexpected: the same 20-60%% band as the paper suite — including the\n"
      "integer-only kernels, confirming the technique keys on instruction\n"
      "encoding regularity rather than on numerical code specifically.\n");
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("ext_workloads")
