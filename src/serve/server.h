// `asimt serve`: the long-lived encoding daemon.
//
// Listens on a unix-domain socket and runs the newline-delimited JSON
// protocol of serve/service.h: one request per line in, one reply per line
// out, any number of requests pipelined per connection. Each accepted
// connection gets a handler thread; the encode work inside a request fans
// out over the shared parallel pool (parallel::default_pool()), so one big
// program saturates the cores while many small requests interleave.
//
// Shutdown contract (tested by tests/serve/server_test.cpp and the CLI
// smoke lane): SIGINT/SIGTERM — delivered to notify_stop(), which is
// async-signal-safe — triggers a graceful drain: stop accepting, unlink the
// socket path, shut down the read side of every live connection so blocked
// reads see EOF, let in-flight replies finish, join all handler threads,
// and return from run() normally. Clients with requests in flight get their
// replies; clients that connect after the drain starts are refused.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"

namespace asimt::serve {

struct ServeOptions {
  std::string socket_path;
  ServiceOptions service;
  // Accept backlog; connections beyond it queue in the kernel.
  int backlog = 64;
  // Connection-thread cap; 0 = unlimited. A connection accepted at capacity
  // is shed immediately: one structured `overloaded` reply (with the
  // retry_after_ms hint), then close — shed before queue, and the client
  // learns why instead of hanging in the backlog.
  unsigned max_conns = 0;
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the socket. Returns false (with a message in error()) when the
  // path is unusable — already bound by a live server, too long for
  // sockaddr_un, or in an unwritable directory.
  bool start();

  // Accept-and-serve loop; blocks until notify_stop() (or a fatal accept
  // error). Returns the number of connections served.
  std::uint64_t run();

  // Requests a graceful drain. Async-signal-safe (one write() to a pipe);
  // callable from any thread or from a signal handler.
  void notify_stop();

  const std::string& error() const { return error_; }
  Service& service() { return service_; }
  const ServeOptions& options() const { return options_; }

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;  // accept ordinal; spans carry it as conn_id
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void handle_connection(Connection* connection);
  void reap_finished_connections();

  ServeOptions options_;
  Service service_;
  std::string error_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;   // self-pipe: signal handler writes,
  int wake_write_fd_ = -1;  // accept loop polls the read end
  std::atomic<bool> stopping_{false};
  std::mutex connections_mu_;
  std::list<std::unique_ptr<Connection>> connections_;
  std::uint64_t connections_served_ = 0;
};

// Installs SIGINT/SIGTERM handlers that call notify_stop() on `server`
// (pass nullptr to uninstall). Only one server can be signal-driven at a
// time — the CLI use case.
void install_stop_signal_handlers(Server* server);

}  // namespace asimt::serve
