// The determinism contract (docs/PARALLELISM.md): every parallel fan-out in
// the pipeline must produce byte-identical results at any job count. Two
// layers are pinned here:
//   1. ChainEncoder::encode_many on large random streams — the level-1
//      per-bit-line fan-out — compared chain by chain,
//   2. experiments::run_workload on every reference workload across the full
//      k = 4..7 sweep — levels 2 and 3 — compared as the serialized
//      WorkloadResult JSON, byte for byte.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/chain_encoder.h"
#include "experiments/experiment.h"
#include "parallel/pool.h"
#include "telemetry/json.h"
#include "workloads/workload.h"

namespace asimt {
namespace {

// Every test restores the automatic job count so ordering cannot leak.
class DeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { parallel::set_default_jobs(0); }
};

std::vector<bits::BitSeq> random_lines(std::size_t lines, std::size_t bits,
                                       std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<bits::BitSeq> out(lines);
  for (bits::BitSeq& line : out) {
    line = bits::BitSeq(bits);
    for (std::size_t i = 0; i < bits; ++i) {
      line.set(i, static_cast<int>(rng() & 1u));
    }
  }
  return out;
}

void expect_identical_chains(const std::vector<core::EncodedChain>& a,
                             const std::vector<core::EncodedChain>& b,
                             const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stored, b[i].stored) << label << " line " << i;
    ASSERT_EQ(a[i].blocks.size(), b[i].blocks.size()) << label << " line " << i;
    for (std::size_t bi = 0; bi < a[i].blocks.size(); ++bi) {
      EXPECT_EQ(a[i].blocks[bi].start, b[i].blocks[bi].start);
      EXPECT_EQ(a[i].blocks[bi].length, b[i].blocks[bi].length);
      EXPECT_EQ(a[i].blocks[bi].tau, b[i].blocks[bi].tau)
          << label << " line " << i << " block " << bi;
    }
  }
}

TEST_F(DeterminismTest, EncodeManyIsBitExactAcrossJobCounts) {
  // 32 lines x 4096 bits is far past the parallel threshold, so jobs > 1
  // really exercises the pool.
  const std::vector<bits::BitSeq> lines = random_lines(32, 4096, 0xA51C);
  for (const core::ChainStrategy strategy :
       {core::ChainStrategy::kGreedy, core::ChainStrategy::kOptimalDp}) {
    for (const int k : {4, 7}) {
      core::ChainOptions options;
      options.block_size = k;
      options.strategy = strategy;
      const core::ChainEncoder encoder(options);

      parallel::set_default_jobs(1);
      const std::vector<core::EncodedChain> serial = encoder.encode_many(lines);
      for (const unsigned jobs : {2u, 8u}) {
        parallel::set_default_jobs(jobs);
        const std::vector<core::EncodedChain> parallel_result =
            encoder.encode_many(lines);
        expect_identical_chains(serial, parallel_result,
                                "k=" + std::to_string(k) + " jobs=" +
                                    std::to_string(jobs));
      }
    }
  }
}

TEST_F(DeterminismTest, EncodeManyMatchesPerLineEncode) {
  const std::vector<bits::BitSeq> lines = random_lines(32, 2048, 0xBEEF);
  core::ChainOptions options;
  options.block_size = 5;
  const core::ChainEncoder encoder(options);
  parallel::set_default_jobs(8);
  const std::vector<core::EncodedChain> batched = encoder.encode_many(lines);
  std::vector<core::EncodedChain> individual;
  parallel::set_default_jobs(1);
  for (const bits::BitSeq& line : lines) {
    individual.push_back(encoder.encode(line));
  }
  expect_identical_chains(individual, batched, "batched-vs-individual");
}

// Levels 2 and 3: the full harness. Every reference workload, full k sweep,
// serialized WorkloadResult compared byte for byte across job counts. Small
// problem sizes keep the six pipelines affordable in unit-test time.
TEST_F(DeterminismTest, RunWorkloadJsonIsByteIdenticalAcrossJobCounts) {
  const workloads::SizeConfig sizes = workloads::SizeConfig::small();
  const experiments::ExperimentOptions options;  // k = 4, 5, 6, 7
  for (const workloads::Workload& w : workloads::make_all(sizes)) {
    parallel::set_default_jobs(1);
    const std::string serial_json =
        experiments::to_json(experiments::run_workload(w, options)).dump(2);
    for (const unsigned jobs : {2u, 8u}) {
      parallel::set_default_jobs(jobs);
      const std::string parallel_json =
          experiments::to_json(experiments::run_workload(w, options)).dump(2);
      EXPECT_EQ(serial_json, parallel_json)
          << w.name << " diverged at jobs=" << jobs;
    }
  }
}

// The suite-level fan-out must preserve order and content exactly.
TEST_F(DeterminismTest, RunWorkloadsMatchesSerialLoop) {
  const workloads::SizeConfig sizes = workloads::SizeConfig::small();
  experiments::ExperimentOptions options;
  options.block_sizes = {5};  // one k keeps this a pure level-3 test
  const std::vector<workloads::Workload> suite = workloads::make_all(sizes);

  parallel::set_default_jobs(1);
  std::vector<experiments::WorkloadResult> serial;
  for (const workloads::Workload& w : suite) {
    serial.push_back(experiments::run_workload(w, options));
  }
  parallel::set_default_jobs(8);
  const std::vector<experiments::WorkloadResult> parallel_results =
      experiments::run_workloads(suite, options);

  ASSERT_EQ(parallel_results.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(experiments::to_json(serial[i]).dump(2),
              experiments::to_json(parallel_results[i]).dump(2))
        << suite[i].name;
  }
}

}  // namespace
}  // namespace asimt
