// Cross-module consistency properties that tie independent implementations
// of the same quantity together.
#include <gtest/gtest.h>

#include <random>

#include "core/chain_encoder.h"
#include "core/program_encoder.h"
#include "core/selection.h"
#include "isa/assembler.h"
#include "power/coupling.h"
#include "sim/bus.h"
#include "workloads/workload.h"

namespace asimt {
namespace {

std::vector<std::uint32_t> random_words(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint32_t> words(n);
  for (auto& w : words) w = rng();
  return words;
}

TEST(Consistency, ProgramEncoderEqualsPerLineChainEncoder) {
  // encode_basic_block must produce, per line, exactly the chain encoder's
  // stored stream — total transitions included.
  for (std::uint32_t seed = 0; seed < 6; ++seed) {
    const auto words = random_words(21, seed);
    core::ChainOptions options;
    options.block_size = 5;
    const core::BlockEncoding enc =
        core::encode_basic_block(words, 0, options);
    const core::ChainEncoder encoder(options);
    long long per_line_total = 0;
    for (unsigned line = 0; line < 32; ++line) {
      const auto chain = encoder.encode(bits::vertical_line(words, line));
      per_line_total += chain.stored.transitions();
      EXPECT_EQ(chain.stored,
                bits::vertical_line(enc.encoded_words, line))
          << "line " << line;
    }
    EXPECT_EQ(enc.encoded_transitions, per_line_total);
  }
}

TEST(Consistency, BusMonitorAgreesWithBitstreamHelperOnWorkloadText) {
  for (const workloads::Workload& w :
       workloads::make_all(workloads::SizeConfig::small())) {
    const isa::Program program = isa::assemble(w.source);
    sim::BusMonitor monitor;
    for (std::uint32_t word : program.text) monitor.observe(word);
    EXPECT_EQ(monitor.total_transitions(),
              bits::total_bus_transitions(program.text))
        << w.name;
  }
}

TEST(Consistency, CouplingNeverExceedsTwiceAdjacentSelfActivity) {
  // Each coupling event needs at least one of the pair to toggle; weight 2
  // needs both. So coupling <= 2 * self for any stream (31 pairs vs 32
  // lines makes it strictly less in practice).
  std::mt19937 rng(3);
  sim::BusMonitor self;
  power::CouplingMonitor coupling;
  for (int i = 0; i < 5000; ++i) {
    const std::uint32_t word = rng();
    self.observe(word);
    coupling.observe(word);
  }
  EXPECT_LE(coupling.activity(), 2 * self.total_transitions());
  EXPECT_GT(coupling.activity(), self.total_transitions() / 2);
}

TEST(Consistency, EncodedTransitionsInvariantUnderChainStrategyOnWorkloads) {
  // Greedy ties the DP on real code too, not just random streams (the §6
  // empirical claim at program scale).
  const workloads::Workload w =
      workloads::make_by_name("fft", workloads::SizeConfig::small());
  const isa::Program program = isa::assemble(w.source);
  core::ChainOptions greedy;
  greedy.block_size = 5;
  core::ChainOptions dp = greedy;
  dp.strategy = core::ChainStrategy::kOptimalDp;
  const auto a = core::encode_basic_block(program.text, program.text_base, greedy);
  const auto b = core::encode_basic_block(program.text, program.text_base, dp);
  EXPECT_LE(b.encoded_transitions, a.encoded_transitions);
  EXPECT_GE(b.encoded_transitions, a.encoded_transitions - 4);
}

TEST(Consistency, SelectionNeverChangesUncoveredWords) {
  // Belt-and-braces across all ten workloads at two block sizes.
  for (const char* name : {"sor", "crc32"}) {
    const workloads::Workload w =
        workloads::make_by_name(name, workloads::SizeConfig::small());
    const isa::Program program = isa::assemble(w.source);
    const cfg::Cfg graph = cfg::build_cfg(program);
    cfg::Profile profile;
    profile.block_counts.assign(graph.blocks.size(), 10);
    core::SelectionOptions opt;
    opt.chain.block_size = 4;
    const auto selection = core::select_and_encode(graph, profile, opt);
    const auto image = selection.apply_to_text(graph.text, graph.text_base);
    std::vector<bool> covered(image.size(), false);
    for (const core::BlockEncoding& enc : selection.encodings) {
      const std::size_t first = (enc.start_pc - graph.text_base) / 4;
      for (std::size_t i = 0; i < enc.encoded_words.size(); ++i) {
        covered[first + i] = true;
      }
    }
    for (std::size_t i = 0; i < image.size(); ++i) {
      if (!covered[i]) EXPECT_EQ(image[i], graph.text[i]) << name << " @" << i;
    }
  }
}

}  // namespace
}  // namespace asimt
