// TT wire-format packing and firmware-image serialization tests.
#include "core/image.h"

#include <gtest/gtest.h>

#include <random>

#include "core/fetch_decoder.h"
#include "core/program_encoder.h"
#include "core/tt_format.h"

namespace asimt::core {
namespace {

TtEntry random_entry(std::uint32_t seed) {
  std::mt19937 rng(seed);
  TtEntry entry;
  for (auto& tau : entry.tau) tau = static_cast<std::uint8_t>(rng() & 7);
  entry.end = (rng() & 1) != 0;
  entry.ct = static_cast<std::uint8_t>(rng() % 17);
  return entry;
}

bool entries_equal(const TtEntry& a, const TtEntry& b) {
  return a.tau == b.tau && a.end == b.end && a.ct == b.ct;
}

TEST(TtFormat, PackUnpackRoundTrip) {
  for (std::uint32_t seed = 0; seed < 50; ++seed) {
    const TtEntry entry = random_entry(seed);
    EXPECT_TRUE(entries_equal(unpack_tt_entry(pack_tt_entry(entry)), entry))
        << seed;
  }
}

TEST(TtFormat, FieldPlacement) {
  TtEntry entry;
  entry.tau[0] = 5;
  entry.tau[9] = 7;
  entry.tau[10] = 3;
  entry.tau[31] = 6;
  entry.end = true;
  entry.ct = 13;
  const auto words = pack_tt_entry(entry);
  EXPECT_EQ(words[0] & 7u, 5u);
  EXPECT_EQ((words[0] >> 27) & 7u, 7u);
  EXPECT_EQ(words[1] & 7u, 3u);
  EXPECT_EQ((words[3] >> 3) & 7u, 6u);  // line 31 = second triple of word 3
  EXPECT_EQ((words[3] >> 6) & 1u, 1u);
  EXPECT_EQ((words[3] >> 7) & 0x1Fu, 13u);
}

FirmwareImage sample_image() {
  std::mt19937 rng(42);
  std::vector<std::uint32_t> words(24);
  for (auto& w : words) w = rng();
  ChainOptions options;
  options.block_size = 5;
  const BlockEncoding enc = encode_basic_block(words, 0x400000, options);
  FirmwareImage image;
  image.text_base = 0x400000;
  image.text = enc.encoded_words;
  image.tt.block_size = 5;
  image.tt.entries = enc.tt_entries;
  image.bbit = {BbitEntry{0x400000, 0}};
  return image;
}

TEST(FirmwareImage, SerializeDeserializeRoundTrip) {
  const FirmwareImage image = sample_image();
  const auto bytes = serialize(image);
  EXPECT_EQ(deserialize(bytes), image);
}

TEST(FirmwareImage, EmptySectionsRoundTrip) {
  FirmwareImage image;
  image.text_base = 0x1000;
  image.tt.block_size = 4;
  const auto bytes = serialize(image);
  EXPECT_EQ(deserialize(bytes), image);
}

TEST(FirmwareImage, DetectsBitFlips) {
  const auto bytes = serialize(sample_image());
  // Every single-bit corruption must be caught by the checksum.
  for (std::size_t i = 0; i < bytes.size(); i += 7) {
    auto corrupted = bytes;
    corrupted[i] ^= 0x10;
    EXPECT_THROW(deserialize(corrupted), ImageError) << "byte " << i;
  }
}

TEST(FirmwareImage, DetectsTruncation) {
  auto bytes = serialize(sample_image());
  bytes.resize(bytes.size() - 8);
  EXPECT_THROW(deserialize(bytes), ImageError);
  EXPECT_THROW(deserialize(std::vector<std::uint8_t>(10)), ImageError);
}

TEST(FirmwareImage, RejectsBadMagicAndVersion) {
  auto bytes = serialize(sample_image());
  // Flipping magic/version invalidates the checksum first, so rebuild the
  // checksum to test the dedicated checks.
  auto patch_and_rehash = [](std::vector<std::uint8_t> b, std::size_t pos,
                             std::uint8_t v) {
    b[pos] = v;
    // recompute FNV-1a
    std::uint32_t hash = 2166136261u;
    for (std::size_t i = 0; i + 4 < b.size(); ++i) {
      hash ^= b[i];
      hash *= 16777619u;
    }
    b[b.size() - 4] = static_cast<std::uint8_t>(hash);
    b[b.size() - 3] = static_cast<std::uint8_t>(hash >> 8);
    b[b.size() - 2] = static_cast<std::uint8_t>(hash >> 16);
    b[b.size() - 1] = static_cast<std::uint8_t>(hash >> 24);
    return b;
  };
  EXPECT_THROW(deserialize(patch_and_rehash(bytes, 0, 'X')), ImageError);
  EXPECT_THROW(deserialize(patch_and_rehash(bytes, 4, 99)), ImageError);
}

TEST(FirmwareImage, RejectsOutOfRangeBbit) {
  FirmwareImage image = sample_image();
  image.bbit[0].tt_index = static_cast<std::uint16_t>(image.tt.entries.size());
  EXPECT_THROW(deserialize(serialize(image)), ImageError);
}

TEST(FirmwareImage, DecodesAfterRoundTrip) {
  // The loaded image's tables must actually decode its text.
  std::mt19937 rng(9);
  std::vector<std::uint32_t> words(15);
  for (auto& w : words) w = rng();
  ChainOptions options;
  options.block_size = 6;
  const BlockEncoding enc = encode_basic_block(words, 0x8000, options);

  FirmwareImage image;
  image.text_base = 0x8000;
  image.text = enc.encoded_words;
  image.tt.block_size = 6;
  image.tt.entries = enc.tt_entries;
  image.bbit = {BbitEntry{0x8000, 0}};
  const FirmwareImage loaded = deserialize(serialize(image));

  FetchDecoder decoder(loaded.tt, loaded.bbit);
  for (std::size_t i = 0; i < loaded.text.size(); ++i) {
    EXPECT_EQ(decoder.feed(loaded.text_base + 4 * static_cast<std::uint32_t>(i),
                           loaded.text[i]),
              words[i]);
  }
}

}  // namespace
}  // namespace asimt::core
