#include "workloads/workload.h"

#include <cmath>
#include <cstdio>
#include <span>
#include <stdexcept>

#include "isa/isa.h"
#include "workloads/reference.h"

namespace asimt::workloads {

namespace {

// Host-managed data region, separate from the assembler's .data section.
constexpr std::uint32_t kArrayBase = 0x20000000;

void write_floats(sim::Memory& memory, std::uint32_t addr,
                  std::span<const float> values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    memory.store_float(addr + 4 * static_cast<std::uint32_t>(i), values[i]);
  }
}

void write_words(sim::Memory& memory, std::uint32_t addr,
                 std::span<const std::uint32_t> values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    memory.store32(addr + 4 * static_cast<std::uint32_t>(i), values[i]);
  }
}

std::vector<float> read_floats(const sim::Memory& memory, std::uint32_t addr,
                               std::size_t count) {
  std::vector<float> values(count);
  for (std::size_t i = 0; i < count; ++i) {
    values[i] = memory.load_float(addr + 4 * static_cast<std::uint32_t>(i));
  }
  return values;
}

// Relative-error comparison; iterative float kernels accumulate rounding
// differently than the host only when the compiler contracts, so the
// tolerance is loose enough for either.
bool compare_floats(std::span<const float> expected,
                    std::span<const float> actual, const char* what,
                    std::string* error, float tolerance = 1e-3f) {
  if (expected.size() != actual.size()) {
    if (error) *error = std::string(what) + ": size mismatch";
    return false;
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const float e = expected[i];
    const float a = actual[i];
    const float scale = std::max(1.0f, std::fabs(e));
    if (std::fabs(e - a) > tolerance * scale) {
      if (error) {
        char buf[160];
        std::snprintf(buf, sizeof buf, "%s[%zu]: expected %g, got %g", what, i,
                      static_cast<double>(e), static_cast<double>(a));
        *error = buf;
      }
      return false;
    }
  }
  return true;
}

std::vector<float> random_floats(std::size_t count, std::uint32_t seed) {
  Lcg lcg(seed);
  std::vector<float> values(count);
  for (float& v : values) v = lcg.next_float();
  return values;
}

}  // namespace

// ---------------------------------------------------------------------------
// mmul: C = A x B (paper: 100x100)
// ---------------------------------------------------------------------------

Workload make_mmul(const SizeConfig& config) {
  const int n = config.mmul_n;
  const auto count = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  const std::uint32_t a_addr = kArrayBase;
  const std::uint32_t b_addr = a_addr + 4 * static_cast<std::uint32_t>(count);
  const std::uint32_t c_addr = b_addr + 4 * static_cast<std::uint32_t>(count);

  Workload w;
  w.name = "mmul";
  w.description = "matrix multiplication, " + std::to_string(n) + "x" + std::to_string(n);
  w.source = R"(# C = A x B, row-major single precision
# $a0 = A, $a1 = B, $a2 = C, $a3 = n
        .text
mmul:
        sll     $t5, $a3, 2          # row stride in bytes
        li      $t0, 0               # i
        move    $s0, $a0             # &A[i][0]
        move    $s1, $a2             # &C[i][0]
iloop:
        li      $t1, 0               # j
jloop:
        li.s    $f0, 0.0             # sum
        move    $t3, $s0             # &A[i][k]
        sll     $t4, $t1, 2
        add     $t4, $a1, $t4        # &B[k][j]
        li      $t2, 0               # k
kloop:
        lwc1    $f1, 0($t3)
        lwc1    $f2, 0($t4)
        mul.s   $f3, $f1, $f2
        add.s   $f0, $f0, $f3
        addiu   $t3, $t3, 4
        add     $t4, $t4, $t5
        addiu   $t2, $t2, 1
        bne     $t2, $a3, kloop
        sll     $t6, $t1, 2
        add     $t6, $s1, $t6
        swc1    $f0, 0($t6)
        addiu   $t1, $t1, 1
        bne     $t1, $a3, jloop
        add     $s0, $s0, $t5
        add     $s1, $s1, $t5
        addiu   $t0, $t0, 1
        bne     $t0, $a3, iloop
        halt
)";
  w.init = [=](sim::Memory& memory, sim::CpuState& state) {
    write_floats(memory, a_addr, random_floats(count, 0xA11CE));
    write_floats(memory, b_addr, random_floats(count, 0xB0B));
    state.r[isa::kA0] = a_addr;
    state.r[isa::kA1] = b_addr;
    state.r[isa::kA2] = c_addr;
    state.r[isa::kA3] = static_cast<std::uint32_t>(n);
  };
  w.check = [=](const sim::Memory& memory, std::string* error) {
    const std::vector<float> a = random_floats(count, 0xA11CE);
    const std::vector<float> b = random_floats(count, 0xB0B);
    std::vector<float> expected;
    ref_mmul(n, a, b, expected);
    return compare_floats(expected, read_floats(memory, c_addr, count), "C", error);
  };
  return w;
}

// ---------------------------------------------------------------------------
// sor: Gauss-Seidel successive over-relaxation (paper: 256x256)
// ---------------------------------------------------------------------------

Workload make_sor(const SizeConfig& config) {
  const int n = config.sor_n;
  const int iters = config.sor_iters;
  const auto count = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  const std::uint32_t u_addr = kArrayBase;

  Workload w;
  w.name = "sor";
  w.description = "successive over-relaxation, " + std::to_string(n) + "x" +
                  std::to_string(n) + ", " + std::to_string(iters) + " sweeps";
  w.source = R"(# In-place SOR sweeps over an n x n grid; omega/4 = 0.375
# $a0 = u, $a1 = n, $a2 = sweeps
        .text
sor:
        sll     $t7, $a1, 2          # row stride
        addiu   $t6, $a1, -1         # n - 1
        li.s    $f6, 0.375           # omega / 4
        li      $t9, 0               # sweep
sweep:
        li      $t0, 1               # i
rowloop:
        mul     $t1, $t0, $a1
        sll     $t1, $t1, 2
        add     $t1, $a0, $t1        # &u[i][0]
        li      $t2, 1               # j
colloop:
        sll     $t3, $t2, 2
        add     $t3, $t1, $t3        # &u[i][j]
        lwc1    $f0, 0($t3)          # center
        sub     $t4, $t3, $t7
        lwc1    $f1, 0($t4)          # north
        add     $t4, $t3, $t7
        lwc1    $f2, 0($t4)          # south
        lwc1    $f3, -4($t3)         # west
        lwc1    $f4, 4($t3)          # east
        add.s   $f1, $f1, $f2
        add.s   $f1, $f1, $f3
        add.s   $f1, $f1, $f4
        add.s   $f5, $f0, $f0
        add.s   $f5, $f5, $f5        # 4 * center
        sub.s   $f1, $f1, $f5        # residual
        mul.s   $f1, $f1, $f6
        add.s   $f0, $f0, $f1
        swc1    $f0, 0($t3)
        addiu   $t2, $t2, 1
        bne     $t2, $t6, colloop
        addiu   $t0, $t0, 1
        bne     $t0, $t6, rowloop
        addiu   $t9, $t9, 1
        bne     $t9, $a2, sweep
        halt
)";
  w.init = [=](sim::Memory& memory, sim::CpuState& state) {
    write_floats(memory, u_addr, random_floats(count, 0x50F));
    state.r[isa::kA0] = u_addr;
    state.r[isa::kA1] = static_cast<std::uint32_t>(n);
    state.r[isa::kA2] = static_cast<std::uint32_t>(iters);
  };
  w.check = [=](const sim::Memory& memory, std::string* error) {
    std::vector<float> expected = random_floats(count, 0x50F);
    ref_sor(n, iters, expected);
    return compare_floats(expected, read_floats(memory, u_addr, count), "u", error);
  };
  return w;
}

// ---------------------------------------------------------------------------
// ej: extrapolated Jacobi (paper: 128x128 grid)
// ---------------------------------------------------------------------------

Workload make_ej(const SizeConfig& config) {
  const int n = config.ej_n;
  const int iters = config.ej_iters;
  const auto count = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  const std::uint32_t u_addr = kArrayBase;
  const std::uint32_t v_addr = u_addr + 4 * static_cast<std::uint32_t>(count);

  Workload w;
  w.name = "ej";
  w.description = "extrapolated Jacobi, " + std::to_string(n) + "x" +
                  std::to_string(n) + ", " + std::to_string(iters) + " iterations";
  w.source = R"(# Extrapolated Jacobi with omega = 1.25, ping-pong buffers
# $a0 = u, $a1 = v, $a2 = n, $a3 = iterations
        .data
ej_c1:  .float -0.25               # 1 - omega
ej_c2:  .float 0.3125              # omega / 4
        .text
ej:
        la      $t8, ej_c1
        lwc1    $f6, 0($t8)
        lwc1    $f7, 4($t8)
        sll     $t7, $a2, 2          # row stride
        addiu   $t8, $a2, -1         # n - 1
        li      $t9, 0               # iteration
ej_iter:
        li      $t0, 1               # i
ej_row:
        mul     $t1, $t0, $a2
        sll     $t1, $t1, 2
        add     $t2, $a0, $t1        # source row
        add     $t3, $a1, $t1        # destination row
        li      $t4, 1               # j
ej_col:
        sll     $t5, $t4, 2
        add     $t6, $t2, $t5        # &u[i][j]
        lwc1    $f0, 0($t6)
        sub     $t1, $t6, $t7
        lwc1    $f1, 0($t1)          # north
        add     $t1, $t6, $t7
        lwc1    $f2, 0($t1)          # south
        lwc1    $f3, -4($t6)         # west
        lwc1    $f4, 4($t6)          # east
        add.s   $f1, $f1, $f2
        add.s   $f1, $f1, $f3
        add.s   $f1, $f1, $f4
        mul.s   $f1, $f1, $f7        # (omega/4) * neighbor sum
        mul.s   $f0, $f0, $f6        # (1-omega) * center
        add.s   $f0, $f0, $f1
        add     $t1, $t3, $t5
        swc1    $f0, 0($t1)          # v[i][j]
        addiu   $t4, $t4, 1
        bne     $t4, $t8, ej_col
        addiu   $t0, $t0, 1
        bne     $t0, $t8, ej_row
        move    $t1, $a0             # swap buffers
        move    $a0, $a1
        move    $a1, $t1
        addiu   $t9, $t9, 1
        bne     $t9, $a3, ej_iter
        halt
)";
  w.init = [=](sim::Memory& memory, sim::CpuState& state) {
    const std::vector<float> grid = random_floats(count, 0xE1);
    write_floats(memory, u_addr, grid);
    write_floats(memory, v_addr, grid);  // boundaries must match in both
    state.r[isa::kA0] = u_addr;
    state.r[isa::kA1] = v_addr;
    state.r[isa::kA2] = static_cast<std::uint32_t>(n);
    state.r[isa::kA3] = static_cast<std::uint32_t>(iters);
  };
  w.check = [=](const sim::Memory& memory, std::string* error) {
    std::vector<float> u = random_floats(count, 0xE1);
    std::vector<float> v = u;
    const std::vector<float>& expected = ref_ej(n, iters, u, v);
    const std::uint32_t result_addr = (iters % 2 == 1) ? v_addr : u_addr;
    return compare_floats(expected, read_floats(memory, result_addr, count),
                          "grid", error);
  };
  return w;
}

// ---------------------------------------------------------------------------
// fft: radix-2 DIT FFT (paper: 256 samples)
// ---------------------------------------------------------------------------

Workload make_fft(const SizeConfig& config) {
  const int n = config.fft_n;
  const auto fn = static_cast<std::uint32_t>(n);
  const std::uint32_t params_addr = kArrayBase;
  const std::uint32_t re_addr = params_addr + 64;
  const std::uint32_t im_addr = re_addr + 4 * fn;
  const std::uint32_t rev_addr = im_addr + 4 * fn;
  const std::uint32_t wre_addr = rev_addr + 4 * fn;
  const std::uint32_t wim_addr = wre_addr + 2 * fn;

  Workload w;
  w.name = "fft";
  w.description = "fast Fourier transform, " + std::to_string(n) + " samples";
  w.source = R"(# Iterative radix-2 DIT FFT with host-provided bit-reversal and
# twiddle tables (as a table-driven embedded DSP implementation would).
# $a0 = parameter block: 0:re 4:im 8:rev 12:wre 16:wim 20:n
        .text
fft:
        lw      $s0, 0($a0)
        lw      $s1, 4($a0)
        lw      $s2, 8($a0)
        lw      $s3, 12($a0)
        lw      $s4, 16($a0)
        lw      $s5, 20($a0)
        li      $t0, 0               # bit-reversal pass
brv:
        sll     $t1, $t0, 2
        add     $t2, $s2, $t1
        lw      $t3, 0($t2)          # partner = rev[i]
        slt     $at, $t0, $t3
        beq     $at, $zero, brv_next
        sll     $t4, $t3, 2
        add     $t5, $s0, $t1
        add     $t6, $s0, $t4
        lwc1    $f0, 0($t5)
        lwc1    $f1, 0($t6)
        swc1    $f1, 0($t5)
        swc1    $f0, 0($t6)
        add     $t5, $s1, $t1
        add     $t6, $s1, $t4
        lwc1    $f0, 0($t5)
        lwc1    $f1, 0($t6)
        swc1    $f1, 0($t5)
        swc1    $f0, 0($t6)
brv_next:
        addiu   $t0, $t0, 1
        bne     $t0, $s5, brv
        li      $s6, 2               # len
stage:
        srl     $t7, $s6, 1          # half
        divu    $s5, $s6
        mflo    $t8                  # twiddle stride n/len
        li      $t0, 0               # block start
blk:
        li      $t1, 0               # j within block
bfy:
        add     $t2, $t0, $t1        # idx1
        add     $t3, $t2, $t7        # idx2
        sll     $t5, $t3, 2
        add     $t6, $s0, $t5
        lwc1    $f0, 0($t6)          # re[idx2]
        add     $t6, $s1, $t5
        lwc1    $f1, 0($t6)          # im[idx2]
        beq     $t1, $zero, bfy_triv # w = 1 + 0i: skip the twiddle math
        mul     $t4, $t1, $t8
        sll     $t4, $t4, 2
        add     $t5, $s3, $t4
        lwc1    $f4, 0($t5)          # wr
        add     $t5, $s4, $t4
        lwc1    $f5, 0($t5)          # wi
        mul.s   $f2, $f0, $f4
        mul.s   $f3, $f1, $f5
        sub.s   $f2, $f2, $f3        # tr
        mul.s   $f3, $f0, $f5
        mul.s   $f6, $f1, $f4
        add.s   $f3, $f3, $f6        # ti
        b       bfy_merge
bfy_triv:
        mov.s   $f2, $f0             # tr = re[idx2]
        mov.s   $f3, $f1             # ti = im[idx2]
bfy_merge:
        sll     $t5, $t2, 2
        add     $t6, $s0, $t5
        lwc1    $f0, 0($t6)          # re[idx1]
        add     $t6, $s1, $t5
        lwc1    $f1, 0($t6)          # im[idx1]
        add.s   $f6, $f0, $f2
        add.s   $f7, $f1, $f3
        sub.s   $f8, $f0, $f2
        sub.s   $f9, $f1, $f3
        add     $t6, $s0, $t5
        swc1    $f6, 0($t6)
        add     $t6, $s1, $t5
        swc1    $f7, 0($t6)
        sll     $t5, $t3, 2
        add     $t6, $s0, $t5
        swc1    $f8, 0($t6)
        add     $t6, $s1, $t5
        swc1    $f9, 0($t6)
        addiu   $t1, $t1, 1
        bne     $t1, $t7, bfy
        add     $t0, $t0, $s6
        bne     $t0, $s5, blk
        sll     $s6, $s6, 1
        sll     $t5, $s5, 1
        bne     $s6, $t5, stage
        halt
)";
  w.init = [=](sim::Memory& memory, sim::CpuState& state) {
    const auto fcount = static_cast<std::size_t>(n);
    write_floats(memory, re_addr, random_floats(fcount, 0xFF7));
    write_floats(memory, im_addr, random_floats(fcount, 0xFF8));
    write_words(memory, rev_addr, fft_bit_reverse_table(n));
    std::vector<float> wre, wim;
    fft_twiddles(n, wre, wim);
    write_floats(memory, wre_addr, wre);
    write_floats(memory, wim_addr, wim);
    const std::uint32_t params[6] = {re_addr, im_addr, rev_addr,
                                     wre_addr, wim_addr, fn};
    write_words(memory, params_addr, params);
    state.r[isa::kA0] = params_addr;
  };
  w.check = [=](const sim::Memory& memory, std::string* error) {
    const auto fcount = static_cast<std::size_t>(n);
    std::vector<float> re = random_floats(fcount, 0xFF7);
    std::vector<float> im = random_floats(fcount, 0xFF8);
    ref_fft(n, re, im);
    // FFT output magnitudes grow with n; scale the tolerance accordingly.
    return compare_floats(re, read_floats(memory, re_addr, fcount), "re", error,
                          1e-2f) &&
           compare_floats(im, read_floats(memory, im_addr, fcount), "im", error,
                          1e-2f);
  };
  return w;
}

// ---------------------------------------------------------------------------
// tri: tridiagonal solver, Thomas algorithm (paper: 128x128 system)
// ---------------------------------------------------------------------------

Workload make_tri(const SizeConfig& config) {
  const int n = config.tri_n;
  const int reps = config.tri_reps;
  const auto fn = static_cast<std::uint32_t>(n);
  const std::uint32_t params_addr = kArrayBase;
  const std::uint32_t a_addr = params_addr + 64;
  const std::uint32_t b_addr = a_addr + 4 * fn;
  const std::uint32_t c_addr = b_addr + 4 * fn;
  const std::uint32_t d_addr = c_addr + 4 * fn;
  const std::uint32_t x_addr = d_addr + 4 * fn;
  const std::uint32_t sb_addr = x_addr + 4 * fn;
  const std::uint32_t sd_addr = sb_addr + 4 * fn;

  Workload w;
  w.name = "tri";
  w.description = "tridiagonal system solver (Thomas algorithm), n = " +
                  std::to_string(n) + ", " + std::to_string(reps) + " solves";
  w.source = R"(# Thomas algorithm on scratch copies so every repetition solves
# the same system (a steady-state DSP filtering pattern).
# $a0 = params: 0:a 4:b 8:c 12:d 16:x 20:sb 24:sd 28:n 32:reps
        .text
tri:
        lw      $s0, 0($a0)
        lw      $s1, 4($a0)
        lw      $s2, 8($a0)
        lw      $s3, 12($a0)
        lw      $s4, 16($a0)
        lw      $s5, 20($a0)
        lw      $s6, 24($a0)
        lw      $s7, 28($a0)
        lw      $t9, 32($a0)
        li      $t8, 0               # repetition counter
trep:
        li      $t0, 0               # copy b->sb, d->sd
tcopy:
        sll     $t1, $t0, 2
        add     $t2, $s1, $t1
        lwc1    $f0, 0($t2)
        add     $t2, $s5, $t1
        swc1    $f0, 0($t2)
        add     $t2, $s3, $t1
        lwc1    $f0, 0($t2)
        add     $t2, $s6, $t1
        swc1    $f0, 0($t2)
        addiu   $t0, $t0, 1
        bne     $t0, $s7, tcopy
        li      $t0, 1               # forward elimination
tfwd:
        sll     $t1, $t0, 2
        add     $t2, $s0, $t1
        lwc1    $f0, 0($t2)          # a[i]
        add     $t2, $s5, $t1
        lwc1    $f1, -4($t2)         # sb[i-1]
        div.s   $f2, $f0, $f1        # m
        add     $t3, $s2, $t1
        lwc1    $f3, -4($t3)         # c[i-1]
        mul.s   $f3, $f2, $f3
        lwc1    $f4, 0($t2)
        sub.s   $f4, $f4, $f3
        swc1    $f4, 0($t2)          # sb[i]
        add     $t3, $s6, $t1
        lwc1    $f5, -4($t3)         # sd[i-1]
        mul.s   $f5, $f2, $f5
        lwc1    $f6, 0($t3)
        sub.s   $f6, $f6, $f5
        swc1    $f6, 0($t3)          # sd[i]
        addiu   $t0, $t0, 1
        bne     $t0, $s7, tfwd
        addiu   $t0, $s7, -1         # back substitution
        sll     $t1, $t0, 2
        add     $t2, $s6, $t1
        lwc1    $f0, 0($t2)
        add     $t2, $s5, $t1
        lwc1    $f1, 0($t2)
        div.s   $f0, $f0, $f1
        add     $t2, $s4, $t1
        swc1    $f0, 0($t2)          # x[n-1]
        addiu   $t0, $t0, -1
tback:
        bltz    $t0, tdone
        sll     $t1, $t0, 2
        add     $t2, $s6, $t1
        lwc1    $f0, 0($t2)          # sd[i]
        add     $t3, $s2, $t1
        lwc1    $f1, 0($t3)          # c[i]
        add     $t2, $s4, $t1
        lwc1    $f2, 4($t2)          # x[i+1]
        mul.s   $f1, $f1, $f2
        sub.s   $f0, $f0, $f1
        add     $t3, $s5, $t1
        lwc1    $f3, 0($t3)          # sb[i]
        div.s   $f0, $f0, $f3
        swc1    $f0, 0($t2)          # x[i]
        addiu   $t0, $t0, -1
        b       tback
tdone:
        addiu   $t8, $t8, 1
        bne     $t8, $t9, trep
        halt
)";
  w.init = [=](sim::Memory& memory, sim::CpuState& state) {
    const auto fcount = static_cast<std::size_t>(n);
    const std::vector<float> sub = random_floats(fcount, 0x77);
    const std::vector<float> sup = random_floats(fcount, 0x78);
    const std::vector<float> rhs = random_floats(fcount, 0x79);
    std::vector<float> diag(fcount);
    for (std::size_t i = 0; i < fcount; ++i) diag[i] = 2.0f + sub[i] + sup[i];
    write_floats(memory, a_addr, sub);
    write_floats(memory, b_addr, diag);
    write_floats(memory, c_addr, sup);
    write_floats(memory, d_addr, rhs);
    const std::uint32_t params[9] = {a_addr,  b_addr,  c_addr,
                                     d_addr,  x_addr,  sb_addr,
                                     sd_addr, fn,      static_cast<std::uint32_t>(reps)};
    write_words(memory, params_addr, params);
    state.r[isa::kA0] = params_addr;
  };
  w.check = [=](const sim::Memory& memory, std::string* error) {
    const auto fcount = static_cast<std::size_t>(n);
    const std::vector<float> sub = random_floats(fcount, 0x77);
    const std::vector<float> sup = random_floats(fcount, 0x78);
    const std::vector<float> rhs = random_floats(fcount, 0x79);
    std::vector<float> diag(fcount);
    for (std::size_t i = 0; i < fcount; ++i) diag[i] = 2.0f + sub[i] + sup[i];
    std::vector<float> expected;
    ref_tri(n, sub, diag, sup, rhs, expected);
    return compare_floats(expected, read_floats(memory, x_addr, fcount), "x", error);
  };
  return w;
}

// ---------------------------------------------------------------------------
// lu: Doolittle LU decomposition, no pivoting (paper: 128x128)
// ---------------------------------------------------------------------------

Workload make_lu(const SizeConfig& config) {
  const int n = config.lu_n;
  const auto count = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  const std::uint32_t m_addr = kArrayBase;

  Workload w;
  w.name = "lu";
  w.description = "LU decomposition, " + std::to_string(n) + "x" + std::to_string(n);
  w.source = R"(# In-place Doolittle LU without pivoting (inputs are made
# diagonally dominant by the host).
# $a0 = A, $a1 = n
        .text
lu:
        li      $t0, 0               # k
lu_k:
        mul     $t1, $t0, $a1
        add     $t1, $t1, $t0
        sll     $t1, $t1, 2
        add     $t1, $a0, $t1
        lwc1    $f0, 0($t1)          # pivot
        addiu   $t2, $t0, 1          # i
lu_i:
        beq     $t2, $a1, lu_knext
        mul     $t3, $t2, $a1
        add     $t4, $t3, $t0
        sll     $t4, $t4, 2
        add     $t4, $a0, $t4
        lwc1    $f1, 0($t4)
        div.s   $f1, $f1, $f0        # multiplier
        swc1    $f1, 0($t4)
        addiu   $t5, $t0, 1          # j
        add     $t6, $t3, $t5
        sll     $t6, $t6, 2
        add     $t6, $a0, $t6        # &A[i][j]
        mul     $t7, $t0, $a1
        add     $t8, $t7, $t5
        sll     $t8, $t8, 2
        add     $t8, $a0, $t8        # &A[k][j]
lu_j:
        beq     $t5, $a1, lu_inext
        lwc1    $f2, 0($t8)
        mul.s   $f3, $f1, $f2
        lwc1    $f4, 0($t6)
        sub.s   $f4, $f4, $f3
        swc1    $f4, 0($t6)
        addiu   $t5, $t5, 1
        addiu   $t6, $t6, 4
        addiu   $t8, $t8, 4
        b       lu_j
lu_inext:
        addiu   $t2, $t2, 1
        b       lu_i
lu_knext:
        addiu   $t0, $t0, 1
        bne     $t0, $a1, lu_k
        halt
)";
  w.init = [=](sim::Memory& memory, sim::CpuState& state) {
    std::vector<float> matrix = random_floats(count, 0x1C);
    for (int i = 0; i < n; ++i) {
      matrix[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(i)] +=
          static_cast<float>(n);
    }
    write_floats(memory, m_addr, matrix);
    state.r[isa::kA0] = m_addr;
    state.r[isa::kA1] = static_cast<std::uint32_t>(n);
  };
  w.check = [=](const sim::Memory& memory, std::string* error) {
    std::vector<float> expected = random_floats(count, 0x1C);
    for (int i = 0; i < n; ++i) {
      expected[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(i)] +=
          static_cast<float>(n);
    }
    ref_lu(n, expected);
    return compare_floats(expected, read_floats(memory, m_addr, count), "A", error);
  };
  return w;
}

std::vector<Workload> make_all(const SizeConfig& config) {
  return {make_mmul(config), make_sor(config), make_ej(config),
          make_fft(config), make_tri(config),  make_lu(config)};
}

Workload make_by_name(const std::string& name, const SizeConfig& config) {
  if (name == "mmul") return make_mmul(config);
  if (name == "sor") return make_sor(config);
  if (name == "ej") return make_ej(config);
  if (name == "fft") return make_fft(config);
  if (name == "tri") return make_tri(config);
  if (name == "lu") return make_lu(config);
  if (name == "fir") return make_fir(config);
  if (name == "crc32") return make_crc32(config);
  if (name == "dct") return make_dct(config);
  if (name == "hist") return make_histogram(config);
  throw std::out_of_range("unknown workload: " + name);
}

}  // namespace asimt::workloads
