// The sharded content-addressed LRU cache: eviction order, shard
// distribution, stats accounting, and thread-safety under concurrent
// hammering (this file runs in the TSan CI lane).
#include "serve/cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace asimt::serve {
namespace {

CacheKey key_of(std::uint64_t content, int k = 5, std::uint8_t set = 0,
                std::uint8_t strategy = 0, std::uint8_t op = 1) {
  CacheKey key;
  key.content_hash = content;
  key.k = k;
  key.transform_set = set;
  key.strategy = strategy;
  key.op = op;
  return key;
}

TEST(ShardedCache, MissThenHitReturnsInsertedPayload) {
  ShardedCache cache(16, 1);
  EXPECT_EQ(cache.lookup(key_of(1)), nullptr);
  cache.insert(key_of(1), "payload-1");
  const auto hit = cache.lookup(key_of(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "payload-1");
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ShardedCache, KeyIncludesEveryParameter) {
  ShardedCache cache(64, 1);
  cache.insert(key_of(1, 5, 0, 0, 1), "base");
  EXPECT_EQ(cache.lookup(key_of(1, 6, 0, 0, 1)), nullptr);  // k differs
  EXPECT_EQ(cache.lookup(key_of(1, 5, 1, 0, 1)), nullptr);  // set differs
  EXPECT_EQ(cache.lookup(key_of(1, 5, 0, 1, 1)), nullptr);  // strategy differs
  EXPECT_EQ(cache.lookup(key_of(1, 5, 0, 0, 2)), nullptr);  // op differs
  EXPECT_EQ(cache.lookup(key_of(2, 5, 0, 0, 1)), nullptr);  // content differs
  ASSERT_NE(cache.lookup(key_of(1, 5, 0, 0, 1)), nullptr);
}

TEST(ShardedCache, EvictsLeastRecentlyUsedFirst) {
  // Single shard, capacity 3: inserting a 4th entry evicts the LRU one.
  ShardedCache cache(3, 1);
  cache.insert(key_of(1), "a");
  cache.insert(key_of(2), "b");
  cache.insert(key_of(3), "c");
  // Touch 1 so 2 becomes least recently used.
  ASSERT_NE(cache.lookup(key_of(1)), nullptr);
  cache.insert(key_of(4), "d");
  EXPECT_NE(cache.lookup(key_of(1)), nullptr);
  EXPECT_EQ(cache.lookup(key_of(2)), nullptr);  // evicted
  EXPECT_NE(cache.lookup(key_of(3)), nullptr);
  EXPECT_NE(cache.lookup(key_of(4)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(ShardedCache, EvictionIsPerShardInOrder) {
  ShardedCache cache(8, 1);
  for (std::uint64_t i = 0; i < 8; ++i) {
    std::string payload = "v";
    payload += std::to_string(i);
    cache.insert(key_of(i), std::move(payload));
  }
  // Two more evict exactly the two oldest untouched entries, in LRU order.
  cache.insert(key_of(100), "x");
  EXPECT_EQ(cache.lookup(key_of(0)), nullptr);
  cache.insert(key_of(101), "y");
  EXPECT_EQ(cache.lookup(key_of(1)), nullptr);
  EXPECT_NE(cache.lookup(key_of(2)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(ShardedCache, InsertRaceKeepsFirstPayload) {
  ShardedCache cache(16, 1);
  const auto first = cache.insert(key_of(7), "first");
  const auto second = cache.insert(key_of(7), "second");
  // The loser of the race is handed the resident payload so every caller
  // replies with identical bytes.
  EXPECT_EQ(*first, "first");
  EXPECT_EQ(*second, "first");
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ShardedCache, ShardCountRoundsToPowerOfTwo) {
  EXPECT_EQ(ShardedCache(64, 1).shard_count(), 1u);
  EXPECT_EQ(ShardedCache(64, 3).shard_count(), 4u);
  EXPECT_EQ(ShardedCache(64, 16).shard_count(), 16u);
  EXPECT_EQ(ShardedCache(64, 300).shard_count(), 256u);
}

TEST(ShardedCache, ContentHashesSpreadAcrossShards) {
  // Sequential content hashes (the realistic pattern: FNV digests are
  // pseudorandom, but even adversarially regular keys must spread) should
  // touch every shard of a 16-shard cache well before 4096 keys.
  ShardedCache cache(4096, 16);
  std::set<unsigned> seen;
  for (std::uint64_t i = 0; i < 4096 && seen.size() < 16; ++i) {
    seen.insert(cache.shard_of(key_of(i * 0x9E3779B97F4A7C15ull)));
  }
  EXPECT_EQ(seen.size(), 16u);
  // And no shard hogs the distribution: with 4096 pseudorandom keys each of
  // 16 shards expects 256; allow a generous 3x band.
  std::vector<int> counts(16, 0);
  for (std::uint64_t i = 0; i < 4096; ++i) {
    ++counts[cache.shard_of(key_of(i * 0x9E3779B97F4A7C15ull))];
  }
  for (const int count : counts) {
    EXPECT_GT(count, 256 / 3);
    EXPECT_LT(count, 256 * 3);
  }
}

TEST(ShardedCache, PayloadSurvivesEviction) {
  ShardedCache cache(1, 1);
  const auto payload = cache.insert(key_of(1), "keep-me");
  cache.insert(key_of(2), "evictor");
  EXPECT_EQ(cache.lookup(key_of(1)), nullptr);
  // The shared_ptr handed out before the eviction still owns the bytes.
  EXPECT_EQ(*payload, "keep-me");
}

TEST(ShardedCache, ConcurrentHammeringIsSafeAndConverges) {
  // 8 threads × mixed lookup/insert over a key space larger than capacity:
  // exercises eviction under contention. TSan (CI lane) checks the locking;
  // the assertions check the accounting stays coherent.
  ShardedCache cache(64, 4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      std::uint64_t state = 0x1234 + static_cast<std::uint64_t>(t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t content = (state >> 33) % 256;
        const CacheKey key = key_of(content);
        std::string canonical = "v";
        canonical += std::to_string(content);
        if (const auto hit = cache.lookup(key)) {
          // Payload must always be the canonical bytes for this key.
          EXPECT_EQ(*hit, canonical);
        } else {
          cache.insert(key, std::move(canonical));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(stats.entries, 64u);
  EXPECT_EQ(stats.entries, stats.insertions - stats.evictions);
}

TEST(ShardedCache, StatsSnapshotsAreConsistentUnderConcurrentLoad) {
  // The `stats`/`metrics` ops promise hits + misses == lookups in every
  // snapshot, not just at quiescence. A reader races the writers and checks
  // the invariant on every read; relaxed free-running counters would fail
  // this (and TSan, which runs this suite in CI, would flag the old ones).
  ShardedCache cache(32, 4);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20'000;
  std::atomic<bool> done{false};
  std::thread reader([&cache, &done] {
    while (!done.load(std::memory_order_acquire)) {
      const CacheStats stats = cache.stats();
      ASSERT_EQ(stats.lookups, stats.hits + stats.misses);
      ASSERT_EQ(stats.entries, stats.insertions - stats.evictions);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&cache, t] {
      std::uint64_t state = 0x9e37 + static_cast<std::uint64_t>(t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const CacheKey key = key_of((state >> 33) % 512);
        if (cache.lookup(key) == nullptr) cache.insert(key, "payload");
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  done.store(true, std::memory_order_release);
  reader.join();
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
}

}  // namespace
}  // namespace asimt::serve
