// Failing-input minimization (delta debugging, ddmin-style).
//
// Given a case its oracle rejects, the shrinker greedily applies
// size-reducing edits (drop chunks of the input, lower k, simplify values,
// canonicalize the transform set) and keeps any edit under which the oracle
// STILL fails, until no edit helps. The result is the small reproducer that
// gets dumped as a ctest-replayable case file — a one-screen bug report
// instead of a 96-bit haystack.
#pragma once

#include <string>

#include "check/fuzz_case.h"
#include "check/oracles.h"

namespace asimt::check {

struct ShrinkResult {
  FuzzCase reduced;        // smallest failing case found
  std::string failure;     // the reduced case's failure message
  int accepted_edits = 0;  // size-reducing edits that kept the case failing
};

// Minimizes `failing` (which must fail under `hooks`; if it does not, the
// input is returned unchanged with an empty failure). Deterministic: edit
// order is fixed, so the same input always shrinks to the same reproducer.
ShrinkResult shrink_case(const FuzzCase& failing, const OracleHooks& hooks = {});

}  // namespace asimt::check
