// A4 — prior-work comparison (§2): general-purpose Bus-Invert coding vs the
// application-specific ASIMT encoding on identical instruction fetch
// streams, plus the address-bus codes (T0, Gray) to show the two bus sides
// are orthogonal.
#include <cstdio>

#include "baselines/bus_codes.h"
#include "experiments/experiment.h"
#include "isa/assembler.h"
#include "sim/cpu.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt;
  const workloads::SizeConfig sizes = workloads::SizeConfig::small();

  std::printf("instruction DATA bus: reduction %% vs unencoded binary\n");
  std::printf("%-6s %14s %14s\n", "bench", "bus-invert", "asimt k=5");
  for (const workloads::Workload& w : workloads::make_all(sizes)) {
    experiments::ExperimentOptions opt;
    opt.block_sizes = {5};
    const auto r = experiments::run_workload(w, opt);
    std::printf("%-6s %13.1f%% %13.1f%%\n", w.name.c_str(),
                100.0 * static_cast<double>(r.baseline_transitions - r.bus_invert_transitions) /
                    static_cast<double>(r.baseline_transitions),
                r.per_block_size[0].reduction_percent);
  }

  std::printf("\ninstruction ADDRESS bus (orthogonal to ASIMT): transitions\n");
  std::printf("%-6s %14s %14s %14s\n", "bench", "binary", "gray", "t0");
  for (const workloads::Workload& w : workloads::make_all(sizes)) {
    const isa::Program program = isa::assemble(w.source);
    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    w.init(memory, cpu.state());
    baselines::BinaryAddressMonitor binary;
    baselines::GrayAddressMonitor gray;
    baselines::T0AddressMonitor t0(4);
    cpu.run(50'000'000, [&](std::uint32_t pc, std::uint32_t) {
      binary.observe(pc);
      gray.observe(pc);
      t0.observe(pc);
    });
    std::printf("%-6s %14lld %14lld %14lld\n", w.name.c_str(),
                binary.transitions(), gray.transitions(), t0.transitions());
  }
  std::printf(
      "\npaper §2 reproduced: the general Bus-Invert code leaves most of the\n"
      "application-specific savings on the table; T0 nearly zeroes the\n"
      "address bus on sequential fetch and composes with ASIMT's data-bus\n"
      "encoding.\n");
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("ablation_businvert")
