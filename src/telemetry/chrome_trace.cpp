#include "telemetry/chrome_trace.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

namespace asimt::telemetry {

namespace {

long long tid_of(const json::Value& event) {
  const json::Value* tid = event.find("tid");
  return tid == nullptr ? 0 : tid->as_int();
}

json::Value base_event(const json::Value& src, const char* phase) {
  json::Value out = json::Value::object();
  out.set("name", src.at("name").as_string());
  out.set("ph", phase);
  out.set("pid", 1);
  out.set("tid", tid_of(src));
  out.set("ts", src.at("t_us").as_int());
  return out;
}

}  // namespace

json::Value chrome_trace_from_events(const std::vector<json::Value>& events) {
  json::Value trace_events = json::Value::array();
  std::set<long long> tids;

  for (const json::Value& event : events) {
    const json::Value* ev = event.find("ev");
    if (ev == nullptr) {
      throw std::runtime_error("chrome_trace: trace line without an 'ev' field");
    }
    const std::string& kind = ev->as_string();
    if (kind == "begin") {
      tids.insert(tid_of(event));
      trace_events.push_back(base_event(event, "B"));
    } else if (kind == "end") {
      tids.insert(tid_of(event));
      trace_events.push_back(base_event(event, "E"));
    } else if (kind == "instant") {
      tids.insert(tid_of(event));
      json::Value out = base_event(event, "i");
      out.set("s", "t");  // thread-scoped instant
      // Extra string fields of the JSONL instant become Chrome args.
      json::Value args = json::Value::object();
      for (const auto& [key, value] : event.as_object()) {
        if (key == "ev" || key == "name" || key == "t_us" || key == "tid" ||
            key == "depth") {
          continue;
        }
        args.set(key, value);
      }
      if (!args.as_object().empty()) out.set("args", std::move(args));
      trace_events.push_back(std::move(out));
    }
    // Other kinds (future schema growth) are skipped, not errors.
  }

  // Metadata events so the timeline rows are labeled: tid 0 is the first
  // thread that traced (the main thread in every current producer).
  json::Value doc_events = json::Value::array();
  {
    json::Value proc = json::Value::object();
    proc.set("name", "process_name");
    proc.set("ph", "M");
    proc.set("pid", 1);
    json::Value args = json::Value::object();
    args.set("name", "asimt");
    proc.set("args", std::move(args));
    doc_events.push_back(std::move(proc));
  }
  for (const long long tid : tids) {
    json::Value meta = json::Value::object();
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", 1);
    meta.set("tid", tid);
    json::Value args = json::Value::object();
    args.set("name", tid == 0 ? std::string("main")
                              : "worker-" + std::to_string(tid));
    meta.set("args", std::move(args));
    doc_events.push_back(std::move(meta));
  }
  for (json::Value& event : trace_events.as_array()) {
    doc_events.push_back(std::move(event));
  }

  json::Value doc = json::Value::object();
  doc.set("traceEvents", std::move(doc_events));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

json::Value chrome_trace_from_jsonl(std::string_view jsonl) {
  return chrome_trace_from_events(json::parse_lines(jsonl));
}

}  // namespace asimt::telemetry
