// Tests for the JSONL phase trace: event schema, nested span ordering and
// depths, durations, and the no-writer/disabled fast path.
#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace asimt::telemetry {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    MetricsRegistry::global().reset();
    set_trace_stream(&out_);
  }
  void TearDown() override {
    set_trace_stream(nullptr);
    set_enabled(false);
    MetricsRegistry::global().reset();
  }

  std::vector<json::Value> events() { return json::parse_lines(out_.str()); }

  std::ostringstream out_;
};

TEST_F(TraceTest, NestedSpansEmitOrderedBeginEndPairs) {
  {
    TracePhase outer("outer");
    {
      TracePhase inner("inner");
    }
    TracePhase sibling("sibling");
  }
  const auto ev = events();
  ASSERT_EQ(ev.size(), 6u);
  // Stream order rebuilds the tree: begin outer, begin inner, end inner,
  // begin sibling, end sibling, end outer.
  EXPECT_EQ(ev[0].at("ev").as_string(), "begin");
  EXPECT_EQ(ev[0].at("name").as_string(), "outer");
  EXPECT_EQ(ev[0].at("depth").as_int(), 0);
  EXPECT_EQ(ev[1].at("name").as_string(), "inner");
  EXPECT_EQ(ev[1].at("depth").as_int(), 1);
  EXPECT_EQ(ev[2].at("ev").as_string(), "end");
  EXPECT_EQ(ev[2].at("name").as_string(), "inner");
  EXPECT_EQ(ev[3].at("name").as_string(), "sibling");
  EXPECT_EQ(ev[3].at("depth").as_int(), 1);
  EXPECT_EQ(ev[4].at("ev").as_string(), "end");
  EXPECT_EQ(ev[5].at("ev").as_string(), "end");
  EXPECT_EQ(ev[5].at("name").as_string(), "outer");
  EXPECT_EQ(ev[5].at("depth").as_int(), 0);
}

TEST_F(TraceTest, TimestampsAndDurationsAreConsistent) {
  {
    TracePhase outer("outer");
    TracePhase inner("inner");
  }
  const auto ev = events();
  ASSERT_EQ(ev.size(), 4u);
  for (const auto& e : ev) {
    EXPECT_GE(e.at("t_us").as_int(), 0);
    if (e.at("ev").as_string() == "end") {
      EXPECT_GE(e.at("dur_us").as_int(), 0);
    }
  }
  // The outer span covers the inner one.
  EXPECT_LE(ev[0].at("t_us").as_int(), ev[1].at("t_us").as_int());
  EXPECT_GE(ev[3].at("dur_us").as_int(), ev[2].at("dur_us").as_int());
}

TEST_F(TraceTest, InstantEventsCarryFields) {
  trace_instant("note", {{"key", "value with \"quotes\""}});
  const auto ev = events();
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].at("ev").as_string(), "instant");
  EXPECT_EQ(ev[0].at("name").as_string(), "note");
  EXPECT_EQ(ev[0].at("key").as_string(), "value with \"quotes\"");
}

TEST_F(TraceTest, SpansFeedPhaseHistogramsWhenEnabled) {
  set_enabled(true);
  {
    TracePhase phase("encode");
  }
  const auto snap = MetricsRegistry::global().snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "phase.encode.us");
  EXPECT_EQ(snap.histograms[0].count, 1u);
}

TEST_F(TraceTest, NoWriterAndDisabledIsANoOp) {
  set_trace_stream(nullptr);
  {
    TracePhase phase("ghost");
    ScopedTimer timer("ghost.us");
  }
  EXPECT_TRUE(out_.str().empty());
  EXPECT_TRUE(MetricsRegistry::global().snapshot().empty());
}

TEST_F(TraceTest, ScopedTimerRecordsDurations) {
  set_enabled(true);
  {
    ScopedTimer timer("op.us");
  }
  {
    ScopedTimer timer("op.us");
  }
  const auto snap = MetricsRegistry::global().snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "op.us");
  EXPECT_EQ(snap.histograms[0].count, 2u);
  EXPECT_GE(snap.histograms[0].min, 0.0);
}

}  // namespace
}  // namespace asimt::telemetry
