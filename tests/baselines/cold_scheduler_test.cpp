// Cold-scheduling tests: transition reduction, dependence preservation, and
// — the strong form — bit-exact workload results when the entire scheduled
// program executes.
#include "baselines/cold_scheduler.h"

#include <gtest/gtest.h>

#include <set>

#include "isa/assembler.h"
#include "sim/cpu.h"
#include "workloads/workload.h"

namespace asimt::baselines {
namespace {

std::vector<std::uint32_t> assemble_words(const std::string& text) {
  return isa::assemble(text).text;
}

TEST(ColdScheduler, KeepsWordMultiset) {
  const auto words = assemble_words(R"(
        addu    $t0, $s0, $s1
        lui     $t1, 0x1234
        xor     $t2, $s2, $s3
        sll     $t3, $s4, 5
)");
  const ColdScheduleResult result = cold_schedule_block(words);
  EXPECT_EQ(std::multiset<std::uint32_t>(words.begin(), words.end()),
            std::multiset<std::uint32_t>(result.words.begin(), result.words.end()));
}

TEST(ColdScheduler, NeverIncreasesTransitionsMuch) {
  // Greedy scheduling has no optimality guarantee, but the first-slot rule
  // and tie-breaks keep it from losing on typical code.
  const auto words = assemble_words(R"(
        addu    $t0, $s0, $s1
        lui     $t1, 0x7FFF
        addu    $t2, $s2, $s3
        lui     $t3, 0x7FFF
        addu    $t4, $s4, $s5
)");
  const ColdScheduleResult result = cold_schedule_block(words);
  EXPECT_LE(result.scheduled_transitions, result.original_transitions);
}

TEST(ColdScheduler, GroupsSimilarInstructions) {
  // Two interleaved families (addu vs lui) should end up clustered.
  const auto words = assemble_words(R"(
        addu    $t0, $s0, $s1
        lui     $t1, 0x1111
        addu    $t2, $s2, $s3
        lui     $t3, 0x1111
)");
  const ColdScheduleResult result = cold_schedule_block(words);
  EXPECT_LT(result.scheduled_transitions, result.original_transitions);
}

TEST(ColdScheduler, RespectsRawDependence) {
  const auto words = assemble_words(R"(
        lui     $t0, 0x1234
        addiu   $t1, $t0, 1
        lui     $t2, 0x1234
)");
  const ColdScheduleResult result = cold_schedule_block(words);
  // addiu must stay after the first lui.
  std::size_t lui_pos = 0, addiu_pos = 0;
  for (std::size_t i = 0; i < result.words.size(); ++i) {
    if (result.words[i] == words[0]) lui_pos = i;
    if (result.words[i] == words[1]) addiu_pos = i;
  }
  EXPECT_LT(lui_pos, addiu_pos);
}

TEST(ColdScheduler, ControlStaysLast) {
  const auto words = assemble_words(R"(
loop:   addu    $t0, $s0, $s1
        xor     $t1, $s2, $s3
        bne     $t0, $zero, loop
)");
  const ColdScheduleResult result = cold_schedule_block(words);
  EXPECT_EQ(result.words.back(), words.back());
}

TEST(ColdScheduler, TinyBlocksPassThrough) {
  const auto words = assemble_words("addu $t0, $s0, $s1\nhalt\n");
  const ColdScheduleResult result = cold_schedule_block(words);
  EXPECT_EQ(result.words, words);
}

// The decisive test: every workload still computes the right answer after
// its whole text is cold-scheduled.
class ColdSchedulePreservationTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ColdSchedulePreservationTest, WorkloadResultsUnchanged) {
  const workloads::Workload w =
      workloads::make_by_name(GetParam(), workloads::SizeConfig::small());
  isa::Program program = isa::assemble(w.source);
  const cfg::Cfg cfg = cfg::build_cfg(program);
  program.text = cold_schedule_program(cfg);  // run the REORDERED program

  sim::Memory memory;
  memory.load_program(program);
  sim::Cpu cpu(memory);
  cpu.state().pc = program.entry();
  w.init(memory, cpu.state());
  cpu.run(w.max_steps);
  ASSERT_TRUE(cpu.state().halted) << w.name;
  std::string error;
  EXPECT_TRUE(w.check(memory, &error)) << w.name << ": " << error;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ColdSchedulePreservationTest,
                         ::testing::Values("mmul", "sor", "ej", "fft", "tri",
                                           "lu", "fir", "crc32", "dct",
                                           "hist"),
                         [](const auto& info) { return info.param; });

TEST(ColdScheduler, ProgramImageKeepsBlockBoundaries) {
  const workloads::Workload w =
      workloads::make_by_name("fft", workloads::SizeConfig::small());
  const isa::Program program = isa::assemble(w.source);
  const cfg::Cfg cfg = cfg::build_cfg(program);
  const auto image = cold_schedule_program(cfg);
  ASSERT_EQ(image.size(), cfg.text.size());
  // Per block, the words are a permutation of the originals.
  for (const cfg::BasicBlock& block : cfg.blocks) {
    const std::size_t first = (block.start - cfg.text_base) / 4;
    std::multiset<std::uint32_t> before, after;
    for (std::size_t i = 0; i < block.instruction_count(); ++i) {
      before.insert(cfg.text[first + i]);
      after.insert(image[first + i]);
    }
    EXPECT_EQ(before, after) << "block at " << block.start;
  }
}

}  // namespace
}  // namespace asimt::baselines
