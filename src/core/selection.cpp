#include "core/selection.h"

#include <algorithm>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace asimt::core {

std::vector<std::uint32_t> SelectionResult::apply_to_text(
    std::span<const std::uint32_t> original_text,
    std::uint32_t text_base) const {
  std::vector<std::uint32_t> image(original_text.begin(), original_text.end());
  for (const BlockEncoding& enc : encodings) {
    const std::size_t first = (enc.start_pc - text_base) / 4;
    for (std::size_t i = 0; i < enc.encoded_words.size(); ++i) {
      image[first + i] = enc.encoded_words[i];
    }
  }
  return image;
}

SelectionResult select_and_encode(const cfg::Cfg& cfg,
                                  const cfg::Profile& profile,
                                  const SelectionOptions& options) {
  struct Candidate {
    BlockEncoding encoding;
    int cost = 0;           // TT entries
    long long benefit = 0;  // saved transitions x executions
  };

  std::vector<Candidate> candidates;
  {
    telemetry::TracePhase phase("encode");
    for (const cfg::BasicBlock& block : cfg.blocks) {
      const std::uint64_t count =
          profile.block_counts[static_cast<std::size_t>(block.index)];
      if (count < options.min_executions) continue;
      if (block.instruction_count() < 2) continue;  // nothing vertical to encode
      Candidate c;
      c.encoding = encode_basic_block(cfg.block_words(block), block.start,
                                      options.chain);
      c.cost = tt_entries_for(block.instruction_count(), options.chain.block_size);
      c.benefit = c.encoding.saved_transitions() * static_cast<long long>(count);
      if (c.benefit <= 0) continue;
      candidates.push_back(std::move(c));
    }
  }
  telemetry::TracePhase select_phase("select");
  telemetry::count("selection.candidates",
                   static_cast<long long>(candidates.size()));

  if (options.policy == SelectionPolicy::kGreedyDensity) {
    // Highest benefit per TT entry first; ties broken by address for
    // determinism.
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                const auto lhs = static_cast<double>(a.benefit) / a.cost;
                const auto rhs = static_cast<double>(b.benefit) / b.cost;
                if (lhs != rhs) return lhs > rhs;
                return a.encoding.start_pc < b.encoding.start_pc;
              });
  } else {
    // Exact 0/1 knapsack over TT entries (budgets are tiny, so the DP is
    // cheap); the BBIT budget is handled by a second DP dimension.
    const int w_max = std::max(options.tt_budget, 0);
    const int n_max = std::max(options.bbit_budget, 0);
    // value[w][n]: best total benefit with w entries and n blocks used.
    std::vector<std::vector<long long>> value(
        static_cast<std::size_t>(w_max) + 1,
        std::vector<long long>(static_cast<std::size_t>(n_max) + 1, 0));
    std::vector<std::vector<std::vector<bool>>> take(
        candidates.size(),
        std::vector<std::vector<bool>>(
            static_cast<std::size_t>(w_max) + 1,
            std::vector<bool>(static_cast<std::size_t>(n_max) + 1, false)));
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const Candidate& c = candidates[i];
      for (int w = w_max; w >= c.cost; --w) {
        for (int n = n_max; n >= 1; --n) {
          const long long with =
              value[static_cast<std::size_t>(w - c.cost)]
                   [static_cast<std::size_t>(n - 1)] + c.benefit;
          auto& cell = value[static_cast<std::size_t>(w)][static_cast<std::size_t>(n)];
          if (with > cell) {
            cell = with;
            take[i][static_cast<std::size_t>(w)][static_cast<std::size_t>(n)] = true;
          }
        }
      }
    }
    // Backtrack and keep only the chosen candidates (address order).
    std::vector<Candidate> chosen;
    int w = w_max, n = n_max;
    for (std::size_t i = candidates.size(); i-- > 0;) {
      if (take[i][static_cast<std::size_t>(w)][static_cast<std::size_t>(n)]) {
        w -= candidates[i].cost;
        --n;
        chosen.push_back(std::move(candidates[i]));
      }
    }
    std::sort(chosen.begin(), chosen.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.encoding.start_pc < b.encoding.start_pc;
              });
    candidates = std::move(chosen);
  }

  SelectionResult result;
  result.tt.block_size = options.chain.block_size;
  for (Candidate& c : candidates) {
    if (result.tt_entries_used + c.cost > options.tt_budget) continue;
    if (static_cast<int>(result.bbit.size()) >= options.bbit_budget) break;
    BbitEntry bbit;
    bbit.pc = c.encoding.start_pc;
    bbit.tt_index = static_cast<std::uint16_t>(result.tt.entries.size());
    result.bbit.push_back(bbit);
    result.tt.entries.insert(result.tt.entries.end(),
                             c.encoding.tt_entries.begin(),
                             c.encoding.tt_entries.end());
    result.tt_entries_used += c.cost;
    result.predicted_dynamic_savings += c.benefit;
    result.encodings.push_back(std::move(c.encoding));
  }
  if (telemetry::enabled()) {
    telemetry::count("selection.blocks_selected",
                     static_cast<long long>(result.encodings.size()));
    telemetry::count("selection.tt_entries_used", result.tt_entries_used);
    telemetry::count("selection.predicted_dynamic_savings",
                     result.predicted_dynamic_savings);
  }
  return result;
}

}  // namespace asimt::core
