// Campaign-level resilience tests: determinism across thread counts, the
// paper-structure containment theorem, and the protection-mode guarantees.
#include <gtest/gtest.h>

#include "fault/campaign.h"
#include "fault/fault.h"
#include "parallel/pool.h"
#include "sim/decoder_port.h"

namespace asimt::fault {
namespace {

class JobsGuard {
 public:
  explicit JobsGuard(unsigned n) : saved_(parallel::default_jobs()) {
    parallel::set_default_jobs(n);
  }
  ~JobsGuard() { parallel::set_default_jobs(saved_); }

 private:
  unsigned saved_;
};

TEST(FaultCampaign, RunIterationIsAPureFunctionOfSeedAndIndex) {
  CampaignOptions options;
  options.seed = 42;
  for (std::uint64_t i : {0ull, 1ull, 17ull, 100ull}) {
    const IterationResult a = run_iteration(options, i);
    const IterationResult b = run_iteration(options, i);
    EXPECT_EQ(a.target, b.target);
    EXPECT_EQ(a.flips, b.flips);
    EXPECT_EQ(a.words, b.words);
    EXPECT_EQ(a.corrupted_words, b.corrupted_words);
    EXPECT_EQ(a.hamming, b.hamming);
    EXPECT_EQ(a.extra_transitions, b.extra_transitions);
    EXPECT_EQ(a.line_corrupted, b.line_corrupted);
  }
}

TEST(FaultCampaign, ReportIsByteIdenticalAcrossJobCounts) {
  CampaignOptions options;
  options.seed = 7;
  options.iters = 256;
  std::string serial, fanned;
  {
    JobsGuard jobs(1);
    serial = to_json(run_campaign(options)).dump(2);
  }
  {
    JobsGuard jobs(8);
    fanned = to_json(run_campaign(options)).dump(2);
  }
  EXPECT_EQ(serial, fanned);
}

TEST(FaultCampaign, RoundRobinTargetSplitIsExact) {
  CampaignOptions options;
  options.seed = 3;
  options.iters = 10;  // 4 targets: splits 3/3/2/2 regardless of threads
  const CampaignReport report = run_campaign(options);
  ASSERT_EQ(report.per_target.size(), 4u);
  EXPECT_EQ(report.per_target[0].runs, 3u);
  EXPECT_EQ(report.per_target[1].runs, 3u);
  EXPECT_EQ(report.per_target[2].runs, 2u);
  EXPECT_EQ(report.per_target[3].runs, 2u);
  EXPECT_EQ(report.iters_completed, 10u);
  EXPECT_FALSE(report.timed_out);
}

TEST(FaultCampaign, RejectsBadOptions) {
  CampaignOptions options;
  options.targets.clear();
  EXPECT_THROW(run_campaign(options), std::invalid_argument);
  options.targets = {Target::kTt};
  options.rate = 1.5;
  EXPECT_THROW(run_campaign(options), std::invalid_argument);
}

TEST(FaultCampaign, RateModeInjectsMultipleFlips) {
  CampaignOptions options;
  options.seed = 11;
  options.iters = 64;
  options.rate = 0.02;
  const CampaignReport report = run_campaign(options);
  std::uint64_t flips = 0, runs = 0;
  for (const TargetStats& s : report.per_target) {
    flips += s.flips;
    runs += s.runs;
  }
  EXPECT_EQ(runs, 64u);
  EXPECT_GT(flips, runs);  // a 2% Bernoulli over hundreds of sites per run
}

// --- the containment theorem ------------------------------------------------
// A single flipped τ-index bit or history flip-flop corrupts at most the one
// k-bit block it belongs to, on the lines it touches: history is reloaded
// from the RAW bus word at every block boundary, so nothing leaks across.
TEST(Resilience, SingleTauOrHistoryFaultStaysInItsBlock) {
  CampaignOptions options;
  options.seed = 101;
  options.targets = {Target::kTt, Target::kHistory};
  for (std::uint64_t i = 0; i < 600; ++i) {
    const IterationResult r = run_iteration(options, i);
    if (r.expected_block < 0) continue;  // E/CT flips corrupt sequencing
    EXPECT_EQ(r.blocks_escaped, 0u)
        << "iteration " << i << ": " << site_kind_name(r.kind)
        << " fault escaped its k-bit block";
    EXPECT_TRUE(r.contained_in_expected)
        << "iteration " << i << ": corruption outside block "
        << r.expected_block;
  }
}

TEST(Resilience, CampaignReportsZeroContainmentViolations) {
  CampaignOptions options;
  options.seed = 5;
  options.iters = 400;
  const CampaignReport report = run_campaign(options);
  EXPECT_EQ(report.containment_violations(), 0u);
}

// --- protection modes -------------------------------------------------------
TEST(Resilience, ParityRestoresGoldenDecodeOnEverySingleBitTtFault) {
  // Acceptance gate: 2000 iterations, every one a single-bit TT upset, and
  // the parity checker must restore the golden decode every single time —
  // the veto happens before the corrupted entry decodes anything.
  CampaignOptions options;
  options.seed = 1;
  options.iters = 2000;
  options.targets = {Target::kTt};
  options.protection = Protection::kParity;
  const CampaignReport report = run_campaign(options);
  ASSERT_EQ(report.per_target.size(), 1u);
  const TargetStats& tt = report.per_target[0];
  EXPECT_EQ(tt.runs, 2000u);
  EXPECT_EQ(tt.restored_runs, 2000u);
  EXPECT_EQ(tt.corrupted_runs, 0u);
  EXPECT_EQ(tt.detected, tt.degraded_runs);
  // The power price of degradation is visible: vetoed blocks ran unencoded.
  EXPECT_GT(tt.degraded_runs, 0u);
  EXPECT_NE(tt.extra_transitions, 0);
}

TEST(Resilience, ReencodeShadowDetectsAndRecoversHistoryUpsets) {
  CampaignOptions options;
  options.seed = 2;
  options.iters = 500;
  options.targets = {Target::kHistory};
  options.protection = Protection::kReencode;
  const CampaignReport report = run_campaign(options);
  const TargetStats& h = report.per_target[0];
  EXPECT_EQ(h.runs, 500u);
  // Every run ends architecturally golden: the shadow decode diverges on the
  // first corrupted word, the model re-fetches, and the rest is served from
  // the backing copy. Upsets on lines whose τ ignores history are benign.
  EXPECT_EQ(h.restored_runs, 500u);
  EXPECT_EQ(h.corrupted_runs, 0u);
  EXPECT_GT(h.detected, 0u);
  EXPECT_EQ(h.detected, h.degraded_runs);
}

TEST(Resilience, UnprotectedTtFaultsDoCorruptSomething) {
  // Guards the protection tests against vacuity: without protection the same
  // fault population must visibly corrupt a fair share of the runs.
  CampaignOptions options;
  options.seed = 1;
  options.iters = 200;
  options.targets = {Target::kTt};
  const CampaignReport report = run_campaign(options);
  EXPECT_GT(report.per_target[0].corrupted_runs + report.per_target[0].decode_faults,
            50u);
}

TEST(Resilience, CampaignHonorsTheWallClockBudget) {
  CampaignOptions options;
  options.seed = 9;
  options.iters = 50'000'000;  // far more than the budget allows
  options.max_seconds = 0.05;
  const CampaignReport report = run_campaign(options);
  EXPECT_TRUE(report.timed_out);
  EXPECT_LT(report.iters_completed, report.iters_requested);
  const json::Value json = to_json(report);
  EXPECT_NE(json.dump(2).find("\"timed_out\": true"), std::string::npos);
}

TEST(Resilience, DecoderPeripheralBusFaultHookPerturbsTheFetchPath) {
  sim::DecoderPeripheral peripheral;
  EXPECT_EQ(peripheral.feed(0x1000, 0xABCD1234u), 0xABCD1234u);
  peripheral.set_bus_fault([](std::uint32_t pc, std::uint32_t word) {
    return pc == 0x1004 ? word ^ 0x80u : word;
  });
  EXPECT_EQ(peripheral.feed(0x1000, 0xABCD1234u), 0xABCD1234u);
  EXPECT_EQ(peripheral.feed(0x1004, 0xABCD1234u), 0xABCD1234u ^ 0x80u);
  peripheral.set_bus_fault(nullptr);
  EXPECT_EQ(peripheral.feed(0x1004, 0xABCD1234u), 0xABCD1234u);
}

}  // namespace
}  // namespace asimt::fault
