// The measurement harness behind the paper's §8 evaluation (Figures 6 and 7)
// and the ablation benches.
//
// Pipeline per workload:
//   assemble -> build CFG -> simulate once (profile + correctness check +
//   Bus-Invert baseline) -> for each block size: select hot blocks under the
//   TT budget, encode, verify the hardware decode restores every original
//   word, and compute dynamic bus transitions.
//
// Dynamic transitions are computed analytically from the profile: execution
// within a basic block is strictly sequential, so
//   total = sum_blocks count(b) * intra_transitions(b, image)
//         + sum_dynamic_edges count(e) * hamming(last_word(from), first_word(to))
// which is exact for any text image and lets one simulation serve every
// configuration. (Tests cross-validate this against direct bus monitoring.)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cfg/cfg.h"
#include "core/selection.h"
#include "fault/campaign.h"
#include "profile/transition_profiler.h"
#include "telemetry/json.h"
#include "workloads/workload.h"

namespace asimt::experiments {

struct PerBlockSizeResult {
  int block_size = 0;
  long long transitions = 0;       // dynamic bus transitions after encoding
  double reduction_percent = 0.0;  // vs. the unencoded baseline
  int tt_entries_used = 0;
  int blocks_encoded = 0;
  std::uint64_t decoded_fetches = 0;  // dynamic fetches inside encoded blocks
  // Residual hotspots after encoding: the top-N blocks by remaining dynamic
  // transition cost (ExperimentOptions::hotspot_top_n; empty when 0). The
  // `encoded` flag shows whether each hotspot already holds a TT entry —
  // unencoded entries here are the selection's leftovers.
  std::vector<profile::BlockCost> hotspots;
};

struct WorkloadResult {
  std::string name;
  std::uint64_t instructions = 0;
  long long baseline_transitions = 0;
  std::vector<PerBlockSizeResult> per_block_size;
  long long bus_invert_transitions = 0;  // A4 ablation baseline
  bool check_passed = false;
  std::string check_error;
};

struct ExperimentOptions {
  std::vector<int> block_sizes = {4, 5, 6, 7};  // the paper's sweep
  int tt_budget = 16;                           // paper: "up to 16 entries"
  int bbit_budget = 16;
  core::ChainStrategy strategy = core::ChainStrategy::kGreedy;
  // Re-decode every selected block through the FetchDecoder hardware model
  // and require exact restoration (cheap; on by default).
  bool verify_decode = true;
  std::uint64_t max_steps = 500'000'000;
  // Opt-in profile pass: record the top-N residual-hotspot blocks per block
  // size (analytic attribution — no extra simulation). 0 disables.
  int hotspot_top_n = 0;
};

// Runs one workload through the full pipeline. The per-block-size sweep
// fans out across the parallel engine (parallel::default_jobs(), CLI
// --jobs); results are bit-exact and ordered identically at any job count.
WorkloadResult run_workload(const workloads::Workload& workload,
                            const ExperimentOptions& options);

// Runs a whole suite, one parallel task per workload, returning results in
// suite order. Equivalent to calling run_workload serially for each entry —
// including every number in every result — just faster on multicore hosts.
std::vector<WorkloadResult> run_workloads(
    std::span<const workloads::Workload> suite,
    const ExperimentOptions& options);

// Analytic dynamic transition count for `image` under `profile` (see file
// comment). `image` must cover the same text range as `cfg`.
long long dynamic_transitions(const cfg::Cfg& cfg, const cfg::Profile& profile,
                              std::span<const std::uint32_t> image);

// Formats a WorkloadResult table row set in the style of the paper's Fig. 6.
std::string format_fig6_table(const std::vector<WorkloadResult>& results);

// JSON serializations of the result structs, so every number the harness
// measures is exportable alongside telemetry snapshots. Tests assert these
// agree with the text report.
json::Value to_json(const PerBlockSizeResult& result);
json::Value to_json(const WorkloadResult& result);
json::Value to_json(const std::vector<WorkloadResult>& results);

// --- per-target soft-error vulnerability attribution -----------------------
// The resilience companion to the Fig. 6 power table (docs/RESILIENCE.md):
// for each fault target, how often a single random upset corrupts the
// architectural stream, how well the chosen protection mode contains it, and
// what the degradation costs in extra bus transitions.

struct VulnerabilityRow {
  fault::Target target = fault::Target::kTt;
  std::uint64_t runs = 0;
  std::uint64_t corrupted_runs = 0;
  double corruption_rate = 0.0;  // corrupted_runs / runs
  std::uint64_t detected = 0;
  std::uint64_t degraded_runs = 0;
  std::uint64_t restored_runs = 0;
  std::uint64_t blocks_escaped = 0;
  long long extra_transitions = 0;
};

struct VulnerabilityTable {
  std::uint64_t seed = 0;
  std::uint64_t iters_per_target = 0;
  fault::Protection protection = fault::Protection::kNone;
  std::vector<VulnerabilityRow> rows;  // one per fault::kAllTargets entry
};

// Runs a single-upset campaign of `iters_per_target` iterations per target
// (deterministic, parallel under the PR 2 contract) and folds the per-target
// stats into the attribution view.
VulnerabilityTable fault_vulnerability(std::uint64_t seed,
                                       std::uint64_t iters_per_target,
                                       fault::Protection protection);

std::string format_vulnerability_table(const VulnerabilityTable& table);
json::Value to_json(const VulnerabilityTable& table);

// True when the ASIMT_FAST environment variable asks for reduced problem
// sizes (used by benches so CI-style runs stay quick).
bool fast_mode();
workloads::SizeConfig bench_sizes();

}  // namespace asimt::experiments
