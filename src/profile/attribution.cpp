#include "profile/attribution.h"

#include <bit>

#include "bitstream/bitseq.h"

namespace asimt::profile {

std::vector<BlockCost> attribute_dynamic(
    const cfg::Cfg& cfg, const cfg::Profile& profile,
    std::span<const std::uint32_t> image,
    std::span<const core::BlockEncoding> encodings) {
  std::vector<BlockCost> out;
  out.reserve(cfg.blocks.size());
  for (const cfg::BasicBlock& block : cfg.blocks) {
    BlockCost cost;
    cost.index = block.index;
    cost.start_pc = block.start;
    cost.end_pc = block.end;
    cost.exec = profile.block_counts[static_cast<std::size_t>(block.index)];
    if (cost.exec != 0) {
      const std::size_t first = (block.start - cfg.text_base) / 4;
      const long long intra = bits::total_bus_transitions(
          image.subspan(first, block.instruction_count()));
      cost.transitions = intra * static_cast<long long>(cost.exec);
    }
    out.push_back(cost);
  }

  // Edge costs land on the *destination* block (the transition happens while
  // its first word is fetched) — the same attribution the stream profiler
  // uses, and integer += is order-independent so the unordered_map iteration
  // order can't perturb the result.
  for (const auto& [key, count] : profile.edge_counts) {
    const int from = static_cast<int>(key >> 32);
    const int to = static_cast<int>(key & 0xFFFFFFFFu);
    const cfg::BasicBlock& a = cfg.blocks[static_cast<std::size_t>(from)];
    const cfg::BasicBlock& b = cfg.blocks[static_cast<std::size_t>(to)];
    const std::uint32_t last = image[(a.last_pc() - cfg.text_base) / 4];
    const std::uint32_t head = image[(b.start - cfg.text_base) / 4];
    out[static_cast<std::size_t>(to)].transitions +=
        static_cast<long long>(count) * std::popcount(last ^ head);
  }

  for (const core::BlockEncoding& enc : encodings) {
    const int block = cfg.block_containing(enc.start_pc);
    if (block >= 0) out[static_cast<std::size_t>(block)].encoded = true;
  }
  return out;
}

}  // namespace asimt::profile
