#include "serve/cache.h"

#include <algorithm>
#include <bit>

#include "telemetry/metrics.h"

namespace asimt::serve {

namespace {

unsigned clamp_shards(unsigned shards) {
  const unsigned clamped = std::clamp(shards, 1u, 256u);
  return std::bit_ceil(clamped);
}

}  // namespace

ShardedCache::ShardedCache(std::size_t capacity, unsigned shards) {
  const unsigned n = clamp_shards(shards);
  capacity_ = std::max<std::size_t>(capacity, n);
  per_shard_capacity_ = std::max<std::size_t>(1, capacity_ / n);
  shards_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

unsigned ShardedCache::shard_of(const CacheKey& key) const {
  // Select by the avalanched top bits so shard choice is independent of the
  // map's bucket choice (which uses the low bits of the same hash).
  const std::uint64_t h = KeyHash{}(key);
  const unsigned n = static_cast<unsigned>(shards_.size());
  return static_cast<unsigned>((h >> 48) & (n - 1));
}

std::shared_ptr<const std::string> ShardedCache::lookup(const CacheKey& key) {
  Shard& shard = shard_for(key);
  std::shared_ptr<const std::string> payload;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      payload = it->second->payload;
    }
    // Counted inside the critical section so lookups == hits + misses in
    // every stats() snapshot, not just eventually.
    ++shard.lookups;
    if (payload) {
      ++shard.hits;
    } else {
      ++shard.misses;
    }
  }
  if (payload) {
    telemetry::count("serve.cache.hits");
  } else {
    telemetry::count("serve.cache.misses");
  }
  return payload;
}

std::shared_ptr<const std::string> ShardedCache::insert(const CacheKey& key,
                                                        std::string payload) {
  Shard& shard = shard_for(key);
  auto incoming = std::make_shared<const std::string>(std::move(payload));
  std::shared_ptr<const std::string> resident;
  std::uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Raced by another worker: keep the first payload so every concurrent
      // caller for this key replies with the same bytes.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      resident = it->second->payload;
    } else {
      shard.lru.push_front(Entry{key, incoming});
      shard.index.emplace(key, shard.lru.begin());
      resident = incoming;
      while (shard.lru.size() > per_shard_capacity_) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        ++evicted;
      }
      ++shard.insertions;
      shard.evictions += evicted;
    }
  }
  if (resident == incoming) {
    telemetry::count("serve.cache.insertions");
  }
  if (evicted > 0) {
    telemetry::count("serve.cache.evictions", static_cast<long long>(evicted));
  }
  return resident;
}

CacheStats ShardedCache::stats() const {
  CacheStats out;
  // Each shard is summed under its own lock: the per-shard invariant
  // lookups == hits + misses holds at the instant of the read, so the sums
  // satisfy it too. (The snapshot is per-shard-consistent, not a global
  // point-in-time cut — good enough for the invariant the stats op
  // promises, without a stop-the-world lock.)
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.lookups += shard->lookups;
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.insertions += shard->insertions;
    out.entries += shard->lru.size();
  }
  return out;
}

}  // namespace asimt::serve
