// The paper's six evaluation workloads (§8): matrix multiplication, SOR,
// extrapolated Jacobi, FFT, tridiagonal solve, LU decomposition — "numerical
// and DSP codes ... capable of exhibiting the strength of the suggested
// technique due to their inclusion of frequently executed loops".
//
// Each workload is an assembly program for the ASIMT ISA plus host-side data
// initialization and a correctness check against a C++ reference
// implementation. The paper's binaries came from a compiler targeting
// SimpleScalar PISA; ours are hand-written with the same loop structure
// (DESIGN.md §4 substitution table).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/cpu.h"
#include "sim/memory.h"

namespace asimt::workloads {

struct Workload {
  std::string name;
  std::string description;
  std::string source;  // assembly text

  // Writes input data into memory and argument registers into the CPU state.
  std::function<void(sim::Memory&, sim::CpuState&)> init;
  // Validates results against the reference; fills *error on failure.
  std::function<bool(const sim::Memory&, std::string* error)> check;

  std::uint64_t max_steps = 500'000'000;
};

// Problem sizes. Defaults are the paper's (§8); shrink for fast test runs.
struct SizeConfig {
  int mmul_n = 100;    // paper: 100x100 matrices
  int sor_n = 256;     // paper: 256x256 grid
  int sor_iters = 4;
  int ej_n = 128;      // paper: 128x128 grid
  int ej_iters = 80;
  int fft_n = 256;     // paper: 256-sample blocks (power of two)
  int tri_n = 128;     // paper: 128x128 system
  int tri_reps = 256;
  int lu_n = 128;      // paper: 128x128 matrix

  // Extra (non-paper) kernels, for the generalization bench.
  int fir_taps = 32;
  int fir_samples = 4096;
  int crc_bytes = 8192;
  int dct_blocks = 512;    // 8-sample blocks
  int hist_bytes = 16384;

  // Proportionally smaller instance for quick runs.
  static SizeConfig small() {
    SizeConfig c;
    c.mmul_n = 24;
    c.sor_n = 40;
    c.sor_iters = 2;
    c.ej_n = 32;
    c.ej_iters = 6;
    c.fft_n = 64;
    c.tri_n = 32;
    c.tri_reps = 8;
    c.lu_n = 32;
    c.fir_taps = 8;
    c.fir_samples = 256;
    c.crc_bytes = 512;
    c.dct_blocks = 32;
    c.hist_bytes = 1024;
    return c;
  }
};

// Individual builders.
Workload make_mmul(const SizeConfig& config);
Workload make_sor(const SizeConfig& config);
Workload make_ej(const SizeConfig& config);
Workload make_fft(const SizeConfig& config);
Workload make_tri(const SizeConfig& config);
Workload make_lu(const SizeConfig& config);

// Extra kernels beyond the paper's six — typical embedded code the
// generalization bench exercises: an FIR filter, bitwise CRC-32, 8-point
// DCT-II, and a byte histogram (integer- and branch-heavy mixes the
// numerical six do not cover).
Workload make_fir(const SizeConfig& config);
Workload make_crc32(const SizeConfig& config);
Workload make_dct(const SizeConfig& config);
Workload make_histogram(const SizeConfig& config);

// All six, in the paper's column order (mmul, sor, ej, fft, tri, lu).
std::vector<Workload> make_all(const SizeConfig& config = {});
// The four extra kernels (fir, crc32, dct, hist).
std::vector<Workload> make_extra(const SizeConfig& config = {});

// Lookup by name (paper and extra kernels); throws std::out_of_range for
// unknown names.
Workload make_by_name(const std::string& name, const SizeConfig& config = {});

}  // namespace asimt::workloads
