// Admission control for the encoding daemon: a bounded concurrency limiter
// with an explicit degradation order (docs/SERVING.md § Resilience).
//
// The server has two capacity dials. `--max-conns` bounds connection threads
// and is enforced in the accept loop (server.h); `--max-inflight` bounds the
// number of *expensive requests* (encode/verify cache misses, profile runs)
// executing at once and is enforced here, between the cache lookup and the
// compute. Cheap requests — ping, stats, metrics, dump, cache hits — bypass
// admission entirely: monitoring must keep working while the daemon sheds.
//
// Degradation order, from the ISSUE contract:
//   shed before queue:  when the wait queue is full, reject immediately with
//                       a structured `overloaded` error (+ retry_after_ms)
//                       rather than letting the queue grow;
//   queue before block: a request that does queue waits a *bounded* time
//                       (min of the queue policy and its own deadline), never
//                       indefinitely.
//
// Every decision is counted in OverloadCounters, which the `stats` and
// `metrics` ops expose and the drain summary prints — overload is observable,
// never silent.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace asimt::serve {

// Shed/timeout accounting shared by the admission controller (request-level)
// and the server (transport-level). Plain relaxed atomics: these are
// monotonic counters, not synchronization.
struct OverloadCounters {
  std::atomic<std::uint64_t> shed_connections{0};  // --max-conns rejections
  std::atomic<std::uint64_t> shed_requests{0};     // queue-full rejections
  std::atomic<std::uint64_t> queue_timeouts{0};    // waited, slot never came
  std::atomic<std::uint64_t> deadline_expired{0};  // request deadline hit
  std::atomic<std::uint64_t> read_timeouts{0};     // slow-loris evictions
  std::atomic<std::uint64_t> write_timeouts{0};    // stalled-reader evictions
};

struct AdmissionOptions {
  // Concurrent expensive requests; 0 = unlimited (admission disabled).
  unsigned max_inflight = 0;
  // Requests allowed to wait for a slot; one more is shed, not queued.
  unsigned queue_depth = 16;
  // Server-policy cap on the queue wait. A request's own deadline can only
  // shorten it.
  std::uint64_t queue_timeout_ms = 100;
};

enum class Admission {
  kAdmitted,      // caller holds a slot; must call release()
  kShed,          // queue full — reject now ("overloaded")
  kQueueTimeout,  // queued, but no slot within the policy ("overloaded")
  kDeadline,      // queued, but the request deadline expired ("timeout")
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Tries to take an execution slot. `deadline_ns` is an absolute
  // obsv::now_ns() instant (0 = none); expiring while queued yields
  // kDeadline so the caller reports `timeout`, not `overloaded`.
  Admission admit(std::uint64_t deadline_ns = 0);

  // Returns a slot taken by a successful admit(). Wakes one waiter.
  void release();

  // RAII slot: releases on destruction iff the admit succeeded.
  class Ticket {
   public:
    Ticket(AdmissionController& controller, std::uint64_t deadline_ns = 0)
        : controller_(controller), result_(controller.admit(deadline_ns)) {}
    ~Ticket() {
      if (result_ == Admission::kAdmitted) controller_.release();
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    Admission result() const { return result_; }

   private:
    AdmissionController& controller_;
    Admission result_;
  };

  bool enabled() const { return options_.max_inflight > 0; }
  const AdmissionOptions& options() const { return options_; }

  // Snapshot accessors (approximate under concurrency; exact in tests that
  // control the threads).
  unsigned inflight() const;
  unsigned waiting() const;

 private:
  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable slot_available_;
  unsigned inflight_ = 0;
  unsigned waiting_ = 0;
};

}  // namespace asimt::serve
