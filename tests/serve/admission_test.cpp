// The admission controller's degradation order, pinned at the unit level:
// shed before queue (a full wait queue rejects immediately), queue before
// block (a queued request waits a bounded time — the policy cap or its own
// deadline, whichever is sooner), and the RAII ticket releases exactly the
// slots that were granted.
#include "serve/admission.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "obsv/span.h"

namespace asimt::serve {
namespace {

using Clock = std::chrono::steady_clock;

AdmissionOptions tiny_options() {
  AdmissionOptions options;
  options.max_inflight = 1;
  options.queue_depth = 1;
  options.queue_timeout_ms = 40;
  return options;
}

TEST(Admission, DisabledControllerAdmitsEverythingWithoutAccounting) {
  AdmissionController controller(AdmissionOptions{});  // max_inflight = 0
  EXPECT_FALSE(controller.enabled());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(controller.admit(), Admission::kAdmitted);
  }
  EXPECT_EQ(controller.inflight(), 0u);  // disabled path never counts
}

TEST(Admission, AdmitsUpToMaxInflightThenQueues) {
  AdmissionOptions options = tiny_options();
  options.max_inflight = 2;
  AdmissionController controller(options);
  EXPECT_EQ(controller.admit(), Admission::kAdmitted);
  EXPECT_EQ(controller.admit(), Admission::kAdmitted);
  EXPECT_EQ(controller.inflight(), 2u);
  controller.release();
  controller.release();
  EXPECT_EQ(controller.inflight(), 0u);
}

TEST(Admission, ShedsBeforeQueueingWhenTheQueueIsFull) {
  // One slot, one queue seat. Occupy the slot, park a waiter in the seat,
  // then a third request must be shed *immediately* — not queued, not
  // blocked.
  AdmissionController controller(tiny_options());
  ASSERT_EQ(controller.admit(), Admission::kAdmitted);

  std::thread waiter([&] {
    // Fills the queue seat, then times out (nobody releases for 40 ms).
    EXPECT_EQ(controller.admit(), Admission::kQueueTimeout);
  });
  // Wait until the waiter is actually parked.
  while (controller.waiting() == 0u) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto before = Clock::now();
  EXPECT_EQ(controller.admit(), Admission::kShed);
  const auto shed_latency = Clock::now() - before;
  // The shed decision must not wait for the queue policy to expire.
  EXPECT_LT(shed_latency, std::chrono::milliseconds(30));

  waiter.join();
  controller.release();
}

TEST(Admission, QueuedRequestAdmitsWhenASlotFrees) {
  AdmissionController controller(tiny_options());
  ASSERT_EQ(controller.admit(), Admission::kAdmitted);

  Admission queued = Admission::kShed;
  std::thread waiter([&] { queued = controller.admit(); });
  while (controller.waiting() == 0u) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  controller.release();  // hands the slot to the waiter
  waiter.join();
  EXPECT_EQ(queued, Admission::kAdmitted);
  EXPECT_EQ(controller.inflight(), 1u);
  controller.release();
}

TEST(Admission, QueueWaitIsBoundedByThePolicy) {
  AdmissionController controller(tiny_options());  // queue_timeout_ms = 40
  ASSERT_EQ(controller.admit(), Admission::kAdmitted);

  const auto before = Clock::now();
  EXPECT_EQ(controller.admit(), Admission::kQueueTimeout);
  const auto waited = Clock::now() - before;
  EXPECT_GE(waited, std::chrono::milliseconds(35));
  EXPECT_LT(waited, std::chrono::seconds(5));  // bounded, never indefinite
  EXPECT_EQ(controller.waiting(), 0u);
  controller.release();
}

TEST(Admission, RequestDeadlineShortensTheQueueWait) {
  AdmissionOptions options = tiny_options();
  options.queue_timeout_ms = 10'000;  // policy would wait 10 s
  AdmissionController controller(options);
  ASSERT_EQ(controller.admit(), Admission::kAdmitted);

  const std::uint64_t deadline_ns =
      obsv::now_ns() + 30ull * 1'000'000;  // 30 ms from now
  const auto before = Clock::now();
  EXPECT_EQ(controller.admit(deadline_ns), Admission::kDeadline);
  const auto waited = Clock::now() - before;
  EXPECT_LT(waited, std::chrono::seconds(2));  // far below the 10 s policy
  controller.release();
}

TEST(Admission, AlreadyExpiredDeadlineFailsWithoutQueueing) {
  AdmissionController controller(tiny_options());
  ASSERT_EQ(controller.admit(), Admission::kAdmitted);
  // A deadline in the past must come back kDeadline immediately. now_ns()
  // is anchored at its first call, so when this test runs alone "now" can
  // be ~0 — saturate instead of underflowing into the far future.
  const std::uint64_t now = obsv::now_ns();
  const std::uint64_t expired = now > 1'000'000 ? now - 1'000'000 : 1;
  const auto before = Clock::now();
  EXPECT_EQ(controller.admit(expired), Admission::kDeadline);
  EXPECT_LT(Clock::now() - before, std::chrono::milliseconds(30));
  controller.release();
}

TEST(Admission, TicketReleasesOnlyWhenAdmitted) {
  AdmissionController controller(tiny_options());
  {
    AdmissionController::Ticket ticket(controller);
    EXPECT_EQ(ticket.result(), Admission::kAdmitted);
    EXPECT_EQ(controller.inflight(), 1u);
    {
      // Second ticket times out in the queue — its destructor must NOT
      // release a slot it never held.
      AdmissionController::Ticket loser(controller);
      EXPECT_EQ(loser.result(), Admission::kQueueTimeout);
    }
    EXPECT_EQ(controller.inflight(), 1u);
  }
  EXPECT_EQ(controller.inflight(), 0u);
  // The slot really is free again.
  AdmissionController::Ticket fresh(controller);
  EXPECT_EQ(fresh.result(), Admission::kAdmitted);
}

TEST(Admission, ManyThreadsNeverExceedMaxInflight) {
  AdmissionOptions options;
  options.max_inflight = 3;
  options.queue_depth = 64;
  options.queue_timeout_ms = 2'000;
  AdmissionController controller(options);

  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        AdmissionController::Ticket ticket(controller);
        if (ticket.result() != Admission::kAdmitted) continue;
        ++admitted;
        const int now = ++concurrent;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        --concurrent;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_GT(admitted.load(), 0);
  EXPECT_LE(peak.load(), 3);
  EXPECT_EQ(controller.inflight(), 0u);
  EXPECT_EQ(controller.waiting(), 0u);
}

}  // namespace
}  // namespace asimt::serve
