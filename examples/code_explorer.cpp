// Code explorer: interactively inspect the theory behind the encoding.
//
// Usage: code_explorer [block_size] [bit_stream]
//   block_size   2..8 (default 5)
//   bit_stream   a 0/1 string in stream order (default: a demo stream)
//
// Prints the optimal code table for the chosen block size (Fig. 2/4 style),
// then encodes the given stream as an overlapped chain and shows the
// per-block transform choices — a workbench for studying how the power
// codes behave on arbitrary vertical bit sequences.
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "core/block_code.h"
#include "core/chain_encoder.h"
#include "util/args.h"

int main(int argc, char** argv) {
  using namespace asimt;

  // Strict parse: atoi would quietly turn "5x" (or "banana") into a number.
  std::optional<int> parsed_k = argc > 1 ? util::parse_int_in(argv[1], 2, 8)
                                         : std::optional<int>(5);
  if (!parsed_k) {
    std::fprintf(stderr, "block size must be an integer in [2, 8], got '%s'\n",
                 argv[1]);
    return 1;
  }
  const int k = *parsed_k;
  const std::string stream_text =
      argc > 2 ? argv[2] : "10101100111000101011010000111100101101";

  // Part 1: the optimal code table under the hardware's 8-transform subset.
  const core::BlockCode table =
      core::solve_block_code(k, std::span<const core::Transform>{core::kPaperSubset});
  std::printf("optimal %d-bit power code (8-transform subset)\n", k);
  std::printf("TTN=%lld RTN=%lld improvement=%.1f%%\n\n", table.ttn(),
              table.rtn(), table.improvement_percent());
  if (k <= 5) {
    std::printf("%-*s %-*s %-5s %-3s %-3s\n", k + 2, "X", k + 2, "X~", "tau",
                "Tx", "Tx~");
    for (const core::CodeAssignment& e : table.entries) {
      std::printf("%-*s %-*s %-5s %-3d %-3d\n", k + 2,
                  bits::BitSeq::from_word(e.word, static_cast<std::size_t>(k))
                      .to_figure_string()
                      .c_str(),
                  k + 2,
                  bits::BitSeq::from_word(e.code, static_cast<std::size_t>(k))
                      .to_figure_string()
                      .c_str(),
                  e.tau.name().c_str(), e.word_transitions, e.code_transitions);
    }
  } else {
    std::printf("(table with %zu rows omitted; pass block size <= 5 to print)\n",
                table.entries.size());
  }

  // Part 2: encode the stream as a chain of overlapped blocks.
  bits::BitSeq stream;
  try {
    stream = bits::BitSeq::from_stream_string(stream_text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad bit stream: %s\n", e.what());
    return 1;
  }
  core::ChainOptions options;
  options.block_size = k;
  options.strategy = core::ChainStrategy::kOptimalDp;
  const core::EncodedChain chain = core::ChainEncoder(options).encode(stream);
  if (!(core::decode_chain(chain) == stream)) {
    std::fprintf(stderr, "internal error: chain round-trip failed\n");
    return 1;
  }

  std::printf("\nstream   %s  (%d transitions)\n", stream.to_stream_string().c_str(),
              stream.transitions());
  std::printf("stored   %s  (%d transitions)\n", chain.stored.to_stream_string().c_str(),
              chain.stored.transitions());
  std::printf("blocks   ");
  for (const core::ChainBlock& block : chain.blocks) {
    std::printf("[%zu..%zu]=%s ", block.start,
                block.start + static_cast<std::size_t>(block.length) - 1,
                block.tau.name().c_str());
  }
  const int saved = stream.transitions() - chain.stored.transitions();
  std::printf("\nsaved    %d transitions (%.1f%%)\n", saved,
              stream.transitions() == 0
                  ? 0.0
                  : 100.0 * saved / stream.transitions());
  return 0;
}
