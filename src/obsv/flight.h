// Crash-safe flight recorder: the last N spans per connection, dumped from
// a signal handler.
//
// The serving daemon's post-mortem story: every connection records its
// recent spans into a SpanRing registered here; on SIGSEGV / SIGABRT /
// SIGBUS / SIGFPE (which is also where a fatal escaped DecodeFault ends up,
// via std::terminate → abort) an async-signal-safe writer walks the rings
// and emits one JSONL row per span, then re-raises the signal so the exit
// status is unchanged. The same writer serves the on-demand `dump` protocol
// op.
//
// Async-signal-safety is load-bearing in every line of the dump path:
//   - ring slots are lock-free 64-bit atomics (obsv/span.h) — reading them
//     in a handler is defined behavior;
//   - the writer uses only open/write/close and a stack buffer with
//     hand-rolled integer formatting — no malloc, no stdio, no locale;
//   - the dump path and ring registry are fixed-size arrays written before
//     handlers are installed.
//
// Dump format (JSONL; integers and fixed enum strings only):
//   {"asimt_flight":1,"reason":"SIGABRT","pid":12345}
//   {"seq":9,"conn":2,"start_ns":...,"read_ns":...,"parse_ns":...,
//    "cache_ns":...,"execute_ns":...,"serialize_ns":...,"write_ns":...,
//    "op":"encode","outcome":"hit","error":"ok","shard":3,
//    "request_bytes":142,"payload_bytes":286}
//
// load_flight_dump() reads a dump back tolerantly (a crash can truncate the
// last row; corruption must not take the reader down too), and
// flight_trace_events() converts spans into the JSONL event shape
// telemetry::chrome_trace_from_events consumes, one timeline row per
// connection, one sub-span per stage — the PR 4 Chrome-trace path applied
// to the serving layer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obsv/span.h"
#include "telemetry/json.h"

namespace asimt::obsv {

class FlightRecorder {
 public:
  static constexpr std::size_t kMaxRings = 256;
  static constexpr std::size_t kMaxPath = 512;

  // `path` is where dumps land; it is copied into a fixed buffer so the
  // signal handler never touches std::string. `ring_capacity` is the span
  // count each connection retains.
  FlightRecorder(const std::string& path, std::size_t ring_capacity = 256);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  const char* path() const { return path_; }

  // Hands out a ring for a connection (reusing a released one, reset, when
  // the registry is full of idle rings). Never returns nullptr; if all
  // kMaxRings slots hold busy rings the busiest-slot ring is shared —
  // overflow degrades attribution, never availability. Thread-safe.
  SpanRing* acquire_ring(std::uint64_t conn_id);
  void release_ring(SpanRing* ring);

  // Writes every readable span in every registered ring to path() and
  // returns the number of rows written, or -1 when the file cannot be
  // opened. Async-signal-safe; also the implementation of the `dump` op.
  long long dump(const char* reason) const;

  // Spans currently resident across all rings (the `dump` op's row count
  // precheck and tests). Not signal-safe.
  std::size_t resident_spans() const;

 private:
  char path_[kMaxPath];
  std::size_t ring_capacity_;
  // Slots are created on demand and never freed while the recorder lives:
  // the signal handler iterates this array with plain atomic loads.
  std::atomic<SpanRing*> rings_[kMaxRings];
  std::atomic<bool> busy_[kMaxRings];
};

// Installs SIGSEGV/SIGABRT/SIGBUS/SIGFPE handlers that dump `recorder` and
// re-raise with the default disposition (so exit codes and core dumps are
// unchanged). Pass nullptr to uninstall. One recorder at a time — the
// daemon use case.
void install_crash_handlers(FlightRecorder* recorder);

// ---------------------------------------------------------------------------
// Reading dumps back

struct FlightDump {
  std::string reason;
  long long pid = 0;
  std::vector<Span> spans;          // sorted by (conn, seq)
  std::size_t corrupt_rows = 0;     // unparseable interior lines, skipped
  bool truncated = false;           // final line was cut mid-row (crash)
};

// One span as the dump-row JSON object (same schema as the signal-safe
// writer emits); the slow-request log reuses it so both formats stay one.
json::Value span_to_json(const Span& span);

// Parses a flight dump. Throws std::runtime_error when the file cannot be
// read or its first line is not a flight header; tolerates (and counts)
// corrupt rows and a truncated tail.
FlightDump load_flight_dump(const std::string& path);

// Converts a dump into the JSONL event objects chrome_trace_from_events
// consumes: per span a begin/end pair per non-empty stage, tid = the span's
// connection id (+1, so conn 0 is not mislabeled "main").
std::vector<json::Value> flight_trace_events(const FlightDump& dump);

}  // namespace asimt::obsv
