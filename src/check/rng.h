// Seed-deterministic random generator for the differential fuzzing harness.
//
// The whole check subsystem promises byte-identical behavior for a given
// --seed across platforms, thread counts, and standard libraries, so this is
// a fully specified SplitMix64 (Steele/Lea/Flood, JDK 8) rather than
// std::mt19937 + distributions (whose outputs are implementation-defined).
// Every fuzz iteration derives its own independent stream with `fork`, which
// is what lets the driver fan iterations out across the parallel engine
// without any cross-iteration state.
#pragma once

#include <cstdint>

namespace asimt::check {

class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) : state_(seed) {}

  // Next 64 uniform bits (SplitMix64 step).
  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound); bound == 0 yields 0. Simple modulo: the bias for
  // the small bounds used here (< 2^20) is far below anything a fuzzer
  // cares about, and the arithmetic is identical everywhere.
  constexpr std::uint64_t below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  constexpr int range(int lo, int hi) {
    return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // True with probability num/den.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

  // An independent generator whose stream is a pure function of (this
  // generator's seed, label) — the per-iteration fork used by the driver.
  constexpr Rng fork(std::uint64_t label) const {
    Rng child(state_ ^ (0xA5A5A5A55A5A5A5Aull + label * 0x2545F4914F6CDD1Dull));
    child.next();  // decorrelate adjacent labels
    return child;
  }

 private:
  std::uint64_t state_;
};

}  // namespace asimt::check
