// E3 — regenerates the paper's Figure 4: the optimal five-bit code table
// restricted to the 8-transform subset. The paper prints the first half;
// the second half follows by the all-bits-inverted symmetry.
#include <cstdio>

#include "bitstream/bitseq.h"
#include "core/block_code.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt;
  std::printf(
      "Figure 4: power efficient transformations for five bit blocks\n"
      "(first half; the second half is the all-bits-inverted mirror)\n\n");
  std::printf("%-8s %-8s %-5s %-4s %-4s\n", "X", "X~", "tau", "Tx", "Tx~");
  const core::BlockCode code =
      core::solve_block_code(5, std::span<const core::Transform>{core::kPaperSubset});
  // A figure string read as a binary number equals the word value (reversing
  // a reversed string is the identity), so ascending words match the paper's
  // row order.
  for (std::uint32_t word = 0; word < 16; ++word) {
    const core::CodeAssignment& e = code.entries[word];
    std::printf("%-8s %-8s %-5s %-4d %-4d\n",
                bits::BitSeq::from_word(e.word, 5).to_figure_string().c_str(),
                bits::BitSeq::from_word(e.code, 5).to_figure_string().c_str(),
                e.tau.name().c_str(), e.word_transitions, e.code_transitions);
  }
  std::printf("\nfull-table TTN=%lld RTN=%lld reduction=%.1f%% (paper Fig.3: 64 -> 32, 50%%)\n",
              code.ttn(), code.rtn(), code.improvement_percent());
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("table_fig4")
