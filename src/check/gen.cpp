#include "check/gen.h"

#include <bit>
#include <cmath>
#include <cstring>

namespace asimt::check {

namespace {

// Length skewed toward the small/boundary sizes where the chain contract
// (overlap bits, tail absorption) actually lives.
std::size_t skewed_length(Rng& rng, std::size_t small_max, std::size_t big_max) {
  switch (rng.below(4)) {
    case 0: return static_cast<std::size_t>(rng.below(3));  // 0..2 degenerate
    case 1: return static_cast<std::size_t>(rng.below(small_max + 1));
    default: return static_cast<std::size_t>(rng.below(big_max + 1));
  }
}

double gen_finite_double(Rng& rng) {
  switch (rng.below(4)) {
    case 0:  // small decimals, the common telemetry shape
      return static_cast<double>(static_cast<std::int64_t>(rng.next() % 2'000'001) -
                                 1'000'000) /
             1000.0;
    case 1:  // exact integers stored as doubles
      return static_cast<double>(static_cast<std::int32_t>(rng.next()));
    case 2: {  // wide-exponent values
      const int exp = rng.range(-300, 300);
      return std::ldexp(static_cast<double>(rng.next() % 9007199254740993ull), exp - 52);
    }
    default: {  // arbitrary bit patterns, rejecting inf/nan
      for (;;) {
        const double d = std::bit_cast<double>(rng.next());
        if (std::isfinite(d)) return d;
      }
    }
  }
}

std::string gen_string(Rng& rng) {
  static constexpr char kPalette[] =
      "abcxyz012 _.-\"\\\n\t\r\b\f/\x01\x1f\x7f\xc3\xa9";  // incl. controls, UTF-8
  std::string s;
  const std::size_t len = rng.below(12);
  for (std::size_t i = 0; i < len; ++i) {
    s += kPalette[rng.below(sizeof kPalette - 1)];
  }
  return s;
}

}  // namespace

bits::BitSeq gen_line(Rng& rng) {
  const std::size_t len = skewed_length(rng, 12, 96);
  bits::BitSeq line(len);
  switch (rng.below(3)) {
    case 0:  // uniform bits
      for (std::size_t i = 0; i < len; ++i) line.set(i, static_cast<int>(rng.below(2)));
      break;
    case 1: {  // run-structured
      int bit = static_cast<int>(rng.below(2));
      std::size_t i = 0;
      while (i < len) {
        const std::size_t run = 1 + rng.below(9);
        for (std::size_t j = 0; j < run && i < len; ++j, ++i) line.set(i, bit);
        bit ^= 1;
      }
      break;
    }
    default: {  // mostly-constant with sparse flips
      const int fill = static_cast<int>(rng.below(2));
      for (std::size_t i = 0; i < len; ++i) {
        line.set(i, rng.chance(1, 8) ? fill ^ 1 : fill);
      }
    }
  }
  return line;
}

std::vector<std::uint32_t> gen_words(Rng& rng) {
  const std::size_t m = skewed_length(rng, 10, 40);
  std::vector<std::uint32_t> words(m);
  switch (rng.below(3)) {
    case 0:  // uniform words
      for (auto& w : words) w = static_cast<std::uint32_t>(rng.next());
      break;
    case 1: {  // low-entropy: base word, a few bit flips per step
      std::uint32_t w = static_cast<std::uint32_t>(rng.next());
      for (auto& out : words) {
        out = w;
        const std::size_t flips = rng.below(4);
        for (std::size_t f = 0; f < flips; ++f) w ^= 1u << rng.below(32);
      }
      break;
    }
    default: {  // short constant runs (loop bodies re-fetching the same ops)
      std::size_t i = 0;
      while (i < m) {
        const std::uint32_t w = static_cast<std::uint32_t>(rng.next());
        const std::size_t run = 1 + rng.below(5);
        for (std::size_t j = 0; j < run && i < m; ++j, ++i) words[i] = w;
      }
    }
  }
  return words;
}

json::Value gen_json_value(Rng& rng, int depth) {
  // Leaves only at the bottom; containers get rarer with depth.
  const std::uint64_t kind = depth >= 4 ? rng.below(5) : rng.below(7);
  switch (kind) {
    case 0: return json::Value(nullptr);
    case 1: return json::Value(rng.chance(1, 2));
    case 2:
      return json::Value(static_cast<long long>(rng.next()) >>
                         static_cast<int>(rng.below(48)));
    case 3: return json::Value(gen_finite_double(rng));
    case 4: return json::Value(gen_string(rng));
    case 5: {
      json::Value arr = json::Value::array();
      const std::size_t n = rng.below(5);
      for (std::size_t i = 0; i < n; ++i) arr.push_back(gen_json_value(rng, depth + 1));
      return arr;
    }
    default: {
      json::Value obj = json::Value::object();
      const std::size_t n = rng.below(5);
      for (std::size_t i = 0; i < n; ++i) {
        // as_object().emplace_back, not set(): duplicate keys are legal JSON
        // and must round-trip too.
        obj.as_object().emplace_back(gen_string(rng), gen_json_value(rng, depth + 1));
      }
      return obj;
    }
  }
}

FuzzCase generate_case(Rng rng) {
  // Only the fields the chosen oracle consumes (== the fields its serialized
  // form records) are rolled; everything else stays at the struct defaults so
  // that serialize -> parse reproduces the case exactly.
  FuzzCase c;
  c.oracle = static_cast<Oracle>(rng.below(kOracleCount));
  if (c.oracle != Oracle::kJson) c.block_size = rng.range(2, 8);
  switch (c.oracle) {
    case Oracle::kRoundTrip:
      c.strategy = rng.chance(1, 2) ? core::ChainStrategy::kGreedy
                                    : core::ChainStrategy::kOptimalDp;
      c.transforms = static_cast<TransformSet>(rng.below(3));
      c.line = gen_line(rng);
      break;
    case Oracle::kCost: {
      // The cost oracle always runs both strategies; no roll for c.strategy.
      c.transforms = static_cast<TransformSet>(rng.below(3));
      // Keep a healthy share of lines short enough for the exhaustive
      // optimality cross-check (see oracles.cpp: kExhaustiveMaxBits).
      bits::BitSeq line = gen_line(rng);
      if (rng.chance(1, 2) && line.size() > 12) line = line.slice(0, 12);
      c.line = std::move(line);
      break;
    }
    case Oracle::kReplay:
      // The hardware TT indexes kPaperSubset only.
      c.transforms = rng.chance(1, 4) ? TransformSet::kInvertible : TransformSet::kPaper;
      c.words = gen_words(rng);
      break;
    case Oracle::kJson:
      // Compact dump: the case file format is line-oriented, so the input
      // document must be a single line (the oracle exercises pretty-printed
      // output internally).
      c.json_text = gen_json_value(rng).dump();
      break;
    case Oracle::kBitplane:
      // The packed-kernel differential oracle runs both strategies itself.
      c.transforms = static_cast<TransformSet>(rng.below(3));
      if (rng.chance(1, 3)) {
        // Pin the length near a 64-bit word seam, where the packed kernels'
        // boundary handling (seam carries, tail masks) actually lives.
        const std::size_t len = 62 + rng.below(70);  // 62..131
        bits::BitSeq line(len);
        for (std::size_t i = 0; i < len; ++i) {
          line.set(i, static_cast<int>(rng.below(2)));
        }
        c.line = std::move(line);
      } else {
        c.line = gen_line(rng);
      }
      break;
  }
  return c;
}

}  // namespace asimt::check
