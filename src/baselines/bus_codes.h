// Prior-work bus encodings the paper positions against (§2).
//
// Bus-Invert (Stan & Burleson) is the general-purpose DATA bus technique the
// paper calls out as "limited ... on data streams exhibiting regularities";
// the A4 ablation compares it against ASIMT on identical instruction
// streams. Gray and T0 are ADDRESS bus codes, included to complete the §2
// survey and to show the two bus sides are orthogonal.
#pragma once

#include <bit>
#include <cstdint>

namespace asimt::baselines {

// Bus-Invert coding: drive ~word and assert the invert line whenever that
// halves the Hamming distance to the previous bus state. Counts transitions
// on the 32 data lines plus the extra invert line.
class BusInvertMonitor {
 public:
  void observe(std::uint32_t word) {
    if (first_) {
      bus_ = word;
      invert_ = false;
      first_ = false;
      ++words_;
      return;
    }
    const int keep = std::popcount(bus_ ^ word);
    const int flip = std::popcount(bus_ ^ ~word);
    const bool invert = flip < keep;  // strictly fewer; ties keep polarity
    const std::uint32_t driven = invert ? ~word : word;
    transitions_ += std::popcount(bus_ ^ driven);
    transitions_ += (invert != invert_) ? 1 : 0;  // the invert signal itself
    bus_ = driven;
    invert_ = invert;
    ++words_;
  }

  long long transitions() const { return transitions_; }
  std::uint64_t words_observed() const { return words_; }

 private:
  std::uint32_t bus_ = 0;
  bool invert_ = false;
  bool first_ = true;
  long long transitions_ = 0;
  std::uint64_t words_ = 0;
};

// Plain binary address bus (baseline for the address-side codes).
class BinaryAddressMonitor {
 public:
  void observe(std::uint32_t addr) {
    if (!first_) transitions_ += std::popcount(prev_ ^ addr);
    prev_ = addr;
    first_ = false;
  }
  long long transitions() const { return transitions_; }

 private:
  std::uint32_t prev_ = 0;
  bool first_ = true;
  long long transitions_ = 0;
};

// Gray-coded address bus.
class GrayAddressMonitor {
 public:
  void observe(std::uint32_t addr) {
    const std::uint32_t gray = addr ^ (addr >> 1);
    if (!first_) transitions_ += std::popcount(prev_ ^ gray);
    prev_ = gray;
    first_ = false;
  }
  long long transitions() const { return transitions_; }

 private:
  std::uint32_t prev_ = 0;
  bool first_ = true;
  long long transitions_ = 0;
};

// T0 coding: sequential addresses freeze the bus and toggle nothing; the
// redundant INC line tells the receiver to increment instead (Benini et al.).
class T0AddressMonitor {
 public:
  explicit T0AddressMonitor(std::uint32_t stride = 4) : stride_(stride) {}

  void observe(std::uint32_t addr) {
    if (first_) {
      bus_ = addr;
      expected_ = addr + stride_;
      first_ = false;
      return;
    }
    const bool sequential = addr == expected_;
    if (!sequential) {
      transitions_ += std::popcount(bus_ ^ addr);
      bus_ = addr;
    }
    transitions_ += (sequential != inc_) ? 1 : 0;  // INC line toggles
    inc_ = sequential;
    expected_ = addr + stride_;
  }

  long long transitions() const { return transitions_; }

 private:
  std::uint32_t stride_;
  std::uint32_t bus_ = 0;
  std::uint32_t expected_ = 0;
  bool inc_ = false;
  bool first_ = true;
  long long transitions_ = 0;
};

}  // namespace asimt::baselines
