// Whole-stack property test: randomly generated structured programs run
// through the complete pipeline (assemble -> profile -> select -> encode ->
// replay through the hardware decoder), checking the system's core
// invariants on inputs nobody hand-picked:
//   1. the decoder restores every dynamically fetched word,
//   2. encoding never increases dynamic bus transitions,
//   3. the analytic transition model matches direct bus monitoring.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "core/fetch_decoder.h"
#include "core/image.h"
#include "core/selection.h"
#include "experiments/experiment.h"
#include "isa/assembler.h"
#include "parallel/pool.h"
#include "sim/bus.h"
#include "sim/cpu.h"

namespace asimt {
namespace {

// Emits a random program: a chain of counted loops, each with a random
// ALU/memory body and optionally an if/else diamond inside.
std::string random_program(std::uint32_t seed) {
  std::mt19937 rng(seed);
  auto pick_reg = [&]() {
    // $t0..$t7 minus the loop counter registers $s0/$s1.
    static const char* regs[] = {"$t0", "$t1", "$t2", "$t3",
                                 "$t4", "$t5", "$t6", "$t7"};
    return std::string(regs[rng() % 8]);
  };
  std::string out = "        li      $a0, 0x20000\n";
  const int loops = 1 + static_cast<int>(rng() % 3);
  for (int l = 0; l < loops; ++l) {
    const std::string label = "loop" + std::to_string(l);
    const int trip = 3 + static_cast<int>(rng() % 40);
    out += "        li      $s0, 0\n";
    out += "        li      $s1, " + std::to_string(trip) + "\n";
    out += label + ":\n";
    const int body = 2 + static_cast<int>(rng() % 14);
    for (int i = 0; i < body; ++i) {
      switch (rng() % 6) {
        case 0:
          out += "        addu    " + pick_reg() + ", " + pick_reg() + ", " +
                 pick_reg() + "\n";
          break;
        case 1:
          out += "        xor     " + pick_reg() + ", " + pick_reg() + ", " +
                 pick_reg() + "\n";
          break;
        case 2:
          out += "        addiu   " + pick_reg() + ", " + pick_reg() + ", " +
                 std::to_string(static_cast<int>(rng() % 64) - 32) + "\n";
          break;
        case 3:
          out += "        sll     " + pick_reg() + ", " + pick_reg() + ", " +
                 std::to_string(rng() % 8) + "\n";
          break;
        case 4:
          out += "        lw      " + pick_reg() + ", " +
                 std::to_string((rng() % 16) * 4) + "($a0)\n";
          break;
        case 5:
          out += "        sw      " + pick_reg() + ", " +
                 std::to_string((rng() % 16) * 4) + "($a0)\n";
          break;
      }
    }
    if (rng() % 2 == 0) {
      // An if/else diamond keyed off the loop counter's low bit.
      const std::string skip = label + "_odd";
      const std::string join = label + "_join";
      out += "        andi    $t8, $s0, 1\n";
      out += "        bne     $t8, $zero, " + skip + "\n";
      out += "        addiu   $t0, $t0, 1\n";
      out += "        j       " + join + "\n";
      out += skip + ":\n";
      out += "        addiu   $t1, $t1, 2\n";
      out += join + ":\n";
    }
    out += "        addiu   $s0, $s0, 1\n";
    out += "        bne     $s0, $s1, " + label + "\n";
  }
  out += "        halt\n";
  return out;
}

class PipelinePropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(PipelinePropertyTest, InvariantsHoldOnRandomPrograms) {
  const auto [seed, k] = GetParam();
  const isa::Program program = isa::assemble(random_program(seed));
  const cfg::Cfg cfg = cfg::build_cfg(program);

  // Profile run.
  sim::Memory memory;
  memory.load_program(program);
  sim::Cpu cpu(memory);
  cpu.state().pc = program.entry();
  cfg::Profiler profiler(cfg);
  ASSERT_GT(cpu.run(1'000'000, [&](std::uint32_t pc, std::uint32_t) {
    profiler.on_fetch(pc);
  }), 0u);
  ASSERT_TRUE(cpu.state().halted) << "seed=" << seed;
  const cfg::Profile profile = profiler.take();

  core::SelectionOptions sel;
  sel.chain.block_size = k;
  sel.tt_budget = 16;
  const core::SelectionResult selection =
      core::select_and_encode(cfg, profile, sel);
  const auto image_words = selection.apply_to_text(cfg.text, cfg.text_base);
  const sim::TextImage image(cfg.text_base, image_words);

  // Invariant 2: encoding never increases the analytic dynamic total.
  const long long base = experiments::dynamic_transitions(cfg, profile, cfg.text);
  const long long encoded =
      experiments::dynamic_transitions(cfg, profile, image_words);
  EXPECT_LE(encoded, base) << "seed=" << seed << " k=" << k;

  // Invariants 1 and 3: replay.
  core::FetchDecoder decoder(selection.tt, selection.bbit);
  sim::Memory memory2;
  memory2.load_program(program);
  sim::Cpu cpu2(memory2);
  cpu2.state().pc = program.entry();
  sim::BusMonitor monitor;
  std::uint64_t mismatches = 0;
  cpu2.run(1'000'000, [&](std::uint32_t pc, std::uint32_t word) {
    const std::uint32_t bus = image.contains(pc) ? image.word_at(pc) : word;
    monitor.observe(bus);
    if (decoder.feed(pc, bus) != word) ++mismatches;
  });
  ASSERT_TRUE(cpu2.state().halted);
  EXPECT_EQ(mismatches, 0u) << "seed=" << seed << " k=" << k;
  EXPECT_EQ(monitor.total_transitions(), encoded) << "seed=" << seed;

  // Invariant 4: the firmware-image round trip preserves everything a boot
  // loader needs to decode this program.
  core::FirmwareImage fw;
  fw.text_base = cfg.text_base;
  fw.text = image_words;
  fw.tt = selection.tt;
  fw.bbit = selection.bbit;
  const core::FirmwareImage loaded = core::deserialize(core::serialize(fw));
  EXPECT_EQ(loaded, fw) << "seed=" << seed << " k=" << k;
}

// Invariant 5: the thread count is not an input to the pipeline. The whole
// selection + encoding stack (which fans out per bit line through the
// parallel engine) must emit an identical firmware image at any job count on
// programs nobody hand-picked.
TEST(PipelineJobsProperty, FirmwareImageIsInvariantAcrossJobCounts) {
  for (std::uint32_t seed = 0; seed < 6; ++seed) {
    const isa::Program program = isa::assemble(random_program(seed ^ 0x50AD));
    const cfg::Cfg cfg = cfg::build_cfg(program);

    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    cfg::Profiler profiler(cfg);
    ASSERT_GT(cpu.run(1'000'000, [&](std::uint32_t pc, std::uint32_t) {
      profiler.on_fetch(pc);
    }), 0u);
    const cfg::Profile profile = profiler.take();

    core::SelectionOptions sel;
    sel.chain.block_size = 5;
    sel.tt_budget = 16;

    auto firmware_at_jobs = [&](unsigned jobs) {
      parallel::set_default_jobs(jobs);
      const core::SelectionResult selection =
          core::select_and_encode(cfg, profile, sel);
      core::FirmwareImage fw;
      fw.text_base = cfg.text_base;
      fw.text = selection.apply_to_text(cfg.text, cfg.text_base);
      fw.tt = selection.tt;
      fw.bbit = selection.bbit;
      return fw;
    };
    const core::FirmwareImage serial = firmware_at_jobs(1);
    const core::FirmwareImage threaded = firmware_at_jobs(4);
    parallel::set_default_jobs(0);
    EXPECT_EQ(serial, threaded) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, PipelinePropertyTest,
    ::testing::Combine(::testing::Range(0u, 12u), ::testing::Values(4, 5, 7)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace asimt
