// The seeded fault-injection campaign: a real daemon behind a real
// ChaosProxy, with clients hammering through the fault layer. The contract
// under test (ISSUE: chaos-hardening) is threefold — the daemon never
// crashes or deadlocks, every request that survives the faults is answered
// byte-identically to a fault-free run, and the injected fault stream is a
// pure function of the seed.
#include "serve/chaos.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/server.h"
#include "telemetry/json.h"

namespace asimt::serve {
namespace {

const char kProgramA[] =
    ".text\n"
    "start:\n"
    "  li $t0, 12\n"
    "loop:\n"
    "  addiu $t1, $t1, 3\n"
    "  addiu $t0, $t0, -1\n"
    "  bnez $t0, loop\n"
    "  halt\n";

const char kProgramB[] =
    ".text\n"
    "entry:\n"
    "  li $t2, 7\n"
    "  li $t3, 0\n"
    "sum:\n"
    "  addu $t3, $t3, $t2\n"
    "  addiu $t2, $t2, -1\n"
    "  bnez $t2, sum\n"
    "  halt\n";

std::string encode_request(int id, int k, const char* program) {
  json::Value req = json::Value::object();
  req.set("id", id);
  req.set("op", "encode");
  req.set("text", std::string(program));
  req.set("k", k);
  return req.dump();
}

std::string path_for(const char* tag) {
  return "/tmp/asimt_chaos_" + std::to_string(::getpid()) + "_" + tag +
         ".sock";
}

// Daemon + proxy pair, each on its own thread; clients talk to proxy_path().
class ChaosFixture : public ::testing::Test {
 protected:
  void StartDaemon() {
    ServeOptions serve_options;
    serve_options.socket_path = path_for("daemon");
    server_ = std::make_unique<Server>(serve_options);
    ASSERT_TRUE(server_->start()) << server_->error();
    server_thread_ = std::thread([this] { server_->run(); });
  }

  void StartProxy(ChaosOptions options) {
    options.listen_path = path_for("proxy");
    options.upstream_path = server_->options().socket_path;
    proxy_ = std::make_unique<ChaosProxy>(options);
    ASSERT_TRUE(proxy_->start()) << proxy_->error();
    proxy_thread_ = std::thread([this] { proxy_->run(); });
  }

  void TearDown() override {
    if (proxy_) {
      proxy_->notify_stop();
      if (proxy_thread_.joinable()) proxy_thread_.join();
    }
    if (server_) {
      server_->notify_stop();
      if (server_thread_.joinable()) server_thread_.join();
    }
  }

  std::string proxy_path() const { return proxy_->options().listen_path; }
  std::string daemon_path() const { return server_->options().socket_path; }

  std::unique_ptr<Server> server_;
  std::unique_ptr<ChaosProxy> proxy_;
  std::thread server_thread_;
  std::thread proxy_thread_;
};

// Reads reply lines until one matches `id` (junk-triggered parse errors and
// stale replies are skipped by the id prefix — the same discipline the
// loadgen uses), reconnecting and resending through the proxy when a
// disconnect fault kills the stream.
struct CampaignClient {
  explicit CampaignClient(std::string path) : path_(std::move(path)) {}

  // Returns the reply line for `id`, or nullopt when the request could not
  // be delivered within the attempt bound (counted as lost, not failure).
  std::optional<std::string> exchange(const std::string& request, int id) {
    const std::string id_prefix = "{\"id\":" + std::to_string(id) + ",";
    for (int attempt = 0; attempt < 6; ++attempt) {
      if (!client_.connected()) {
        if (!client_.connect(path_)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          continue;
        }
        client_.set_io_timeout_ms(2'000);
        ++reconnects;
      }
      if (!client_.send_line(request)) {
        client_.close();
        continue;
      }
      std::string line;
      bool resend = false;
      while (!resend) {
        const Client::LineResult result = client_.recv_line_wait(line, 2'000);
        if (result == Client::LineResult::kLine) {
          if (line.compare(0, id_prefix.size(), id_prefix) == 0) return line;
          continue;  // junk answer or stale reply: skip, keep reading
        }
        // Closed: the fault killed the stream — reconnect and resend.
        // Timeout: the reply may be wedged behind stalls; a fresh stream and
        // a resend is the safe recovery either way (replies are cached, so a
        // duplicate request costs nothing and changes no bytes).
        client_.close();
        resend = true;
      }
    }
    return std::nullopt;
  }

  std::string path_;
  Client client_;
  std::uint64_t reconnects = 0;
};

TEST(Chaos, ScheduleReplaysByteIdenticallyPerSeed) {
  ChaosOptions options;
  options.seed = 99;
  options.mean_gap_bytes = 64;
  ChaosSchedule a(options, 3, true);
  ChaosSchedule b(options, 3, true);
  ASSERT_TRUE(a.any());
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.peek().offset, b.peek().offset) << "event " << i;
    EXPECT_EQ(a.peek().mode, b.peek().mode) << "event " << i;
    a.pop();
    b.pop();
  }
  // A different seed, connection, or direction decorrelates the stream.
  for (ChaosSchedule other : {ChaosSchedule({.seed = 100,
                                             .mean_gap_bytes = 64},
                                            3, true),
                              ChaosSchedule(options, 4, true),
                              ChaosSchedule(options, 3, false)}) {
    ChaosSchedule base(options, 3, true);
    bool any_differ = false;
    for (int i = 0; i < 500; ++i) {
      any_differ |= base.peek().offset != other.peek().offset ||
                    base.peek().mode != other.peek().mode;
      base.pop();
      other.pop();
    }
    EXPECT_TRUE(any_differ);
  }
}

TEST(Chaos, GarbageIsNeverScheduledTowardTheClient) {
  ChaosOptions options;
  options.mean_gap_bytes = 8;
  // All modes on: the server->client stream must still never draw garbage —
  // junk in the reply stream would corrupt the byte-identity oracle.
  ChaosSchedule replies(options, 1, false);
  ASSERT_TRUE(replies.any());
  for (int i = 0; i < 2'000; ++i) {
    EXPECT_NE(replies.peek().mode, ChaosMode::kGarbage) << "event " << i;
    replies.pop();
  }
  // Garbage-only toward the client degenerates to a fault-free forwarder.
  ChaosOptions garbage_only;
  garbage_only.enabled[0] = garbage_only.enabled[1] = false;
  garbage_only.enabled[3] = false;
  EXPECT_FALSE(ChaosSchedule(garbage_only, 1, false).any());
  EXPECT_TRUE(ChaosSchedule(garbage_only, 1, true).any());
}

TEST(Chaos, ModeNamesRoundTrip) {
  for (unsigned m = 0; m < kChaosModeCount; ++m) {
    const ChaosMode mode = static_cast<ChaosMode>(m);
    const auto parsed = chaos_mode_from_name(chaos_mode_name(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(chaos_mode_from_name("thermite").has_value());
}

TEST_F(ChaosFixture, CampaignSurvivorsAreByteIdenticalAndTheDaemonLives) {
  StartDaemon();
  ChaosOptions options;
  options.seed = 4242;
  options.mean_gap_bytes = 256;
  options.chop_bytes = 32;
  options.stall_ms = 3;
  StartProxy(options);

  // The fault-free oracle: every request answered over a direct connection.
  // This also warms the daemon's cache, so the chaos-path replies are the
  // literal cached bytes — any deviation is transport corruption.
  constexpr int kRequests = 60;
  std::vector<std::string> requests;
  std::vector<std::string> expected;
  {
    Client direct;
    ASSERT_TRUE(direct.connect(daemon_path())) << direct.error();
    for (int i = 0; i < kRequests; ++i) {
      requests.push_back(encode_request(
          i, 3 + (i % 8), (i % 2) == 0 ? kProgramA : kProgramB));
      const auto reply = direct.roundtrip(requests.back());
      ASSERT_TRUE(reply.has_value()) << direct.error();
      expected.push_back(*reply);
    }
  }

  CampaignClient campaign(proxy_path());
  std::uint64_t survived = 0;
  std::uint64_t lost = 0;
  for (int i = 0; i < kRequests; ++i) {
    const auto reply = campaign.exchange(requests[i], i);
    if (!reply.has_value()) {
      ++lost;
      continue;
    }
    ++survived;
    // The core assertion: a surviving reply is byte-for-byte the fault-free
    // reply. Not "equivalent JSON" — identical bytes.
    EXPECT_EQ(*reply, expected[i]) << "request " << i;
  }

  EXPECT_EQ(survived + lost, static_cast<std::uint64_t>(kRequests));
  EXPECT_GE(survived, static_cast<std::uint64_t>(kRequests) / 2)
      << "lost " << lost << " of " << kRequests;
  EXPECT_GT(proxy_->stats().total_faults(), 0u);

  // The daemon behind the proxy took the whole campaign without crashing or
  // wedging: a direct request still answers immediately.
  Client after;
  ASSERT_TRUE(after.connect(daemon_path())) << after.error();
  after.set_io_timeout_ms(5'000);
  EXPECT_EQ(after.roundtrip("{\"id\":777,\"op\":\"ping\"}"),
            "{\"id\":777,\"ok\":true,\"result\":{\"pong\":true}}");
}

TEST_F(ChaosFixture, OneByteWritesPreserveEveryReplyByte) {
  // chop at every offset: the entire stream, both directions, is forwarded
  // one byte per send(). Before the short-write/EINTR audit this test
  // wedged or corrupted replies; now the reassembled bytes must be exact.
  StartDaemon();
  ChaosOptions options;
  options.seed = 7;
  options.enabled[1] = options.enabled[2] = options.enabled[3] = false;
  options.mean_gap_bytes = 1;  // a fault at every forwarded byte
  options.chop_bytes = 1;
  StartProxy(options);

  std::string expected;
  {
    Client direct;
    ASSERT_TRUE(direct.connect(daemon_path())) << direct.error();
    const auto reply = direct.roundtrip(encode_request(5, 6, kProgramA));
    ASSERT_TRUE(reply.has_value());
    expected = *reply;
  }

  Client through;
  ASSERT_TRUE(through.connect(proxy_path())) << through.error();
  through.set_io_timeout_ms(10'000);
  const auto chopped = through.roundtrip(encode_request(5, 6, kProgramA));
  ASSERT_TRUE(chopped.has_value()) << through.error();
  EXPECT_EQ(*chopped, expected);
  // Pipelining survives 1-byte forwarding too.
  EXPECT_EQ(through.roundtrip("{\"id\":9,\"op\":\"ping\"}"),
            "{\"id\":9,\"ok\":true,\"result\":{\"pong\":true}}");
  EXPECT_GT(proxy_->stats().faults[0].load(), 0u);
}

TEST_F(ChaosFixture, DisconnectFaultsKillStreamsButNeverTheDaemon) {
  StartDaemon();
  ChaosOptions options;
  options.seed = 11;
  options.enabled[0] = options.enabled[1] = options.enabled[2] = false;
  options.mean_gap_bytes = 48;  // every connection dies within ~100 bytes
  StartProxy(options);

  int closed_streams = 0;
  for (int i = 0; i < 15; ++i) {
    Client client;
    if (!client.connect(proxy_path())) {
      ++closed_streams;  // proxy torn down the listener race — still counts
      continue;
    }
    client.set_io_timeout_ms(2'000);
    if (!client.roundtrip(encode_request(100 + i, 4, kProgramA))
             .has_value()) {
      ++closed_streams;
    }
  }
  EXPECT_GT(closed_streams, 0) << "the disconnect campaign never fired";
  EXPECT_GT(proxy_->stats().faults[3].load(), 0u);

  Client after;
  ASSERT_TRUE(after.connect(daemon_path())) << after.error();
  after.set_io_timeout_ms(5'000);
  EXPECT_EQ(after.roundtrip("{\"id\":1,\"op\":\"ping\"}"),
            "{\"id\":1,\"ok\":true,\"result\":{\"pong\":true}}");
}

TEST(Chaos, DeadUpstreamClosesTheClientInsteadOfHanging) {
  ChaosOptions options;
  options.listen_path = path_for("orphan");
  options.upstream_path = "/tmp/asimt_chaos_no_such_daemon.sock";
  ChaosProxy proxy(options);
  ASSERT_TRUE(proxy.start()) << proxy.error();
  std::thread runner([&] { proxy.run(); });

  Client client;
  ASSERT_TRUE(client.connect(options.listen_path)) << client.error();
  client.set_io_timeout_ms(2'000);
  // The proxy accepts, fails to dial the daemon, and closes: the client must
  // see EOF, not a hang and not a crash.
  std::string line;
  EXPECT_EQ(client.recv_line_wait(line, 2'000), Client::LineResult::kClosed);
  EXPECT_EQ(proxy.stats().connections.load(), 0u);

  proxy.notify_stop();
  runner.join();
}

}  // namespace
}  // namespace asimt::serve
