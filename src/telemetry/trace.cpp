#include "telemetry/trace.h"

#include <atomic>
#include <fstream>
#include <ostream>

#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace asimt::telemetry {

namespace {

std::atomic<TraceWriter*> g_writer{nullptr};
std::mutex g_writer_mu;                       // guards install/teardown
std::unique_ptr<TraceWriter> g_owned_writer;  // writer built by open_trace/set_trace_stream
std::unique_ptr<std::ofstream> g_owned_file;  // file stream owned by open_trace

thread_local int t_depth = 0;

std::atomic<int> g_next_tid{0};
thread_local int t_tid = -1;

}  // namespace

int trace_tid() {
  if (t_tid < 0) t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

std::int64_t now_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                               start)
      .count();
}

void TraceWriter::begin(std::string_view name, int depth, std::int64_t t_us) {
  std::string line = "{\"ev\":\"begin\",\"name\":\"";
  line += json::escape(name);
  line += "\",\"depth\":";
  line += std::to_string(depth);
  line += ",\"tid\":";
  line += std::to_string(trace_tid());
  line += ",\"t_us\":";
  line += std::to_string(t_us);
  line += "}";
  write_line(line);
}

void TraceWriter::end(std::string_view name, int depth, std::int64_t t_us,
                      std::int64_t dur_us) {
  std::string line = "{\"ev\":\"end\",\"name\":\"";
  line += json::escape(name);
  line += "\",\"depth\":";
  line += std::to_string(depth);
  line += ",\"tid\":";
  line += std::to_string(trace_tid());
  line += ",\"t_us\":";
  line += std::to_string(t_us);
  line += ",\"dur_us\":";
  line += std::to_string(dur_us);
  line += "}";
  write_line(line);
}

void TraceWriter::instant(
    std::string_view name,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::string line = "{\"ev\":\"instant\",\"name\":\"";
  line += json::escape(name);
  line += "\",\"tid\":";
  line += std::to_string(trace_tid());
  line += ",\"t_us\":";
  line += std::to_string(now_us());
  for (const auto& [key, value] : fields) {
    line += ",\"";
    line += json::escape(key);
    line += "\":\"";
    line += json::escape(value);
    line += "\"";
  }
  line += "}";
  write_line(line);
}

void TraceWriter::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  *out_ << line << '\n';
}

void TraceWriter::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  out_->flush();
}

bool open_trace(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!*file) return false;
  std::lock_guard<std::mutex> lock(g_writer_mu);
  g_writer.store(nullptr, std::memory_order_release);
  g_owned_writer = std::make_unique<TraceWriter>(*file);
  g_owned_file = std::move(file);
  g_writer.store(g_owned_writer.get(), std::memory_order_release);
  return true;
}

void set_trace_stream(std::ostream* out) {
  std::lock_guard<std::mutex> lock(g_writer_mu);
  g_writer.store(nullptr, std::memory_order_release);
  g_owned_file.reset();
  if (out == nullptr) {
    g_owned_writer.reset();
    return;
  }
  g_owned_writer = std::make_unique<TraceWriter>(*out);
  g_writer.store(g_owned_writer.get(), std::memory_order_release);
}

void close_trace() {
  std::lock_guard<std::mutex> lock(g_writer_mu);
  if (TraceWriter* w = g_writer.load(std::memory_order_acquire)) w->flush();
  g_writer.store(nullptr, std::memory_order_release);
  g_owned_writer.reset();
  g_owned_file.reset();
}

TraceWriter* trace_writer() { return g_writer.load(std::memory_order_acquire); }

void trace_instant(
    std::string_view name,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  if (TraceWriter* w = trace_writer()) w->instant(name, fields);
}

TracePhase::TracePhase(std::string_view name) {
  tracing_ = trace_writer() != nullptr;
  timing_ = enabled();
  if (!tracing_ && !timing_) return;
  name_ = name;
  depth_ = t_depth++;
  start_us_ = now_us();
  if (tracing_) {
    if (TraceWriter* w = trace_writer()) w->begin(name_, depth_, start_us_);
  }
}

TracePhase::~TracePhase() {
  if (!tracing_ && !timing_) return;
  const std::int64_t end_us = now_us();
  const std::int64_t dur = end_us - start_us_;
  --t_depth;
  if (tracing_) {
    if (TraceWriter* w = trace_writer()) w->end(name_, depth_, end_us, dur);
  }
  if (timing_) {
    observe("phase." + name_ + ".us", static_cast<double>(dur));
  }
}

ScopedTimer::ScopedTimer(std::string_view histogram_name) {
  if (!enabled()) return;
  active_ = true;
  name_ = histogram_name;
  start_us_ = now_us();
}

ScopedTimer::~ScopedTimer() {
  if (!active_) return;
  observe(name_, static_cast<double>(now_us() - start_us_));
}

}  // namespace asimt::telemetry
