// Scalar-oracle chain encoder: the pre-bit-plane implementation, verbatim.
//
// When core/chain_encoder.cpp moved to table-driven search over packed
// 64-bit windows, the original formulation — byte-per-bit storage
// (bits::reference::BitSeq), per-bit window extraction, and a fresh
// enumeration of every (code word, τ) pair per block — was moved here
// unchanged. It is the ground truth the differential test layer
// (tests/bitstream/bitplane_equivalence_test.cpp) and the `bitplane` fuzz
// oracle compare the fast path against: same ChainOptions in, bit-identical
// EncodedChain out (stored bits, per-block τ choices, costs). Do not
// optimize this file; its value is that it shares no kernels with the fast
// path beyond Transform::apply and the partition rule.
#pragma once

#include "core/chain_encoder.h"

namespace asimt::core::reference {

// Greedy / DP encode exactly as options.strategy selects, using the original
// scalar algorithms. Deterministic tie-breaking is identical to the packed
// encoder's contract: cheapest cost, then earliest transform in
// options.allowed, then numerically smallest code word.
EncodedChain encode_chain(const bits::BitSeq& original,
                          const ChainOptions& options);

// Serial scalar counterpart of ChainEncoder::encode_many (no thread pool —
// the oracle stays single-threaded and obvious).
std::vector<EncodedChain> encode_many(std::span<const bits::BitSeq> originals,
                                      const ChainOptions& options);

}  // namespace asimt::core::reference
