// Unit tests for counter/gauge/histogram semantics, the registry, and the
// disabled-mode no-op guarantee.
#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "telemetry/export.h"
#include "telemetry/json.h"
#include "telemetry/trace.h"

namespace asimt::telemetry {
namespace {

// The global enable flag and registry are process-wide; every test restores
// the disabled default so ordering cannot leak between tests.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    MetricsRegistry::global().reset();
  }
  void TearDown() override {
    set_enabled(false);
    MetricsRegistry::global().reset();
  }
};

TEST_F(MetricsTest, CounterIsMonotonic) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST_F(MetricsTest, GaugeHoldsLastValue) {
  Gauge g;
  g.set(1.5);
  g.set(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), -2.5);
}

TEST_F(MetricsTest, HistogramSummaryStatistics) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.observe(4.0);
  h.observe(1.0);
  h.observe(16.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 21.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 16.0);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0);
}

TEST_F(MetricsTest, HistogramPowerOfTwoBuckets) {
  Histogram h;
  h.observe(0.25);  // bucket 0: < 1
  h.observe(1.0);   // [1,2) -> bucket 1
  h.observe(1.5);   // bucket 1
  h.observe(2.0);   // [2,4) -> bucket 2
  h.observe(1024.0);  // [1024,2048) -> bucket 11
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(11), 1u);
}

TEST_F(MetricsTest, RegistryReturnsStableHandles) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(reg.counter("x").value(), 7);
  // Same name in different metric families is distinct.
  reg.gauge("x").set(3.0);
  EXPECT_EQ(reg.counter("x").value(), 7);
}

TEST_F(MetricsTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.counter("b.count").add(2);
  reg.counter("a.count").add(1);
  reg.gauge("g").set(0.5);
  reg.histogram("h").observe(3.0);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.count");  // map order = sorted
  EXPECT_EQ(snap.counters[1].second, 2);
  ASSERT_EQ(snap.gauges.size(), 1u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  ASSERT_EQ(snap.histograms[0].buckets.size(), 1u);
  EXPECT_EQ(snap.histograms[0].buckets[0].first, 2);  // 3.0 -> [2,4)
}

TEST_F(MetricsTest, DisabledModeRecordsNothing) {
  ASSERT_FALSE(enabled());
  count("noop.counter", 5);
  set_gauge("noop.gauge", 1.0);
  observe("noop.hist", 2.0);
  EXPECT_TRUE(MetricsRegistry::global().snapshot().empty());
}

TEST_F(MetricsTest, EnabledModeRecordsThroughHelpers) {
  set_enabled(true);
  count("on.counter", 5);
  count("on.counter");
  set_gauge("on.gauge", 2.5);
  observe("on.hist", 8.0);
  const auto snap = MetricsRegistry::global().snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, 6);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 2.5);
  EXPECT_EQ(snap.histograms[0].count, 1u);
}

// Concurrency stress for the full telemetry surface the parallel engine
// leans on: counters, histograms, and TracePhase spans hammered from eight
// threads at once (the same shape as parallel_for workers timing their
// chunks). Totals must be exact, and both export formats must still be
// well-formed JSON — validated by parsing them back, exactly what the
// json_check tool does to --metrics/--trace output.
TEST_F(MetricsTest, GlobalHelpersAndSpansAreCoherentUnderConcurrency) {
  constexpr int kThreads = 8, kPerThread = 500;
  std::ostringstream trace;
  set_enabled(true);
  set_trace_stream(&trace);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        TracePhase outer("stress.outer");
        count("stress.tasks");
        observe("stress.value", static_cast<double>(t + 1));
        TracePhase inner("stress.inner");  // nested: depth is per-thread
      }
    });
  }
  for (auto& t : threads) t.join();
  set_trace_stream(nullptr);

  constexpr long long kTotal = kThreads * kPerThread;
  MetricsRegistry& reg = MetricsRegistry::global();
  EXPECT_EQ(reg.counter("stress.tasks").value(), kTotal);
  EXPECT_EQ(reg.histogram("stress.value").count(),
            static_cast<std::uint64_t>(kTotal));
  // sum of (t+1) over threads = kThreads*(kThreads+1)/2 per iteration
  EXPECT_DOUBLE_EQ(reg.histogram("stress.value").sum(),
                   kPerThread * kThreads * (kThreads + 1) / 2.0);
  // Every span landed a duration sample in its phase histogram.
  EXPECT_EQ(reg.histogram("phase.stress.outer.us").count(),
            static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(reg.histogram("phase.stress.inner.us").count(),
            static_cast<std::uint64_t>(kTotal));

  // The JSON export must parse back cleanly even after concurrent writes.
  const json::Value doc = json::parse(metrics_json(reg));
  EXPECT_EQ(doc.at("counters").at("stress.tasks").as_int(), kTotal);
  EXPECT_EQ(doc.at("histograms").at("stress.value").at("count").as_int(),
            kTotal);

  // Trace stream: every line is one valid JSON object (TraceWriter holds a
  // line lock, so interleaving threads must not tear lines), begin/end
  // events balance per span name, and inner spans nest strictly deeper than
  // their per-thread outer span.
  const std::vector<json::Value> events = json::parse_lines(trace.str());
  ASSERT_EQ(events.size(), static_cast<std::size_t>(4 * kTotal));
  long long outer_begin = 0, inner_end = 0;
  for (const json::Value& ev : events) {
    ASSERT_TRUE(ev.is_object());
    const std::string& name = ev.at("name").as_string();
    const std::string& kind = ev.at("ev").as_string();
    const long long depth = ev.at("depth").as_int();
    if (name == "stress.outer") {
      EXPECT_EQ(depth, 0);
      if (kind == "begin") ++outer_begin;
    } else {
      ASSERT_EQ(name, "stress.inner");
      EXPECT_EQ(depth, 1);
      if (kind == "end") {
        EXPECT_GE(ev.at("dur_us").as_int(), 0);
        ++inner_end;
      }
    }
  }
  EXPECT_EQ(outer_begin, kTotal);
  EXPECT_EQ(inner_end, kTotal);
}

TEST_F(MetricsTest, CountersAreThreadSafe) {
  MetricsRegistry reg;
  constexpr int kThreads = 4, kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) reg.counter("shared").add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("shared").value(), kThreads * kPerThread);
}

}  // namespace
}  // namespace asimt::telemetry
