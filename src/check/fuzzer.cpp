#include "check/fuzzer.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>

#include "telemetry/json.h"

#include "check/gen.h"
#include "parallel/pool.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace asimt::check {

namespace {

struct IterationVerdict {
  std::uint8_t oracle = 0;
  bool failed = false;
  std::string message;  // empty unless failed
};

std::string write_reproducer(const std::string& dir, const FuzzFailure& failure) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return {};
  const std::string path = dir + "/repro-" +
                           std::string(oracle_name(failure.oracle)) + "-iter" +
                           std::to_string(failure.iteration) + ".case";
  std::ofstream out(path, std::ios::binary);
  if (!out) return {};
  out << "# shrunk from fuzz iteration " << failure.iteration << "\n# "
      << failure.shrunk.failure << '\n'
      << serialize_case(failure.shrunk.reduced);
  return out ? path : std::string();
}

}  // namespace

FuzzReport run_fuzz(const FuzzOptions& options, const OracleHooks& hooks) {
  telemetry::TracePhase phase("fuzz");
  const Rng root(options.seed);

  // Coarse grain: one oracle run is microseconds except the exhaustive cost
  // cross-check; 64 iterations per task amortizes pool dispatch either way.
  parallel::ForOptions fan;
  fan.grain = 64;
  // Chunked so a wall-clock budget can stop the run at a deterministic
  // boundary: each completed iteration is the same pure function of
  // (seed, i) whether or not the clock intervenes later.
  constexpr std::uint64_t kChunk = 1024;
  const auto start = std::chrono::steady_clock::now();
  std::vector<IterationVerdict> verdicts;
  verdicts.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(options.iters, kChunk * 64)));
  std::uint64_t completed = 0;
  bool timed_out = false;
  while (completed < options.iters) {
    if (options.max_seconds > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= options.max_seconds) {
        timed_out = true;
        break;
      }
    }
    const std::uint64_t end = std::min(options.iters, completed + kChunk);
    verdicts.resize(static_cast<std::size_t>(end));
    parallel::parallel_for(
        static_cast<std::size_t>(end - completed),
        [&, base = completed](std::size_t i) {
          const FuzzCase c = generate_case(root.fork(base + i));
          IterationVerdict& v = verdicts[static_cast<std::size_t>(base) + i];
          v.oracle = static_cast<std::uint8_t>(c.oracle);
          if (std::optional<std::string> err = run_case(c, hooks)) {
            v.failed = true;
            v.message = std::move(*err);
          }
        },
        fan);
    completed = end;
  }

  FuzzReport report;
  report.iterations = completed;
  report.iterations_requested = options.iters;
  report.timed_out = timed_out;
  for (std::uint64_t i = 0; i < completed; ++i) {
    const IterationVerdict& v = verdicts[i];
    ++report.runs_per_oracle[v.oracle];
    if (!v.failed) continue;
    ++report.failure_count;
    if (report.failures.size() >= options.max_failures) continue;
    FuzzFailure failure;
    failure.iteration = i;
    failure.oracle = static_cast<Oracle>(v.oracle);
    failure.message = v.message;
    failure.shrunk = shrink_case(generate_case(root.fork(i)), hooks);
    if (!options.reproducer_dir.empty()) {
      failure.file = write_reproducer(options.reproducer_dir, failure);
    }
    report.failures.push_back(std::move(failure));
  }

  if (telemetry::enabled()) {
    telemetry::count("check.iterations", static_cast<long long>(report.iterations));
    telemetry::count("check.failures", static_cast<long long>(report.failure_count));
    for (int o = 0; o < kOracleCount; ++o) {
      telemetry::count(
          "check.runs." + std::string(oracle_name(static_cast<Oracle>(o))),
          static_cast<long long>(report.runs_per_oracle[o]));
    }
  }
  return report;
}

std::string format_report(const FuzzReport& report, const FuzzOptions& options) {
  std::string out = "fuzz: seed " + std::to_string(options.seed) + ", " +
                    std::to_string(report.iterations) + " iterations (";
  for (int o = 0; o < kOracleCount; ++o) {
    if (o) out += ", ";
    out += std::string(oracle_name(static_cast<Oracle>(o))) + " " +
           std::to_string(report.runs_per_oracle[o]);
  }
  out += ")\n";
  if (report.timed_out) {
    out += "TIMED OUT after " + std::to_string(options.max_seconds) +
           "s: completed " + std::to_string(report.iterations) + " of " +
           std::to_string(report.iterations_requested) +
           " requested iterations\n";
  }
  for (const FuzzFailure& f : report.failures) {
    out += "FAIL iter " + std::to_string(f.iteration) + ": " + f.message + '\n';
    out += "  shrunk (" + std::to_string(f.shrunk.accepted_edits) +
           " edits): " + f.shrunk.failure + '\n';
    if (!f.file.empty()) out += "  reproducer: " + f.file + '\n';
  }
  if (report.failure_count > report.failures.size()) {
    out += "  (+" +
           std::to_string(report.failure_count - report.failures.size()) +
           " more failures not shrunk)\n";
  }
  out += report.ok() ? "all oracles green\n"
                     : std::to_string(report.failure_count) + " FAILURES\n";
  return out;
}

std::string json_report(const FuzzReport& report, const FuzzOptions& options) {
  json::Value root = json::Value::object();
  root.set("seed", options.seed);
  root.set("iters_requested", report.iterations_requested);
  root.set("iters_completed", report.iterations);
  root.set("timed_out", report.timed_out);
  root.set("max_seconds", options.max_seconds);
  root.set("failure_count", report.failure_count);
  json::Value per_oracle = json::Value::object();
  for (int o = 0; o < kOracleCount; ++o) {
    per_oracle.set(oracle_name(static_cast<Oracle>(o)),
                   report.runs_per_oracle[o]);
  }
  root.set("runs_per_oracle", std::move(per_oracle));
  json::Value failures = json::Value::array();
  for (const FuzzFailure& f : report.failures) {
    json::Value entry = json::Value::object();
    entry.set("iteration", f.iteration);
    entry.set("oracle", oracle_name(f.oracle));
    entry.set("message", f.message);
    entry.set("shrunk_failure", f.shrunk.failure);
    if (!f.file.empty()) entry.set("reproducer", f.file);
    failures.push_back(std::move(entry));
  }
  root.set("failures", std::move(failures));
  return root.dump(2) + "\n";
}

}  // namespace asimt::check
