// Regression guard for the serving path's observability budget: a warm
// (cache-hit) handle_line with spans + histograms enabled must track the
// recorder-off path. The strict <2% number from the ISSUE is tracked by
// BM_ServeHandleLineWarm/{0,1} in bench/micro_serve through the trajectory
// gate; this test enforces a CI-safe envelope (min-of-N timing, generous
// margin) so a structural regression — an allocation, lock, or syscall on
// the hot path — fails fast everywhere, while scheduler noise does not.
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "obsv/span.h"
#include "serve/service.h"
#include "telemetry/json.h"

namespace asimt::serve {
namespace {

const char kProgram[] =
    ".text\n"
    "start:\n"
    "  li $t0, 64\n"
    "loop:\n"
    "  addiu $t1, $t1, 3\n"
    "  xor $t2, $t1, $t0\n"
    "  addiu $t0, $t0, -1\n"
    "  bnez $t0, loop\n"
    "  halt\n";

std::string request_line() {
  json::Value req = json::Value::object();
  req.set("id", 1);
  req.set("op", "encode");
  req.set("text", kProgram);
  req.set("k", 5);
  return req.dump();
}

// One warm pass the way the server drives it: span begun, handle_line,
// write mark, recorder record. Returns the best of `repeats` timed runs of
// `iters` requests.
double min_run_seconds(Service& service, const std::string& line, int repeats,
                       int iters) {
  obsv::SpanBuilder span;
  std::uint64_t seq = 0;
  double best = 1e9;
  std::size_t bytes = 0;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      span.begin(1, ++seq);
      bytes += service.handle_line(line, &span).size();
      span.mark(obsv::Stage::kWrite);
      service.recorder().record(span.span(), nullptr);
    }
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  EXPECT_GT(bytes, 0u);
  return best;
}

TEST(ServeOverheadTest, EnabledObservabilityStaysNearTheDisabledPath) {
  ServiceOptions off;
  off.recorder.enabled = false;
  Service disabled(off);
  Service enabled;  // recorder on by default
  const std::string line = request_line();
  constexpr int kIters = 2000;

  // Warm both services (cold encode + allocator) before timing.
  min_run_seconds(disabled, line, 1, kIters);
  min_run_seconds(enabled, line, 1, kIters);

  const double off_s = min_run_seconds(disabled, line, 5, kIters);
  const double on_s = min_run_seconds(enabled, line, 5, kIters);

  // Budget: <2% tracked by the benches; 25% here absorbs CI scheduling
  // noise while still catching anything structurally expensive (the span
  // path must stay allocation- and lock-free per warm request).
  EXPECT_LT(on_s, off_s * 1.25 + 1e-4)
      << "observability-enabled warm path cost "
      << (on_s / off_s - 1.0) * 100.0
      << "% over the disabled path (" << on_s * 1e9 / kIters << " vs "
      << off_s * 1e9 / kIters << " ns/req)";
}

}  // namespace
}  // namespace asimt::serve
