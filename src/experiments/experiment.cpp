#include "experiments/experiment.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "baselines/bus_codes.h"
#include "core/fetch_decoder.h"
#include "isa/assembler.h"
#include "power/power.h"
#include "sim/bus.h"
#include "sim/cpu.h"

namespace asimt::experiments {

long long dynamic_transitions(const cfg::Cfg& cfg, const cfg::Profile& profile,
                              std::span<const std::uint32_t> image) {
  return cfg::dynamic_transitions(cfg, profile, image);
}

namespace {

// Verifies that the cycle-level FetchDecoder hardware model restores every
// original word of every selected block when fed the encoded bus stream.
void verify_selection_decodes(const core::SelectionResult& selection) {
  core::FetchDecoder decoder(selection.tt, selection.bbit);
  for (const core::BlockEncoding& enc : selection.encodings) {
    for (std::size_t i = 0; i < enc.encoded_words.size(); ++i) {
      const std::uint32_t pc =
          enc.start_pc + 4 * static_cast<std::uint32_t>(i);
      const std::uint32_t decoded = decoder.feed(pc, enc.encoded_words[i]);
      if (decoded != enc.original_words[i]) {
        throw std::logic_error(
            "FetchDecoder failed to restore word at pc=" + std::to_string(pc));
      }
    }
    if (decoder.in_encoded_mode()) {
      throw std::logic_error("FetchDecoder did not exit encoded mode at block end");
    }
  }
}

}  // namespace

WorkloadResult run_workload(const workloads::Workload& workload,
                            const ExperimentOptions& options) {
  WorkloadResult result;
  result.name = workload.name;

  const isa::Program program = isa::assemble(workload.source);
  const cfg::Cfg cfg = cfg::build_cfg(program);

  // --- single simulation: profile, correctness, Bus-Invert baseline -------
  sim::Memory memory;
  memory.load_program(program);
  sim::Cpu cpu(memory);
  cpu.state().pc = program.entry();
  workload.init(memory, cpu.state());

  cfg::Profiler profiler(cfg);
  baselines::BusInvertMonitor bus_invert;
  const std::uint64_t steps =
      cpu.run(options.max_steps, [&](std::uint32_t pc, std::uint32_t word) {
        profiler.on_fetch(pc);
        bus_invert.observe(word);
      });
  if (!cpu.state().halted) {
    throw std::runtime_error(workload.name + ": did not halt within step budget");
  }
  result.instructions = steps;
  result.bus_invert_transitions = bus_invert.transitions();

  std::string error;
  result.check_passed = workload.check(memory, &error);
  result.check_error = error;

  const cfg::Profile profile = profiler.take();
  result.baseline_transitions = cfg::dynamic_transitions(cfg, profile, cfg.text);

  // --- per block size: select, encode, verify, measure --------------------
  for (const int k : options.block_sizes) {
    core::SelectionOptions sel;
    sel.chain.block_size = k;
    sel.chain.strategy = options.strategy;
    sel.tt_budget = options.tt_budget;
    sel.bbit_budget = options.bbit_budget;
    const core::SelectionResult selection =
        core::select_and_encode(cfg, profile, sel);
    if (options.verify_decode) verify_selection_decodes(selection);

    const std::vector<std::uint32_t> image =
        selection.apply_to_text(cfg.text, cfg.text_base);

    PerBlockSizeResult per;
    per.block_size = k;
    per.transitions = cfg::dynamic_transitions(cfg, profile, image);
    per.reduction_percent =
        power::reduction_percent(result.baseline_transitions, per.transitions);
    per.tt_entries_used = selection.tt_entries_used;
    per.blocks_encoded = static_cast<int>(selection.encodings.size());
    for (const core::BlockEncoding& enc : selection.encodings) {
      const int idx = cfg.block_starting_at(enc.start_pc);
      per.decoded_fetches +=
          profile.block_counts[static_cast<std::size_t>(idx)] *
          enc.original_words.size();
    }
    result.per_block_size.push_back(per);
  }
  return result;
}

std::string format_fig6_table(const std::vector<WorkloadResult>& results) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf, "%-14s", "");
  out += buf;
  for (const WorkloadResult& r : results) {
    std::snprintf(buf, sizeof buf, "%10s", r.name.c_str());
    out += buf;
  }
  out += '\n';

  auto row_label = [&](const std::string& label) {
    std::snprintf(buf, sizeof buf, "%-14s", label.c_str());
    out += buf;
  };

  row_label("#TR");
  for (const WorkloadResult& r : results) {
    std::snprintf(buf, sizeof buf, "%10.2f",
                  static_cast<double>(r.baseline_transitions) / 1e6);
    out += buf;
  }
  out += '\n';

  const std::size_t sweeps = results.empty() ? 0 : results[0].per_block_size.size();
  for (std::size_t s = 0; s < sweeps; ++s) {
    row_label("#" + std::to_string(results[0].per_block_size[s].block_size) +
              "-block");
    for (const WorkloadResult& r : results) {
      std::snprintf(buf, sizeof buf, "%10.2f",
                    static_cast<double>(r.per_block_size[s].transitions) / 1e6);
      out += buf;
    }
    out += '\n';
    row_label("Reduction(%)");
    for (const WorkloadResult& r : results) {
      std::snprintf(buf, sizeof buf, "%10.1f",
                    r.per_block_size[s].reduction_percent);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

bool fast_mode() {
  const char* value = std::getenv("ASIMT_FAST");
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

workloads::SizeConfig bench_sizes() {
  return fast_mode() ? workloads::SizeConfig::small() : workloads::SizeConfig{};
}

}  // namespace asimt::experiments
