// Unit tests for the measurement harness: the analytic transition model on
// synthetic profiles, table formatting, and option plumbing.
#include "experiments/experiment.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "isa/assembler.h"
#include "parallel/pool.h"
#include "power/power.h"
#include "sim/cpu.h"
#include "telemetry/json.h"

namespace asimt::experiments {
namespace {

// Two blocks: A (3 instructions) falling through to B (2 instructions).
struct Synthetic {
  cfg::Cfg cfg;
  cfg::Profile profile;
};

Synthetic make_synthetic() {
  Synthetic s;
  s.cfg.text_base = 0x1000;
  s.cfg.text = {0x000000FFu, 0x0000FF00u, 0x00FF0000u,   // block A
                0xFF000000u, 0x00000000u};               // block B
  cfg::BasicBlock a;
  a.index = 0;
  a.start = 0x1000;
  a.end = 0x100C;
  a.successors = {1};
  cfg::BasicBlock b;
  b.index = 1;
  b.start = 0x100C;
  b.end = 0x1014;
  s.cfg.blocks = {a, b};
  s.cfg.block_by_start = {{0x1000, 0}, {0x100C, 1}};
  s.profile.block_counts = {3, 2};
  s.profile.edge_counts[cfg::Profile::edge_key(0, 1)] = 2;
  s.profile.edge_counts[cfg::Profile::edge_key(1, 0)] = 2;
  return s;
}

TEST(DynamicTransitions, HandComputedSyntheticCase) {
  const Synthetic s = make_synthetic();
  // Intra A: |FF^FF00|=16, |FF00^FF0000|=16 -> 32 per execution, x3.
  // Intra B: |FF000000^0|=8 per execution, x2.
  // Edge A->B: |00FF0000 ^ FF000000| = 16, x2.
  // Edge B->A: |0 ^ 000000FF| = 8, x2.
  const long long expected = 3 * 32 + 2 * 8 + 2 * 16 + 2 * 8;
  EXPECT_EQ(cfg::dynamic_transitions(s.cfg, s.profile, s.cfg.text), expected);
}

TEST(DynamicTransitions, ZeroCountsContributeNothing) {
  Synthetic s = make_synthetic();
  s.profile.block_counts = {0, 0};
  s.profile.edge_counts.clear();
  EXPECT_EQ(cfg::dynamic_transitions(s.cfg, s.profile, s.cfg.text), 0);
}

TEST(DynamicTransitions, AlternativeImageChangesTotals) {
  const Synthetic s = make_synthetic();
  std::vector<std::uint32_t> constant_image(s.cfg.text.size(), 0x12345678u);
  EXPECT_EQ(cfg::dynamic_transitions(s.cfg, s.profile, constant_image), 0);
}

TEST(DynamicTransitions, SingleInstructionBlocksHaveNoIntraCost) {
  Synthetic s = make_synthetic();
  s.cfg.text = {0xFFFFFFFFu, 0x0u};
  cfg::BasicBlock a;
  a.index = 0;
  a.start = 0x1000;
  a.end = 0x1004;
  cfg::BasicBlock b;
  b.index = 1;
  b.start = 0x1004;
  b.end = 0x1008;
  s.cfg.blocks = {a, b};
  s.profile.block_counts = {5, 5};
  s.profile.edge_counts.clear();
  s.profile.edge_counts[cfg::Profile::edge_key(0, 1)] = 5;
  EXPECT_EQ(cfg::dynamic_transitions(s.cfg, s.profile, s.cfg.text), 5 * 32);
}

TEST(FormatFig6Table, EmptyResults) {
  const std::string table = format_fig6_table({});
  EXPECT_NE(table.find("#TR"), std::string::npos);
}

TEST(FastMode, ReadsEnvironment) {
  unsetenv("ASIMT_FAST");
  EXPECT_FALSE(fast_mode());
  setenv("ASIMT_FAST", "1", 1);
  EXPECT_TRUE(fast_mode());
  setenv("ASIMT_FAST", "0", 1);
  EXPECT_FALSE(fast_mode());
  unsetenv("ASIMT_FAST");
}

TEST(RunWorkload, ThrowsWhenStepBudgetTooSmall) {
  const workloads::Workload w =
      workloads::make_by_name("fft", workloads::SizeConfig::small());
  ExperimentOptions opt;
  opt.max_steps = 10;
  EXPECT_THROW(run_workload(w, opt), std::runtime_error);
}

TEST(RunWorkload, CustomBlockSizeList) {
  const workloads::Workload w =
      workloads::make_by_name("fft", workloads::SizeConfig::small());
  ExperimentOptions opt;
  opt.block_sizes = {3, 8};
  const WorkloadResult r = run_workload(w, opt);
  ASSERT_EQ(r.per_block_size.size(), 2u);
  EXPECT_EQ(r.per_block_size[0].block_size, 3);
  EXPECT_EQ(r.per_block_size[1].block_size, 8);
}

// Regression pin for the baseline hoist: the unencoded baseline is a
// property of (program, profile) alone, computed once before the per-k
// sweep. It must not drift with the block-size list, the job count, or the
// sweep's execution order — and it must equal a from-scratch recompute
// (assemble -> profile -> analytic model) of the same workload.
TEST(RunWorkload, BaselineTransitionsAreBlockSizeAndJobsInvariant) {
  const workloads::Workload w =
      workloads::make_by_name("fft", workloads::SizeConfig::small());

  ExperimentOptions single_k;
  single_k.block_sizes = {4};
  parallel::set_default_jobs(1);
  const WorkloadResult reference = run_workload(w, single_k);
  ASSERT_GT(reference.baseline_transitions, 0);

  ExperimentOptions full_sweep;  // default {4, 5, 6, 7}
  ExperimentOptions reversed;
  reversed.block_sizes = {7, 6, 5, 4};
  for (const unsigned jobs : {1u, 8u}) {
    parallel::set_default_jobs(jobs);
    for (const ExperimentOptions& opt : {single_k, full_sweep, reversed}) {
      const WorkloadResult r = run_workload(w, opt);
      EXPECT_EQ(r.baseline_transitions, reference.baseline_transitions)
          << "jobs=" << jobs << " sweep size " << opt.block_sizes.size();
      EXPECT_EQ(r.bus_invert_transitions, reference.bus_invert_transitions);
      // Every per-k row's reduction must be computed against that one
      // shared baseline.
      for (const PerBlockSizeResult& p : r.per_block_size) {
        EXPECT_DOUBLE_EQ(p.reduction_percent,
                         power::reduction_percent(r.baseline_transitions,
                                                  p.transitions))
            << "k=" << p.block_size;
      }
    }
  }
  parallel::set_default_jobs(0);

  // From-scratch recompute of the baseline, independent of run_workload.
  const isa::Program program = isa::assemble(w.source);
  const cfg::Cfg cfg = cfg::build_cfg(program);
  sim::Memory memory;
  memory.load_program(program);
  sim::Cpu cpu(memory);
  cpu.state().pc = program.entry();
  if (w.init) w.init(memory, cpu.state());
  cfg::Profiler profiler(cfg);
  ASSERT_GT(cpu.run(w.max_steps, [&](std::uint32_t pc, std::uint32_t) {
    profiler.on_fetch(pc);
  }), 0u);
  ASSERT_TRUE(cpu.state().halted);
  const cfg::Profile profile = profiler.take();
  EXPECT_EQ(cfg::dynamic_transitions(cfg, profile, cfg.text),
            reference.baseline_transitions);
}

// The opt-in hotspot pass: per-k residual hotspots are populated, ranked,
// reconcile with the row's transition total, and stay bit-identical across
// job counts (the determinism contract extends to every exported number).
TEST(RunWorkload, HotspotPassRanksResidualBlocksDeterministically) {
  const workloads::Workload w =
      workloads::make_by_name("fft", workloads::SizeConfig::small());

  ExperimentOptions opt;
  opt.hotspot_top_n = 3;
  parallel::set_default_jobs(1);
  const WorkloadResult serial = run_workload(w, opt);
  parallel::set_default_jobs(8);
  const WorkloadResult threaded = run_workload(w, opt);
  parallel::set_default_jobs(0);

  ASSERT_FALSE(serial.per_block_size.empty());
  for (const PerBlockSizeResult& p : serial.per_block_size) {
    ASSERT_FALSE(p.hotspots.empty()) << "k=" << p.block_size;
    EXPECT_LE(p.hotspots.size(), 3u);
    long long prev = p.hotspots.front().transitions;
    long long top_sum = 0;
    for (const profile::BlockCost& h : p.hotspots) {
      EXPECT_LE(h.transitions, prev);  // ranked descending
      prev = h.transitions;
      top_sum += h.transitions;
      EXPECT_GE(h.exec, 0u);
    }
    // The top-N residual costs are a subset of the row's exact total.
    EXPECT_LE(top_sum, p.transitions);
    EXPECT_GT(top_sum, 0);
  }

  // Bit-exact across job counts, including the hotspot arrays: compare the
  // full JSON serialization byte for byte.
  EXPECT_EQ(to_json(serial).dump(2), to_json(threaded).dump(2));
  EXPECT_NE(to_json(serial).dump(2).find("\"hotspots\""), std::string::npos);

  // Off by default: no hotspot work, no JSON key.
  const WorkloadResult plain = run_workload(w, ExperimentOptions{});
  for (const PerBlockSizeResult& p : plain.per_block_size) {
    EXPECT_TRUE(p.hotspots.empty());
  }
  EXPECT_EQ(to_json(plain).dump(2).find("\"hotspots\""), std::string::npos);
}

// The JSON export must carry exactly the numbers the text report prints:
// serialize a real WorkloadResult, parse it back, and compare field by field
// against the struct (and spot-check against the Fig. 6 table formatting).
TEST(WorkloadResultJson, RoundTripMatchesTextReport) {
  const workloads::Workload w =
      workloads::make_by_name("fft", workloads::SizeConfig::small());
  ExperimentOptions opt;
  const WorkloadResult r = run_workload(w, opt);

  const json::Value parsed = json::parse(to_json(r).dump(2));
  EXPECT_EQ(parsed.at("name").as_string(), r.name);
  EXPECT_EQ(parsed.at("instructions").as_int(),
            static_cast<long long>(r.instructions));
  EXPECT_EQ(parsed.at("baseline_transitions").as_int(), r.baseline_transitions);
  EXPECT_EQ(parsed.at("bus_invert_transitions").as_int(),
            r.bus_invert_transitions);
  EXPECT_TRUE(parsed.at("check_passed").as_bool());
  const json::Array& per = parsed.at("per_block_size").as_array();
  ASSERT_EQ(per.size(), r.per_block_size.size());
  for (std::size_t i = 0; i < per.size(); ++i) {
    const PerBlockSizeResult& p = r.per_block_size[i];
    EXPECT_EQ(per[i].at("block_size").as_int(), p.block_size);
    EXPECT_EQ(per[i].at("transitions").as_int(), p.transitions);
    EXPECT_DOUBLE_EQ(per[i].at("reduction_percent").as_double(),
                     p.reduction_percent);
    EXPECT_EQ(per[i].at("tt_entries_used").as_int(), p.tt_entries_used);
    EXPECT_EQ(per[i].at("blocks_encoded").as_int(), p.blocks_encoded);
    EXPECT_EQ(per[i].at("decoded_fetches").as_int(),
              static_cast<long long>(p.decoded_fetches));
  }

  // The text table renders transitions/1e6 to two decimals; the JSON value
  // must agree with what the table printed.
  const std::string table = format_fig6_table({r});
  char expected[32];
  std::snprintf(expected, sizeof expected, "%10.2f",
                static_cast<double>(parsed.at("baseline_transitions").as_int()) /
                    1e6);
  EXPECT_NE(table.find(expected), std::string::npos);
}

TEST(WorkloadResultJson, ArrayFormAndCheckErrorField) {
  WorkloadResult r;
  r.name = "synthetic";
  r.check_passed = false;
  r.check_error = "mismatch at word 3";
  const json::Value arr = to_json(std::vector<WorkloadResult>{r});
  ASSERT_TRUE(arr.is_array());
  ASSERT_EQ(arr.as_array().size(), 1u);
  EXPECT_EQ(arr.as_array()[0].at("check_error").as_string(),
            "mismatch at word 3");
  EXPECT_FALSE(arr.as_array()[0].at("check_passed").as_bool());
}

TEST(Vulnerability, AttributionTableCoversEveryTargetDeterministically) {
  const VulnerabilityTable a = fault_vulnerability(7, 40, fault::Protection::kNone);
  const VulnerabilityTable b = fault_vulnerability(7, 40, fault::Protection::kNone);
  ASSERT_EQ(a.rows.size(), static_cast<std::size_t>(fault::kTargetCount));
  EXPECT_EQ(to_json(a).dump(2), to_json(b).dump(2));

  std::uint64_t corrupted = 0;
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].target, fault::kAllTargets[i]);
    EXPECT_EQ(a.rows[i].runs, 40u);
    EXPECT_DOUBLE_EQ(a.rows[i].corruption_rate,
                     static_cast<double>(a.rows[i].corrupted_runs) / 40.0);
    corrupted += a.rows[i].corrupted_runs;
  }
  // Unprotected single upsets must corrupt something somewhere, or the
  // attribution view is vacuous.
  EXPECT_GT(corrupted, 0u);

  const std::string table = format_vulnerability_table(a);
  for (const VulnerabilityRow& r : a.rows) {
    EXPECT_NE(table.find(std::string(fault::target_name(r.target))),
              std::string::npos);
  }
  EXPECT_NE(table.find("corrupt%"), std::string::npos);
}

TEST(Vulnerability, ParityProtectionShowsUpInTheTtRow) {
  const VulnerabilityTable t =
      fault_vulnerability(3, 60, fault::Protection::kParity);
  ASSERT_FALSE(t.rows.empty());
  const VulnerabilityRow& tt = t.rows[0];
  ASSERT_EQ(tt.target, fault::Target::kTt);
  // Every single-bit TT upset is caught by parity and served from the
  // backing copy: nothing corrupt, everything restored.
  EXPECT_EQ(tt.corrupted_runs, 0u);
  EXPECT_EQ(tt.restored_runs, tt.runs);
  const json::Value j = to_json(t);
  EXPECT_EQ(j.at("protection").as_string(), "parity");
  EXPECT_EQ(j.at("rows").as_array().size(), t.rows.size());
}

}  // namespace
}  // namespace asimt::experiments
