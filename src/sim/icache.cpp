#include "sim/icache.h"

#include <bit>
#include <stdexcept>

namespace asimt::sim {

InstructionCache::InstructionCache(Config config) : config_(config) {
  if (config_.line_bytes < 4 || std::popcount(config_.line_bytes) != 1) {
    throw std::invalid_argument("icache: line size must be a power of two >= 4");
  }
  if (config_.sets == 0 || std::popcount(config_.sets) != 1) {
    throw std::invalid_argument("icache: set count must be a power of two");
  }
  if (config_.ways == 0) {
    throw std::invalid_argument("icache: need at least one way");
  }
  ways_.resize(static_cast<std::size_t>(config_.sets) * config_.ways);
}

bool InstructionCache::access(std::uint32_t pc, const TextImage& image) {
  ++stats_.accesses;
  ++tick_;
  const std::uint32_t line_addr = pc / config_.line_bytes;
  const std::uint32_t set = line_addr & (config_.sets - 1);
  const std::uint32_t tag = line_addr / config_.sets;
  Way* row = &ways_[static_cast<std::size_t>(set) * config_.ways];

  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (row[w].valid && row[w].tag == tag) {
      ++stats_.hits;
      row[w].last_used = tick_;
      return true;
    }
  }

  // Miss: refill the whole line over the memory-side bus, then install it
  // over the LRU victim.
  ++stats_.misses;
  const std::uint32_t line_base = line_addr * config_.line_bytes;
  for (std::uint32_t offset = 0; offset < config_.line_bytes; offset += 4) {
    const std::uint32_t addr = line_base + offset;
    const std::uint32_t word = image.contains(addr) ? image.word_at(addr) : 0;
    refill_bus_.observe(word);
    if (refill_hook_) refill_hook_(addr, word);
    ++stats_.refill_words;
  }
  // Victim selection: the lowest-index invalid way wins outright; only a
  // fully valid set falls back to true LRU. (The old loop never considered
  // way 0's validity explicitly and leaned on its last_used == 0 sentinel,
  // which also made two invalid ways fill in 1-before-0 order.)
  Way* victim = nullptr;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (!row[w].valid) {
      victim = &row[w];
      break;
    }
  }
  if (!victim) {
    victim = &row[0];
    for (std::uint32_t w = 1; w < config_.ways; ++w) {
      if (row[w].last_used < victim->last_used) victim = &row[w];
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->last_used = tick_;
  return false;
}

const InstructionCache::Way& InstructionCache::way_at(std::uint32_t set,
                                                      std::uint32_t way) const {
  if (set >= config_.sets || way >= config_.ways) {
    throw std::out_of_range("icache: way introspection out of range");
  }
  return ways_[static_cast<std::size_t>(set) * config_.ways + way];
}

void InstructionCache::publish_metrics(telemetry::MetricsRegistry& registry) const {
  if (!telemetry::enabled()) return;
  registry.counter("sim.icache.accesses").add(static_cast<long long>(stats_.accesses));
  registry.counter("sim.icache.hits").add(static_cast<long long>(stats_.hits));
  registry.counter("sim.icache.misses").add(static_cast<long long>(stats_.misses));
  registry.counter("sim.icache.refill_words")
      .add(static_cast<long long>(stats_.refill_words));
  registry.gauge("sim.icache.hit_rate").set(stats_.hit_rate());
  refill_bus_.publish("bus.icache_refill", registry);
}

}  // namespace asimt::sim
