#include "fault/fault.h"

#include <stdexcept>

namespace asimt::fault {

std::string_view target_name(Target target) {
  switch (target) {
    case Target::kTt: return "tt";
    case Target::kHistory: return "history";
    case Target::kImage: return "image";
    case Target::kBus: return "bus";
  }
  return "?";
}

std::optional<Target> target_from_name(std::string_view name) {
  for (Target t : kAllTargets) {
    if (name == target_name(t)) return t;
  }
  return std::nullopt;
}

std::string_view site_kind_name(SiteKind kind) {
  switch (kind) {
    case SiteKind::kTauBit: return "tau";
    case SiteKind::kEBit: return "e";
    case SiteKind::kCtBit: return "ct";
    case SiteKind::kHistoryBit: return "history";
    case SiteKind::kImageBit: return "image";
    case SiteKind::kBusBit: return "bus";
  }
  return "?";
}

std::size_t site_count(Target target, std::size_t words,
                       std::size_t tt_entries) {
  switch (target) {
    case Target::kTt:
      return tt_entries * kTtBitsPerEntry;
    case Target::kHistory:
      return words == 0 ? 0 : (words - 1) * core::kBusLines;
    case Target::kImage:
    case Target::kBus:
      return words * core::kBusLines;
  }
  return 0;
}

Site site_at(Target target, std::size_t words, std::size_t tt_entries,
             std::size_t index) {
  if (index >= site_count(target, words, tt_entries)) {
    throw std::out_of_range("fault::site_at: index past the site space");
  }
  Site site;
  site.target = target;
  switch (target) {
    case Target::kTt: {
      site.index = index / kTtBitsPerEntry;
      const std::size_t within = index % kTtBitsPerEntry;
      if (within < kTauBitsPerEntry) {
        site.kind = SiteKind::kTauBit;
        site.line = static_cast<unsigned>(within / core::kTauIndexBits);
        site.bit = static_cast<unsigned>(within % core::kTauIndexBits);
      } else if (within == kTauBitsPerEntry) {
        site.kind = SiteKind::kEBit;
      } else {
        site.kind = SiteKind::kCtBit;
        site.bit = static_cast<unsigned>(within - kTauBitsPerEntry - 1);
      }
      break;
    }
    case Target::kHistory:
      site.kind = SiteKind::kHistoryBit;
      site.index = 1 + index / core::kBusLines;  // upset precedes this fetch
      site.line = static_cast<unsigned>(index % core::kBusLines);
      break;
    case Target::kImage:
      site.kind = SiteKind::kImageBit;
      site.index = index / core::kBusLines;
      site.line = static_cast<unsigned>(index % core::kBusLines);
      break;
    case Target::kBus:
      site.kind = SiteKind::kBusBit;
      site.index = index / core::kBusLines;
      site.line = static_cast<unsigned>(index % core::kBusLines);
      break;
  }
  return site;
}

void apply_tt_fault(core::TtConfig& tt, const Site& site) {
  if (site.target != Target::kTt || site.index >= tt.entries.size()) {
    throw std::invalid_argument("apply_tt_fault: site does not address this TT");
  }
  core::TtEntry& entry = tt.entries[site.index];
  switch (site.kind) {
    case SiteKind::kTauBit:
      entry.tau[site.line] = static_cast<std::uint8_t>(
          (entry.tau[site.line] ^ (1u << site.bit)) &
          ((1u << core::kTauIndexBits) - 1));
      break;
    case SiteKind::kEBit:
      entry.end = !entry.end;
      break;
    case SiteKind::kCtBit:
      entry.ct = static_cast<std::uint8_t>((entry.ct ^ (1u << site.bit)) & 0x1Fu);
      break;
    default:
      throw std::invalid_argument("apply_tt_fault: not a TT site kind");
  }
}

void apply_image_fault(std::vector<std::uint32_t>& words, const Site& site) {
  if (site.target != Target::kImage || site.index >= words.size()) {
    throw std::invalid_argument(
        "apply_image_fault: site does not address this image");
  }
  words[site.index] ^= 1u << site.line;
}

}  // namespace asimt::fault
