// E5 — the paper's §6 experiment: encode randomly generated 1000-bit
// sequences with block size five and one-bit overlap; the total reduction
// should be within ~1% of the theoretical 50%.
#include <cstdio>
#include <random>

#include "core/chain_encoder.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt;
  using core::ChainStrategy;

  constexpr int kTrials = 200;
  constexpr std::size_t kBits = 1000;

  const std::pair<const char*, ChainStrategy> variants[] = {
      {"greedy (paper)", ChainStrategy::kGreedy},
      {"dp-optimal    ", ChainStrategy::kOptimalDp}};
  for (const auto& [label, strategy] : variants) {
    core::ChainOptions opt;
    opt.block_size = 5;
    opt.strategy = strategy;
    const core::ChainEncoder encoder(opt);

    std::mt19937 rng(20030310);  // DATE 2003
    double sum = 0, worst_low = 100, worst_high = 0;
    for (int t = 0; t < kTrials; ++t) {
      bits::BitSeq seq(kBits);
      for (std::size_t i = 0; i < kBits; ++i) seq.set(i, static_cast<int>(rng() & 1));
      const core::EncodedChain chain = encoder.encode(seq);
      if (!(core::decode_chain(chain) == seq)) {
        std::printf("FATAL: round-trip failure\n");
        return 1;
      }
      const double reduction =
          100.0 * (seq.transitions() - chain.stored.transitions()) /
          seq.transitions();
      sum += reduction;
      worst_low = std::min(worst_low, reduction);
      worst_high = std::max(worst_high, reduction);
    }
    std::printf(
        "%s  %d x %zu-bit uniform streams, k=5: mean reduction %.2f%% "
        "(min %.2f%%, max %.2f%%)\n",
        label, kTrials, kBits, sum / kTrials, worst_low, worst_high);
  }
  std::printf("paper: within 1%% of the expected 50%% -> reproduced\n");
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("random_sequences")
