// E7 — regenerates the paper's Figure 7: the percentage-reduction comparison
// across benchmarks and block sizes, rendered as a terminal bar chart.
// Set ASIMT_FAST=1 for reduced problem sizes.
#include <algorithm>
#include <cstdio>
#include <string>

#include "experiments/experiment.h"
#include "parallel/pool.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt;
  const workloads::SizeConfig sizes = experiments::bench_sizes();
  experiments::ExperimentOptions opt;

  // Parallel suite run; order and numbers are identical to the serial loop.
  const std::vector<workloads::Workload> suite = workloads::make_all(sizes);
  std::fprintf(stderr, "[fig7] running %zu workloads on %u jobs...\n",
               suite.size(), parallel::default_jobs());
  const std::vector<experiments::WorkloadResult> results =
      experiments::run_workloads(suite, opt);

  std::printf("Figure 7: percentage reduction comparison\n\n");
  constexpr int kScale = 60;  // chart width for 60%
  for (const auto& r : results) {
    std::printf("%s\n", r.name.c_str());
    for (const auto& per : r.per_block_size) {
      const int width = static_cast<int>(per.reduction_percent * kScale / 60.0);
      std::printf("  %d-block |%-*s| %5.1f%%\n", per.block_size, kScale,
                  std::string(static_cast<std::size_t>(std::max(width, 0)), '#').c_str(),
                  per.reduction_percent);
    }
  }

  std::printf("\nseries (benchmark, then reduction %% for k=4,5,6,7):\n");
  for (const auto& r : results) {
    std::printf("%-5s", r.name.c_str());
    for (const auto& per : r.per_block_size) std::printf(" %6.1f", per.reduction_percent);
    std::printf("\n");
  }

  // Machine-readable form for external plotting tools.
  std::printf("\ncsv:\nbenchmark,k,transitions,reduction_percent\n");
  for (const auto& r : results) {
    for (const auto& per : r.per_block_size) {
      std::printf("%s,%d,%lld,%.2f\n", r.name.c_str(), per.block_size,
                  per.transitions, per.reduction_percent);
    }
  }
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("chart_fig7")
