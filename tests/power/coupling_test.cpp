#include "power/coupling.h"

#include <gtest/gtest.h>

#include <random>

namespace asimt::power {
namespace {

// Brute-force reference classification over all 31 adjacent pairs.
long long reference_activity(std::uint32_t prev, std::uint32_t next) {
  long long total = 0;
  for (unsigned i = 0; i < 31; ++i) {
    const int p0 = (prev >> i) & 1, p1 = (prev >> (i + 1)) & 1;
    const int n0 = (next >> i) & 1, n1 = (next >> (i + 1)) & 1;
    const bool s0 = p0 != n0, s1 = p1 != n1;
    if (s0 && s1) {
      total += (n0 != n1) ? 2 : 0;  // opposite : same direction
    } else if (s0 || s1) {
      total += 1;
    }
  }
  return total;
}

TEST(CouplingMonitor, FirstWordIsFree) {
  CouplingMonitor monitor;
  monitor.observe(0xFFFFFFFFu);
  EXPECT_EQ(monitor.activity(), 0);
}

TEST(CouplingMonitor, SingleLineSwitchCouplesToBothNeighbours) {
  CouplingMonitor monitor;
  monitor.observe(0);
  monitor.observe(1u << 10);  // line 10 toggles: pairs (9,10) and (10,11)
  EXPECT_EQ(monitor.activity(), 2);
}

TEST(CouplingMonitor, EdgeLineHasOneNeighbour) {
  CouplingMonitor monitor;
  monitor.observe(0);
  monitor.observe(1u);  // line 0: only pair (0,1)
  EXPECT_EQ(monitor.activity(), 1);
  monitor.reset();
  monitor.observe(0);
  monitor.observe(0x80000000u);  // line 31: only pair (30,31)
  EXPECT_EQ(monitor.activity(), 1);
}

TEST(CouplingMonitor, SameDirectionPairIsFree) {
  CouplingMonitor monitor;
  monitor.observe(0);
  monitor.observe(0b11u);  // lines 0 and 1 both rise: pair (0,1) same dir
  // pair (0,1): 0; pair (1,2): one switched -> 1.
  EXPECT_EQ(monitor.activity(), 1);
}

TEST(CouplingMonitor, OppositeTogglePaysDouble) {
  CouplingMonitor monitor;
  monitor.observe(0b01u);
  monitor.observe(0b10u);  // lines 0,1 swap: opposite directions
  // pair (0,1): 2; pair (1,2): line1 rose, line2 held -> 1.
  EXPECT_EQ(monitor.activity(), 3);
}

TEST(CouplingMonitor, MatchesBruteForceOnRandomStreams) {
  std::mt19937 rng(77);
  CouplingMonitor monitor;
  std::uint32_t prev = 0;
  long long expected = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t word = rng();
    monitor.observe(word);
    if (i > 0) expected += reference_activity(prev, word);
    prev = word;
  }
  EXPECT_EQ(monitor.activity(), expected);
}

TEST(CouplingMonitor, ResetClears) {
  CouplingMonitor monitor;
  monitor.observe(0);
  monitor.observe(~0u);
  monitor.reset();
  EXPECT_EQ(monitor.activity(), 0);
  EXPECT_EQ(monitor.words_observed(), 0u);
}

TEST(CoupledEnergy, WeightsBothComponents) {
  const CouplingBusParams params{2e-12, 4e-12, 2.0};
  // self: 0.5 * 2p * 4 * 10 = 40p; coupling: 0.5 * 4p * 4 * 5 = 40p.
  EXPECT_DOUBLE_EQ(coupled_energy_joules(10, 5, params), 80e-12);
  EXPECT_DOUBLE_EQ(coupled_energy_joules(0, 0, params), 0.0);
}

}  // namespace
}  // namespace asimt::power
