// Cycle-by-cycle model of the fetch-side decode hardware (paper §7, Fig. 5).
//
// The decoder watches the PC and bus-word stream the fetch engine produces.
// A BBIT hit at a fetched PC enters "encoded mode" and selects the first TT
// entry of that basic block; per-line single-gate transformations then
// restore the original bits of each subsequent fetch. The E/CT fields of the
// tail TT entry tell the hardware when the encoded region ends; everything
// else passes through untouched (identity).
//
// Resilience hooks (docs/RESILIENCE.md): an entry guard lets a protection
// checker veto a TT entry as it is selected (TT parity), corrupt_history
// models a soft-error upset of the per-line history flip-flops, and
// abandon_encoded_mode is the recovery action of a decode-time consistency
// checker — the decoder drops to identity for the rest of the basic block,
// trading the power win for architectural correctness.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/hw_tables.h"

namespace asimt::core {

// Structured decode-path failure: the fetch hardware hit state it cannot
// trust (a τ index outside the 8-transform subset, or sequencing that ran
// past the provisioned TT — a truncated payload or corrupted E/CT chain).
// Carries the fault coordinates so campaigns and callers can attribute it.
class DecodeFault : public std::runtime_error {
 public:
  DecodeFault(std::string what, std::uint32_t pc, std::size_t tt_index,
              int line = -1)
      : std::runtime_error(std::move(what)),
        pc_(pc),
        tt_index_(tt_index),
        line_(line) {}

  std::uint32_t pc() const { return pc_; }        // offending fetch address
  std::size_t tt_index() const { return tt_index_; }  // TT entry involved
  int line() const { return line_; }              // bus line, -1 when n/a

 private:
  std::uint32_t pc_;
  std::size_t tt_index_;
  int line_;
};

class FetchDecoder {
 public:
  struct Stats {
    std::uint64_t fetches = 0;
    std::uint64_t decoded = 0;    // fetches that went through transformations
    std::uint64_t raw = 0;        // identity / not-encoded fetches
    std::uint64_t bbit_hits = 0;  // encoded-mode entries
    std::uint64_t degraded = 0;   // guard vetoes + external degrade requests
  };

  // Called as a TT entry is selected; returning false vetoes the entry: the
  // decoder leaves encoded mode and passes everything through as identity
  // until the next BBIT hit (graceful degradation — the fetch path falls
  // back to serving the unencoded backing copy of the block).
  using EntryGuard = std::function<bool(std::size_t index, const TtEntry&)>;

  FetchDecoder(TtConfig tt, std::vector<BbitEntry> bbit);

  // Processes one fetch: `bus_word` is what the instruction memory drove on
  // the bus for `pc`; the return value is the restored instruction word.
  std::uint32_t feed(std::uint32_t pc, std::uint32_t bus_word);

  bool in_encoded_mode() const { return active_; }
  const Stats& stats() const { return stats_; }

  // Installs the protection checker consulted on every entry selection.
  void set_entry_guard(EntryGuard guard) { guard_ = std::move(guard); }

  // Soft-error injection point: XOR-flips the per-line history flip-flops
  // between fetches (a single-event upset flips exactly one mask bit).
  void corrupt_history(std::uint32_t xor_mask) { history_ ^= xor_mask; }

  // External recovery action: a consistency checker that caught a decode
  // divergence forces identity mode for the remainder of the basic block.
  void abandon_encoded_mode() {
    if (active_) ++stats_.degraded;
    active_ = false;
  }

  // Hardware budget introspection.
  std::size_t tt_entries() const { return tt_.entries.size(); }
  std::size_t bbit_entries() const { return bbit_.size(); }

 private:
  std::uint32_t decode_word(std::uint32_t bus_word);
  // Returns false when the guard vetoed the entry (decoder left encoded mode).
  bool enter_entry(std::size_t index, bool at_block_entry, std::uint32_t pc);

  TtConfig tt_;
  // Per-TT-entry lane masks: lane_masks_[i][t] has bit `line` set iff entry i
  // decodes that line with kPaperSubset[t]. Lets decode_word restore all 32
  // lines with one τ-parallel apply per populated transform instead of 32
  // scalar gate evaluations (built once at construction; the TT is immutable
  // for the decoder's lifetime).
  std::vector<std::array<std::uint32_t, 8>> lane_masks_;
  std::unordered_map<std::uint32_t, std::uint16_t> bbit_;
  Stats stats_;
  EntryGuard guard_;

  bool active_ = false;
  std::size_t entry_index_ = 0;  // current TT entry
  int pos_in_block_ = 0;         // instructions decoded under this entry
  int entry_quota_ = 0;          // instructions this entry covers (k or k-1)
  int countdown_ = -1;           // remaining instructions when E entry active
  std::uint32_t history_ = 0;    // 32 per-line history flip-flops
};

}  // namespace asimt::core
