// The decoder peripheral — §7.1's second reprogramming alternative:
//
//   "The tables containing the power transformation information can be
//    accessed as a memory of a special peripheral device. The amount of
//    information ... can be easily written to this memory by a set of
//    instructions inserted within the application code and executed just
//    prior to entering the loop under consideration."
//
// Software programs the TT and BBIT through word stores to a memory-mapped
// register window, then sets the enable bit; from that point the peripheral
// acts as the fetch-side decoder. Register map (word offsets from the
// mapped base):
//
//   0x00  CTRL        bit 0: enable decode; bit 1: reset all state
//   0x04  BLOCK_SIZE  k (2..16)
//   0x08  TT_INDEX    selects the TT entry the next data words target
//   0x0C  TT_DATA0  .
//   0x10  TT_DATA1  | packed entry words (core/tt_format.h); writing
//   0x14  TT_DATA2  | DATA3 commits the entry and auto-increments
//   0x18  TT_DATA3  '  TT_INDEX (burst-friendly, like a real SRAM port)
//   0x1C  BBIT_PC     stages a basic-block start address
//   0x20  BBIT_INDEX  commits {staged PC, value} as a BBIT entry
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>

#include "core/fetch_decoder.h"
#include "core/tt_format.h"
#include "sim/memory.h"

namespace asimt::sim {

class DecoderPeripheral {
 public:
  static constexpr std::uint32_t kDefaultBase = 0xF0000000u;
  static constexpr std::uint32_t kWindowBytes = 0x24;

  enum Register : std::uint32_t {
    kCtrl = 0x00,
    kBlockSize = 0x04,
    kTtIndex = 0x08,
    kTtData0 = 0x0C,
    kTtData1 = 0x10,
    kTtData2 = 0x14,
    kTtData3 = 0x18,
    kBbitPc = 0x1C,
    kBbitIndex = 0x20,
  };

  // MMIO store entry point (offset is relative to the mapped base).
  void store(std::uint32_t offset, std::uint32_t value);

  // Binds this peripheral into a memory's MMIO region.
  void attach(Memory& memory, std::uint32_t base = kDefaultBase) {
    memory.map_mmio(base, kWindowBytes,
                    [this](std::uint32_t offset, std::uint32_t v) { store(offset, v); });
  }

  // The fetch path: decodes when enabled, passes through otherwise. An
  // installed bus-fault hook perturbs the word BEFORE the decoder sees it —
  // the soft-error injection point of the fault campaigns (src/fault/,
  // docs/RESILIENCE.md): what it models is a transient upset on the
  // instruction-memory data bus between the SRAM and the decode gates.
  std::uint32_t feed(std::uint32_t pc, std::uint32_t bus_word) {
    if (bus_fault_) bus_word = bus_fault_(pc, bus_word);
    return decoder_ ? decoder_->feed(pc, bus_word) : bus_word;
  }

  // Installs (or clears, with nullptr) the per-fetch bus-fault hook.
  void set_bus_fault(std::function<std::uint32_t(std::uint32_t pc,
                                                 std::uint32_t word)> hook) {
    bus_fault_ = std::move(hook);
  }

  bool enabled() const { return decoder_.has_value(); }
  const core::TtConfig& tt() const { return tt_; }
  const std::vector<core::BbitEntry>& bbit() const { return bbit_; }
  const core::FetchDecoder* decoder() const {
    return decoder_ ? &*decoder_ : nullptr;
  }

 private:
  void reset();

  core::TtConfig tt_{5, {}};
  std::vector<core::BbitEntry> bbit_;
  std::uint32_t tt_index_ = 0;
  std::array<std::uint32_t, core::kTtEntryWords> staged_entry_{};
  std::uint32_t staged_pc_ = 0;
  std::optional<core::FetchDecoder> decoder_;
  std::function<std::uint32_t(std::uint32_t, std::uint32_t)> bus_fault_;
};

}  // namespace asimt::sim
