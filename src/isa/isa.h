// The ASIMT instruction set — a 32-bit MIPS-I-like RISC with single-precision
// floating point.
//
// The paper evaluates on SimpleScalar, whose PISA is itself MIPS-derived.
// What the encoding technique needs from the ISA is only its bit-level
// structure: fixed 32-bit words with opcode/register/immediate fields in
// stable positions, which is exactly what produces the vertical bit
// correlations the transformations exploit. Field layout and numbering follow
// MIPS-I so the instruction words are realistic. Differences from real MIPS:
// no branch delay slots, no exceptions/TLB, FP registers are 32 independent
// singles.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace asimt::isa {

inline constexpr std::uint32_t kInstructionBytes = 4;

// Conventional MIPS register aliases (useful to tests and the assembler).
enum Reg : std::uint8_t {
  kZero = 0, kAt = 1, kV0 = 2, kV1 = 3,
  kA0 = 4, kA1 = 5, kA2 = 6, kA3 = 7,
  kT0 = 8, kT1 = 9, kT2 = 10, kT3 = 11, kT4 = 12, kT5 = 13, kT6 = 14, kT7 = 15,
  kS0 = 16, kS1 = 17, kS2 = 18, kS3 = 19, kS4 = 20, kS5 = 21, kS6 = 22, kS7 = 23,
  kT8 = 24, kT9 = 25, kK0 = 26, kK1 = 27,
  kGp = 28, kSp = 29, kFp = 30, kRa = 31,
};

enum class Op : std::uint8_t {
  kInvalid,
  // Shifts and integer R-type ALU.
  kSll, kSrl, kSra, kSllv, kSrlv, kSrav,
  kJr, kJalr, kSyscall, kBreak,
  kMfhi, kMthi, kMflo, kMtlo,
  kMult, kMultu, kDiv, kDivu,
  kAdd, kAddu, kSub, kSubu, kAnd, kOr, kXor, kNor, kSlt, kSltu,
  // Branches and jumps.
  kBltz, kBgez, kJ, kJal, kBeq, kBne, kBlez, kBgtz,
  // Immediate ALU.
  kAddi, kAddiu, kSlti, kSltiu, kAndi, kOri, kXori, kLui,
  // Memory.
  kLb, kLh, kLw, kLbu, kLhu, kSb, kSh, kSw, kLwc1, kSwc1,
  // FP single precision.
  kAddS, kSubS, kMulS, kDivS, kSqrtS, kAbsS, kMovS, kNegS,
  kCvtSW,    // int word in FP reg -> single
  kTruncWS,  // single -> int word in FP reg (truncate toward zero)
  kCEqS, kCLtS, kCLeS,  // set the FP condition flag
  kBc1f, kBc1t,          // branch on FP condition flag
  kMfc1, kMtc1,          // moves between integer and FP register files
};

// Decoded view of one instruction word. Field meaning depends on `op`;
// unused fields are zero.
struct Instruction {
  Op op = Op::kInvalid;
  std::uint8_t rs = 0, rt = 0, rd = 0, shamt = 0;  // integer fields
  std::uint8_t fs = 0, ft = 0, fd = 0;             // FP fields
  std::int32_t imm = 0;      // sign-extended 16-bit immediate
  std::uint32_t target = 0;  // raw 26-bit jump target field
};

// Binary encoding/decoding. encode() throws std::invalid_argument for
// kInvalid; decode() returns op == kInvalid for unknown words.
std::uint32_t encode(const Instruction& inst);
Instruction decode(std::uint32_t word);

// Text form, e.g. "addiu $t0, $t0, -1". `pc` resolves branch/jump targets to
// absolute addresses.
std::string disassemble(std::uint32_t word, std::uint32_t pc);

// Control-flow classification used by the CFG builder.
bool is_branch(Op op);           // conditional, PC-relative
bool is_jump(Op op);             // j/jal
bool is_indirect_jump(Op op);    // jr/jalr
bool is_halt(Op op);             // break
bool ends_basic_block(Op op);

// Absolute target of a PC-relative branch at `pc`.
std::uint32_t branch_target(std::uint32_t pc, const Instruction& inst);
// Absolute target of j/jal at `pc`.
std::uint32_t jump_target(std::uint32_t pc, const Instruction& inst);

// Canonical register names ("$t0", "$f12").
std::string reg_name(unsigned r);
std::string freg_name(unsigned r);
// Parses either form; returns nullopt for unknown names.
std::optional<unsigned> parse_reg(const std::string& name);
std::optional<unsigned> parse_freg(const std::string& name);

}  // namespace asimt::isa
