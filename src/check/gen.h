// Seed-deterministic input generators for the fuzzing harness.
//
// Everything here is a pure function of the Rng stream: the same seed always
// produces the same case, on every platform and at every --jobs count, which
// is what makes a bare iteration number a replayable bug report. Generators
// skew toward the shapes that stress the encoder contract — short lines,
// lengths straddling multiples of (k-1), low-entropy instruction-like word
// streams — rather than uniform noise.
#pragma once

#include <cstdint>
#include <vector>

#include "bitstream/bitseq.h"
#include "check/fuzz_case.h"
#include "check/rng.h"
#include "telemetry/json.h"

namespace asimt::check {

// A random vertical bit line: mixes uniform bits, run-structured bits, and
// sparse-flip (mostly-constant) lines, length in [0, 96].
bits::BitSeq gen_line(Rng& rng);

// A random instruction-word stream for one basic block: uniform words,
// low-entropy streams (base word with a few flipped bits per step, the shape
// real fetch streams have), and constant runs. Length in [0, 40].
std::vector<std::uint32_t> gen_words(Rng& rng);

// A random JSON document value: nested arrays/objects (depth <= 4) over
// ints, finite doubles, escaped strings, bools, and nulls.
json::Value gen_json_value(Rng& rng, int depth = 0);

// One full case: picks an oracle, then an input of the matching shape. The
// fuzz driver calls this with `Rng(seed).fork(iteration)`.
FuzzCase generate_case(Rng rng);

}  // namespace asimt::check
