// The open-loop load generator against a real in-process daemon: the run
// must drain fully, report sane percentiles, and emit a schema-v2 artifact
// whose rows benchdiff --trajectory can gate.
#include "serve/loadgen.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <thread>

#include "serve/server.h"
#include "telemetry/json.h"

namespace asimt::serve {
namespace {

class LoadgenFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ServeOptions options;
    options.socket_path =
        "/tmp/asimt_loadgen_" + std::to_string(::getpid()) + ".sock";
    server_ = std::make_unique<Server>(options);
    ASSERT_TRUE(server_->start()) << server_->error();
    thread_ = std::thread([this] { server_->run(); });
    loadgen_.socket_path = options.socket_path;
    loadgen_.conns = 2;
    loadgen_.rate = 400.0;
    loadgen_.seconds = 0.5;
    loadgen_.seed = 12345;
  }

  void TearDown() override {
    server_->notify_stop();
    thread_.join();
  }

  std::unique_ptr<Server> server_;
  std::thread thread_;
  LoadgenOptions loadgen_;
};

TEST_F(LoadgenFixture, DrainsEveryRequestWithoutErrors) {
  const LoadgenReport report = run_loadgen(loadgen_);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.connect_failures, 0u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.received, report.sent);
  // ~400 req/s for 0.5 s: the Poisson draw should land well inside [50, 600].
  EXPECT_GT(report.sent, 50u);
  EXPECT_LT(report.sent, 600u);
  // Percentiles are ordered and positive.
  EXPECT_GT(report.p50_ms, 0.0);
  EXPECT_LE(report.p50_ms, report.p90_ms);
  EXPECT_LE(report.p90_ms, report.p99_ms);
  EXPECT_LE(report.p99_ms, report.p999_ms);
  EXPECT_LE(report.p999_ms, report.max_ms);
  EXPECT_GT(report.throughput_rps, 0.0);
  // The request mix repeats a small program pool, so the daemon's cache must
  // have absorbed most of the work.
  const CacheStats stats = server_->service().cache().stats();
  EXPECT_GT(stats.hits, stats.misses);
}

TEST_F(LoadgenFixture, RequestCountIsSeedDeterministic) {
  // The schedule and mix derive only from (seed, conns, rate, seconds); the
  // number of *scheduled* sends must replay exactly.
  const LoadgenReport first = run_loadgen(loadgen_);
  const LoadgenReport second = run_loadgen(loadgen_);
  EXPECT_EQ(first.sent, second.sent);
  LoadgenOptions other = loadgen_;
  other.seed = 999;
  const LoadgenReport reseeded = run_loadgen(other);
  EXPECT_NE(reseeded.sent, first.sent);
}

TEST_F(LoadgenFixture, ArtifactIsSchemaV2WithGateableRows) {
  const LoadgenReport report = run_loadgen(loadgen_);
  const json::Value doc = loadgen_artifact(loadgen_, report);
  EXPECT_EQ(doc.at("schema_version").as_int(), 2);
  EXPECT_EQ(doc.at("bench").as_string(), "serve_loadgen");
  // Provenance manifest like every bench artifact.
  EXPECT_NE(doc.at("manifest").find("git_sha"), nullptr);
  // Rows carry name + stats.median — the exact shape tools/benchdiff reads.
  const json::Array& rows = doc.at("benchmarks").as_array();
  ASSERT_EQ(rows.size(), 5u);
  const char* const expected[] = {"latency/p50", "latency/p90", "latency/p99",
                                  "latency/p999", "req_time_ns"};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].at("name").as_string(), expected[i]);
    EXPECT_GE(rows[i].at("stats").at("median").as_double(), 0.0);
  }
  EXPECT_EQ(doc.at("summary").at("received").as_int(),
            static_cast<long long>(report.received));
  EXPECT_EQ(doc.at("options").at("seed").as_int(), 12345);
}

TEST(Loadgen, UnreachableSocketFailsFastAndHonestly) {
  LoadgenOptions options;
  options.socket_path = "/tmp/asimt_no_such_daemon.sock";
  options.conns = 2;
  options.rate = 100.0;
  options.seconds = 0.1;
  const LoadgenReport report = run_loadgen(options);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.connect_failures, 2u);
  EXPECT_EQ(report.sent, 0u);
}

}  // namespace
}  // namespace asimt::serve
