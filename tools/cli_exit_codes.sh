#!/bin/sh
# Sweeps the asimt CLI's error paths and pins the exit-code contract:
#   usage / parse failures   -> exit 2, diagnostic on stderr, nothing on stdout
#   data / validation errors -> exit 1, diagnostic on stderr
#   happy paths              -> exit 0
# usage: cli_exit_codes.sh <asimt-binary> <demo.s>
set -u

asimt="$1"
demo="$2"
tmp="${TMPDIR:-/tmp}/cli_exit_codes_$$"
mkdir -p "$tmp" || exit 1
trap 'rm -rf "$tmp"' EXIT
fails=0

check() {
  want="$1"
  shift
  "$@" >"$tmp/out" 2>"$tmp/err"
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: exit $got, want $want: $*"
    fails=$((fails + 1))
    return
  fi
  if [ "$want" -ne 0 ] && ! [ -s "$tmp/err" ]; then
    echo "FAIL: exit $got but no stderr diagnostic: $*"
    fails=$((fails + 1))
  fi
  # Usage errors must keep stdout clean for pipelines.
  if [ "$want" -eq 2 ] && [ -s "$tmp/out" ]; then
    echo "FAIL: usage error leaked onto stdout: $*"
    fails=$((fails + 1))
  fi
}

# --- usage / parse failures: exit 2 ----------------------------------------
check 2 "$asimt"
check 2 "$asimt" frobnicate
check 2 "$asimt" disasm
check 2 "$asimt" run
check 2 "$asimt" report
check 2 "$asimt" encode
check 2 "$asimt" info
check 2 "$asimt" profile
check 2 "$asimt" report "$demo" --bogus
check 2 "$asimt" report "$demo" -k
check 2 "$asimt" report "$demo" -k 1
check 2 "$asimt" report "$demo" -k 4,nope
check 2 "$asimt" report "$demo" --tt junk
check 2 "$asimt" report "$demo" --tt 5x
check 2 "$asimt" report "$demo" --jobs 0
check 2 "$asimt" run "$demo" --max-steps many
check 2 "$asimt" encode "$demo" -k 5
check 2 "$asimt" fuzz --iters many
check 2 "$asimt" fuzz --mutate nonsense
check 2 "$asimt" faults --target tlb
check 2 "$asimt" faults --rate 1.5
check 2 "$asimt" faults --rate soon
check 2 "$asimt" faults --protect ecc
check 2 "$asimt" faults --max-seconds -1
check 2 "$asimt" faults --max-seconds soon
check 2 env ASIMT_MAX_SECONDS=banana "$asimt" faults --iters 1

# --- serve / loadgen usage failures: exit 2 --------------------------------
check 2 "$asimt" serve
check 2 "$asimt" loadgen
check 2 "$asimt" serve --socket "$tmp/s.sock" --cache-capacity 0
check 2 "$asimt" serve --socket "$tmp/s.sock" --cache-capacity lots
check 2 "$asimt" serve --socket "$tmp/s.sock" --shards 0
check 2 "$asimt" serve --socket "$tmp/s.sock" --shards 999
check 2 "$asimt" loadgen --socket "$tmp/s.sock" --conns 0
check 2 "$asimt" loadgen --socket "$tmp/s.sock" --rate -3
check 2 "$asimt" loadgen --socket "$tmp/s.sock" --rate soon
check 2 "$asimt" loadgen --socket "$tmp/s.sock" --seconds 0

# --- overload/deadline/chaos option strictness: exit 2 ---------------------
check 2 "$asimt" serve --socket "$tmp/s.sock" --request-timeout-ms soon
check 2 "$asimt" serve --socket "$tmp/s.sock" --max-conns lots
check 2 "$asimt" serve --socket "$tmp/s.sock" --max-inflight lots
check 2 "$asimt" serve --socket "$tmp/s.sock" --queue-depth soon
check 2 "$asimt" serve --socket "$tmp/s.sock" --queue-timeout-ms soon
check 2 "$asimt" loadgen --socket "$tmp/s.sock" --deadline-ms soon
check 2 "$asimt" chaos
check 2 "$asimt" chaos --listen "$tmp/c.sock"
check 2 "$asimt" chaos --upstream "$tmp/s.sock"
check 2 "$asimt" chaos --listen "$tmp/c.sock" --upstream "$tmp/s.sock" --faults thermite
check 2 "$asimt" chaos --listen "$tmp/c.sock" --upstream "$tmp/s.sock" --faults ""
check 2 "$asimt" chaos --listen "$tmp/c.sock" --upstream "$tmp/s.sock" --gap-bytes 0
check 2 "$asimt" chaos --listen "$tmp/c.sock" --upstream "$tmp/s.sock" --chop-bytes 0
check 2 "$asimt" chaos --listen "$tmp/c.sock" --upstream "$tmp/s.sock" --stall-ms soon

# --- data / validation errors: exit 1 --------------------------------------
check 1 "$asimt" disasm "$tmp/does-not-exist.s"
check 1 "$asimt" run "$tmp/does-not-exist.s"
check 1 "$asimt" info "$tmp/does-not-exist.img"
printf 'not a firmware image' >"$tmp/garbage.img"
check 1 "$asimt" info "$tmp/garbage.img"
printf 'this is not assembly !!!\n' >"$tmp/bad.s"
check 1 "$asimt" disasm "$tmp/bad.s"
# A loadgen pointed at a dead socket reports the failure as a data error.
check 1 "$asimt" loadgen --socket "$tmp/no-daemon.sock" --conns 1 --rate 50 --seconds 0.1
# One-shot stats against a dead socket fails hard (only --watch survives it).
check 1 "$asimt" stats --socket "$tmp/no-daemon.sock"
# A chaos proxy that cannot bind its listen path is a data error, not a hang.
check 1 "$asimt" chaos --listen "$tmp/no-such-dir/c.sock" --upstream "$tmp/s.sock"

# --- SIGPIPE: a truncating consumer must not kill the producer --------------
# Disassemble a program big enough to overflow the pipe buffer, then let
# `head -c` close the read end early. The CLI ignores SIGPIPE, sees EPIPE,
# and exits 0: the consumer choosing to stop reading is not an asimt failure.
awk 'BEGIN { print ".text"; for (i = 0; i < 20000; i++) print "  addiu $t0, $t0, 1"; print "  halt" }' >"$tmp/big.s"
( "$asimt" disasm "$tmp/big.s"; echo $? >"$tmp/pipe_rc" ) | head -c 100 >/dev/null
read pipe_rc <"$tmp/pipe_rc"
if [ "$pipe_rc" -ne 0 ]; then
  echo "FAIL: exit $pipe_rc after downstream head closed the pipe, want 0"
  fails=$((fails + 1))
fi

# --- junk ASIMT_JOBS is diagnosed on stderr, never silently misparsed ------
env ASIMT_JOBS=banana "$asimt" report "$demo" >/dev/null 2>"$tmp/jobs_err"
if ! grep -q "ignoring ASIMT_JOBS" "$tmp/jobs_err"; then
  echo "FAIL: junk ASIMT_JOBS produced no stderr diagnostic"
  fails=$((fails + 1))
fi

# --- happy paths still exit 0 ----------------------------------------------
check 0 "$asimt" --help
check 0 "$asimt" disasm "$demo"
# The junk value is ignored with a warning; the run itself still succeeds.
check 0 env ASIMT_JOBS=banana "$asimt" disasm "$demo"
check 0 "$asimt" faults --seed 1 --iters 8
check 0 "$asimt" fuzz --seed 1 --iters 20 --out "$tmp/repro"

if [ "$fails" -ne 0 ]; then
  echo "$fails exit-code contract violation(s)"
  exit 1
fi
echo "cli exit-code contract OK"
