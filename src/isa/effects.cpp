#include "isa/effects.h"

namespace asimt::isa {

namespace {

std::uint32_t reg_bit(unsigned r) {
  return r == 0 ? 0u : (1u << r);  // $zero never carries a dependence
}

}  // namespace

Effects effects(const Instruction& i) {
  Effects e;
  auto read = [&](unsigned r) { e.int_reads |= reg_bit(r); };
  auto write = [&](unsigned r) { e.int_writes |= reg_bit(r); };
  auto fread = [&](unsigned r) { e.fp_reads |= 1u << r; };
  auto fwrite = [&](unsigned r) { e.fp_writes |= 1u << r; };

  switch (i.op) {
    case Op::kSll: case Op::kSrl: case Op::kSra:
      read(i.rt); write(i.rd); break;
    case Op::kSllv: case Op::kSrlv: case Op::kSrav:
      read(i.rt); read(i.rs); write(i.rd); break;
    case Op::kAdd: case Op::kAddu: case Op::kSub: case Op::kSubu:
    case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kNor:
    case Op::kSlt: case Op::kSltu:
      read(i.rs); read(i.rt); write(i.rd); break;
    case Op::kMult: case Op::kMultu: case Op::kDiv: case Op::kDivu:
      read(i.rs); read(i.rt); e.writes_hi = e.writes_lo = true; break;
    case Op::kMfhi: e.reads_hi = true; write(i.rd); break;
    case Op::kMflo: e.reads_lo = true; write(i.rd); break;
    case Op::kMthi: read(i.rs); e.writes_hi = true; break;
    case Op::kMtlo: read(i.rs); e.writes_lo = true; break;
    case Op::kAddi: case Op::kAddiu: case Op::kSlti: case Op::kSltiu:
    case Op::kAndi: case Op::kOri: case Op::kXori:
      read(i.rs); write(i.rt); break;
    case Op::kLui: write(i.rt); break;
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
      read(i.rs); write(i.rt); e.mem_read = true; break;
    case Op::kSb: case Op::kSh: case Op::kSw:
      read(i.rs); read(i.rt); e.mem_write = true; break;
    case Op::kLwc1: read(i.rs); fwrite(i.ft); e.mem_read = true; break;
    case Op::kSwc1: read(i.rs); fread(i.ft); e.mem_write = true; break;
    case Op::kAddS: case Op::kSubS: case Op::kMulS: case Op::kDivS:
      fread(i.fs); fread(i.ft); fwrite(i.fd); break;
    case Op::kSqrtS: case Op::kAbsS: case Op::kMovS: case Op::kNegS:
    case Op::kCvtSW: case Op::kTruncWS:
      fread(i.fs); fwrite(i.fd); break;
    case Op::kCEqS: case Op::kCLtS: case Op::kCLeS:
      fread(i.fs); fread(i.ft); e.writes_fcc = true; break;
    case Op::kMfc1: fread(i.fs); write(i.rt); break;
    case Op::kMtc1: read(i.rt); fwrite(i.fs); break;
    case Op::kBc1f: case Op::kBc1t:
      e.reads_fcc = true; e.control = true; break;
    case Op::kBeq: case Op::kBne:
      read(i.rs); read(i.rt); e.control = true; break;
    case Op::kBlez: case Op::kBgtz: case Op::kBltz: case Op::kBgez:
      read(i.rs); e.control = true; break;
    case Op::kJ: e.control = true; break;
    case Op::kJal: write(kRa); e.control = true; break;
    case Op::kJr: read(i.rs); e.control = true; break;
    case Op::kJalr: read(i.rs); write(i.rd); e.control = true; break;
    case Op::kSyscall: case Op::kBreak: e.control = true; break;
    case Op::kInvalid: e.control = true; break;  // safest: a barrier
  }
  return e;
}

}  // namespace asimt::isa
