// Tests for the JSONL trajectory store: path layout, append/read round
// trips, and the partial-result contract on a corrupt line.
#include "obs/history.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "telemetry/json.h"

namespace asimt::obs {
namespace {

// TempDir() is shared across runs; start every test from an empty store.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

json::Value sample_artifact(const std::string& bench, int run) {
  json::Value doc = json::Value::object();
  doc.set("schema_version", 2);
  doc.set("bench", bench);
  doc.set("run", run);
  return doc;
}

TEST(HistoryTest, PathIsPerBenchJsonl) {
  EXPECT_EQ(history_path("bench/history", "micro_throughput"),
            "bench/history/micro_throughput.jsonl");
}

TEST(HistoryTest, AppendThenReadRoundTrips) {
  const std::string dir = fresh_dir("obs_history_rt");
  ASSERT_TRUE(append_history(dir, sample_artifact("micro", 1)));
  ASSERT_TRUE(append_history(dir, sample_artifact("micro", 2)));
  ASSERT_TRUE(append_history(dir, sample_artifact("micro", 3)));

  std::vector<json::Value> entries;
  ASSERT_TRUE(read_history(history_path(dir, "micro"), entries));
  ASSERT_EQ(entries.size(), 3u);
  // Oldest first, newest last.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(entries[static_cast<std::size_t>(i)].at("run").as_int(), i + 1);
  }
}

TEST(HistoryTest, DistinctBenchesGetDistinctFiles) {
  const std::string dir = fresh_dir("obs_history_split");
  ASSERT_TRUE(append_history(dir, sample_artifact("alpha", 1)));
  ASSERT_TRUE(append_history(dir, sample_artifact("beta", 1)));
  std::vector<json::Value> entries;
  ASSERT_TRUE(read_history(history_path(dir, "alpha"), entries));
  EXPECT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].at("bench").as_string(), "alpha");
}

TEST(HistoryTest, ArtifactWithoutBenchNameIsRejected) {
  json::Value doc = json::Value::object();
  doc.set("schema_version", 2);
  EXPECT_FALSE(append_history(fresh_dir("obs_history_bad"), doc));
}

TEST(HistoryTest, MissingFileReadFails) {
  std::vector<json::Value> entries;
  EXPECT_FALSE(
      read_history(::testing::TempDir() + "no_such_store.jsonl", entries));
  EXPECT_TRUE(entries.empty());
}

TEST(HistoryTest, CorruptLineKeepsEarlierEntries) {
  const std::string dir = fresh_dir("obs_history_corrupt");
  ASSERT_TRUE(append_history(dir, sample_artifact("micro", 1)));
  ASSERT_TRUE(append_history(dir, sample_artifact("micro", 2)));
  const std::string path = history_path(dir, "micro");
  {
    std::ofstream out(path, std::ios::app);
    out << "{ this is not json\n";
  }
  std::vector<json::Value> entries;
  EXPECT_FALSE(read_history(path, entries));
  // The contract: entries parsed before the bad line survive.
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[1].at("run").as_int(), 2);
}

TEST(HistoryTest, BlankLinesAreSkipped) {
  const std::string dir = fresh_dir("obs_history_blank");
  ASSERT_TRUE(append_history(dir, sample_artifact("micro", 1)));
  const std::string path = history_path(dir, "micro");
  {
    std::ofstream out(path, std::ios::app);
    out << "\n  \n";
  }
  ASSERT_TRUE(append_history(dir, sample_artifact("micro", 2)));
  std::vector<json::Value> entries;
  EXPECT_TRUE(read_history(path, entries));
  EXPECT_EQ(entries.size(), 2u);
}

}  // namespace
}  // namespace asimt::obs
