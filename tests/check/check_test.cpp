// Tests for the differential fuzzing subsystem itself: the deterministic
// RNG, the case generators, the serialize/parse text form, the oracles, the
// shrinker, and the fuzz driver's cross-jobs determinism and mutation
// sensitivity. The corpus replay lives in corpus_test.cpp.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "check/fuzz_case.h"
#include "check/fuzzer.h"
#include "check/gen.h"
#include "check/oracles.h"
#include "check/rng.h"
#include "check/shrink.h"
#include "core/transform.h"
#include "parallel/pool.h"

namespace asimt::check {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, KnownSplitMix64Vector) {
  // Reference values for seed 1234567 from the published SplitMix64
  // algorithm; pins the stream against accidental reformulation.
  Rng rng(1234567);
  EXPECT_EQ(rng.next(), 6457827717110365317ull);
  EXPECT_EQ(rng.next(), 3203168211198807973ull);
}

TEST(Rng, ForkStreamsAreIndependentAndStable) {
  const Rng root(7);
  Rng a1 = root.fork(1), a2 = root.fork(1), b = root.fork(2);
  const std::uint64_t v1 = a1.next();
  EXPECT_EQ(v1, a2.next());  // same label, same stream
  EXPECT_NE(v1, b.next());   // different label, different stream
  Rng untouched(7);
  root.fork(3);  // forking never advances the parent
  EXPECT_EQ(Rng(7).next(), untouched.next());
}

TEST(Rng, RangeAndChanceStayInBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.range(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    EXPECT_LT(rng.below(10), 10u);
  }
  Rng always(1), never(1);
  EXPECT_TRUE(always.chance(10, 10));
  EXPECT_FALSE(never.chance(0, 10));
}

TEST(Generator, CaseIsPureFunctionOfSeedAndIteration) {
  const Rng root(1);
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(generate_case(root.fork(i)), generate_case(root.fork(i)));
  }
}

TEST(Generator, CoversEveryOracleAndBothStrategies) {
  const Rng root(1);
  std::set<Oracle> oracles;
  std::set<core::ChainStrategy> strategies;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const FuzzCase c = generate_case(root.fork(i));
    oracles.insert(c.oracle);
    if (c.oracle == Oracle::kRoundTrip) strategies.insert(c.strategy);
    EXPECT_GE(c.block_size, 2);
    EXPECT_LE(c.block_size, 8);
  }
  EXPECT_EQ(oracles.size(), static_cast<std::size_t>(kOracleCount));
  EXPECT_EQ(strategies.size(), 2u);
}

TEST(Generator, CostCasesKeepFeedingTheExhaustiveOracle) {
  // Long cost lines are fine (the oracle skips the 2^m cross-check above
  // kExhaustiveMaxBits), but a healthy share must stay inside the window or
  // the DP is never checked against ground truth.
  const Rng root(3);
  int cost_cases = 0, exhaustive_eligible = 0;
  for (std::uint64_t i = 0; i < 300; ++i) {
    const FuzzCase c = generate_case(root.fork(i));
    if (c.oracle == Oracle::kCost) {
      ++cost_cases;
      if (c.line.size() <= kExhaustiveMaxBits) ++exhaustive_eligible;
    }
    if (c.oracle == Oracle::kReplay) {
      EXPECT_NE(c.transforms, TransformSet::kAll);  // must fit 3-bit TT index
    }
  }
  EXPECT_GT(cost_cases, 30);
  EXPECT_GT(exhaustive_eligible * 2, cost_cases);  // at least half
}

TEST(CaseFormat, SerializeParseRoundTripsGeneratedCases) {
  const Rng root(11);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const FuzzCase c = generate_case(root.fork(i));
    EXPECT_EQ(parse_case(serialize_case(c)), c) << serialize_case(c);
  }
}

TEST(CaseFormat, AcceptsCommentsAndBlankLines) {
  const FuzzCase c = parse_case(
      "# a shrunk reproducer\n\nasimt-fuzz-case v1\noracle roundtrip\n"
      "strategy dp\nk 3\ntransforms invertible\nline 0101\n");
  EXPECT_EQ(c.oracle, Oracle::kRoundTrip);
  EXPECT_EQ(c.strategy, core::ChainStrategy::kOptimalDp);
  EXPECT_EQ(c.block_size, 3);
  EXPECT_EQ(c.transforms, TransformSet::kInvertible);
  EXPECT_EQ(c.line.size(), 4u);
}

TEST(CaseFormat, RejectsMalformedInput) {
  EXPECT_THROW(parse_case(""), std::runtime_error);
  EXPECT_THROW(parse_case("oracle roundtrip\n"), std::runtime_error);  // no magic
  EXPECT_THROW(parse_case("asimt-fuzz-case v1\n"), std::runtime_error);  // no oracle
  EXPECT_THROW(parse_case("asimt-fuzz-case v1\noracle bogus\nline 1\n"),
               std::runtime_error);
  EXPECT_THROW(parse_case("asimt-fuzz-case v1\noracle roundtrip\nk 1\nline 1\n"),
               std::runtime_error);  // k below 2
  EXPECT_THROW(
      parse_case("asimt-fuzz-case v1\noracle replay\nk 4\ntransforms all\n"
                 "words 1 2\n"),
      std::runtime_error);  // kAll has no TT representation
  EXPECT_THROW(
      parse_case("asimt-fuzz-case v1\noracle replay\nk 4\ntransforms paper\n"
                 "words xyz\n"),
      std::runtime_error);  // bad hex word
}

TEST(Oracles, GeneratedCasesAreGreen) {
  const Rng root(21);
  for (std::uint64_t i = 0; i < 300; ++i) {
    const FuzzCase c = generate_case(root.fork(i));
    const auto failure = run_case(c);
    EXPECT_FALSE(failure.has_value()) << *failure;
  }
}

TEST(Oracles, ExhaustiveMinimumSanity) {
  // A constant line can always be stored as-is: zero stored transitions.
  bits::BitSeq constant;
  for (int i = 0; i < 8; ++i) constant.push_back(false);
  EXPECT_EQ(exhaustive_min_transitions(constant, 4, core::kPaperSubset), 0);

  // An alternating line decodes from a constant stored line via xnor WITHIN
  // a block, but at a block boundary the history reloads from the raw stored
  // overlap bit (paper §6), which breaks the phase — and storing constant
  // ones instead would violate the plain chain-initial bit. So the true
  // optimum is exactly 1 stored transition, not 0: a value the DP must hit
  // and a naive "invert everything" argument would miss.
  bits::BitSeq alternating;
  for (int i = 0; i < 8; ++i) alternating.push_back(i % 2 == 1);
  const auto best =
      exhaustive_min_transitions(alternating, 4, core::kInvertibleSubset);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 1);
}

TEST(Oracles, ReferenceDecoderMatchesCoreOnGeneratedChains) {
  const Rng root(33);
  int checked = 0;
  for (std::uint64_t i = 0; i < 200 && checked < 60; ++i) {
    FuzzCase c = generate_case(root.fork(i));
    if (c.oracle != Oracle::kRoundTrip || c.line.empty()) continue;
    core::ChainOptions opts;
    opts.block_size = c.block_size;
    opts.allowed = c.transform_span();
    opts.strategy = c.strategy;
    const core::EncodedChain chain = core::ChainEncoder(opts).encode(c.line);
    EXPECT_EQ(decode_chain_reference(chain), core::decode_chain(chain));
    ++checked;
  }
  EXPECT_GE(checked, 30);
}

FuzzCase failing_roundtrip_case() {
  // A long noisy line whose reference decode breaks under the overlap-reload
  // mutation; shrinking should cut it down hard.
  FuzzCase c;
  c.oracle = Oracle::kRoundTrip;
  c.strategy = core::ChainStrategy::kOptimalDp;
  c.block_size = 6;
  c.transforms = TransformSet::kAll;
  Rng rng(5);
  for (int i = 0; i < 64; ++i) c.line.push_back(rng.chance(1, 2));
  return c;
}

TEST(Shrinker, PassingCaseComesBackUnchanged) {
  const Rng root(1);
  const FuzzCase c = generate_case(root.fork(0));
  const ShrinkResult r = shrink_case(c);
  EXPECT_EQ(r.reduced, c);
  EXPECT_TRUE(r.failure.empty());
  EXPECT_EQ(r.accepted_edits, 0);
}

TEST(Shrinker, MinimizesAFailingCaseAndKeepsItFailing) {
  OracleHooks hooks;
  hooks.break_overlap_reload = true;
  const FuzzCase big = failing_roundtrip_case();
  ASSERT_TRUE(run_case(big, hooks).has_value());

  const ShrinkResult r = shrink_case(big, hooks);
  EXPECT_GT(r.accepted_edits, 0);
  EXPECT_LT(r.reduced.line.size(), big.line.size());
  EXPECT_FALSE(r.failure.empty());
  const auto still_fails = run_case(r.reduced, hooks);
  ASSERT_TRUE(still_fails.has_value());
  EXPECT_EQ(*still_fails, r.failure);
  // The reduced case must survive a serialize/parse trip unchanged — that is
  // what makes it a corpus file.
  EXPECT_EQ(parse_case(serialize_case(r.reduced)), r.reduced);
}

TEST(Shrinker, IsDeterministic) {
  OracleHooks hooks;
  hooks.break_overlap_reload = true;
  const FuzzCase big = failing_roundtrip_case();
  const ShrinkResult a = shrink_case(big, hooks);
  const ShrinkResult b = shrink_case(big, hooks);
  EXPECT_EQ(a.reduced, b.reduced);
  EXPECT_EQ(a.failure, b.failure);
}

TEST(Fuzzer, SmallCampaignIsGreen) {
  FuzzOptions options;
  options.seed = 1;
  options.iters = 300;
  const FuzzReport report = run_fuzz(options);
  EXPECT_TRUE(report.ok()) << format_report(report, options);
  EXPECT_EQ(report.iterations, 300u);
  std::uint64_t total = 0;
  for (const std::uint64_t runs : report.runs_per_oracle) total += runs;
  EXPECT_EQ(total, 300u);
}

TEST(Fuzzer, HonorsTheWallClockBudget) {
  FuzzOptions options;
  options.seed = 1;
  options.iters = 500'000'000;  // far more than the budget allows
  options.max_seconds = 0.05;
  const FuzzReport report = run_fuzz(options);
  EXPECT_TRUE(report.timed_out);
  EXPECT_LT(report.iterations, report.iterations_requested);
  EXPECT_EQ(report.iterations_requested, options.iters);
  // The truncation is visible in both report forms so CI can tell "green
  // but shortened" from "green and complete".
  EXPECT_NE(format_report(report, options).find("TIMED OUT"),
            std::string::npos);
  EXPECT_NE(json_report(report, options).find("\"timed_out\": true"),
            std::string::npos);
}

TEST(Fuzzer, JsonReportCarriesTheCampaignSummary) {
  FuzzOptions options;
  options.seed = 3;
  options.iters = 50;
  const FuzzReport report = run_fuzz(options);
  const std::string json = json_report(report, options);
  EXPECT_NE(json.find("\"seed\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"iters_completed\": 50"), std::string::npos);
  EXPECT_NE(json.find("\"timed_out\": false"), std::string::npos);
  EXPECT_NE(json.find("\"runs_per_oracle\""), std::string::npos);
}

TEST(Fuzzer, ReportIsIdenticalAcrossJobCounts) {
  FuzzOptions options;
  options.seed = 99;
  options.iters = 400;
  const unsigned saved = parallel::default_jobs();
  parallel::set_default_jobs(1);
  const FuzzReport serial = run_fuzz(options);
  parallel::set_default_jobs(4);
  const FuzzReport wide = run_fuzz(options);
  parallel::set_default_jobs(saved);
  EXPECT_EQ(format_report(serial, options), format_report(wide, options));
  EXPECT_EQ(serial.failure_count, wide.failure_count);
  EXPECT_EQ(serial.runs_per_oracle, wide.runs_per_oracle);
}

// The acceptance gate for the oracle suite: each deliberate contract break
// must be caught within 1000 iterations, and the resulting reproducer must
// shrink to something small enough to read.
void expect_mutation_caught(const OracleHooks& hooks) {
  FuzzOptions options;
  options.seed = 1;
  options.iters = 1000;
  options.max_failures = 1;
  const FuzzReport report = run_fuzz(options, hooks);
  ASSERT_GT(report.failure_count, 0u) << "mutation survived 1000 iterations";
  ASSERT_FALSE(report.failures.empty());
  const FuzzFailure& f = report.failures.front();
  EXPECT_FALSE(f.message.empty());
  EXPECT_LE(f.shrunk.reduced.line.size(), 16u)
      << "shrinker left a big reproducer: "
      << serialize_case(f.shrunk.reduced);
}

TEST(MutationCheck, BrokenOverlapReloadIsCaught) {
  OracleHooks hooks;
  hooks.break_overlap_reload = true;
  expect_mutation_caught(hooks);
}

TEST(MutationCheck, BrokenInitialPlainRuleIsCaught) {
  OracleHooks hooks;
  hooks.break_initial_plain = true;
  expect_mutation_caught(hooks);
}

TEST(Fuzzer, WritesReplayableReproducers) {
  OracleHooks hooks;
  hooks.break_overlap_reload = true;
  FuzzOptions options;
  options.seed = 1;
  options.iters = 200;
  options.max_failures = 2;
  options.reproducer_dir = testing::TempDir() + "asimt-fuzz-repro";
  const FuzzReport report = run_fuzz(options, hooks);
  ASSERT_GT(report.failure_count, 0u);
  for (const FuzzFailure& f : report.failures) {
    ASSERT_FALSE(f.file.empty());
    std::ifstream in(f.file);
    ASSERT_TRUE(in.good()) << f.file;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const FuzzCase replayed = parse_case(buffer.str());
    EXPECT_EQ(replayed, f.shrunk.reduced);
    // Replaying the file under the same mutation reproduces the failure.
    EXPECT_EQ(run_case(replayed, hooks), std::optional(f.shrunk.failure));
  }
}

}  // namespace
}  // namespace asimt::check
