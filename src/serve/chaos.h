// Seeded socket-level fault injection for the serving stack (`asimt chaos`).
//
// ChaosProxy sits between a client and the serve daemon on its own unix
// socket and forwards bytes both ways while injecting transport faults drawn
// from a SplitMix64-seeded schedule — the serving-layer sibling of the PR 5
// `src/fault` soft-error campaigns, with the same discipline: every fault is
// a pure function of (seed, connection ordinal, direction, byte offset), so
// a campaign replays byte-identically for a given seed and a failure
// reproduces from its seed alone.
//
// Fault modes (docs/SERVING.md § Resilience):
//   chop        forward the next K bytes one byte per send — the receiver
//               sees 1-byte reads, the sender's short-write loops are forced
//   stall       pause forwarding for stall_ms — exercises read deadlines
//               (client->server: a synthetic slow loris) and write deadlines
//   garbage     inject a whole junk line at the next line boundary
//               (client->server only: the daemon must answer it with a parse
//               error and keep the stream usable)
//   disconnect  drop both sides mid-stream — clients must reconnect, the
//               daemon must reap the dead connection
//
// Schedules are *offset*-indexed (fault at the Nth forwarded byte), not
// time-indexed, so the injected fault sequence is deterministic even though
// wall-clock timing is not. The ctest campaign (tests/serve/chaos_test.cpp,
// tools/chaos_campaign.sh) asserts the daemon behind the proxy never
// crashes, never deadlocks, and answers every surviving request
// byte-identically to a fault-free run.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

namespace asimt::serve {

enum class ChaosMode : unsigned {
  kChop = 0,
  kStall,
  kGarbage,
  kDisconnect,
};
inline constexpr unsigned kChaosModeCount = 4;
const char* chaos_mode_name(ChaosMode mode);
std::optional<ChaosMode> chaos_mode_from_name(const std::string& name);

struct ChaosOptions {
  std::string listen_path;    // where clients connect
  std::string upstream_path;  // the real daemon's socket
  std::uint64_t seed = 1;
  bool enabled[kChaosModeCount] = {true, true, true, true};
  // Mean forwarded bytes between injected faults (per direction); the gap is
  // uniform in [1, 2*mean-1], so the mean is exact and the stream is never
  // fault-free for long.
  std::uint64_t mean_gap_bytes = 256;
  std::uint64_t chop_bytes = 64;  // bytes forwarded 1-at-a-time per chop
  std::uint64_t stall_ms = 10;
  int backlog = 64;
};

// Per-mode injection counters plus totals; readable while the proxy runs.
struct ChaosStats {
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> bytes_forwarded{0};
  std::atomic<std::uint64_t> faults[kChaosModeCount] = {};

  std::uint64_t total_faults() const {
    std::uint64_t total = 0;
    for (unsigned m = 0; m < kChaosModeCount; ++m) {
      total += faults[m].load(std::memory_order_relaxed);
    }
    return total;
  }
};

// The deterministic per-direction fault stream: event N is a pure function
// of (options.seed, connection ordinal, direction). Exposed for the
// determinism test; the proxy consumes it internally.
class ChaosSchedule {
 public:
  struct Event {
    std::uint64_t offset = 0;  // forwarded-byte offset the fault fires at
    ChaosMode mode = ChaosMode::kChop;
  };

  ChaosSchedule(const ChaosOptions& options, std::uint64_t conn_ordinal,
                bool to_upstream);

  // False when every mode is disabled — the proxy degenerates to a plain
  // byte forwarder.
  bool any() const { return any_enabled_; }
  const Event& peek() const { return next_; }
  void pop();

 private:
  void generate();

  ChaosOptions options_;
  bool to_upstream_;
  bool any_enabled_;
  std::uint64_t rng_;
  std::uint64_t cursor_ = 0;
  Event next_;
};

// The proxy itself. Lifecycle mirrors serve::Server: start() binds the
// listen socket (with the same stale-inode reclaim), run() blocks until
// notify_stop() (async-signal-safe), the destructor joins every pump thread.
class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosOptions options);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  bool start();
  std::uint64_t run();  // returns connections proxied
  void notify_stop();

  const std::string& error() const { return error_; }
  const ChaosOptions& options() const { return options_; }
  const ChaosStats& stats() const { return stats_; }

 private:
  struct Connection {
    int client_fd = -1;
    int upstream_fd = -1;
    std::uint64_t ordinal = 0;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void pump_connection(Connection* connection);
  void reap_finished_connections();

  ChaosOptions options_;
  ChaosStats stats_;
  std::string error_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::mutex connections_mu_;
  std::list<std::unique_ptr<Connection>> connections_;
  std::uint64_t connections_served_ = 0;
};

// SIGINT/SIGTERM -> notify_stop() on `proxy` (nullptr uninstalls); the
// chaos-CLI analogue of serve::install_stop_signal_handlers.
void install_chaos_signal_handlers(ChaosProxy* proxy);

}  // namespace asimt::serve
