// Tests for the exporters: the JSON snapshot round-trips through the parser,
// CSV and Prometheus expositions carry the same numbers, and the layered
// publish helpers (BusMonitor, power reports) land in the registry.
#include "telemetry/export.h"

#include <gtest/gtest.h>

#include "power/power.h"
#include "sim/bus.h"
#include "telemetry/json.h"

namespace asimt::telemetry {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    MetricsRegistry::global().reset();
  }
  void TearDown() override {
    set_enabled(false);
    MetricsRegistry::global().reset();
  }

  MetricsRegistry reg_;
};

TEST_F(ExportTest, JsonSnapshotRoundTrips) {
  reg_.counter("encoder.blocks_encoded").add(12);
  reg_.counter("sim.fetches").add(1'000'000'007LL);
  reg_.gauge("sim.icache.hit_rate").set(0.96875);
  reg_.histogram("phase.encode.us").observe(3.0);
  reg_.histogram("phase.encode.us").observe(5.0);

  const json::Value parsed = json::parse(metrics_json(reg_));
  EXPECT_EQ(parsed.at("counters").at("encoder.blocks_encoded").as_int(), 12);
  EXPECT_EQ(parsed.at("counters").at("sim.fetches").as_int(), 1'000'000'007LL);
  EXPECT_DOUBLE_EQ(parsed.at("gauges").at("sim.icache.hit_rate").as_double(),
                   0.96875);
  const json::Value& hist = parsed.at("histograms").at("phase.encode.us");
  EXPECT_EQ(hist.at("count").as_int(), 2);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_double(), 8.0);
  EXPECT_DOUBLE_EQ(hist.at("min").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(hist.at("max").as_double(), 5.0);
  EXPECT_DOUBLE_EQ(hist.at("mean").as_double(), 4.0);
  // 3.0 -> bucket 2, 5.0 -> bucket 3
  EXPECT_EQ(hist.at("buckets").at("2").as_int(), 1);
  EXPECT_EQ(hist.at("buckets").at("3").as_int(), 1);
  // Structured export agrees with the text export.
  EXPECT_EQ(metrics_to_json(reg_), parsed);
}

TEST_F(ExportTest, EmptyRegistryIsStillValidJson) {
  const json::Value parsed = json::parse(metrics_json(reg_));
  EXPECT_TRUE(parsed.at("counters").as_object().empty());
  EXPECT_TRUE(parsed.at("gauges").as_object().empty());
  EXPECT_TRUE(parsed.at("histograms").as_object().empty());
}

TEST_F(ExportTest, CsvCarriesEveryScalar) {
  reg_.counter("a.count").add(3);
  reg_.gauge("b.gauge").set(1.5);
  reg_.histogram("c.hist").observe(2.0);
  const std::string csv = metrics_csv(reg_);
  EXPECT_NE(csv.find("kind,name,field,value\n"), std::string::npos);
  EXPECT_NE(csv.find("counter,a.count,value,3\n"), std::string::npos);
  EXPECT_NE(csv.find("gauge,b.gauge,value,1.5\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,c.hist,count,1\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,c.hist,mean,2\n"), std::string::npos);
}

TEST_F(ExportTest, PrometheusSanitizesNamesAndTypes) {
  reg_.counter("encoder.tau.~x").add(4);
  reg_.gauge("sim.icache.hit_rate").set(0.5);
  reg_.histogram("phase.encode.us").observe(7.0);
  const std::string prom = metrics_prometheus(reg_);
  EXPECT_NE(prom.find("# TYPE asimt_encoder_tau__x counter\n"), std::string::npos);
  EXPECT_NE(prom.find("asimt_encoder_tau__x 4\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE asimt_sim_icache_hit_rate gauge\n"),
            std::string::npos);
  EXPECT_NE(prom.find("asimt_phase_encode_us_count 1\n"), std::string::npos);
  EXPECT_NE(prom.find("asimt_phase_encode_us_sum 7\n"), std::string::npos);
}

TEST_F(ExportTest, PrometheusEmitsCumulativeHistogramBuckets) {
  Histogram& h = reg_.histogram("phase.encode.us");
  h.observe(0.5);  // bucket 0: < 1          -> le="1"
  h.observe(3.0);  // bucket 2: [2, 4)       -> le="4"
  h.observe(3.5);  // bucket 2
  h.observe(7.0);  // bucket 3: [4, 8)       -> le="8"
  const std::string prom = metrics_prometheus(reg_);
  EXPECT_NE(prom.find("# TYPE asimt_phase_encode_us histogram\n"),
            std::string::npos);
  // Cumulative counts at each power-of-two upper bound, ending in +Inf = count.
  EXPECT_NE(prom.find("asimt_phase_encode_us_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("asimt_phase_encode_us_bucket{le=\"4\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("asimt_phase_encode_us_bucket{le=\"8\"} 4\n"),
            std::string::npos);
  EXPECT_NE(prom.find("asimt_phase_encode_us_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  // The scalar series survive the histogram switch.
  EXPECT_NE(prom.find("asimt_phase_encode_us_count 4\n"), std::string::npos);
  EXPECT_NE(prom.find("asimt_phase_encode_us_sum 14\n"), std::string::npos);
  EXPECT_NE(prom.find("asimt_phase_encode_us_min 0.5\n"), std::string::npos);
  EXPECT_NE(prom.find("asimt_phase_encode_us_max 7\n"), std::string::npos);
  EXPECT_NE(prom.find("asimt_phase_encode_us_mean 3.5\n"), std::string::npos);
  // Histograms no longer masquerade as the summary type.
  EXPECT_EQ(prom.find("summary"), std::string::npos);
}

TEST_F(ExportTest, BusMonitorPublishesPerLineMetrics) {
  set_enabled(true);
  sim::BusMonitor bus(/*per_line=*/true);
  bus.observe(0x0);
  bus.observe(0x3);  // 2 transitions, lines 0 and 1
  bus.observe(0x1);  // 1 transition, line 1
  bus.publish("bus.test", reg_);
  EXPECT_EQ(reg_.counter("bus.test.transitions").value(), 3);
  EXPECT_EQ(reg_.counter("bus.test.words").value(), 3);
  EXPECT_EQ(reg_.counter("bus.test.line.00").value(), 1);
  EXPECT_EQ(reg_.counter("bus.test.line.01").value(), 2);
  EXPECT_EQ(reg_.counter("bus.test.line.31").value(), 0);
  EXPECT_EQ(reg_.histogram("bus.test.line").count(), 32u);
}

TEST_F(ExportTest, BusMonitorPublishIsNoOpWhenDisabled) {
  sim::BusMonitor bus(true);
  bus.observe(0xF);
  bus.observe(0x0);
  bus.publish("bus.test", reg_);
  EXPECT_TRUE(reg_.snapshot().empty());
}

TEST(PromRender, AdversarialLabelValuesAreEscaped) {
  // Backslash, double quote, and newline are the three characters the
  // exposition format requires escaping in label values; a raw one of any of
  // them corrupts the scrape.
  std::vector<PromFamily> families;
  families.push_back(PromFamily{
      "asimt_test_total", "counter", "",
      {PromSample{"", {{"path", "C:\\tmp\\\"quoted\"\nline2"}}, "1"}}});
  const std::string out = render_prometheus(std::move(families));
  EXPECT_NE(out.find("asimt_test_total{path=\"C:\\\\tmp\\\\\\\"quoted\\\""
                     "\\nline2\"} 1\n"),
            std::string::npos);
  // No raw newline survives inside the sample line.
  EXPECT_EQ(out.find("\nline2"), std::string::npos);
  EXPECT_EQ(prometheus_escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(prometheus_escape_label("plain"), "plain");
}

TEST(PromRender, HelpAndTypeAppearOncePerFamilyAndNamesSort) {
  // Callers may batch the same family several times (one per label series);
  // the renderer must merge them under a single HELP/TYPE header, and emit
  // families in sorted-by-name order so scrapes diff cleanly.
  std::vector<PromFamily> families;
  families.push_back(PromFamily{
      "asimt_zz_total", "counter", "last by name",
      {PromSample{"", {}, "9"}}});
  families.push_back(PromFamily{
      "asimt_dup_total", "counter", "dup help",
      {PromSample{"", {{"shard", "0"}}, "1"}}});
  families.push_back(PromFamily{
      "asimt_dup_total", "counter", "dup help",
      {PromSample{"", {{"shard", "1"}}, "2"}}});
  const std::string out = render_prometheus(std::move(families));

  const std::string help = "# HELP asimt_dup_total dup help\n";
  const std::string type = "# TYPE asimt_dup_total counter\n";
  const std::size_t help_at = out.find(help);
  const std::size_t type_at = out.find(type);
  ASSERT_NE(help_at, std::string::npos);
  ASSERT_NE(type_at, std::string::npos);
  EXPECT_EQ(out.find(help, help_at + 1), std::string::npos);
  EXPECT_EQ(out.find(type, type_at + 1), std::string::npos);
  // Both series survive the merge.
  EXPECT_NE(out.find("asimt_dup_total{shard=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("asimt_dup_total{shard=\"1\"} 2\n"), std::string::npos);
  // dup sorts before zz regardless of insertion order.
  EXPECT_LT(out.find("asimt_dup_total"), out.find("asimt_zz_total"));
}

TEST(PromRender, HelpTextEscapesItsOwnSpecials) {
  std::vector<PromFamily> families;
  families.push_back(PromFamily{
      "asimt_h_total", "counter", "help with \\ and\nnewline",
      {PromSample{"", {}, "0"}}});
  const std::string out = render_prometheus(std::move(families));
  EXPECT_NE(out.find("# HELP asimt_h_total help with \\\\ and\\nnewline\n"),
            std::string::npos);
}

TEST(PromRender, MetricNamesAreSanitizedIntoTheNamespace) {
  EXPECT_EQ(prometheus_name("serve.request-latency ns"),
            "asimt_serve_request_latency_ns");
  EXPECT_EQ(prometheus_name("already_fine"), "asimt_already_fine");
}

TEST_F(ExportTest, EnergyReportJsonMatchesTextPath) {
  const power::BusParams params = power::BusParams::off_chip();
  const power::EnergyReport baseline =
      power::make_report("baseline", 1000, 400, params);
  const power::EnergyReport encoded =
      power::make_report("encoded", 600, 400, params);
  const json::Value v = power::comparison_to_json(baseline, encoded);
  EXPECT_EQ(v.at("baseline").at("transitions").as_int(), 1000);
  EXPECT_EQ(v.at("encoded").at("label").as_string(), "encoded");
  EXPECT_DOUBLE_EQ(v.at("reduction_percent").as_double(), 40.0);
  EXPECT_DOUBLE_EQ(v.at("baseline").at("energy_joules").as_double(),
                   power::transition_energy_joules(1000, params));
  EXPECT_DOUBLE_EQ(
      v.at("encoded").at("transitions_per_fetch").as_double(), 1.5);
  // And it is serializable/parsable like every other export.
  EXPECT_EQ(json::parse(v.dump()), v);
}

}  // namespace
}  // namespace asimt::telemetry
