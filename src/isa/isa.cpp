#include "isa/isa.h"

#include <array>
#include <stdexcept>

namespace asimt::isa {

namespace {

// Primary opcode field values (MIPS-I numbering).
enum : std::uint32_t {
  kOpSpecial = 0x00, kOpRegimm = 0x01, kOpJ = 0x02, kOpJal = 0x03,
  kOpBeq = 0x04, kOpBne = 0x05, kOpBlez = 0x06, kOpBgtz = 0x07,
  kOpAddi = 0x08, kOpAddiu = 0x09, kOpSlti = 0x0a, kOpSltiu = 0x0b,
  kOpAndi = 0x0c, kOpOri = 0x0d, kOpXori = 0x0e, kOpLui = 0x0f,
  kOpCop1 = 0x11,
  kOpLb = 0x20, kOpLh = 0x21, kOpLw = 0x23, kOpLbu = 0x24, kOpLhu = 0x25,
  kOpSb = 0x28, kOpSh = 0x29, kOpSw = 0x2b, kOpLwc1 = 0x31, kOpSwc1 = 0x39,
};

// SPECIAL funct field values.
enum : std::uint32_t {
  kFnSll = 0x00, kFnSrl = 0x02, kFnSra = 0x03,
  kFnSllv = 0x04, kFnSrlv = 0x06, kFnSrav = 0x07,
  kFnJr = 0x08, kFnJalr = 0x09, kFnSyscall = 0x0c, kFnBreak = 0x0d,
  kFnMfhi = 0x10, kFnMthi = 0x11, kFnMflo = 0x12, kFnMtlo = 0x13,
  kFnMult = 0x18, kFnMultu = 0x19, kFnDiv = 0x1a, kFnDivu = 0x1b,
  kFnAdd = 0x20, kFnAddu = 0x21, kFnSub = 0x22, kFnSubu = 0x23,
  kFnAnd = 0x24, kFnOr = 0x25, kFnXor = 0x26, kFnNor = 0x27,
  kFnSlt = 0x2a, kFnSltu = 0x2b,
};

// COP1 fmt field values.
enum : std::uint32_t {
  kFmtMfc1 = 0x00, kFmtMtc1 = 0x04, kFmtBc1 = 0x08,
  kFmtS = 0x10, kFmtW = 0x14,
};

// COP1.S funct field values.
enum : std::uint32_t {
  kFnAddS = 0x00, kFnSubS = 0x01, kFnMulS = 0x02, kFnDivS = 0x03,
  kFnSqrtS = 0x04, kFnAbsS = 0x05, kFnMovS = 0x06, kFnNegS = 0x07,
  kFnTruncWS = 0x0d, kFnCvtSW = 0x20,
  kFnCEqS = 0x32, kFnCLtS = 0x3c, kFnCLeS = 0x3e,
};

std::uint32_t fields_r(std::uint32_t rs, std::uint32_t rt, std::uint32_t rd,
                       std::uint32_t shamt, std::uint32_t funct) {
  return (rs << 21) | (rt << 16) | (rd << 11) | (shamt << 6) | funct;
}

std::uint32_t fields_i(std::uint32_t op, std::uint32_t rs, std::uint32_t rt,
                       std::int32_t imm) {
  return (op << 26) | (rs << 21) | (rt << 16) |
         (static_cast<std::uint32_t>(imm) & 0xFFFFu);
}

std::uint32_t fields_cop1(std::uint32_t fmt, std::uint32_t ft,
                          std::uint32_t fs, std::uint32_t fd,
                          std::uint32_t funct) {
  return (kOpCop1 << 26) | (fmt << 21) | (ft << 16) | (fs << 11) | (fd << 6) |
         funct;
}

std::int32_t sext16(std::uint32_t v) {
  return static_cast<std::int32_t>(static_cast<std::int16_t>(v & 0xFFFFu));
}

}  // namespace

std::uint32_t encode(const Instruction& inst) {
  const auto rs = static_cast<std::uint32_t>(inst.rs & 31);
  const auto rt = static_cast<std::uint32_t>(inst.rt & 31);
  const auto rd = static_cast<std::uint32_t>(inst.rd & 31);
  const auto sh = static_cast<std::uint32_t>(inst.shamt & 31);
  const auto fs = static_cast<std::uint32_t>(inst.fs & 31);
  const auto ft = static_cast<std::uint32_t>(inst.ft & 31);
  const auto fd = static_cast<std::uint32_t>(inst.fd & 31);
  switch (inst.op) {
    case Op::kSll: return fields_r(0, rt, rd, sh, kFnSll);
    case Op::kSrl: return fields_r(0, rt, rd, sh, kFnSrl);
    case Op::kSra: return fields_r(0, rt, rd, sh, kFnSra);
    case Op::kSllv: return fields_r(rs, rt, rd, 0, kFnSllv);
    case Op::kSrlv: return fields_r(rs, rt, rd, 0, kFnSrlv);
    case Op::kSrav: return fields_r(rs, rt, rd, 0, kFnSrav);
    case Op::kJr: return fields_r(rs, 0, 0, 0, kFnJr);
    case Op::kJalr: return fields_r(rs, 0, rd, 0, kFnJalr);
    case Op::kSyscall: return fields_r(0, 0, 0, 0, kFnSyscall);
    case Op::kBreak: return fields_r(0, 0, 0, 0, kFnBreak);
    case Op::kMfhi: return fields_r(0, 0, rd, 0, kFnMfhi);
    case Op::kMthi: return fields_r(rs, 0, 0, 0, kFnMthi);
    case Op::kMflo: return fields_r(0, 0, rd, 0, kFnMflo);
    case Op::kMtlo: return fields_r(rs, 0, 0, 0, kFnMtlo);
    case Op::kMult: return fields_r(rs, rt, 0, 0, kFnMult);
    case Op::kMultu: return fields_r(rs, rt, 0, 0, kFnMultu);
    case Op::kDiv: return fields_r(rs, rt, 0, 0, kFnDiv);
    case Op::kDivu: return fields_r(rs, rt, 0, 0, kFnDivu);
    case Op::kAdd: return fields_r(rs, rt, rd, 0, kFnAdd);
    case Op::kAddu: return fields_r(rs, rt, rd, 0, kFnAddu);
    case Op::kSub: return fields_r(rs, rt, rd, 0, kFnSub);
    case Op::kSubu: return fields_r(rs, rt, rd, 0, kFnSubu);
    case Op::kAnd: return fields_r(rs, rt, rd, 0, kFnAnd);
    case Op::kOr: return fields_r(rs, rt, rd, 0, kFnOr);
    case Op::kXor: return fields_r(rs, rt, rd, 0, kFnXor);
    case Op::kNor: return fields_r(rs, rt, rd, 0, kFnNor);
    case Op::kSlt: return fields_r(rs, rt, rd, 0, kFnSlt);
    case Op::kSltu: return fields_r(rs, rt, rd, 0, kFnSltu);
    case Op::kBltz: return fields_i(kOpRegimm, rs, 0, inst.imm);
    case Op::kBgez: return fields_i(kOpRegimm, rs, 1, inst.imm);
    case Op::kJ: return (kOpJ << 26) | (inst.target & 0x03FFFFFFu);
    case Op::kJal: return (kOpJal << 26) | (inst.target & 0x03FFFFFFu);
    case Op::kBeq: return fields_i(kOpBeq, rs, rt, inst.imm);
    case Op::kBne: return fields_i(kOpBne, rs, rt, inst.imm);
    case Op::kBlez: return fields_i(kOpBlez, rs, 0, inst.imm);
    case Op::kBgtz: return fields_i(kOpBgtz, rs, 0, inst.imm);
    case Op::kAddi: return fields_i(kOpAddi, rs, rt, inst.imm);
    case Op::kAddiu: return fields_i(kOpAddiu, rs, rt, inst.imm);
    case Op::kSlti: return fields_i(kOpSlti, rs, rt, inst.imm);
    case Op::kSltiu: return fields_i(kOpSltiu, rs, rt, inst.imm);
    case Op::kAndi: return fields_i(kOpAndi, rs, rt, inst.imm);
    case Op::kOri: return fields_i(kOpOri, rs, rt, inst.imm);
    case Op::kXori: return fields_i(kOpXori, rs, rt, inst.imm);
    case Op::kLui: return fields_i(kOpLui, 0, rt, inst.imm);
    case Op::kLb: return fields_i(kOpLb, rs, rt, inst.imm);
    case Op::kLh: return fields_i(kOpLh, rs, rt, inst.imm);
    case Op::kLw: return fields_i(kOpLw, rs, rt, inst.imm);
    case Op::kLbu: return fields_i(kOpLbu, rs, rt, inst.imm);
    case Op::kLhu: return fields_i(kOpLhu, rs, rt, inst.imm);
    case Op::kSb: return fields_i(kOpSb, rs, rt, inst.imm);
    case Op::kSh: return fields_i(kOpSh, rs, rt, inst.imm);
    case Op::kSw: return fields_i(kOpSw, rs, rt, inst.imm);
    case Op::kLwc1: return fields_i(kOpLwc1, rs, ft, inst.imm);
    case Op::kSwc1: return fields_i(kOpSwc1, rs, ft, inst.imm);
    case Op::kAddS: return fields_cop1(kFmtS, ft, fs, fd, kFnAddS);
    case Op::kSubS: return fields_cop1(kFmtS, ft, fs, fd, kFnSubS);
    case Op::kMulS: return fields_cop1(kFmtS, ft, fs, fd, kFnMulS);
    case Op::kDivS: return fields_cop1(kFmtS, ft, fs, fd, kFnDivS);
    case Op::kSqrtS: return fields_cop1(kFmtS, 0, fs, fd, kFnSqrtS);
    case Op::kAbsS: return fields_cop1(kFmtS, 0, fs, fd, kFnAbsS);
    case Op::kMovS: return fields_cop1(kFmtS, 0, fs, fd, kFnMovS);
    case Op::kNegS: return fields_cop1(kFmtS, 0, fs, fd, kFnNegS);
    case Op::kCvtSW: return fields_cop1(kFmtW, 0, fs, fd, kFnCvtSW);
    case Op::kTruncWS: return fields_cop1(kFmtS, 0, fs, fd, kFnTruncWS);
    case Op::kCEqS: return fields_cop1(kFmtS, ft, fs, 0, kFnCEqS);
    case Op::kCLtS: return fields_cop1(kFmtS, ft, fs, 0, kFnCLtS);
    case Op::kCLeS: return fields_cop1(kFmtS, ft, fs, 0, kFnCLeS);
    case Op::kBc1f:
      return (kOpCop1 << 26) | (kFmtBc1 << 21) |
             (static_cast<std::uint32_t>(inst.imm) & 0xFFFFu);
    case Op::kBc1t:
      return (kOpCop1 << 26) | (kFmtBc1 << 21) | (1u << 16) |
             (static_cast<std::uint32_t>(inst.imm) & 0xFFFFu);
    case Op::kMfc1: return fields_cop1(kFmtMfc1, rt, fs, 0, 0);
    case Op::kMtc1: return fields_cop1(kFmtMtc1, rt, fs, 0, 0);
    case Op::kInvalid: break;
  }
  throw std::invalid_argument("encode: invalid instruction");
}

Instruction decode(std::uint32_t word) {
  Instruction inst;
  const std::uint32_t op = word >> 26;
  const std::uint32_t rs = (word >> 21) & 31;
  const std::uint32_t rt = (word >> 16) & 31;
  const std::uint32_t rd = (word >> 11) & 31;
  const std::uint32_t shamt = (word >> 6) & 31;
  const std::uint32_t funct = word & 63;
  inst.rs = static_cast<std::uint8_t>(rs);
  inst.rt = static_cast<std::uint8_t>(rt);
  inst.rd = static_cast<std::uint8_t>(rd);
  inst.shamt = static_cast<std::uint8_t>(shamt);
  inst.imm = sext16(word);
  inst.target = word & 0x03FFFFFFu;

  switch (op) {
    case kOpSpecial:
      switch (funct) {
        case kFnSll: inst.op = Op::kSll; break;
        case kFnSrl: inst.op = Op::kSrl; break;
        case kFnSra: inst.op = Op::kSra; break;
        case kFnSllv: inst.op = Op::kSllv; break;
        case kFnSrlv: inst.op = Op::kSrlv; break;
        case kFnSrav: inst.op = Op::kSrav; break;
        case kFnJr: inst.op = Op::kJr; break;
        case kFnJalr: inst.op = Op::kJalr; break;
        case kFnSyscall: inst.op = Op::kSyscall; break;
        case kFnBreak: inst.op = Op::kBreak; break;
        case kFnMfhi: inst.op = Op::kMfhi; break;
        case kFnMthi: inst.op = Op::kMthi; break;
        case kFnMflo: inst.op = Op::kMflo; break;
        case kFnMtlo: inst.op = Op::kMtlo; break;
        case kFnMult: inst.op = Op::kMult; break;
        case kFnMultu: inst.op = Op::kMultu; break;
        case kFnDiv: inst.op = Op::kDiv; break;
        case kFnDivu: inst.op = Op::kDivu; break;
        case kFnAdd: inst.op = Op::kAdd; break;
        case kFnAddu: inst.op = Op::kAddu; break;
        case kFnSub: inst.op = Op::kSub; break;
        case kFnSubu: inst.op = Op::kSubu; break;
        case kFnAnd: inst.op = Op::kAnd; break;
        case kFnOr: inst.op = Op::kOr; break;
        case kFnXor: inst.op = Op::kXor; break;
        case kFnNor: inst.op = Op::kNor; break;
        case kFnSlt: inst.op = Op::kSlt; break;
        case kFnSltu: inst.op = Op::kSltu; break;
        default: inst.op = Op::kInvalid; break;
      }
      break;
    case kOpRegimm:
      inst.op = (rt == 1) ? Op::kBgez : (rt == 0 ? Op::kBltz : Op::kInvalid);
      break;
    case kOpJ: inst.op = Op::kJ; break;
    case kOpJal: inst.op = Op::kJal; break;
    case kOpBeq: inst.op = Op::kBeq; break;
    case kOpBne: inst.op = Op::kBne; break;
    case kOpBlez: inst.op = Op::kBlez; break;
    case kOpBgtz: inst.op = Op::kBgtz; break;
    case kOpAddi: inst.op = Op::kAddi; break;
    case kOpAddiu: inst.op = Op::kAddiu; break;
    case kOpSlti: inst.op = Op::kSlti; break;
    case kOpSltiu: inst.op = Op::kSltiu; break;
    case kOpAndi: inst.op = Op::kAndi; break;
    case kOpOri: inst.op = Op::kOri; break;
    case kOpXori: inst.op = Op::kXori; break;
    case kOpLui: inst.op = Op::kLui; break;
    case kOpLb: inst.op = Op::kLb; break;
    case kOpLh: inst.op = Op::kLh; break;
    case kOpLw: inst.op = Op::kLw; break;
    case kOpLbu: inst.op = Op::kLbu; break;
    case kOpLhu: inst.op = Op::kLhu; break;
    case kOpSb: inst.op = Op::kSb; break;
    case kOpSh: inst.op = Op::kSh; break;
    case kOpSw: inst.op = Op::kSw; break;
    case kOpLwc1:
      inst.op = Op::kLwc1;
      inst.ft = static_cast<std::uint8_t>(rt);
      break;
    case kOpSwc1:
      inst.op = Op::kSwc1;
      inst.ft = static_cast<std::uint8_t>(rt);
      break;
    case kOpCop1: {
      const std::uint32_t fmt = rs;
      inst.ft = static_cast<std::uint8_t>(rt);
      inst.fs = static_cast<std::uint8_t>(rd);
      inst.fd = static_cast<std::uint8_t>(shamt);
      if (fmt == kFmtMfc1) {
        inst.op = Op::kMfc1;  // rt = integer destination, fs = source
      } else if (fmt == kFmtMtc1) {
        inst.op = Op::kMtc1;  // rt = integer source, fs = destination
      } else if (fmt == kFmtBc1) {
        inst.op = (rt & 1) ? Op::kBc1t : Op::kBc1f;
      } else if (fmt == kFmtS) {
        switch (funct) {
          case kFnAddS: inst.op = Op::kAddS; break;
          case kFnSubS: inst.op = Op::kSubS; break;
          case kFnMulS: inst.op = Op::kMulS; break;
          case kFnDivS: inst.op = Op::kDivS; break;
          case kFnSqrtS: inst.op = Op::kSqrtS; break;
          case kFnAbsS: inst.op = Op::kAbsS; break;
          case kFnMovS: inst.op = Op::kMovS; break;
          case kFnNegS: inst.op = Op::kNegS; break;
          case kFnTruncWS: inst.op = Op::kTruncWS; break;
          case kFnCEqS: inst.op = Op::kCEqS; break;
          case kFnCLtS: inst.op = Op::kCLtS; break;
          case kFnCLeS: inst.op = Op::kCLeS; break;
          default: inst.op = Op::kInvalid; break;
        }
      } else if (fmt == kFmtW) {
        inst.op = (funct == kFnCvtSW) ? Op::kCvtSW : Op::kInvalid;
      } else {
        inst.op = Op::kInvalid;
      }
      break;
    }
    default: inst.op = Op::kInvalid; break;
  }
  return inst;
}

bool is_branch(Op op) {
  switch (op) {
    case Op::kBeq: case Op::kBne: case Op::kBlez: case Op::kBgtz:
    case Op::kBltz: case Op::kBgez: case Op::kBc1f: case Op::kBc1t:
      return true;
    default:
      return false;
  }
}

bool is_jump(Op op) { return op == Op::kJ || op == Op::kJal; }

bool is_indirect_jump(Op op) { return op == Op::kJr || op == Op::kJalr; }

bool is_halt(Op op) { return op == Op::kBreak; }

bool ends_basic_block(Op op) {
  return is_branch(op) || is_jump(op) || is_indirect_jump(op) || is_halt(op);
}

std::uint32_t branch_target(std::uint32_t pc, const Instruction& inst) {
  return pc + kInstructionBytes +
         (static_cast<std::uint32_t>(inst.imm) << 2);
}

std::uint32_t jump_target(std::uint32_t pc, const Instruction& inst) {
  return ((pc + kInstructionBytes) & 0xF0000000u) | (inst.target << 2);
}

std::string reg_name(unsigned r) {
  static constexpr const char* kNames[32] = {
      "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
      "$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
      "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
      "$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra"};
  return r < 32 ? kNames[r] : "$?";
}

std::string freg_name(unsigned r) {
  return r < 32 ? "$f" + std::to_string(r) : "$f?";
}

std::optional<unsigned> parse_reg(const std::string& name) {
  for (unsigned r = 0; r < 32; ++r) {
    if (reg_name(r) == name) return r;
  }
  if (name.size() >= 2 && name[0] == '$') {
    unsigned value = 0;
    for (std::size_t i = 1; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') return std::nullopt;
      value = value * 10 + static_cast<unsigned>(name[i] - '0');
    }
    if (value < 32) return value;
  }
  return std::nullopt;
}

std::optional<unsigned> parse_freg(const std::string& name) {
  if (name.size() >= 3 && name[0] == '$' && name[1] == 'f') {
    unsigned value = 0;
    for (std::size_t i = 2; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') return std::nullopt;
      value = value * 10 + static_cast<unsigned>(name[i] - '0');
    }
    if (value < 32) return value;
  }
  return std::nullopt;
}

}  // namespace asimt::isa
