// The span record and its lock-free ring: word-layout round trips, seqlock
// tearing behavior under a racing writer, wrap semantics, and the
// SpanBuilder stage-attribution arithmetic the serving path depends on.
#include "obsv/span.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace asimt::obsv {
namespace {

Span make_span(std::uint64_t seq) {
  Span span;
  span.seq = seq;
  span.conn_id = seq * 3 + 1;
  span.start_ns = seq * 1000;
  for (unsigned s = 0; s < kStageCount; ++s) span.stage_ns[s] = seq + s;
  span.op = static_cast<std::uint8_t>(Op::kEncode);
  span.outcome = static_cast<std::uint8_t>(Outcome::kHit);
  span.error_kind = 0;
  span.shard = static_cast<std::uint8_t>(seq & 0xFF);
  span.request_bytes = static_cast<std::uint32_t>(seq * 7);
  span.payload_bytes = static_cast<std::uint32_t>(seq * 11);
  return span;
}

TEST(Span, NameTablesRoundTrip) {
  EXPECT_STREQ(stage_name(Stage::kRead), "read");
  EXPECT_STREQ(stage_name(Stage::kWrite), "write");
  EXPECT_STREQ(op_name(Op::kEncode), "encode");
  EXPECT_STREQ(op_name(Op::kOther), "other");
  EXPECT_STREQ(outcome_name(Outcome::kMiss), "miss");
  for (std::uint8_t kind = 0; kind < kErrorKindCount; ++kind) {
    EXPECT_EQ(error_kind_id(error_kind_name(kind)), kind);
  }
  // Unknown strings degrade to the internal kind, never out of range.
  EXPECT_EQ(error_kind_id("no_such_kind"), kErrorKindCount - 1);
}

TEST(Span, WordLayoutRoundTripsEveryField) {
  const Span original = make_span(42);
  std::uint64_t words[kSpanWords];
  span_to_words(original, words);
  const Span back = span_from_words(words);
  EXPECT_EQ(back.seq, original.seq);
  EXPECT_EQ(back.conn_id, original.conn_id);
  EXPECT_EQ(back.start_ns, original.start_ns);
  for (unsigned s = 0; s < kStageCount; ++s) {
    EXPECT_EQ(back.stage_ns[s], original.stage_ns[s]) << "stage " << s;
  }
  EXPECT_EQ(back.op, original.op);
  EXPECT_EQ(back.outcome, original.outcome);
  EXPECT_EQ(back.error_kind, original.error_kind);
  EXPECT_EQ(back.shard, original.shard);
  EXPECT_EQ(back.request_bytes, original.request_bytes);
  EXPECT_EQ(back.payload_bytes, original.payload_bytes);
}

TEST(Span, TotalExcludesTheReadWait) {
  Span span;
  span.stage_ns[static_cast<unsigned>(Stage::kRead)] = 1'000'000;  // client think
  span.stage_ns[static_cast<unsigned>(Stage::kParse)] = 10;
  span.stage_ns[static_cast<unsigned>(Stage::kExecute)] = 20;
  span.stage_ns[static_cast<unsigned>(Stage::kWrite)] = 5;
  EXPECT_EQ(span.total_ns(), 35u);
}

TEST(SpanRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpanRing(1).capacity(), 8u);
  EXPECT_EQ(SpanRing(8).capacity(), 8u);
  EXPECT_EQ(SpanRing(9).capacity(), 16u);
  EXPECT_EQ(SpanRing(256).capacity(), 256u);
}

TEST(SpanRing, EmptySlotsAreUnreadable) {
  SpanRing ring(8);
  Span out;
  for (std::size_t i = 0; i < ring.capacity(); ++i) {
    EXPECT_FALSE(ring.read_slot(i, out)) << "slot " << i;
  }
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(SpanRing, SnapshotIsOldestFirstAndWrapKeepsTheLatest) {
  SpanRing ring(8);
  for (std::uint64_t seq = 1; seq <= 20; ++seq) ring.push(make_span(seq));
  const std::vector<Span> spans = ring.snapshot();
  // 20 pushes into 8 slots: the 8 most recent survive, ascending by seq.
  ASSERT_EQ(spans.size(), 8u);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].seq, 13 + i);
  }
}

TEST(SpanRing, ResetForgetsAndConnIdRestamps) {
  SpanRing ring(8);
  ring.set_conn_id(7);
  ring.push(make_span(1));
  EXPECT_EQ(ring.conn_id(), 7u);
  EXPECT_EQ(ring.pushed(), 1u);
  ring.reset();
  ring.set_conn_id(9);
  EXPECT_TRUE(ring.snapshot().empty());
  EXPECT_EQ(ring.pushed(), 0u);
  EXPECT_EQ(ring.conn_id(), 9u);
}

// The seqlock contract: a reader racing the single writer either skips a
// slot or sees one complete span — never a torn mix of two. Every field of
// make_span derives from seq, so internal consistency is checkable.
TEST(SpanRing, ConcurrentReadersNeverSeeTornSpans) {
  SpanRing ring(16);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::thread reader([&] {
    Span out;
    while (!stop.load(std::memory_order_acquire)) {
      for (std::size_t i = 0; i < ring.capacity(); ++i) {
        if (!ring.read_slot(i, out)) continue;
        const Span expected = make_span(out.seq);
        if (out.conn_id != expected.conn_id ||
            out.start_ns != expected.start_ns ||
            std::memcmp(out.stage_ns, expected.stage_ns,
                        sizeof(out.stage_ns)) != 0 ||
            out.request_bytes != expected.request_bytes ||
            out.payload_bytes != expected.payload_bytes) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  for (std::uint64_t seq = 1; seq <= 200'000; ++seq) ring.push(make_span(seq));
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(ring.pushed(), 200'000u);
}

TEST(SpanBuilder, InactiveUntilBegunAndMarksAccumulate) {
  SpanBuilder sb;
  EXPECT_FALSE(sb.active());
  sb.mark(Stage::kParse);  // no-op while inactive
  EXPECT_EQ(sb.span().stage_ns[static_cast<unsigned>(Stage::kParse)], 0u);

  sb.begin(/*conn_id=*/3, /*seq=*/17);
  EXPECT_TRUE(sb.active());
  sb.mark(Stage::kParse);
  sb.mark(Stage::kExecute);
  sb.mark(Stage::kParse);  // second parse share adds, not overwrites
  const Span& span = sb.span();
  EXPECT_EQ(span.conn_id, 3u);
  EXPECT_EQ(span.seq, 17u);
  // Direct begin (read_start 0): no read-stage attribution.
  EXPECT_EQ(span.stage_ns[static_cast<unsigned>(Stage::kRead)], 0u);
  EXPECT_EQ(sb.server_ns(), span.total_ns());
}

TEST(SpanBuilder, ReadStartAnchorsTheReadStage) {
  const std::uint64_t before = now_ns();
  SpanBuilder sb;
  sb.begin(1, 1, before);
  EXPECT_EQ(sb.span().start_ns, before);
  // The read stage charges the wait between read_start and begin().
  EXPECT_GE(sb.span().stage_ns[static_cast<unsigned>(Stage::kRead)], 0u);
  // total_ns still excludes it.
  EXPECT_EQ(sb.span().total_ns(), 0u);
}

TEST(SpanBuilder, ByteCountsSaturateAt32Bits) {
  SpanBuilder sb;
  sb.begin(1, 1);
  sb.set_request_bytes(std::size_t{1} << 40);
  sb.set_payload_bytes(123);
  EXPECT_EQ(sb.span().request_bytes, 0xFFFFFFFFu);
  EXPECT_EQ(sb.span().payload_bytes, 123u);
}

TEST(Clock, MonotonicNanosNeverGoBackwards) {
  std::uint64_t last = now_ns();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = now_ns();
    EXPECT_GE(now, last);
    last = now;
  }
}

}  // namespace
}  // namespace asimt::obsv
