// Validation of the extra (non-paper) kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "isa/assembler.h"
#include "sim/cpu.h"
#include "workloads/workload.h"

namespace asimt::workloads {
namespace {

class ExtraWorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ExtraWorkloadTest, AssemblesSimulatesAndValidates) {
  const Workload w = make_by_name(GetParam(), SizeConfig::small());
  const isa::Program program = isa::assemble(w.source);
  sim::Memory memory;
  memory.load_program(program);
  sim::Cpu cpu(memory);
  cpu.state().pc = program.entry();
  w.init(memory, cpu.state());
  cpu.run(w.max_steps);
  ASSERT_TRUE(cpu.state().halted) << w.name;
  std::string error;
  EXPECT_TRUE(w.check(memory, &error)) << w.name << ": " << error;
}

TEST_P(ExtraWorkloadTest, CheckFailsOnUntouchedMemory) {
  const Workload w = make_by_name(GetParam(), SizeConfig::small());
  sim::Memory memory;
  sim::CpuState state;
  w.init(memory, state);
  std::string error;
  EXPECT_FALSE(w.check(memory, &error)) << w.name;
}

INSTANTIATE_TEST_SUITE_P(AllFour, ExtraWorkloadTest,
                         ::testing::Values("fir", "crc32", "dct", "hist"),
                         [](const auto& info) { return info.param; });

TEST(ExtraWorkloads, MakeExtraReturnsAllFour) {
  const auto extra = make_extra(SizeConfig::small());
  ASSERT_EQ(extra.size(), 4u);
  EXPECT_EQ(extra[0].name, "fir");
  EXPECT_EQ(extra[1].name, "crc32");
  EXPECT_EQ(extra[2].name, "dct");
  EXPECT_EQ(extra[3].name, "hist");
}

TEST(ExtraWorkloads, Crc32MatchesKnownVector) {
  // "123456789" -> 0xCBF43926, the canonical CRC-32 check value — verified
  // through the simulator, not just the host reference.
  const char* input = "123456789";
  Workload w = make_crc32(SizeConfig::small());
  const isa::Program program = isa::assemble(w.source);
  sim::Memory memory;
  memory.load_program(program);
  sim::Cpu cpu(memory);
  cpu.state().pc = program.entry();
  const std::uint32_t buf = 0x30000, out = 0x30100;
  for (std::size_t i = 0; input[i]; ++i) {
    memory.store8(buf + static_cast<std::uint32_t>(i),
                  static_cast<std::uint8_t>(input[i]));
  }
  cpu.state().r[isa::kA0] = buf;
  cpu.state().r[isa::kA1] = 9;
  cpu.state().r[isa::kA2] = out;
  cpu.run(100'000);
  ASSERT_TRUE(cpu.state().halted);
  EXPECT_EQ(memory.load32(out), 0xCBF43926u);
}

TEST(ExtraWorkloads, DctOfConstantBlockIsDcOnly) {
  // A constant block has all energy in coefficient 0 — checked through the
  // simulator on a single block.
  SizeConfig sizes = SizeConfig::small();
  sizes.dct_blocks = 1;
  Workload w = make_dct(sizes);
  const isa::Program program = isa::assemble(w.source);
  sim::Memory memory;
  memory.load_program(program);
  sim::Cpu cpu(memory);
  cpu.state().pc = program.entry();
  w.init(memory, cpu.state());
  // Overwrite the input block with a constant.
  const std::uint32_t params = cpu.state().r[isa::kA0];
  const std::uint32_t x_addr = memory.load32(params);
  const std::uint32_t y_addr = memory.load32(params + 8);
  for (int i = 0; i < 8; ++i) {
    memory.store_float(x_addr + 4 * static_cast<std::uint32_t>(i), 2.0f);
  }
  cpu.run(100'000);
  ASSERT_TRUE(cpu.state().halted);
  EXPECT_NEAR(memory.load_float(y_addr), 2.0f * 8.0f / std::sqrt(8.0f), 1e-4);
  for (int k = 1; k < 8; ++k) {
    EXPECT_NEAR(memory.load_float(y_addr + 4 * static_cast<std::uint32_t>(k)),
                0.0f, 1e-4)
        << k;
  }
}

TEST(ExtraWorkloads, HistogramBinsSumToLength) {
  const SizeConfig sizes = SizeConfig::small();
  Workload w = make_histogram(sizes);
  const isa::Program program = isa::assemble(w.source);
  sim::Memory memory;
  memory.load_program(program);
  sim::Cpu cpu(memory);
  cpu.state().pc = program.entry();
  w.init(memory, cpu.state());
  const std::uint32_t bins = cpu.state().r[isa::kA2];
  cpu.run(10'000'000);
  ASSERT_TRUE(cpu.state().halted);
  std::uint64_t total = 0;
  for (int b = 0; b < 256; ++b) {
    total += memory.load32(bins + 4 * static_cast<std::uint32_t>(b));
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(sizes.hist_bytes));
}

}  // namespace
}  // namespace asimt::workloads
