// Ablation — greedy density selection vs the exact 0/1 knapsack when
// spending the TT budget. Echoes the paper's recurring theme (greedy
// chain encoding, §6) at the block-selection level: how much does the
// heuristic leave on the table?
#include <cstdio>

#include "cfg/cfg.h"
#include "core/selection.h"
#include "isa/assembler.h"
#include "sim/cpu.h"
#include "workloads/workload.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt;
  std::printf("hot-block selection: greedy density vs optimal knapsack (k=5)\n");
  std::printf("%-6s %4s %14s %14s %12s\n", "bench", "TT", "greedy red%",
              "knapsack red%", "gap");

  for (const workloads::Workload& w :
       workloads::make_all(workloads::SizeConfig::small())) {
    const isa::Program program = isa::assemble(w.source);
    const cfg::Cfg cfg = cfg::build_cfg(program);
    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    w.init(memory, cpu.state());
    cfg::Profiler profiler(cfg);
    cpu.run(50'000'000, [&](std::uint32_t pc, std::uint32_t) { profiler.on_fetch(pc); });
    const cfg::Profile profile = profiler.take();
    const long long base = cfg::dynamic_transitions(cfg, profile, cfg.text);

    for (int budget : {4, 8, 16}) {
      core::SelectionOptions opt;
      opt.chain.block_size = 5;
      opt.tt_budget = budget;
      opt.policy = core::SelectionPolicy::kGreedyDensity;
      const auto greedy = core::select_and_encode(cfg, profile, opt);
      opt.policy = core::SelectionPolicy::kOptimalKnapsack;
      const auto knapsack = core::select_and_encode(cfg, profile, opt);

      const long long gt = cfg::dynamic_transitions(
          cfg, profile, greedy.apply_to_text(cfg.text, cfg.text_base));
      const long long kt = cfg::dynamic_transitions(
          cfg, profile, knapsack.apply_to_text(cfg.text, cfg.text_base));
      auto pct = [&](long long v) {
        return 100.0 * static_cast<double>(base - v) / static_cast<double>(base);
      };
      std::printf("%-6s %4d %13.1f%% %13.1f%% %11.2f\n", w.name.c_str(), budget,
                  pct(gt), pct(kt), pct(kt) - pct(gt));
    }
  }
  std::printf(
      "\nthe density heuristic is within noise of the exact knapsack at the\n"
      "paper's 16-entry budget; gaps only open when the budget is starved.\n");
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("ablation_selection_policy")
