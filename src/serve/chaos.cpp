#include "serve/chaos.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obsv/span.h"

namespace asimt::serve {

namespace {

// SplitMix64 step — the repo-standard seed expansion (check/rng.h).
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr const char* kModeNames[kChaosModeCount] = {"chop", "stall", "garbage",
                                                     "disconnect"};

// The junk line injected by garbage faults: printable, newline-terminated,
// and unparseable as JSON, so the daemon must answer it with a parse error
// and keep reading — never with silence or a dropped connection.
constexpr const char kGarbageLine[] = "%%chaos-garbage%%\n";

}  // namespace

const char* chaos_mode_name(ChaosMode mode) {
  return kModeNames[static_cast<unsigned>(mode)];
}

std::optional<ChaosMode> chaos_mode_from_name(const std::string& name) {
  for (unsigned m = 0; m < kChaosModeCount; ++m) {
    if (name == kModeNames[m]) return static_cast<ChaosMode>(m);
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// ChaosSchedule

ChaosSchedule::ChaosSchedule(const ChaosOptions& options,
                             std::uint64_t conn_ordinal, bool to_upstream)
    : options_(options), to_upstream_(to_upstream) {
  // Same stream-derivation shape as the loadgen's per-connection seeds: one
  // SplitMix64 state per (seed, conn, direction), decorrelated by the golden
  // ratio. The ordinal starts at 1 (accept order), directions at 0/1.
  rng_ = options.seed ^
         (0x9E3779B97F4A7C15ull * (conn_ordinal * 2 + (to_upstream ? 0 : 1)));
  any_enabled_ = false;
  for (unsigned m = 0; m < kChaosModeCount; ++m) {
    // Garbage must be a protocol-level *request*; injecting junk lines into
    // the reply stream would corrupt what the campaign asserts byte-identity
    // on, so server->client schedules never draw it.
    if (!to_upstream_ && static_cast<ChaosMode>(m) == ChaosMode::kGarbage) {
      continue;
    }
    any_enabled_ = any_enabled_ || options_.enabled[m];
  }
  if (any_enabled_) generate();
}

void ChaosSchedule::pop() { generate(); }

void ChaosSchedule::generate() {
  // Gap uniform in [1, 2*mean-1]: mean exactly mean_gap_bytes, never zero —
  // two faults can't fire at the same offset.
  const std::uint64_t mean = std::max<std::uint64_t>(1, options_.mean_gap_bytes);
  const std::uint64_t gap = 1 + splitmix64(rng_) % (2 * mean - 1);
  cursor_ += gap;
  next_.offset = cursor_;
  // Weighted draw over the enabled modes. Weights favor the benign faults
  // (chop exercises every short-read/short-write loop) over the destructive
  // one (disconnect costs the client a reconnect and every in-flight reply).
  static constexpr std::uint64_t kWeights[kChaosModeCount] = {45, 25, 20, 10};
  std::uint64_t total = 0;
  for (unsigned m = 0; m < kChaosModeCount; ++m) {
    const bool usable =
        options_.enabled[m] &&
        (to_upstream_ || static_cast<ChaosMode>(m) != ChaosMode::kGarbage);
    if (usable) total += kWeights[m];
  }
  std::uint64_t draw = splitmix64(rng_) % total;
  for (unsigned m = 0; m < kChaosModeCount; ++m) {
    const bool usable =
        options_.enabled[m] &&
        (to_upstream_ || static_cast<ChaosMode>(m) != ChaosMode::kGarbage);
    if (!usable) continue;
    if (draw < kWeights[m]) {
      next_.mode = static_cast<ChaosMode>(m);
      return;
    }
    draw -= kWeights[m];
  }
  next_.mode = ChaosMode::kChop;  // unreachable: total covers every draw
}

// ---------------------------------------------------------------------------
// ChaosProxy

namespace {

// One direction of a proxied connection: bytes read from `src` accumulate in
// `pending` and are forwarded to `dst`, with the schedule applied at
// forwarded-byte offsets. Both pumps of a connection are driven by one
// thread and one poll set — no cross-thread state.
struct Pump {
  int src = -1;
  int dst = -1;
  ChaosSchedule schedule;
  std::string pending;
  std::uint64_t forwarded = 0;       // source bytes sent to dst so far
  std::uint64_t chop_remaining = 0;  // bytes still to forward 1-at-a-time
  std::uint64_t stall_until_ns = 0;
  bool garbage_pending = false;  // inject kGarbageLine at next line boundary
  bool at_line_start = true;
  bool src_eof = false;
  bool half_closed = false;  // SHUT_WR already propagated to dst

  Pump(int src_fd, int dst_fd, ChaosSchedule sched)
      : src(src_fd), dst(dst_fd), schedule(std::move(sched)) {}

  bool drained() const {
    return src_eof && pending.empty() && !garbage_pending;
  }
};

// How the pump loop's single step ended.
enum class PumpStatus {
  kProgress,  // keep going
  kBlocked,   // dst not writable right now: poll for POLLOUT
  kStalled,   // stall fault active: poll with a timeout, send nothing
  kDead,      // disconnect fault or hard socket error: tear the conn down
};

// Forwards as much of `pending` as the schedule and the kernel allow.
PumpStatus pump_step(Pump& p, const ChaosOptions& options, ChaosStats& stats) {
  if (p.stall_until_ns != 0) {
    if (obsv::now_ns() < p.stall_until_ns) return PumpStatus::kStalled;
    p.stall_until_ns = 0;
  }
  auto send_bytes = [&](const char* data, std::size_t len,
                        std::size_t& sent_out) -> PumpStatus {
    const ssize_t n = ::send(p.dst, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        sent_out = 0;
        return PumpStatus::kProgress;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        sent_out = 0;
        return PumpStatus::kBlocked;
      }
      return PumpStatus::kDead;  // peer reset: nothing left to forward to
    }
    sent_out = static_cast<std::size_t>(n);
    return PumpStatus::kProgress;
  };

  for (;;) {
    // Garbage waits for a line boundary so the junk is a clean extra *line*,
    // not a corruption of a real request the campaign must see answered.
    if (p.garbage_pending && p.at_line_start) {
      std::size_t sent = 0;
      const PumpStatus status =
          send_bytes(kGarbageLine, sizeof(kGarbageLine) - 1, sent);
      if (status != PumpStatus::kProgress) return status;
      if (sent < sizeof(kGarbageLine) - 1) {
        // Partial garbage write: extraordinarily rare (the line is tiny);
        // finish it synchronously rather than tracking a cursor for it.
        std::size_t off = sent;
        while (off < sizeof(kGarbageLine) - 1) {
          pollfd pfd{p.dst, POLLOUT, 0};
          if (::poll(&pfd, 1, 1000) <= 0) return PumpStatus::kDead;
          std::size_t more = 0;
          if (send_bytes(kGarbageLine + off, sizeof(kGarbageLine) - 1 - off,
                         more) == PumpStatus::kDead) {
            return PumpStatus::kDead;
          }
          off += more;
        }
      }
      p.garbage_pending = false;
      stats.faults[static_cast<unsigned>(ChaosMode::kGarbage)].fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    if (p.pending.empty()) return PumpStatus::kProgress;

    // Fire every fault scheduled at the current offset before forwarding.
    if (p.schedule.any() && p.forwarded == p.schedule.peek().offset) {
      const ChaosMode mode = p.schedule.peek().mode;
      p.schedule.pop();
      switch (mode) {
        case ChaosMode::kChop:
          p.chop_remaining = std::max<std::uint64_t>(1, options.chop_bytes);
          stats.faults[static_cast<unsigned>(ChaosMode::kChop)].fetch_add(
              1, std::memory_order_relaxed);
          break;
        case ChaosMode::kStall:
          p.stall_until_ns = obsv::now_ns() + options.stall_ms * 1'000'000ull;
          stats.faults[static_cast<unsigned>(ChaosMode::kStall)].fetch_add(
              1, std::memory_order_relaxed);
          return PumpStatus::kStalled;
        case ChaosMode::kGarbage:
          p.garbage_pending = true;
          continue;  // counted when actually injected
        case ChaosMode::kDisconnect:
          stats.faults[static_cast<unsigned>(ChaosMode::kDisconnect)]
              .fetch_add(1, std::memory_order_relaxed);
          return PumpStatus::kDead;
      }
    }

    std::size_t n = p.pending.size();
    if (p.schedule.any()) {
      n = std::min<std::size_t>(n, p.schedule.peek().offset - p.forwarded);
    }
    if (p.chop_remaining > 0) n = 1;
    std::size_t sent = 0;
    const PumpStatus status = send_bytes(p.pending.data(), n, sent);
    if (status != PumpStatus::kProgress) return status;
    if (sent > 0) {
      p.at_line_start = p.pending[sent - 1] == '\n';
      p.pending.erase(0, sent);
      p.forwarded += sent;
      stats.bytes_forwarded.fetch_add(sent, std::memory_order_relaxed);
      if (p.chop_remaining > 0) --p.chop_remaining;
    }
  }
}

}  // namespace

ChaosProxy::ChaosProxy(ChaosOptions options) : options_(std::move(options)) {}

ChaosProxy::~ChaosProxy() {
  notify_stop();
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& connection : connections_) {
      if (connection->client_fd >= 0) {
        ::shutdown(connection->client_fd, SHUT_RDWR);
      }
      if (connection->upstream_fd >= 0) {
        ::shutdown(connection->upstream_fd, SHUT_RDWR);
      }
    }
  }
  for (auto& connection : connections_) {
    if (connection->thread.joinable()) connection->thread.join();
    if (connection->client_fd >= 0) ::close(connection->client_fd);
    if (connection->upstream_fd >= 0) ::close(connection->upstream_fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

bool ChaosProxy::start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.listen_path.size() >= sizeof(addr.sun_path)) {
    error_ = "socket path too long: " + options_.listen_path;
    return false;
  }
  if (options_.upstream_path.size() >= sizeof(addr.sun_path)) {
    error_ = "socket path too long: " + options_.upstream_path;
    return false;
  }
  std::memcpy(addr.sun_path, options_.listen_path.c_str(),
              options_.listen_path.size() + 1);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    error_ = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  ::fcntl(wake_write_fd_, F_SETFL, O_NONBLOCK);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // Same stale-inode reclaim as Server::start(): a leftover socket file from
  // a crashed proxy is unlinked, a live listener is an error.
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (errno == EADDRINUSE) {
      const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      const bool alive =
          probe >= 0 && ::connect(probe,
                                  reinterpret_cast<const sockaddr*>(&addr),
                                  sizeof(addr)) == 0;
      if (probe >= 0) ::close(probe);
      if (alive) {
        error_ =
            "another proxy is already listening on " + options_.listen_path;
        return false;
      }
      ::unlink(options_.listen_path.c_str());
      if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        error_ = "bind " + options_.listen_path + ": " + std::strerror(errno);
        return false;
      }
    } else {
      error_ = "bind " + options_.listen_path + ": " + std::strerror(errno);
      return false;
    }
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  return true;
}

std::uint64_t ChaosProxy::run() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_read_fd_, POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("poll: ") + std::strerror(errno);
      break;
    }
    if (fds[1].revents != 0) break;  // notify_stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      error_ = std::string("accept: ") + std::strerror(errno);
      break;
    }

    // Dial the upstream synchronously; a dead daemon means the client sees
    // an immediate close — exactly what it would see connecting directly.
    sockaddr_un upstream_addr{};
    upstream_addr.sun_family = AF_UNIX;
    std::memcpy(upstream_addr.sun_path, options_.upstream_path.c_str(),
                options_.upstream_path.size() + 1);
    const int upstream = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (upstream < 0 ||
        ::connect(upstream, reinterpret_cast<const sockaddr*>(&upstream_addr),
                  sizeof(upstream_addr)) != 0) {
      if (upstream >= 0) ::close(upstream);
      ::close(client);
      continue;
    }

    ++connections_served_;
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_unique<Connection>();
    connection->client_fd = client;
    connection->upstream_fd = upstream;
    connection->ordinal = connections_served_;
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] { pump_connection(raw); });
    reap_finished_connections();
  }

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(options_.listen_path.c_str());
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (auto& connection : connections_) {
      if (connection->client_fd >= 0) {
        ::shutdown(connection->client_fd, SHUT_RDWR);
      }
      if (connection->upstream_fd >= 0) {
        ::shutdown(connection->upstream_fd, SHUT_RDWR);
      }
    }
  }
  for (auto& connection : connections_) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  return connections_served_;
}

void ChaosProxy::notify_stop() {
  stopping_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

void ChaosProxy::pump_connection(Connection* connection) {
  const int cfd = connection->client_fd;
  const int ufd = connection->upstream_fd;
  ::fcntl(cfd, F_SETFL, ::fcntl(cfd, F_GETFL, 0) | O_NONBLOCK);
  ::fcntl(ufd, F_SETFL, ::fcntl(ufd, F_GETFL, 0) | O_NONBLOCK);

  Pump pumps[2] = {
      // client -> upstream: requests; the direction garbage can target.
      Pump(cfd, ufd, ChaosSchedule(options_, connection->ordinal, true)),
      // upstream -> client: replies.
      Pump(ufd, cfd, ChaosSchedule(options_, connection->ordinal, false)),
  };
  // Bounded staging: never read more than this much ahead of the slowest
  // sink, so one stalled direction cannot balloon the proxy's memory.
  constexpr std::size_t kMaxPending = 1 << 16;
  char chunk[4096];
  bool dead = false;

  while (!dead && !stopping_.load(std::memory_order_acquire)) {
    if (pumps[0].drained() && pumps[1].drained()) break;

    // Drive both pumps, then build the poll set from what blocked them.
    int poll_timeout_ms = -1;
    bool want[2][2] = {{false, false}, {false, false}};  // [pump][in/out]
    for (Pump& p : pumps) {
      const PumpStatus status = pump_step(p, options_, stats_);
      if (status == PumpStatus::kDead) {
        dead = true;
        break;
      }
      const std::size_t idx = &p == &pumps[0] ? 0 : 1;
      if (status == PumpStatus::kStalled) {
        const std::uint64_t now = obsv::now_ns();
        const int remain_ms =
            p.stall_until_ns > now
                ? static_cast<int>((p.stall_until_ns - now) / 1'000'000ull) + 1
                : 1;
        poll_timeout_ms = poll_timeout_ms < 0
                              ? remain_ms
                              : std::min(poll_timeout_ms, remain_ms);
      } else if (status == PumpStatus::kBlocked) {
        want[idx][1] = true;
      }
      // Read more only when there is room and the source is still open and
      // the pump is not frozen by a stall (a stalled pump must not keep
      // buffering unbounded input past the fault point).
      if (!p.src_eof && p.pending.size() < kMaxPending &&
          p.stall_until_ns == 0) {
        want[idx][0] = true;
      }
      // Source finished and everything forwarded: propagate the half-close
      // so the daemon sees the same EOF the client sent (SHUT_WR pattern).
      if (p.drained() && !p.half_closed) {
        ::shutdown(p.dst, SHUT_WR);
        p.half_closed = true;
      }
    }
    if (dead) break;

    pollfd fds[4];  // up to POLLIN on src + POLLOUT on dst, per pump
    nfds_t nfds = 0;
    int map[2] = {-1, -1};  // pump index -> fds index
    for (std::size_t i = 0; i < 2; ++i) {
      short events = 0;
      if (want[i][0]) events |= POLLIN;
      if (want[i][1]) events |= POLLOUT;
      if (events != 0) {
        // POLLIN watches src, POLLOUT watches dst; when both are wanted the
        // fds differ, so register src for reads and dst for writes.
        if (want[i][0]) {
          map[i] = static_cast<int>(nfds);
          fds[nfds++] = {pumps[i].src, POLLIN, 0};
        }
        if (want[i][1]) {
          fds[nfds++] = {pumps[i].dst, POLLOUT, 0};
        }
      }
    }
    if (nfds == 0 && poll_timeout_ms < 0) break;  // nothing left to wait on
    if (nfds > 0 || poll_timeout_ms >= 0) {
      // Cap the wait so a stop request is noticed promptly even when both
      // directions are idle.
      const int wait_ms = poll_timeout_ms < 0
                              ? 100
                              : std::min(poll_timeout_ms, 100);
      const int ready = ::poll(fds, nfds, wait_ms);
      if (ready < 0 && errno != EINTR) break;
    }

    // Ingest whatever arrived.
    for (std::size_t i = 0; i < 2; ++i) {
      Pump& p = pumps[i];
      if (map[i] < 0 || p.src_eof) continue;
      const ssize_t n = ::recv(p.src, chunk, sizeof(chunk), 0);
      if (n > 0) {
        p.pending.append(chunk, static_cast<std::size_t>(n));
      } else if (n == 0) {
        p.src_eof = true;
      } else if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
        dead = true;
      }
    }
  }

  // Disconnect faults and hard errors drop both directions at once — the
  // client's recv sees EOF/reset mid-stream, which is the point.
  ::shutdown(cfd, SHUT_RDWR);
  ::shutdown(ufd, SHUT_RDWR);
  ::close(cfd);
  ::close(ufd);
  connection->client_fd = -1;
  connection->upstream_fd = -1;
  connection->done.store(true, std::memory_order_release);
}

void ChaosProxy::reap_finished_connections() {
  std::lock_guard<std::mutex> lock(connections_mu_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire) &&
        (*it)->thread.joinable()) {
      (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

namespace {

std::atomic<ChaosProxy*> g_signal_proxy{nullptr};

void chaos_signal_handler(int) {
  if (ChaosProxy* proxy = g_signal_proxy.load(std::memory_order_acquire)) {
    proxy->notify_stop();
  }
}

}  // namespace

void install_chaos_signal_handlers(ChaosProxy* proxy) {
  g_signal_proxy.store(proxy, std::memory_order_release);
  struct sigaction action {};
  if (proxy != nullptr) {
    action.sa_handler = chaos_signal_handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: poll() must return EINTR
  } else {
    action.sa_handler = SIG_DFL;
  }
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

}  // namespace asimt::serve
