// Cross-component consistency: the disassembler's output is valid assembler
// input that reproduces the original word, for every opcode with randomized
// fields. Ties the text and binary paths of the toolchain together.
#include <gtest/gtest.h>

#include <random>

#include "isa/assembler.h"
#include "isa/isa.h"

namespace asimt::isa {
namespace {

// A readable suite name per op.
std::string op_name(Op op) {
  Instruction i;
  i.op = op;
  i.imm = 4;
  i.target = 0x100000;
  const std::string text = disassemble(encode(i), 0x400000);
  return text.substr(0, text.find(' '));
}

class DisasmRoundTrip : public ::testing::TestWithParam<Op> {};

TEST_P(DisasmRoundTrip, ReassemblesToTheSameWord) {
  const Op op = GetParam();
  std::mt19937 rng(static_cast<unsigned>(op) * 7919u);
  const AssemblerOptions options;
  for (int trial = 0; trial < 25; ++trial) {
    Instruction in;
    in.op = op;
    in.rs = static_cast<std::uint8_t>(rng() & 31);
    in.rt = static_cast<std::uint8_t>(rng() & 31);
    in.rd = static_cast<std::uint8_t>(rng() & 31);
    in.shamt = static_cast<std::uint8_t>(rng() & 31);
    in.fs = static_cast<std::uint8_t>(rng() & 31);
    in.ft = static_cast<std::uint8_t>(rng() & 31);
    in.fd = static_cast<std::uint8_t>(rng() & 31);
    // Branch targets must stay inside the jump/branch encodable range
    // around the reassembly position; keep offsets small and positive.
    in.imm = static_cast<std::int32_t>(rng() % 64) + 1;
    in.target = ((options.text_base >> 2) & 0x03FFFFFFu) +
                (rng() % 1024);
    const std::uint32_t word = encode(in);
    const std::string text = disassemble(word, options.text_base);
    const Program program = assemble(text + "\n", options);
    ASSERT_EQ(program.text.size(), 1u)
        << op_name(op) << ": '" << text << "'";
    EXPECT_EQ(program.text[0], word)
        << op_name(op) << ": '" << text << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTextualOps, DisasmRoundTrip,
    ::testing::Values(
        // Every op whose disassembly is canonical assembler syntax.
        Op::kSll, Op::kSrl, Op::kSra, Op::kSllv, Op::kSrlv, Op::kSrav,
        Op::kJr, Op::kJalr, Op::kSyscall, Op::kBreak, Op::kMfhi, Op::kMthi,
        Op::kMflo, Op::kMtlo, Op::kMult, Op::kMultu, Op::kDiv, Op::kDivu,
        Op::kAdd, Op::kAddu, Op::kSub, Op::kSubu, Op::kAnd, Op::kOr, Op::kXor,
        Op::kNor, Op::kSlt, Op::kSltu, Op::kBltz, Op::kBgez, Op::kJ, Op::kJal,
        Op::kBeq, Op::kBne, Op::kBlez, Op::kBgtz, Op::kAddi, Op::kAddiu,
        Op::kSlti, Op::kSltiu, Op::kAndi, Op::kOri, Op::kXori, Op::kLui,
        Op::kLb, Op::kLh, Op::kLw, Op::kLbu, Op::kLhu, Op::kSb, Op::kSh,
        Op::kSw, Op::kLwc1, Op::kSwc1, Op::kAddS, Op::kSubS, Op::kMulS,
        Op::kDivS, Op::kSqrtS, Op::kAbsS, Op::kMovS, Op::kNegS, Op::kCvtSW,
        Op::kTruncWS, Op::kCEqS, Op::kCLtS, Op::kCLeS, Op::kBc1f, Op::kBc1t,
        Op::kMfc1, Op::kMtc1));

TEST(DisasmRoundTrip, WholeProgramListingReassembles) {
  // Disassemble an entire workload text and reassemble the listing.
  const Program original = assemble(R"(
start:  li      $t0, 100
loop:   lw      $t1, 0($a0)
        add.s   $f2, $f2, $f1
        addiu   $a0, $a0, 4
        addiu   $t0, $t0, -1
        bne     $t0, $zero, loop
        jal     helper
        halt
helper: sll     $t2, $t1, 3
        jr      $ra
)");
  std::string listing;
  for (std::size_t i = 0; i < original.text.size(); ++i) {
    listing += disassemble(original.text[i],
                           original.text_base + 4 * static_cast<std::uint32_t>(i));
    listing += '\n';
  }
  const Program reassembled = assemble(listing);
  EXPECT_EQ(reassembled.text, original.text);
}

}  // namespace
}  // namespace asimt::isa
