#include "profile/report.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <string>

#include "isa/isa.h"

namespace asimt::profile {

namespace {

json::Value block_to_json(const BlockCost& cost, long long total) {
  json::Value b = json::Value::object();
  b.set("index", cost.index);
  b.set("start_pc", static_cast<long long>(cost.start_pc));
  b.set("end_pc", static_cast<long long>(cost.end_pc));
  b.set("exec", cost.exec);
  b.set("transitions", cost.transitions);
  b.set("encoded", cost.encoded);
  b.set("share",
        total > 0 ? static_cast<double>(cost.transitions) /
                        static_cast<double>(total)
                  : 0.0);
  return b;
}

std::string hex_pc(std::uint32_t pc) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", pc);
  return buf;
}

std::string pct(long long part, long long total) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%5.1f%%",
                total > 0 ? 100.0 * static_cast<double>(part) /
                                static_cast<double>(total)
                          : 0.0);
  return buf;
}

}  // namespace

json::Value profile_report(const TransitionProfiler& profiler,
                           std::size_t top_n) {
  const long long total = profiler.total_transitions();

  json::Value doc = json::Value::object();
  doc.set("fetches", profiler.fetches());

  json::Value trans = json::Value::object();
  trans.set("total", total);
  trans.set("encoded", profiler.encoded_transitions());
  trans.set("unencoded", profiler.unencoded_transitions());
  trans.set("out_of_image", profiler.out_of_image_transitions());
  doc.set("transitions", std::move(trans));

  json::Value lines = json::Value::array();
  for (const long long line : profiler.per_line()) lines.push_back(line);
  doc.set("per_line", std::move(lines));

  const std::vector<BlockCost> all = profiler.blocks();
  doc.set("block_count", static_cast<long long>(all.size()));
  json::Value blocks = json::Value::array();
  for (const BlockCost& cost : top_blocks(all, top_n)) {
    json::Value b = block_to_json(cost, total);
    if (cost.index >= 0 && cost.index < profiler.block_count()) {
      json::Value block_lines = json::Value::array();
      for (unsigned line = 0; line < 32; ++line) {
        block_lines.push_back(
            static_cast<long long>(profiler.block_line(cost.index, line)));
      }
      b.set("lines", std::move(block_lines));
    }
    blocks.push_back(std::move(b));
  }
  doc.set("blocks", std::move(blocks));
  return doc;
}

std::string annotate_listing(const isa::Program& program, const cfg::Cfg& cfg,
                             const TransitionProfiler& profiler) {
  const long long total = profiler.total_transitions();
  std::string out;
  out.reserve(program.text.size() * 64);
  char buf[160];

  std::snprintf(buf, sizeof buf,
                "# transition-attribution listing: %zu instructions, "
                "%llu fetches, %lld transitions\n"
                "#       pc     word  E        exec  transitions  share\n",
                program.text.size(),
                static_cast<unsigned long long>(profiler.fetches()), total);
  out += buf;

  for (const cfg::BasicBlock& block : cfg.blocks) {
    const std::size_t first = (block.start - cfg.text_base) / 4;
    std::snprintf(buf, sizeof buf, "\n# block %d  [%s, %s)\n", block.index,
                  hex_pc(block.start).c_str(), hex_pc(block.end).c_str());
    out += buf;
    for (std::size_t i = 0; i < block.instruction_count(); ++i) {
      const std::size_t w = first + i;
      const std::uint32_t pc =
          block.start + 4 * static_cast<std::uint32_t>(i);
      const std::uint32_t word = program.text[w];
      std::snprintf(buf, sizeof buf, "%s %08x  %c %11llu %12lld  %s  %s\n",
                    hex_pc(pc).c_str(), word,
                    profiler.word_encoded(w) ? 'E' : '.',
                    static_cast<unsigned long long>(profiler.word_exec(w)),
                    profiler.word_transitions(w),
                    pct(profiler.word_transitions(w), total).c_str(),
                    isa::disassemble(word, pc).c_str());
      out += buf;
    }
  }

  out += "\n# per-block summary (transitions sum to the profiler total)\n";
  out += "# block    start  E        exec  transitions  share\n";
  long long check = 0;
  for (const BlockCost& cost : profiler.blocks()) {
    check += cost.transitions;
    if (cost.index < 0) {
      std::snprintf(buf, sizeof buf, "%7s %8s  . %11llu %12lld  %s\n",
                    "out", "-",
                    static_cast<unsigned long long>(cost.exec),
                    cost.transitions, pct(cost.transitions, total).c_str());
    } else {
      std::snprintf(buf, sizeof buf, "%7d %8s  %c %11llu %12lld  %s\n",
                    cost.index, hex_pc(cost.start_pc).c_str(),
                    cost.encoded ? 'E' : '.',
                    static_cast<unsigned long long>(cost.exec),
                    cost.transitions, pct(cost.transitions, total).c_str());
    }
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "%7s %8s    %11s %12lld  %s\n", "total", "",
                "", check, pct(check, total).c_str());
  out += buf;
  return out;
}

std::string summary_text(const TransitionProfiler& profiler,
                         std::size_t top_n) {
  const long long total = profiler.total_transitions();
  std::string out;
  char buf[160];

  std::snprintf(buf, sizeof buf,
                "fetches:      %llu\ntransitions:  %lld\n",
                static_cast<unsigned long long>(profiler.fetches()), total);
  out += buf;
  std::snprintf(buf, sizeof buf, "  encoded:    %lld (%s)\n",
                profiler.encoded_transitions(),
                pct(profiler.encoded_transitions(), total).c_str());
  out += buf;
  std::snprintf(buf, sizeof buf, "  unencoded:  %lld (%s)\n",
                profiler.unencoded_transitions(),
                pct(profiler.unencoded_transitions(), total).c_str());
  out += buf;
  if (profiler.out_of_image_transitions() != 0) {
    std::snprintf(buf, sizeof buf, "  out-of-img: %lld (%s)\n",
                  profiler.out_of_image_transitions(),
                  pct(profiler.out_of_image_transitions(), total).c_str());
    out += buf;
  }

  out += "hot blocks:\n";
  for (const BlockCost& cost : top_blocks(profiler.blocks(), top_n)) {
    if (cost.index < 0) {
      std::snprintf(buf, sizeof buf,
                    "  out-of-image      %12lld  %s\n", cost.transitions,
                    pct(cost.transitions, total).c_str());
    } else {
      std::snprintf(buf, sizeof buf,
                    "  block %4d @%s %c %12lld  %s\n", cost.index,
                    hex_pc(cost.start_pc).c_str(), cost.encoded ? 'E' : '.',
                    cost.transitions, pct(cost.transitions, total).c_str());
    }
    out += buf;
  }

  // The three busiest bus lines — the wires a bus-invert or custom encoding
  // would target next.
  const std::array<long long, 32> lines = profiler.per_line();
  std::array<unsigned, 32> order{};
  for (unsigned i = 0; i < 32; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
    if (lines[a] != lines[b]) return lines[a] > lines[b];
    return a < b;
  });
  out += "hot bus lines:\n";
  for (unsigned i = 0; i < 3; ++i) {
    std::snprintf(buf, sizeof buf, "  line %2u  %12lld  %s\n", order[i],
                  lines[order[i]], pct(lines[order[i]], total).c_str());
    out += buf;
  }
  return out;
}

}  // namespace asimt::profile
