#include "check/shrink.h"

#include <bit>
#include <utility>

#include "telemetry/json.h"

namespace asimt::check {

namespace {

// Primary size metric: shrinking always reduces this (or, at equal size, the
// content complexity below). A word weighs more than a bit so dropping words
// dominates dropping line bits in mixed comparisons.
std::size_t case_weight(const FuzzCase& c) {
  return c.line.size() + 33 * c.words.size() + c.json_text.size() +
         static_cast<std::size_t>(c.block_size);
}

// Secondary metric: fewer set bits / smaller transform universe reads better
// in a reproducer even when the size ties.
std::size_t case_complexity(const FuzzCase& c) {
  std::size_t ones = 0;
  for (std::size_t i = 0; i < c.line.size(); ++i) ones += static_cast<std::size_t>(c.line[i]);
  for (const std::uint32_t w : c.words) ones += static_cast<std::size_t>(std::popcount(w));
  switch (c.transforms) {
    case TransformSet::kPaper: break;
    case TransformSet::kInvertible: ones += 1; break;
    case TransformSet::kAll: ones += 2; break;
  }
  return ones;
}

bits::BitSeq drop_bits(const bits::BitSeq& line, std::size_t off, std::size_t len) {
  bits::BitSeq out;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (i < off || i >= off + len) out.push_back(line[i]);
  }
  return out;
}

template <typename T>
std::vector<T> drop_items(const std::vector<T>& v, std::size_t off, std::size_t len) {
  std::vector<T> out;
  out.reserve(v.size() - len);
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i < off || i >= off + len) out.push_back(v[i]);
  }
  return out;
}

// Structural JSON shrinks: promote a child, drop an element, simplify a leaf.
void json_candidates(const std::string& text, std::vector<std::string>& out) {
  json::Value v;
  try {
    v = json::parse(text);
  } catch (const json::ParseError&) {
    return;  // not parseable (can only happen for hand-written corpus input)
  }
  if (v.is_array()) {
    const json::Array& a = v.as_array();
    for (std::size_t i = 0; i < a.size(); ++i) {
      out.push_back(a[i].dump());  // promote the child
      json::Value smaller = json::Value::array();
      for (std::size_t j = 0; j < a.size(); ++j) {
        if (j != i) smaller.push_back(a[j]);
      }
      out.push_back(smaller.dump());
    }
  } else if (v.is_object()) {
    const json::Object& o = v.as_object();
    for (std::size_t i = 0; i < o.size(); ++i) {
      out.push_back(o[i].second.dump());
      json::Value smaller = json::Value::object();
      for (std::size_t j = 0; j < o.size(); ++j) {
        if (j != i) smaller.as_object().push_back(o[j]);
      }
      out.push_back(smaller.dump());
    }
  } else if (v.is_string()) {
    const std::string& s = v.as_string();
    if (!s.empty()) {
      out.push_back(json::Value(s.substr(0, s.size() / 2)).dump());
      out.push_back(json::Value(s.substr(s.size() / 2)).dump());
      out.push_back("\"\"");
    }
  } else if (v.is_double()) {
    if (v.as_double() != 0.0) out.push_back("0.5");
    out.push_back("0");
  } else if (v.is_int()) {
    if (v.as_int() != 0) out.push_back("0");
  } else if (v.is_bool() || v.is_null()) {
    if (!v.is_null()) out.push_back("null");
  }
}

std::vector<FuzzCase> candidates(const FuzzCase& c) {
  std::vector<FuzzCase> out;
  auto with = [&](auto&& edit) {
    FuzzCase v = c;
    edit(v);
    out.push_back(std::move(v));
  };

  // Smaller block size first: a k=2 reproducer is the easiest to read.
  for (int k = 2; k < c.block_size; ++k) {
    with([&](FuzzCase& v) { v.block_size = k; });
  }
  // Canonicalize toward the hardware transform set.
  if (c.transforms == TransformSet::kAll) {
    with([&](FuzzCase& v) { v.transforms = TransformSet::kPaper; });
    with([&](FuzzCase& v) { v.transforms = TransformSet::kInvertible; });
  } else if (c.transforms == TransformSet::kInvertible &&
             c.oracle != Oracle::kReplay) {
    with([&](FuzzCase& v) { v.transforms = TransformSet::kPaper; });
  }
  // Chunk removal, largest chunks first (ddmin).
  for (std::size_t len = c.line.size(); len >= 1; len /= 2) {
    for (std::size_t off = 0; off + len <= c.line.size(); off += len) {
      with([&](FuzzCase& v) { v.line = drop_bits(c.line, off, len); });
    }
  }
  for (std::size_t len = c.words.size(); len >= 1; len /= 2) {
    for (std::size_t off = 0; off + len <= c.words.size(); off += len) {
      with([&](FuzzCase& v) { v.words = drop_items(c.words, off, len); });
    }
  }
  // Content simplification at constant size.
  for (std::size_t i = 0; i < c.line.size(); ++i) {
    if (c.line[i]) with([&](FuzzCase& v) { v.line.set(i, 0); });
  }
  for (std::size_t i = 0; i < c.words.size(); ++i) {
    if (c.words[i] != 0) with([&](FuzzCase& v) { v.words[i] = 0; });
    if (i > 0 && c.words[i] != c.words[i - 1]) {
      with([&](FuzzCase& v) { v.words[i] = v.words[i - 1]; });
    }
  }
  if (!c.json_text.empty()) {
    std::vector<std::string> texts;
    json_candidates(c.json_text, texts);
    for (std::string& t : texts) {
      with([&](FuzzCase& v) { v.json_text = std::move(t); });
    }
  }
  return out;
}

}  // namespace

ShrinkResult shrink_case(const FuzzCase& failing, const OracleHooks& hooks) {
  ShrinkResult result;
  result.reduced = failing;
  std::optional<std::string> failure = run_case(failing, hooks);
  if (!failure) return result;  // not failing: nothing to minimize
  result.failure = *failure;

  // Greedy descent with a hard budget so a pathological oracle can never
  // stall the fuzz run; every accepted edit strictly reduces
  // (weight, complexity), so termination does not depend on the budget.
  int oracle_budget = 100'000;
  bool improved = true;
  while (improved && oracle_budget > 0) {
    improved = false;
    const std::size_t weight = case_weight(result.reduced);
    const std::size_t complexity = case_complexity(result.reduced);
    for (FuzzCase& candidate : candidates(result.reduced)) {
      const std::size_t cand_weight = case_weight(candidate);
      const std::size_t cand_complexity = case_complexity(candidate);
      if (cand_weight > weight ||
          (cand_weight == weight && cand_complexity >= complexity)) {
        continue;
      }
      if (--oracle_budget <= 0) break;
      if (std::optional<std::string> err = run_case(candidate, hooks)) {
        result.reduced = std::move(candidate);
        result.failure = std::move(*err);
        ++result.accepted_edits;
        improved = true;
        break;
      }
    }
  }
  return result;
}

}  // namespace asimt::check
