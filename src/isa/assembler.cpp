#include "isa/assembler.h"

#include <bit>
#include <cctype>
#include <optional>

#include "isa/isa.h"
#include "util/args.h"

namespace asimt::isa {

std::uint32_t Program::symbol(const std::string& label) const {
  auto it = symbols.find(label);
  if (it == symbols.end()) {
    throw std::out_of_range("undefined symbol: " + label);
  }
  return it->second;
}

namespace {

struct Statement {
  int line = 0;
  std::string mnemonic;               // lower-case, empty for directives-only
  std::vector<std::string> operands;  // comma-separated, trimmed
};

std::string trim(const std::string& s) {
  std::size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

bool is_label_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

class Assembler {
 public:
  explicit Assembler(AssemblerOptions options) : options_(options) {
    program_.text_base = options.text_base;
    program_.data_base = options.data_base;
  }

  Program run(std::string_view source) {
    parse(source);
    layout_pass();
    emit_pass();
    return std::move(program_);
  }

 private:
  enum class Section { kText, kData };

  struct Line {
    int number = 0;
    std::vector<std::string> labels;
    Statement stmt;  // mnemonic may be a directive (starts with '.')
    bool has_stmt = false;
  };

  [[noreturn]] void fail(int line, const std::string& msg) const {
    throw AssemblyError(line, msg);
  }

  // ---- parsing ---------------------------------------------------------

  void parse(std::string_view source) {
    int number = 0;
    std::size_t pos = 0;
    while (pos <= source.size()) {
      const std::size_t eol = source.find('\n', pos);
      std::string raw(source.substr(
          pos, eol == std::string_view::npos ? std::string_view::npos
                                             : eol - pos));
      ++number;
      parse_line(number, raw);
      if (eol == std::string_view::npos) break;
      pos = eol + 1;
    }
  }

  void parse_line(int number, std::string raw) {
    // Strip comments.
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] == '#' || raw[i] == ';') {
        raw.resize(i);
        break;
      }
    }
    Line line;
    line.number = number;
    std::string rest = trim(raw);
    // Leading labels.
    while (true) {
      std::size_t i = 0;
      while (i < rest.size() && is_label_char(rest[i])) ++i;
      if (i == 0 || i >= rest.size() || rest[i] != ':') break;
      line.labels.push_back(rest.substr(0, i));
      rest = trim(rest.substr(i + 1));
    }
    if (!rest.empty()) {
      std::size_t i = 0;
      while (i < rest.size() && !std::isspace(static_cast<unsigned char>(rest[i]))) ++i;
      line.stmt.line = number;
      line.stmt.mnemonic = lower(rest.substr(0, i));
      std::string ops = trim(rest.substr(i));
      if (!ops.empty()) {
        std::size_t start = 0;
        int depth = 0;
        for (std::size_t j = 0; j <= ops.size(); ++j) {
          if (j == ops.size() || (ops[j] == ',' && depth == 0)) {
            line.stmt.operands.push_back(trim(ops.substr(start, j - start)));
            start = j + 1;
          } else if (ops[j] == '(') {
            ++depth;
          } else if (ops[j] == ')') {
            --depth;
          }
        }
      }
      line.has_stmt = true;
    }
    if (!line.labels.empty() || line.has_stmt) lines_.push_back(std::move(line));
  }

  // ---- pass 1: layout ----------------------------------------------------

  static int li_words(std::int64_t v) {
    if (v >= -32768 && v <= 32767) return 1;  // addiu
    if (v >= 0 && v <= 65535) return 1;       // ori
    return 2;                                 // lui + ori
  }

  void layout_pass() {
    Section section = Section::kText;
    std::uint32_t text_pc = options_.text_base;
    std::uint32_t data_pc = options_.data_base;
    for (const Line& line : lines_) {
      std::uint32_t& pc = section == Section::kText ? text_pc : data_pc;
      for (const std::string& label : line.labels) {
        if (program_.symbols.count(label)) {
          fail(line.number, "duplicate label: " + label);
        }
        program_.symbols[label] = pc;
      }
      if (!line.has_stmt) continue;
      const Statement& s = line.stmt;
      if (s.mnemonic == ".text") {
        section = Section::kText;
        if (!s.operands.empty()) {
          fail(line.number, ".text with explicit address is unsupported");
        }
      } else if (s.mnemonic == ".data") {
        section = Section::kData;
        if (!s.operands.empty()) {
          fail(line.number, ".data with explicit address is unsupported");
        }
      } else if (s.mnemonic == ".word" || s.mnemonic == ".float") {
        if (section != Section::kData) fail(line.number, "data directive outside .data");
        data_pc += 4 * static_cast<std::uint32_t>(s.operands.size());
      } else if (s.mnemonic == ".space") {
        if (section != Section::kData) fail(line.number, ".space outside .data");
        data_pc += static_cast<std::uint32_t>(parse_integer(line.number, s.operands.at(0)));
      } else if (s.mnemonic == ".align") {
        const auto n = static_cast<std::uint32_t>(parse_integer(line.number, s.operands.at(0)));
        const std::uint32_t align = 1u << n;
        std::uint32_t& p = section == Section::kText ? text_pc : data_pc;
        p = (p + align - 1) & ~(align - 1);
      } else if (s.mnemonic == ".globl" || s.mnemonic == ".global") {
        // accepted and ignored
      } else if (s.mnemonic[0] == '.') {
        fail(line.number, "unknown directive: " + s.mnemonic);
      } else {
        if (section != Section::kText) fail(line.number, "instruction outside .text");
        text_pc += 4 * static_cast<std::uint32_t>(instruction_words_pass1(s));
      }
    }
  }

  // Pass-1 sizing; immediates must be literal for size-variable pseudos.
  int instruction_words_pass1(const Statement& s) const {
    const std::string& m = s.mnemonic;
    if (m == "li") {
      if (s.operands.size() != 2) fail(s.line, "li needs 2 operands");
      return li_words(parse_integer(s.line, s.operands[1]));
    }
    if (m == "la" || m == "li.s" || m == "mul" || m == "blt" || m == "bgt" ||
        m == "ble" || m == "bge") {
      return 2;
    }
    return 1;
  }

  // ---- pass 2: emission --------------------------------------------------

  void emit_pass() {
    Section section = Section::kText;
    for (const Line& line : lines_) {
      if (!line.has_stmt) continue;
      const Statement& s = line.stmt;
      if (s.mnemonic == ".text") {
        section = Section::kText;
      } else if (s.mnemonic == ".data") {
        section = Section::kData;
      } else if (s.mnemonic == ".word") {
        for (const std::string& op : s.operands) {
          emit_data_word(static_cast<std::uint32_t>(parse_value(line.number, op)));
        }
      } else if (s.mnemonic == ".float") {
        for (const std::string& op : s.operands) {
          emit_data_word(std::bit_cast<std::uint32_t>(parse_float(line.number, op)));
        }
      } else if (s.mnemonic == ".space") {
        const auto n = static_cast<std::size_t>(parse_integer(line.number, s.operands.at(0)));
        program_.data.insert(program_.data.end(), n, 0);
      } else if (s.mnemonic == ".align") {
        const auto n = static_cast<std::uint32_t>(parse_integer(line.number, s.operands.at(0)));
        const std::uint32_t align = 1u << n;
        if (section == Section::kData) {
          while (program_.data.size() % align) program_.data.push_back(0);
        } else {
          while ((program_.text.size() * 4) % align) emit(nop_word());
        }
      } else if (s.mnemonic == ".globl" || s.mnemonic == ".global") {
        // ignored
      } else {
        emit_instruction(s);
      }
    }
  }

  static std::uint32_t nop_word() { return 0; }

  void emit(std::uint32_t word) { program_.text.push_back(word); }

  void emit(const Instruction& inst) { emit(encode(inst)); }

  void emit_data_word(std::uint32_t v) {
    program_.data.push_back(static_cast<std::uint8_t>(v));
    program_.data.push_back(static_cast<std::uint8_t>(v >> 8));
    program_.data.push_back(static_cast<std::uint8_t>(v >> 16));
    program_.data.push_back(static_cast<std::uint8_t>(v >> 24));
  }

  std::uint32_t here() const {
    return program_.text_base + 4 * static_cast<std::uint32_t>(program_.text.size());
  }

  // ---- operand parsing -----------------------------------------------------

  // Strict whole-string parses (util/args.h). strtoll/strtof would accept
  // the same prefixes but saturate out-of-range literals silently (LLONG_MAX
  // / +-inf), which then truncate into instruction words with no diagnostic;
  // here an overflowing literal is an AssemblyError like any other typo.
  std::int64_t parse_integer(int line, const std::string& text) const {
    const std::string t = trim(text);
    if (t.empty()) fail(line, "empty integer operand");
    const std::optional<long long> v = util::parse_integer_literal(t);
    if (!v) fail(line, "bad integer (junk or out of 64-bit range): " + t);
    return *v;
  }

  float parse_float(int line, const std::string& text) const {
    const std::string t = trim(text);
    if (t.empty()) fail(line, "empty float operand");
    const std::optional<float> v = util::parse_float_literal(t);
    if (!v) fail(line, "bad float (junk or out of single-precision range): " + t);
    return *v;
  }

  // Integer literal, label address, or %hi/%lo of a label.
  std::int64_t parse_value(int line, const std::string& text) const {
    const std::string t = trim(text);
    if (t.empty()) fail(line, "empty operand");
    if (t.rfind("%hi(", 0) == 0 && t.back() == ')') {
      return (resolve_label(line, t.substr(4, t.size() - 5)) >> 16) & 0xFFFF;
    }
    if (t.rfind("%lo(", 0) == 0 && t.back() == ')') {
      return resolve_label(line, t.substr(4, t.size() - 5)) & 0xFFFF;
    }
    if (std::isdigit(static_cast<unsigned char>(t[0])) || t[0] == '-' || t[0] == '+') {
      return parse_integer(line, t);
    }
    return resolve_label(line, t);
  }

  std::uint32_t resolve_label(int line, const std::string& name) const {
    auto it = program_.symbols.find(trim(name));
    if (it == program_.symbols.end()) fail(line, "undefined label: " + name);
    return it->second;
  }

  unsigned reg_operand(int line, const std::string& text) const {
    auto r = parse_reg(trim(text));
    if (!r) fail(line, "expected integer register, got: " + text);
    return *r;
  }

  unsigned freg_operand(int line, const std::string& text) const {
    auto r = parse_freg(trim(text));
    if (!r) fail(line, "expected FP register, got: " + text);
    return *r;
  }

  // off($reg): returns {offset, base register}.
  std::pair<std::int32_t, unsigned> mem_operand(int line, const std::string& text) const {
    const std::string t = trim(text);
    const std::size_t open = t.find('(');
    if (open == std::string::npos || t.back() != ')') {
      fail(line, "expected mem operand off($reg), got: " + text);
    }
    const std::string off = trim(t.substr(0, open));
    const std::string base = t.substr(open + 1, t.size() - open - 2);
    std::int64_t offset = off.empty() ? 0 : parse_value(line, off);
    if (offset < -32768 || offset > 32767) fail(line, "mem offset out of range");
    return {static_cast<std::int32_t>(offset), reg_operand(line, base)};
  }

  std::int32_t imm16_operand(int line, const std::string& text, bool zero_ext) const {
    const std::int64_t v = parse_value(line, text);
    if (zero_ext ? (v < 0 || v > 65535) : (v < -32768 || v > 65535)) {
      fail(line, "immediate out of 16-bit range: " + text);
    }
    return static_cast<std::int32_t>(v);
  }

  std::int32_t branch_offset(int line, const std::string& label_text) const {
    const std::uint32_t target = static_cast<std::uint32_t>(parse_value(line, label_text));
    const std::int64_t delta =
        (static_cast<std::int64_t>(target) - (static_cast<std::int64_t>(here()) + 4)) >> 2;
    if (delta < -32768 || delta > 32767) fail(line, "branch target out of range");
    return static_cast<std::int32_t>(delta);
  }

  // ---- instruction emission ------------------------------------------------

  void expect_operands(const Statement& s, std::size_t n) const {
    if (s.operands.size() != n) {
      fail(s.line, s.mnemonic + " expects " + std::to_string(n) + " operands");
    }
  }

  void emit_r3(const Statement& s, Op op) {
    expect_operands(s, 3);
    Instruction i;
    i.op = op;
    i.rd = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
    i.rs = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[1]));
    i.rt = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[2]));
    emit(i);
  }

  void emit_shift(const Statement& s, Op op) {
    expect_operands(s, 3);
    Instruction i;
    i.op = op;
    i.rd = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
    i.rt = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[1]));
    const std::int64_t sh = parse_integer(s.line, s.operands[2]);
    if (sh < 0 || sh > 31) fail(s.line, "shift amount out of range");
    i.shamt = static_cast<std::uint8_t>(sh);
    emit(i);
  }

  void emit_shiftv(const Statement& s, Op op) {
    expect_operands(s, 3);
    Instruction i;
    i.op = op;
    i.rd = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
    i.rt = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[1]));
    i.rs = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[2]));
    emit(i);
  }

  void emit_imm(const Statement& s, Op op, bool zero_ext) {
    expect_operands(s, 3);
    Instruction i;
    i.op = op;
    i.rt = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
    i.rs = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[1]));
    i.imm = imm16_operand(s.line, s.operands[2], zero_ext);
    emit(i);
  }

  void emit_mem(const Statement& s, Op op, bool fp) {
    expect_operands(s, 2);
    Instruction i;
    i.op = op;
    if (fp) {
      i.ft = static_cast<std::uint8_t>(freg_operand(s.line, s.operands[0]));
    } else {
      i.rt = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
    }
    const auto [offset, base] = mem_operand(s.line, s.operands[1]);
    i.imm = offset;
    i.rs = static_cast<std::uint8_t>(base);
    emit(i);
  }

  void emit_f3(const Statement& s, Op op) {
    expect_operands(s, 3);
    Instruction i;
    i.op = op;
    i.fd = static_cast<std::uint8_t>(freg_operand(s.line, s.operands[0]));
    i.fs = static_cast<std::uint8_t>(freg_operand(s.line, s.operands[1]));
    i.ft = static_cast<std::uint8_t>(freg_operand(s.line, s.operands[2]));
    emit(i);
  }

  void emit_f2(const Statement& s, Op op) {
    expect_operands(s, 2);
    Instruction i;
    i.op = op;
    i.fd = static_cast<std::uint8_t>(freg_operand(s.line, s.operands[0]));
    i.fs = static_cast<std::uint8_t>(freg_operand(s.line, s.operands[1]));
    emit(i);
  }

  void emit_fcmp(const Statement& s, Op op) {
    expect_operands(s, 2);
    Instruction i;
    i.op = op;
    i.fs = static_cast<std::uint8_t>(freg_operand(s.line, s.operands[0]));
    i.ft = static_cast<std::uint8_t>(freg_operand(s.line, s.operands[1]));
    emit(i);
  }

  void emit_branch2(const Statement& s, Op op) {
    expect_operands(s, 3);
    Instruction i;
    i.op = op;
    i.rs = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
    i.rt = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[1]));
    i.imm = branch_offset(s.line, s.operands[2]);
    emit(i);
  }

  void emit_branch1(const Statement& s, Op op) {
    expect_operands(s, 2);
    Instruction i;
    i.op = op;
    i.rs = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
    i.imm = branch_offset(s.line, s.operands[1]);
    emit(i);
  }

  void emit_li(int line, unsigned rd, std::int64_t v) {
    Instruction i;
    if (v >= -32768 && v <= 32767) {
      i.op = Op::kAddiu;
      i.rt = static_cast<std::uint8_t>(rd);
      i.rs = 0;
      i.imm = static_cast<std::int32_t>(v);
      emit(i);
    } else if (v >= 0 && v <= 65535) {
      i.op = Op::kOri;
      i.rt = static_cast<std::uint8_t>(rd);
      i.rs = 0;
      i.imm = static_cast<std::int32_t>(v);
      emit(i);
    } else {
      const auto u = static_cast<std::uint32_t>(v);
      i.op = Op::kLui;
      i.rt = static_cast<std::uint8_t>(rd);
      i.imm = static_cast<std::int32_t>(u >> 16);
      emit(i);
      Instruction j;
      j.op = Op::kOri;
      j.rt = static_cast<std::uint8_t>(rd);
      j.rs = static_cast<std::uint8_t>(rd);
      j.imm = static_cast<std::int32_t>(u & 0xFFFFu);
      emit(j);
    }
    (void)line;
  }

  // Compare-and-branch pseudos: slt $at, a, b (or swapped) + beq/bne.
  void emit_cmp_branch(const Statement& s, bool swap, bool branch_on_set) {
    expect_operands(s, 3);
    const unsigned a = reg_operand(s.line, s.operands[0]);
    const unsigned b = reg_operand(s.line, s.operands[1]);
    Instruction slt;
    slt.op = Op::kSlt;
    slt.rd = kAt;
    slt.rs = static_cast<std::uint8_t>(swap ? b : a);
    slt.rt = static_cast<std::uint8_t>(swap ? a : b);
    emit(slt);
    Instruction br;
    br.op = branch_on_set ? Op::kBne : Op::kBeq;
    br.rs = kAt;
    br.rt = 0;
    br.imm = branch_offset(s.line, s.operands[2]);
    emit(br);
  }

  void emit_instruction(const Statement& s) {
    const std::string& m = s.mnemonic;
    // R-type ALU.
    if (m == "add") return emit_r3(s, Op::kAdd);
    if (m == "addu") return emit_r3(s, Op::kAddu);
    if (m == "sub") return emit_r3(s, Op::kSub);
    if (m == "subu") return emit_r3(s, Op::kSubu);
    if (m == "and") return emit_r3(s, Op::kAnd);
    if (m == "or") return emit_r3(s, Op::kOr);
    if (m == "xor") return emit_r3(s, Op::kXor);
    if (m == "nor") return emit_r3(s, Op::kNor);
    if (m == "slt") return emit_r3(s, Op::kSlt);
    if (m == "sltu") return emit_r3(s, Op::kSltu);
    if (m == "sll") return emit_shift(s, Op::kSll);
    if (m == "srl") return emit_shift(s, Op::kSrl);
    if (m == "sra") return emit_shift(s, Op::kSra);
    if (m == "sllv") return emit_shiftv(s, Op::kSllv);
    if (m == "srlv") return emit_shiftv(s, Op::kSrlv);
    if (m == "srav") return emit_shiftv(s, Op::kSrav);
    // hi/lo.
    if (m == "mult" || m == "multu" || m == "div" || m == "divu") {
      expect_operands(s, 2);
      Instruction i;
      i.op = m == "mult" ? Op::kMult
             : m == "multu" ? Op::kMultu
             : m == "div" ? Op::kDiv
                          : Op::kDivu;
      i.rs = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
      i.rt = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[1]));
      return emit(i);
    }
    if (m == "mfhi" || m == "mflo") {
      expect_operands(s, 1);
      Instruction i;
      i.op = m == "mfhi" ? Op::kMfhi : Op::kMflo;
      i.rd = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
      return emit(i);
    }
    if (m == "mthi" || m == "mtlo") {
      expect_operands(s, 1);
      Instruction i;
      i.op = m == "mthi" ? Op::kMthi : Op::kMtlo;
      i.rs = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
      return emit(i);
    }
    // Immediates.
    if (m == "addi") return emit_imm(s, Op::kAddi, false);
    if (m == "addiu") return emit_imm(s, Op::kAddiu, false);
    if (m == "slti") return emit_imm(s, Op::kSlti, false);
    if (m == "sltiu") return emit_imm(s, Op::kSltiu, false);
    if (m == "andi") return emit_imm(s, Op::kAndi, true);
    if (m == "ori") return emit_imm(s, Op::kOri, true);
    if (m == "xori") return emit_imm(s, Op::kXori, true);
    if (m == "lui") {
      expect_operands(s, 2);
      Instruction i;
      i.op = Op::kLui;
      i.rt = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
      i.imm = imm16_operand(s.line, s.operands[1], true);
      return emit(i);
    }
    // Memory.
    if (m == "lb") return emit_mem(s, Op::kLb, false);
    if (m == "lh") return emit_mem(s, Op::kLh, false);
    if (m == "lw") return emit_mem(s, Op::kLw, false);
    if (m == "lbu") return emit_mem(s, Op::kLbu, false);
    if (m == "lhu") return emit_mem(s, Op::kLhu, false);
    if (m == "sb") return emit_mem(s, Op::kSb, false);
    if (m == "sh") return emit_mem(s, Op::kSh, false);
    if (m == "sw") return emit_mem(s, Op::kSw, false);
    if (m == "lwc1" || m == "l.s") return emit_mem(s, Op::kLwc1, true);
    if (m == "swc1" || m == "s.s") return emit_mem(s, Op::kSwc1, true);
    // Branches and jumps.
    if (m == "beq") return emit_branch2(s, Op::kBeq);
    if (m == "bne") return emit_branch2(s, Op::kBne);
    if (m == "blez") return emit_branch1(s, Op::kBlez);
    if (m == "bgtz") return emit_branch1(s, Op::kBgtz);
    if (m == "bltz") return emit_branch1(s, Op::kBltz);
    if (m == "bgez") return emit_branch1(s, Op::kBgez);
    if (m == "j" || m == "jal") {
      expect_operands(s, 1);
      Instruction i;
      i.op = m == "j" ? Op::kJ : Op::kJal;
      const std::uint32_t target = static_cast<std::uint32_t>(parse_value(s.line, s.operands[0]));
      i.target = (target >> 2) & 0x03FFFFFFu;
      return emit(i);
    }
    if (m == "jr") {
      expect_operands(s, 1);
      Instruction i;
      i.op = Op::kJr;
      i.rs = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
      return emit(i);
    }
    if (m == "jalr") {
      Instruction i;
      i.op = Op::kJalr;
      if (s.operands.size() == 1) {
        i.rd = kRa;
        i.rs = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
      } else {
        expect_operands(s, 2);
        i.rd = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
        i.rs = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[1]));
      }
      return emit(i);
    }
    // FP.
    if (m == "add.s") return emit_f3(s, Op::kAddS);
    if (m == "sub.s") return emit_f3(s, Op::kSubS);
    if (m == "mul.s") return emit_f3(s, Op::kMulS);
    if (m == "div.s") return emit_f3(s, Op::kDivS);
    if (m == "sqrt.s") return emit_f2(s, Op::kSqrtS);
    if (m == "abs.s") return emit_f2(s, Op::kAbsS);
    if (m == "mov.s") return emit_f2(s, Op::kMovS);
    if (m == "neg.s") return emit_f2(s, Op::kNegS);
    if (m == "cvt.s.w") return emit_f2(s, Op::kCvtSW);
    if (m == "trunc.w.s") return emit_f2(s, Op::kTruncWS);
    if (m == "c.eq.s") return emit_fcmp(s, Op::kCEqS);
    if (m == "c.lt.s") return emit_fcmp(s, Op::kCLtS);
    if (m == "c.le.s") return emit_fcmp(s, Op::kCLeS);
    if (m == "bc1f" || m == "bc1t") {
      expect_operands(s, 1);
      Instruction i;
      i.op = m == "bc1t" ? Op::kBc1t : Op::kBc1f;
      i.imm = branch_offset(s.line, s.operands[0]);
      return emit(i);
    }
    if (m == "mfc1" || m == "mtc1") {
      expect_operands(s, 2);
      Instruction i;
      i.op = m == "mfc1" ? Op::kMfc1 : Op::kMtc1;
      i.rt = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
      i.fs = static_cast<std::uint8_t>(freg_operand(s.line, s.operands[1]));
      return emit(i);
    }
    // System.
    if (m == "syscall") {
      Instruction i;
      i.op = Op::kSyscall;
      return emit(i);
    }
    if (m == "break" || m == "halt") {
      Instruction i;
      i.op = Op::kBreak;
      return emit(i);
    }
    // Pseudo-instructions.
    if (m == "nop") {
      expect_operands(s, 0);
      return emit(nop_word());
    }
    if (m == "move") {
      expect_operands(s, 2);
      Instruction i;
      i.op = Op::kAddu;
      i.rd = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
      i.rs = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[1]));
      i.rt = 0;
      return emit(i);
    }
    if (m == "li") {
      expect_operands(s, 2);
      return emit_li(s.line, reg_operand(s.line, s.operands[0]),
                     parse_integer(s.line, s.operands[1]));
    }
    if (m == "la") {
      expect_operands(s, 2);
      const unsigned rd = reg_operand(s.line, s.operands[0]);
      const auto addr = static_cast<std::uint32_t>(parse_value(s.line, s.operands[1]));
      Instruction i;
      i.op = Op::kLui;
      i.rt = static_cast<std::uint8_t>(rd);
      i.imm = static_cast<std::int32_t>(addr >> 16);
      emit(i);
      Instruction j;
      j.op = Op::kOri;
      j.rt = static_cast<std::uint8_t>(rd);
      j.rs = static_cast<std::uint8_t>(rd);
      j.imm = static_cast<std::int32_t>(addr & 0xFFFFu);
      return emit(j);
    }
    if (m == "li.s") {
      // Loads a float constant via $at: lui/ori + mtc1. Always two int
      // instructions for stable pass-1 sizing (ori even when low bits are 0).
      expect_operands(s, 2);
      const unsigned fd = freg_operand(s.line, s.operands[0]);
      const auto bitsv = std::bit_cast<std::uint32_t>(parse_float(s.line, s.operands[1]));
      Instruction i;
      i.op = Op::kLui;
      i.rt = kAt;
      i.imm = static_cast<std::int32_t>(bitsv >> 16);
      emit(i);
      // NOTE: pass-1 counts li.s as 2 words; keep emission at exactly 2.
      if ((bitsv & 0xFFFFu) != 0) {
        fail(s.line, "li.s constant needs nonzero low bits; use .float data");
      }
      Instruction k;
      k.op = Op::kMtc1;
      k.rt = kAt;
      k.fs = static_cast<std::uint8_t>(fd);
      return emit(k);
    }
    if (m == "b") {
      expect_operands(s, 1);
      Instruction i;
      i.op = Op::kBeq;
      i.rs = i.rt = 0;
      i.imm = branch_offset(s.line, s.operands[0]);
      return emit(i);
    }
    if (m == "beqz" || m == "bnez") {
      expect_operands(s, 2);
      Instruction i;
      i.op = m == "beqz" ? Op::kBeq : Op::kBne;
      i.rs = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
      i.rt = 0;
      i.imm = branch_offset(s.line, s.operands[1]);
      return emit(i);
    }
    if (m == "blt") return emit_cmp_branch(s, false, true);   // slt a,b ; bne
    if (m == "bge") return emit_cmp_branch(s, false, false);  // slt a,b ; beq
    if (m == "bgt") return emit_cmp_branch(s, true, true);    // slt b,a ; bne
    if (m == "ble") return emit_cmp_branch(s, true, false);   // slt b,a ; beq
    if (m == "mul") {
      expect_operands(s, 3);
      Instruction i;
      i.op = Op::kMult;
      i.rs = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[1]));
      i.rt = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[2]));
      emit(i);
      Instruction j;
      j.op = Op::kMflo;
      j.rd = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
      return emit(j);
    }
    if (m == "neg") {
      expect_operands(s, 2);
      Instruction i;
      i.op = Op::kSubu;
      i.rd = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
      i.rs = 0;
      i.rt = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[1]));
      return emit(i);
    }
    if (m == "not") {
      expect_operands(s, 2);
      Instruction i;
      i.op = Op::kNor;
      i.rd = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
      i.rs = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[1]));
      i.rt = 0;
      return emit(i);
    }
    if (m == "subi") {
      expect_operands(s, 3);
      Instruction i;
      i.op = Op::kAddiu;
      i.rt = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[0]));
      i.rs = static_cast<std::uint8_t>(reg_operand(s.line, s.operands[1]));
      const std::int64_t v = parse_integer(s.line, s.operands[2]);
      if (-v < -32768 || -v > 32767) fail(s.line, "subi immediate out of range");
      i.imm = static_cast<std::int32_t>(-v);
      return emit(i);
    }
    fail(s.line, "unknown mnemonic: " + m);
  }

  AssemblerOptions options_;
  Program program_;
  std::vector<Line> lines_;
};

}  // namespace

Program assemble(std::string_view source, AssemblerOptions options) {
  return Assembler(options).run(source);
}

}  // namespace asimt::isa
