// Firmware-image serialization — the first reprogramming alternative of
// §7.1: "load the content of these tables at the same time as the
// application code upload to the instruction memory. This approach is
// particularly suitable for firmware applications."
//
// A FirmwareImage bundles the power-encoded text segment with the TT and
// BBIT contents that make it decodable, in a versioned, checksummed binary
// format a boot loader could ship to flash.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/hw_tables.h"

namespace asimt::core {

class ImageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FirmwareImage {
  std::uint32_t text_base = 0;
  std::vector<std::uint32_t> text;  // power-encoded instruction words
  TtConfig tt;
  std::vector<BbitEntry> bbit;

  bool operator==(const FirmwareImage&) const = default;
};

// Binary layout (all fields little-endian 32-bit words):
//   magic 'ASMT', format version, block size, text base, text words,
//   TT entry count, BBIT entry count, payload (text, packed TT entries,
//   BBIT pc/index pairs), FNV-1a checksum over everything before it.
std::vector<std::uint8_t> serialize(const FirmwareImage& image);

// Parses and validates (magic, version, lengths, checksum, BBIT indices in
// range). Throws ImageError on any corruption.
FirmwareImage deserialize(const std::vector<std::uint8_t>& bytes);

}  // namespace asimt::core
