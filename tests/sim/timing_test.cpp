// Pipeline timing model tests with hand-computed cycle counts.
#include "sim/timing.h"

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "sim/cpu.h"

namespace asimt::sim {
namespace {

// Runs `source` feeding the timing model; returns the model.
TimingModel run_timed(const std::string& source, TimingConfig config = {}) {
  const isa::Program program = isa::assemble(source);
  Memory memory;
  memory.load_program(program);
  Cpu cpu(memory);
  cpu.state().pc = program.entry();
  TimingModel timing(config);
  cpu.run(100'000, [&](std::uint32_t pc, std::uint32_t word) {
    timing.on_fetch(pc, word);
  });
  EXPECT_TRUE(cpu.state().halted);
  return timing;
}

TEST(Timing, StraightLineIsOneCyclePerInstruction) {
  const TimingModel t = run_timed(R"(
        addiu   $t0, $t0, 1
        addiu   $t1, $t1, 2
        addiu   $t2, $t2, 3
        halt
)");
  EXPECT_EQ(t.instructions(), 4u);
  EXPECT_EQ(t.cycles(), 4u);
  EXPECT_DOUBLE_EQ(t.cpi(), 1.0);
}

TEST(Timing, LoadUseStalls) {
  const TimingModel t = run_timed(R"(
        lw      $t0, 0($sp)
        addiu   $t1, $t0, 1      # consumes the load result immediately
        lw      $t2, 4($sp)
        addiu   $t3, $t4, 1      # independent: no stall
        addiu   $t5, $t2, 1      # too late to stall (one-cycle window)
        halt
)");
  EXPECT_EQ(t.load_use_stalls(), 1u);
  EXPECT_EQ(t.cycles(), t.instructions() + 1);
}

TEST(Timing, FpLoadUseStalls) {
  const TimingModel t = run_timed(R"(
        lwc1    $f1, 0($sp)
        add.s   $f2, $f1, $f1
        halt
)");
  EXPECT_EQ(t.load_use_stalls(), 1u);
}

TEST(Timing, TakenBranchPaysTheFlush) {
  const TimingModel t = run_timed(R"(
        li      $t0, 3
loop:   addiu   $t0, $t0, -1
        bne     $t0, $zero, loop
        halt
)");
  // bne taken twice (t0: 2,1), not taken once (t0: 0).
  EXPECT_EQ(t.taken_control_flushes(), 2u);
  EXPECT_EQ(t.cycles(), t.instructions() + 2u * 2u);
}

TEST(Timing, JumpsAlwaysFlush) {
  const TimingModel t = run_timed(R"(
        j       skip
        nop                      # skipped
skip:   jal     func
        halt
func:   jr      $ra
)");
  // j, jal, jr all redirect fetch away from the fall-through path.
  EXPECT_EQ(t.taken_control_flushes(), 3u);
}

TEST(Timing, DecodeLatencyScalesPerFetch) {
  TimingConfig slow;
  slow.decode_latency = 1;
  const TimingModel fast = run_timed("addiu $t0, $t0, 1\nhalt\n");
  const TimingModel slowed = run_timed("addiu $t0, $t0, 1\nhalt\n", slow);
  EXPECT_EQ(slowed.cycles(), fast.cycles() + slowed.instructions());
}

TEST(Timing, IcacheMissPenalty) {
  TimingModel t(TimingConfig{});
  t.on_fetch(0x1000, 0x24080001u);  // addiu
  t.on_icache_miss();
  EXPECT_EQ(t.cycles(), 1u + 8u);
  EXPECT_EQ(t.icache_misses(), 1u);
}

TEST(Timing, CpiOfRealWorkloadIsReasonable) {
  const TimingModel t = run_timed(R"(
        li      $t9, 200
        li      $t0, 0
loop:   lw      $t1, 0($a0)
        addu    $t2, $t2, $t1
        addiu   $t0, $t0, 1
        bne     $t0, $t9, loop
        halt
)");
  EXPECT_GT(t.cpi(), 1.0);   // some flushes
  EXPECT_LT(t.cpi(), 2.0);   // but mostly single-cycle
}

}  // namespace
}  // namespace asimt::sim
