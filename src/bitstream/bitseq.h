// Bit sequences and transition counting.
//
// The unit of analysis in ASIMT is the "vertical" bit sequence: the stream of
// values a single instruction-bus line takes as consecutive instruction words
// are fetched (paper Fig. 1b). This header provides the value type for such
// sequences plus the transition metric that the whole technique minimizes.
//
// Bit-order convention (normative, see DESIGN.md §6): index 0 is the bit that
// appears EARLIEST in time. The paper's figures print the earliest bit as the
// RIGHTMOST character; conversion helpers for that notation are provided.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace asimt::bits {

// A sequence of bits with index 0 = earliest in time.
//
// Bits are stored one per byte (values 0/1). Sequences in this library are
// short (basic-block length, at most a few thousand bits), so simplicity and
// O(1) random access win over packed storage.
class BitSeq {
 public:
  BitSeq() = default;

  // `n` bits, all set to `fill` (0 or 1).
  explicit BitSeq(std::size_t n, int fill = 0);

  // Builds from stream order: s[0] is the earliest bit. Characters must be
  // '0' or '1'. Throws std::invalid_argument otherwise.
  static BitSeq from_stream_string(std::string_view s);

  // Builds from the paper's figure notation: the RIGHTMOST character of `s`
  // is the earliest bit (e.g. Fig. 2's block word "010").
  static BitSeq from_figure_string(std::string_view s);

  // Builds from the low `n` bits of `word`, where bit 0 of `word` is the
  // earliest bit.
  static BitSeq from_word(std::uint64_t word, std::size_t n);

  std::size_t size() const { return bits_.size(); }
  bool empty() const { return bits_.empty(); }

  int operator[](std::size_t i) const { return bits_[i]; }
  void set(std::size_t i, int value) { bits_[i] = static_cast<std::uint8_t>(value & 1); }
  void push_back(int value) { bits_.push_back(static_cast<std::uint8_t>(value & 1)); }

  // Number of adjacent positions i with bit[i] != bit[i+1] — the quantity
  // proportional to bus switching power.
  int transitions() const;

  // Transitions restricted to the window [first, last] (inclusive indices).
  int transitions_in(std::size_t first, std::size_t last) const;

  // Sub-sequence [first, first+len).
  BitSeq slice(std::size_t first, std::size_t len) const;

  // Packs bits [0, n) into a word, bit 0 of the result = earliest bit.
  // Requires n <= 64 and n <= size().
  std::uint64_t to_word(std::size_t n) const;

  // Stream order: earliest bit first.
  std::string to_stream_string() const;
  // Figure order: earliest bit rightmost (matches the paper's tables).
  std::string to_figure_string() const;

  bool operator==(const BitSeq&) const = default;

 private:
  std::vector<std::uint8_t> bits_;
};

// Transitions of the low `k` bits of `word` viewed as a bit sequence
// (bit 0 earliest). Cheap path used by the exhaustive block-code solver.
int word_transitions(std::uint64_t word, int k);

// Extracts the vertical bit sequence of bus line `line` (0 = LSB) across the
// instruction `words` in fetch order — Fig. 1b's column view.
BitSeq vertical_line(std::span<const std::uint32_t> words, unsigned line);

// Rebuilds 32-bit words from 32 per-line sequences (inverse of taking
// vertical_line for each line). All sequences must have length `count`.
std::vector<std::uint32_t> from_vertical_lines(std::span<const BitSeq> lines,
                                               std::size_t count);

// Total transitions across all 32 bus lines between consecutive words —
// i.e. sum over adjacent pairs of popcount(w[i] ^ w[i+1]).
long long total_bus_transitions(std::span<const std::uint32_t> words);

}  // namespace asimt::bits
