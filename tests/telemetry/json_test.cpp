// Unit tests for the minimal JSON model: construction, serialization,
// parsing, and full round-trips (the property the exporters rely on).
#include "telemetry/json.h"

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <limits>

namespace asimt::json {
namespace {

TEST(JsonValue, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(nullptr).is_null());
  EXPECT_TRUE(Value(true).as_bool());
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_EQ(Value(std::uint64_t{1} << 60).as_int(), 1LL << 60);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
  EXPECT_THROW(Value(42).as_string(), std::runtime_error);
  // ints convert to double and vice versa on demand
  EXPECT_DOUBLE_EQ(Value(3).as_double(), 3.0);
  EXPECT_EQ(Value(3.0).as_int(), 3);
}

TEST(JsonValue, ObjectSetReplacesAndPreservesOrder) {
  Value obj = Value::object();
  obj.set("b", 1);
  obj.set("a", 2);
  obj.set("b", 3);  // replaces, stays in first position
  ASSERT_EQ(obj.as_object().size(), 2u);
  EXPECT_EQ(obj.as_object()[0].first, "b");
  EXPECT_EQ(obj.at("b").as_int(), 3);
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_THROW(obj.at("missing"), std::runtime_error);
}

TEST(JsonDump, CompactForms) {
  Value obj = Value::object();
  obj.set("n", nullptr);
  obj.set("t", true);
  obj.set("i", -7);
  obj.set("d", 0.5);
  obj.set("s", "a\"b\\c\n");
  Value arr = Value::array();
  arr.push_back(1);
  arr.push_back(2);
  obj.set("a", std::move(arr));
  EXPECT_EQ(obj.dump(),
            "{\"n\":null,\"t\":true,\"i\":-7,\"d\":0.5,"
            "\"s\":\"a\\\"b\\\\c\\n\",\"a\":[1,2]}");
}

TEST(JsonDump, PrettyPrintParsesBack) {
  Value obj = Value::object();
  obj.set("x", 1);
  Value inner = Value::object();
  inner.set("y", Value::array());
  obj.set("nested", std::move(inner));
  const std::string pretty = obj.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse(pretty), obj);
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse(" true ").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_EQ(parse("-123").as_int(), -123);
  EXPECT_TRUE(parse("123").is_int());
  EXPECT_TRUE(parse("1.5").is_double());
  EXPECT_DOUBLE_EQ(parse("1.5e3").as_double(), 1500.0);
  EXPECT_EQ(parse("\"\\u0041\\t\"").as_string(), "A\t");
}

TEST(JsonParse, LargeIntegersSurviveExactly) {
  const long long big = (1LL << 62) + 12345;
  EXPECT_EQ(parse(Value(big).dump()).as_int(), big);
}

TEST(JsonParse, Errors) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{"), ParseError);
  EXPECT_THROW(parse("[1,]"), ParseError);
  EXPECT_THROW(parse("tru"), ParseError);
  EXPECT_THROW(parse("\"unterminated"), ParseError);
  EXPECT_THROW(parse("{} trailing"), ParseError);
  EXPECT_THROW(parse("{\"a\":}"), ParseError);
  EXPECT_THROW(parse("0x10"), ParseError);
}

TEST(JsonParse, RoundTripComplexDocument) {
  const std::string doc =
      R"({"name":"fft","ok":true,"counts":[1,2,3],"nested":{"pi":3.14,"none":null}})";
  const Value v = parse(doc);
  EXPECT_EQ(parse(v.dump()), v);
  EXPECT_EQ(v.at("nested").at("pi").as_double(), 3.14);
  EXPECT_EQ(v.at("counts").as_array()[2].as_int(), 3);
}

TEST(JsonParseLines, SplitsAndSkipsBlanks) {
  const auto values = parse_lines("{\"a\":1}\n\n  \n{\"b\":2}\n");
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0].at("a").as_int(), 1);
  EXPECT_EQ(values[1].at("b").as_int(), 2);
  EXPECT_THROW(parse_lines("{\"a\":1}\nnot json\n"), ParseError);
}

TEST(JsonEscape, ControlCharacters) {
  EXPECT_EQ(escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(escape("plain"), "plain");
}

TEST(JsonDump, DoublesShortestRoundTrip) {
  EXPECT_EQ(Value(0.1).dump(), "0.1");
  EXPECT_EQ(Value(3.14).dump(), "3.14");
  EXPECT_EQ(Value(-0.5).dump(), "-0.5");
  EXPECT_EQ(Value(1e300).dump(), "1e+300");
  // Non-finite doubles have no JSON spelling; they degrade to null.
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Value(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  // Whatever the spelling, parsing it back must restore the exact bits.
  for (const double d : {0.1, 1.0 / 3.0, 6.02214076e23, 5e-324, -123.456}) {
    EXPECT_EQ(parse(Value(d).dump()).as_double(), d);
  }
}

TEST(JsonParse, NegativeZeroStaysADouble) {
  // Regression (found seeding the fuzz corpus): "-0" used to fold to int 0,
  // so dump(parse(dump(-0.0))) flipped "-0" -> "0" and broke byte-stability.
  EXPECT_TRUE(parse("-0").is_double());
  EXPECT_TRUE(std::signbit(parse("-0").as_double()));
  EXPECT_EQ(Value(-0.0).dump(), "-0");
  EXPECT_EQ(parse(Value(-0.0).dump()).dump(), "-0");
  EXPECT_TRUE(parse("0").is_int());  // plain zero is untouched
}

TEST(JsonDump, DoubleEmissionIgnoresGlobalLocale) {
  // Regression: the dumper used snprintf("%g"), which writes the decimal
  // separator of the active C locale — "3,14" under de_DE — producing JSON
  // no parser (including ours) accepts. std::to_chars never reads the
  // locale, so output must be byte-identical under a comma-decimal locale.
  Value doc = Value::object();
  doc.set("pi", 3.14159);
  doc.set("tiny", 2.5e-7);
  doc.set("list", Value::array());
  doc.at("list");  // keep insertion order deterministic
  const std::string reference = doc.dump();
  ASSERT_NE(reference.find("3.14159"), std::string::npos);

  const char* old = std::setlocale(LC_ALL, nullptr);
  const std::string saved = old ? old : "C";
  const char* comma_locales[] = {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8",
                                 "fr_FR", "C.UTF-8@comma"};
  const char* active = nullptr;
  for (const char* name : comma_locales) {
    if (std::setlocale(LC_ALL, name)) {
      // Only trust locales that actually use a comma separator.
      if (std::localeconv()->decimal_point[0] == ',') {
        active = name;
        break;
      }
    }
  }
  if (!active) {
    std::setlocale(LC_ALL, saved.c_str());
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  const std::string under_comma = doc.dump();
  const Value reparsed = parse(under_comma);
  std::setlocale(LC_ALL, saved.c_str());
  EXPECT_EQ(under_comma, reference) << "dump changed under " << active;
  EXPECT_EQ(reparsed, doc);
}

}  // namespace
}  // namespace asimt::json
