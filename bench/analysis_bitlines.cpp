// Analysis bench — where do the savings come from?
//
// Breaks transitions down per bus line, grouped by the MIPS instruction
// fields the lines carry (opcode [31:26], rs [25:21], rt [20:16],
// rd/imm-high [15:11], shamt/imm-mid [10:6], funct/imm-low [5:0]). The
// "vertical" encoding premise (§4) predicts the biggest wins on the highly
// correlated opcode/register fields and smaller ones on immediates.
#include <cstdio>

#include "core/chain_encoder.h"
#include "isa/assembler.h"
#include "workloads/workload.h"
#include "obs/bench.h"

namespace {

struct Field {
  const char* name;
  unsigned lo, hi;  // inclusive bit range
};

constexpr Field kFields[] = {
    {"opcode[31:26]", 26, 31}, {"rs[25:21]", 21, 25},
    {"rt[20:16]", 16, 20},     {"rd/imm[15:11]", 11, 15},
    {"sh/imm[10:6]", 6, 10},   {"fn/imm[5:0]", 0, 5},
};

}  // namespace

static int run_bench() {
  using namespace asimt;
  std::printf("static per-field transition reduction, k=5 (whole text)\n");
  std::printf("%-6s", "bench");
  for (const Field& f : kFields) std::printf("%16s", f.name);
  std::printf("\n");

  core::ChainOptions options;
  options.block_size = 5;
  options.strategy = core::ChainStrategy::kOptimalDp;
  const core::ChainEncoder encoder(options);

  for (const workloads::Workload& w :
       workloads::make_all(workloads::SizeConfig::small())) {
    const isa::Program program = isa::assemble(w.source);
    std::printf("%-6s", w.name.c_str());
    for (const Field& field : kFields) {
      long long base = 0, encoded = 0;
      for (unsigned line = field.lo; line <= field.hi; ++line) {
        const bits::BitSeq seq = bits::vertical_line(program.text, line);
        base += seq.transitions();
        encoded += encoder.encode(seq).stored.transitions();
      }
      if (base == 0) {
        std::printf("%15s%%", "-");
      } else {
        std::printf("%15.1f%%",
                    100.0 * static_cast<double>(base - encoded) / static_cast<double>(base));
      }
    }
    std::printf("\n");
  }

  // Absolute per-line profile for one workload, to show where activity lives.
  const isa::Program program =
      isa::assemble(workloads::make_mmul(workloads::SizeConfig::small()).source);
  std::printf("\nmmul text, transitions per bus line (base -> encoded):\n");
  for (unsigned line = 0; line < 32; ++line) {
    const bits::BitSeq seq = bits::vertical_line(program.text, line);
    const int base = seq.transitions();
    const int enc = encoder.encode(seq).stored.transitions();
    std::printf("  line %2u: %3d -> %3d %s\n", line, base, enc,
                std::string(static_cast<std::size_t>(base), '#').c_str());
  }
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("analysis_bitlines")
