// Regression guard for the profiler's disabled-path budget: a simulator
// fetch loop that carries the observe_fetch hook with no profiler installed
// must run at the speed of the bare loop. The strict <1% number is tracked
// by BM_ProfilerDisabled* in bench/micro_throughput; this test enforces a
// CI-safe envelope (min-of-N timing, generous margin) so a real regression —
// an accidental allocation, lock, or virtual call on the gate — fails fast
// everywhere, while scheduler noise does not.
#include <gtest/gtest.h>

#include <chrono>

#include "isa/assembler.h"
#include "profile/transition_profiler.h"
#include "sim/cpu.h"

namespace asimt::profile {
namespace {

const char kLoop[] = R"(
        li      $t0, 0
        li      $t1, 20000
loop:   addiu   $t0, $t0, 1
        xori    $t2, $t0, 0x3C3
        bne     $t0, $t1, loop
        halt
)";

template <typename Hook>
double min_run_seconds(const isa::Program& program, int repeats, Hook hook) {
  double best = 1e9;
  for (int r = 0; r < repeats; ++r) {
    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    const auto t0 = std::chrono::steady_clock::now();
    cpu.run(1'000'000, hook);
    const auto t1 = std::chrono::steady_clock::now();
    EXPECT_TRUE(cpu.state().halted);
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

TEST(ProfilerOverheadTest, DisabledGateStaysNearBareLoopSpeed) {
  const isa::Program program = isa::assemble(kLoop);
  set_current(nullptr);

  // Warm both paths once before timing.
  min_run_seconds(program, 1, [](std::uint32_t, std::uint32_t) {});
  min_run_seconds(program, 1, [](std::uint32_t pc, std::uint32_t word) {
    observe_fetch(pc, word);
  });

  const double bare =
      min_run_seconds(program, 5, [](std::uint32_t, std::uint32_t) {});
  const double gated =
      min_run_seconds(program, 5, [](std::uint32_t pc, std::uint32_t word) {
        observe_fetch(pc, word);
      });

  // Budget: <1% tracked by the benches; 15% here absorbs CI scheduling noise
  // while still catching anything structurally expensive on the gate.
  EXPECT_LT(gated, bare * 1.15 + 1e-4)
      << "disabled observe_fetch gate cost " << (gated / bare - 1.0) * 100.0
      << "% over the bare fetch loop";
}

TEST(ProfilerOverheadTest, EnabledProfilerStillCompletesQuickly) {
  // Not a perf assertion — just pins that full attribution is sane (no
  // quadratic behavior) by running the same loop with a profiler installed.
  const isa::Program program = isa::assemble(kLoop);
  const cfg::Cfg cfg = cfg::build_cfg(program);
  TransitionProfiler prof(cfg);
  set_current(&prof);
  const double enabled =
      min_run_seconds(program, 2, [](std::uint32_t pc, std::uint32_t word) {
        observe_fetch(pc, word);
      });
  set_current(nullptr);
  EXPECT_GT(prof.fetches(), 0u);
  EXPECT_LT(enabled, 5.0);
}

}  // namespace
}  // namespace asimt::profile
