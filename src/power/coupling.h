// Inter-wire coupling activity on the instruction bus.
//
// The paper minimizes SELF transitions (each line against its own previous
// value). In deep-submicron processes the coupling capacitance between
// ADJACENT lines is comparable to or larger than the line-to-ground
// capacitance, and its activity depends on how neighbours switch together:
//
//   neither switches                        -> 0
//   one switches, the other holds           -> 1   (coupling C charged once)
//   both switch in the same direction       -> 0   (voltage across C fixed)
//   both switch in opposite directions      -> 2   (Miller doubling)
//
// ASIMT picks each line's transform independently, so coupling activity is
// not directly optimized; the ext_coupling bench measures how much of the
// coupling reduction comes along for free.
#pragma once

#include <bit>
#include <cstdint>

namespace asimt::power {

// Counts weighted coupling events between the 31 adjacent line pairs of a
// 32-bit bus over a word stream.
class CouplingMonitor {
 public:
  void observe(std::uint32_t word) {
    if (!first_) {
      const std::uint32_t switched = prev_ ^ word;
      // For each adjacent pair: classify by (switched_i, switched_{i+1})
      // and, when both switched, by direction (equal new values = same
      // direction on a shared edge means the XOR of the new bits tells
      // opposite vs same: opposite-direction toggles end in different
      // values iff they started equal).
      const std::uint32_t lo = switched & (switched >> 1);  // both switched
      const std::uint32_t one = switched ^ (switched >> 1); // exactly one
      // Opposite directions: both switched and the lines END different
      // <=> ended different and both toggled <=> started different too is
      // same-direction; use end-state XOR.
      const std::uint32_t end_diff = word ^ (word >> 1);
      const std::uint32_t mask = 0x7FFFFFFFu;  // 31 pairs
      const std::uint32_t both = lo & mask;
      const std::uint32_t opposite = both & end_diff;
      const std::uint32_t same = both & ~end_diff;
      activity_ += std::popcount(one & mask);       // weight 1
      activity_ += 2 * std::popcount(opposite);     // weight 2
      (void)same;                                   // weight 0
    }
    prev_ = word;
    first_ = false;
    ++words_;
  }

  // Total weighted coupling events (units of C_coupling * V^2 charges).
  long long activity() const { return activity_; }
  std::uint64_t words_observed() const { return words_; }

  void reset() {
    activity_ = 0;
    words_ = 0;
    prev_ = 0;
    first_ = true;
  }

 private:
  long long activity_ = 0;
  std::uint64_t words_ = 0;
  std::uint32_t prev_ = 0;
  bool first_ = true;
};

// Combined bus energy: self activity (transitions) on C_self plus coupling
// activity on C_coupling, both at the same voltage swing.
struct CouplingBusParams {
  double self_capacitance_farads = 5e-12;
  double coupling_capacitance_farads = 5e-12;  // DSM: comparable to self
  double voltage = 1.8;
};

inline double coupled_energy_joules(long long self_transitions,
                                    long long coupling_activity,
                                    const CouplingBusParams& params) {
  const double v2 = params.voltage * params.voltage;
  return 0.5 * v2 *
         (params.self_capacitance_farads * static_cast<double>(self_transitions) +
          params.coupling_capacitance_farads * static_cast<double>(coupling_activity));
}

}  // namespace asimt::power
