#include "core/fetch_decoder.h"

#include <stdexcept>

namespace asimt::core {

FetchDecoder::FetchDecoder(TtConfig tt, std::vector<BbitEntry> bbit)
    : tt_(std::move(tt)) {
  if (tt_.block_size < 2 || tt_.block_size > 16) {
    throw std::invalid_argument("FetchDecoder: bad block size");
  }
  for (const BbitEntry& entry : bbit) {
    if (entry.tt_index >= tt_.entries.size() && !tt_.entries.empty()) {
      throw std::invalid_argument("FetchDecoder: BBIT points past TT");
    }
    bbit_.emplace(entry.pc, entry.tt_index);
  }
}

void FetchDecoder::enter_entry(std::size_t index, bool at_bb_entry) {
  if (index >= tt_.entries.size()) {
    throw std::logic_error("FetchDecoder: ran past the TT");
  }
  entry_index_ = index;
  pos_in_block_ = 0;
  // The chain-initial entry covers k instructions; every later entry adds
  // k-1 new instructions (its first bit is the one-bit overlap).
  entry_quota_ = at_bb_entry ? tt_.block_size : tt_.block_size - 1;
  const TtEntry& entry = tt_.entries[index];
  if (entry.end) {
    // CT counts the tail block's instructions including the overlap bit; at
    // a block switch the overlap instruction was already consumed by the
    // previous entry (at BB entry there is no previous entry).
    countdown_ = at_bb_entry ? entry.ct : entry.ct - 1;
  } else {
    countdown_ = -1;
  }
}

std::uint32_t FetchDecoder::decode_word(std::uint32_t bus_word) {
  const TtEntry& entry = tt_.entries[entry_index_];
  std::uint32_t word = 0;
  for (unsigned line = 0; line < kBusLines; ++line) {
    const int enc = static_cast<int>((bus_word >> line) & 1u);
    const int hist = static_cast<int>((history_ >> line) & 1u);
    word |= static_cast<std::uint32_t>(entry.transform(line).apply(enc, hist))
            << line;
  }
  return word;
}

std::uint32_t FetchDecoder::feed(std::uint32_t pc, std::uint32_t bus_word) {
  ++stats_.fetches;

  // BBIT lookup happens for every fetch address; a hit (re)enters encoded
  // mode at that block's first TT entry — this is how loop back edges resume
  // decoding at the header (paper §7.2).
  if (const auto hit = bbit_.find(pc); hit != bbit_.end()) {
    ++stats_.bbit_hits;
    active_ = true;
    enter_entry(hit->second, /*at_bb_entry=*/true);
    // The first instruction of a chain is stored plain; it seeds history.
    history_ = bus_word;
    ++stats_.decoded;
    if (countdown_ > 0 && --countdown_ == 0) active_ = false;
    ++pos_in_block_;
    return bus_word;
  }

  if (!active_) {
    ++stats_.raw;
    return bus_word;  // identity mode
  }

  const std::uint32_t decoded = decode_word(bus_word);
  ++stats_.decoded;
  ++pos_in_block_;
  if (countdown_ > 0 && --countdown_ == 0) {
    active_ = false;
    return decoded;
  }
  if (pos_in_block_ == entry_quota_) {
    // This fetch was the block's last instruction (the next block's overlap
    // bit): advance to the next TT entry and reload the history registers
    // from the RAW bus value (DESIGN.md §6 rule 3).
    enter_entry(entry_index_ + 1, /*at_bb_entry=*/false);
    history_ = bus_word;
  } else {
    history_ = decoded;
  }
  return decoded;
}

}  // namespace asimt::core
