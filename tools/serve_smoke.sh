#!/bin/sh
# End-to-end smoke for the serving stack (docs/SERVING.md): boot the daemon,
# wait for its readiness line, drive a seeded open-loop loadgen burst,
# validate the schema-v2 artifact, gate it with benchdiff --trajectory, then
# SIGTERM-drain and check the clean exit + unlinked socket.
# usage: serve_smoke.sh <asimt-binary> <json_check-binary> <benchdiff-binary>
set -u

asimt="$1"
json_check="$2"
benchdiff="$3"
tmp="${TMPDIR:-/tmp}/serve_smoke_$$"
mkdir -p "$tmp" || exit 1
sock="$tmp/daemon.sock"
server_pid=
trap 'test -n "$server_pid" && kill "$server_pid" 2>/dev/null; rm -rf "$tmp"' EXIT

fail() {
  echo "FAIL: $*"
  sed 's/^/  serve stderr: /' "$tmp/serve_err" 2>/dev/null
  exit 1
}

"$asimt" serve --socket "$sock" --cache-capacity 1024 --shards 8 \
  >"$tmp/serve_out" 2>"$tmp/serve_err" &
server_pid=$!

# The daemon prints (and flushes) a readiness line before accepting, so
# wrappers wait for it instead of polling the socket path.
tries=0
until grep -q "listening on" "$tmp/serve_out" 2>/dev/null; do
  kill -0 "$server_pid" 2>/dev/null || fail "daemon died before readiness"
  tries=$((tries + 1))
  [ "$tries" -gt 100 ] && fail "daemon never became ready"
  sleep 0.1
done

# A seeded open-loop burst: short, but enough traffic to warm the cache.
"$asimt" loadgen --socket "$sock" --conns 2 --rate 500 --seconds 1 \
  --seed 42 --out "$tmp/BENCH_serve_loadgen.json" >"$tmp/loadgen_out" 2>&1 \
  || fail "loadgen run failed: $(cat "$tmp/loadgen_out")"
grep -q "p99" "$tmp/loadgen_out" || fail "loadgen summary missing percentiles"

# The artifact must be valid JSON in the schema-v2 shape benchdiff reads...
"$json_check" "$tmp/BENCH_serve_loadgen.json" || fail "artifact is not valid JSON"
grep -q '"schema_version": 2' "$tmp/BENCH_serve_loadgen.json" \
  || fail "artifact is not schema v2"
grep -q '"req_time_ns"' "$tmp/BENCH_serve_loadgen.json" \
  || fail "artifact lacks the throughput gate row"
grep -q '"git_sha"' "$tmp/BENCH_serve_loadgen.json" \
  || fail "artifact lacks the provenance manifest"

# ...and the trajectory gate must accept it (the first --append establishes
# the baseline the CI lane compares later runs against).
"$benchdiff" --trajectory "$tmp/history.jsonl" \
  "$tmp/BENCH_serve_loadgen.json" --append >/dev/null \
  || fail "benchdiff rejected the baseline artifact"
[ "$(wc -l <"$tmp/history.jsonl")" -eq 1 ] || fail "baseline not appended"

# SIGTERM: graceful drain, summary line, exit 0, socket unlinked.
kill -TERM "$server_pid"
wait "$server_pid"
server_rc=$?
server_pid=
[ "$server_rc" -eq 0 ] || fail "daemon exited $server_rc after SIGTERM"
grep -q "drained:" "$tmp/serve_out" || fail "no drain summary on stdout"
grep -q "hits" "$tmp/serve_out" || fail "no cache stats in drain summary"
[ ! -e "$sock" ] || fail "socket file survived the drain"

echo "serve smoke OK"
