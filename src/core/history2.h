// Two-bit-history transformations — the extension direction §5.1 leaves
// open ("while transformations with various history lengths can be
// considered, in this paper we concentrate ... on one bit history").
//
// With h = 2 the restoring function is x_n = τ(x̃_n, x_{n-1}, x_{n-2}), one
// of the 2^(2^3) = 256 three-input Boolean functions. The first two bits of
// a block are stored plain. The ext_history2 bench quantifies how much the
// extra history buys over the paper's h = 1 codes (and what it costs: 8-bit
// control fields instead of 3-bit, plus an extra history flip-flop per bus
// line).
#pragma once

#include <cstdint>
#include <vector>

namespace asimt::core {

// A three-input Boolean function encoded as an 8-bit truth table:
// bit (x + 2*y1 + 4*y2) holds τ(x, y1, y2) where y1 = x_{n-1}, y2 = x_{n-2}.
class Transform2 {
 public:
  constexpr Transform2() : tt_(0b10101010) {}  // identity in x
  constexpr explicit Transform2(unsigned truth_table)
      : tt_(truth_table & 0xFFu) {}

  constexpr int apply(int x, int y1, int y2) const {
    return static_cast<int>(
        (tt_ >> ((x & 1) + 2 * (y1 & 1) + 4 * (y2 & 1))) & 1u);
  }

  constexpr unsigned truth_table() const { return tt_; }
  constexpr bool operator==(const Transform2&) const = default;

 private:
  unsigned tt_;
};

// Decodes a chain-initial h=2 block: x_0 = x̃_0, x_1 = x̃_1, then
// x_i = τ(x̃_i, x_{i-1}, x_{i-2}).
std::uint32_t decode_block_h2(Transform2 tau, std::uint32_t code, int k);

// Per-word optimum over all 256 functions (h=2 analogue of Fig. 3's RTN).
struct H2CodeStats {
  int k = 0;
  long long ttn = 0;
  long long rtn = 0;
  double improvement_percent() const {
    return ttn == 0 ? 0.0
                    : 100.0 * static_cast<double>(ttn - rtn) /
                          static_cast<double>(ttn);
  }
};

// Exhaustive h=2 table statistics for one block size (k in [2, 12]).
H2CodeStats solve_h2_stats(int k);

// Smallest number of h=2 transforms achieving the unrestricted h=2 optimum
// for every block size in [2, max_k] — greedy set-cover style upper bound
// (exact subset search over 2^256 is impossible; this mirrors how a hardware
// designer would size the control field).
int greedy_h2_subset_size(int max_k);

}  // namespace asimt::core
