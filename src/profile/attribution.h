// Analytic per-block transition attribution.
//
// cfg::dynamic_transitions collapses a profile and a text image into one
// total; this decomposes the same sum per basic block, attributing each
// block's intra-block cost to the block itself and each dynamic edge's
// boundary cost to the *destination* block's first word — exactly the
// attribution a stream-based TransitionProfiler accumulates (the transition
// between two consecutive fetches lands on the pc being fetched). For a
// halted run the two agree block-for-block, and the sum over blocks equals
// cfg::dynamic_transitions(cfg, profile, image) by construction, which is
// what lets experiments::run_workload record residual-hotspot tables without
// a second simulation.
#pragma once

#include <span>
#include <vector>

#include "cfg/cfg.h"
#include "core/program_encoder.h"
#include "profile/transition_profiler.h"

namespace asimt::profile {

// `image` must cover cfg.text's range (the encoded image from
// core::SelectionResult::apply_to_text, or cfg.text itself for the
// baseline). `encodings` flags blocks covered by TT entries; pass {} when
// attribution runs on the unencoded baseline.
std::vector<BlockCost> attribute_dynamic(
    const cfg::Cfg& cfg, const cfg::Profile& profile,
    std::span<const std::uint32_t> image,
    std::span<const core::BlockEncoding> encodings = {});

}  // namespace asimt::profile
