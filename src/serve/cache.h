// Sharded, content-addressed result cache for the encoding daemon.
//
// The paper's transformations are computed per application image; in a
// deployment the expensive step — extracting the 32 vertical bit lines and
// solving the per-line τ-chain DP — is identical for every client that
// submits the same hot loop. The daemon therefore caches the *reply payload*
// keyed by content: a 64-bit FNV-1a hash over the packed bit-line words
// plus the encoding parameters (k, transform set, strategy, operation).
// Identical requests hit the same entry regardless of which client, socket,
// or worker produced it, and a hit returns the exact bytes the cold encode
// produced — cache state can never change reply bytes (the byte-identity
// contract of docs/SERVING.md).
//
// Concurrency: the cache is split into 2^n shards selected by the top hash
// bits; each shard is an independent mutex + LRU list + open-addressed map,
// so unrelated requests never contend on one lock. Eviction is per shard,
// LRU by lookup/insert recency, capped at capacity()/shards entries (at
// least one per shard).
//
// Observability: lookups/hits/misses/evictions/insertions are per-shard
// counters incremented inside the shard's critical section, so stats()
// (which sums them under each shard lock) returns a snapshot in which
// `hits + misses == lookups` holds exactly — the `stats` protocol op
// promises that invariant even under concurrent load. The counters are
// mirrored into the telemetry registry as serve.cache.* counters when
// telemetry is enabled, which puts them on every --metrics snapshot and
// Prometheus scrape.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace asimt::serve {

// Content-addressed cache key. `content_hash` is the digest of the request
// payload (bit lines + parameters, see hash_* in service.h); the remaining
// fields are kept alongside it so an astronomically unlikely hash collision
// degrades to a miss instead of a wrong answer.
struct CacheKey {
  std::uint64_t content_hash = 0;
  int k = 0;
  std::uint8_t transform_set = 0;
  std::uint8_t strategy = 0;
  std::uint8_t op = 0;

  bool operator==(const CacheKey&) const = default;
};

struct CacheStats {
  std::uint64_t lookups = 0;  // == hits + misses in every snapshot
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::uint64_t entries = 0;  // current resident entries across all shards
};

class ShardedCache {
 public:
  // `shards` is rounded up to a power of two in [1, 256]; `capacity` is the
  // total entry budget across shards (>= shards; each shard holds at least
  // one entry).
  explicit ShardedCache(std::size_t capacity = 4096, unsigned shards = 16);

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  // The cached payload for `key`, or nullptr on miss. A hit refreshes the
  // entry's LRU position. The returned payload is immutable and outlives
  // any later eviction of the entry.
  std::shared_ptr<const std::string> lookup(const CacheKey& key);

  // Inserts (or refreshes) `key` -> `payload`, evicting the shard's least
  // recently used entries while it is over budget. Returns the resident
  // payload: when another worker raced the same key in first, *its* payload
  // wins and is returned, so every caller replies with identical bytes.
  std::shared_ptr<const std::string> insert(const CacheKey& key,
                                            std::string payload);

  CacheStats stats() const;

  std::size_t capacity() const { return capacity_; }
  unsigned shard_count() const { return static_cast<unsigned>(shards_.size()); }

  // Which shard `key` lands in — exposed for the distribution tests.
  unsigned shard_of(const CacheKey& key) const;

 private:
  struct KeyHash {
    std::size_t operator()(const CacheKey& key) const {
      // content_hash is already a 64-bit digest; fold the parameters in so
      // keys differing only in (k, set, strategy, op) spread too.
      std::uint64_t h = key.content_hash;
      h ^= (static_cast<std::uint64_t>(static_cast<unsigned>(key.k)) << 32) ^
           (static_cast<std::uint64_t>(key.transform_set) << 16) ^
           (static_cast<std::uint64_t>(key.strategy) << 8) ^ key.op;
      h *= 0x9E3779B97F4A7C15ull;  // avalanche the folded bits
      h ^= h >> 29;
      return static_cast<std::size_t>(h);
    }
  };

  struct Entry {
    CacheKey key;
    std::shared_ptr<const std::string> payload;
  };

  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used. The map owns iterators into the list.
    std::list<Entry> lru;
    std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> index;
    // Counters live under `mu` so each shard's lookups == hits + misses at
    // every instant, and a stats() sum over shards inherits the invariant.
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t insertions = 0;
  };

  Shard& shard_for(const CacheKey& key) {
    return *shards_[shard_of(key)];
  }

  std::size_t capacity_;
  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace asimt::serve
