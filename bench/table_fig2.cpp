// E1 — regenerates the paper's Figure 2: the optimal power-efficient
// transformation table for three-bit blocks.
#include <cstdio>

#include "bitstream/bitseq.h"
#include "core/block_code.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt;
  std::printf("Figure 2: power efficient transformations for three bit blocks\n");
  std::printf("%-6s %-6s %-5s %-4s %-4s\n", "X", "X~", "tau", "Tx", "Tx~");
  const core::BlockCode code = core::solve_block_code(3);
  long long ttn = 0, rtn = 0;
  for (const core::CodeAssignment& e : code.entries) {
    std::printf("%-6s %-6s %-5s %-4d %-4d\n",
                bits::BitSeq::from_word(e.word, 3).to_figure_string().c_str(),
                bits::BitSeq::from_word(e.code, 3).to_figure_string().c_str(),
                e.tau.name().c_str(), e.word_transitions, e.code_transitions);
    ttn += e.word_transitions;
    rtn += e.code_transitions;
  }
  std::printf("\nTTN=%lld RTN=%lld reduction=%.1f%%  (paper: 8 -> 2, 75%%)\n",
              ttn, rtn, 100.0 * static_cast<double>(ttn - rtn) / static_cast<double>(ttn));
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("table_fig2")
