// The registered microbenchmark suite: tooling throughput (encoder, decoder
// model, simulator, solver) plus the telemetry and profiler overhead guards
// (the *Disabled* benches verify the off path costs ~nothing). These are
// engineering numbers for the library itself, not paper results.
//
// Built as an OBJECT library linked into both the standalone
// `micro_throughput` binary and `asimt bench`, so the registrar statics are
// never dropped and both front ends run the identical suite. Bench names
// keep the historical BM_* spelling so trajectory rows line up with the v1
// BENCH_micro_throughput.json artifacts.
#include <random>

#include "bitstream/reference.h"
#include "cfg/cfg.h"
#include "core/block_code.h"
#include "core/chain_encoder.h"
#include "core/fetch_decoder.h"
#include "core/program_encoder.h"
#include "core/reference_encoder.h"
#include "isa/assembler.h"
#include "obs/bench.h"
#include "profile/transition_profiler.h"
#include "sim/cpu.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace {

using namespace asimt;

bits::BitSeq random_seq(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  bits::BitSeq seq(n);
  for (std::size_t i = 0; i < n; ++i) seq.set(i, static_cast<int>(rng() & 1));
  return seq;
}

const char* kLoopProgram = R"(
        li      $t0, 0
        li      $t1, 10000
loop:   addiu   $t0, $t0, 1
        lw      $t2, 0($a0)
        addu    $t3, $t3, $t2
        bne     $t0, $t1, loop
        halt
)";

void BM_ChainEncodeGreedy(obs::BenchContext& ctx, int n) {
  const bits::BitSeq seq = random_seq(static_cast<std::size_t>(n), 1);
  core::ChainOptions opt;
  opt.block_size = 5;
  const core::ChainEncoder encoder(opt);
  ctx.set_items_per_iter(static_cast<std::uint64_t>(n));
  ctx.measure([&] { obs::do_not_optimize(encoder.encode(seq)); });
}
ASIMT_BENCH_ARG(BM_ChainEncodeGreedy, 100);
ASIMT_BENCH_ARG(BM_ChainEncodeGreedy, 1000);

void BM_ChainEncodeDp(obs::BenchContext& ctx, int n) {
  const bits::BitSeq seq = random_seq(static_cast<std::size_t>(n), 2);
  core::ChainOptions opt;
  opt.block_size = 5;
  opt.strategy = core::ChainStrategy::kOptimalDp;
  const core::ChainEncoder encoder(opt);
  ctx.set_items_per_iter(static_cast<std::uint64_t>(n));
  ctx.measure([&] { obs::do_not_optimize(encoder.encode(seq)); });
}
ASIMT_BENCH_ARG(BM_ChainEncodeDp, 100);
ASIMT_BENCH_ARG(BM_ChainEncodeDp, 1000);

void BM_EncodeBasicBlock(obs::BenchContext& ctx, int n) {
  std::mt19937 rng(3);
  std::vector<std::uint32_t> words(static_cast<std::size_t>(n));
  for (auto& w : words) w = rng();
  core::ChainOptions opt;
  opt.block_size = 5;
  ctx.set_items_per_iter(static_cast<std::uint64_t>(n));
  ctx.measure(
      [&] { obs::do_not_optimize(core::encode_basic_block(words, 0x1000, opt)); });
}
ASIMT_BENCH_ARG(BM_EncodeBasicBlock, 8);
ASIMT_BENCH_ARG(BM_EncodeBasicBlock, 64);

void BM_FetchDecoderFeed(obs::BenchContext& ctx) {
  std::mt19937 rng(4);
  std::vector<std::uint32_t> words(64);
  for (auto& w : words) w = rng();
  core::ChainOptions opt;
  opt.block_size = 5;
  const core::BlockEncoding enc = core::encode_basic_block(words, 0x1000, opt);
  core::TtConfig tt;
  tt.block_size = 5;
  tt.entries = enc.tt_entries;
  core::FetchDecoder decoder(tt, {core::BbitEntry{0x1000, 0}});
  ctx.set_items_per_iter(words.size());
  ctx.measure([&] {
    for (std::size_t i = 0; i < words.size(); ++i) {
      obs::do_not_optimize(decoder.feed(
          0x1000 + 4 * static_cast<std::uint32_t>(i), enc.encoded_words[i]));
    }
  });
}
ASIMT_BENCH(BM_FetchDecoderFeed);

void BM_SolveBlockCode(obs::BenchContext& ctx, int k) {
  ctx.measure([&] { obs::do_not_optimize(core::solve_block_code(k)); });
}
ASIMT_BENCH_ARG(BM_SolveBlockCode, 5);
ASIMT_BENCH_ARG(BM_SolveBlockCode, 7);

void BM_SimulatorLoop(obs::BenchContext& ctx) {
  const isa::Program program = isa::assemble(kLoopProgram);
  ctx.set_items_per_iter(40003);
  ctx.measure([&] {
    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    cpu.state().r[isa::kA0] = 0x10000;
    const std::uint64_t steps = cpu.run(1'000'000);
    obs::do_not_optimize(steps);
    ctx.set_counter("instructions", static_cast<double>(steps));
  });
}
ASIMT_BENCH(BM_SimulatorLoop);

// --- bit-plane kernel benches ----------------------------------------------
// The packed word-parallel kernels next to their scalar-oracle counterparts
// (bitstream/reference.h). The *Scalar* rows are the historical byte-per-bit
// cost — they exist so the trajectory artifact shows the kernel gap directly
// (docs/BENCHMARKING.md, "proving a kernel rewrite").

void BM_BitplaneTransitions(obs::BenchContext& ctx, int n) {
  const bits::BitSeq seq = random_seq(static_cast<std::size_t>(n), 11);
  ctx.set_items_per_iter(static_cast<std::uint64_t>(n));
  ctx.measure([&] { obs::do_not_optimize(seq.transitions()); });
}
ASIMT_BENCH_ARG(BM_BitplaneTransitions, 4096);

void BM_BitplaneScalarTransitions(obs::BenchContext& ctx, int n) {
  const bits::reference::BitSeq seq =
      bits::reference::from_packed(random_seq(static_cast<std::size_t>(n), 11));
  ctx.set_items_per_iter(static_cast<std::uint64_t>(n));
  ctx.measure([&] { obs::do_not_optimize(seq.transitions()); });
}
ASIMT_BENCH_ARG(BM_BitplaneScalarTransitions, 4096);

void BM_BitplaneVerticalLines(obs::BenchContext& ctx, int n) {
  std::mt19937 rng(12);
  std::vector<std::uint32_t> words(static_cast<std::size_t>(n));
  for (auto& w : words) w = rng();
  ctx.set_items_per_iter(static_cast<std::uint64_t>(n));
  ctx.measure([&] { obs::do_not_optimize(bits::vertical_lines(words)); });
}
ASIMT_BENCH_ARG(BM_BitplaneVerticalLines, 1024);

void BM_BitplaneDecodeBasicBlock(obs::BenchContext& ctx, int n) {
  std::mt19937 rng(13);
  std::vector<std::uint32_t> words(static_cast<std::size_t>(n));
  for (auto& w : words) w = rng();
  core::ChainOptions opt;
  opt.block_size = 5;
  const core::BlockEncoding enc = core::encode_basic_block(words, 0x1000, opt);
  ctx.set_items_per_iter(static_cast<std::uint64_t>(n));
  ctx.measure([&] {
    obs::do_not_optimize(
        core::decode_basic_block(enc.encoded_words, enc.tt_entries, 5));
  });
}
ASIMT_BENCH_ARG(BM_BitplaneDecodeBasicBlock, 256);

void BM_BitplaneScalarChainEncode(obs::BenchContext& ctx, int n) {
  const bits::BitSeq seq = random_seq(static_cast<std::size_t>(n), 1);
  core::ChainOptions opt;
  opt.block_size = 5;
  ctx.set_items_per_iter(static_cast<std::uint64_t>(n));
  ctx.measure(
      [&] { obs::do_not_optimize(core::reference::encode_chain(seq, opt)); });
}
ASIMT_BENCH_ARG(BM_BitplaneScalarChainEncode, 1000);

// --- profiler overhead guard ----------------------------------------------
// The transition profiler's budget mirrors telemetry's: a fetch loop that
// carries the observe_fetch hook but has no profiler installed must stay
// within 1% of the bare loop. The *Enabled* variants show the real cost of
// full attribution for comparison.

void BM_ProfilerDisabledObserveFetch(obs::BenchContext& ctx) {
  profile::set_current(nullptr);
  std::uint32_t pc = 0x400000;
  std::uint32_t word = 0x12345678;
  ctx.measure([&] {
    profile::observe_fetch(pc, word);
    pc += 4;
    word = word * 1664525u + 1013904223u;
  });
}
ASIMT_BENCH(BM_ProfilerDisabledObserveFetch);

void BM_ProfilerEnabledObserveFetch(obs::BenchContext& ctx) {
  profile::TransitionProfiler prof(0x400000, 4096);
  profile::set_current(&prof);
  std::uint32_t pc = 0x400000;
  std::uint32_t word = 0x12345678;
  ctx.measure([&] {
    profile::observe_fetch(pc, word);
    pc = 0x400000 + ((pc - 0x400000 + 4) & 0x3FFF);
    word = word * 1664525u + 1013904223u;
  });
  profile::set_current(nullptr);
}
ASIMT_BENCH(BM_ProfilerEnabledObserveFetch);

void BM_ProfilerDisabledFetchLoop(obs::BenchContext& ctx) {
  const isa::Program program = isa::assemble(kLoopProgram);
  profile::set_current(nullptr);
  ctx.set_items_per_iter(40003);
  ctx.measure([&] {
    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    cpu.state().r[isa::kA0] = 0x10000;
    const std::uint64_t steps =
        cpu.run(1'000'000, [](std::uint32_t pc, std::uint32_t word) {
          profile::observe_fetch(pc, word);
        });
    obs::do_not_optimize(steps);
  });
}
ASIMT_BENCH(BM_ProfilerDisabledFetchLoop);

void BM_ProfilerEnabledFetchLoop(obs::BenchContext& ctx) {
  const isa::Program program = isa::assemble(kLoopProgram);
  const cfg::Cfg cfg = cfg::build_cfg(program);
  profile::TransitionProfiler prof(cfg);
  profile::set_current(&prof);
  ctx.set_items_per_iter(40003);
  ctx.measure([&] {
    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    cpu.state().r[isa::kA0] = 0x10000;
    const std::uint64_t steps =
        cpu.run(1'000'000, [](std::uint32_t pc, std::uint32_t word) {
          profile::observe_fetch(pc, word);
        });
    obs::do_not_optimize(steps);
  });
  profile::set_current(nullptr);
}
ASIMT_BENCH(BM_ProfilerEnabledFetchLoop);

// --- telemetry overhead guard ---------------------------------------------
// The observability layer must be free when off: these measure the exact
// instrumented operations with telemetry disabled vs. enabled. The encoder
// benchmarks above are the end-to-end check (they run with telemetry off
// and their numbers gate regressions in the hot path).

void BM_TelemetryDisabledCount(obs::BenchContext& ctx) {
  telemetry::set_enabled(false);
  ctx.measure([&] { telemetry::count("bench.disabled.counter"); });
}
ASIMT_BENCH(BM_TelemetryDisabledCount);

void BM_TelemetryEnabledCount(obs::BenchContext& ctx) {
  telemetry::set_enabled(true);
  ctx.measure([&] { telemetry::count("bench.enabled.counter"); });
  telemetry::set_enabled(false);
}
ASIMT_BENCH(BM_TelemetryEnabledCount);

void BM_TelemetryDisabledScopedTimer(obs::BenchContext& ctx) {
  telemetry::set_enabled(false);
  ctx.measure([&] { telemetry::ScopedTimer timer("bench.disabled.us"); });
}
ASIMT_BENCH(BM_TelemetryDisabledScopedTimer);

void BM_ChainEncodeGreedyTelemetryOn(obs::BenchContext& ctx) {
  telemetry::set_enabled(true);
  const bits::BitSeq seq = random_seq(1000, 1);
  core::ChainOptions opt;
  opt.block_size = 5;
  const core::ChainEncoder encoder(opt);
  ctx.set_items_per_iter(1000);
  ctx.measure([&] { obs::do_not_optimize(encoder.encode(seq)); });
  telemetry::set_enabled(false);
}
ASIMT_BENCH(BM_ChainEncodeGreedyTelemetryOn);

}  // namespace
