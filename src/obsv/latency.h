// Log-bucketed (HDR-style) latency histograms for the serving path.
//
// The telemetry registry's Histogram uses pure power-of-two buckets — fine
// for orders of magnitude, far too coarse for latency percentiles (one
// bucket spans 2x). LogHistogram refines each power-of-two octave into 16
// linear sub-buckets, bounding the relative quantization error at 1/16
// (≈6%) across the full uint64 nanosecond range with a fixed 976-counter
// footprint and a branch-free bucket index (one bit-scan, one shift).
//
// Recording is one relaxed atomic increment plus two relaxed updates — safe
// from any number of threads. A Snapshot derives `count` as the sum of the
// bucket counters it actually read, so `count == Σ buckets` holds in every
// snapshot *by construction* (the consistency the `metrics` op promises),
// even while writers race the reader.
//
// LatencyMatrix is the op × cache-outcome grid the serve layer records
// into; the `metrics` protocol op and the Prometheus exposition both render
// from its snapshots (docs/OBSERVABILITY.md has the wire formats).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "obsv/span.h"

namespace asimt::obsv {

class LogHistogram {
 public:
  static constexpr unsigned kSubBits = 4;           // 16 sub-buckets per octave
  static constexpr unsigned kSub = 1u << kSubBits;  // 16
  // Values < 16 are their own bucket (0..15); larger values index by
  // (octave, sub-bucket) with octaves 4..63 -> indices 16..975.
  static constexpr unsigned kBucketCount = (65 - kSubBits) * kSub;  // 976

  static unsigned bucket_of(std::uint64_t v);
  // Inclusive upper bound of bucket `index` (the largest value mapping to
  // it); lower bound is bucket_upper_bound(index-1)+1.
  static std::uint64_t bucket_upper_bound(unsigned index);

  void observe(std::uint64_t v);
  void reset();

  struct Snapshot {
    std::uint64_t count = 0;   // == Σ buckets, by construction
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    // (bucket index, count), ascending, non-empty buckets only.
    std::vector<std::pair<unsigned, std::uint64_t>> buckets;

    // Quantile estimate by linear interpolation inside the covering bucket;
    // q in [0, 1]. Returns 0 for an empty snapshot.
    double quantile(double q) const;
  };
  Snapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

// One LogHistogram per (op, cache outcome) cell, always allocated (the grid
// is small and fixed) so recording never takes a lock or an allocation.
class LatencyMatrix {
 public:
  void observe(Op op, Outcome outcome, std::uint64_t ns) {
    cell(op, outcome).observe(ns);
  }

  LogHistogram& cell(Op op, Outcome outcome) {
    return cells_[static_cast<unsigned>(op) * kOutcomeCount +
                  static_cast<unsigned>(outcome)];
  }
  const LogHistogram& cell(Op op, Outcome outcome) const {
    return cells_[static_cast<unsigned>(op) * kOutcomeCount +
                  static_cast<unsigned>(outcome)];
  }

  void reset();

 private:
  std::array<LogHistogram, kOpCount * kOutcomeCount> cells_;
};

}  // namespace asimt::obsv
