// Extension bench — performance neutrality (§5/§9's "no impact to the
// critical fetch stage").
//
// The decode transformations are one two-input gate plus an 8:1 mux per bus
// line, selected by latched TT fields: combinational within the fetch
// stage, i.e. decode_latency = 0. This bench reports pipeline CPI for every
// workload and what CPI would look like IF an implementation needed extra
// fetch cycles — quantifying how much slack the single-gate design buys.
#include <cstdio>

#include "isa/assembler.h"
#include "sim/cpu.h"
#include "sim/timing.h"
#include "workloads/workload.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt;
  std::printf("pipeline CPI (5-stage, forwarding, 2-cycle taken-branch flush)\n");
  std::printf("%-6s %10s %10s %12s %12s %12s\n", "bench", "CPI", "flushes",
              "ld-use", "CPI(+1cyc)", "CPI(+2cyc)");

  for (const workloads::Workload& w :
       workloads::make_all(workloads::SizeConfig::small())) {
    const isa::Program program = isa::assemble(w.source);
    double cpi[3] = {0, 0, 0};
    std::uint64_t flushes = 0, stalls = 0;
    for (int latency = 0; latency <= 2; ++latency) {
      sim::Memory memory;
      memory.load_program(program);
      sim::Cpu cpu(memory);
      cpu.state().pc = program.entry();
      w.init(memory, cpu.state());
      sim::TimingConfig config;
      config.decode_latency = latency;
      sim::TimingModel timing(config);
      cpu.run(50'000'000, [&](std::uint32_t pc, std::uint32_t word) {
        timing.on_fetch(pc, word);
      });
      cpi[latency] = timing.cpi();
      flushes = timing.taken_control_flushes();
      stalls = timing.load_use_stalls();
    }
    std::printf("%-6s %10.3f %10llu %12llu %12.3f %12.3f\n", w.name.c_str(),
                cpi[0], static_cast<unsigned long long>(flushes),
                static_cast<unsigned long long>(stalls), cpi[1], cpi[2]);
  }
  std::printf(
      "\nwith the paper's combinational decode (latency 0) the encoded and\n"
      "plain designs run at identical CPI; each hypothetical extra fetch\n"
      "cycle would cost a full 1.0 CPI — the single-gate restriction is\n"
      "what makes the technique performance-free.\n");
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("ext_timing")
