#include "bitstream/bitseq.h"

#include <algorithm>
#include <stdexcept>

namespace asimt::bits {

namespace {

constexpr std::size_t kWordBits = BitSeq::kWordBits;

constexpr std::uint64_t low_mask(std::size_t n) {
  return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

}  // namespace

BitSeq::BitSeq(std::size_t n, int fill)
    : words_((n + kWordBits - 1) / kWordBits,
             (fill & 1) ? ~std::uint64_t{0} : 0),
      size_(n) {
  trim_tail();
}

BitSeq BitSeq::from_stream_string(std::string_view s) {
  BitSeq seq;
  seq.size_ = s.size();
  seq.words_.assign((s.size() + kWordBits - 1) / kWordBits, 0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c != '0' && c != '1') {
      throw std::invalid_argument("BitSeq: expected only '0'/'1' characters");
    }
    seq.words_[i / kWordBits] |= static_cast<std::uint64_t>(c - '0')
                                 << (i % kWordBits);
  }
  return seq;
}

BitSeq BitSeq::from_figure_string(std::string_view s) {
  BitSeq seq;
  seq.size_ = s.size();
  seq.words_.assign((s.size() + kWordBits - 1) / kWordBits, 0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[s.size() - 1 - i];  // rightmost character is earliest
    if (c != '0' && c != '1') {
      throw std::invalid_argument("BitSeq: expected only '0'/'1' characters");
    }
    seq.words_[i / kWordBits] |= static_cast<std::uint64_t>(c - '0')
                                 << (i % kWordBits);
  }
  return seq;
}

BitSeq BitSeq::from_word(std::uint64_t word, std::size_t n) {
  if (n > 64) throw std::invalid_argument("BitSeq::from_word: n > 64");
  BitSeq seq;
  seq.size_ = n;
  if (n != 0) seq.words_.push_back(word & low_mask(n));
  return seq;
}

BitSeq BitSeq::from_packed_words(std::vector<std::uint64_t> words,
                                 std::size_t n) {
  if (words.size() != (n + kWordBits - 1) / kWordBits) {
    throw std::invalid_argument(
        "BitSeq::from_packed_words: word count != ceil(n/64)");
  }
  BitSeq seq;
  seq.words_ = std::move(words);
  seq.size_ = n;
  seq.trim_tail();
  return seq;
}

int BitSeq::transitions_in(std::size_t first, std::size_t last) const {
  if (last <= first) return 0;
  if (last >= size_) {
    throw std::out_of_range("BitSeq::transitions_in: window past end");
  }
  // The "difference stream" d_i = bit_i XOR bit_{i+1} has one bit per
  // adjacent pair; its word j is w[j] ^ (w[j] >> 1 with the seam bit of
  // w[j+1] shifted in). Counting pairs i in [first, last-1] is a masked
  // popcount over d — 64 pairs per operation instead of one.
  const std::size_t lo = first;       // first pair index
  const std::size_t hi = last - 1;    // last pair index (inclusive)
  int count = 0;
  for (std::size_t j = lo / kWordBits; j <= hi / kWordBits; ++j) {
    const std::uint64_t next = j + 1 < words_.size() ? words_[j + 1] : 0;
    const std::uint64_t d =
        words_[j] ^ ((words_[j] >> 1) | (next << (kWordBits - 1)));
    std::uint64_t mask = ~std::uint64_t{0};
    if (j == lo / kWordBits) mask &= ~low_mask(lo % kWordBits);
    if (j == hi / kWordBits) {
      const std::size_t keep = hi % kWordBits + 1;
      mask &= low_mask(keep);
    }
    count += std::popcount(d & mask);
  }
  return count;
}

BitSeq BitSeq::slice(std::size_t first, std::size_t len) const {
  if (first + len > size_) {
    throw std::out_of_range("BitSeq::slice: window past end");
  }
  BitSeq out;
  out.size_ = len;
  out.words_.assign((len + kWordBits - 1) / kWordBits, 0);
  const std::size_t w = first / kWordBits;
  const std::size_t off = first % kWordBits;
  for (std::size_t j = 0; j < out.words_.size(); ++j) {
    std::uint64_t v = words_[w + j] >> off;
    if (off != 0 && w + j + 1 < words_.size()) {
      v |= words_[w + j + 1] << (kWordBits - off);
    }
    out.words_[j] = v;
  }
  out.trim_tail();
  return out;
}

std::uint64_t BitSeq::window(std::size_t first, std::size_t len) const {
  if (len > 64) throw std::invalid_argument("BitSeq::window: len > 64");
  if (first + len > size_) {
    throw std::out_of_range("BitSeq::window: window past end");
  }
  if (len == 0) return 0;
  const std::size_t w = first / kWordBits;
  const std::size_t off = first % kWordBits;
  std::uint64_t v = words_[w] >> off;
  if (off != 0 && w + 1 < words_.size()) {
    v |= words_[w + 1] << (kWordBits - off);
  }
  return v & low_mask(len);
}

void BitSeq::set_window(std::size_t first, std::size_t len,
                        std::uint64_t value) {
  if (len > 64) throw std::invalid_argument("BitSeq::set_window: len > 64");
  if (first + len > size_) {
    throw std::out_of_range("BitSeq::set_window: window past end");
  }
  if (len == 0) return;
  value &= low_mask(len);
  const std::size_t w = first / kWordBits;
  const std::size_t off = first % kWordBits;
  const std::size_t in_first = std::min(len, kWordBits - off);
  const std::uint64_t mask0 = low_mask(in_first) << off;
  words_[w] = (words_[w] & ~mask0) | ((value << off) & mask0);
  if (in_first < len) {
    const std::uint64_t mask1 = low_mask(len - in_first);
    words_[w + 1] = (words_[w + 1] & ~mask1) | (value >> in_first);
  }
}

std::string BitSeq::to_stream_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    s.push_back(static_cast<char>('0' + (*this)[i]));
  }
  return s;
}

std::string BitSeq::to_figure_string() const {
  std::string s = to_stream_string();
  std::reverse(s.begin(), s.end());
  return s;
}

int word_transitions(std::uint64_t word, int k) {
  if (k <= 1) return 0;
  // XOR of the sequence with itself shifted by one position marks every
  // adjacent differing pair.
  const std::uint64_t mask = (k >= 64) ? ~0ULL : ((1ULL << (k - 1)) - 1);
  return std::popcount((word ^ (word >> 1)) & mask);
}

BitSeq vertical_line(std::span<const std::uint32_t> words, unsigned line) {
  BitSeq seq(words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    if ((words[i] >> line) & 1u) seq.set(i, 1);
  }
  return seq;
}

std::vector<BitSeq> vertical_lines(std::span<const std::uint32_t> words) {
  const std::size_t nwords = (words.size() + kWordBits - 1) / kWordBits;
  std::vector<std::vector<std::uint64_t>> planes(
      32, std::vector<std::uint64_t>(nwords, 0));
  // 32 fetch cycles at a time: the 32x32 matrix whose row i is words[c+i]
  // transposes into 32 rows of 32 cycles each, which land in the low or high
  // half of bit-plane word c/64.
  std::uint32_t m[32];
  for (std::size_t c = 0; c < words.size(); c += 32) {
    const std::size_t n = std::min<std::size_t>(32, words.size() - c);
    for (std::size_t i = 0; i < n; ++i) m[i] = words[c + i];
    for (std::size_t i = n; i < 32; ++i) m[i] = 0;
    transpose32(m);
    const std::size_t w = c / kWordBits;
    const unsigned shift = (c % kWordBits) ? 32 : 0;
    for (unsigned b = 0; b < 32; ++b) {
      planes[b][w] |= static_cast<std::uint64_t>(m[b]) << shift;
    }
  }
  std::vector<BitSeq> lines;
  lines.reserve(32);
  for (unsigned b = 0; b < 32; ++b) {
    lines.push_back(BitSeq::from_packed_words(std::move(planes[b]), words.size()));
  }
  return lines;
}

std::vector<std::uint32_t> from_vertical_lines(std::span<const BitSeq> lines,
                                               std::size_t count) {
  if (lines.size() != 32) {
    throw std::invalid_argument("from_vertical_lines: expected 32 lines");
  }
  for (const BitSeq& line : lines) {
    if (line.size() != count) {
      throw std::invalid_argument("from_vertical_lines: line length mismatch");
    }
  }
  std::vector<std::uint32_t> words(count, 0);
  // The inverse transpose: rows of 32 cycles per line back into 32 fetch
  // words per chunk (the transpose is an involution).
  std::uint32_t m[32];
  for (std::size_t c = 0; c < count; c += 32) {
    const std::size_t n = std::min<std::size_t>(32, count - c);
    const std::size_t w = c / BitSeq::kWordBits;
    const unsigned shift = (c % BitSeq::kWordBits) ? 32 : 0;
    for (unsigned b = 0; b < 32; ++b) {
      m[b] = static_cast<std::uint32_t>(lines[b].words()[w] >> shift);
    }
    transpose32(m);
    for (std::size_t i = 0; i < n; ++i) words[c + i] = m[i];
  }
  return words;
}

long long total_bus_transitions(std::span<const std::uint32_t> words) {
  long long total = 0;
  for (std::size_t i = 0; i + 1 < words.size(); ++i) {
    total += std::popcount(words[i] ^ words[i + 1]);
  }
  return total;
}

}  // namespace asimt::bits
