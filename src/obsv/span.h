// Per-request spans for the serving path (docs/OBSERVABILITY.md).
//
// A Span is the request-level analogue of the PR 4 transition profiler's
// per-fetch attribution: one record per protocol request carrying monotonic
// stage durations (read, parse, cache lookup, execute, serialize, write)
// plus the dimensions tail latency gets attributed to — op, cache outcome,
// shard, error kind, request/payload sizes.
//
// Spans are recorded into fixed-size per-connection ring buffers (SpanRing)
// that a crash handler, the `dump` protocol op, and the metrics snapshot can
// all read while the connection thread keeps writing:
//
//   - Every slot is an array of std::atomic<uint64_t> words guarded by a
//     per-slot sequence marker (a seqlock). The writer never blocks and
//     never allocates; readers retry torn slots. All accesses are atomic, so
//     the scheme is race-free under TSan, and because lock-free 64-bit
//     atomics need no locks it is also async-signal-safe — the flight
//     recorder (obsv/flight.h) walks rings from inside SIGSEGV/SIGABRT.
//   - One writer per ring (the connection thread); any number of readers.
//
// SpanBuilder is the stamping helper threaded through serve::Service and
// serve::Server: begin() anchors the request, mark(stage) charges the time
// since the previous boundary to that stage. When observability is disabled
// the builder stays inactive and every call is a cheap early-out.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace asimt::obsv {

// ---------------------------------------------------------------------------
// Dimensions

enum class Stage : unsigned {
  kRead = 0,       // waiting for / receiving the request line
  kParse,          // JSON parse, validation, assembly
  kCacheLookup,    // content hash + shard lookup
  kExecute,        // encode/verify/profile compute (cache miss only)
  kSerialize,      // reply string construction
  kWrite,          // send() of the reply bytes
};
inline constexpr unsigned kStageCount = 6;
const char* stage_name(Stage stage);

enum class Op : unsigned {
  kPing = 0,
  kEncode,
  kVerify,
  kProfile,
  kStats,
  kMetrics,
  kDump,
  kOther,  // unknown/unparsable op — errors before dispatch land here
};
inline constexpr unsigned kOpCount = 8;
const char* op_name(Op op);

enum class Outcome : unsigned {
  kNone = 0,  // op has no cache interaction (ping, profile, stats, errors)
  kHit,
  kMiss,
};
inline constexpr unsigned kOutcomeCount = 3;
const char* outcome_name(Outcome outcome);

// Protocol error kinds as small ids (0 = ok). Matches the wire strings of
// docs/SERVING.md so dumps and metrics agree with replies. "internal" is
// deliberately last: unknown kinds degrade to it, whatever the table grows to.
inline constexpr unsigned kErrorKindCount = 8;
const char* error_kind_name(std::uint8_t kind);           // "ok", "parse", ...
std::uint8_t error_kind_id(const char* kind);             // inverse; last if unknown

// ---------------------------------------------------------------------------
// Span

struct Span {
  std::uint64_t seq = 0;       // process-wide request sequence; 0 = empty slot
  std::uint64_t conn_id = 0;   // connection ordinal (the flight dump's "tid")
  std::uint64_t start_ns = 0;  // monotonic ns since process start
  std::uint64_t stage_ns[kStageCount] = {};
  std::uint8_t op = 0;          // Op
  std::uint8_t outcome = 0;     // Outcome
  std::uint8_t error_kind = 0;  // 0 = ok
  std::uint8_t shard = 0;       // cache shard (hit/miss only)
  std::uint32_t request_bytes = 0;
  std::uint32_t payload_bytes = 0;

  // Server-side processing time: every stage except the read wait (which
  // measures client think time, not server work).
  std::uint64_t total_ns() const {
    std::uint64_t total = 0;
    for (unsigned s = 1; s < kStageCount; ++s) total += stage_ns[s];
    return total;
  }
};

// Fixed word layout so a Span round-trips through the atomic slot exactly.
inline constexpr std::size_t kSpanWords = 11;
void span_to_words(const Span& span, std::uint64_t out[kSpanWords]);
Span span_from_words(const std::uint64_t in[kSpanWords]);

// ---------------------------------------------------------------------------
// SpanRing

class SpanRing {
 public:
  // Capacity is rounded up to a power of two (minimum 8).
  explicit SpanRing(std::size_t capacity = 256);

  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }
  std::uint64_t pushed() const { return head_.load(std::memory_order_acquire); }

  // Writer side: one thread only.
  void push(const Span& span);

  // The connection this ring currently records; stamped on acquire so a
  // dump can label rows even when slots from a previous owner remain.
  void set_conn_id(std::uint64_t id) {
    conn_id_.store(id, std::memory_order_relaxed);
  }
  std::uint64_t conn_id() const {
    return conn_id_.load(std::memory_order_relaxed);
  }

  // Reader side, any thread. Returns false when slot `i` is empty or was
  // being rewritten (torn) — callers skip it. Async-signal-safe.
  bool read_slot(std::size_t i, Span& out) const;

  // Every currently readable span, oldest first (by seq). Not signal-safe
  // (allocates); the signal path uses read_slot directly.
  std::vector<Span> snapshot() const;

  // Forgets all recorded spans (ring reuse across connections).
  void reset();

 private:
  struct Slot {
    // Seqlock marker: 0 = empty, odd = write in progress, even = version.
    std::atomic<std::uint64_t> marker{0};
    std::atomic<std::uint64_t> words[kSpanWords] = {};
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> conn_id_{0};
};

// ---------------------------------------------------------------------------
// Clock + builder

// Monotonic nanoseconds since process start (steady_clock anchored at the
// first call — cheap, overflow-free for centuries).
std::uint64_t now_ns();

class SpanBuilder {
 public:
  SpanBuilder() = default;

  bool active() const { return active_; }

  // Starts a span whose read stage began at `read_start_ns` (the instant
  // the previous reply finished, i.e. when the server started waiting for
  // this line). Passing 0 uses now (no read attribution — direct calls).
  void begin(std::uint64_t conn_id, std::uint64_t seq,
             std::uint64_t read_start_ns = 0) {
    const std::uint64_t now = now_ns();
    span_ = Span{};
    span_.seq = seq;
    span_.conn_id = conn_id;
    span_.start_ns = read_start_ns == 0 ? now : read_start_ns;
    span_.stage_ns[static_cast<unsigned>(Stage::kRead)] =
        read_start_ns == 0 ? 0 : now - read_start_ns;
    last_ns_ = now;
    active_ = true;
  }

  // Charges the time since the previous boundary to `stage` (accumulating,
  // so a stage touched twice keeps both shares).
  void mark(Stage stage) {
    if (!active_) return;
    const std::uint64_t now = now_ns();
    span_.stage_ns[static_cast<unsigned>(stage)] += now - last_ns_;
    last_ns_ = now;
  }

  void set_op(Op op) { span_.op = static_cast<std::uint8_t>(op); }
  void set_outcome(Outcome outcome) {
    span_.outcome = static_cast<std::uint8_t>(outcome);
  }
  void set_error_kind(std::uint8_t kind) { span_.error_kind = kind; }
  void set_shard(unsigned shard) {
    span_.shard = static_cast<std::uint8_t>(shard & 0xFF);
  }
  void set_request_bytes(std::size_t n) {
    span_.request_bytes = n > 0xFFFFFFFFu ? 0xFFFFFFFFu
                                          : static_cast<std::uint32_t>(n);
  }
  void set_payload_bytes(std::size_t n) {
    span_.payload_bytes = n > 0xFFFFFFFFu ? 0xFFFFFFFFu
                                          : static_cast<std::uint32_t>(n);
  }

  const Span& span() const { return span_; }
  // Elapsed server time so far — the value echoed to clients that request
  // "echo_span" (serve protocol, docs/SERVING.md).
  std::uint64_t server_ns() const { return span_.total_ns(); }

 private:
  Span span_;
  std::uint64_t last_ns_ = 0;
  bool active_ = false;
};

}  // namespace asimt::obsv
