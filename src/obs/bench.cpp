#include "obs/bench.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <optional>

#include "obs/history.h"
#include "obs/manifest.h"
#include "obs/selfmetrics.h"
#include "obs/stats.h"
#include "parallel/pool.h"
#include "telemetry/export.h"
#include "util/args.h"

namespace asimt::obs {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

// Same SplitMix64 as the stats kernel, for the mock-time stream.
std::uint64_t splitmix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

void BenchContext::measure(const std::function<void()>& op) {
  if (mock_) {
    // Run the body once so mock mode still exercises the measured code, but
    // take the elapsed time from the injected deterministic stream.
    op();
    elapsed_ns_ = mock_elapsed_ns_;
    measured_ = true;
    return;
  }
  const std::int64_t start = now_ns();
  for (std::uint64_t i = 0; i < iters_; ++i) op();
  elapsed_ns_ = now_ns() - start;
  measured_ = true;
}

void BenchContext::set_counter(const std::string& name, double value) {
  for (auto& [existing, v] : counters_) {
    if (existing == name) {
      v = value;
      return;
    }
  }
  counters_.emplace_back(name, value);
}

std::vector<BenchSpec>& bench_registry() {
  static std::vector<BenchSpec> registry;
  return registry;
}

BenchRegistrar::BenchRegistrar(std::string name, BenchFn fn) {
  bench_registry().push_back({std::move(name), std::move(fn)});
}

BenchOptions BenchOptions::defaults() {
  BenchOptions options;
  if (const char* fast = std::getenv("ASIMT_FAST");
      fast != nullptr && fast[0] == '1') {
    options.repetitions = 5;
    options.warmup = 1;
    options.min_sample_ms = 2.0;
  }
  return options;
}

// Friend of BenchContext: drives calibration and repetition around the
// user-visible measure() surface.
class BenchRunner {
 public:
  // One calibrated + measured bench; returns the artifact row, or nullopt
  // for a body that never called measure().
  static std::optional<json::Value> run_one(const BenchSpec& spec,
                                            const BenchOptions& options);
};

std::optional<json::Value> BenchRunner::run_one(const BenchSpec& spec,
                                                const BenchOptions& options) {
  BenchContext ctx;
  ctx.mock_ = options.mock_time;

  if (!options.mock_time) {
    // Calibrate the inner iteration count: double until one timed sample
    // costs at least min_sample_ms, so per-sample clock overhead is noise.
    const std::int64_t target_ns =
        static_cast<std::int64_t>(options.min_sample_ms * 1e6);
    ctx.iters_ = 1;
    for (;;) {
      ctx.measured_ = false;
      spec.fn(ctx);
      if (!ctx.measured_) return std::nullopt;
      if (ctx.elapsed_ns_ >= target_ns || ctx.iters_ >= (1ull << 30)) break;
      if (ctx.elapsed_ns_ <= 0) {
        ctx.iters_ *= 16;
        continue;
      }
      // Aim directly at the target (doubling as a floor) to keep
      // calibration cheap for slow benches.
      const std::uint64_t scaled = static_cast<std::uint64_t>(
          static_cast<double>(ctx.iters_) *
          (static_cast<double>(target_ns) /
           static_cast<double>(ctx.elapsed_ns_)) * 1.2);
      ctx.iters_ = std::max(ctx.iters_ * 2, scaled);
    }
  }

  std::uint64_t mock_state = options.seed ^ fnv1a(spec.name);
  const auto next_mock_ns = [&]() {
    // ~1–2 microseconds per op with small deterministic jitter.
    return static_cast<std::int64_t>(1000 + (fnv1a(spec.name) % 1000) +
                                     splitmix(mock_state) % 50);
  };

  std::vector<double> ns_per_op;
  ns_per_op.reserve(static_cast<std::size_t>(options.repetitions));
  const int total = options.warmup + options.repetitions;
  for (int rep = 0; rep < total; ++rep) {
    ctx.measured_ = false;
    if (options.mock_time) ctx.mock_elapsed_ns_ = next_mock_ns();
    spec.fn(ctx);
    if (!ctx.measured_) return std::nullopt;
    if (rep >= options.warmup) {
      ns_per_op.push_back(static_cast<double>(ctx.elapsed_ns_) /
                          static_cast<double>(ctx.iters_));
    }
  }

  StatsOptions stats_options;
  stats_options.seed = options.seed ^ fnv1a(spec.name);
  const SampleStats stats = summarize(ns_per_op, stats_options);

  json::Value row = json::Value::object();
  row.set("name", spec.name);
  row.set("iterations", static_cast<long long>(ctx.iters_));
  row.set("repetitions", options.repetitions);
  row.set("warmup", options.warmup);
  if (ctx.items_per_iter_ > 0) {
    row.set("items_per_iter", static_cast<long long>(ctx.items_per_iter_));
    if (stats.median > 0) {
      row.set("items_per_second",
              static_cast<double>(ctx.items_per_iter_) * 1e9 / stats.median);
    }
  }
  if (!ctx.counters_.empty()) {
    json::Value counters = json::Value::object();
    for (const auto& [name, value] : ctx.counters_) counters.set(name, value);
    row.set("counters", std::move(counters));
  }
  row.set("stats", obs::to_json(stats));
  return row;
}

json::Value run_benches(const BenchOptions& options,
                        const std::string& artifact_name) {
  json::Value rows = json::Value::array();
  if (options.verbose_console) {
    std::printf("%-44s %12s %12s %10s %24s\n", "benchmark", "iters",
                "median ns/op", "mad", "95% CI");
  }
  for (const BenchSpec& spec : bench_registry()) {
    if (!options.filter.empty() &&
        spec.name.find(options.filter) == std::string::npos) {
      continue;
    }
    const std::optional<json::Value> row = BenchRunner::run_one(spec, options);
    if (!row) {
      std::fprintf(stderr, "bench: %s never called measure(), skipped\n",
                   spec.name.c_str());
      continue;
    }
    if (options.verbose_console) {
      const SampleStats stats = stats_from_json(row->at("stats"));
      std::printf("%-44s %12lld %12.1f %10.2f [%10.1f, %10.1f]\n",
                  spec.name.c_str(), row->at("iterations").as_int(),
                  stats.median, stats.mad, stats.ci_lo, stats.ci_hi);
    }
    rows.push_back(std::move(*row));
  }

  json::Value doc = json::Value::object();
  doc.set("schema_version", kBenchSchemaVersion);
  doc.set("bench", artifact_name);
  embed_manifest(doc);
  json::Value opts = json::Value::object();
  opts.set("filter", options.filter);
  opts.set("repetitions", options.repetitions);
  opts.set("warmup", options.warmup);
  opts.set("min_sample_ms", options.min_sample_ms);
  opts.set("seed", static_cast<long long>(options.seed));
  opts.set("mock_time", options.mock_time);
  doc.set("options", std::move(opts));
  doc.set("benchmarks", std::move(rows));
  doc.set("process", obs::to_json(sample_process_metrics()));
  return doc;
}

int bench_suite_cli_main(int argc, char** argv, const char* artifact_name,
                         const char* default_out) {
  BenchOptions options = BenchOptions::defaults();
  std::string out_path = default_out;
  std::string history_dir;
  bool json_stdout = false;
  bool list_only = false;

  const auto usage = [&](const char* diagnostic) -> int {
    if (diagnostic != nullptr) {
      std::fprintf(stderr, "%s: %s\n", artifact_name, diagnostic);
    }
    std::fprintf(stderr,
                 "usage: %s [--filter SUBSTR] [--repetitions N] [--warmup N]\n"
                 "       [--min-sample-ms MS] [--seed S] [--out PATH]\n"
                 "       [--history DIR] [--jobs N] [--json] [--list]\n"
                 "       [--mock-time]\n",
                 artifact_name);
    return 2;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const auto next_int = [&](int min) -> std::optional<int> {
      const char* value = next();
      if (value == nullptr) return std::nullopt;
      return util::parse_int_in(value, min, std::numeric_limits<int>::max());
    };
    if (arg == "--filter") {
      const char* value = next();
      if (value == nullptr) return usage("--filter needs a value");
      options.filter = value;
    } else if (arg == "--repetitions") {
      const std::optional<int> v = next_int(1);
      if (!v) return usage("--repetitions needs an integer >= 1");
      options.repetitions = *v;
    } else if (arg == "--warmup") {
      const std::optional<int> v = next_int(0);
      if (!v) return usage("--warmup needs an integer >= 0");
      options.warmup = *v;
    } else if (arg == "--min-sample-ms") {
      const char* value = next();
      const std::optional<double> v =
          value ? util::parse_number<double>(value) : std::nullopt;
      if (!v || *v < 0) return usage("--min-sample-ms needs a number >= 0");
      options.min_sample_ms = *v;
    } else if (arg == "--seed") {
      const char* value = next();
      const std::optional<std::uint64_t> v =
          value ? util::parse_number<std::uint64_t>(value) : std::nullopt;
      if (!v) return usage("--seed needs a non-negative integer");
      options.seed = *v;
    } else if (arg == "--out") {
      const char* value = next();
      if (value == nullptr) return usage("--out needs a path");
      out_path = value;
    } else if (arg == "--history") {
      const char* value = next();
      if (value == nullptr) return usage("--history needs a directory");
      history_dir = value;
    } else if (arg == "--jobs") {
      const std::optional<int> v = next_int(1);
      if (!v) return usage("--jobs needs an integer >= 1");
      parallel::set_default_jobs(static_cast<unsigned>(*v));
    } else if (arg == "--json") {
      json_stdout = true;
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--mock-time") {
      options.mock_time = true;
    } else {
      return usage(("unknown option '" + arg + "'").c_str());
    }
  }

  if (list_only) {
    for (const BenchSpec& spec : bench_registry()) {
      if (options.filter.empty() ||
          spec.name.find(options.filter) != std::string::npos) {
        std::printf("%s\n", spec.name.c_str());
      }
    }
    return 0;
  }

  options.verbose_console = !json_stdout;
  const json::Value doc = run_benches(options, artifact_name);
  if (json_stdout) {
    std::printf("%s\n", doc.dump(2).c_str());
  }
  if (!out_path.empty()) {
    if (!telemetry::write_text_file(out_path, doc.dump(2) + "\n")) {
      std::fprintf(stderr, "%s: cannot write %s\n", artifact_name,
                   out_path.c_str());
      return 1;
    }
    if (!json_stdout) std::printf("wrote %s\n", out_path.c_str());
  }
  if (!history_dir.empty()) {
    if (!append_history(history_dir, doc)) {
      std::fprintf(stderr, "%s: cannot append history under %s\n",
                   artifact_name, history_dir.c_str());
      return 1;
    }
    if (!json_stdout) {
      std::printf("appended %s\n",
                  history_path(history_dir, artifact_name).c_str());
    }
  }
  return 0;
}

int bench_artifact_main(const char* bench_name, int argc, char** argv,
                        int (*body)()) {
  int repetitions = 1;
  int warmup = 0;
  std::string out_path = std::string("BENCH_") + bench_name + ".json";
  std::string history_dir;

  const auto usage = [&](const char* diagnostic) -> int {
    if (diagnostic != nullptr) {
      std::fprintf(stderr, "%s: %s\n", bench_name, diagnostic);
    }
    std::fprintf(stderr,
                 "usage: %s [--repetitions N] [--warmup N] [--jobs N]\n"
                 "       [--out PATH] [--history DIR]\n",
                 bench_name);
    return 2;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_int = [&](int min) -> std::optional<int> {
      if (i + 1 >= argc) return std::nullopt;
      return util::parse_int_in(argv[++i], min,
                                std::numeric_limits<int>::max());
    };
    if (arg == "--repetitions") {
      const std::optional<int> v = next_int(1);
      if (!v) return usage("--repetitions needs an integer >= 1");
      repetitions = *v;
    } else if (arg == "--warmup") {
      const std::optional<int> v = next_int(0);
      if (!v) return usage("--warmup needs an integer >= 0");
      warmup = *v;
    } else if (arg == "--jobs") {
      const std::optional<int> v = next_int(1);
      if (!v) return usage("--jobs needs an integer >= 1");
      parallel::set_default_jobs(static_cast<unsigned>(*v));
    } else if (arg == "--out") {
      if (i + 1 >= argc) return usage("--out needs a path");
      out_path = argv[++i];
    } else if (arg == "--history") {
      if (i + 1 >= argc) return usage("--history needs a directory");
      history_dir = argv[++i];
    } else {
      return usage(("unknown option '" + arg + "'").c_str());
    }
  }

  int rc = 0;
  std::vector<double> wall_ms;
  wall_ms.reserve(static_cast<std::size_t>(repetitions));
  for (int rep = 0; rep < warmup + repetitions && rc == 0; ++rep) {
    const std::int64_t start = now_ns();
    rc = body();
    const double elapsed_ms =
        static_cast<double>(now_ns() - start) / 1e6;
    if (rep >= warmup) wall_ms.push_back(elapsed_ms);
  }

  json::Value doc = json::Value::object();
  doc.set("schema_version", kBenchSchemaVersion);
  doc.set("bench", bench_name);
  embed_manifest(doc);
  doc.set("jobs", static_cast<long long>(parallel::default_jobs()));
  doc.set("repetitions", repetitions);
  doc.set("warmup", warmup);
  doc.set("ok", rc == 0);
  if (!wall_ms.empty()) {
    doc.set("wall_ms", wall_ms.back());
    doc.set("wall_ms_stats", obs::to_json(summarize(wall_ms)));
  }
  doc.set("process", obs::to_json(sample_process_metrics()));
  if (!telemetry::write_text_file(out_path, doc.dump(2) + "\n")) {
    std::fprintf(stderr, "%s: cannot write %s\n", bench_name,
                 out_path.c_str());
    return rc != 0 ? rc : 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (!history_dir.empty() && !append_history(history_dir, doc)) {
    std::fprintf(stderr, "%s: cannot append history under %s\n", bench_name,
                 history_dir.c_str());
    return rc != 0 ? rc : 1;
  }
  return rc;
}

}  // namespace asimt::obs
