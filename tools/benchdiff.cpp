// benchdiff — compare two BENCH_*.json perf-trajectory files.
//
//   benchdiff old.json new.json [--threshold PCT]
//
// Understands both bench artifact shapes:
//   micro_throughput: {"bench":"micro_throughput","benchmarks":[{name,
//       iterations, real_time_ns, cpu_time_ns, ...}]}  — rows keyed by name,
//       cpu_time_ns compared; slower than --threshold percent (default 10)
//       is a regression.
//   verify_full: {"bench":"verify_full","rows":[{workload, block_size,
//       transitions, reduction_percent, restored, ...}]} — rows keyed by
//       (workload, block_size). Transition counts are *deterministic*, so any
//       change at all is flagged (that is a measurement drift, not noise),
//       and a row whose `restored` flips to false always fails.
//
// Exit status: 0 clean, 1 regression(s), 2 usage / unreadable input. Rows
// present in only one file are reported but do not fail the diff (benches
// grow; renames should read as add+remove, not silent coverage loss).
#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.h"
#include "util/args.h"

namespace {

using asimt::json::Value;

[[noreturn]] void usage_error(const char* diagnostic) {
  if (diagnostic != nullptr) std::fprintf(stderr, "benchdiff: %s\n", diagnostic);
  std::fputs("usage: benchdiff old.json new.json [--threshold PCT]\n", stderr);
  std::exit(2);
}

Value load_or_die(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "benchdiff: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    return asimt::json::parse(ss.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "benchdiff: %s: %s\n", path.c_str(), e.what());
    std::exit(2);
  }
}

struct Row {
  std::string key;
  const Value* value;
};

// Key rows by name (micro_throughput) or workload/k (verify_full); `field` is
// the array member each shape stores its rows under.
std::vector<Row> rows_of(const Value& doc, const std::string& bench) {
  const char* field = bench == "verify_full" ? "rows" : "benchmarks";
  const Value* rows = doc.find(field);
  if (rows == nullptr || !rows->is_array()) {
    std::fprintf(stderr, "benchdiff: missing '%s' array\n", field);
    std::exit(2);
  }
  std::vector<Row> out;
  for (const Value& row : rows->as_array()) {
    std::string key;
    if (bench == "verify_full") {
      key = row.at("workload").as_string() + "/k" +
            std::to_string(row.at("block_size").as_int());
    } else {
      key = row.at("name").as_string();
    }
    out.push_back({std::move(key), &row});
  }
  return out;
}

const Value* find_row(const std::vector<Row>& rows, const std::string& key) {
  for (const Row& row : rows) {
    if (row.key == key) return row.value;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  double threshold = 10.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs("usage: benchdiff old.json new.json [--threshold PCT]\n",
                 stdout);
      return 0;
    }
    if (arg == "--threshold") {
      if (i + 1 >= argc) usage_error("--threshold needs a value");
      const std::optional<double> parsed =
          asimt::util::parse_number<double>(argv[++i]);
      if (!parsed || *parsed < 0) {
        usage_error("--threshold needs a non-negative percentage");
      }
      threshold = *parsed;
    } else if (arg[0] == '-') {
      usage_error(("unknown option '" + arg + "'").c_str());
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) usage_error("need exactly two files");

  const Value old_doc = load_or_die(files[0]);
  const Value new_doc = load_or_die(files[1]);
  const Value* old_bench = old_doc.find("bench");
  const Value* new_bench = new_doc.find("bench");
  if (old_bench == nullptr || new_bench == nullptr) {
    usage_error("inputs are not BENCH_*.json artifacts (no 'bench' field)");
  }
  if (!(*old_bench == *new_bench)) {
    std::fprintf(stderr, "benchdiff: comparing different benches: %s vs %s\n",
                 old_bench->as_string().c_str(),
                 new_bench->as_string().c_str());
    return 2;
  }
  const std::string bench = old_bench->as_string();
  const std::vector<Row> old_rows = rows_of(old_doc, bench);
  const std::vector<Row> new_rows = rows_of(new_doc, bench);

  int regressions = 0;
  std::printf("benchdiff: %s, %zu -> %zu rows, threshold %.1f%%\n",
              bench.c_str(), old_rows.size(), new_rows.size(), threshold);
  for (const Row& row : new_rows) {
    const Value* old_row = find_row(old_rows, row.key);
    if (old_row == nullptr) {
      std::printf("  NEW   %s\n", row.key.c_str());
      continue;
    }
    if (bench == "verify_full") {
      const long long before = old_row->at("transitions").as_int();
      const long long after = row.value->at("transitions").as_int();
      const bool restored = row.value->at("restored").as_bool();
      if (!restored) {
        std::printf("  FAIL  %s: decode verification failed\n", row.key.c_str());
        ++regressions;
      } else if (before != after) {
        std::printf("  DRIFT %s: transitions %lld -> %lld (deterministic "
                    "metric changed)\n",
                    row.key.c_str(), before, after);
        ++regressions;
      } else {
        std::printf("  ok    %s: transitions %lld\n", row.key.c_str(), after);
      }
    } else {
      const double before = old_row->at("cpu_time_ns").as_double();
      const double after = row.value->at("cpu_time_ns").as_double();
      const double delta =
          before > 0 ? 100.0 * (after - before) / before : 0.0;
      const bool slow = delta > threshold;
      std::printf("  %s %-44s %12.1f -> %12.1f ns  %+6.1f%%\n",
                  slow ? "SLOW " : "ok   ", row.key.c_str(), before, after,
                  delta);
      if (slow) ++regressions;
    }
  }
  for (const Row& row : old_rows) {
    if (find_row(new_rows, row.key) == nullptr) {
      std::printf("  GONE  %s\n", row.key.c_str());
    }
  }
  if (regressions > 0) {
    std::printf("benchdiff: %d regression(s) beyond %.1f%%\n", regressions,
                threshold);
    return 1;
  }
  std::printf("benchdiff: clean\n");
  return 0;
}
