#include "serve/admission.h"

#include <algorithm>
#include <chrono>

#include "obsv/span.h"

namespace asimt::serve {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {}

Admission AdmissionController::admit(std::uint64_t deadline_ns) {
  if (!enabled()) return Admission::kAdmitted;
  std::unique_lock<std::mutex> lock(mu_);
  if (inflight_ < options_.max_inflight) {
    ++inflight_;
    return Admission::kAdmitted;
  }
  // Shed before queue: a full wait queue rejects immediately instead of
  // growing — the client gets `overloaded` + retry_after_ms while the
  // daemon's backlog stays bounded.
  if (waiting_ >= options_.queue_depth) return Admission::kShed;

  // Queue before block: the wait is bounded by the queue policy and, when
  // the request carries its own deadline, by whichever comes first.
  const std::uint64_t now = obsv::now_ns();
  std::uint64_t wait_until = now + options_.queue_timeout_ms * 1'000'000ull;
  bool deadline_binds = false;
  if (deadline_ns != 0 && deadline_ns < wait_until) {
    wait_until = deadline_ns;
    deadline_binds = true;
  }
  ++waiting_;
  for (;;) {
    if (inflight_ < options_.max_inflight) {
      --waiting_;
      ++inflight_;
      return Admission::kAdmitted;
    }
    const std::uint64_t current = obsv::now_ns();
    if (current >= wait_until) {
      --waiting_;
      return deadline_binds ? Admission::kDeadline : Admission::kQueueTimeout;
    }
    slot_available_.wait_for(lock,
                             std::chrono::nanoseconds(wait_until - current));
  }
}

void AdmissionController::release() {
  if (!enabled()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (inflight_ > 0) --inflight_;
  }
  slot_available_.notify_one();
}

unsigned AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

unsigned AdmissionController::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

}  // namespace asimt::serve
