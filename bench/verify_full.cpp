// Repro integrity sweep: at FULL problem sizes, replay every dynamically
// fetched word of every workload through the TT/BBIT hardware model and
// require exact restoration, for every block size. The unit/property tests
// cover reduced sizes; this is the final end-to-end guarantee behind the
// Fig. 6 numbers. Honours ASIMT_FAST=1 like the other workload benches.
// Besides the console table, writes BENCH_verify_full.json with one row per
// (workload, k) so the sweep is machine readable.
#include <cstdio>

#include "cfg/cfg.h"
#include "core/fetch_decoder.h"
#include "core/selection.h"
#include "experiments/experiment.h"
#include "isa/assembler.h"
#include "sim/bus.h"
#include "sim/cpu.h"
#include "telemetry/export.h"
#include "telemetry/json.h"
#include "workloads/workload.h"

int main() {
  using namespace asimt;
  const workloads::SizeConfig sizes = experiments::bench_sizes();
  bool all_ok = true;
  json::Value rows = json::Value::array();

  std::printf("%-6s %6s %16s %14s %10s\n", "bench", "k", "fetches", "decoded",
              "restored");
  std::vector<workloads::Workload> suite = workloads::make_all(sizes);
  for (workloads::Workload& w : workloads::make_extra(sizes)) {
    suite.push_back(std::move(w));
  }
  for (const workloads::Workload& w : suite) {
    const isa::Program program = isa::assemble(w.source);
    const cfg::Cfg cfg = cfg::build_cfg(program);

    // Profile once.
    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    w.init(memory, cpu.state());
    cfg::Profiler profiler(cfg);
    cpu.run(500'000'000,
            [&](std::uint32_t pc, std::uint32_t) { profiler.on_fetch(pc); });
    std::string error;
    if (!w.check(memory, &error)) {
      std::printf("%-6s FAILED functional check: %s\n", w.name.c_str(), error.c_str());
      all_ok = false;
      continue;
    }
    const cfg::Profile profile = profiler.take();

    for (int k : {4, 5, 6, 7}) {
      core::SelectionOptions sel;
      sel.chain.block_size = k;
      const core::SelectionResult selection =
          core::select_and_encode(cfg, profile, sel);
      const sim::TextImage image(
          cfg.text_base, selection.apply_to_text(cfg.text, cfg.text_base));

      core::FetchDecoder decoder(selection.tt, selection.bbit);
      sim::Memory memory2;
      memory2.load_program(program);
      sim::Cpu cpu2(memory2);
      cpu2.state().pc = program.entry();
      w.init(memory2, cpu2.state());
      std::uint64_t mismatches = 0;
      cpu2.run(500'000'000, [&](std::uint32_t pc, std::uint32_t word) {
        const std::uint32_t bus = image.contains(pc) ? image.word_at(pc) : word;
        if (decoder.feed(pc, bus) != word) ++mismatches;
      });
      const bool ok = cpu2.state().halted && mismatches == 0;
      all_ok = all_ok && ok;
      std::printf("%-6s %6d %16llu %14llu %10s\n", w.name.c_str(), k,
                  static_cast<unsigned long long>(decoder.stats().fetches),
                  static_cast<unsigned long long>(decoder.stats().decoded),
                  ok ? "yes" : "NO");
      json::Value row = json::Value::object();
      row.set("workload", w.name);
      row.set("block_size", k);
      row.set("fetches", decoder.stats().fetches);
      row.set("decoded", decoder.stats().decoded);
      row.set("mismatches", mismatches);
      row.set("restored", ok);
      rows.push_back(std::move(row));
    }
  }
  std::printf("\n%s\n", all_ok ? "all dynamic fetches restored exactly"
                               : "RESTORATION FAILURES DETECTED");

  json::Value doc = json::Value::object();
  doc.set("bench", "verify_full");
  doc.set("fast_mode", experiments::fast_mode());
  doc.set("all_restored", all_ok);
  doc.set("rows", std::move(rows));
  const char* out_path = "BENCH_verify_full.json";
  if (!telemetry::write_text_file(out_path, doc.dump(2) + "\n")) {
    std::fprintf(stderr, "verify_full: cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return all_ok ? 0 : 1;
}
