// A2 — the hardware-budget trade-off of §7.2: sweep the Transformation
// Table capacity and watch the reduction saturate once the hot loops fit.
#include <cstdio>

#include "experiments/experiment.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt;
  const workloads::SizeConfig sizes = workloads::SizeConfig::small();
  const int budgets[] = {1, 2, 4, 8, 16, 32, 64};

  std::printf("TT capacity sweep (k=5, reduced problem sizes)\n");
  std::printf("reduction %% by TT entries:\n%-6s", "bench");
  for (int b : budgets) std::printf("%8d", b);
  std::printf("   bits/entry=%u\n", core::TtConfig::entry_bits());

  for (const workloads::Workload& w : workloads::make_all(sizes)) {
    std::printf("%-6s", w.name.c_str());
    for (int b : budgets) {
      experiments::ExperimentOptions opt;
      opt.block_sizes = {5};
      opt.tt_budget = b;
      opt.bbit_budget = 64;
      const auto r = experiments::run_workload(w, opt);
      std::printf("%8.1f", r.per_block_size[0].reduction_percent);
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper's choice of 16 entries sits at the knee: enough for the\n"
      "dominant loops, %u bits of SRAM per entry.\n",
      core::TtConfig::entry_bits());
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("ablation_tt_size")
