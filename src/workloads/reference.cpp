#include "workloads/reference.h"

#include <cmath>

namespace asimt::workloads {

void ref_mmul(int n, const std::vector<float>& a, const std::vector<float>& b,
              std::vector<float>& c) {
  c.assign(static_cast<std::size_t>(n) * n, 0.0f);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      float sum = 0.0f;
      for (int k = 0; k < n; ++k) {
        const float prod = a[static_cast<std::size_t>(i) * n + k] *
                           b[static_cast<std::size_t>(k) * n + j];
        sum += prod;
      }
      c[static_cast<std::size_t>(i) * n + j] = sum;
    }
  }
}

void ref_sor(int n, int iters, std::vector<float>& u) {
  for (int iter = 0; iter < iters; ++iter) {
    for (int i = 1; i < n - 1; ++i) {
      for (int j = 1; j < n - 1; ++j) {
        const std::size_t p = static_cast<std::size_t>(i) * n + j;
        const float c = u[p];
        float sum = u[p - static_cast<std::size_t>(n)] + u[p + static_cast<std::size_t>(n)];
        sum += u[p - 1];
        sum += u[p + 1];
        const float four_c = (c + c) + (c + c);
        const float residual = sum - four_c;
        u[p] = c + residual * 0.375f;
      }
    }
  }
}

std::vector<float>& ref_ej(int n, int iters, std::vector<float>& u,
                           std::vector<float>& v) {
  std::vector<float>* src = &u;
  std::vector<float>* dst = &v;
  for (int iter = 0; iter < iters; ++iter) {
    const std::vector<float>& s = *src;
    std::vector<float>& d = *dst;
    for (int i = 1; i < n - 1; ++i) {
      for (int j = 1; j < n - 1; ++j) {
        const std::size_t p = static_cast<std::size_t>(i) * n + j;
        float sum = s[p - static_cast<std::size_t>(n)] + s[p + static_cast<std::size_t>(n)];
        sum += s[p - 1];
        sum += s[p + 1];
        const float weighted = sum * 0.3125f;   // omega / 4
        const float decayed = s[p] * -0.25f;    // 1 - omega
        d[p] = decayed + weighted;
      }
    }
    std::swap(src, dst);
  }
  return *src;  // the buffer written by the final iteration
}

std::vector<std::uint32_t> fft_bit_reverse_table(int n) {
  int log2n = 0;
  while ((1 << log2n) < n) ++log2n;
  std::vector<std::uint32_t> rev(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::uint32_t r = 0;
    for (int b = 0; b < log2n; ++b) {
      r |= static_cast<std::uint32_t>((i >> b) & 1) << (log2n - 1 - b);
    }
    rev[static_cast<std::size_t>(i)] = r;
  }
  return rev;
}

void fft_twiddles(int n, std::vector<float>& wre, std::vector<float>& wim) {
  wre.resize(static_cast<std::size_t>(n) / 2);
  wim.resize(static_cast<std::size_t>(n) / 2);
  for (int j = 0; j < n / 2; ++j) {
    const double angle = -2.0 * M_PI * j / n;
    wre[static_cast<std::size_t>(j)] = static_cast<float>(std::cos(angle));
    wim[static_cast<std::size_t>(j)] = static_cast<float>(std::sin(angle));
  }
}

void ref_fft(int n, std::vector<float>& re, std::vector<float>& im) {
  const auto rev = fft_bit_reverse_table(n);
  std::vector<float> wre, wim;
  fft_twiddles(n, wre, wim);
  for (int i = 0; i < n; ++i) {
    const int j = static_cast<int>(rev[static_cast<std::size_t>(i)]);
    if (i < j) {
      std::swap(re[static_cast<std::size_t>(i)], re[static_cast<std::size_t>(j)]);
      std::swap(im[static_cast<std::size_t>(i)], im[static_cast<std::size_t>(j)]);
    }
  }
  for (int len = 2; len <= n; len <<= 1) {
    const int half = len / 2;
    const int wstep = n / len;
    for (int i = 0; i < n; i += len) {
      for (int j = 0; j < half; ++j) {
        const std::size_t idx1 = static_cast<std::size_t>(i + j);
        const std::size_t idx2 = idx1 + static_cast<std::size_t>(half);
        const std::size_t w = static_cast<std::size_t>(j * wstep);
        const float wr = wre[w];
        const float wi = wim[w];
        const float x2r = re[idx2];
        const float x2i = im[idx2];
        const float tr = x2r * wr - x2i * wi;
        const float ti = x2r * wi + x2i * wr;
        const float x1r = re[idx1];
        const float x1i = im[idx1];
        re[idx1] = x1r + tr;
        im[idx1] = x1i + ti;
        re[idx2] = x1r - tr;
        im[idx2] = x1i - ti;
      }
    }
  }
}

void ref_tri(int n, const std::vector<float>& a, const std::vector<float>& b,
             const std::vector<float>& c, const std::vector<float>& d,
             std::vector<float>& x) {
  std::vector<float> sb = b;
  std::vector<float> sd = d;
  for (int i = 1; i < n; ++i) {
    const std::size_t p = static_cast<std::size_t>(i);
    const float m = a[p] / sb[p - 1];
    sb[p] = sb[p] - m * c[p - 1];
    sd[p] = sd[p] - m * sd[p - 1];
  }
  x.assign(static_cast<std::size_t>(n), 0.0f);
  x[static_cast<std::size_t>(n) - 1] =
      sd[static_cast<std::size_t>(n) - 1] / sb[static_cast<std::size_t>(n) - 1];
  for (int i = n - 2; i >= 0; --i) {
    const std::size_t p = static_cast<std::size_t>(i);
    x[p] = (sd[p] - c[p] * x[p + 1]) / sb[p];
  }
}

void ref_lu(int n, std::vector<float>& matrix) {
  for (int k = 0; k < n; ++k) {
    const float pivot = matrix[static_cast<std::size_t>(k) * n + k];
    for (int i = k + 1; i < n; ++i) {
      const std::size_t row = static_cast<std::size_t>(i) * n;
      const float m = matrix[row + static_cast<std::size_t>(k)] / pivot;
      matrix[row + static_cast<std::size_t>(k)] = m;
      for (int j = k + 1; j < n; ++j) {
        matrix[row + static_cast<std::size_t>(j)] -=
            m * matrix[static_cast<std::size_t>(k) * n + static_cast<std::size_t>(j)];
      }
    }
  }
}

}  // namespace asimt::workloads
