// Strict numeric CLI-argument parsing, shared by the asimt front end and the
// standalone bench binaries.
//
// std::atoi / strtoull silently turn junk into 0 (and accept trailing
// garbage), which is how "--tt 1x6" used to mean "no TT budget at all".
// These helpers parse the WHOLE string or return nullopt, so every caller
// can emit a real diagnostic instead. Header-only; include as "util/args.h".
#pragma once

#include <charconv>
#include <optional>
#include <string_view>

namespace asimt::util {

// Parses all of `text` as a base-10 number of type T (no sign prefix for
// unsigned types, optional '-' for signed). Empty input, trailing
// characters, or overflow yield nullopt.
template <typename T>
std::optional<T> parse_number(std::string_view text) {
  T value{};
  const char* const last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), last, value);
  if (text.empty() || ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

// parse_number<int> constrained to [min, max].
inline std::optional<int> parse_int_in(std::string_view text, int min, int max) {
  const std::optional<int> v = parse_number<int>(text);
  if (!v || *v < min || *v > max) return std::nullopt;
  return v;
}

}  // namespace asimt::util
