// The open-loop load generator against a real in-process daemon: the run
// must drain fully, report sane percentiles, and emit a schema-v2 artifact
// whose rows benchdiff --trajectory can gate.
#include "serve/loadgen.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "telemetry/json.h"

namespace asimt::serve {
namespace {

class LoadgenFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ServeOptions options;
    options.socket_path =
        "/tmp/asimt_loadgen_" + std::to_string(::getpid()) + ".sock";
    server_ = std::make_unique<Server>(options);
    ASSERT_TRUE(server_->start()) << server_->error();
    thread_ = std::thread([this] { server_->run(); });
    loadgen_.socket_path = options.socket_path;
    loadgen_.conns = 2;
    loadgen_.rate = 400.0;
    loadgen_.seconds = 0.5;
    loadgen_.seed = 12345;
  }

  void TearDown() override {
    server_->notify_stop();
    thread_.join();
  }

  std::unique_ptr<Server> server_;
  std::thread thread_;
  LoadgenOptions loadgen_;
};

TEST_F(LoadgenFixture, DrainsEveryRequestWithoutErrors) {
  const LoadgenReport report = run_loadgen(loadgen_);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.connect_failures, 0u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.received, report.sent);
  // ~400 req/s for 0.5 s: the Poisson draw should land well inside [50, 600].
  EXPECT_GT(report.sent, 50u);
  EXPECT_LT(report.sent, 600u);
  // Percentiles are ordered and positive.
  EXPECT_GT(report.p50_ms, 0.0);
  EXPECT_LE(report.p50_ms, report.p90_ms);
  EXPECT_LE(report.p90_ms, report.p99_ms);
  EXPECT_LE(report.p99_ms, report.p999_ms);
  EXPECT_LE(report.p999_ms, report.max_ms);
  EXPECT_GT(report.throughput_rps, 0.0);
  // A clean run has no sheds, no outages, no lost in-flight requests — the
  // goodput equals the throughput and the attempted load saw no misses.
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.timeouts, 0u);
  EXPECT_EQ(report.missed_sends, 0u);
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.reconnects, 0u);
  EXPECT_DOUBLE_EQ(report.goodput_rps, report.throughput_rps);
  // The request mix repeats a small program pool, so the daemon's cache must
  // have absorbed most of the work.
  const CacheStats stats = server_->service().cache().stats();
  EXPECT_GT(stats.hits, stats.misses);
}

TEST_F(LoadgenFixture, RequestCountIsSeedDeterministic) {
  // The schedule and mix derive only from (seed, conns, rate, seconds); the
  // number of *scheduled* sends must replay exactly.
  const LoadgenReport first = run_loadgen(loadgen_);
  const LoadgenReport second = run_loadgen(loadgen_);
  EXPECT_EQ(first.sent, second.sent);
  LoadgenOptions other = loadgen_;
  other.seed = 999;
  const LoadgenReport reseeded = run_loadgen(other);
  EXPECT_NE(reseeded.sent, first.sent);
}

TEST_F(LoadgenFixture, ArtifactIsSchemaV2WithGateableRows) {
  const LoadgenReport report = run_loadgen(loadgen_);
  const json::Value doc = loadgen_artifact(loadgen_, report);
  EXPECT_EQ(doc.at("schema_version").as_int(), 2);
  EXPECT_EQ(doc.at("bench").as_string(), "serve_loadgen");
  // Provenance manifest like every bench artifact.
  EXPECT_NE(doc.at("manifest").find("git_sha"), nullptr);
  // Rows carry name + stats.median — the exact shape tools/benchdiff reads.
  const json::Array& rows = doc.at("benchmarks").as_array();
  ASSERT_EQ(rows.size(), 6u);
  const char* const expected[] = {"latency/p50",  "latency/p90",
                                  "latency/p99",  "latency/p999",
                                  "req_time_ns",  "goodput_time_ns"};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].at("name").as_string(), expected[i]);
    EXPECT_GE(rows[i].at("stats").at("median").as_double(), 0.0);
  }
  EXPECT_EQ(doc.at("summary").at("received").as_int(),
            static_cast<long long>(report.received));
  EXPECT_EQ(doc.at("options").at("seed").as_int(), 12345);
}

TEST_F(LoadgenFixture, ServerObservedLatencyRidesAlongWithClientLatency) {
  const LoadgenReport report = run_loadgen(loadgen_);
  ASSERT_TRUE(report.ok());
  // Every reply carries the echoed span, so the server-side sample count
  // matches the client-side one exactly.
  EXPECT_EQ(report.server_samples, report.received);
  EXPECT_GT(report.server_p50_ms, 0.0);
  EXPECT_LE(report.server_p50_ms, report.server_p90_ms);
  EXPECT_LE(report.server_p90_ms, report.server_p99_ms);
  EXPECT_LE(report.server_p99_ms, report.server_p999_ms);
  // Server time excludes the socket round trip, so its median cannot beat
  // the client's view of the same requests.
  EXPECT_LE(report.server_p50_ms, report.p50_ms);
  // The artifact carries the side-by-side block in the summary (not as
  // benchmark rows — the trajectory gate's row set stays fixed).
  const json::Value doc = loadgen_artifact(loadgen_, report);
  const json::Value& server = doc.at("summary").at("server_latency");
  EXPECT_EQ(server.at("samples").as_int(),
            static_cast<long long>(report.server_samples));
  EXPECT_GT(server.at("p999_ms").as_double(), 0.0);
  ASSERT_EQ(doc.at("benchmarks").as_array().size(), 6u);
}

TEST(Loadgen, InterpolatedQuantileDoesNotCollapseTailsOntoTheMax) {
  // Type-7 interpolation: with n samples, p99.9 must interpolate between
  // order statistics instead of snapping to the max — the whole point of the
  // estimator for runs shorter than 1000 requests.
  std::vector<double> sorted;
  for (int i = 1; i <= 100; ++i) sorted.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(interpolated_quantile(sorted, 0.5), 50.5);
  EXPECT_DOUBLE_EQ(interpolated_quantile(sorted, 0.25), 25.75);
  // h = (n-1)q = 99 * 0.999 = 98.901 -> 99 + 0.901 * (100 - 99).
  EXPECT_NEAR(interpolated_quantile(sorted, 0.999), 99.901, 1e-9);
  EXPECT_LT(interpolated_quantile(sorted, 0.999), sorted.back());
  EXPECT_DOUBLE_EQ(interpolated_quantile(sorted, 0.99), 99.01);
}

TEST(Loadgen, InterpolatedQuantileEdgeCases) {
  EXPECT_DOUBLE_EQ(interpolated_quantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(interpolated_quantile({42.0}, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(interpolated_quantile({42.0}, 0.999), 42.0);
  const std::vector<double> pair = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(interpolated_quantile(pair, -0.5), 10.0);  // clamps low
  EXPECT_DOUBLE_EQ(interpolated_quantile(pair, 1.5), 20.0);   // clamps high
  EXPECT_DOUBLE_EQ(interpolated_quantile(pair, 0.5), 15.0);
}

TEST(Loadgen, UnreachableSocketFailsFastAndHonestly) {
  LoadgenOptions options;
  options.socket_path = "/tmp/asimt_no_such_daemon.sock";
  options.conns = 2;
  options.rate = 100.0;
  options.seconds = 0.1;
  const LoadgenReport report = run_loadgen(options);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.connect_failures, 2u);
  EXPECT_EQ(report.sent, 0u);
}

}  // namespace
}  // namespace asimt::serve
