// Ablation — compiler-side cold scheduling vs ASIMT, and the two stacked.
//
// Cold scheduling reorders independent instructions so consecutive words
// differ in fewer bits: zero hardware, but bounded by the dependences in
// real code. ASIMT re-encodes the stored bits directly. Because scheduling
// runs before encoding, the two compose; the combination shows how much
// headroom the scheduler leaves for the encoder.
#include <cstdio>

#include "baselines/cold_scheduler.h"
#include "core/selection.h"
#include "isa/assembler.h"
#include "sim/cpu.h"
#include "workloads/workload.h"
#include "obs/bench.h"

namespace {

long long measure(const asimt::cfg::Cfg& cfg, const asimt::cfg::Profile& profile,
                  const std::vector<std::uint32_t>& image) {
  return asimt::cfg::dynamic_transitions(cfg, profile, image);
}

}  // namespace

static int run_bench() {
  using namespace asimt;
  std::printf("dynamic transition reduction: cold scheduling vs asimt (k=5)\n");
  std::printf("%-6s %12s %12s %12s\n", "bench", "schedule", "asimt", "both");

  for (const workloads::Workload& w :
       workloads::make_all(workloads::SizeConfig::small())) {
    const isa::Program program = isa::assemble(w.source);
    const cfg::Cfg cfg = cfg::build_cfg(program);

    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    w.init(memory, cpu.state());
    cfg::Profiler profiler(cfg);
    cpu.run(50'000'000, [&](std::uint32_t pc, std::uint32_t) { profiler.on_fetch(pc); });
    const cfg::Profile profile = profiler.take();
    const long long base = measure(cfg, profile, cfg.text);

    // Cold schedule only.
    const auto scheduled = baselines::cold_schedule_program(cfg);
    const long long sched_tr = measure(cfg, profile, scheduled);

    // ASIMT only.
    core::SelectionOptions sel;
    sel.chain.block_size = 5;
    const auto asimt_only = core::select_and_encode(cfg, profile, sel);
    const long long asimt_tr =
        measure(cfg, profile, asimt_only.apply_to_text(cfg.text, cfg.text_base));

    // Scheduled text, then encoded: selection sees the reordered words.
    cfg::Cfg scheduled_cfg = cfg;
    scheduled_cfg.text = scheduled;
    const auto both = core::select_and_encode(scheduled_cfg, profile, sel);
    const long long both_tr = measure(
        scheduled_cfg, profile, both.apply_to_text(scheduled, cfg.text_base));

    auto pct = [&](long long v) {
      return 100.0 * static_cast<double>(base - v) / static_cast<double>(base);
    };
    std::printf("%-6s %11.1f%% %11.1f%% %11.1f%%\n", w.name.c_str(),
                pct(sched_tr), pct(asimt_tr), pct(both_tr));
  }
  std::printf(
      "\ncold scheduling alone recovers only a sliver (tight kernels leave\n"
      "few independent pairs to move) and can even backfire across block\n"
      "boundaries. More interesting: stacking it UNDER asimt usually loses\n"
      "to asimt alone — the scheduler's greedy word-to-word moves disturb\n"
      "the repetitive vertical structure the functional transformations\n"
      "exploit. Leaving program order intact, as the paper does, is the\n"
      "right call.\n");
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("ablation_cold_schedule")
