// Bus energy model.
//
// Dynamic power on a bus line is alpha * C * V^2 * f with alpha the switching
// activity; per-transition energy is 1/2 * C * V^2. The paper argues the
// case for off-chip instruction memories where line capacitance is an order
// of magnitude higher (§1); both presets are provided.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "telemetry/json.h"

namespace asimt::power {

struct BusParams {
  double capacitance_farads = 5e-12;  // per line
  double voltage = 3.3;

  // Typical on-chip global interconnect line.
  static BusParams on_chip() { return {5e-12, 1.8}; }
  // Off-chip trace + pad + pin (paper: "significantly higher capacitance of
  // the buslines going through the system I/O pins").
  static BusParams off_chip() { return {30e-12, 3.3}; }
};

// Energy in joules for `transitions` bit transitions on lines with `params`.
double transition_energy_joules(long long transitions, const BusParams& params);

// Summary of one measured configuration.
struct EnergyReport {
  std::string label;
  long long transitions = 0;
  std::uint64_t fetches = 0;
  double energy_joules = 0.0;

  double transitions_per_fetch() const {
    return fetches == 0 ? 0.0 : static_cast<double>(transitions) / static_cast<double>(fetches);
  }
};

EnergyReport make_report(std::string label, long long transitions,
                         std::uint64_t fetches, const BusParams& params);

// Percentage reduction of `measured` relative to `baseline` transitions.
double reduction_percent(long long baseline, long long measured);

// Human-readable multi-line comparison table.
std::string format_comparison(const EnergyReport& baseline,
                              const EnergyReport& encoded);

// JSON forms of the same data, so energy reports share the export path of
// telemetry snapshots and experiment results.
json::Value to_json(const EnergyReport& report);
json::Value comparison_to_json(const EnergyReport& baseline,
                               const EnergyReport& encoded);

}  // namespace asimt::power
