// asimt — command-line front end for the ASIMT toolchain.
//
//   asimt disasm  prog.s                   disassembly listing with CFG marks
//   asimt run     prog.s [--max-steps N]   execute, print machine summary
//   asimt report  prog.s [-k 4,5,6,7]      static per-block-size encoding report
//   asimt encode  prog.s -o fw.img [-k K] [--tt N] [--profile STEPS]
//                                          build a power-encoded firmware image
//   asimt info    fw.img                   inspect a firmware image
//   asimt fuzz    [--seed S] [--iters N]   differential fuzz the encoder stack
//   asimt faults  [--seed S] [--iters N]   soft-error fault-injection campaign
//   asimt profile prog.s [--top N]         transition-attribution power profile
//   asimt bench   [--filter S]             registered microbenchmark suite on
//                                          the statistical harness (obs/bench.h)
//
// Observability (any command): `--metrics out.json` writes a metrics-registry
// snapshot on exit, `--trace out.jsonl` streams phase spans as JSON lines,
// and `--telemetry` enables counting without writing files (inspect with the
// exporters in-process). `report --json` and `run --json` switch the report
// itself to machine-readable JSON on stdout. See docs/OBSERVABILITY.md.
//
// `encode` profiles by executing from the entry point with zeroed registers
// (bounded by --profile steps, default 1M; programs that do not halt are
// still profiled). With --static, every eligible block is weighted equally
// instead.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cfg/cfg.h"
#include "check/fuzzer.h"
#include "fault/campaign.h"
#include "core/fetch_decoder.h"
#include "core/image.h"
#include "core/selection.h"
#include "experiments/experiment.h"
#include "isa/assembler.h"
#include "obs/bench.h"
#include "obs/history.h"
#include "obs/manifest.h"
#include "obs/selfmetrics.h"
#include "obsv/flight.h"
#include "parallel/pool.h"
#include "profile/report.h"
#include "profile/transition_profiler.h"
#include "serve/chaos.h"
#include "serve/client.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "sim/bus.h"
#include "sim/cpu.h"
#include "telemetry/chrome_trace.h"
#include "telemetry/export.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/args.h"

namespace {

using namespace asimt;

const char kUsage[] =
    "usage: asimt <disasm|run|report|encode|info|fuzz|faults|profile|bench|serve|loadgen|stats|chaos|flight> [<file>] [options]\n"
    "  disasm prog.s\n"
    "  run    prog.s [--max-steps N] [--json]\n"
    "  report prog.s [-k list] [--json]\n"
    "  encode prog.s -o out.img [-k K] [--tt N] [--profile STEPS | --static]\n"
    "  info   fw.img\n"
    "  fuzz   [--seed S] [--iters N] [--out DIR] [--mutate RULE] [--json]\n"
    "         differential fuzzing of the encoder/decoder stack; shrunk\n"
    "         reproducers land in DIR (default fuzz-reproducers); --mutate\n"
    "         overlap|initial-plain self-checks the oracles (must fail)\n"
    "  faults [--seed S] [--iters N] [--target tt|history|image|bus|all]\n"
    "         [--rate R] [--protect none|parity|reencode|both] [--json]\n"
    "         [--out report.json]\n"
    "         seed-driven soft-error campaign over the TT/decode datapath;\n"
    "         fails if any single-flip tau/history fault escapes its k-bit\n"
    "         block (docs/RESILIENCE.md)\n"
    "  profile prog.s [-k K] [--tt N] [--top N] [--out prof.json]\n"
    "         [--annotate listing.txt] [--json] [--max-steps N]\n"
    "         encode, replay the encoded bus stream, and attribute every\n"
    "         dynamic bus transition to instructions, blocks, and bus lines\n"
    "  bench  [--filter S] [--repetitions N] [--warmup N] [--min-sample-ms M]\n"
    "         [--seed S] [--out BENCH.json] [--history DIR] [--json] [--list]\n"
    "         run the registered microbenchmark suite on the statistical\n"
    "         harness: warmup + calibrated repetitions, median/MAD and\n"
    "         bootstrap 95% CIs, RunManifest provenance; writes a schema-v2\n"
    "         artifact and, with --history DIR, appends it to the JSONL\n"
    "         trajectory store gated by benchdiff (docs/BENCHMARKING.md)\n"
    "  serve  --socket PATH [--cache-capacity N] [--shards N] [--jobs N]\n"
    "         [--request-timeout-ms M] [--max-conns N] [--max-inflight N]\n"
    "         [--queue-depth N] [--queue-timeout-ms M] [--retry-after-ms M]\n"
    "         [--slow-ms M [--slow-log F.jsonl]] [--flight F] [--no-flight]\n"
    "         [--no-obs]\n"
    "         long-lived encoding daemon on a unix socket: newline-delimited\n"
    "         JSON requests (encode/verify/profile/ping/stats/metrics/dump),\n"
    "         replies answered from a sharded content-addressed result cache;\n"
    "         SIGINT/SIGTERM drain gracefully (docs/SERVING.md). Overload\n"
    "         protection: per-request deadlines (client deadline_ms capped by\n"
    "         --request-timeout-ms, enforced on read, execute, and write),\n"
    "         --max-conns sheds connections at accept, --max-inflight bounds\n"
    "         concurrent execution with a --queue-depth wait queue; shed\n"
    "         work gets a structured `overloaded` reply with retry_after_ms\n"
    "         (docs/SERVING.md § Resilience). Request spans, latency\n"
    "         histograms, and a crash-safe flight recorder (dump file\n"
    "         defaults to <socket>.flight) are on by default; --slow-ms M\n"
    "         logs every request slower than M ms (docs/OBSERVABILITY.md)\n"
    "  loadgen --socket PATH [--conns C] [--rate R] [--seconds S] [--seed S]\n"
    "         [--deadline-ms M] [--out BENCH.json] [--history DIR] [--json]\n"
    "         seed-deterministic open-loop load against a running daemon;\n"
    "         reports client- and server-observed p50/p90/p99/p99.9 latency,\n"
    "         throughput vs goodput, and shed/timeout/loss accounting as a\n"
    "         schema-v2 artifact gated by benchdiff --trajectory. Mid-run\n"
    "         drops reconnect with jittered backoff; exits 1 only when no\n"
    "         reply was ever received\n"
    "  stats  --socket PATH [--watch N] [--json | --prometheus]\n"
    "         one `metrics` round trip against a running daemon: request\n"
    "         counts, per-op latency histograms (p50/p90/p99/p99.9), cache\n"
    "         and overload counters; --watch N repeats every N seconds until\n"
    "         interrupted, riding out daemon restarts with a reconnect note\n"
    "  chaos  --listen PATH --upstream PATH [--seed S] [--faults LIST]\n"
    "         [--stall-ms M] [--chop-bytes N] [--gap-bytes N]\n"
    "         seeded fault-injecting proxy between clients and a daemon:\n"
    "         LIST is comma-separated chop|stall|garbage|disconnect or\n"
    "         'all'; the fault schedule is a pure function of the seed, so\n"
    "         campaigns replay byte-identically (docs/SERVING.md)\n"
    "  flight dump.flight [-o trace.json]\n"
    "         convert a flight-recorder dump (crash or `dump` op) into a\n"
    "         Chrome/Perfetto trace, one timeline row per connection\n"
    "observability options (any command):\n"
    "  --metrics out.json   write a metrics snapshot on exit\n"
    "  --trace out.jsonl    stream phase spans as JSON lines\n"
    "  --chrome-trace t.json  write the phase trace as a Chrome/Perfetto\n"
    "                       trace (standalone or alongside --trace)\n"
    "  --telemetry          enable metric counting without output files\n"
    "  --jobs N             worker threads for parallel stages (default:\n"
    "                       hardware concurrency; 1 = fully serial)\n"
    "  --max-seconds S      wall-clock budget for fuzz/faults campaigns; a\n"
    "                       run that hits it reports timed_out and the exact\n"
    "                       iteration count completed (env: ASIMT_MAX_SECONDS)\n"
    "  --help, -h           show this help\n";

[[noreturn]] void usage_error(const std::string& diagnostic) {
  if (!diagnostic.empty()) {
    std::fprintf(stderr, "asimt: %s\n", diagnostic.c_str());
  }
  std::fputs(kUsage, stderr);
  std::exit(2);
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "asimt: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::uint8_t> read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "asimt: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

isa::Program assemble_or_die(const std::string& path) {
  telemetry::TracePhase phase("assemble");
  try {
    return isa::assemble(read_text_file(path));
  } catch (const isa::AssemblyError& e) {
    std::fprintf(stderr, "asimt: %s: %s\n", path.c_str(), e.what());
    std::exit(1);
  }
}

int cmd_disasm(const std::string& path) {
  const isa::Program program = assemble_or_die(path);
  const cfg::Cfg cfg = cfg::build_cfg(program);
  for (std::size_t i = 0; i < program.text.size(); ++i) {
    const std::uint32_t pc = program.text_base + 4 * static_cast<std::uint32_t>(i);
    const bool leader = cfg.block_starting_at(pc) >= 0;
    std::printf("%c %08x  %08x  %s\n", leader ? '>' : ' ', pc, program.text[i],
                isa::disassemble(program.text[i], pc).c_str());
  }
  const auto loops = cfg::find_natural_loops(cfg);
  std::printf("\n%zu basic blocks, %zu natural loops\n", cfg.blocks.size(),
              loops.size());
  return 0;
}

int cmd_run(const std::string& path, std::uint64_t max_steps, bool json_mode) {
  const isa::Program program = assemble_or_die(path);
  sim::Memory memory;
  memory.load_program(program);
  sim::Cpu cpu(memory);
  cpu.state().pc = program.entry();
  sim::BusMonitor bus(/*per_line=*/true);
  {
    telemetry::TracePhase phase("profile");
    cpu.run(max_steps, [&](std::uint32_t, std::uint32_t word) { bus.observe(word); });
  }
  bus.publish("bus.fetch");
  const double per_fetch =
      static_cast<double>(bus.total_transitions()) /
      static_cast<double>(std::max<std::uint64_t>(1, bus.words_observed()));
  if (json_mode) {
    json::Value out = json::Value::object();
    out.set("file", path);
    out.set("halted", cpu.state().halted);
    out.set("instructions", cpu.state().instructions);
    out.set("bus_transitions", bus.total_transitions());
    out.set("transitions_per_fetch", per_fetch);
    json::Value regs = json::Value::object();
    for (unsigned r = 0; r < 32; ++r) {
      regs.set(isa::reg_name(r), static_cast<long long>(cpu.state().r[r]));
    }
    out.set("registers", std::move(regs));
    // kStable: stdout JSON stays byte-identical across --jobs and reruns
    // (determinism contract, docs/PARALLELISM.md).
    obs::embed_manifest(out, obs::ManifestFields::kStable);
    std::printf("%s\n", out.dump(2).c_str());
    return cpu.state().halted ? 0 : 1;
  }
  std::printf("%s after %llu instructions\n",
              cpu.state().halted ? "halted" : "stopped",
              static_cast<unsigned long long>(cpu.state().instructions));
  std::printf("instruction bus transitions: %lld (%.2f per fetch)\n",
              bus.total_transitions(), per_fetch);
  for (unsigned r = 0; r < 32; r += 4) {
    std::printf("  %-5s %08x  %-5s %08x  %-5s %08x  %-5s %08x\n",
                isa::reg_name(r).c_str(), cpu.state().r[r],
                isa::reg_name(r + 1).c_str(), cpu.state().r[r + 1],
                isa::reg_name(r + 2).c_str(), cpu.state().r[r + 2],
                isa::reg_name(r + 3).c_str(), cpu.state().r[r + 3]);
  }
  return cpu.state().halted ? 0 : 1;
}

int cmd_report(const std::string& path, const std::vector<int>& block_sizes,
               bool json_mode) {
  const isa::Program program = assemble_or_die(path);
  // The vertical bit lines and their baseline transition count depend only
  // on the program, not on k — extract them once ahead of the sweep instead
  // of re-deriving 32 lines for every block size.
  std::vector<bits::BitSeq> lines(32);
  long long base = 0;
  for (unsigned line = 0; line < 32; ++line) {
    lines[line] = bits::vertical_line(program.text, line);
    base += lines[line].transitions();
  }
  json::Value out = json::Value::object();
  json::Value sweep = json::Value::array();
  if (!json_mode) {
    std::printf("%s: %zu instructions, %lld static bus transitions\n",
                path.c_str(), program.text.size(), base);
    std::printf("%-4s %-14s %-10s\n", "k", "transitions", "reduction");
  }
  // One parallel task per block size; each sums its 32 per-line encodes into
  // a private slot, so totals never depend on reduction order.
  const std::vector<long long> encoded_per_k =
      parallel::parallel_map(block_sizes.size(), [&](std::size_t idx) {
        telemetry::TracePhase sweep_phase("sweep.k" +
                                          std::to_string(block_sizes[idx]));
        telemetry::TracePhase phase("encode");
        core::ChainOptions options;
        options.block_size = block_sizes[idx];
        options.strategy = core::ChainStrategy::kOptimalDp;
        const core::ChainEncoder encoder(options);
        long long encoded = 0;
        for (const core::EncodedChain& chain : encoder.encode_many(lines)) {
          encoded += chain.stored.transitions();
        }
        return encoded;
      });
  for (std::size_t idx = 0; idx < block_sizes.size(); ++idx) {
    const int k = block_sizes[idx];
    const long long encoded = encoded_per_k[idx];
    const double reduction =
        base == 0 ? 0.0
                  : 100.0 * static_cast<double>(base - encoded) /
                        static_cast<double>(base);
    if (json_mode) {
      json::Value row = json::Value::object();
      row.set("block_size", k);
      row.set("transitions", encoded);
      row.set("reduction_percent", reduction);
      sweep.push_back(std::move(row));
    } else {
      std::printf("%-4d %-14lld %9.1f%%\n", k, encoded, reduction);
    }
  }
  if (json_mode) {
    out.set("file", path);
    out.set("instructions", static_cast<long long>(program.text.size()));
    out.set("static_transitions", base);
    out.set("per_block_size", std::move(sweep));
    obs::embed_manifest(out, obs::ManifestFields::kStable);
    std::printf("%s\n", out.dump(2).c_str());
  }
  return 0;
}

int cmd_encode(const std::string& path, const std::string& out_path, int k,
               int tt_budget, std::uint64_t profile_steps, bool static_mode) {
  const isa::Program program = assemble_or_die(path);
  const cfg::Cfg cfg = cfg::build_cfg(program);

  cfg::Profile profile;
  profile.block_counts.assign(cfg.blocks.size(), 0);
  if (static_mode) {
    for (auto& count : profile.block_counts) count = 1;
  } else {
    telemetry::TracePhase phase("profile");
    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    cfg::Profiler profiler(cfg);
    cpu.run(profile_steps,
            [&](std::uint32_t pc, std::uint32_t) { profiler.on_fetch(pc); });
    profile = profiler.take();
    std::printf("profiled %llu instructions (%s)\n",
                static_cast<unsigned long long>(profile.total_instructions),
                cpu.state().halted ? "halted" : "step budget reached");
  }

  core::SelectionOptions sel;
  sel.chain.block_size = k;
  sel.tt_budget = tt_budget;
  sel.bbit_budget = tt_budget;
  sel.min_executions = static_mode ? 1 : 2;
  const core::SelectionResult selection = core::select_and_encode(cfg, profile, sel);

  core::FirmwareImage image;
  image.text_base = cfg.text_base;
  image.text = selection.apply_to_text(cfg.text, cfg.text_base);
  image.tt = selection.tt;
  image.bbit = selection.bbit;
  const std::vector<std::uint8_t> blob = core::serialize(image);

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "asimt: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  std::printf(
      "wrote %s: %zu bytes, %zu blocks encoded, %d/%d TT entries, k=%d\n",
      out_path.c_str(), blob.size(), selection.encodings.size(),
      selection.tt_entries_used, tt_budget, k);
  return 0;
}

int cmd_info(const std::string& path) {
  core::FirmwareImage image;
  try {
    image = core::deserialize(read_binary_file(path));
  } catch (const core::ImageError& e) {
    std::fprintf(stderr, "asimt: %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  std::printf("%s: valid ASIMT firmware image\n", path.c_str());
  std::printf("  text: %zu words at 0x%08x\n", image.text.size(), image.text_base);
  std::printf("  block size: %d\n", image.tt.block_size);
  std::printf("  TT: %zu entries (%u bits each)\n", image.tt.entries.size(),
              core::TtConfig::entry_bits());
  std::printf("  BBIT: %zu entries\n", image.bbit.size());
  for (const core::BbitEntry& entry : image.bbit) {
    std::printf("    pc=0x%08x -> TT[%u]\n", entry.pc, entry.tt_index);
  }
  return 0;
}

int cmd_fuzz(const check::FuzzOptions& options, const check::OracleHooks& hooks,
             bool json_mode) {
  const check::FuzzReport report = check::run_fuzz(options, hooks);
  if (json_mode) {
    // Round-trip through the parser to splice the provenance manifest in;
    // kStable keeps the stream byte-identical across --jobs.
    json::Value doc = json::parse(check::json_report(report, options));
    obs::embed_manifest(doc, obs::ManifestFields::kStable);
    std::fputs((doc.dump(2) + "\n").c_str(), stdout);
  } else {
    std::fputs(check::format_report(report, options).c_str(), stdout);
  }
  if (hooks.any()) {
    // Mutation self-check: the deliberately broken rule MUST be caught.
    // The blind-spot diagnostic is a failure, so it belongs on stderr.
    if (report.ok()) {
      std::fprintf(stderr, "asimt: mutation check: NOT CAUGHT (oracle blind spot)\n");
      return 1;
    }
    if (!json_mode) std::printf("mutation check: caught\n");
    return 0;
  }
  return report.ok() ? 0 : 1;
}

int cmd_faults(const fault::CampaignOptions& options, bool json_mode,
               const std::string& out_path) {
  const fault::CampaignReport report = fault::run_campaign(options);
  json::Value doc = fault::to_json(report);
  obs::embed_manifest(doc, obs::ManifestFields::kStable);
  const std::string json = doc.dump(2) + "\n";
  if (!out_path.empty() && !telemetry::write_text_file(out_path, json)) {
    std::fprintf(stderr, "asimt: cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (json_mode) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::fputs(fault::format_report(report).c_str(), stdout);
  }
  if (const std::uint64_t violations = report.containment_violations()) {
    std::fprintf(stderr,
                 "asimt: fault campaign: %llu containment violation(s): "
                 "single-flip tau/history corruption escaped its k-bit block\n",
                 static_cast<unsigned long long>(violations));
    return 1;
  }
  return 0;
}

// Encodes the program under (k, tt_budget), replays the same deterministic
// execution with the *encoded* image on the bus, and attributes every dynamic
// Hamming transition to the instruction fetching it. A BusMonitor rides the
// identical stream; the command fails if the two ever disagree, so the
// report's totals are guaranteed to equal `bus.fetch.transitions`.
int cmd_profile(const std::string& path, int k, int tt_budget,
                std::uint64_t max_steps, int top_n, bool json_mode,
                const std::string& out_path, const std::string& annotate_path) {
  const isa::Program program = assemble_or_die(path);
  const cfg::Cfg cfg = cfg::build_cfg(program);

  // Run 1: the profile that drives selection (same policy as `encode`).
  cfg::Profile profile;
  {
    telemetry::TracePhase phase("profile");
    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    cfg::Profiler profiler(cfg);
    cpu.run(max_steps,
            [&](std::uint32_t pc, std::uint32_t) { profiler.on_fetch(pc); });
    if (!cpu.state().halted) {
      std::fprintf(stderr, "asimt: %s: did not halt within --max-steps\n",
                   path.c_str());
      return 1;
    }
    profile = profiler.take();
  }

  core::SelectionOptions sel;
  sel.chain.block_size = k;
  sel.tt_budget = tt_budget;
  sel.bbit_budget = tt_budget;
  const core::SelectionResult selection =
      core::select_and_encode(cfg, profile, sel);
  const std::vector<std::uint32_t> image =
      selection.apply_to_text(cfg.text, cfg.text_base);

  // Run 2: replay, observing the encoded words the bus actually carries.
  profile::TransitionProfiler prof(cfg);
  for (const core::BlockEncoding& enc : selection.encodings) {
    prof.mark_encoded(enc.start_pc, enc.encoded_words.size());
  }
  sim::BusMonitor bus(/*per_line=*/true);
  {
    telemetry::TracePhase phase("measure");
    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    profile::set_current(&prof);
    cpu.run(max_steps, [&](std::uint32_t pc, std::uint32_t word) {
      const std::size_t idx = (pc - cfg.text_base) / 4;
      const std::uint32_t bus_word = idx < image.size() ? image[idx] : word;
      bus.observe(bus_word);
      profile::observe_fetch(pc, bus_word);
    });
    profile::set_current(nullptr);
  }
  bus.publish("bus.fetch");
  prof.publish();

  if (prof.total_transitions() != bus.total_transitions()) {
    std::fprintf(stderr,
                 "asimt: internal error: profiler total %lld != bus total %lld\n",
                 prof.total_transitions(), bus.total_transitions());
    return 1;
  }

  json::Value report =
      profile::profile_report(prof, static_cast<std::size_t>(top_n));
  obs::embed_manifest(report, obs::ManifestFields::kStable);
  if (!out_path.empty() &&
      !telemetry::write_text_file(out_path, report.dump(2) + "\n")) {
    std::fprintf(stderr, "asimt: cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (!annotate_path.empty()) {
    isa::Program encoded = program;
    encoded.text = image;
    if (!telemetry::write_text_file(
            annotate_path, profile::annotate_listing(encoded, cfg, prof))) {
      std::fprintf(stderr, "asimt: cannot write %s\n", annotate_path.c_str());
      return 1;
    }
  }
  if (json_mode) {
    std::printf("%s\n", report.dump(2).c_str());
  } else {
    std::printf("%s: k=%d, %zu blocks encoded, %d/%d TT entries\n",
                path.c_str(), k, selection.encodings.size(),
                selection.tt_entries_used, tt_budget);
    std::fputs(profile::summary_text(prof, static_cast<std::size_t>(top_n)).c_str(),
               stdout);
  }
  return 0;
}

// The registered microbenchmark suite (bench/micro_suite.cpp, linked in) on
// the statistical harness. Writes the schema-v2 artifact, optionally appends
// it to the JSONL trajectory store, and with --json prints the artifact —
// manifest, stats blocks and all — to stdout instead of the console table.
int cmd_bench(obs::BenchOptions options, bool json_mode, std::string out_path,
              const std::string& history_dir, bool list_only) {
  if (list_only) {
    for (const obs::BenchSpec& spec : obs::bench_registry()) {
      if (options.filter.empty() ||
          spec.name.find(options.filter) != std::string::npos) {
        std::printf("%s\n", spec.name.c_str());
      }
    }
    return 0;
  }
  if (json_mode) options.verbose_console = false;
  const json::Value doc = obs::run_benches(options, "asimt_bench");
  if (doc.at("benchmarks").as_array().empty()) {
    std::fprintf(stderr, "asimt: bench: no benchmark matches filter '%s'\n",
                 options.filter.c_str());
    return 1;
  }
  if (out_path.empty()) out_path = "BENCH_asimt_bench.json";
  if (!telemetry::write_text_file(out_path, doc.dump(2) + "\n")) {
    std::fprintf(stderr, "asimt: cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (!history_dir.empty() && !obs::append_history(history_dir, doc)) {
    std::fprintf(stderr, "asimt: cannot append to trajectory store %s\n",
                 history_dir.c_str());
    return 1;
  }
  if (json_mode) {
    std::printf("%s\n", doc.dump(2).c_str());
  } else {
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

int cmd_serve(const serve::ServeOptions& options) {
  serve::Server server(options);
  if (!server.start()) {
    std::fprintf(stderr, "asimt: serve: %s\n", server.error().c_str());
    return 1;
  }
  // The readiness line is a contract: the instant a wrapper reads it, the
  // daemon must already behave as advertised. That means (a) stdout is
  // line-buffered so the line leaves the process with its newline even under
  // a pipe, and (b) the drain signal handlers are installed *before* the
  // line is printed — a supervisor that SIGTERMs immediately after readiness
  // must trigger a graceful drain, never the default disposition (exit 143,
  // replies dropped). Pinned by tools/serve_ready_test.sh.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  serve::install_stop_signal_handlers(&server);
  obsv::install_crash_handlers(server.service().recorder().flight());
  std::printf("asimt serve: listening on %s (cache %zu entries, %u shards)\n",
              options.socket_path.c_str(), server.service().cache().capacity(),
              server.service().cache().shard_count());
  std::fflush(stdout);
  const std::uint64_t connections = server.run();
  serve::install_stop_signal_handlers(nullptr);
  obsv::install_crash_handlers(nullptr);
  if (!server.error().empty()) {
    std::fprintf(stderr, "asimt: serve: %s\n", server.error().c_str());
    return 1;
  }
  const serve::CacheStats stats = server.service().cache().stats();
  std::printf("asimt serve: drained: %llu connections, %llu requests "
              "(%llu errors), cache %llu hits / %llu misses / %llu evictions\n",
              static_cast<unsigned long long>(connections),
              static_cast<unsigned long long>(server.service().requests()),
              static_cast<unsigned long long>(server.service().errors()),
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.evictions));
  const serve::OverloadCounters& overload = server.service().overload();
  std::printf("asimt serve: overload: %llu conns shed, %llu requests shed, "
              "%llu queue timeouts, %llu deadlines expired, "
              "%llu read timeouts, %llu write timeouts\n",
              static_cast<unsigned long long>(
                  overload.shed_connections.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  overload.shed_requests.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  overload.queue_timeouts.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  overload.deadline_expired.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  overload.read_timeouts.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  overload.write_timeouts.load(std::memory_order_relaxed)));
  return 0;
}

// `asimt chaos`: the seeded fault-injecting proxy (serve/chaos.h) as a
// process, with the same readiness/drain contract as `asimt serve` so the
// campaign scripts can supervise both identically.
int cmd_chaos(const serve::ChaosOptions& options) {
  serve::ChaosProxy proxy(options);
  if (!proxy.start()) {
    std::fprintf(stderr, "asimt: chaos: %s\n", proxy.error().c_str());
    return 1;
  }
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  serve::install_chaos_signal_handlers(&proxy);
  std::printf("asimt chaos: listening on %s -> %s (seed %llu)\n",
              options.listen_path.c_str(), options.upstream_path.c_str(),
              static_cast<unsigned long long>(options.seed));
  std::fflush(stdout);
  const std::uint64_t connections = proxy.run();
  serve::install_chaos_signal_handlers(nullptr);
  if (!proxy.error().empty()) {
    std::fprintf(stderr, "asimt: chaos: %s\n", proxy.error().c_str());
    return 1;
  }
  const serve::ChaosStats& stats = proxy.stats();
  std::printf(
      "asimt chaos: drained: %llu connections, %llu bytes forwarded, "
      "faults: %llu chop, %llu stall, %llu garbage, %llu disconnect\n",
      static_cast<unsigned long long>(connections),
      static_cast<unsigned long long>(
          stats.bytes_forwarded.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          stats.faults[0].load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          stats.faults[1].load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          stats.faults[2].load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          stats.faults[3].load(std::memory_order_relaxed)));
  return 0;
}

int cmd_loadgen(const serve::LoadgenOptions& options, bool json_mode,
                std::string out_path, const std::string& history_dir) {
  const serve::LoadgenReport report = serve::run_loadgen(options);
  if (report.connect_failures >= std::max(1u, options.conns)) {
    // Every connection failed its (single-attempt) initial connect: there
    // is no daemon to measure. Fail fast, no artifact.
    std::fprintf(stderr,
                 "asimt: loadgen: no connection could reach %s\n",
                 options.socket_path.c_str());
    return 1;
  }
  if (report.connect_failures > 0) {
    std::fprintf(stderr,
                 "asimt: loadgen: %llu connection(s) could not reach %s\n",
                 static_cast<unsigned long long>(report.connect_failures),
                 options.socket_path.c_str());
  }
  const json::Value artifact = serve::loadgen_artifact(options, report);
  if (out_path.empty()) out_path = "BENCH_serve_loadgen.json";
  if (!telemetry::write_text_file(out_path, artifact.dump(2) + "\n")) {
    std::fprintf(stderr, "asimt: cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (!history_dir.empty() && !obs::append_history(history_dir, artifact)) {
    std::fprintf(stderr, "asimt: cannot append to trajectory store %s\n",
                 history_dir.c_str());
    return 1;
  }
  if (json_mode) {
    std::printf("%s\n", artifact.dump(2).c_str());
  } else {
    std::fputs(serve::format_report(report).c_str(), stdout);
    std::printf("wrote %s\n", out_path.c_str());
  }
  // Degradation (error replies, sheds, outages) is *reported*, not fatal:
  // the artifact quantifies it and downstream gates judge it. Only a run
  // where nothing was ever answered exits nonzero.
  if (report.errors > 0 || report.shed > 0 || report.timeouts > 0) {
    std::fprintf(
        stderr,
        "asimt: loadgen: degraded: %llu error / %llu shed / %llu timeout "
        "reply(ies), %llu lost, %llu missed\n",
        static_cast<unsigned long long>(report.errors),
        static_cast<unsigned long long>(report.shed),
        static_cast<unsigned long long>(report.timeouts),
        static_cast<unsigned long long>(report.lost),
        static_cast<unsigned long long>(report.missed_sends));
  }
  if (!report.ok()) {
    std::fprintf(stderr, "asimt: loadgen: no replies received\n");
    return 1;
  }
  return 0;
}

// Renders one `metrics` snapshot as the human console table: request and
// cache counters, then one row per non-empty op×outcome histogram cell.
void print_stats_human(const json::Value& result) {
  std::printf("requests %lld  errors %lld\n",
              result.at("requests").as_int(), result.at("errors").as_int());
  const json::Value& cache = result.at("cache");
  std::printf("cache: lookups %lld  hits %lld  misses %lld  entries %lld  "
              "evictions %lld\n",
              cache.at("lookups").as_int(), cache.at("hits").as_int(),
              cache.at("misses").as_int(), cache.at("entries").as_int(),
              cache.at("evictions").as_int());
  if (const json::Value* overload = result.find("overload")) {
    std::printf("overload: conns shed %lld  requests shed %lld  "
                "queue timeouts %lld  deadlines %lld  read timeouts %lld  "
                "write timeouts %lld\n",
                overload->at("shed_connections").as_int(),
                overload->at("shed_requests").as_int(),
                overload->at("queue_timeouts").as_int(),
                overload->at("deadline_expired").as_int(),
                overload->at("read_timeouts").as_int(),
                overload->at("write_timeouts").as_int());
  }
  const json::Value& histograms = result.at("histograms");
  if (histograms.as_object().empty()) {
    std::printf("no requests observed yet\n");
    return;
  }
  std::printf("%-22s %10s %10s %10s %10s %10s\n", "op.outcome", "count",
              "p50 ms", "p99 ms", "p99.9 ms", "max ms");
  for (const auto& [name, cell] : histograms.as_object()) {
    std::printf("%-22s %10lld %10.3f %10.3f %10.3f %10.3f\n", name.c_str(),
                cell.at("count").as_int(),
                cell.at("p50_ns").as_double() / 1e6,
                cell.at("p99_ns").as_double() / 1e6,
                cell.at("p999_ns").as_double() / 1e6,
                cell.at("max_ns").as_double() / 1e6);
  }
}

// `asimt stats`: round-trip the `metrics` protocol op against a running
// daemon. Human table by default, raw snapshot JSON with --json, Prometheus
// exposition text with --prometheus; --watch N reconnects and reprints every
// N seconds until interrupted (each snapshot is one short-lived connection,
// so a watcher never holds a daemon connection open between samples). In
// watch mode a failed sample — daemon restarting, socket momentarily gone —
// is a "reconnecting" note, not an exit: the watcher outlives the daemon
// (pinned by tools/stats_watch_test.sh).
int cmd_stats(const std::string& socket_path, int watch_seconds,
              bool json_mode, bool prometheus) {
  const std::string request =
      prometheus ? "{\"op\":\"metrics\",\"format\":\"prometheus\"}"
                 : "{\"op\":\"metrics\"}";
  auto sample_failed = [&](const std::string& reason) -> bool {
    if (watch_seconds > 0) {
      std::printf("asimt stats: reconnecting to %s (%s)\n",
                  socket_path.c_str(), reason.c_str());
      std::fflush(stdout);
      return false;  // keep watching; the next interval retries
    }
    std::fprintf(stderr, "asimt: stats: %s\n", reason.c_str());
    return true;
  };
  for (bool first = true;; first = false) {
    if (!first) {
      std::this_thread::sleep_for(std::chrono::seconds(watch_seconds));
      std::printf("\n");
    }
    serve::Client client;
    if (!client.connect(socket_path)) {
      if (sample_failed(client.error())) return 1;
      continue;
    }
    const std::optional<std::string> reply = client.roundtrip(request);
    if (!reply) {
      if (sample_failed("daemon closed the connection")) return 1;
      continue;
    }
    try {
      const json::Value doc = json::parse(*reply);
      if (!doc.at("ok").as_bool()) {
        const json::Value& error = doc.at("error");
        std::fprintf(stderr, "asimt: stats: %s: %s\n",
                     error.at("kind").as_string().c_str(),
                     error.at("message").as_string().c_str());
        return 1;
      }
      const json::Value& result = doc.at("result");
      if (prometheus) {
        std::fputs(result.at("text").as_string().c_str(), stdout);
      } else if (json_mode) {
        std::printf("%s\n", result.dump(2).c_str());
      } else {
        print_stats_human(result);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "asimt: stats: malformed reply: %s\n", e.what());
      return 1;
    }
    if (watch_seconds <= 0) return 0;
    std::fflush(stdout);
  }
}

// `asimt flight`: replay a flight-recorder dump (written by a crash handler
// or the `dump` protocol op) into a Chrome/Perfetto trace. Tolerant of the
// damage a crash leaves behind — corrupt rows and a truncated tail are
// reported on stderr, the surviving spans still convert.
int cmd_flight(const std::string& path, std::string out_path) {
  obsv::FlightDump dump;
  try {
    dump = obsv::load_flight_dump(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "asimt: flight: %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  if (dump.corrupt_rows > 0) {
    std::fprintf(stderr, "asimt: flight: %s: skipped %zu corrupt row(s)\n",
                 path.c_str(), dump.corrupt_rows);
  }
  if (dump.truncated) {
    std::fprintf(stderr,
                 "asimt: flight: %s: final row truncated (crash mid-write)\n",
                 path.c_str());
  }
  const json::Value chrome =
      telemetry::chrome_trace_from_events(obsv::flight_trace_events(dump));
  if (out_path.empty()) out_path = path + ".trace.json";
  if (!telemetry::write_text_file(out_path, chrome.dump(2) + "\n")) {
    std::fprintf(stderr, "asimt: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("asimt flight: %s: reason=%s pid=%lld, %zu span(s) -> %s\n",
              path.c_str(), dump.reason.c_str(), dump.pid, dump.spans.size(),
              out_path.c_str());
  return 0;
}

std::vector<int> parse_k_list(const std::string& text) {
  std::vector<int> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    std::size_t pos = 0;
    int value = 0;
    try {
      value = std::stoi(item, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != item.size() || value < 2) {
      usage_error("invalid block size '" + item + "' in -k (need integers >= 2)");
    }
    out.push_back(value);
  }
  if (out.empty()) usage_error("-k needs a comma-separated list of block sizes");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // SIGPIPE off, process-wide: a downstream pager/`head` that exits early
  // must turn into EPIPE write errors (absorbed in finalize below), never a
  // signal death. The daemon additionally uses MSG_NOSIGNAL on sockets.
  std::signal(SIGPIPE, SIG_IGN);
  // --help anywhere wins, before any other validation.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    }
  }
  if (argc < 2) usage_error("missing command");
  const std::string command = argv[1];
  if (command != "disasm" && command != "run" && command != "report" &&
      command != "encode" && command != "info" && command != "fuzz" &&
      command != "faults" && command != "profile" && command != "bench" &&
      command != "serve" && command != "loadgen" && command != "stats" &&
      command != "chaos" && command != "flight") {
    usage_error("unknown command '" + command + "'");
  }
  const bool takes_file =
      command != "fuzz" && command != "faults" && command != "bench" &&
      command != "serve" && command != "loadgen" && command != "stats" &&
      command != "chaos";
  if (takes_file && argc < 3) usage_error("missing input file");
  const std::string file = takes_file ? argv[2] : "";

  std::string out_path;
  std::string metrics_path;
  std::string trace_path;
  std::string chrome_trace_path;
  std::string annotate_path;
  bool json_mode = false;
  int k = 5;
  int tt_budget = 16;
  int top_n = 10;
  std::uint64_t max_steps = 100'000'000;
  std::uint64_t profile_steps = 1'000'000;
  bool static_mode = false;
  std::vector<int> k_list = {4, 5, 6, 7};
  check::FuzzOptions fuzz;
  fuzz.iters = 5000;
  fuzz.reproducer_dir = "fuzz-reproducers";
  check::OracleHooks hooks;
  fault::CampaignOptions campaign;
  bool max_seconds_from_flag = false;
  obs::BenchOptions bench_opts = obs::BenchOptions::defaults();
  std::string history_dir;
  bool bench_list = false;
  serve::ServeOptions serve_opts;
  serve::LoadgenOptions loadgen_opts;
  serve::ChaosOptions chaos_opts;
  bool serve_no_flight = false;
  int stats_watch = 0;
  bool stats_prometheus = false;

  for (int i = takes_file ? 3 : 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("option '" + arg + "' needs a value");
      return argv[++i];
    };
    // Strict whole-string parse (util/args.h): junk or trailing characters
    // are a usage error, never a silent 0.
    auto next_int = [&](int min, int max) -> int {
      const std::string value = next();
      const std::optional<int> parsed = util::parse_int_in(value, min, max);
      if (!parsed) {
        usage_error("option '" + arg + "' needs an integer in [" +
                    std::to_string(min) + ", " + std::to_string(max) +
                    "], got '" + value + "'");
      }
      return *parsed;
    };
    auto next_u64 = [&]() -> std::uint64_t {
      const std::string value = next();
      const std::optional<std::uint64_t> parsed =
          util::parse_number<std::uint64_t>(value);
      if (!parsed) {
        usage_error("option '" + arg + "' needs a non-negative integer, got '" +
                    value + "'");
      }
      return *parsed;
    };
    if (arg == "-o") out_path = next();
    else if (arg == "-k") {
      const std::string value = next();
      k_list = parse_k_list(value);
      k = k_list[0];
    } else if (arg == "--tt") tt_budget = next_int(0, 1 << 16);
    else if (arg == "--max-steps") max_steps = next_u64();
    else if (arg == "--profile") profile_steps = next_u64();
    else if (arg == "--static") static_mode = true;
    else if (arg == "--json") json_mode = true;
    else if (arg == "--metrics") metrics_path = next();
    else if (arg == "--trace") trace_path = next();
    else if (arg == "--chrome-trace") chrome_trace_path = next();
    else if (arg == "--top") top_n = next_int(1, 1 << 20);
    else if (arg == "--annotate") annotate_path = next();
    else if (arg == "--telemetry") telemetry::set_enabled(true);
    else if (arg == "--seed") {
      campaign.seed = fuzz.seed = bench_opts.seed = loadgen_opts.seed =
          chaos_opts.seed = next_u64();
    }
    else if (arg == "--iters") campaign.iters = fuzz.iters = next_u64();
    else if (arg == "--filter") bench_opts.filter = next();
    else if (arg == "--repetitions") {
      bench_opts.repetitions = next_int(1, std::numeric_limits<int>::max());
    } else if (arg == "--warmup") {
      bench_opts.warmup = next_int(0, std::numeric_limits<int>::max());
    } else if (arg == "--min-sample-ms") {
      const std::string value = next();
      const std::optional<double> parsed = util::parse_number<double>(value);
      if (!parsed || !(*parsed >= 0.0)) {
        usage_error("--min-sample-ms needs a non-negative number, got '" +
                    value + "'");
      }
      bench_opts.min_sample_ms = *parsed;
    } else if (arg == "--history") history_dir = next();
    else if (arg == "--mock-time") bench_opts.mock_time = true;
    else if (arg == "--list") bench_list = true;
    else if (arg == "--target") {
      const std::string value = next();
      if (value == "all") {
        campaign.targets.assign(fault::kAllTargets,
                                fault::kAllTargets + fault::kTargetCount);
      } else if (const auto target = fault::target_from_name(value)) {
        campaign.targets = {*target};
      } else {
        usage_error("--target needs tt|history|image|bus|all, got '" + value +
                    "'");
      }
    } else if (arg == "--protect") {
      const std::string value = next();
      const auto protection = fault::protection_from_name(value);
      if (!protection) {
        usage_error("--protect needs none|parity|reencode|both, got '" + value +
                    "'");
      }
      campaign.protection = *protection;
    } else if (arg == "--max-seconds") {
      const std::string value = next();
      const std::optional<double> parsed = util::parse_number<double>(value);
      if (!parsed || !(*parsed >= 0.0)) {
        usage_error("--max-seconds needs a non-negative number, got '" + value +
                    "'");
      }
      campaign.max_seconds = fuzz.max_seconds = *parsed;
      max_seconds_from_flag = true;
    } else if (arg == "--out") {
      // fuzz: reproducer directory; profile: report path. Set both — the
      // commands never share an invocation.
      const std::string value = next();
      fuzz.reproducer_dir = value;
      out_path = value;
    }
    else if (arg == "--mutate") {
      const std::string rule = next();
      if (rule == "overlap") hooks.break_overlap_reload = true;
      else if (rule == "initial-plain") hooks.break_initial_plain = true;
      else usage_error("--mutate needs 'overlap' or 'initial-plain'");
    } else if (arg == "--jobs") {
      parallel::set_default_jobs(static_cast<unsigned>(
          next_int(1, std::numeric_limits<int>::max())));
    } else if (arg == "--socket") {
      serve_opts.socket_path = loadgen_opts.socket_path = next();
    } else if (arg == "--cache-capacity") {
      serve_opts.service.cache_capacity =
          static_cast<std::size_t>(next_int(1, 1 << 24));
    } else if (arg == "--shards") {
      serve_opts.service.cache_shards =
          static_cast<unsigned>(next_int(1, 256));
    } else if (arg == "--conns") {
      loadgen_opts.conns = static_cast<unsigned>(next_int(1, 4096));
    } else if (arg == "--rate") {
      // loadgen: requests/second; faults: flip probability. The commands
      // never share an invocation, so parse by command.
      const std::string value = next();
      const std::optional<double> parsed = util::parse_number<double>(value);
      if (command == "loadgen") {
        if (!parsed || !(*parsed > 0.0)) {
          usage_error("--rate needs a positive number, got '" + value + "'");
        }
        loadgen_opts.rate = *parsed;
      } else {
        if (!parsed || !(*parsed >= 0.0) || *parsed > 1.0) {
          usage_error("--rate needs a number in [0, 1], got '" + value + "'");
        }
        campaign.rate = *parsed;
      }
    } else if (arg == "--seconds") {
      const std::string value = next();
      const std::optional<double> parsed = util::parse_number<double>(value);
      if (!parsed || !(*parsed > 0.0)) {
        usage_error("--seconds needs a positive number, got '" + value + "'");
      }
      loadgen_opts.seconds = *parsed;
    } else if (arg == "--slow-ms") {
      serve_opts.service.recorder.slow_ms = next_u64();
    } else if (arg == "--slow-log") {
      serve_opts.service.recorder.slow_log_path = next();
    } else if (arg == "--flight") {
      serve_opts.service.recorder.flight_path = next();
    } else if (arg == "--no-flight") {
      serve_no_flight = true;
    } else if (arg == "--no-obs") {
      serve_opts.service.recorder.enabled = false;
    } else if (arg == "--watch") {
      stats_watch = next_int(1, 86'400);
    } else if (arg == "--prometheus") {
      stats_prometheus = true;
    } else if (arg == "--request-timeout-ms") {
      serve_opts.service.request_timeout_ms = next_u64();
    } else if (arg == "--retry-after-ms") {
      serve_opts.service.retry_after_ms = next_u64();
    } else if (arg == "--max-conns") {
      serve_opts.max_conns = static_cast<unsigned>(next_int(0, 1 << 20));
    } else if (arg == "--max-inflight") {
      serve_opts.service.admission.max_inflight =
          static_cast<unsigned>(next_int(0, 1 << 20));
    } else if (arg == "--queue-depth") {
      serve_opts.service.admission.queue_depth =
          static_cast<unsigned>(next_int(0, 1 << 20));
    } else if (arg == "--queue-timeout-ms") {
      serve_opts.service.admission.queue_timeout_ms = next_u64();
    } else if (arg == "--deadline-ms") {
      loadgen_opts.deadline_ms = next_u64();
    } else if (arg == "--listen") {
      chaos_opts.listen_path = next();
    } else if (arg == "--upstream") {
      chaos_opts.upstream_path = next();
    } else if (arg == "--stall-ms") {
      chaos_opts.stall_ms = next_u64();
    } else if (arg == "--chop-bytes") {
      chaos_opts.chop_bytes =
          static_cast<std::uint64_t>(next_int(1, 1 << 20));
    } else if (arg == "--gap-bytes") {
      chaos_opts.mean_gap_bytes =
          static_cast<std::uint64_t>(next_int(1, 1 << 30));
    } else if (arg == "--faults") {
      const std::string value = next();
      for (unsigned m = 0; m < serve::kChaosModeCount; ++m) {
        chaos_opts.enabled[m] = value == "all";
      }
      if (value != "all") {
        std::stringstream ss(value);
        std::string item;
        bool any = false;
        while (std::getline(ss, item, ',')) {
          const auto mode = serve::chaos_mode_from_name(item);
          if (!mode) {
            usage_error(
                "--faults needs a comma-separated list of "
                "chop|stall|garbage|disconnect (or 'all'), got '" +
                item + "'");
          }
          chaos_opts.enabled[static_cast<unsigned>(*mode)] = true;
          any = true;
        }
        if (!any) {
          usage_error("--faults needs at least one fault mode (or 'all')");
        }
      }
    }
    else usage_error("unknown option '" + arg + "'");
  }

  // Environment fallback for CI lanes that wrap many invocations: the flag,
  // when given, wins. Parsed as strictly as the flag — a malformed value is
  // a configuration error, not a silent "no budget".
  if (!max_seconds_from_flag) {
    if (const char* env = std::getenv("ASIMT_MAX_SECONDS")) {
      const std::optional<double> parsed = util::parse_number<double>(env);
      if (!parsed || !(*parsed >= 0.0)) {
        usage_error(std::string("ASIMT_MAX_SECONDS needs a non-negative "
                                "number, got '") +
                    env + "'");
      }
      campaign.max_seconds = fuzz.max_seconds = *parsed;
    }
  }

  if (!metrics_path.empty()) telemetry::set_enabled(true);
  // --chrome-trace without --trace captures the JSONL stream in memory and
  // converts it on exit; with --trace, the written file is converted instead
  // (both outputs come from the same stream, so they always agree).
  std::ostringstream chrome_capture;
  if (!trace_path.empty()) {
    telemetry::set_enabled(true);
    if (!telemetry::open_trace(trace_path)) {
      std::fprintf(stderr, "asimt: cannot write trace file %s\n",
                   trace_path.c_str());
      return 1;
    }
  } else if (!chrome_trace_path.empty()) {
    telemetry::set_enabled(true);
    telemetry::set_trace_stream(&chrome_capture);
  }

  int rc = 0;
  try {
    if (command == "disasm") rc = cmd_disasm(file);
    else if (command == "run") rc = cmd_run(file, max_steps, json_mode);
    else if (command == "report") rc = cmd_report(file, k_list, json_mode);
    else if (command == "encode") {
      if (out_path.empty()) usage_error("encode needs -o <output image>");
      rc = cmd_encode(file, out_path, k, tt_budget, profile_steps, static_mode);
    } else if (command == "fuzz") {
      rc = cmd_fuzz(fuzz, hooks, json_mode);
    } else if (command == "faults") {
      rc = cmd_faults(campaign, json_mode, out_path);
    } else if (command == "profile") {
      rc = cmd_profile(file, k, tt_budget, max_steps, top_n, json_mode,
                       out_path, annotate_path);
    } else if (command == "bench") {
      rc = cmd_bench(bench_opts, json_mode, out_path, history_dir, bench_list);
    } else if (command == "serve") {
      if (serve_opts.socket_path.empty()) {
        usage_error("serve needs --socket <path>");
      }
      // Observability defaults derive from the socket path: the flight
      // recorder is on unless suppressed, and a --slow-ms threshold without
      // an explicit log path gets a sibling file. --no-obs trumps both.
      obsv::RecorderOptions& rec = serve_opts.service.recorder;
      if (serve_no_flight) rec.flight_path.clear();
      else if (rec.flight_path.empty()) {
        rec.flight_path = serve_opts.socket_path + ".flight";
      }
      if (rec.slow_ms > 0 && rec.slow_log_path.empty()) {
        rec.slow_log_path = serve_opts.socket_path + ".slow.jsonl";
      }
      rc = cmd_serve(serve_opts);
    } else if (command == "stats") {
      if (serve_opts.socket_path.empty()) {
        usage_error("stats needs --socket <path>");
      }
      rc = cmd_stats(serve_opts.socket_path, stats_watch, json_mode,
                     stats_prometheus);
    } else if (command == "flight") {
      rc = cmd_flight(file, out_path);
    } else if (command == "loadgen") {
      if (loadgen_opts.socket_path.empty()) {
        usage_error("loadgen needs --socket <path>");
      }
      rc = cmd_loadgen(loadgen_opts, json_mode, out_path, history_dir);
    } else if (command == "chaos") {
      if (chaos_opts.listen_path.empty() || chaos_opts.upstream_path.empty()) {
        usage_error("chaos needs --listen <path> and --upstream <path>");
      }
      rc = cmd_chaos(chaos_opts);
    } else {
      rc = cmd_info(file);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "asimt: %s\n", e.what());
    rc = 1;
  }

  // Process self-metrics (peak RSS, user/sys CPU) land in the registry just
  // before the snapshot, so every --metrics file and Prometheus scrape
  // carries them. No-op while telemetry is disabled.
  obs::publish_process_metrics();
  if (!metrics_path.empty() &&
      !telemetry::write_text_file(
          metrics_path, telemetry::metrics_json(telemetry::MetricsRegistry::global()))) {
    std::fprintf(stderr, "asimt: cannot write metrics file %s\n",
                 metrics_path.c_str());
    rc = rc == 0 ? 1 : rc;
  }
  telemetry::close_trace();

  if (!chrome_trace_path.empty()) {
    std::string jsonl;
    if (!trace_path.empty()) {
      jsonl = read_text_file(trace_path);
    } else {
      telemetry::set_trace_stream(nullptr);
      jsonl = chrome_capture.str();
    }
    try {
      const json::Value chrome = telemetry::chrome_trace_from_jsonl(jsonl);
      if (!telemetry::write_text_file(chrome_trace_path, chrome.dump(2) + "\n")) {
        std::fprintf(stderr, "asimt: cannot write chrome trace file %s\n",
                     chrome_trace_path.c_str());
        rc = rc == 0 ? 1 : rc;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "asimt: chrome trace conversion failed: %s\n",
                   e.what());
      rc = rc == 0 ? 1 : rc;
    }
  }

  // EPIPE-aware stdout finalization: with SIGPIPE ignored, `asimt ... |
  // head` surfaces the closed pipe as a write error on stdout. A closed
  // downstream is the *reader's* choice and not a failure of this process,
  // so EPIPE preserves rc; any other stdout write error is a real I/O
  // failure and must not exit 0.
  // Only a *failing final flush* carries a trustworthy errno; an error flag
  // left by an earlier write (errno long since overwritten) is the
  // closed-pipe case by construction — any persistent device error would
  // fail this flush too.
  errno = 0;
  if (std::fflush(stdout) != 0 && errno != EPIPE && rc == 0) {
    std::fprintf(stderr, "asimt: error writing to stdout: %s\n",
                 std::strerror(errno));
    rc = 1;
  }
  return rc;
}
