// Ablation — prior work [6] (Benini et al., low-power ISA encoding) vs
// ASIMT on the opcode field. The ISA remap is a design-time decision that
// helps every program a little; ASIMT is post-silicon, per-application, and
// covers all 32 lines. Measured on the dynamic opcode-field transitions of
// the same streams.
#include <bit>
#include <cstdio>

#include "baselines/opcode_remap.h"
#include "cfg/cfg.h"
#include "core/selection.h"
#include "isa/assembler.h"
#include "sim/bus.h"
#include "sim/cpu.h"
#include "workloads/workload.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt;
  std::printf("opcode-field (bits 31:26) dynamic transitions\n");
  std::printf("%-6s %12s %12s %12s %12s %12s\n", "bench", "raw ISA",
              "remapped[6]", "asimt k=5", "remap red%", "asimt red%");

  for (const workloads::Workload& w :
       workloads::make_all(workloads::SizeConfig::small())) {
    const isa::Program program = isa::assemble(w.source);
    const cfg::Cfg cfg = cfg::build_cfg(program);

    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    w.init(memory, cpu.state());
    cfg::Profiler profiler(cfg);
    baselines::OpcodeRemapper remapper;
    cpu.run(50'000'000, [&](std::uint32_t pc, std::uint32_t word) {
      profiler.on_fetch(pc);
      remapper.observe(word);
    });
    const cfg::Profile profile = profiler.take();

    const long long raw =
        remapper.field_transitions(baselines::OpcodeRemapper::identity_mapping());
    const long long remapped = remapper.field_transitions(remapper.solve());

    // ASIMT's effect on the same six lines.
    core::SelectionOptions sel;
    sel.chain.block_size = 5;
    const core::SelectionResult selection = core::select_and_encode(cfg, profile, sel);
    const sim::TextImage image(cfg.text_base,
                               selection.apply_to_text(cfg.text, cfg.text_base));
    sim::Memory memory2;
    memory2.load_program(program);
    sim::Cpu cpu2(memory2);
    cpu2.state().pc = program.entry();
    w.init(memory2, cpu2.state());
    long long asimt_field = 0;
    std::uint32_t prev = 0;
    bool first = true;
    cpu2.run(50'000'000, [&](std::uint32_t pc, std::uint32_t word) {
      const std::uint32_t bus =
          (image.contains(pc) ? image.word_at(pc) : word) >> 26;
      if (!first) asimt_field += std::popcount(prev ^ bus);
      prev = bus;
      first = false;
    });

    auto pct = [&](long long v) {
      return raw == 0 ? 0.0
                      : 100.0 * static_cast<double>(raw - v) / static_cast<double>(raw);
    };
    std::printf("%-6s %12lld %12lld %12lld %11.1f%% %11.1f%%\n", w.name.c_str(),
                raw, remapped, asimt_field, pct(remapped), pct(asimt_field));
  }
  std::printf(
      "\nthe static ISA remap recovers part of the opcode-field activity but\n"
      "is fixed at ISA-design time for all programs; ASIMT adapts per\n"
      "application and also covers the other 26 bus lines (§2's argument for\n"
      "application-specific techniques).\n");
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("ablation_isa_remap")
