#!/bin/sh
# End-to-end smoke for the serving stack (docs/SERVING.md): boot the daemon,
# wait for its readiness line, drive a seeded open-loop loadgen burst,
# validate the schema-v2 artifact, gate it with benchdiff --trajectory, then
# SIGTERM-drain and check the clean exit + unlinked socket.
# usage: serve_smoke.sh <asimt-binary> <json_check-binary> <benchdiff-binary>
set -u

asimt="$1"
json_check="$2"
benchdiff="$3"
tmp="${TMPDIR:-/tmp}/serve_smoke_$$"
mkdir -p "$tmp" || exit 1
sock="$tmp/daemon.sock"
server_pid=
trap 'test -n "$server_pid" && kill "$server_pid" 2>/dev/null; rm -rf "$tmp"' EXIT

fail() {
  echo "FAIL: $*"
  sed 's/^/  serve stderr: /' "$tmp/serve_err" 2>/dev/null
  exit 1
}

"$asimt" serve --socket "$sock" --cache-capacity 1024 --shards 8 \
  >"$tmp/serve_out" 2>"$tmp/serve_err" &
server_pid=$!

# The daemon prints (and flushes) a readiness line before accepting, so
# wrappers wait for it instead of polling the socket path.
tries=0
until grep -q "listening on" "$tmp/serve_out" 2>/dev/null; do
  kill -0 "$server_pid" 2>/dev/null || fail "daemon died before readiness"
  tries=$((tries + 1))
  [ "$tries" -gt 100 ] && fail "daemon never became ready"
  sleep 0.1
done

# A seeded open-loop burst: short, but enough traffic to warm the cache.
"$asimt" loadgen --socket "$sock" --conns 2 --rate 500 --seconds 1 \
  --seed 42 --out "$tmp/BENCH_serve_loadgen.json" >"$tmp/loadgen_out" 2>&1 \
  || fail "loadgen run failed: $(cat "$tmp/loadgen_out")"
grep -q "p99" "$tmp/loadgen_out" || fail "loadgen summary missing percentiles"

# The artifact must be valid JSON in the schema-v2 shape benchdiff reads...
"$json_check" "$tmp/BENCH_serve_loadgen.json" || fail "artifact is not valid JSON"
grep -q '"schema_version": 2' "$tmp/BENCH_serve_loadgen.json" \
  || fail "artifact is not schema v2"
grep -q '"req_time_ns"' "$tmp/BENCH_serve_loadgen.json" \
  || fail "artifact lacks the throughput gate row"
grep -q '"git_sha"' "$tmp/BENCH_serve_loadgen.json" \
  || fail "artifact lacks the provenance manifest"

# The metrics op must account for every reply the loadgen received: the
# daemon observes a request into its histograms before the reply bytes go
# out, so once the burst has drained, histogram counts equal the client's
# received count exactly (encode + verify are the only ops in the mix).
received=$(grep -o '"received": [0-9]*' "$tmp/BENCH_serve_loadgen.json" \
  | grep -o '[0-9]*')
[ -n "$received" ] || fail "artifact lacks a received count"
"$asimt" stats --socket "$sock" --json >"$tmp/metrics.json" 2>&1 \
  || fail "stats --json scrape failed: $(cat "$tmp/metrics.json")"
"$json_check" "$tmp/metrics.json" || fail "metrics snapshot is not valid JSON"
counted=$(grep -o '"count": [0-9]*' "$tmp/metrics.json" \
  | awk '{ s += $2 } END { print s + 0 }')
[ "$counted" -eq "$received" ] \
  || fail "histogram counts ($counted) != loadgen received ($received)"
grep -q '"lookups"' "$tmp/metrics.json" || fail "metrics lack cache counters"

# The same snapshot in Prometheus exposition text, HELP/TYPE and all.
"$asimt" stats --socket "$sock" --prometheus >"$tmp/metrics.prom" 2>&1 \
  || fail "stats --prometheus scrape failed"
grep -q '^# TYPE asimt_serve_request_ns histogram$' "$tmp/metrics.prom" \
  || fail "prometheus scrape lacks the latency histogram family"
grep -q '^asimt_serve_requests_total [0-9]' "$tmp/metrics.prom" \
  || fail "prometheus scrape lacks the request counter"

# ...and the trajectory gate must accept it (the first --append establishes
# the baseline the CI lane compares later runs against).
"$benchdiff" --trajectory "$tmp/history.jsonl" \
  "$tmp/BENCH_serve_loadgen.json" --append >/dev/null \
  || fail "benchdiff rejected the baseline artifact"
[ "$(wc -l <"$tmp/history.jsonl")" -eq 1 ] || fail "baseline not appended"

# SIGTERM: graceful drain, summary line, exit 0, socket unlinked.
kill -TERM "$server_pid"
wait "$server_pid"
server_rc=$?
server_pid=
[ "$server_rc" -eq 0 ] || fail "daemon exited $server_rc after SIGTERM"
grep -q "drained:" "$tmp/serve_out" || fail "no drain summary on stdout"
grep -q "hits" "$tmp/serve_out" || fail "no cache stats in drain summary"
[ ! -e "$sock" ] || fail "socket file survived the drain"

# Crash path: a fresh daemon takes a short burst, then dies on SIGABRT. The
# async-signal-safe flight handler must leave a dump at the default
# <socket>.flight path that round-trips through `asimt flight` into a valid
# Chrome trace (docs/OBSERVABILITY.md).
sock2="$tmp/crash.sock"
"$asimt" serve --socket "$sock2" >"$tmp/crash_out" 2>"$tmp/crash_err" &
server_pid=$!
tries=0
until grep -q "listening on" "$tmp/crash_out" 2>/dev/null; do
  kill -0 "$server_pid" 2>/dev/null || fail "crash daemon died before readiness"
  tries=$((tries + 1))
  [ "$tries" -gt 100 ] && fail "crash daemon never became ready"
  sleep 0.1
done
"$asimt" loadgen --socket "$sock2" --conns 1 --rate 200 --seconds 0.3 \
  --seed 7 --out "$tmp/crash_bench.json" >/dev/null 2>&1 \
  || fail "crash-daemon warm-up burst failed"
kill -ABRT "$server_pid"
wait "$server_pid" 2>/dev/null
crash_rc=$?
server_pid=
[ "$crash_rc" -ge 128 ] || fail "daemon survived SIGABRT (exit $crash_rc)"
[ -s "$sock2.flight" ] || fail "SIGABRT left no flight dump"
grep -q '"reason":"SIGABRT"' "$sock2.flight" \
  || fail "flight dump reason is not SIGABRT"
"$asimt" flight "$sock2.flight" -o "$tmp/crash_trace.json" >/dev/null \
  || fail "flight dump did not convert to a trace"
"$json_check" "$tmp/crash_trace.json" || fail "flight trace is not valid JSON"

echo "serve smoke OK"
