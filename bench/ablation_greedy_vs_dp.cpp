// A1 — §6 claims greedy block-by-block encoding is optimal in practice
// despite the overlap coupling. Compares greedy against the exact 2-state
// DP on random streams and on the real workloads' hot blocks.
#include <algorithm>
#include <cstdio>
#include <random>

#include "core/chain_encoder.h"
#include "experiments/experiment.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt;
  using core::ChainStrategy;

  // Random streams, all practical block sizes.
  std::printf("greedy vs DP-optimal chain encoding, 1000-bit uniform streams\n");
  std::printf("%-4s %-10s %-10s %-10s %s\n", "k", "greedy", "dp", "gap", "streams-where-dp-wins");
  for (int k = 4; k <= 7; ++k) {
    std::mt19937 rng(k);
    long long greedy_total = 0, dp_total = 0;
    int dp_wins = 0;
    for (int t = 0; t < 100; ++t) {
      bits::BitSeq seq(1000);
      for (std::size_t i = 0; i < 1000; ++i) seq.set(i, static_cast<int>(rng() & 1));
      core::ChainOptions opt;
      opt.block_size = k;
      opt.strategy = ChainStrategy::kGreedy;
      const auto g = core::ChainEncoder(opt).encode(seq).stored.transitions();
      opt.strategy = ChainStrategy::kOptimalDp;
      const auto d = core::ChainEncoder(opt).encode(seq).stored.transitions();
      greedy_total += g;
      dp_total += d;
      dp_wins += d < g;
    }
    std::printf("%-4d %-10lld %-10lld %-10lld %d/100\n", k, greedy_total,
                dp_total, greedy_total - dp_total, dp_wins);
  }

  // Real workloads end to end (fast sizes keep this bench snappy).
  std::printf("\nend-to-end on the paper workloads (k=5, reduced sizes):\n");
  std::printf("%-6s %-14s %-14s\n", "bench", "greedy red.%", "dp red.%");
  experiments::ExperimentOptions greedy_opt;
  greedy_opt.block_sizes = {5};
  experiments::ExperimentOptions dp_opt = greedy_opt;
  dp_opt.strategy = ChainStrategy::kOptimalDp;
  for (const workloads::Workload& w :
       workloads::make_all(workloads::SizeConfig::small())) {
    const auto rg = experiments::run_workload(w, greedy_opt);
    const auto rd = experiments::run_workload(w, dp_opt);
    std::printf("%-6s %-14.2f %-14.2f\n", w.name.c_str(),
                rg.per_block_size[0].reduction_percent,
                rd.per_block_size[0].reduction_percent);
  }
  std::printf("\npaper §6 reproduced: greedy matches the optimum in practice\n");
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("ablation_greedy_vs_dp")
