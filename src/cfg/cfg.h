// Control-flow graph extraction from assembled binaries.
//
// This is the paper's "the application code is analyzed with particular
// emphasis on the major application loops" step (§1/§4): basic blocks are
// the unit the power encoding is applied to (encoded blocks never span basic
// block boundaries, §7.1), and loop/profile information drives which blocks
// earn Transformation Table entries.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/assembler.h"

namespace asimt::cfg {

struct BasicBlock {
  int index = 0;
  std::uint32_t start = 0;  // address of the first instruction
  std::uint32_t end = 0;    // exclusive address just past the last instruction
  std::vector<int> successors;    // static successors (fallthrough/branch)
  bool has_indirect_exit = false; // ends in jr/jalr: some successors unknown

  std::size_t instruction_count() const { return (end - start) / 4; }
  std::uint32_t last_pc() const { return end - 4; }
};

struct Cfg {
  std::uint32_t text_base = 0;
  std::vector<std::uint32_t> text;  // original instruction words
  std::vector<BasicBlock> blocks;   // sorted by start address
  std::unordered_map<std::uint32_t, int> block_by_start;

  // Index of the block whose range contains `pc`, or -1.
  int block_containing(std::uint32_t pc) const;
  // Index of the block starting exactly at `pc`, or -1.
  int block_starting_at(std::uint32_t pc) const;
  // The instruction words of one block.
  std::vector<std::uint32_t> block_words(const BasicBlock& block) const;
};

// Partitions the program text into maximal basic blocks: leaders are the
// entry point, branch/jump targets, and instructions following any
// control-flow instruction.
Cfg build_cfg(const isa::Program& program);

// A natural loop: `header` dominates every block in `body` (header included)
// and some body block branches back to the header.
struct Loop {
  int header = 0;
  std::vector<int> body;  // block indices, sorted
};

// Immediate dominator-based natural loop detection. Blocks unreachable from
// the entry are ignored.
std::vector<Loop> find_natural_loops(const Cfg& cfg);

// Dynamic execution profile gathered from a simulation run.
struct Profile {
  std::vector<std::uint64_t> block_counts;  // executions per block index
  // Dynamic edge counts: (from block, to block) -> times taken.
  std::unordered_map<std::uint64_t, std::uint64_t> edge_counts;
  std::uint64_t total_instructions = 0;

  static std::uint64_t edge_key(int from, int to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
           static_cast<std::uint32_t>(to);
  }
};

// Exact dynamic bus-transition count for a text image under a profile:
// execution inside a basic block is strictly sequential, so
//   total = sum_blocks count(b) * intra_transitions(b, image)
//         + sum_dynamic_edges count(e) * hamming(last(from), first(to)).
// `image` must cover the same address range as cfg.text.
long long dynamic_transitions(const Cfg& cfg, const Profile& profile,
                              std::span<const std::uint32_t> image);

// Feed every fetched PC to on_fetch(); take() returns the finished profile.
// Counting happens only at block leaders, so the per-fetch cost is one hash
// lookup.
class Profiler {
 public:
  explicit Profiler(const Cfg& cfg);

  void on_fetch(std::uint32_t pc) {
    ++profile_.total_instructions;
    const auto it = cfg_->block_by_start.find(pc);
    if (it == cfg_->block_by_start.end()) return;
    const int block = it->second;
    ++profile_.block_counts[static_cast<std::size_t>(block)];
    if (previous_ >= 0) {
      ++profile_.edge_counts[Profile::edge_key(previous_, block)];
    }
    previous_ = block;
  }

  Profile take() { return std::move(profile_); }

 private:
  const Cfg* cfg_;
  Profile profile_;
  int previous_ = -1;
};

}  // namespace asimt::cfg
