#include "check/fuzzer.h"

#include <filesystem>
#include <fstream>

#include "check/gen.h"
#include "parallel/pool.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace asimt::check {

namespace {

struct IterationVerdict {
  std::uint8_t oracle = 0;
  bool failed = false;
  std::string message;  // empty unless failed
};

std::string write_reproducer(const std::string& dir, const FuzzFailure& failure) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return {};
  const std::string path = dir + "/repro-" +
                           std::string(oracle_name(failure.oracle)) + "-iter" +
                           std::to_string(failure.iteration) + ".case";
  std::ofstream out(path, std::ios::binary);
  if (!out) return {};
  out << "# shrunk from fuzz iteration " << failure.iteration << "\n# "
      << failure.shrunk.failure << '\n'
      << serialize_case(failure.shrunk.reduced);
  return out ? path : std::string();
}

}  // namespace

FuzzReport run_fuzz(const FuzzOptions& options, const OracleHooks& hooks) {
  telemetry::TracePhase phase("fuzz");
  const Rng root(options.seed);
  std::vector<IterationVerdict> verdicts(options.iters);

  // Coarse grain: one oracle run is microseconds except the exhaustive cost
  // cross-check; 64 iterations per task amortizes pool dispatch either way.
  parallel::ForOptions fan;
  fan.grain = 64;
  parallel::parallel_for(
      options.iters,
      [&](std::size_t i) {
        const FuzzCase c = generate_case(root.fork(i));
        IterationVerdict& v = verdicts[i];
        v.oracle = static_cast<std::uint8_t>(c.oracle);
        if (std::optional<std::string> err = run_case(c, hooks)) {
          v.failed = true;
          v.message = std::move(*err);
        }
      },
      fan);

  FuzzReport report;
  report.iterations = options.iters;
  for (std::uint64_t i = 0; i < options.iters; ++i) {
    const IterationVerdict& v = verdicts[i];
    ++report.runs_per_oracle[v.oracle];
    if (!v.failed) continue;
    ++report.failure_count;
    if (report.failures.size() >= options.max_failures) continue;
    FuzzFailure failure;
    failure.iteration = i;
    failure.oracle = static_cast<Oracle>(v.oracle);
    failure.message = v.message;
    failure.shrunk = shrink_case(generate_case(root.fork(i)), hooks);
    if (!options.reproducer_dir.empty()) {
      failure.file = write_reproducer(options.reproducer_dir, failure);
    }
    report.failures.push_back(std::move(failure));
  }

  if (telemetry::enabled()) {
    telemetry::count("check.iterations", static_cast<long long>(report.iterations));
    telemetry::count("check.failures", static_cast<long long>(report.failure_count));
    for (int o = 0; o < kOracleCount; ++o) {
      telemetry::count(
          "check.runs." + std::string(oracle_name(static_cast<Oracle>(o))),
          static_cast<long long>(report.runs_per_oracle[o]));
    }
  }
  return report;
}

std::string format_report(const FuzzReport& report, const FuzzOptions& options) {
  std::string out = "fuzz: seed " + std::to_string(options.seed) + ", " +
                    std::to_string(report.iterations) + " iterations (";
  for (int o = 0; o < kOracleCount; ++o) {
    if (o) out += ", ";
    out += std::string(oracle_name(static_cast<Oracle>(o))) + " " +
           std::to_string(report.runs_per_oracle[o]);
  }
  out += ")\n";
  for (const FuzzFailure& f : report.failures) {
    out += "FAIL iter " + std::to_string(f.iteration) + ": " + f.message + '\n';
    out += "  shrunk (" + std::to_string(f.shrunk.accepted_edits) +
           " edits): " + f.shrunk.failure + '\n';
    if (!f.file.empty()) out += "  reproducer: " + f.file + '\n';
  }
  if (report.failure_count > report.failures.size()) {
    out += "  (+" +
           std::to_string(report.failure_count - report.failures.size()) +
           " more failures not shrunk)\n";
  }
  out += report.ok() ? "all oracles green\n"
                     : std::to_string(report.failure_count) + " FAILURES\n";
  return out;
}

}  // namespace asimt::check
