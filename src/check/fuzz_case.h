// One differential-fuzzing test case: which oracle to run and its input.
//
// Cases are pure data with a line-oriented text form (`serialize_case` /
// `parse_case`) so that a failing input, once minimized by the shrinker, can
// be checked into tests/check/corpus/ and replayed forever by ctest. The
// format is deliberately human-editable — a reproducer is also documentation
// of the bug it pinned down.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bitstream/bitseq.h"
#include "core/chain_encoder.h"
#include "core/transform.h"

namespace asimt::check {

// The differential oracles (docs/FUZZING.md has the full contract of each).
enum class Oracle {
  kRoundTrip,  // encode -> decode_chain restores the original bit line
  kCost,       // greedy cost >= DP cost; DP == exhaustive optimum (short lines)
  kReplay,     // ProgramEncoder image replayed through FetchDecoder/BusMonitor
  kJson,       // JSON export -> parse -> re-export is byte-stable
  kBitplane,   // packed word-parallel kernels == scalar byte-per-bit oracle
};
inline constexpr int kOracleCount = 5;

// Which transform universe the encoder may draw from.
enum class TransformSet {
  kPaper,       // core::kPaperSubset (the 8 hardware-indexable transforms)
  kInvertible,  // core::kInvertibleSubset (x, ~x, xor, xnor)
  kAll,         // core::kAllTransforms (encoder-only; no TT representation)
};

struct FuzzCase {
  Oracle oracle = Oracle::kRoundTrip;
  core::ChainStrategy strategy = core::ChainStrategy::kGreedy;
  int block_size = 5;
  TransformSet transforms = TransformSet::kPaper;
  bits::BitSeq line;                 // kRoundTrip / kCost input
  std::vector<std::uint32_t> words;  // kReplay input
  std::string json_text;             // kJson input (one JSON document)

  std::span<const core::Transform> transform_span() const;

  bool operator==(const FuzzCase&) const = default;
};

std::string_view oracle_name(Oracle oracle);
std::string_view transform_set_name(TransformSet set);

// Text form starting with the "asimt-fuzz-case v1" magic line.
std::string serialize_case(const FuzzCase& c);

// Inverse of serialize_case; throws std::runtime_error with a line-numbered
// diagnostic on malformed input.
FuzzCase parse_case(std::string_view text);

}  // namespace asimt::check
