// Tests for the two-bit-history extension.
#include "core/history2.h"

#include <gtest/gtest.h>

#include "core/block_code.h"

namespace asimt::core {
namespace {

TEST(Transform2, DefaultIsIdentity) {
  const Transform2 t;
  for (int x = 0; x < 2; ++x) {
    for (int y1 = 0; y1 < 2; ++y1) {
      for (int y2 = 0; y2 < 2; ++y2) {
        EXPECT_EQ(t.apply(x, y1, y2), x);
      }
    }
  }
}

TEST(Transform2, TruthTableIndexing) {
  // bit (x + 2 y1 + 4 y2) of the table.
  const Transform2 t{0b10000001};
  EXPECT_EQ(t.apply(0, 0, 0), 1);
  EXPECT_EQ(t.apply(1, 1, 1), 1);
  EXPECT_EQ(t.apply(1, 0, 0), 0);
  EXPECT_EQ(t.apply(0, 1, 1), 0);
}

TEST(DecodeBlockH2, FirstTwoBitsStoredPlain) {
  for (unsigned tt = 0; tt < 256; tt += 17) {
    for (std::uint32_t code = 0; code < 16; ++code) {
      const std::uint32_t word = decode_block_h2(Transform2{tt}, code, 4);
      EXPECT_EQ(word & 3u, code & 3u);
    }
  }
}

TEST(DecodeBlockH2, RecurrenceUsesBothHistoryBits) {
  // τ(x, y1, y2) = y2: each decoded bit equals the bit two positions back.
  Transform2 oldest{0};
  {
    unsigned table = 0;
    for (int x = 0; x < 2; ++x) {
      for (int y1 = 0; y1 < 2; ++y1) {
        for (int y2 = 0; y2 < 2; ++y2) {
          table |= static_cast<unsigned>(y2) << (x + 2 * y1 + 4 * y2);
        }
      }
    }
    oldest = Transform2{table};
  }
  // Seed bits 01 -> decoded stream must repeat with period 2: 1,0,1,0,...
  const std::uint32_t word = decode_block_h2(oldest, 0b000001u, 6);
  EXPECT_EQ(word, 0b010101u);
}

TEST(SolveH2Stats, MatchesH1WhereH2AddsNothing) {
  // At k=4 the extra history cannot help (Fig. in EXPERIMENTS.md): both
  // reach RTN=10.
  const H2CodeStats h2 = solve_h2_stats(4);
  const BlockCode h1 = solve_block_code(4);
  EXPECT_EQ(h2.ttn, h1.ttn());
  EXPECT_EQ(h2.rtn, h1.rtn());
}

TEST(SolveH2Stats, BeatsH1ForLargerBlocks) {
  for (int k = 5; k <= 8; ++k) {
    const H2CodeStats h2 = solve_h2_stats(k);
    const BlockCode h1 = solve_block_code(k);
    EXPECT_EQ(h2.ttn, h1.ttn());
    EXPECT_LT(h2.rtn, h1.rtn()) << "k=" << k;
  }
}

TEST(SolveH2Stats, LosesAtKThree) {
  // Two plain-stored seed bits cost more than one on 3-bit blocks.
  const H2CodeStats h2 = solve_h2_stats(3);
  const BlockCode h1 = solve_block_code(3);
  EXPECT_GT(h2.rtn, h1.rtn());
}

TEST(SolveH2Stats, NeverWorseThanOriginal) {
  for (int k = 2; k <= 8; ++k) {
    const H2CodeStats stats = solve_h2_stats(k);
    EXPECT_LE(stats.rtn, stats.ttn) << k;
    EXPECT_GE(stats.improvement_percent(), 0.0);
  }
}

TEST(SolveH2Stats, RejectsBadSizes) {
  EXPECT_THROW(solve_h2_stats(1), std::invalid_argument);
  EXPECT_THROW(solve_h2_stats(13), std::invalid_argument);
}

TEST(GreedyH2Subset, SmallAndStable) {
  const int size = greedy_h2_subset_size(7);
  EXPECT_GT(size, 6);   // strictly richer than the h=1 core set
  EXPECT_LE(size, 32);  // still a practical control field (<= 5 bits)
  EXPECT_EQ(greedy_h2_subset_size(7), size);  // deterministic
}

}  // namespace
}  // namespace asimt::core
