// Tests for the JSONL -> Chrome Trace Event converter.
#include "telemetry/chrome_trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "telemetry/json.h"
#include "telemetry/trace.h"

namespace asimt::telemetry {
namespace {

// Collects the events of a given ph kind from a converted document.
std::vector<const json::Value*> events_of(const json::Value& doc,
                                          const std::string& ph) {
  std::vector<const json::Value*> out;
  for (const json::Value& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == ph) out.push_back(&e);
  }
  return out;
}

TEST(ChromeTraceTest, MapsBeginEndSpansWithTimestampsAndTids) {
  const char* jsonl =
      "{\"ev\":\"begin\",\"name\":\"workload.fft\",\"depth\":0,\"t_us\":10}\n"
      "{\"ev\":\"begin\",\"name\":\"sweep.k5\",\"depth\":0,\"t_us\":40,"
      "\"tid\":2}\n"
      "{\"ev\":\"end\",\"name\":\"sweep.k5\",\"depth\":0,\"t_us\":90,"
      "\"dur_us\":50,\"tid\":2}\n"
      "{\"ev\":\"end\",\"name\":\"workload.fft\",\"depth\":0,\"t_us\":120,"
      "\"dur_us\":110}\n";
  const json::Value doc = chrome_trace_from_jsonl(jsonl);

  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto begins = events_of(doc, "B");
  const auto ends = events_of(doc, "E");
  ASSERT_EQ(begins.size(), 2u);
  ASSERT_EQ(ends.size(), 2u);

  EXPECT_EQ(begins[0]->at("name").as_string(), "workload.fft");
  EXPECT_EQ(begins[0]->at("ts").as_int(), 10);
  EXPECT_EQ(begins[0]->at("tid").as_int(), 0);  // tid defaults to 0
  EXPECT_EQ(begins[0]->at("pid").as_int(), 1);
  EXPECT_EQ(begins[1]->at("name").as_string(), "sweep.k5");
  EXPECT_EQ(begins[1]->at("tid").as_int(), 2);
  EXPECT_EQ(ends[1]->at("ts").as_int(), 120);
}

TEST(ChromeTraceTest, EmitsProcessAndThreadNameMetadata) {
  const char* jsonl =
      "{\"ev\":\"begin\",\"name\":\"a\",\"depth\":0,\"t_us\":1}\n"
      "{\"ev\":\"begin\",\"name\":\"b\",\"depth\":0,\"t_us\":2,\"tid\":3}\n";
  const json::Value doc = chrome_trace_from_jsonl(jsonl);

  const auto meta = events_of(doc, "M");
  ASSERT_EQ(meta.size(), 3u);  // process_name + two thread_name entries
  EXPECT_EQ(meta[0]->at("name").as_string(), "process_name");
  EXPECT_EQ(meta[0]->at("args").at("name").as_string(), "asimt");
  EXPECT_EQ(meta[1]->at("name").as_string(), "thread_name");
  EXPECT_EQ(meta[1]->at("tid").as_int(), 0);
  EXPECT_EQ(meta[1]->at("args").at("name").as_string(), "main");
  EXPECT_EQ(meta[2]->at("tid").as_int(), 3);
  EXPECT_EQ(meta[2]->at("args").at("name").as_string(), "worker-3");
}

TEST(ChromeTraceTest, InstantEventsCarryExtraFieldsAsArgs) {
  const char* jsonl =
      "{\"ev\":\"instant\",\"name\":\"note\",\"t_us\":7,\"tid\":1,"
      "\"workload\":\"fft\",\"detail\":\"x\"}\n";
  const json::Value doc = chrome_trace_from_jsonl(jsonl);

  const auto instants = events_of(doc, "i");
  ASSERT_EQ(instants.size(), 1u);
  const json::Value& e = *instants[0];
  EXPECT_EQ(e.at("s").as_string(), "t");
  EXPECT_EQ(e.at("ts").as_int(), 7);
  EXPECT_EQ(e.at("tid").as_int(), 1);
  const json::Value& args = e.at("args");
  EXPECT_EQ(args.at("workload").as_string(), "fft");
  EXPECT_EQ(args.at("detail").as_string(), "x");
  EXPECT_EQ(args.find("ev"), nullptr);    // bookkeeping fields excluded
  EXPECT_EQ(args.find("t_us"), nullptr);
}

TEST(ChromeTraceTest, SkipsUnknownKindsAndRejectsMissingEv) {
  const json::Value doc = chrome_trace_from_jsonl(
      "{\"ev\":\"future_kind\",\"name\":\"x\",\"t_us\":1}\n");
  EXPECT_TRUE(events_of(doc, "B").empty());
  EXPECT_TRUE(events_of(doc, "E").empty());

  EXPECT_THROW(chrome_trace_from_jsonl("{\"name\":\"x\",\"t_us\":1}\n"),
               std::runtime_error);
}

TEST(ChromeTraceTest, ConvertsALiveTraceStreamAndRoundTrips) {
  std::ostringstream oss;
  set_trace_stream(&oss);
  {
    TracePhase outer("outer");
    TracePhase inner("inner");
    trace_instant("marker", {{"k", "v"}});
  }
  set_trace_stream(nullptr);

  const json::Value doc = chrome_trace_from_jsonl(oss.str());
  ASSERT_EQ(events_of(doc, "B").size(), 2u);
  ASSERT_EQ(events_of(doc, "E").size(), 2u);
  ASSERT_EQ(events_of(doc, "i").size(), 1u);
  // The converted document survives its own serializer.
  EXPECT_EQ(json::parse(doc.dump(2)), doc);
}

}  // namespace
}  // namespace asimt::telemetry
