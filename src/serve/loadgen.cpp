#include "serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <unordered_map>

#include "obs/manifest.h"
#include "serve/client.h"
#include "telemetry/json.h"

namespace asimt::serve {

namespace {

using Clock = std::chrono::steady_clock;

// SplitMix64: the repo's standard seed-expansion PRNG (check/rng.h uses the
// same construction). Deterministic across platforms.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  // Uniform double in (0, 1] — never 0, so -log() is finite.
  double next_unit() {
    return (static_cast<double>(next() >> 11) + 1.0) / 9007199254740993.0;
  }
};

// The deterministic workload pool: small countdown kernels whose loop bodies
// differ enough that each assembles to a distinct instruction image (its own
// cache entry). Generated, not loaded from disk, so the loadgen needs no
// fixture files and every invocation agrees on the pool.
std::vector<std::string> make_program_pool() {
  std::vector<std::string> pool;
  for (int variant = 0; variant < 6; ++variant) {
    std::string text = ".text\nstart:\n";
    text += "  li $t0, " + std::to_string(17 + 11 * variant) + "\n";
    text += "  li $t1, 0\n";
    text += "loop:\n";
    for (int op = 0; op <= variant; ++op) {
      text += "  addiu $t1, $t1, " + std::to_string(3 + op) + "\n";
    }
    text += "  addiu $t0, $t0, -1\n";
    text += "  bnez $t0, loop\n";
    text += "  halt\n";
    pool.push_back(std::move(text));
  }
  return pool;
}

// Requests are pre-rendered minus the id ("body" = everything after the id
// field), so the per-send cost is one integer format + two appends, not a
// JSON escape of the program text.
std::vector<std::string> make_request_bodies(const LoadgenOptions& options) {
  // Every request opts into the server-side latency echo; the echoed field
  // lives in the reply envelope, outside the cached payload, so this does
  // not disturb the byte-identity contract.
  std::string prefix;
  if (options.deadline_ms > 0) {
    prefix = ",\"deadline_ms\":" + std::to_string(options.deadline_ms);
  }
  prefix += ",\"echo_span\":true";
  std::vector<std::string> bodies;
  const std::vector<std::string> pool = make_program_pool();
  for (const std::string& text : pool) {
    for (int k = 4; k <= 6; ++k) {
      bodies.push_back(prefix + ",\"op\":\"encode\",\"text\":\"" +
                       json::escape(text) + "\",\"k\":" + std::to_string(k) +
                       "}");
    }
  }
  // One verify body per program (k=5) keeps the decode path in the mix.
  for (const std::string& text : pool) {
    bodies.push_back(prefix + ",\"op\":\"verify\",\"text\":\"" +
                     json::escape(text) + "\",\"k\":5}");
  }
  return bodies;
}

struct ConnResult {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t errors = 0;
  std::uint64_t shed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t missed = 0;
  std::uint64_t lost = 0;
  std::uint64_t unmatched = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t ok_replies = 0;
  bool connect_failed = false;
  bool gave_up = false;
  std::vector<double> latencies_ms;
  std::vector<double> server_ms;  // echoed server_ns per reply, as ms
  Clock::time_point last_reply{};
};

// Pulls the echoed "server_ns" integer out of a reply line, if present.
// The envelope is spliced (not re-serialized), so the field, when present,
// is exactly `"server_ns":<digits>`.
bool parse_server_ns(const std::string& reply, std::uint64_t& out) {
  static const std::string kField = "\"server_ns\":";
  const std::size_t pos = reply.find(kField);
  if (pos == std::string::npos) return false;
  std::uint64_t value = 0;
  std::size_t i = pos + kField.size();
  if (i >= reply.size() || reply[i] < '0' || reply[i] > '9') return false;
  for (; i < reply.size() && reply[i] >= '0' && reply[i] <= '9'; ++i) {
    value = value * 10 + static_cast<std::uint64_t>(reply[i] - '0');
  }
  out = value;
  return true;
}

// The reply envelope is spliced with the id first: `{"id":<dump>,...`. Only
// integer ids match a loadgen request; "id":null (the daemon answering an
// injected garbage line) parses false and lands in `unmatched`.
bool parse_reply_id(const std::string& reply, std::uint64_t& out) {
  static const std::string kPrefix = "{\"id\":";
  if (reply.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  std::size_t i = kPrefix.size();
  if (i >= reply.size() || reply[i] < '0' || reply[i] > '9') return false;
  std::uint64_t value = 0;
  for (; i < reply.size() && reply[i] >= '0' && reply[i] <= '9'; ++i) {
    value = value * 10 + static_cast<std::uint64_t>(reply[i] - '0');
  }
  out = value;
  return true;
}

// One loadgen connection: a single poll loop that paces the open-loop
// schedule, drains replies between scheduled instants, and matches each
// reply to its request by id.
void run_connection(const LoadgenOptions& options, unsigned conn_index,
                    const std::vector<std::string>& bodies,
                    Clock::time_point start, ConnResult& result) {
  Client client;
  // The initial connect is deliberately single-attempt: a daemon that was
  // never there fails the run fast and honestly. Only a connection that
  // *worked* and then dropped earns reconnect attempts.
  if (!client.connect(options.socket_path)) {
    result.connect_failed = true;
    return;
  }
  const double per_conn_rate =
      options.rate / static_cast<double>(std::max(1u, options.conns));
  const double mean_gap_s = 1.0 / std::max(1e-6, per_conn_rate);

  // Workload stream: pacing + request picks, byte-compatible with the
  // pre-reconnect loadgen. Backoff stream: separate state, so an outage
  // consumes no workload draws and the request sequence stays deterministic.
  SplitMix64 rng{options.seed ^ (0x9E3779B97F4A7C15ull * (conn_index + 1))};
  SplitMix64 backoff_rng{options.seed ^ 0xB4C0FF5EED5EED5Eull ^
                         (0x9E3779B97F4A7C15ull * (conn_index + 1))};

  std::unordered_map<std::uint64_t, Clock::time_point> inflight;
  bool connected = true;

  auto on_disconnect = [&] {
    // Whatever was in flight will never be answered on this socket.
    result.lost += inflight.size();
    inflight.clear();
    client.close();
    connected = false;
  };

  auto handle_reply = [&](const std::string& reply) {
    const Clock::time_point now = Clock::now();
    std::uint64_t id = 0;
    if (!parse_reply_id(reply, id)) {
      ++result.unmatched;
      return;
    }
    const auto it = inflight.find(id);
    if (it == inflight.end()) {
      ++result.unmatched;
      return;
    }
    const Clock::time_point scheduled = it->second;
    inflight.erase(it);
    ++result.received;
    result.last_reply = now;
    result.latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(now - scheduled).count());
    if (reply.find("\"ok\":true") != std::string::npos) {
      ++result.ok_replies;
    } else if (reply.find("\"kind\":\"overloaded\"") != std::string::npos) {
      ++result.shed;
    } else if (reply.find("\"kind\":\"timeout\"") != std::string::npos) {
      ++result.timeouts;
    } else {
      ++result.errors;
    }
    std::uint64_t server_ns = 0;
    if (parse_server_ns(reply, server_ns)) {
      result.server_ms.push_back(static_cast<double>(server_ns) / 1e6);
    }
  };

  // Bounded full-jitter reconnect; false once the outage exhausted its
  // attempts (the connection is then done for good — `gave_up`).
  auto try_reconnect = [&]() -> bool {
    if (result.gave_up) return false;
    for (unsigned attempt = 0; attempt < options.reconnect_attempts;
         ++attempt) {
      std::uint64_t ceiling = options.reconnect_base_ms;
      for (unsigned i = 0; i < attempt && ceiling < options.reconnect_max_ms;
           ++i) {
        ceiling *= 2;
      }
      ceiling = std::min(ceiling, options.reconnect_max_ms);
      const std::uint64_t sleep_ms =
          ceiling == 0 ? 0 : backoff_rng.next() % (ceiling + 1);
      if (sleep_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
      if (client.connect(options.socket_path)) {
        connected = true;
        ++result.reconnects;
        return true;
      }
    }
    result.gave_up = true;
    return false;
  };

  // Drains replies until `until` (or, when asked, until nothing is in
  // flight); returns false when the connection died.
  auto drain_until = [&](Clock::time_point until,
                         bool stop_when_drained) -> bool {
    while (connected) {
      if (stop_when_drained && inflight.empty()) return true;
      const Clock::time_point now = Clock::now();
      if (now >= until) return true;
      const int wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(until - now)
              .count()) +
          1;
      std::string line;
      switch (client.recv_line_wait(line, wait_ms)) {
        case Client::LineResult::kLine:
          handle_reply(line);
          break;
        case Client::LineResult::kTimeout:
          return true;  // the scheduled instant arrived
        case Client::LineResult::kClosed:
          on_disconnect();
          return false;
      }
    }
    return false;
  };

  const Clock::time_point send_deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.seconds));
  Clock::time_point scheduled = start;
  std::uint64_t seq = 0;
  for (;;) {
    scheduled += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(-std::log(rng.next_unit()) * mean_gap_s));
    const std::uint64_t pick = rng.next();  // drawn unconditionally: the
    // workload sequence is a pure function of the seed, outages included.
    if (scheduled >= send_deadline) break;
    if (connected) {
      drain_until(scheduled, /*stop_when_drained=*/false);
    } else {
      std::this_thread::sleep_until(scheduled);
    }
    if (!connected && !try_reconnect()) {
      // Open loop: a send slot inside an outage is *missed*, not deferred —
      // no burst of stale requests when the daemon comes back.
      ++result.missed;
      ++seq;  // the id space also stays a pure function of the schedule
      continue;
    }
    std::this_thread::sleep_until(scheduled);
    const std::string& body = bodies[pick % bodies.size()];
    const std::uint64_t id =
        static_cast<std::uint64_t>(conn_index) * 1'000'000'000ull + seq++;
    if (!client.send_line("{\"id\":" + std::to_string(id) + body)) {
      on_disconnect();
      ++result.missed;
      continue;
    }
    inflight.emplace(id, scheduled);
    ++result.sent;
  }

  // Drain stragglers past the send window, bounded: a daemon that stopped
  // replying costs drain_seconds, not forever.
  const Clock::time_point drain_deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(options.drain_seconds));
  if (connected && !inflight.empty()) {
    drain_until(drain_deadline, /*stop_when_drained=*/true);
  }
  result.lost += inflight.size();
  inflight.clear();
  client.close();
}

json::Value stats_row(const std::string& name, double median,
                      std::uint64_t count) {
  json::Value stats = json::Value::object();
  stats.set("median", median);
  stats.set("count", static_cast<long long>(count));
  json::Value row = json::Value::object();
  row.set("name", name);
  row.set("stats", std::move(stats));
  return row;
}

}  // namespace

double interpolated_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  // Type-7 (the R/NumPy default): rank h = (n-1)q, linear between the two
  // covering order statistics. The old ceil-rank selection returned the max
  // for every q > (n-1)/n, which made p99.9 meaningless below 1000 samples.
  const double h = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(h);
  const double frac = h - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

LoadgenReport run_loadgen(const LoadgenOptions& options) {
  const std::vector<std::string> bodies = make_request_bodies(options);
  const unsigned conns = std::max(1u, options.conns);
  std::vector<ConnResult> results(conns);
  // A common start instant slightly in the future so every connection's
  // schedule begins together (connection setup cost stays off the clock).
  const Clock::time_point start =
      Clock::now() + std::chrono::milliseconds(20);
  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (unsigned c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      run_connection(options, c, bodies, start, results[c]);
    });
  }
  for (std::thread& thread : threads) thread.join();

  LoadgenReport report;
  std::uint64_t ok_replies = 0;
  std::vector<double> latencies;
  std::vector<double> server;
  Clock::time_point last_reply = start;
  for (const ConnResult& result : results) {
    report.sent += result.sent;
    report.received += result.received;
    report.errors += result.errors;
    report.shed += result.shed;
    report.timeouts += result.timeouts;
    report.missed_sends += result.missed;
    report.lost += result.lost;
    report.unmatched += result.unmatched;
    report.reconnects += result.reconnects;
    ok_replies += result.ok_replies;
    if (result.connect_failed) ++report.connect_failures;
    if (result.gave_up) ++report.conns_gave_up;
    latencies.insert(latencies.end(), result.latencies_ms.begin(),
                     result.latencies_ms.end());
    server.insert(server.end(), result.server_ms.begin(),
                  result.server_ms.end());
    if (result.received > 0 && result.last_reply > last_reply) {
      last_reply = result.last_reply;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  std::sort(server.begin(), server.end());
  report.elapsed_seconds =
      std::chrono::duration<double>(last_reply - start).count();
  if (report.elapsed_seconds > 0.0) {
    report.throughput_rps =
        static_cast<double>(report.received) / report.elapsed_seconds;
    report.goodput_rps =
        static_cast<double>(ok_replies) / report.elapsed_seconds;
    report.attempted_rps =
        static_cast<double>(report.sent + report.missed_sends) /
        report.elapsed_seconds;
  }
  report.p50_ms = interpolated_quantile(latencies, 0.50);
  report.p90_ms = interpolated_quantile(latencies, 0.90);
  report.p99_ms = interpolated_quantile(latencies, 0.99);
  report.p999_ms = interpolated_quantile(latencies, 0.999);
  report.max_ms = latencies.empty() ? 0.0 : latencies.back();
  if (!latencies.empty()) {
    double sum = 0.0;
    for (const double v : latencies) sum += v;
    report.mean_ms = sum / static_cast<double>(latencies.size());
  }
  report.server_samples = server.size();
  report.server_p50_ms = interpolated_quantile(server, 0.50);
  report.server_p90_ms = interpolated_quantile(server, 0.90);
  report.server_p99_ms = interpolated_quantile(server, 0.99);
  report.server_p999_ms = interpolated_quantile(server, 0.999);
  report.server_max_ms = server.empty() ? 0.0 : server.back();
  if (!server.empty()) {
    double sum = 0.0;
    for (const double v : server) sum += v;
    report.server_mean_ms = sum / static_cast<double>(server.size());
  }
  return report;
}

json::Value loadgen_artifact(const LoadgenOptions& options,
                             const LoadgenReport& report) {
  json::Value doc = json::Value::object();
  doc.set("schema_version", 2);
  doc.set("bench", "serve_loadgen");
  json::Value opts = json::Value::object();
  opts.set("conns", options.conns);
  opts.set("rate", options.rate);
  opts.set("seconds", options.seconds);
  opts.set("seed", options.seed);
  opts.set("deadline_ms", options.deadline_ms);
  doc.set("options", std::move(opts));
  json::Value summary = json::Value::object();
  summary.set("sent", report.sent);
  summary.set("received", report.received);
  summary.set("errors", report.errors);
  summary.set("shed", report.shed);
  summary.set("timeouts", report.timeouts);
  summary.set("connect_failures", report.connect_failures);
  summary.set("missed_sends", report.missed_sends);
  summary.set("lost", report.lost);
  summary.set("unmatched", report.unmatched);
  summary.set("reconnects", report.reconnects);
  summary.set("conns_gave_up", report.conns_gave_up);
  summary.set("elapsed_seconds", report.elapsed_seconds);
  summary.set("throughput_rps", report.throughput_rps);
  summary.set("goodput_rps", report.goodput_rps);
  summary.set("attempted_rps", report.attempted_rps);
  // Server-observed latency rides in the summary (not the gated benchmark
  // rows): it is context for reading the client-observed numbers, with the
  // client-minus-server gap isolating queueing + transport.
  json::Value server = json::Value::object();
  server.set("samples", report.server_samples);
  server.set("p50_ms", report.server_p50_ms);
  server.set("p90_ms", report.server_p90_ms);
  server.set("p99_ms", report.server_p99_ms);
  server.set("p999_ms", report.server_p999_ms);
  server.set("max_ms", report.server_max_ms);
  server.set("mean_ms", report.server_mean_ms);
  summary.set("server_latency", std::move(server));
  doc.set("summary", std::move(summary));
  json::Value rows = json::Value::array();
  rows.push_back(stats_row("latency/p50", report.p50_ms, report.received));
  rows.push_back(stats_row("latency/p90", report.p90_ms, report.received));
  rows.push_back(stats_row("latency/p99", report.p99_ms, report.received));
  rows.push_back(stats_row("latency/p999", report.p999_ms, report.received));
  // Throughput in gate-friendly lower-is-better form: ns per request. The
  // human-readable requests/second lives in "summary". goodput_time_ns
  // counts only "ok":true replies — under overload or chaos it diverges
  // from req_time_ns by exactly the shed/timeout/error toll.
  rows.push_back(stats_row(
      "req_time_ns",
      report.throughput_rps > 0.0 ? 1e9 / report.throughput_rps : 0.0,
      report.received));
  rows.push_back(stats_row(
      "goodput_time_ns",
      report.goodput_rps > 0.0 ? 1e9 / report.goodput_rps : 0.0,
      report.received));
  doc.set("benchmarks", std::move(rows));
  obs::embed_manifest(doc, obs::ManifestFields::kFull);
  return doc;
}

std::string format_report(const LoadgenReport& report) {
  char buffer[1024];
  int n = std::snprintf(
      buffer, sizeof(buffer),
      "sent %llu  received %llu  errors %llu  shed %llu  timeouts %llu  "
      "connect_failures %llu\n"
      "missed %llu  lost %llu  unmatched %llu  reconnects %llu  "
      "gave_up %llu\n"
      "elapsed %.3f s  throughput %.0f req/s  goodput %.0f req/s  "
      "attempted %.0f req/s\n"
      "client ms   p50 %.3f  p90 %.3f  p99 %.3f  p99.9 %.3f  "
      "max %.3f  mean %.3f\n",
      static_cast<unsigned long long>(report.sent),
      static_cast<unsigned long long>(report.received),
      static_cast<unsigned long long>(report.errors),
      static_cast<unsigned long long>(report.shed),
      static_cast<unsigned long long>(report.timeouts),
      static_cast<unsigned long long>(report.connect_failures),
      static_cast<unsigned long long>(report.missed_sends),
      static_cast<unsigned long long>(report.lost),
      static_cast<unsigned long long>(report.unmatched),
      static_cast<unsigned long long>(report.reconnects),
      static_cast<unsigned long long>(report.conns_gave_up),
      report.elapsed_seconds, report.throughput_rps, report.goodput_rps,
      report.attempted_rps, report.p50_ms, report.p90_ms, report.p99_ms,
      report.p999_ms, report.max_ms, report.mean_ms);
  if (n > 0 && report.server_samples > 0 &&
      static_cast<std::size_t>(n) < sizeof(buffer)) {
    std::snprintf(buffer + n, sizeof(buffer) - static_cast<std::size_t>(n),
                  "server ms   p50 %.3f  p90 %.3f  p99 %.3f  p99.9 %.3f  "
                  "max %.3f  mean %.3f  (echoed by %llu replies; "
                  "client - server = queueing + transport)\n",
                  report.server_p50_ms, report.server_p90_ms,
                  report.server_p99_ms, report.server_p999_ms,
                  report.server_max_ms, report.server_mean_ms,
                  static_cast<unsigned long long>(report.server_samples));
  }
  return buffer;
}

}  // namespace asimt::serve
