#include "obsv/recorder.h"

#include <cstdio>

#include "obs/manifest.h"

namespace asimt::obsv {

Recorder::Recorder(const RecorderOptions& options) : options_(options) {
  if (!options_.enabled) return;
  if (!options_.flight_path.empty()) {
    flight_ = std::make_unique<FlightRecorder>(options_.flight_path,
                                               options_.ring_capacity);
  }
  if (options_.slow_ms > 0 && !options_.slow_log_path.empty()) {
    slow_log_.open(options_.slow_log_path, std::ios::out | std::ios::trunc);
    if (slow_log_) {
      // Header row carries the run manifest so a slow-log file is
      // self-describing provenance-wise, like every other artifact.
      json::Value header = json::Value::object();
      header.set("asimt_slow_log", 1);
      header.set("slow_ms", options_.slow_ms);
      obs::embed_manifest(header, obs::ManifestFields::kFull);
      slow_log_ << header.dump() << "\n" << std::flush;
      slow_log_open_ = true;
    } else {
      std::fprintf(stderr, "asimt: cannot open slow log %s\n",
                   options_.slow_log_path.c_str());
    }
  }
}

SpanRing* Recorder::acquire_ring(std::uint64_t conn_id) {
  return flight_ ? flight_->acquire_ring(conn_id) : nullptr;
}

void Recorder::release_ring(SpanRing* ring) {
  if (flight_ && ring != nullptr) flight_->release_ring(ring);
}

void Recorder::observe(const Span& span) {
  if (!options_.enabled) return;
  latency_.observe(static_cast<Op>(span.op), static_cast<Outcome>(span.outcome),
                   span.total_ns());
}

bool Recorder::is_slow(const Span& span) const {
  return options_.enabled && options_.slow_ms > 0 &&
         span.total_ns() >= options_.slow_ms * 1'000'000ull;
}

void Recorder::record(const Span& span, SpanRing* ring) {
  if (!options_.enabled) return;
  if (ring != nullptr) ring->push(span);
  if (slow_log_open_ && is_slow(span)) {
    const std::string row = span_to_json(span).dump();
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow_log_ << row << "\n" << std::flush;  // flush-per-line: crash-visible
  }
}

}  // namespace asimt::obsv
