// Fault-injection tests: corrupting any part of the decode state must be
// observable — this guards against vacuously-passing restoration tests and
// documents what each hardware field actually does.
#include <gtest/gtest.h>

#include <random>

#include "core/fetch_decoder.h"
#include "core/program_encoder.h"

namespace asimt::core {
namespace {

struct Encoded {
  BlockEncoding enc;
  TtConfig tt;
  std::vector<BbitEntry> bbit;
};

Encoded make_encoded(std::uint32_t seed, int k = 5, std::size_t m = 13) {
  std::mt19937 rng(seed);
  std::vector<std::uint32_t> words(m);
  for (auto& w : words) w = rng();
  ChainOptions options;
  options.block_size = k;
  Encoded e;
  e.enc = encode_basic_block(words, 0x1000, options);
  e.tt = TtConfig{k, e.enc.tt_entries};
  e.bbit = {BbitEntry{0x1000, 0}};
  return e;
}

// Replays the block; returns the number of words restored incorrectly.
std::size_t mismatches(const Encoded& e, const TtConfig& tt,
                       const std::vector<BbitEntry>& bbit) {
  FetchDecoder decoder(tt, bbit);
  std::size_t bad = 0;
  for (std::size_t i = 0; i < e.enc.encoded_words.size(); ++i) {
    const std::uint32_t pc = 0x1000 + 4 * static_cast<std::uint32_t>(i);
    bad += decoder.feed(pc, e.enc.encoded_words[i]) != e.enc.original_words[i];
  }
  return bad;
}

TEST(FaultInjection, CleanStateRestoresEverything) {
  const Encoded e = make_encoded(1);
  EXPECT_EQ(mismatches(e, e.tt, e.bbit), 0u);
}

TEST(FaultInjection, CorruptedTransformIndexIsObservable) {
  // Flipping any line's tau index in any entry must corrupt at least one
  // word — unless the flipped transform happens to act identically on that
  // line's bits, which the encoder's tie-breaking makes rare; require that
  // MOST injections are caught and none crash.
  const Encoded e = make_encoded(2);
  std::size_t observed = 0, injections = 0;
  for (std::size_t entry = 0; entry < e.tt.entries.size(); ++entry) {
    for (unsigned line = 0; line < kBusLines; line += 5) {
      TtConfig corrupt = e.tt;
      corrupt.entries[entry].tau[line] =
          static_cast<std::uint8_t>((corrupt.entries[entry].tau[line] + 1) % 8);
      ++injections;
      observed += mismatches(e, corrupt, e.bbit) > 0;
    }
  }
  EXPECT_GT(observed * 2, injections);  // most faults detected
}

TEST(FaultInjection, CorruptedCtMissesTheBlockEnd) {
  const Encoded e = make_encoded(3);
  TtConfig corrupt = e.tt;
  corrupt.entries.back().ct = static_cast<std::uint8_t>(
      corrupt.entries.back().ct + 2);
  FetchDecoder decoder(corrupt, e.bbit);
  // With an inflated tail counter the decoder misses the block end: it is
  // either still in encoded mode after the last real word, or it already
  // tripped the run-past-the-TT guard at a block boundary.
  bool ran_past_tt = false;
  try {
    for (std::size_t i = 0; i < e.enc.encoded_words.size(); ++i) {
      decoder.feed(0x1000 + 4 * static_cast<std::uint32_t>(i),
                   e.enc.encoded_words[i]);
    }
  } catch (const DecodeFault&) {
    ran_past_tt = true;
  }
  EXPECT_TRUE(ran_past_tt || decoder.in_encoded_mode());
}

TEST(FaultInjection, ClearedEndBitRunsPastTheTable) {
  const Encoded e = make_encoded(4, 4, 6);  // 2 TT entries
  TtConfig corrupt = e.tt;
  corrupt.entries.back().end = false;
  FetchDecoder decoder(corrupt, e.bbit);
  // Feeding enough sequential words must eventually run past the TT — and
  // the structured fault must carry the coordinates of the failure so a
  // campaign (or a trap handler) can attribute it.
  bool trapped = false;
  try {
    for (std::uint32_t i = 0; i < 64; ++i) {
      decoder.feed(0x1000 + 4 * i, 0);
    }
  } catch (const DecodeFault& fault) {
    trapped = true;
    EXPECT_EQ(fault.tt_index(), e.tt.entries.size());
    EXPECT_GE(fault.pc(), 0x1000u);
    EXPECT_NE(std::string(fault.what()).find("TT entry"), std::string::npos);
  }
  EXPECT_TRUE(trapped);
}

TEST(FaultInjection, OutOfRangeTauIndexRejectedAtConstruction) {
  // A τ index wider than 3 bits cannot come off the wire format; a decoder
  // handed such a table must fail with the entry/line coordinates instead of
  // indexing past the 8-transform subset (UB before the hardening).
  const Encoded e = make_encoded(7);
  TtConfig corrupt = e.tt;
  corrupt.entries[1].tau[17] = 9;
  bool rejected = false;
  try {
    FetchDecoder decoder(corrupt, e.bbit);
  } catch (const DecodeFault& fault) {
    rejected = true;
    EXPECT_EQ(fault.tt_index(), 1u);
    EXPECT_EQ(fault.line(), 17);
    EXPECT_NE(std::string(fault.what()).find("entry 1"), std::string::npos);
    EXPECT_NE(std::string(fault.what()).find("line 17"), std::string::npos);
  }
  EXPECT_TRUE(rejected);
}

TEST(FaultInjection, TruncatedTtPayloadFailsWithCoordinates) {
  // Dropping the tail TT entry (a truncated payload) leaves the E/CT chain
  // pointing past the table; the decoder must raise a structured DecodeFault
  // naming the missing entry, not crash or decode garbage.
  const Encoded e = make_encoded(8, 4, 12);
  ASSERT_GE(e.tt.entries.size(), 2u);
  TtConfig truncated = e.tt;
  truncated.entries.pop_back();
  truncated.entries.back().end = false;  // the chain expects a successor
  FetchDecoder decoder(truncated, e.bbit);
  bool trapped = false;
  try {
    for (std::size_t i = 0; i < e.enc.encoded_words.size(); ++i) {
      decoder.feed(0x1000 + 4 * static_cast<std::uint32_t>(i),
                   e.enc.encoded_words[i]);
    }
  } catch (const DecodeFault& fault) {
    trapped = true;
    EXPECT_EQ(fault.tt_index(), truncated.entries.size());
  }
  EXPECT_TRUE(trapped);
}

TEST(FaultInjection, WrongBbitPcMeansRawPassthrough) {
  const Encoded e = make_encoded(5);
  std::vector<BbitEntry> corrupt = {BbitEntry{0x2000, 0}};  // wrong address
  // Every encoded word passes through untouched; any word the encoder
  // actually transformed shows up as a mismatch.
  std::size_t transformed = 0;
  for (std::size_t i = 0; i < e.enc.encoded_words.size(); ++i) {
    transformed += e.enc.encoded_words[i] != e.enc.original_words[i];
  }
  ASSERT_GT(transformed, 0u);
  EXPECT_EQ(mismatches(e, e.tt, corrupt), transformed);
}

TEST(FaultInjection, SingleBusBitErrorPropagatesOnlyWithinItsLineAndBlock) {
  // A transient bus flip corrupts the word it hits and possibly later words
  // of the same k-block (history feedback), but never other lines and never
  // past the next history reload from the raw bus.
  const Encoded e = make_encoded(6, 4, 12);
  for (std::size_t hit = 0; hit < e.enc.encoded_words.size(); ++hit) {
    FetchDecoder clean(e.tt, e.bbit);
    FetchDecoder faulty(e.tt, e.bbit);
    const unsigned line = 7;
    for (std::size_t i = 0; i < e.enc.encoded_words.size(); ++i) {
      const std::uint32_t pc = 0x1000 + 4 * static_cast<std::uint32_t>(i);
      const std::uint32_t word = e.enc.encoded_words[i];
      const std::uint32_t bad_word = i == hit ? word ^ (1u << line) : word;
      const std::uint32_t a = clean.feed(pc, word);
      const std::uint32_t b = faulty.feed(pc, bad_word);
      // Other lines stay untouched.
      EXPECT_EQ(a & ~(1u << line), b & ~(1u << line)) << hit << " " << i;
      // Words before the hit are identical.
      if (i < hit) EXPECT_EQ(a, b);
    }
  }
}

}  // namespace
}  // namespace asimt::core
