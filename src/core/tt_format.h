// Wire format for Transformation Table entries.
//
// A TT entry is 100 bits of hardware state (32 lines x 3-bit transform
// index, the E delimiter, the 3-bit CT tail counter). Both reprogramming
// paths of §7.1 move entries as four 32-bit words:
//
//   word 0  lines  0..9   (3 bits each, line 0 in bits [2:0])
//   word 1  lines 10..19
//   word 2  lines 20..29
//   word 3  bits [5:0] = lines 30..31, bit 6 = E, bits [11:7] = CT (5 bits: tails up to the max block size 16)
//
// The firmware-image loader (core/image.h) and the memory-mapped decoder
// peripheral (sim/decoder_port.h) share this packing.
#pragma once

#include <array>
#include <cstdint>

#include "core/hw_tables.h"

namespace asimt::core {

inline constexpr std::size_t kTtEntryWords = 4;

constexpr std::array<std::uint32_t, kTtEntryWords> pack_tt_entry(
    const TtEntry& entry) {
  std::array<std::uint32_t, kTtEntryWords> words{};
  for (unsigned line = 0; line < kBusLines; ++line) {
    const std::uint32_t tau = entry.tau[line] & 0x7u;
    words[line / 10] |= tau << (3 * (line % 10));
  }
  words[3] |= static_cast<std::uint32_t>(entry.end ? 1 : 0) << 6;
  words[3] |= static_cast<std::uint32_t>(entry.ct & 0x1Fu) << 7;
  return words;
}

constexpr TtEntry unpack_tt_entry(
    const std::array<std::uint32_t, kTtEntryWords>& words) {
  TtEntry entry;
  for (unsigned line = 0; line < kBusLines; ++line) {
    entry.tau[line] =
        static_cast<std::uint8_t>((words[line / 10] >> (3 * (line % 10))) & 0x7u);
  }
  entry.end = ((words[3] >> 6) & 1u) != 0;
  entry.ct = static_cast<std::uint8_t>((words[3] >> 7) & 0x1Fu);
  return entry;
}

}  // namespace asimt::core
