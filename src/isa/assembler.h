// Two-pass assembler for the ASIMT ISA.
//
// Stands in for the SimpleScalar cross-toolchain: the six paper workloads are
// written in this assembly dialect and assembled into binary images that the
// simulator executes and the encoder transforms.
//
// Dialect (MIPS-flavoured):
//   .text [addr]   switch to text section (default base 0x00400000)
//   .data [addr]   switch to data section (default base 0x10000000)
//   .word  v,...   32-bit values (numbers or labels)
//   .float f,...   IEEE-754 single values
//   .space n       n zero bytes
//   .align n       pad to 2^n boundary
//   label:         define a label in the current section
//   # or ;         comment to end of line
//
// Pseudo-instructions: nop, halt (= break), move, li, la, li.s, b, beqz,
// bnez, blt, bgt, ble, bge, mul, neg, not, subi.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace asimt::isa {

// An assembled binary image.
struct Program {
  std::uint32_t text_base = 0;
  std::vector<std::uint32_t> text;  // one word per instruction
  std::uint32_t data_base = 0;
  std::vector<std::uint8_t> data;
  std::map<std::string, std::uint32_t> symbols;

  std::uint32_t entry() const { return text_base; }
  std::uint32_t text_end() const {
    return text_base + 4 * static_cast<std::uint32_t>(text.size());
  }
  // Address of `label`; throws std::out_of_range if undefined.
  std::uint32_t symbol(const std::string& label) const;
};

struct AssemblerOptions {
  std::uint32_t text_base = 0x00400000;
  std::uint32_t data_base = 0x10000000;
};

// Thrown on any syntax or semantic error; carries the 1-based source line.
class AssemblyError : public std::runtime_error {
 public:
  AssemblyError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

Program assemble(std::string_view source, AssemblerOptions options = {});

}  // namespace asimt::isa
