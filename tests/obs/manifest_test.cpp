// Tests for the RunManifest: capture sanity, round-trip through the
// telemetry JSON parser, and the stable view's field omissions (the
// determinism contract for stdout artifacts).
#include "obs/manifest.h"

#include <gtest/gtest.h>

#include "telemetry/json.h"

namespace asimt::obs {
namespace {

TEST(ManifestTest, CaptureHasBuildAndMachineIdentity) {
  const RunManifest& m = run_manifest();
  EXPECT_EQ(m.schema_version, kBenchSchemaVersion);
  EXPECT_FALSE(m.git_sha.empty());
  EXPECT_FALSE(m.compiler.empty());
  EXPECT_FALSE(m.build_type.empty());
  EXPECT_FALSE(m.hostname.empty());
  EXPECT_FALSE(m.cpu_model.empty());
  EXPECT_GE(m.cores, 1);
  EXPECT_GE(m.jobs, 1u);
  // ISO 8601 UTC: "YYYY-MM-DDThh:mm:ssZ".
  ASSERT_EQ(m.timestamp_utc.size(), 20u);
  EXPECT_EQ(m.timestamp_utc[10], 'T');
  EXPECT_EQ(m.timestamp_utc.back(), 'Z');
}

TEST(ManifestTest, CaptureIsCachedPerProcess) {
  EXPECT_EQ(&run_manifest(), &run_manifest());
}

TEST(ManifestTest, FullViewRoundTripsThroughParser) {
  const RunManifest& m = run_manifest();
  const json::Value serialized = to_json(m, ManifestFields::kFull);
  const RunManifest back = manifest_from_json(json::parse(serialized.dump()));
  EXPECT_EQ(back.schema_version, m.schema_version);
  EXPECT_EQ(back.git_sha, m.git_sha);
  EXPECT_EQ(back.git_dirty, m.git_dirty);
  EXPECT_EQ(back.compiler, m.compiler);
  EXPECT_EQ(back.cxx_flags, m.cxx_flags);
  EXPECT_EQ(back.build_type, m.build_type);
  EXPECT_EQ(back.hostname, m.hostname);
  EXPECT_EQ(back.cpu_model, m.cpu_model);
  EXPECT_EQ(back.cores, m.cores);
  EXPECT_EQ(back.jobs, m.jobs);
  EXPECT_EQ(back.timestamp_utc, m.timestamp_utc);
}

TEST(ManifestTest, StableViewOmitsVolatileFields) {
  const json::Value stable = to_json(run_manifest(), ManifestFields::kStable);
  EXPECT_EQ(stable.find("jobs"), nullptr);
  EXPECT_EQ(stable.find("timestamp_utc"), nullptr);
  // Everything reproducible stays.
  EXPECT_NE(stable.find("git_sha"), nullptr);
  EXPECT_NE(stable.find("compiler"), nullptr);
  EXPECT_NE(stable.find("cpu_model"), nullptr);
}

TEST(ManifestTest, StableViewStillParses) {
  // Missing volatile fields come back as defaults, not a parse error.
  const json::Value stable = to_json(run_manifest(), ManifestFields::kStable);
  const RunManifest back = manifest_from_json(json::parse(stable.dump()));
  EXPECT_EQ(back.git_sha, run_manifest().git_sha);
  EXPECT_EQ(back.jobs, 0u);
  EXPECT_TRUE(back.timestamp_utc.empty());
}

TEST(ManifestTest, EmbedManifestSetsDocumentKey) {
  json::Value doc = json::Value::object();
  doc.set("bench", "example");
  embed_manifest(doc);
  const json::Value* m = doc.find("manifest");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->at("git_sha").as_string(), run_manifest().git_sha);
  EXPECT_NE(m->find("timestamp_utc"), nullptr);

  json::Value stable_doc = json::Value::object();
  embed_manifest(stable_doc, ManifestFields::kStable);
  EXPECT_EQ(stable_doc.at("manifest").find("timestamp_utc"), nullptr);
}

}  // namespace
}  // namespace asimt::obs
