// The reprogrammable decode-side tables of the paper's hardware architecture
// (§7.2, Fig. 5): the Transformation Table (TT) and the Basic Block
// Identification Table (BBIT).
//
// One TT entry holds, for a single k-instruction block position, the 3-bit
// transformation index of every one of the 32 bus lines, plus the E
// (end-of-basic-block) delimiter and the CT tail-length counter. A BBIT
// entry maps a basic block's starting PC to its first TT entry.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/transform.h"

namespace asimt::core {

inline constexpr unsigned kBusLines = 32;
inline constexpr unsigned kTauIndexBits = 3;  // indexes kPaperSubset

struct TtEntry {
  // kPaperSubset index per bus line (Fig. 5a's per-line control fields).
  std::array<std::uint8_t, kBusLines> tau{};
  bool end = false;     // E: this entry covers the block's tail sequence
  std::uint8_t ct = 0;  // tail length in instructions, read only when E set

  Transform transform(unsigned line) const {
    return kPaperSubset[tau[line] & ((1u << kTauIndexBits) - 1)];
  }

  bool operator==(const TtEntry&) const = default;
};

// The TT contents for one application loop, plus the block size the encoder
// used (a fixed hardware parameter in a real implementation).
struct TtConfig {
  int block_size = 5;
  std::vector<TtEntry> entries;

  // Storage cost of one entry in bits: 32 lines x 3 bits + E + CT.
  static constexpr unsigned entry_bits() {
    return kBusLines * kTauIndexBits + 1 + 3;
  }

  bool operator==(const TtConfig&) const = default;
};

// Even parity over every stored bit of one TT entry (the 3-bit τ index of
// all 32 lines, E, and the 5-bit CT field of the wire format). A protected
// implementation keeps one extra flip-flop per entry holding this value at
// provisioning time; recomputing it at decode time detects any odd number of
// upset bits in the entry (docs/RESILIENCE.md, "TT parity").
constexpr int tt_entry_parity(const TtEntry& entry) {
  unsigned acc = 0;
  for (unsigned line = 0; line < kBusLines; ++line) {
    acc ^= entry.tau[line] & ((1u << kTauIndexBits) - 1);
  }
  acc ^= entry.end ? 1u : 0u;
  acc ^= entry.ct & 0x1Fu;
  acc ^= acc >> 4;
  acc ^= acc >> 2;
  acc ^= acc >> 1;
  return static_cast<int>(acc & 1u);
}

struct BbitEntry {
  std::uint32_t pc = 0;        // starting PC of the basic block
  std::uint16_t tt_index = 0;  // first TT entry for that block

  bool operator==(const BbitEntry&) const = default;
};

// TT entries needed for a basic block of `instructions` instructions with
// one-bit overlap between consecutive k-blocks (DESIGN.md §6 rule 7).
constexpr int tt_entries_for(std::size_t instructions, int block_size) {
  if (instructions == 0) return 0;
  const std::size_t k = static_cast<std::size_t>(block_size);
  if (instructions <= k) return 1;
  const std::size_t extra = instructions - k;
  const std::size_t step = k - 1;
  return 1 + static_cast<int>((extra + step - 1) / step);
}

}  // namespace asimt::core
