#!/bin/sh
# Seeded chaos campaign for the serving stack (docs/SERVING.md § Resilience):
# boot the daemon, park the fault-injecting proxy in front of it, drive a
# deadline-carrying open-loop load through the faults, then prove the
# overload-protection contract held:
#   - the daemon never crashed or wedged (it still answers, then drains
#     cleanly on SIGTERM with exit 0);
#   - the loadgen exits 0 — faults are degradation it quantifies, not
#     failure — and its artifact carries the goodput-vs-attempted gap;
#   - the proxy injected at least <min-faults> faults (the campaign actually
#     exercised something) and its drain summary accounts for them;
#   - every shed/timeout is visible in the `stats` overload counters.
# Byte-identity of surviving replies is pinned by tests/serve/chaos_test.cpp;
# this lane is the process-level endurance half of the same contract.
# usage: chaos_campaign.sh <asimt-binary> [min-faults] [seconds] [rate] [seed]
set -u

asimt="$1"
min_faults="${2:-300}"
seconds="${3:-1.5}"
rate="${4:-1200}"
seed="${5:-42}"
tmp="${TMPDIR:-/tmp}/chaos_campaign_$$"
mkdir -p "$tmp" || exit 1
sock="$tmp/daemon.sock"
chaos_sock="$tmp/chaos.sock"
server_pid=
chaos_pid=
trap 'test -n "$server_pid" && kill "$server_pid" 2>/dev/null;
      test -n "$chaos_pid" && kill "$chaos_pid" 2>/dev/null;
      rm -rf "$tmp"' EXIT

fail() {
  echo "FAIL: $*"
  sed 's/^/  serve stderr: /' "$tmp/serve_err" 2>/dev/null
  sed 's/^/  chaos stderr: /' "$tmp/chaos_err" 2>/dev/null
  sed 's/^/  loadgen: /' "$tmp/loadgen_out" 2>/dev/null
  exit 1
}

wait_ready() {
  # wait_ready <pid> <logfile> <name>
  tries=0
  until grep -q "listening on" "$2" 2>/dev/null; do
    kill -0 "$1" 2>/dev/null || fail "$3 died before readiness"
    tries=$((tries + 1))
    [ "$tries" -gt 100 ] && fail "$3 never became ready"
    sleep 0.1
  done
}

# Overload protection armed: bounded inflight, bounded queue, short request
# timeout — the campaign must light the shed/timeout counters, not avoid them.
"$asimt" serve --socket "$sock" --max-inflight 4 --queue-depth 8 \
  --queue-timeout-ms 100 --request-timeout-ms 2000 --retry-after-ms 25 \
  >"$tmp/serve_out" 2>"$tmp/serve_err" &
server_pid=$!
wait_ready "$server_pid" "$tmp/serve_out" "daemon"

"$asimt" chaos --listen "$chaos_sock" --upstream "$sock" --seed "$seed" \
  --gap-bytes 96 --stall-ms 5 --chop-bytes 32 \
  >"$tmp/chaos_out" 2>"$tmp/chaos_err" &
chaos_pid=$!
wait_ready "$chaos_pid" "$tmp/chaos_out" "chaos proxy"

# The load rides *through* the proxy, with per-request deadlines so the
# daemon sheds slow work instead of the client timing out blind. Exit 0 is
# part of the contract: mid-run drops reconnect, losses are counted rows.
"$asimt" loadgen --socket "$chaos_sock" --conns 4 --rate "$rate" \
  --seconds "$seconds" --seed "$seed" --deadline-ms 2000 \
  --out "$tmp/BENCH_chaos_loadgen.json" >"$tmp/loadgen_out" 2>&1 \
  || fail "loadgen exited nonzero under chaos: $(cat "$tmp/loadgen_out")"
grep -q "goodput" "$tmp/loadgen_out" || fail "loadgen summary lacks goodput"
grep -q '"goodput_time_ns"' "$tmp/BENCH_chaos_loadgen.json" \
  || fail "artifact lacks the goodput gate row"
grep -q '"reconnects"' "$tmp/BENCH_chaos_loadgen.json" \
  || fail "artifact lacks the reconnect accounting"

# The daemon behind the campaign is alive and its overload ledger is
# queryable — a wedged or crashed daemon fails right here.
"$asimt" stats --socket "$sock" --json >"$tmp/stats.json" 2>&1 \
  || fail "daemon unresponsive after the campaign"
grep -q '"overload"' "$tmp/stats.json" \
  || fail "stats snapshot lacks the overload block"
grep -q 'read_timeouts' "$tmp/stats.json" \
  || fail "stats snapshot lacks socket-timeout counters"

# Proxy drain: SIGTERM, exit 0, and a fault ledger big enough to mean the
# campaign actually exercised the fault paths.
kill -TERM "$chaos_pid"
wait "$chaos_pid"
chaos_rc=$?
chaos_pid=
[ "$chaos_rc" -eq 0 ] || fail "chaos proxy exited $chaos_rc after SIGTERM"
grep -q "drained:" "$tmp/chaos_out" || fail "no chaos drain summary"
faults=$(sed -n 's/.*faults: \([0-9]*\) chop, \([0-9]*\) stall, \([0-9]*\) garbage, \([0-9]*\) disconnect.*/\1 \2 \3 \4/p' \
  "$tmp/chaos_out" | awk '{ print $1 + $2 + $3 + $4 }')
[ -n "$faults" ] || fail "could not parse the fault ledger"
[ "$faults" -ge "$min_faults" ] \
  || fail "only $faults faults injected, want >= $min_faults (raise --seconds/--rate)"

# Daemon drain: SIGTERM, exit 0, overload summary on stdout, socket gone.
kill -TERM "$server_pid"
wait "$server_pid"
server_rc=$?
server_pid=
[ "$server_rc" -eq 0 ] || fail "daemon exited $server_rc after SIGTERM"
grep -q "overload:" "$tmp/serve_out" || fail "no overload line in drain summary"
[ ! -e "$sock" ] || fail "daemon socket survived the drain"

echo "chaos campaign OK: $faults faults injected, daemon survived"
