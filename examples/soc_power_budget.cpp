// SOC scenario — the paper's motivating system (§1): "A typical SOC design
// contains several embedded processor cores responsible for various parts of
// the total system functionality. Each of these processors accesses an
// on-chip or off-chip instruction memory."
//
// Three cores run three firmware kernels (DSP filter, control code, data
// integrity) from their own instruction memories — one on-chip, two behind
// off-chip flash. Each core gets its own ASIMT configuration; the example
// reports the system-level instruction-bus energy budget before and after.
#include <cstdio>
#include <string>
#include <vector>

#include "cfg/cfg.h"
#include "core/selection.h"
#include "experiments/experiment.h"
#include "isa/assembler.h"
#include "power/power.h"
#include "sim/cpu.h"
#include "workloads/workload.h"

namespace {

struct Core {
  const char* role;
  asimt::workloads::Workload workload;
  asimt::power::BusParams bus;
};

}  // namespace

int main() {
  using namespace asimt;
  const workloads::SizeConfig sizes = workloads::SizeConfig::small();
  std::vector<Core> cores = {
      {"dsp (fir, off-chip flash)", workloads::make_fir(sizes),
       power::BusParams::off_chip()},
      {"control (sor, on-chip rom)", workloads::make_sor(sizes),
       power::BusParams::on_chip()},
      {"integrity (crc32, off-chip flash)", workloads::make_crc32(sizes),
       power::BusParams::off_chip()},
  };

  double total_before = 0.0, total_after = 0.0;
  std::printf("per-core instruction-bus energy (k=5, 16-entry TT each)\n\n");
  for (Core& core : cores) {
    const isa::Program program = isa::assemble(core.workload.source);
    const cfg::Cfg cfg = cfg::build_cfg(program);
    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    core.workload.init(memory, cpu.state());
    cfg::Profiler profiler(cfg);
    cpu.run(50'000'000,
            [&](std::uint32_t pc, std::uint32_t) { profiler.on_fetch(pc); });
    std::string error;
    if (!core.workload.check(memory, &error)) {
      std::printf("FATAL: %s failed: %s\n", core.workload.name.c_str(), error.c_str());
      return 1;
    }
    const cfg::Profile profile = profiler.take();

    core::SelectionOptions sel;
    sel.chain.block_size = 5;
    const core::SelectionResult selection = core::select_and_encode(cfg, profile, sel);
    const long long before = cfg::dynamic_transitions(cfg, profile, cfg.text);
    const long long after = cfg::dynamic_transitions(
        cfg, profile, selection.apply_to_text(cfg.text, cfg.text_base));

    const double e_before = power::transition_energy_joules(before, core.bus);
    const double e_after = power::transition_energy_joules(after, core.bus);
    total_before += e_before;
    total_after += e_after;
    std::printf("%-34s %8.3f uJ -> %8.3f uJ  (-%.1f%%)\n", core.role,
                e_before * 1e6, e_after * 1e6,
                100.0 * (e_before - e_after) / e_before);
  }
  std::printf("\n%-34s %8.3f uJ -> %8.3f uJ  (-%.1f%%)\n",
              "SOC instruction-bus total", total_before * 1e6, total_after * 1e6,
              100.0 * (total_before - total_after) / total_before);
  std::printf(
      "\none silicon design, three per-application configurations — the\n"
      "reprogrammability argument of §1 in action.\n");
  return 0;
}
