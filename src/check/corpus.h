// Regression-corpus replay as a library: enumerate a directory of checked-in
// .case reproducers, parse each, run its oracle, and report per-file results.
//
// Robustness contract (docs/FUZZING.md): a corrupt, truncated, or unreadable
// .case file produces a NAMED error identifying the file and the stage that
// rejected it — never a crash, and never a silent skip that would let a
// rotted reproducer stop guarding its bug. Both the corpus_tests ctest lane
// and external tooling replay through this one entry point.
#pragma once

#include <string>
#include <vector>

#include "check/fuzz_case.h"
#include "check/oracles.h"

namespace asimt::check {

struct CorpusFileResult {
  std::string file;                   // full path of the .case file
  Oracle oracle = Oracle::kRoundTrip;  // valid only when parsed
  bool parsed = false;
  // Empty on success; otherwise "<file>: <stage>: <detail>" — read error,
  // parse error, round-trip drift, or oracle failure.
  std::string error;
  bool passed() const { return error.empty(); }
};

struct CorpusReport {
  std::vector<CorpusFileResult> files;  // sorted by path, every .case listed
  std::size_t failures() const {
    std::size_t n = 0;
    for (const CorpusFileResult& f : files) n += !f.passed();
    return n;
  }
  bool ok() const { return failures() == 0; }
};

// Replays every .case file under `dir` (non-recursive, sorted by path).
// Throws std::runtime_error naming the directory when it cannot be
// enumerated at all; per-file problems land in the report instead.
CorpusReport replay_corpus_dir(const std::string& dir,
                               const OracleHooks& hooks = {});

}  // namespace asimt::check
