// Analysis bench — why the INSTRUCTION bus (§1)?
//
// The paper targets the instruction-memory data bus because "an access to
// these memories is typically performed each cycle". This bench quantifies
// that premise on our workloads: every instruction is one fetch-bus
// transfer, while only load/store instructions touch the data bus — counted
// exactly from the per-block profile and each block's memory-effect mix.
#include <cstdio>

#include "cfg/cfg.h"
#include "isa/assembler.h"
#include "isa/effects.h"
#include "sim/cpu.h"
#include "workloads/workload.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt;
  std::printf("bus transfer shares per workload (reduced sizes)\n");
  std::printf("%-6s %16s %16s %16s %8s\n", "bench", "instr fetches",
              "data reads", "data writes", "I:D");

  for (const workloads::Workload& w :
       workloads::make_all(workloads::SizeConfig::small())) {
    const isa::Program program = isa::assemble(w.source);
    const cfg::Cfg cfg = cfg::build_cfg(program);
    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    w.init(memory, cpu.state());
    cfg::Profiler profiler(cfg);
    cpu.run(50'000'000, [&](std::uint32_t pc, std::uint32_t) { profiler.on_fetch(pc); });
    const cfg::Profile profile = profiler.take();

    std::uint64_t reads = 0, writes = 0;
    for (const cfg::BasicBlock& block : cfg.blocks) {
      const std::uint64_t count =
          profile.block_counts[static_cast<std::size_t>(block.index)];
      if (count == 0) continue;
      std::uint64_t block_reads = 0, block_writes = 0;
      for (std::uint32_t word : cfg.block_words(block)) {
        const isa::Effects fx = isa::effects(isa::decode(word));
        block_reads += fx.mem_read;
        block_writes += fx.mem_write;
      }
      reads += count * block_reads;
      writes += count * block_writes;
    }
    const std::uint64_t fetches = profile.total_instructions;
    std::printf("%-6s %16llu %16llu %16llu %7.1fx\n", w.name.c_str(),
                static_cast<unsigned long long>(fetches),
                static_cast<unsigned long long>(reads),
                static_cast<unsigned long long>(writes),
                static_cast<double>(fetches) /
                    static_cast<double>(std::max<std::uint64_t>(1, reads + writes)));
  }
  std::printf(
      "\nthe instruction bus carries 2.5-10x more transfers than the data\n"
      "bus on these kernels — §1's premise for attacking the fetch path\n"
      "first. (The data-bus VALUE stream is also input-dependent, which is\n"
      "exactly what the paper's static, input-independent encoding avoids.)\n");
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("analysis_bus_shares")
