// LogHistogram bucket math, snapshot consistency under racing writers, and
// quantile interpolation — the numeric backbone of the `metrics` op.
#include "obsv/latency.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace asimt::obsv {
namespace {

TEST(LogHistogram, SmallValuesAreTheirOwnBucket) {
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(LogHistogram::bucket_of(v), v);
    EXPECT_EQ(LogHistogram::bucket_upper_bound(static_cast<unsigned>(v)), v);
  }
}

TEST(LogHistogram, BucketBoundsAreAnExactInverse) {
  // For a spread of values across the range: v lands inside the bucket whose
  // bounds bucket_upper_bound defines, exclusive below, inclusive above.
  for (std::uint64_t v : {16ull, 17ull, 100ull, 1000ull, 4095ull, 4096ull,
                          123456789ull, 1ull << 40, (1ull << 40) + 12345,
                          ~0ull - 1, ~0ull}) {
    const unsigned bucket = LogHistogram::bucket_of(v);
    ASSERT_LT(bucket, LogHistogram::kBucketCount) << v;
    EXPECT_LE(v, LogHistogram::bucket_upper_bound(bucket)) << v;
    if (bucket > 0) {
      EXPECT_GT(v, LogHistogram::bucket_upper_bound(bucket - 1)) << v;
    }
  }
}

TEST(LogHistogram, RelativeQuantizationErrorIsBoundedBySubBuckets) {
  // Above the linear range each bucket spans one sixteenth of an octave, so
  // upper/lower <= 1 + 1/8 even at the smallest refined octave.
  for (unsigned bucket = 17; bucket < LogHistogram::kBucketCount - 1; ++bucket) {
    const double lo =
        static_cast<double>(LogHistogram::bucket_upper_bound(bucket - 1)) + 1;
    const double hi = static_cast<double>(LogHistogram::bucket_upper_bound(bucket));
    EXPECT_LE(hi / lo, 1.125) << "bucket " << bucket;
  }
}

TEST(LogHistogram, SnapshotCountIsTheSumOfItsBuckets) {
  LogHistogram h;
  for (std::uint64_t v = 0; v < 1000; ++v) h.observe(v * 37);
  const LogHistogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  std::uint64_t total = 0;
  for (const auto& [bucket, count] : snap.buckets) total += count;
  EXPECT_EQ(snap.count, total);
  EXPECT_EQ(snap.max, 999u * 37);
  EXPECT_EQ(snap.sum, 37u * (999u * 1000u / 2));
}

TEST(LogHistogram, ResetClears) {
  LogHistogram h;
  h.observe(123);
  h.reset();
  const LogHistogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_TRUE(snap.buckets.empty());
  EXPECT_EQ(snap.quantile(0.5), 0.0);
}

TEST(LogHistogram, QuantilesTrackKnownDistributions) {
  LogHistogram h;
  // 1..10000 ns uniformly: quantiles must land within one bucket width
  // (≈6% relative) of the exact order statistics.
  for (std::uint64_t v = 1; v <= 10'000; ++v) h.observe(v);
  const LogHistogram::Snapshot snap = h.snapshot();
  EXPECT_NEAR(snap.quantile(0.5), 5000.0, 5000.0 * 0.07);
  EXPECT_NEAR(snap.quantile(0.99), 9900.0, 9900.0 * 0.07);
  EXPECT_NEAR(snap.quantile(0.999), 9990.0, 9990.0 * 0.07);
  // The extremes pin to the data range, quantization aside.
  EXPECT_GE(snap.quantile(1.0), 9990.0);
  EXPECT_LE(snap.quantile(0.0), 16.0);
  // Monotone in q.
  EXPECT_LE(snap.quantile(0.5), snap.quantile(0.9));
  EXPECT_LE(snap.quantile(0.9), snap.quantile(0.999));
}

TEST(LogHistogram, SingleObservationQuantileIsThatValue) {
  LogHistogram h;
  h.observe(777);
  const LogHistogram::Snapshot snap = h.snapshot();
  // Within the covering bucket's bounds.
  const unsigned bucket = LogHistogram::bucket_of(777);
  EXPECT_GE(snap.quantile(0.5),
            static_cast<double>(LogHistogram::bucket_upper_bound(bucket - 1)));
  EXPECT_LE(snap.quantile(0.5),
            static_cast<double>(LogHistogram::bucket_upper_bound(bucket)));
}

// Consistency is the point: while writers hammer, every snapshot a reader
// takes must satisfy count == Σ buckets (the metrics op's contract), and the
// final snapshot must account for every observation exactly.
TEST(LogHistogram, ConcurrentObserveKeepsSnapshotsConsistent) {
  LogHistogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.observe(i * (t + 1));
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    const LogHistogram::Snapshot snap = h.snapshot();
    std::uint64_t total = 0;
    for (const auto& [bucket, count] : snap.buckets) total += count;
    ASSERT_EQ(snap.count, total) << "snapshot " << i;
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(h.snapshot().count, kThreads * kPerThread);
}

TEST(LatencyMatrix, CellsAreIndependentAndResettable) {
  LatencyMatrix m;
  m.observe(Op::kEncode, Outcome::kHit, 100);
  m.observe(Op::kEncode, Outcome::kMiss, 200);
  m.observe(Op::kVerify, Outcome::kHit, 300);
  EXPECT_EQ(m.cell(Op::kEncode, Outcome::kHit).snapshot().count, 1u);
  EXPECT_EQ(m.cell(Op::kEncode, Outcome::kMiss).snapshot().count, 1u);
  EXPECT_EQ(m.cell(Op::kVerify, Outcome::kHit).snapshot().count, 1u);
  EXPECT_EQ(m.cell(Op::kVerify, Outcome::kMiss).snapshot().count, 0u);
  m.reset();
  EXPECT_EQ(m.cell(Op::kEncode, Outcome::kHit).snapshot().count, 0u);
}

}  // namespace
}  // namespace asimt::obsv
