// CFG extraction, loop detection, and dynamic profiling tests.
#include "cfg/cfg.h"

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "sim/cpu.h"

namespace asimt::cfg {
namespace {

constexpr const char* kStraightLine = R"(
        addiu   $t0, $t0, 1
        addiu   $t0, $t0, 2
        addiu   $t0, $t0, 3
        halt
)";

constexpr const char* kSimpleLoop = R"(
start:  li      $t0, 0
        li      $t1, 10
loop:   addiu   $t0, $t0, 1
        bne     $t0, $t1, loop
exit:   halt
)";

constexpr const char* kDiamond = R"(
entry:  bne     $a0, $zero, right
left:   li      $t0, 1
        j       join
right:  li      $t0, 2
join:   halt
)";

constexpr const char* kNestedLoops = R"(
outer:  li      $t0, 0
oloop:  li      $t1, 0
iloop:  addiu   $t1, $t1, 1
        slti    $at, $t1, 3
        bne     $at, $zero, iloop
        addiu   $t0, $t0, 1
        slti    $at, $t0, 4
        bne     $at, $zero, oloop
        halt
)";

TEST(BuildCfg, StraightLineIsOneBlock) {
  const Cfg cfg = build_cfg(isa::assemble(kStraightLine));
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_EQ(cfg.blocks[0].instruction_count(), 4u);
  EXPECT_TRUE(cfg.blocks[0].successors.empty());  // ends in halt
}

TEST(BuildCfg, LoopStructure) {
  const isa::Program p = isa::assemble(kSimpleLoop);
  const Cfg cfg = build_cfg(p);
  ASSERT_EQ(cfg.blocks.size(), 3u);
  const int entry = cfg.block_starting_at(p.symbol("start"));
  const int loop = cfg.block_starting_at(p.symbol("loop"));
  const int exit = cfg.block_starting_at(p.symbol("exit"));
  ASSERT_GE(entry, 0);
  ASSERT_GE(loop, 0);
  ASSERT_GE(exit, 0);
  EXPECT_EQ(cfg.blocks[static_cast<std::size_t>(entry)].successors,
            (std::vector<int>{loop}));
  // Loop block branches to itself or falls through to exit.
  EXPECT_EQ(cfg.blocks[static_cast<std::size_t>(loop)].successors,
            (std::vector<int>{loop, exit}));
}

TEST(BuildCfg, DiamondSuccessors) {
  const isa::Program p = isa::assemble(kDiamond);
  const Cfg cfg = build_cfg(p);
  const int entry = cfg.block_starting_at(p.symbol("entry"));
  const int left = cfg.block_starting_at(p.symbol("left"));
  const int right = cfg.block_starting_at(p.symbol("right"));
  const int join = cfg.block_starting_at(p.symbol("join"));
  EXPECT_EQ(cfg.blocks[static_cast<std::size_t>(entry)].successors,
            (std::vector<int>{left, right}));
  EXPECT_EQ(cfg.blocks[static_cast<std::size_t>(left)].successors,
            (std::vector<int>{join}));
  EXPECT_EQ(cfg.blocks[static_cast<std::size_t>(right)].successors,
            (std::vector<int>{join}));
}

TEST(BuildCfg, BlockContainment) {
  const isa::Program p = isa::assemble(kSimpleLoop);
  const Cfg cfg = build_cfg(p);
  const int loop = cfg.block_starting_at(p.symbol("loop"));
  EXPECT_EQ(cfg.block_containing(p.symbol("loop")), loop);
  EXPECT_EQ(cfg.block_containing(p.symbol("loop") + 4), loop);
  EXPECT_EQ(cfg.block_containing(p.text_base - 4), -1);
  EXPECT_EQ(cfg.block_containing(p.text_end()), -1);
}

TEST(BuildCfg, BlockWords) {
  const isa::Program p = isa::assemble(kSimpleLoop);
  const Cfg cfg = build_cfg(p);
  const int loop = cfg.block_starting_at(p.symbol("loop"));
  const auto words = cfg.block_words(cfg.blocks[static_cast<std::size_t>(loop)]);
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], p.text[(p.symbol("loop") - p.text_base) / 4]);
}

TEST(BuildCfg, IndirectJumpMarksBlock) {
  const Cfg cfg = build_cfg(isa::assemble("jr $ra\n"));
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_TRUE(cfg.blocks[0].has_indirect_exit);
}

TEST(BuildCfg, JalCreatesCallAndReturnLeaders) {
  const isa::Program p = isa::assemble(R"(
main:   jal     callee
after:  halt
callee: jr      $ra
)");
  const Cfg cfg = build_cfg(p);
  EXPECT_GE(cfg.block_starting_at(p.symbol("after")), 0);
  EXPECT_GE(cfg.block_starting_at(p.symbol("callee")), 0);
}

TEST(NaturalLoops, SimpleLoopFound) {
  const isa::Program p = isa::assemble(kSimpleLoop);
  const Cfg cfg = build_cfg(p);
  const auto loops = find_natural_loops(cfg);
  ASSERT_EQ(loops.size(), 1u);
  const int loop_block = cfg.block_starting_at(p.symbol("loop"));
  EXPECT_EQ(loops[0].header, loop_block);
  EXPECT_EQ(loops[0].body, (std::vector<int>{loop_block}));
}

TEST(NaturalLoops, NestedLoopsFound) {
  const isa::Program p = isa::assemble(kNestedLoops);
  const Cfg cfg = build_cfg(p);
  const auto loops = find_natural_loops(cfg);
  ASSERT_EQ(loops.size(), 2u);
  const int oloop = cfg.block_starting_at(p.symbol("oloop"));
  const int iloop = cfg.block_starting_at(p.symbol("iloop"));
  // Inner loop body is a subset of the outer loop body.
  const Loop* outer = nullptr;
  const Loop* inner = nullptr;
  for (const Loop& l : loops) {
    if (l.header == oloop) outer = &l;
    if (l.header == iloop) inner = &l;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_LT(inner->body.size(), outer->body.size());
  for (int b : inner->body) {
    EXPECT_NE(std::find(outer->body.begin(), outer->body.end(), b),
              outer->body.end());
  }
}

TEST(NaturalLoops, AcyclicGraphHasNone) {
  EXPECT_TRUE(find_natural_loops(build_cfg(isa::assemble(kDiamond))).empty());
  EXPECT_TRUE(find_natural_loops(build_cfg(isa::assemble(kStraightLine))).empty());
}

TEST(Profiler, CountsBlocksAndEdges) {
  const isa::Program p = isa::assemble(kSimpleLoop);
  const Cfg cfg = build_cfg(p);
  sim::Memory memory;
  memory.load_program(p);
  sim::Cpu cpu(memory);
  cpu.state().pc = p.entry();
  Profiler profiler(cfg);
  cpu.run(10'000, [&](std::uint32_t pc, std::uint32_t) { profiler.on_fetch(pc); });
  ASSERT_TRUE(cpu.state().halted);
  const Profile profile = profiler.take();

  const auto entry = static_cast<std::size_t>(cfg.block_starting_at(p.symbol("start")));
  const auto loop = static_cast<std::size_t>(cfg.block_starting_at(p.symbol("loop")));
  const auto exit = static_cast<std::size_t>(cfg.block_starting_at(p.symbol("exit")));
  EXPECT_EQ(profile.block_counts[entry], 1u);
  EXPECT_EQ(profile.block_counts[loop], 10u);
  EXPECT_EQ(profile.block_counts[exit], 1u);
  EXPECT_EQ(profile.edge_counts.at(Profile::edge_key(static_cast<int>(loop),
                                                     static_cast<int>(loop))),
            9u);
  EXPECT_EQ(profile.edge_counts.at(Profile::edge_key(static_cast<int>(entry),
                                                     static_cast<int>(loop))),
            1u);
  EXPECT_EQ(profile.total_instructions, cpu.state().instructions);
}

TEST(Profiler, InstructionTotalsMatchBlockSizes) {
  const isa::Program p = isa::assemble(kNestedLoops);
  const Cfg cfg = build_cfg(p);
  sim::Memory memory;
  memory.load_program(p);
  sim::Cpu cpu(memory);
  cpu.state().pc = p.entry();
  Profiler profiler(cfg);
  cpu.run(100'000, [&](std::uint32_t pc, std::uint32_t) { profiler.on_fetch(pc); });
  const Profile profile = profiler.take();
  std::uint64_t weighted = 0;
  for (const BasicBlock& b : cfg.blocks) {
    weighted += profile.block_counts[static_cast<std::size_t>(b.index)] *
                b.instruction_count();
  }
  EXPECT_EQ(weighted, profile.total_instructions);
}

}  // namespace
}  // namespace asimt::cfg
