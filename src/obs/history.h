// Append-only JSONL trajectory store for bench artifacts.
//
// One file per bench (`<dir>/<bench>.jsonl`), one compact artifact per
// line, newest last. Entries are whole schema-v2 artifacts — manifest,
// stats blocks, and all — so a history line is self-describing: keyed by
// bench × git sha × manifest by construction. `tools/benchdiff
// --trajectory` compares a fresh run against the rolling median of the
// last N entries (docs/BENCHMARKING.md describes the gate).
#pragma once

#include <string>
#include <vector>

#include "telemetry/json.h"

namespace asimt::obs {

// `<dir>/<bench>.jsonl` for an artifact whose "bench" field is `bench`.
std::string history_path(const std::string& dir, const std::string& bench);

// Appends `artifact` (compact, one line) to the store, creating `dir` if
// needed. Returns false on I/O failure.
bool append_history(const std::string& dir, const json::Value& artifact);

// All entries of a history file, oldest first. Returns false when the file
// cannot be read or a line fails to parse (out is left with the entries
// parsed so far).
bool read_history(const std::string& path, std::vector<json::Value>& out);

}  // namespace asimt::obs
