// The differential fuzz driver: generate → oracle → shrink → reproduce.
//
// Iterations fan out across the parallel engine (PR 2) under its determinism
// contract: iteration i's case is a pure function of (seed, i) and its
// verdict lands in slot i, so the report — failures, counts, reproducers,
// exit code — is byte-identical at any --jobs value. Shrinking runs serially
// afterwards, in iteration order, on at most `max_failures` cases.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "check/fuzz_case.h"
#include "check/oracles.h"
#include "check/shrink.h"

namespace asimt::check {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::uint64_t iters = 1000;
  // Directory for shrunk reproducer files; empty disables writing. Created
  // if missing.
  std::string reproducer_dir;
  // Failures shrunk/recorded in detail; the total failure count is exact
  // regardless.
  std::size_t max_failures = 10;
  // Wall-clock budget in seconds; 0 = unlimited. A run that hits the budget
  // stops at a chunk boundary, reports timed_out and the exact iteration
  // count it completed — CI degrades to "ran fewer iterations" instead of
  // hanging the lane. Every completed iteration is still a pure function of
  // (seed, i), so partial runs stay reproducible.
  double max_seconds = 0.0;
};

struct FuzzFailure {
  std::uint64_t iteration = 0;
  Oracle oracle = Oracle::kRoundTrip;
  std::string message;       // failure of the generated case
  ShrinkResult shrunk;       // minimized reproducer + its failure
  std::string file;          // reproducer path, empty if not written
};

struct FuzzReport {
  std::uint64_t iterations = 0;  // iterations actually completed
  std::uint64_t iterations_requested = 0;
  bool timed_out = false;  // stopped early on the wall-clock budget
  std::uint64_t failure_count = 0;  // across ALL completed iterations
  std::array<std::uint64_t, kOracleCount> runs_per_oracle{};
  std::vector<FuzzFailure> failures;  // first max_failures, iteration order
  bool ok() const { return failure_count == 0; }
};

// Runs the fuzz campaign. `hooks` is for mutation testing (see oracles.h);
// production runs pass the default. Telemetry (when enabled) counts
// check.iterations / check.failures and per-oracle check.runs.<name>.
FuzzReport run_fuzz(const FuzzOptions& options, const OracleHooks& hooks = {});

// Renders the report as the CLI's human-readable summary.
std::string format_report(const FuzzReport& report, const FuzzOptions& options);

// Deterministic machine report for --json (timeouts included, so CI can
// tell "green but truncated" from "green and complete").
std::string json_report(const FuzzReport& report, const FuzzOptions& options);

}  // namespace asimt::check
