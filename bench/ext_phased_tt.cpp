// Extension bench — phased TT reprogramming (§7.1 taken literally).
//
// A single TT configuration must split its 16 entries across every hot loop
// in the program; reloading the tables before each loop (the paper's
// software path) gives every loop the full budget, at the cost of the
// configuration stores on each phase entry. This bench sweeps the TT size
// and compares the two policies, counting the reprogramming overhead.
#include <cstdio>

#include "core/phased.h"
#include "experiments/experiment.h"
#include "isa/assembler.h"
#include "sim/cpu.h"
#include "workloads/workload.h"
#include "obs/bench.h"

static int run_bench() {
  using namespace asimt;
  const workloads::SizeConfig sizes = workloads::SizeConfig::small();
  std::printf("single TT configuration vs per-loop reprogramming (k=5)\n");
  std::printf("%-6s %4s %14s %14s %14s %20s %8s\n", "bench", "TT", "single red%",
              "outer red%", "inner red%", "reprog out/in", "phases");

  for (const workloads::Workload& w : workloads::make_all(sizes)) {
    const isa::Program program = isa::assemble(w.source);
    const cfg::Cfg cfg = cfg::build_cfg(program);
    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    w.init(memory, cpu.state());
    cfg::Profiler profiler(cfg);
    cpu.run(50'000'000, [&](std::uint32_t pc, std::uint32_t) { profiler.on_fetch(pc); });
    const cfg::Profile profile = profiler.take();
    const long long base = cfg::dynamic_transitions(cfg, profile, cfg.text);

    for (int budget : {4, 16}) {
      core::SelectionOptions opt;
      opt.chain.block_size = 5;
      opt.tt_budget = budget;
      const core::SelectionResult single = core::select_and_encode(cfg, profile, opt);
      const long long single_tr = cfg::dynamic_transitions(
          cfg, profile, single.apply_to_text(cfg.text, cfg.text_base));
      const core::PhasedSelection outer = core::select_phased(
          cfg, profile, opt, core::PhaseGranularity::kOutermostLoops);
      const core::PhasedSelection inner = core::select_phased(
          cfg, profile, opt, core::PhaseGranularity::kInnermostLoops);

      auto pct = [&](long long v) {
        return 100.0 * static_cast<double>(base - v) / static_cast<double>(base);
      };
      std::printf("%-6s %4d %13.1f%% %13.1f%% %13.1f%% %9llu/%-9llu %zu/%zu\n",
                  w.name.c_str(), budget, pct(single_tr),
                  pct(outer.encoded_transitions), pct(inner.encoded_transitions),
                  static_cast<unsigned long long>(outer.reprogram_instructions),
                  static_cast<unsigned long long>(inner.reprogram_instructions),
                  outer.phases.size(), inner.phases.size());
    }
  }
  std::printf(
      "\nphased reprogramming matches or beats the single configuration —\n"
      "decisively so at small TT sizes — and the configuration stores are\n"
      "negligible next to the loop trip counts (the paper's 'insignificant\n"
      "in volume' claim for the software path).\n");
  return 0;
}

ASIMT_BENCH_ARTIFACT_MAIN("ext_phased_tt")
