// Integration tests across the whole stack: the analytic transition model
// vs direct bus monitoring, full dynamic decode replay through the hardware
// model, and the complete run_workload pipeline.
#include <gtest/gtest.h>

#include "baselines/bus_codes.h"
#include "core/fetch_decoder.h"
#include "experiments/experiment.h"
#include "power/power.h"
#include "isa/assembler.h"
#include "sim/bus.h"
#include "sim/cpu.h"
#include "workloads/workload.h"

namespace asimt {
namespace {

struct Pipeline {
  isa::Program program;
  cfg::Cfg cfg;
  cfg::Profile profile;
  sim::Memory memory;  // post-run memory (results)
  std::uint64_t instructions = 0;
};

Pipeline run_and_profile(const workloads::Workload& w) {
  Pipeline p;
  p.program = isa::assemble(w.source);
  p.cfg = cfg::build_cfg(p.program);
  p.memory.load_program(p.program);
  sim::Cpu cpu(p.memory);
  cpu.state().pc = p.program.entry();
  w.init(p.memory, cpu.state());
  cfg::Profiler profiler(p.cfg);
  p.instructions = cpu.run(
      50'000'000, [&](std::uint32_t pc, std::uint32_t) { profiler.on_fetch(pc); });
  EXPECT_TRUE(cpu.state().halted);
  p.profile = profiler.take();
  return p;
}

// Re-simulates `w` while monitoring the bus words an alternative image
// would have driven.
long long measure_directly(const workloads::Workload& w,
                           const sim::TextImage& image) {
  const isa::Program program = isa::assemble(w.source);
  sim::Memory memory;
  memory.load_program(program);
  sim::Cpu cpu(memory);
  cpu.state().pc = program.entry();
  w.init(memory, cpu.state());
  sim::BusMonitor monitor;
  cpu.run(50'000'000, [&](std::uint32_t pc, std::uint32_t word) {
    monitor.observe(image.contains(pc) ? image.word_at(pc) : word);
  });
  EXPECT_TRUE(cpu.state().halted);
  return monitor.total_transitions();
}

class AnalyticModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AnalyticModelTest, MatchesDirectBusMonitoring) {
  const workloads::Workload w =
      workloads::make_by_name(GetParam(), workloads::SizeConfig::small());
  Pipeline p = run_and_profile(w);

  // Baseline image.
  const long long analytic_base =
      experiments::dynamic_transitions(p.cfg, p.profile, p.cfg.text);
  const sim::TextImage base_image(p.cfg.text_base, p.cfg.text);
  EXPECT_EQ(analytic_base, measure_directly(w, base_image));

  // Encoded image at k=5.
  core::SelectionOptions sel;
  sel.chain.block_size = 5;
  const core::SelectionResult selection =
      core::select_and_encode(p.cfg, p.profile, sel);
  const sim::TextImage enc_image(p.cfg.text_base,
                                 selection.apply_to_text(p.cfg.text, p.cfg.text_base));
  const long long analytic_enc = experiments::dynamic_transitions(
      p.cfg, p.profile, enc_image.words());
  EXPECT_EQ(analytic_enc, measure_directly(w, enc_image));
  EXPECT_LT(analytic_enc, analytic_base);
}

INSTANTIATE_TEST_SUITE_P(SmallWorkloads, AnalyticModelTest,
                         ::testing::Values("fft", "tri", "sor"),
                         [](const auto& info) { return info.param; });

class DynamicDecodeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DynamicDecodeTest, HardwareModelRestoresEveryFetchedWord) {
  // The strongest invariant in the system: replay the complete dynamic fetch
  // stream against the encoded image and require the FetchDecoder to restore
  // the original word of EVERY fetch, across all block sizes.
  const workloads::Workload w =
      workloads::make_by_name(GetParam(), workloads::SizeConfig::small());
  Pipeline p = run_and_profile(w);

  for (int k : {4, 5, 6, 7}) {
    core::SelectionOptions sel;
    sel.chain.block_size = k;
    const core::SelectionResult selection =
        core::select_and_encode(p.cfg, p.profile, sel);
    const sim::TextImage image(p.cfg.text_base,
                               selection.apply_to_text(p.cfg.text, p.cfg.text_base));
    core::FetchDecoder decoder(selection.tt, selection.bbit);

    const isa::Program program = isa::assemble(w.source);
    sim::Memory memory;
    memory.load_program(program);
    sim::Cpu cpu(memory);
    cpu.state().pc = program.entry();
    w.init(memory, cpu.state());
    std::uint64_t mismatches = 0;
    cpu.run(50'000'000, [&](std::uint32_t pc, std::uint32_t word) {
      const std::uint32_t bus = image.contains(pc) ? image.word_at(pc) : word;
      if (decoder.feed(pc, bus) != word) ++mismatches;
    });
    ASSERT_TRUE(cpu.state().halted);
    EXPECT_EQ(mismatches, 0u) << w.name << " k=" << k;
    EXPECT_GT(decoder.stats().decoded, 0u) << w.name << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallWorkloads, DynamicDecodeTest,
                         ::testing::Values("mmul", "sor", "ej", "fft", "tri",
                                           "lu"),
                         [](const auto& info) { return info.param; });

TEST(RunWorkload, FullPipelineOnFft) {
  const workloads::Workload w =
      workloads::make_by_name("fft", workloads::SizeConfig::small());
  experiments::ExperimentOptions opt;
  const experiments::WorkloadResult r = experiments::run_workload(w, opt);
  EXPECT_TRUE(r.check_passed) << r.check_error;
  EXPECT_GT(r.instructions, 0u);
  EXPECT_GT(r.baseline_transitions, 0);
  ASSERT_EQ(r.per_block_size.size(), 4u);
  for (const auto& per : r.per_block_size) {
    EXPECT_GT(per.reduction_percent, 0.0) << "k=" << per.block_size;
    EXPECT_LT(per.reduction_percent, 100.0);
    EXPECT_LE(per.tt_entries_used, opt.tt_budget);
    EXPECT_GT(per.blocks_encoded, 0);
    EXPECT_LT(per.transitions, r.baseline_transitions);
  }
  EXPECT_GT(r.bus_invert_transitions, 0);
}

TEST(RunWorkload, ReductionsLandInThePaperBand) {
  // The paper reports 10-52% reductions for k=4..7 with a 16-entry TT.
  // Shapes on our ISA land in the same band (a touch wider on small inputs).
  const workloads::Workload w =
      workloads::make_by_name("tri", workloads::SizeConfig::small());
  experiments::ExperimentOptions opt;
  const experiments::WorkloadResult r = experiments::run_workload(w, opt);
  for (const auto& per : r.per_block_size) {
    EXPECT_GT(per.reduction_percent, 10.0) << per.block_size;
    EXPECT_LT(per.reduction_percent, 70.0) << per.block_size;
  }
}

TEST(RunWorkload, AsimtBeatsBusInvertOnInstructionStreams) {
  // §2's positioning claim: general-purpose Bus-Invert leaves most of the
  // application-specific savings on the table.
  const workloads::Workload w =
      workloads::make_by_name("sor", workloads::SizeConfig::small());
  experiments::ExperimentOptions opt;
  const experiments::WorkloadResult r = experiments::run_workload(w, opt);
  const double businvert_reduction = power::reduction_percent(
      r.baseline_transitions, r.bus_invert_transitions);
  double best_asimt = 0;
  for (const auto& per : r.per_block_size) {
    best_asimt = std::max(best_asimt, per.reduction_percent);
  }
  EXPECT_GT(best_asimt, businvert_reduction + 10.0);
}

TEST(RunWorkload, DpStrategyNeverWorseThanGreedy) {
  const workloads::Workload w =
      workloads::make_by_name("fft", workloads::SizeConfig::small());
  experiments::ExperimentOptions greedy;
  greedy.strategy = core::ChainStrategy::kGreedy;
  experiments::ExperimentOptions dp;
  dp.strategy = core::ChainStrategy::kOptimalDp;
  const auto rg = experiments::run_workload(w, greedy);
  const auto rd = experiments::run_workload(w, dp);
  for (std::size_t i = 0; i < rg.per_block_size.size(); ++i) {
    // DP optimizes each block's static stream; dynamic totals can differ
    // only marginally through boundary words.
    EXPECT_LE(rd.per_block_size[i].transitions,
              rg.per_block_size[i].transitions + 64);
  }
}

TEST(RunWorkload, TightTtBudgetReducesLess) {
  const workloads::Workload w =
      workloads::make_by_name("fft", workloads::SizeConfig::small());
  experiments::ExperimentOptions wide;
  wide.tt_budget = 16;
  experiments::ExperimentOptions narrow;
  narrow.tt_budget = 2;
  const auto rw = experiments::run_workload(w, wide);
  const auto rn = experiments::run_workload(w, narrow);
  for (std::size_t i = 0; i < rw.per_block_size.size(); ++i) {
    EXPECT_LE(rw.per_block_size[i].transitions, rn.per_block_size[i].transitions);
  }
}

TEST(Fig6Table, FormatsAllRows) {
  const workloads::Workload w =
      workloads::make_by_name("fft", workloads::SizeConfig::small());
  experiments::ExperimentOptions opt;
  const std::vector<experiments::WorkloadResult> results = {
      experiments::run_workload(w, opt)};
  const std::string table = experiments::format_fig6_table(results);
  EXPECT_NE(table.find("#TR"), std::string::npos);
  EXPECT_NE(table.find("#4-block"), std::string::npos);
  EXPECT_NE(table.find("#7-block"), std::string::npos);
  EXPECT_NE(table.find("Reduction(%)"), std::string::npos);
  EXPECT_NE(table.find("fft"), std::string::npos);
}

}  // namespace
}  // namespace asimt
