#include "power/power.h"

#include <cstdio>

namespace asimt::power {

double transition_energy_joules(long long transitions, const BusParams& params) {
  return 0.5 * params.capacitance_farads * params.voltage * params.voltage *
         static_cast<double>(transitions);
}

EnergyReport make_report(std::string label, long long transitions,
                         std::uint64_t fetches, const BusParams& params) {
  EnergyReport report;
  report.label = std::move(label);
  report.transitions = transitions;
  report.fetches = fetches;
  report.energy_joules = transition_energy_joules(transitions, params);
  return report;
}

double reduction_percent(long long baseline, long long measured) {
  if (baseline == 0) return 0.0;
  return 100.0 * static_cast<double>(baseline - measured) /
         static_cast<double>(baseline);
}

std::string format_comparison(const EnergyReport& baseline,
                              const EnergyReport& encoded) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "%-16s %14lld transitions  %8.3f uJ  (%.3f trans/fetch)\n"
      "%-16s %14lld transitions  %8.3f uJ  (%.3f trans/fetch)\n"
      "reduction: %.1f%%",
      baseline.label.c_str(), baseline.transitions,
      baseline.energy_joules * 1e6, baseline.transitions_per_fetch(),
      encoded.label.c_str(), encoded.transitions, encoded.energy_joules * 1e6,
      encoded.transitions_per_fetch(),
      reduction_percent(baseline.transitions, encoded.transitions));
  return buf;
}

json::Value to_json(const EnergyReport& report) {
  json::Value out = json::Value::object();
  out.set("label", report.label);
  out.set("transitions", report.transitions);
  out.set("fetches", report.fetches);
  out.set("energy_joules", report.energy_joules);
  out.set("transitions_per_fetch", report.transitions_per_fetch());
  return out;
}

json::Value comparison_to_json(const EnergyReport& baseline,
                               const EnergyReport& encoded) {
  json::Value out = json::Value::object();
  out.set("baseline", to_json(baseline));
  out.set("encoded", to_json(encoded));
  out.set("reduction_percent",
          reduction_percent(baseline.transitions, encoded.transitions));
  return out;
}

}  // namespace asimt::power
