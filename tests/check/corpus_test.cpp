// Regression-corpus replay: every .case file under tests/check/corpus/ is a
// once-failing (or boundary-shaped) input, shrunk and checked in. Each must
// parse and pass its oracle forever; a red run here means a fixed bug came
// back. New reproducers land automatically via
//   asimt fuzz --seed S --iters N --out tests/check/corpus
//
// The replay itself goes through check::replay_corpus_dir, whose robustness
// contract (a corrupt or truncated file is a NAMED failure, not a crash or a
// silent skip) is pinned by the CorpusRobustness tests below.
#include <gtest/gtest.h>

#include <array>
#include <filesystem>
#include <fstream>
#include <string>

#include "check/corpus.h"
#include "check/fuzz_case.h"
#include "check/oracles.h"

#ifndef ASIMT_CHECK_CORPUS_DIR
#error "build must define ASIMT_CHECK_CORPUS_DIR (see tests/CMakeLists.txt)"
#endif

namespace asimt::check {
namespace {

TEST(Corpus, IsNotEmpty) {
  // The corpus must ship with the boundary-shape seeds; an empty directory
  // means the replay lane is silently testing nothing.
  const CorpusReport report = replay_corpus_dir(ASIMT_CHECK_CORPUS_DIR);
  EXPECT_GE(report.files.size(), 8u) << "corpus dir: " << ASIMT_CHECK_CORPUS_DIR;
}

TEST(Corpus, EveryCaseParsesSerializesAndPasses) {
  const CorpusReport report = replay_corpus_dir(ASIMT_CHECK_CORPUS_DIR);
  for (const CorpusFileResult& f : report.files) {
    EXPECT_TRUE(f.passed()) << f.error;
  }
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.failures(), 0u);
}

TEST(Corpus, CoversEveryOracle) {
  std::array<bool, kOracleCount> seen{};
  for (const CorpusFileResult& f : replay_corpus_dir(ASIMT_CHECK_CORPUS_DIR).files) {
    if (f.parsed) seen[static_cast<int>(f.oracle)] = true;
  }
  for (int i = 0; i < kOracleCount; ++i) {
    EXPECT_TRUE(seen[i]) << "no corpus case exercises oracle "
                         << oracle_name(static_cast<Oracle>(i));
  }
}

// --- robustness of the replay machinery itself ------------------------------

class CorpusRobustness : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("asimt-corpus-test-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path write(const std::string& name,
                              const std::string& text) {
    const std::filesystem::path path = dir_ / name;
    std::ofstream out(path, std::ios::binary);
    out << text;
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(CorpusRobustness, CorruptCaseIsANamedErrorNotACrash) {
  write("bad.case", "this is not a fuzz case\n");
  const CorpusReport report = replay_corpus_dir(dir_.string());
  ASSERT_EQ(report.files.size(), 1u);
  EXPECT_FALSE(report.files[0].passed());
  EXPECT_NE(report.files[0].error.find("bad.case"), std::string::npos)
      << "error must identify the offending file: " << report.files[0].error;
  EXPECT_NE(report.files[0].error.find("parse error"), std::string::npos);
}

TEST_F(CorpusRobustness, TruncatedCaseIsANamedErrorNotASilentSkip) {
  // A syntactically truncated file: the magic line alone, no body.
  write("truncated.case", "asimt-fuzz-case v1\n");
  const CorpusReport report = replay_corpus_dir(dir_.string());
  ASSERT_EQ(report.files.size(), 1u);
  EXPECT_FALSE(report.files[0].passed());
  EXPECT_NE(report.files[0].error.find("truncated.case"), std::string::npos);
}

TEST_F(CorpusRobustness, ValidFileAlongsideCorruptOneStillPasses) {
  FuzzCase c;
  c.oracle = Oracle::kRoundTrip;
  c.line = bits::BitSeq{};
  write("good.case", serialize_case(c));
  write("bad.case", "garbage\n");
  const CorpusReport report = replay_corpus_dir(dir_.string());
  ASSERT_EQ(report.files.size(), 2u);  // sorted: bad.case, good.case
  EXPECT_FALSE(report.files[0].passed());
  EXPECT_TRUE(report.files[1].passed()) << report.files[1].error;
  EXPECT_EQ(report.failures(), 1u);
}

TEST_F(CorpusRobustness, NonCanonicalCaseIsRoundTripDrift) {
  // Hand-edited duplicate field: parses, but re-serialization differs, so a
  // replay could be exercising something other than what the text implies.
  FuzzCase c;
  const std::string canonical = serialize_case(c);
  write("dup.case", canonical + canonical.substr(canonical.find('\n') + 1));
  const CorpusReport report = replay_corpus_dir(dir_.string());
  ASSERT_EQ(report.files.size(), 1u);
  // Either the parser rejects the duplicate outright (parse error) or the
  // canonical-form check flags it; silence is the only wrong answer.
  EXPECT_FALSE(report.files[0].passed());
  EXPECT_NE(report.files[0].error.find("dup.case"), std::string::npos);
}

TEST_F(CorpusRobustness, MissingDirectoryThrowsWithTheDirectoryName) {
  const std::string missing = (dir_ / "does-not-exist").string();
  try {
    replay_corpus_dir(missing);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(missing), std::string::npos);
  }
}

TEST_F(CorpusRobustness, NonCaseFilesAreIgnored) {
  write("README.md", "not a case\n");
  EXPECT_TRUE(replay_corpus_dir(dir_.string()).files.empty());
}

}  // namespace
}  // namespace asimt::check
