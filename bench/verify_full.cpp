// Repro integrity sweep: at FULL problem sizes, replay every dynamically
// fetched word of every workload through the TT/BBIT hardware model and
// require exact restoration, for every block size. The unit/property tests
// cover reduced sizes; this is the final end-to-end guarantee behind the
// Fig. 6 numbers. Honours ASIMT_FAST=1 like the other workload benches.
//
// The sweep runs on the parallel engine in two fan-outs — per-workload
// profiling, then per (workload, k) replay — and accepts `--jobs N`
// (default: hardware concurrency; `--jobs 1` is the fully serial path).
// Results are bit-exact at any job count: every row, including the analytic
// reduction percentages, is computed from per-task state and written into
// its own slot. Besides the console table, writes BENCH_verify_full.json
// (schema v2): one row per (workload, k), the RunManifest, the job count,
// and — because wall_ms is a *measurement*, not a deterministic quantity —
// the repetition count, warmup policy, and median/MAD/CI statistics over
// the timed repetitions (--repetitions N, --warmup N; default one labeled
// repetition, no warmup), so the speedup trajectory carries error bars.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>

#include "cfg/cfg.h"
#include "core/fetch_decoder.h"
#include "core/selection.h"
#include "experiments/experiment.h"
#include "isa/assembler.h"
#include "obs/manifest.h"
#include "obs/selfmetrics.h"
#include "obs/stats.h"
#include "parallel/pool.h"
#include "power/power.h"
#include "sim/bus.h"
#include "sim/cpu.h"
#include "telemetry/export.h"
#include "telemetry/json.h"
#include "util/args.h"
#include "workloads/workload.h"

namespace {

using namespace asimt;

constexpr int kBlockSizes[] = {4, 5, 6, 7};

// Stage-1 output: one profiled workload, shared read-only by its k rows.
struct ProfiledWorkload {
  isa::Program program;
  cfg::Cfg cfg;
  cfg::Profile profile;
  long long baseline_transitions = 0;
  bool check_ok = false;
  std::string check_error;
};

// Stage-2 output: one (workload, k) replay.
struct ReplayRow {
  std::uint64_t fetches = 0;
  std::uint64_t decoded = 0;
  std::uint64_t mismatches = 0;
  bool restored = false;
  long long transitions = 0;        // analytic dynamic count after encoding
  double reduction_percent = 0.0;   // vs. the workload's unencoded baseline
};

ProfiledWorkload profile_workload(const workloads::Workload& w) {
  ProfiledWorkload p;
  p.program = isa::assemble(w.source);
  p.cfg = cfg::build_cfg(p.program);
  sim::Memory memory;
  memory.load_program(p.program);
  sim::Cpu cpu(memory);
  cpu.state().pc = p.program.entry();
  w.init(memory, cpu.state());
  cfg::Profiler profiler(p.cfg);
  cpu.run(500'000'000,
          [&](std::uint32_t pc, std::uint32_t) { profiler.on_fetch(pc); });
  p.check_ok = w.check(memory, &p.check_error);
  p.profile = profiler.take();
  p.baseline_transitions =
      cfg::dynamic_transitions(p.cfg, p.profile, p.cfg.text);
  return p;
}

ReplayRow replay_workload(const workloads::Workload& w,
                          const ProfiledWorkload& p, int k) {
  core::SelectionOptions sel;
  sel.chain.block_size = k;
  const core::SelectionResult selection =
      core::select_and_encode(p.cfg, p.profile, sel);
  const std::vector<std::uint32_t> image_words =
      selection.apply_to_text(p.cfg.text, p.cfg.text_base);
  const sim::TextImage image(p.cfg.text_base, image_words);

  ReplayRow row;
  row.transitions = cfg::dynamic_transitions(p.cfg, p.profile, image_words);
  row.reduction_percent =
      power::reduction_percent(p.baseline_transitions, row.transitions);

  core::FetchDecoder decoder(selection.tt, selection.bbit);
  sim::Memory memory;
  memory.load_program(p.program);
  sim::Cpu cpu(memory);
  cpu.state().pc = p.program.entry();
  w.init(memory, cpu.state());
  cpu.run(500'000'000, [&](std::uint32_t pc, std::uint32_t word) {
    const std::uint32_t bus = image.contains(pc) ? image.word_at(pc) : word;
    if (decoder.feed(pc, bus) != word) ++row.mismatches;
  });
  row.fetches = decoder.stats().fetches;
  row.decoded = decoder.stats().decoded;
  row.restored = cpu.state().halted && row.mismatches == 0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  int repetitions = 1;
  int warmup = 0;
  for (int i = 1; i < argc; ++i) {
    // Strict whole-string parses: "2x" or "abc" is an error, not atoi's 0.
    const auto next_int = [&](int min) -> std::optional<int> {
      if (i + 1 >= argc) return std::nullopt;
      return util::parse_int_in(argv[++i], min,
                                std::numeric_limits<int>::max());
    };
    if (std::strcmp(argv[i], "--jobs") == 0) {
      const std::optional<int> jobs = next_int(1);
      if (!jobs) {
        std::fprintf(stderr, "verify_full: --jobs needs an integer >= 1\n");
        return 2;
      }
      parallel::set_default_jobs(static_cast<unsigned>(*jobs));
    } else if (std::strcmp(argv[i], "--repetitions") == 0) {
      const std::optional<int> reps = next_int(1);
      if (!reps) {
        std::fprintf(stderr,
                     "verify_full: --repetitions needs an integer >= 1\n");
        return 2;
      }
      repetitions = *reps;
    } else if (std::strcmp(argv[i], "--warmup") == 0) {
      const std::optional<int> w = next_int(0);
      if (!w) {
        std::fprintf(stderr, "verify_full: --warmup needs an integer >= 0\n");
        return 2;
      }
      warmup = *w;
    } else {
      std::fprintf(stderr,
                   "usage: verify_full [--jobs N] [--repetitions N] "
                   "[--warmup N]\n");
      return 2;
    }
  }
  const unsigned jobs = parallel::default_jobs();
  const workloads::SizeConfig sizes = experiments::bench_sizes();

  std::vector<workloads::Workload> suite = workloads::make_all(sizes);
  for (workloads::Workload& w : workloads::make_extra(sizes)) {
    suite.push_back(std::move(w));
  }

  // The timed unit is the full two-stage sweep. Results are bit-exact at
  // any job count and across repetitions, so only the last repetition's
  // rows are kept; the wall-clock samples feed the stats block.
  constexpr std::size_t kNumK = std::size(kBlockSizes);
  std::vector<ProfiledWorkload> profiled;
  std::vector<ReplayRow> replays;
  std::vector<double> wall_samples;
  wall_samples.reserve(static_cast<std::size_t>(repetitions));
  for (int rep = 0; rep < warmup + repetitions; ++rep) {
    const auto t_start = std::chrono::steady_clock::now();

    // Stage 1: profile every workload (one task each).
    profiled = parallel::parallel_map(
        suite.size(), [&](std::size_t i) { return profile_workload(suite[i]); });

    // Stage 2: one task per (workload, k) replay; rows land in sweep order.
    replays =
        parallel::parallel_map(suite.size() * kNumK, [&](std::size_t idx) {
          const std::size_t wi = idx / kNumK;
          if (!profiled[wi].check_ok) return ReplayRow{};
          return replay_workload(suite[wi], profiled[wi],
                                 kBlockSizes[idx % kNumK]);
        });

    const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - t_start)
                                  .count();
    if (rep >= warmup) wall_samples.push_back(elapsed_ms);
  }
  const double wall_ms = wall_samples.back();

  bool all_ok = true;
  json::Value rows = json::Value::array();
  std::printf("%-6s %6s %16s %14s %12s %10s\n", "bench", "k", "fetches",
              "decoded", "reduction", "restored");
  for (std::size_t wi = 0; wi < suite.size(); ++wi) {
    const workloads::Workload& w = suite[wi];
    if (!profiled[wi].check_ok) {
      std::printf("%-6s FAILED functional check: %s\n", w.name.c_str(),
                  profiled[wi].check_error.c_str());
      all_ok = false;
      continue;
    }
    for (std::size_t ki = 0; ki < kNumK; ++ki) {
      const ReplayRow& row = replays[wi * kNumK + ki];
      all_ok = all_ok && row.restored;
      std::printf("%-6s %6d %16llu %14llu %11.2f%% %10s\n", w.name.c_str(),
                  kBlockSizes[ki],
                  static_cast<unsigned long long>(row.fetches),
                  static_cast<unsigned long long>(row.decoded),
                  row.reduction_percent, row.restored ? "yes" : "NO");
      json::Value out_row = json::Value::object();
      out_row.set("workload", w.name);
      out_row.set("block_size", kBlockSizes[ki]);
      out_row.set("fetches", row.fetches);
      out_row.set("decoded", row.decoded);
      out_row.set("mismatches", row.mismatches);
      out_row.set("baseline_transitions", profiled[wi].baseline_transitions);
      out_row.set("transitions", row.transitions);
      out_row.set("reduction_percent", row.reduction_percent);
      out_row.set("restored", row.restored);
      rows.push_back(std::move(out_row));
    }
  }
  std::printf("\n%s  (%u jobs, %.0f ms)\n",
              all_ok ? "all dynamic fetches restored exactly"
                     : "RESTORATION FAILURES DETECTED",
              jobs, wall_ms);

  json::Value doc = json::Value::object();
  doc.set("schema_version", obs::kBenchSchemaVersion);
  doc.set("bench", "verify_full");
  obs::embed_manifest(doc);
  doc.set("fast_mode", experiments::fast_mode());
  doc.set("jobs", static_cast<long long>(jobs));
  doc.set("repetitions", repetitions);
  doc.set("warmup", warmup);
  doc.set("wall_ms", wall_ms);
  doc.set("wall_ms_stats", obs::to_json(obs::summarize(wall_samples)));
  doc.set("process", obs::to_json(obs::sample_process_metrics()));
  doc.set("all_restored", all_ok);
  doc.set("rows", std::move(rows));
  const char* out_path = "BENCH_verify_full.json";
  if (!telemetry::write_text_file(out_path, doc.dump(2) + "\n")) {
    std::fprintf(stderr, "verify_full: cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return all_ok ? 0 : 1;
}
