// Instruction cache model.
//
// §8 notes the instructions may come from "an instruction cache or memory;
// the type of storage bears no impact on the bit transition reductions we
// attain" — because the cache→CPU word bus carries the same (encoded) word
// stream either way. This model makes that claim testable and adds the part
// the paper does not measure: the memory→cache refill bus, whose line-fill
// bursts also benefit from the encoded image. See bench/ext_icache.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/bus.h"

namespace asimt::sim {

// N-way set-associative, LRU, physically indexed. Word-granularity fetches.
class InstructionCache {
 public:
  struct Config {
    std::uint32_t line_bytes = 16;  // words per refill burst = line_bytes/4
    std::uint32_t sets = 64;
    std::uint32_t ways = 2;
  };

  struct Stats {
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t refill_words = 0;

    double hit_rate() const {
      return accesses == 0 ? 0.0
                           : static_cast<double>(hits) / static_cast<double>(accesses);
    }
  };

  explicit InstructionCache(Config config);

  // Looks up the line containing `pc`; on a miss, refills it from `image`
  // (words streamed over the refill bus monitor in ascending address order).
  // Returns true on hit.
  bool access(std::uint32_t pc, const TextImage& image);

  const Stats& stats() const { return stats_; }
  // Transitions on the memory->cache refill bus so far.
  long long refill_bus_transitions() const { return refill_bus_.total_transitions(); }

  // Optional observer of every word streamed over the refill bus, called as
  // hook(addr, word) in burst order. This is the miss path, so the
  // std::function indirection never touches hit-path cost; pass {} to clear.
  // profile::TransitionProfiler::on_fetch attaches here to attribute
  // memory->cache traffic.
  void set_refill_hook(std::function<void(std::uint32_t, std::uint32_t)> hook) {
    refill_hook_ = std::move(hook);
  }

  // Publishes accesses/hits/misses/refill traffic as registry-backed
  // counters under `sim.icache.*` plus the refill bus under
  // `bus.icache_refill.*`. No-op when telemetry is disabled.
  void publish_metrics(telemetry::MetricsRegistry& registry =
                           telemetry::MetricsRegistry::global()) const;

  const Config& config() const { return config_; }

  // Introspection for tests and diagnostics: state of one way of one set.
  // Throws std::out_of_range on a bad coordinate.
  bool way_valid(std::uint32_t set, std::uint32_t way) const {
    return way_at(set, way).valid;
  }
  std::uint32_t way_tag(std::uint32_t set, std::uint32_t way) const {
    return way_at(set, way).tag;
  }

 private:
  struct Way {
    bool valid = false;
    std::uint32_t tag = 0;
    std::uint64_t last_used = 0;
  };

  const Way& way_at(std::uint32_t set, std::uint32_t way) const;

  Config config_;
  std::vector<Way> ways_;  // sets x ways, row-major
  Stats stats_;
  BusMonitor refill_bus_;
  std::function<void(std::uint32_t, std::uint32_t)> refill_hook_;
  std::uint64_t tick_ = 0;
};

}  // namespace asimt::sim
